// Package gscope is a Go reproduction of the gscope library described in
// "Gscope: A Visualization Tool for Time-Sensitive Software" (Goel &
// Walpole, FREENIX Track, USENIX ATC 2002). It provides an
// oscilloscope-like display that applications integrate directly: signals
// are polled words of memory, functions, aggregated events or timestamped
// buffered samples; the scope displays them in real time (or replays
// recordings), supports control parameters, records and streams signal data
// in a textual tuple format — optionally upgraded per connection to the
// compressed binary framing specified in docs/WIRE.md — and visualizes
// distributed applications through a client/server library.
//
// The package is a thin facade over internal/core (the scope engine),
// internal/glib (the event loop), internal/gtk (the widget toolkit) and
// internal/netscope (streaming); it re-exports the types an application
// needs so typical programs import only this package:
//
//	loop := gscope.NewLoop(nil)
//	scope := gscope.New(loop, "demo", 640, 280)
//
//	var elephants gscope.IntVar
//	scope.AddSignal(gscope.Sig{Name: "elephants", Source: &elephants, Max: 40})
//
//	scope.SetPollingMode(50 * time.Millisecond)
//	scope.StartPolling()
//	loop.Run()
//
// which mirrors the paper's Figure 6 program line for line.
//
// Buffered (timestamped) signals publish through pre-registered probe
// handles — see [Registry], [Probe], and [Scope.Probe] — so the hot loop
// of a time-sensitive program pays no per-sample string costs; the
// string-keyed Feed.Push/NetClient.Send APIs remain as thin wrappers over
// the same paths.
package gscope

import (
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/glib"
	"repro/internal/netscope"
	"repro/internal/reclog"
	"repro/internal/tuple"
	"repro/internal/webscope"
)

// Re-exported engine types. See the internal/core documentation for
// details; these aliases exist so applications program against a single
// package, the way C applications programmed against gscope.h.
type (
	// Scope is a software oscilloscope (the paper's GtkScope).
	Scope = core.Scope
	// Signal is the runtime state of one displayed signal.
	Signal = core.Signal
	// Sig is a signal specification (the paper's GtkScopeSig).
	Sig = core.Sig
	// Kind enumerates signal types (INTEGER, BOOLEAN, ...).
	Kind = core.Kind
	// Source yields sampling points for unbuffered signals.
	Source = core.Source
	// FuncSource adapts a function to a Source (the FUNC type).
	FuncSource = core.FuncSource
	// IntVar is a pollable integer word.
	IntVar = core.IntVar
	// BoolVar is a pollable boolean word.
	BoolVar = core.BoolVar
	// ShortVar is a pollable 16-bit word.
	ShortVar = core.ShortVar
	// FloatVar is a pollable float word.
	FloatVar = core.FloatVar
	// Aggregator selects an event-aggregation function (§4.2).
	Aggregator = core.Aggregator
	// LineMode selects the trace drawing style.
	LineMode = core.LineMode
	// Mode is the acquisition mode (polling or playback).
	Mode = core.Mode
	// Domain selects time- or frequency-domain display.
	Domain = core.Domain
	// Trigger stabilizes repeating waveforms (§6 extension).
	Trigger = core.Trigger
	// Param is a read/write control parameter (the paper's
	// GtkScopeParameter).
	Param = core.Param
	// ParamSet is the application-wide control-parameter registry.
	ParamSet = core.ParamSet
	// Feed is the scope-wide buffered-signal queue.
	Feed = core.Feed
	// Trace is a signal's displayed sample history.
	Trace = core.Trace
	// History is the tiered decimated store behind a Trace ring,
	// retaining millions of samples for zoomed-out views.
	History = core.History
	// Bucket is one min/max/last column summary from Trace.View.
	Bucket = core.Bucket
	// Stats holds scope activity counters.
	Stats = core.Stats

	// Loop is the event loop scopes attach to (the glib main loop).
	Loop = glib.Loop
	// Clock abstracts time for deterministic testing.
	Clock = glib.Clock
	// VirtualClock is a manually advanced clock.
	VirtualClock = glib.VirtualClock
	// RealClock reads the wall clock.
	RealClock = glib.RealClock
	// SourceID identifies an attached loop source.
	SourceID = glib.SourceID

	// RGB is a trace/display color.
	RGB = draw.RGB
	// Surface is a raster canvas for snapshots.
	Surface = draw.Surface

	// Tuple is one timestamped sample in the §3.3 wire format.
	Tuple = tuple.Tuple

	// NetServer receives published tuple streams, feeds attached scopes,
	// and fans the merged stream out to subscribers (§4.4 + hub).
	NetServer = netscope.Server
	// NetClient asynchronously publishes tuples to a NetServer.
	NetClient = netscope.Client
	// NetSubscriber consumes a hub's merged stream (snapshot + deltas);
	// created with options it speaks the v2 query/control plane.
	NetSubscriber = netscope.Subscriber
	// SubscribeOption configures a v2 subscription (WithSignals,
	// WithMaxRate, WithSince, ...).
	SubscribeOption = netscope.SubscribeOption
	// SubscriptionRequest is the explicit form of a v2 subscription, for
	// NetServer.SubscribeWith.
	SubscriptionRequest = netscope.SubscriptionRequest
	// FanoutStats are the hub's lifetime fan-out counters, including the
	// v2 plane's filter/decimation accounting.
	FanoutStats = netscope.FanoutStats
	// WebGateway is the hub's HTTP face: SSE and WebSocket live streams,
	// the /v1 historical query API, and the embedded dashboard. Build
	// with NewWebGateway, mount with NetServer.ListenWeb.
	WebGateway = webscope.Gateway
	// WebOptions configures a WebGateway; the zero value is usable.
	WebOptions = webscope.Options
	// ParamInfo is a point-in-time snapshot of one control parameter.
	ParamInfo = core.ParamInfo
	// ControlFrame is one parsed '#' control line of an embedded protocol
	// (the hub's v2 frames, param notifications, ...).
	ControlFrame = tuple.ControlFrame

	// RecordLog is the flight recorder: a segmented on-disk tuple log
	// with bounded retention (attach one with NetServer.Record).
	RecordLog = reclog.Log
	// RecordOptions tune segment rotation, retention and queueing.
	RecordOptions = reclog.Options
	// RecordSession is a recorded directory opened for replay.
	RecordSession = reclog.Session
	// Replayer streams a RecordSession back at ×N or as fast as possible.
	Replayer = reclog.Replayer
)

// OpenRecordLog opens a flight-recorder directory for writing without a
// server attached (NetServer.Record wires one to a hub). Set
// RecordOptions.WireVersion to 3 to record the binary framing of
// docs/WIRE.md; replay autodetects per segment, so sessions may mix.
func OpenRecordLog(dir string, opts RecordOptions) (*RecordLog, error) {
	return reclog.Open(dir, opts)
}

// OpenSession indexes a recorded flight-recorder directory for replay.
func OpenSession(dir string) (*RecordSession, error) { return reclog.OpenSession(dir) }

// NewReplayer creates a replayer over a recorded session.
func NewReplayer(s *RecordSession) *Replayer { return reclog.NewReplayer(s) }

// Signal kinds (§3.1).
const (
	KindInteger = core.KindInteger
	KindBoolean = core.KindBoolean
	KindShort   = core.KindShort
	KindFloat   = core.KindFloat
	KindFunc    = core.KindFunc
	KindBuffer  = core.KindBuffer
)

// Aggregation functions (§4.2).
const (
	AggNone     = core.AggNone
	AggMax      = core.AggMax
	AggMin      = core.AggMin
	AggSum      = core.AggSum
	AggRate     = core.AggRate
	AggAverage  = core.AggAverage
	AggEvents   = core.AggEvents
	AggAnyEvent = core.AggAnyEvent
)

// Line modes.
const (
	LineSolid  = core.LineSolid
	LinePoints = core.LinePoints
	LineFilled = core.LineFilled
)

// Acquisition modes.
const (
	ModeStopped  = core.ModeStopped
	ModePolling  = core.ModePolling
	ModePlayback = core.ModePlayback
)

// Display domains.
const (
	TimeDomain = core.TimeDomain
	FreqDomain = core.FreqDomain
)

// DefaultPeriod is the paper's example 50 ms polling period.
const DefaultPeriod = core.DefaultPeriod

// DefaultTickGranularity is the modeled kernel timer tick (10 ms, §4.5).
const DefaultTickGranularity = glib.DefaultTickGranularity

// NewLoop creates an event loop on the given clock (nil for the real
// clock).
func NewLoop(clock Clock) *Loop { return glib.NewLoop(clock) }

// NewVirtualClock returns a manually advanced clock positioned at start,
// for deterministic scopes.
func NewVirtualClock(start time.Time) *VirtualClock { return glib.NewVirtualClock(start) }

// NewLoopGranularity creates a loop with an explicit timer tick quantum;
// a granularity of 0 gives ideal (unquantized) timers.
func NewLoopGranularity(clock Clock, g time.Duration) *Loop {
	return glib.NewLoop(clock, glib.WithGranularity(g))
}

// New creates a scope named name with a width×height canvas attached to
// loop, like the paper's gtk_scope_new.
func New(loop *Loop, name string, width, height int) *Scope {
	return core.New(loop, name, width, height)
}

// NewParams returns an empty control-parameter registry.
func NewParams() *ParamSet { return core.NewParamSet() }

// IntParam builds a Param backed by an IntVar.
func IntParam(name string, v *IntVar, minVal, maxVal int64) *Param {
	return core.IntParam(name, v, minVal, maxVal)
}

// FloatParam builds a Param backed by a FloatVar.
func FloatParam(name string, v *FloatVar, minVal, maxVal float64) *Param {
	return core.FloatParam(name, v, minVal, maxVal)
}

// BoolParam builds a Param backed by a BoolVar.
func BoolParam(name string, v *BoolVar) *Param { return core.BoolParam(name, v) }

// FuncWithArgs reproduces the paper's two-argument FUNC signal signature.
func FuncWithArgs(fn func(arg1, arg2 any) float64, arg1, arg2 any) FuncSource {
	return core.FuncWithArgs(fn, arg1, arg2)
}

// NewNetServer creates a streaming server/hub on loop; attach scopes, then
// call Listen (publisher side) and/or ListenSubscribers (fan-out side).
func NewNetServer(loop *Loop) *NetServer { return netscope.NewServer(loop) }

// NewWebGateway builds the HTTP gateway over srv: live streams (SSE and
// WebSocket), the /v1 query API over the backfill store, params and
// sessions REST, and the embedded dashboard. Mount it with
// srv.ListenWeb(addr, g) — which also wires teardown into srv.Close — or
// on any mux of the caller's; it is a plain http.Handler. Endpoint
// reference: docs/HTTP.md.
func NewWebGateway(srv *NetServer, opts WebOptions) *WebGateway { return webscope.New(srv, opts) }

// DialNet connects a publisher to a server's Listen address.
func DialNet(addr string) (*NetClient, error) { return netscope.Dial(addr) }

// DialNetReconnect returns a publisher that connects in the background and
// survives server restarts with exponential-backoff reconnection.
func DialNetReconnect(addr string) *NetClient { return netscope.DialReconnect(addr) }

// DialNetUDP connects a publisher over the datagram lane (docs/WIRE.md §D):
// batches go out as sequence-numbered UDP datagrams, so a lossy network
// costs counted gaps at the receiver instead of head-of-line blocking
// here. The server side is NetServer.ListenPublishersUDP (or gscoped
// -publishers-udp).
func DialNetUDP(addr string) (*NetClient, error) { return netscope.DialUDP(addr) }

// SubscribeNet connects a viewer to a hub's ListenSubscribers address; fn
// receives the merged stream (snapshot or backfill first, then deltas) on
// the loop goroutine. With no options the viewer is a classic v1
// subscriber; options select the v2 query/control plane:
//
//	sub, err := gscope.SubscribeNet(loop, addr, fn,
//	    gscope.WithSignals("cpu.*"),          // per-signal subscription
//	    gscope.WithMaxRate(30),               // ≤30 samples/s/signal
//	    gscope.WithSince(-10*time.Second))    // backfill the last 10s
//
// and the returned subscriber's Command/OnControl reach the hub's remote
// parameters (PARAM LIST/GET/SET).
func SubscribeNet(loop *Loop, addr string, fn func(Tuple), opts ...SubscribeOption) (*NetSubscriber, error) {
	return netscope.SubscribeTo(loop, addr, fn, opts...)
}

// SubscribeNetBatch is SubscribeNet with batch delivery: fn receives every
// tuple decoded from one read chunk in a single call.
func SubscribeNetBatch(loop *Loop, addr string, fn func([]Tuple), opts ...SubscribeOption) (*NetSubscriber, error) {
	return netscope.SubscribeToBatch(loop, addr, fn, opts...)
}

// WithSignals restricts a subscription to signals matching the given exact
// names or path.Match globs ("cpu.*"), filtered server-side.
func WithSignals(patterns ...string) SubscribeOption { return netscope.WithSignals(patterns...) }

// WithMaxRate caps delivery at perSec tuples per second per signal,
// decimated server-side.
func WithMaxRate(perSec float64) SubscribeOption { return netscope.WithMaxRate(perSec) }

// WithSince requests backfill: negative d is a trailing window before the
// newest stream timestamp, positive an absolute stream offset.
func WithSince(d time.Duration) SubscribeOption { return netscope.WithSince(d) }

// WithResolution asks for the backfill decimated to at most cols min/max
// buckets per signal (with WithSince).
func WithResolution(cols int) SubscribeOption { return netscope.WithResolution(cols) }

// WithoutStream makes the connection control-plane only (param commands
// and notifications; no tuple stream).
func WithoutStream() SubscribeOption { return netscope.WithoutStream() }

// WithControl requests the v2 handshake with no other changes: the same
// tuples as v1, plus the control plane.
func WithControl() SubscribeOption { return netscope.WithControl() }

// WithWireVersion selects the subscription's tuple encoding: 3 negotiates
// the binary framing of docs/WIRE.md, cutting tuple bandwidth several-fold
// on telemetry streams (a hub too old to know the option serves text and
// the subscriber adapts, so 3 is always safe to request); 1 and 2 keep the
// text default. Decoding is internal either way — the callback sees the
// same Tuple values.
func WithWireVersion(v int) SubscribeOption { return netscope.WithWireVersion(v) }
