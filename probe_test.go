package gscope

import (
	"testing"
	"time"

	"repro/internal/glib"
	"repro/internal/netscope"
)

func TestRegistryLocalProbes(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	loop := NewLoopGranularity(clock, 0)
	scope := New(loop, "t", 200, 100)
	if _, err := scope.AddSignal(Sig{Name: "lat", Kind: KindBuffer}); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(WithScope(scope))
	p, err := reg.Probe("lat")
	if err != nil {
		t.Fatal(err)
	}
	if p2, err := reg.Probe("lat"); err != nil || p2 != p {
		t.Fatal("Probe not idempotent")
	}
	if _, err := reg.Probe("bad\nname"); err == nil {
		t.Fatal("invalid name accepted")
	}
	if p.Name() != "lat" {
		t.Fatalf("Name = %q", p.Name())
	}

	// Record uses the scope clock.
	clock.Set(time.Unix(0, 0).Add(40 * time.Millisecond))
	if !p.Record(1.5) {
		t.Fatal("Record rejected")
	}
	p.RecordAt(60*time.Millisecond, 2.5)
	p.Int().RecordAt(70*time.Millisecond, 3)
	p.Bool().RecordAt(80*time.Millisecond, true)
	reg.Flush()
	got := scope.Feed().Take(time.Second)
	if len(got) != 4 {
		t.Fatalf("drained %d tuples: %+v", len(got), got)
	}
	wantTimes := []int64{40, 60, 70, 80}
	wantVals := []float64{1.5, 2.5, 3, 1}
	for i, tu := range got {
		if tu.Time != wantTimes[i] || tu.Value != wantVals[i] || tu.Name != "lat" {
			t.Fatalf("tuple %d = %+v", i, tu)
		}
	}
}

func TestRegistryRemoteProbes(t *testing.T) {
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	srvLoop := glib.NewLoop(vc, glib.WithGranularity(0))
	srv := netscope.NewServer(srvLoop)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var got []Tuple
	srv.OnTuple = func(tu Tuple) { got = append(got, tu) }

	c, err := DialNet(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := NewRegistry(WithNetClient(c))
	p, err := reg.Probe("remote")
	if err != nil {
		t.Fatal(err)
	}
	if !p.RecordAt(10*time.Millisecond, 42) {
		t.Fatal("remote-only RecordAt reported a late drop")
	}
	p.RecordBatch([]Sample{{At: 20 * time.Millisecond, Value: 43}})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < 2 {
		srvLoop.Iterate()
		if time.Now().After(deadline) {
			t.Fatalf("server saw %d tuples", len(got))
		}
		time.Sleep(time.Millisecond)
	}
	if got[0] != (Tuple{Time: 10, Value: 42, Name: "remote"}) ||
		got[1] != (Tuple{Time: 20, Value: 43, Name: "remote"}) {
		t.Fatalf("got %+v", got)
	}
}

// A dual-sink registry fans one Record into both the local feed and the
// network client.
func TestRegistryDualSink(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	loop := NewLoopGranularity(clock, 0)
	scope := New(loop, "t", 200, 100)

	srv := netscope.NewServer(loop)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var remote []Tuple
	srv.OnTuple = func(tu Tuple) { remote = append(remote, tu) }

	c, err := DialNet(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := NewRegistry(WithScope(scope), WithNetClient(c))
	p, err := reg.Probe("both")
	if err != nil {
		t.Fatal(err)
	}
	p.RecordAt(5*time.Millisecond, 9)
	reg.Flush()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if local := scope.Feed().Take(time.Second); len(local) != 1 || local[0].Value != 9 {
		t.Fatalf("local sink got %+v", local)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(remote) < 1 {
		loop.Iterate()
		if time.Now().After(deadline) {
			t.Fatal("remote sink never saw the sample")
		}
		time.Sleep(time.Millisecond)
	}
	if remote[0] != (Tuple{Time: 5, Value: 9, Name: "both"}) {
		t.Fatalf("remote sink got %+v", remote)
	}
}
