package gscope

// Cross-module integration tests: the full pipelines a gscope deployment
// exercises — live experiment → record → replay → identical picture, and
// remote client → TCP → server scope → display.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/glib"
	"repro/internal/gtk"
	"repro/internal/mxtraf"
	"repro/internal/netscope"
	"repro/internal/tuple"
)

// TestRecordReplayPipeline runs the mxtraf experiment with a recorder
// attached, replays the recording into a second scope, and checks the
// replayed CWND trace matches what was displayed live — the §3.3 promise
// that a recorded file reproduces the session.
func TestRecordReplayPipeline(t *testing.T) {
	gen := mxtraf.New(mxtraf.DefaultConfig())
	rig := figures.NewRig("live", 300, 120)
	sc := rig.Scope

	cwnd := core.FuncSource(func() float64 { return gen.ElephantCwnd(0) })
	liveSig, err := sc.AddSignal(core.Sig{Name: "CWND", Source: cwnd, Max: 44})
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	sc.SetRecorder(&rec)
	period := 50 * time.Millisecond
	if err := sc.SetPollingMode(period); err != nil {
		t.Fatal(err)
	}
	if err := sc.StartPolling(); err != nil {
		t.Fatal(err)
	}
	gen.SetElephants(4)
	for now := time.Duration(0); now < 5*time.Second; now += period {
		gen.Sim().RunUntil(now + period)
		rig.Loop.Advance(period)
	}
	sc.Stop()
	sc.FlushRecorder() //nolint:errcheck

	tuples, err := tuple.NewReader(&rec, true).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 100 {
		t.Fatalf("recorded %d tuples, want 100 (5s at 50ms)", len(tuples))
	}

	// Replay into a second scope.
	rig2 := figures.NewRig("replay", 300, 120)
	replaySig, err := rig2.Scope.AddSignal(core.Sig{Name: "CWND", Kind: core.KindBuffer, Max: 44})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig2.Scope.SetPlaybackMode(tuples, period); err != nil {
		t.Fatal(err)
	}
	if err := rig2.Scope.StartPlayback(); err != nil {
		t.Fatal(err)
	}
	rig2.Loop.Advance(10 * time.Second)

	live := liveSig.Trace().RecentValues(100)
	replayed := replaySig.Trace().RecentValues(100)
	if len(live) != len(replayed) {
		t.Fatalf("trace lengths differ: %d vs %d", len(live), len(replayed))
	}
	for i := range live {
		if live[i] != replayed[i] {
			t.Fatalf("sample %d: live %v, replayed %v", i, live[i], replayed[i])
		}
	}
}

// TestStreamingPipeline runs the §4.4 deployment end to end over real
// TCP: an instrumented "application machine" streams metrics tuples to a
// scope server, which displays them after the configured delay and
// renders a frame containing the traces.
func TestStreamingPipeline(t *testing.T) {
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	scope := core.New(loop, "server", 300, 120)
	for _, name := range []string{"cwnd", "tput"} {
		if _, err := scope.AddSignal(core.Sig{Name: name, Kind: core.KindBuffer, Max: 50}); err != nil {
			t.Fatal(err)
		}
	}
	scope.SetDelay(100 * time.Millisecond)
	if err := scope.SetPollingMode(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	srv := netscope.NewServer(loop)
	srv.Attach(scope)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The remote side: an mxtraf run streaming snapshots.
	client, err := netscope.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	gen := mxtraf.New(mxtraf.DefaultConfig())
	gen.SetElephants(2)
	for now := time.Duration(0); now < 3*time.Second; now += 50 * time.Millisecond {
		gen.Sim().RunUntil(now + 50*time.Millisecond)
		m := gen.Snapshot()
		at := now + 50*time.Millisecond
		client.Send(at, "cwnd", gen.ElephantCwnd(0))   //nolint:errcheck
		client.Send(at, "tput", m.ThroughputBps/1e6*4) //nolint:errcheck
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	// Pump the loop until the server has ingested everything.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, recv, _ := srv.Stats()
		if recv >= 120 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server ingested only %d tuples", recv)
		}
		loop.Iterate()
		time.Sleep(time.Millisecond)
	}
	if err := scope.StartPolling(); err != nil {
		t.Fatal(err)
	}
	loop.Advance(4 * time.Second)

	for _, name := range []string{"cwnd", "tput"} {
		sig := scope.Signal(name)
		if _, ok := sig.Trace().Last(); !ok {
			t.Fatalf("signal %s never displayed", name)
		}
	}
	frame := gtk.NewScopeWidget(scope).RenderFrame()
	if frame.W == 0 {
		t.Fatal("no frame")
	}
	pushed, dropped := scope.Feed().Stats()
	if pushed < 120 {
		t.Fatalf("feed pushed=%d", pushed)
	}
	if dropped != 0 {
		t.Fatalf("unexpectedly dropped %d on-time samples", dropped)
	}
}

// TestViewerFileRoundTrip exercises the cmd/gscope workflow through the
// library: record a session to a real file, read it back strictly, replay.
func TestViewerFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.tup")

	rig := figures.NewRig("rec", 200, 80)
	var v core.IntVar
	if _, err := rig.Scope.AddSignal(core.Sig{Name: "x", Source: &v}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rig.Scope.SetRecorder(f)
	rig.Scope.SetPollingMode(20 * time.Millisecond) //nolint:errcheck
	rig.Scope.StartPolling()                        //nolint:errcheck
	for i := 0; i < 50; i++ {
		v.Store(int64(i))
		rig.Loop.Advance(20 * time.Millisecond)
	}
	rig.Scope.Stop()
	rig.Scope.FlushRecorder() //nolint:errcheck
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	tuples, err := tuple.NewReader(rf, true).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 50 {
		t.Fatalf("file holds %d tuples", len(tuples))
	}
	names := tuple.Names(tuples)
	if len(names) != 1 || names[0] != "x" {
		t.Fatalf("names = %v", names)
	}

	rig2 := figures.NewRig("play", 200, 80)
	sig, err := rig2.Scope.AddSignal(core.Sig{Name: "x", Kind: core.KindBuffer})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig2.Scope.SetPlaybackMode(tuples, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rig2.Scope.StartPlayback() //nolint:errcheck
	rig2.Loop.Advance(5 * time.Second)
	vals := sig.Trace().RecentValues(100)
	if len(vals) != 50 || vals[0] != 0 || vals[49] != 49 {
		t.Fatalf("replayed %d values, first=%v last=%v", len(vals), vals[0], vals[len(vals)-1])
	}
}
