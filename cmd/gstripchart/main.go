// Command gstripchart runs the baseline the paper compares gscope against
// (§5): a configuration-file driven stripchart that periodically reads
// values out of files (e.g. /proc) and plots them. Unlike gscope it has
// no programmatic interface — that contrast is the paper's point, and
// this tool exists so the comparison can be experienced directly.
//
// Usage:
//
//	gstripchart -config chart.conf -period 500ms -for 10s -png chart.png
//
// Example configuration:
//
//	begin loadavg
//	  filename /proc/loadavg
//	  pattern  ^(\S+)
//	  scale    100
//	  range    0 400
//	end
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/draw"
	"repro/internal/glib"
	"repro/internal/gtk"
	"repro/internal/stripchart"
)

func main() {
	var (
		config = flag.String("config", "", "configuration file (required)")
		period = flag.Duration("period", 500*time.Millisecond, "polling period")
		runFor = flag.Duration("for", 10*time.Second, "how long to run (0 = forever)")
		pngOut = flag.String("png", "", "write the final frame to this PNG")
		ansi   = flag.Bool("ansi", false, "paint the chart as ANSI art each second")
		width  = flag.Int("width", 600, "canvas width")
		height = flag.Int("height", 200, "canvas height")
	)
	flag.Parse()
	if *config == "" {
		fmt.Fprintln(os.Stderr, "gstripchart: -config required; see -h")
		os.Exit(2)
	}
	cfg, err := stripchart.LoadConfig(*config)
	if err != nil {
		fatal(err)
	}

	loop := glib.NewLoop(glib.RealClock{})
	chart, err := stripchart.New(loop, cfg, *width, *height, *period)
	if err != nil {
		fatal(err)
	}
	widget := gtk.NewScopeWidget(chart.Scope())

	if *ansi {
		fmt.Print(draw.ANSIClear())
		loop.TimeoutAdd(time.Second, func(int) bool {
			fmt.Print(draw.ANSIHome())
			widget.RenderFrame().WriteANSI(os.Stdout, draw.ANSIOptions{Scale: 3}) //nolint:errcheck
			return true
		})
	}
	if *runFor > 0 {
		loop.TimeoutAdd(*runFor, func(int) bool {
			loop.Quit()
			return false
		})
	}
	if err := chart.Start(); err != nil {
		fatal(err)
	}
	if err := loop.Run(); err != nil {
		fatal(err)
	}
	chart.Stop()
	if *pngOut != "" {
		if err := widget.RenderFrame().WritePNG(*pngOut); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *pngOut)
	}
	if n := chart.ReadErrors(); n > 0 {
		fmt.Fprintf(os.Stderr, "gstripchart: %d read errors\n", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gstripchart:", err)
	os.Exit(1)
}
