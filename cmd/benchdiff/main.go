// Command benchdiff compares `go test -bench` output against a committed
// JSON baseline and fails (exit 1) when any benchmark regresses by more
// than a threshold in ns/op. It is the CI benchmark-regression gate: the
// bench job runs the ingest/fan-out/render benchmarks and pipes them here.
//
// Usage:
//
//	go test -bench ... | benchdiff -baseline BENCH_baseline.json
//	benchdiff -baseline BENCH_baseline.json bench.txt
//	benchdiff -update -baseline BENCH_baseline.json bench.txt
//
// The baseline file records ns/op per benchmark plus free-form metadata:
//
//	{
//	  "note": "refreshed on the CI runner class the gate runs on",
//	  "benchmarks": {"BenchmarkFeedPushBatch": 6.1, ...}
//	}
//
// Refresh it with -update whenever a change intentionally shifts a hot
// path (or the runner hardware changes); the diff in review shows exactly
// which numbers moved and by how much.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference.
type Baseline struct {
	// Note is free-form provenance (host class, date, refresh reason).
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// reference ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		threshold    = fs.Float64("threshold", 0.30, "fail when ns/op exceeds baseline by this fraction")
		update       = fs.Bool("update", false, "rewrite the baseline from the input instead of comparing")
		note         = fs.String("note", "", "note to store with -update")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(current) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark results in input")
		return 2
	}

	if *update {
		b := Baseline{Note: *note, Benchmarks: current}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		data = append(data, '\n')
		if err := os.WriteFile(*baselinePath, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return 0
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v (run with -update to create it)\n", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		return 2
	}
	return compare(base, current, *threshold, stdout, stderr)
}

// compare prints one row per benchmark and returns the exit code.
func compare(base Baseline, current map[string]float64, threshold float64, stdout, stderr io.Writer) int {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	fresh := 0
	fmt.Fprintf(stdout, "%-52s %12s %12s %8s\n", "benchmark", "base ns/op", "now ns/op", "delta")
	for _, name := range names {
		now := current[name]
		ref, ok := base.Benchmarks[name]
		if !ok {
			// A benchmark the baseline has never seen (e.g. one added in
			// the same change, before the baseline refresh) is reported
			// and skipped: it has no reference to regress against, so it
			// must never fail the gate.
			fmt.Fprintf(stdout, "%-52s %12s %12.2f %8s\n", name, "-", now, "new")
			fresh++
			continue
		}
		delta := 0.0
		if ref > 0 {
			delta = now/ref - 1
		}
		status := fmt.Sprintf("%+6.1f%%", delta*100)
		if delta > threshold {
			status += "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-52s %12.2f %12.2f %s\n", name, ref, now, status)
	}
	for name := range base.Benchmarks {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(stderr, "benchdiff: warning: baseline benchmark %q missing from input\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%% vs %s\n",
			regressions, threshold*100, "baseline")
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: ok (%d compared, %d new/skipped, threshold %.0f%%)\n",
		len(names)-fresh, fresh, threshold*100)
	return 0
}

// parseBench extracts name → ns/op from `go test -bench` output. Repeated
// runs of one benchmark (-count > 1) keep the fastest, damping runner
// noise in the gate's favor of stability.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Layout: Name-P  N  ns float  "ns/op"  [metrics...]
		var ns float64
		found := false
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
				}
				ns = v
				found = true
				break
			}
		}
		if !found {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so baselines survive CPU-count
		// differences between runners.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	return out, sc.Err()
}
