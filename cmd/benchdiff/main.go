// Command benchdiff compares `go test -bench` output against a committed
// JSON baseline and fails (exit 1) when any benchmark regresses by more
// than a threshold in ns/op — or, for benchmarks run with -benchmem, in
// allocs/op. It is the CI benchmark-regression gate: the bench job runs
// the ingest/fan-out/render benchmarks and pipes them here.
//
// Usage:
//
//	go test -bench ... -benchmem | benchdiff -baseline BENCH_baseline.json
//	benchdiff -baseline BENCH_baseline.json bench.txt
//	benchdiff -update -baseline BENCH_baseline.json bench.txt
//
// The baseline file records ns/op (and allocs/op where reported) per
// benchmark plus free-form metadata:
//
//	{
//	  "note": "refreshed on the CI runner class the gate runs on",
//	  "benchmarks": {"BenchmarkFeedPushBatch": 6.1, ...},
//	  "allocs": {"BenchmarkProbeRecord": 0, ...}
//	}
//
// Both gates follow the same contract: a benchmark (or metric) the
// baseline has never seen is reported as new and skipped, never failed.
// The allocation gate additionally requires the regression to be at least
// one whole alloc/op, so integer jitter around a small baseline cannot
// trip it — but a 0 → 1 alloc/op change, the way a zero-allocation hot
// path typically dies, always fails.
//
// Refresh the baseline with -update whenever a change intentionally shifts
// a hot path (or the runner hardware changes); the diff in review shows
// exactly which numbers moved and by how much.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference.
type Baseline struct {
	// Note is free-form provenance (host class, date, refresh reason).
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// reference ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Allocs maps benchmark name to its reference allocs/op, for
	// benchmarks run with -benchmem when the baseline was refreshed.
	Allocs map[string]float64 `json:"allocs,omitempty"`
}

// result is one benchmark's parsed metrics.
type result struct {
	ns        float64
	allocs    float64
	hasAllocs bool
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath   = fs.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		threshold      = fs.Float64("threshold", 0.30, "fail when ns/op exceeds baseline by this fraction")
		allocThreshold = fs.Float64("alloc-threshold", 0.30, "fail when allocs/op exceeds baseline by this fraction (and by at least one alloc)")
		update         = fs.Bool("update", false, "rewrite the baseline from the input instead of comparing")
		note           = fs.String("note", "", "note to store with -update")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if len(current) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark results in input")
		return 2
	}

	if *update {
		b := Baseline{Note: *note, Benchmarks: make(map[string]float64, len(current))}
		for name, r := range current {
			b.Benchmarks[name] = r.ns
			if r.hasAllocs {
				if b.Allocs == nil {
					b.Allocs = make(map[string]float64)
				}
				b.Allocs[name] = r.allocs
			}
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		data = append(data, '\n')
		if err := os.WriteFile(*baselinePath, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: wrote %d benchmarks (%d with allocs) to %s\n",
			len(b.Benchmarks), len(b.Allocs), *baselinePath)
		return 0
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v (run with -update to create it)\n", err)
		return 2
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		return 2
	}
	return compare(base, current, *threshold, *allocThreshold, stdout, stderr)
}

// allocsRegressed applies the allocation gate: more than the threshold
// fraction over baseline AND at least one whole alloc worse, so integer
// jitter on small counts cannot trip it while 0 → 1 always does.
func allocsRegressed(ref, now, threshold float64) bool {
	return now > ref*(1+threshold) && now-ref >= 1
}

// compare prints one row per benchmark and returns the exit code.
func compare(base Baseline, current map[string]result, threshold, allocThreshold float64, stdout, stderr io.Writer) int {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	fresh := 0
	fmt.Fprintf(stdout, "%-52s %12s %12s %8s\n", "benchmark", "base ns/op", "now ns/op", "delta")
	for _, name := range names {
		now := current[name]
		ref, ok := base.Benchmarks[name]
		if !ok {
			// A benchmark the baseline has never seen (e.g. one added in
			// the same change, before the baseline refresh) is reported
			// and skipped: it has no reference to regress against, so it
			// must never fail the gate.
			fmt.Fprintf(stdout, "%-52s %12s %12.2f %8s\n", name, "-", now.ns, "new")
			fresh++
			continue
		}
		delta := 0.0
		if ref > 0 {
			delta = now.ns/ref - 1
		}
		status := fmt.Sprintf("%+6.1f%%", delta*100)
		if delta > threshold {
			status += "  REGRESSION"
			regressions++
		}
		// The allocation gate runs where both sides have data; a baseline
		// without an allocs entry for this benchmark is the "new/skipped"
		// case of that metric.
		if allocRef, ok := base.Allocs[name]; ok && now.hasAllocs {
			if allocsRegressed(allocRef, now.allocs, allocThreshold) {
				status += fmt.Sprintf("  ALLOCS %.0f→%.0f REGRESSION", allocRef, now.allocs)
				regressions++
			}
		} else if now.hasAllocs && base.Allocs != nil {
			status += "  allocs-new"
		}
		fmt.Fprintf(stdout, "%-52s %12.2f %12.2f %s\n", name, ref, now.ns, status)
	}
	for name := range base.Benchmarks {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(stderr, "benchdiff: warning: baseline benchmark %q missing from input\n", name)
		}
	}
	for name := range base.Allocs {
		if r, ok := current[name]; ok && !r.hasAllocs {
			fmt.Fprintf(stderr, "benchdiff: warning: baseline has allocs/op for %q but the input reports none (run with -benchmem)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d metric(s) regressed more than the threshold (%.0f%% ns/op, %.0f%% allocs/op) vs baseline\n",
			regressions, threshold*100, allocThreshold*100)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: ok (%d compared, %d new/skipped, threshold %.0f%%)\n",
		len(names)-fresh, fresh, threshold*100)
	return 0
}

// parseBench extracts name → {ns/op, allocs/op} from `go test -bench`
// output (allocs/op appears with -benchmem or b.ReportAllocs). Repeated
// runs of one benchmark (-count > 1) keep the best of each metric, damping
// runner noise in the gate's favor of stability.
func parseBench(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Layout: Name-P  N  ns "ns/op"  [B "B/op"  allocs "allocs/op"]  [metrics...]
		var ns, allocs float64
		foundNS, foundAllocs := false, false
		for i := 1; i+1 < len(fields); i++ {
			unit := fields[i+1]
			if unit != "ns/op" && unit != "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad %s in %q: %w", unit, sc.Text(), err)
			}
			if unit == "ns/op" && !foundNS {
				ns, foundNS = v, true
			} else if unit == "allocs/op" {
				allocs, foundAllocs = v, true
			}
		}
		if !foundNS {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so baselines survive CPU-count
		// differences between runners.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		prev, seen := out[name]
		if !seen {
			out[name] = result{ns: ns, allocs: allocs, hasAllocs: foundAllocs}
			continue
		}
		if ns < prev.ns {
			prev.ns = ns
		}
		if foundAllocs && (!prev.hasAllocs || allocs < prev.allocs) {
			prev.allocs, prev.hasAllocs = allocs, true
		}
		out[name] = prev
	}
	return out, sc.Err()
}
