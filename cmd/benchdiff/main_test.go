package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFeedPushPerSample-8   	20000000	        25.00 ns/op	  40000000 tuples/s
BenchmarkFeedPushBatch-8       	90000000	         6.00 ns/op	 160000000 tuples/s
BenchmarkTraceView/window=1048576-8      	    6789	     50000 ns/op	      2048 samples/col
BenchmarkTupleParse-8          	 4000000	       300.0 ns/op
PASS
ok  	repro	2.0s
`

// sampleBenchMem is -benchmem output: B/op and allocs/op columns present.
const sampleBenchMem = `BenchmarkProbeRecord-8        	100000000	        10.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkClientSendProbeBatch-8	 20000000	        80.00 ns/op	       1 B/op	       0 allocs/op
BenchmarkTupleParse-8          	  4000000	       300.0 ns/op	      64 B/op	       3 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFeedPushPerSample":        25,
		"BenchmarkFeedPushBatch":            6,
		"BenchmarkTraceView/window=1048576": 50000,
		"BenchmarkTupleParse":               300,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
	for name, ns := range want {
		if got[name].ns != ns {
			t.Fatalf("%s = %v, want %v", name, got[name].ns, ns)
		}
		if got[name].hasAllocs {
			t.Fatalf("%s claims allocs without -benchmem output", name)
		}
	}
}

func TestParseBenchAllocs(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBenchMem))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]struct{ ns, allocs float64 }{
		"BenchmarkProbeRecord":          {10, 0},
		"BenchmarkClientSendProbeBatch": {80, 0},
		"BenchmarkTupleParse":           {300, 3},
	}
	for name, want := range cases {
		r := got[name]
		if !r.hasAllocs || r.ns != want.ns || r.allocs != want.allocs {
			t.Fatalf("%s = %+v, want %+v", name, r, want)
		}
	}
}

func TestParseBenchKeepsFastestOfRepeats(t *testing.T) {
	in := "BenchmarkX-2 100 40.0 ns/op\nBenchmarkX-2 100 30.0 ns/op\nBenchmarkX-2 100 35.0 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].ns != 30 {
		t.Fatalf("kept %v, want fastest 30", got["BenchmarkX"].ns)
	}
	// Best of each metric independently, including a repeat without the
	// allocs columns.
	in = "BenchmarkY-2 100 40.0 ns/op 16 B/op 4 allocs/op\n" +
		"BenchmarkY-2 100 30.0 ns/op 8 B/op 2 allocs/op\n" +
		"BenchmarkY-2 100 35.0 ns/op\n"
	got, err = parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r := got["BenchmarkY"]; r.ns != 30 || !r.hasAllocs || r.allocs != 2 {
		t.Fatalf("BenchmarkY = %+v", r)
	}
}

func writeBaseline(t *testing.T, dir string, b Baseline) string {
	t.Helper()
	data, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinThreshold(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkFeedPushPerSample":        20, // now 25: +25% < 30%
		"BenchmarkFeedPushBatch":            6,
		"BenchmarkTraceView/window=1048576": 60000, // improved
		"BenchmarkTupleParse":               300,
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "benchdiff: ok") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 200, // now 300: +50% > 30%
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("missing REGRESSION marker:\n%s", out.String())
	}
}

func TestGateThresholdFlag(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 290, // +3.4%
	}})
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path, "-threshold", "0.02"},
		strings.NewReader(sampleBench), &out, &errb); code != 1 {
		t.Fatalf("tight threshold should fail, got %d", code)
	}
}

func TestGateNewAndMissingBenchmarks(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 300,
		"BenchmarkGone":       10,
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Fatalf("new benchmarks not marked:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "BenchmarkGone") {
		t.Fatalf("missing-benchmark warning absent:\n%s", errb.String())
	}
}

func TestUpdateWritesBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.json")
	var out, errb bytes.Buffer
	code := run([]string{"-update", "-baseline", path, "-note", "test host"},
		strings.NewReader(sampleBench), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Note != "test host" || len(b.Benchmarks) != 4 {
		t.Fatalf("baseline = %+v", b)
	}
	// The written baseline gates its own input cleanly.
	out.Reset()
	if code := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb); code != 0 {
		t.Fatalf("self-compare failed: %d", code)
	}
}

func TestAllocGateFailsOnRegression(t *testing.T) {
	// BenchmarkTupleParse: 1 → 3 allocs/op (+200%, ≥1 alloc) must fail
	// even though ns/op is unchanged.
	path := writeBaseline(t, t.TempDir(), Baseline{
		Benchmarks: map[string]float64{
			"BenchmarkProbeRecord":          10,
			"BenchmarkClientSendProbeBatch": 80,
			"BenchmarkTupleParse":           300,
		},
		Allocs: map[string]float64{
			"BenchmarkProbeRecord":          0,
			"BenchmarkClientSendProbeBatch": 0,
			"BenchmarkTupleParse":           1,
		},
	})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(sampleBenchMem), &out, &errb)
	if code != 1 {
		t.Fatalf("alloc regression passed: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ALLOCS 1→3 REGRESSION") {
		t.Fatalf("missing allocs regression marker:\n%s", out.String())
	}
}

func TestAllocGateZeroToOneFails(t *testing.T) {
	// The way a zero-allocation hot path dies: 0 → 1 allocs/op. The
	// relative threshold alone cannot express that; the ≥1-alloc rule
	// catches it.
	path := writeBaseline(t, t.TempDir(), Baseline{
		Benchmarks: map[string]float64{"BenchmarkProbeRecord": 10},
		Allocs:     map[string]float64{"BenchmarkProbeRecord": 0},
	})
	in := "BenchmarkProbeRecord-8 100 10.0 ns/op 8 B/op 1 allocs/op\n"
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path}, strings.NewReader(in), &out, &errb); code != 1 {
		t.Fatalf("0→1 allocs passed the gate: exit %d\n%s", code, out.String())
	}
}

func TestAllocGateToleratesJitterAndImprovement(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{
		Benchmarks: map[string]float64{"BenchmarkA": 10, "BenchmarkB": 10},
		Allocs:     map[string]float64{"BenchmarkA": 3, "BenchmarkB": 100},
	})
	// A: 3 → 3 (unchanged). B: 100 → 101 (+1 alloc but only +1% < 30%).
	in := "BenchmarkA-8 100 10.0 ns/op 8 B/op 3 allocs/op\n" +
		"BenchmarkB-8 100 10.0 ns/op 8 B/op 101 allocs/op\n"
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path}, strings.NewReader(in), &out, &errb); code != 0 {
		t.Fatalf("jitter failed the gate: exit %d\n%s%s", code, out.String(), errb.String())
	}
}

func TestAllocGateThresholdFlag(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{
		Benchmarks: map[string]float64{"BenchmarkB": 10},
		Allocs:     map[string]float64{"BenchmarkB": 100},
	})
	in := "BenchmarkB-8 100 10.0 ns/op 8 B/op 110 allocs/op\n" // +10%
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path, "-alloc-threshold", "0.05"},
		strings.NewReader(in), &out, &errb); code != 1 {
		t.Fatalf("tight alloc threshold should fail, got %d", code)
	}
}

// Benchmarks whose allocs the baseline has never recorded — or whole
// benchmarks new to the baseline — are skipped by the allocation gate,
// exactly like the ns/op gate's new/skipped contract.
func TestAllocGateSkipsNewMetrics(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{
		Benchmarks: map[string]float64{
			"BenchmarkClientSendProbeBatch": 80,
			"BenchmarkTupleParse":           300,
		},
		// Allocs present for one benchmark only; ProbeRecord entirely new.
		Allocs: map[string]float64{"BenchmarkClientSendProbeBatch": 0},
	})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(sampleBenchMem), &out, &errb)
	if code != 0 {
		t.Fatalf("new alloc metrics failed the gate: exit %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "allocs-new") {
		t.Fatalf("allocs-new not reported:\n%s", out.String())
	}
}

// An old-format baseline (no allocs key at all) keeps gating ns/op and
// ignores allocations entirely.
func TestAllocGateBackwardCompatibleBaseline(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkProbeRecord":          10,
		"BenchmarkClientSendProbeBatch": 80,
		"BenchmarkTupleParse":           300,
	}})
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path}, strings.NewReader(sampleBenchMem), &out, &errb); code != 0 {
		t.Fatalf("legacy baseline failed: exit %d\n%s%s", code, out.String(), errb.String())
	}
}

func TestUpdateWritesAllocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-update", "-baseline", path},
		strings.NewReader(sampleBenchMem), &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 3 || len(b.Allocs) != 3 {
		t.Fatalf("baseline = %+v", b)
	}
	if b.Allocs["BenchmarkProbeRecord"] != 0 || b.Allocs["BenchmarkTupleParse"] != 3 {
		t.Fatalf("allocs = %+v", b.Allocs)
	}
	// The written baseline gates its own input cleanly.
	out.Reset()
	if code := run([]string{"-baseline", path}, strings.NewReader(sampleBenchMem), &out, &errb); code != 0 {
		t.Fatalf("self-compare failed: %d\n%s", code, out.String())
	}
}

func TestEmptyInputRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, strings.NewReader("no benchmarks here\n"), &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestGateSkipsBenchesAbsentFromBaseline pins the contract the record/
// replay benchmarks rely on between landing and the next baseline refresh:
// benchmarks present in the run but absent from the baseline are reported
// as "new" and skipped — never a regression, never an exit-1 — while real
// regressions elsewhere in the same run still fail the gate.
func TestGateSkipsBenchesAbsentFromBaseline(t *testing.T) {
	const benchOut = `BenchmarkRecordAppend-8     5000000    120.0 ns/op
BenchmarkReplayDrain-8      3000000    410.0 ns/op
BenchmarkTupleParse-8       4000000    300.0 ns/op
`
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 300, // the only known benchmark, unchanged
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(benchOut), &out, &errb)
	if code != 0 {
		t.Fatalf("new benchmarks failed the gate: exit %d\n%s%s", code, out.String(), errb.String())
	}
	for _, name := range []string{"BenchmarkRecordAppend", "BenchmarkReplayDrain"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("%s not reported:\n%s", name, out.String())
		}
	}
	if !strings.Contains(out.String(), "1 compared, 2 new/skipped") {
		t.Fatalf("summary does not count new benchmarks:\n%s", out.String())
	}

	// A regression in a known benchmark still fails even with new ones
	// present.
	path2 := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 100, // now 300: +200%
	}})
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", path2}, strings.NewReader(benchOut), &out, &errb); code != 1 {
		t.Fatalf("regression hidden by new benchmarks: exit %d", code)
	}
}
