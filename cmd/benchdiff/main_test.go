package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFeedPushPerSample-8   	20000000	        25.00 ns/op	  40000000 tuples/s
BenchmarkFeedPushBatch-8       	90000000	         6.00 ns/op	 160000000 tuples/s
BenchmarkTraceView/window=1048576-8      	    6789	     50000 ns/op	      2048 samples/col
BenchmarkTupleParse-8          	 4000000	       300.0 ns/op
PASS
ok  	repro	2.0s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFeedPushPerSample":        25,
		"BenchmarkFeedPushBatch":            6,
		"BenchmarkTraceView/window=1048576": 50000,
		"BenchmarkTupleParse":               300,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Fatalf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestParseBenchKeepsFastestOfRepeats(t *testing.T) {
	in := "BenchmarkX-2 100 40.0 ns/op\nBenchmarkX-2 100 30.0 ns/op\nBenchmarkX-2 100 35.0 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"] != 30 {
		t.Fatalf("kept %v, want fastest 30", got["BenchmarkX"])
	}
}

func writeBaseline(t *testing.T, dir string, b Baseline) string {
	t.Helper()
	data, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinThreshold(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkFeedPushPerSample":        20, // now 25: +25% < 30%
		"BenchmarkFeedPushBatch":            6,
		"BenchmarkTraceView/window=1048576": 60000, // improved
		"BenchmarkTupleParse":               300,
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "benchdiff: ok") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 200, // now 300: +50% > 30%
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("missing REGRESSION marker:\n%s", out.String())
	}
}

func TestGateThresholdFlag(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 290, // +3.4%
	}})
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", path, "-threshold", "0.02"},
		strings.NewReader(sampleBench), &out, &errb); code != 1 {
		t.Fatalf("tight threshold should fail, got %d", code)
	}
}

func TestGateNewAndMissingBenchmarks(t *testing.T) {
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 300,
		"BenchmarkGone":       10,
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Fatalf("new benchmarks not marked:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "BenchmarkGone") {
		t.Fatalf("missing-benchmark warning absent:\n%s", errb.String())
	}
}

func TestUpdateWritesBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.json")
	var out, errb bytes.Buffer
	code := run([]string{"-update", "-baseline", path, "-note", "test host"},
		strings.NewReader(sampleBench), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Note != "test host" || len(b.Benchmarks) != 4 {
		t.Fatalf("baseline = %+v", b)
	}
	// The written baseline gates its own input cleanly.
	out.Reset()
	if code := run([]string{"-baseline", path}, strings.NewReader(sampleBench), &out, &errb); code != 0 {
		t.Fatalf("self-compare failed: %d", code)
	}
}

func TestEmptyInputRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, strings.NewReader("no benchmarks here\n"), &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestGateSkipsBenchesAbsentFromBaseline pins the contract the record/
// replay benchmarks rely on between landing and the next baseline refresh:
// benchmarks present in the run but absent from the baseline are reported
// as "new" and skipped — never a regression, never an exit-1 — while real
// regressions elsewhere in the same run still fail the gate.
func TestGateSkipsBenchesAbsentFromBaseline(t *testing.T) {
	const benchOut = `BenchmarkRecordAppend-8     5000000    120.0 ns/op
BenchmarkReplayDrain-8      3000000    410.0 ns/op
BenchmarkTupleParse-8       4000000    300.0 ns/op
`
	path := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 300, // the only known benchmark, unchanged
	}})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path}, strings.NewReader(benchOut), &out, &errb)
	if code != 0 {
		t.Fatalf("new benchmarks failed the gate: exit %d\n%s%s", code, out.String(), errb.String())
	}
	for _, name := range []string{"BenchmarkRecordAppend", "BenchmarkReplayDrain"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("%s not reported:\n%s", name, out.String())
		}
	}
	if !strings.Contains(out.String(), "1 compared, 2 new/skipped") {
		t.Fatalf("summary does not count new benchmarks:\n%s", out.String())
	}

	// A regression in a known benchmark still fails even with new ones
	// present.
	path2 := writeBaseline(t, t.TempDir(), Baseline{Benchmarks: map[string]float64{
		"BenchmarkTupleParse": 100, // now 300: +200%
	}})
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", path2}, strings.NewReader(benchOut), &out, &errb); code != 1 {
		t.Fatalf("regression hidden by new benchmarks: exit %d", code)
	}
}
