package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/netscope"
	"repro/internal/reclog"
	"repro/internal/testutil"
	"repro/internal/tuple"
)

// The -wire flag: v3 binary upstream subscriptions and binary flight
// recording (docs/WIRE.md).

func TestParseFlagsWire(t *testing.T) {
	cfg, err := parseFlags([]string{"-upstream", "h:1", "-subscribers", "127.0.0.1:0", "-wire", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.wire != 3 {
		t.Fatalf("wire = %d, want 3", cfg.wire)
	}
	if _, err := parseFlags([]string{"-record", "/tmp/x", "-wire", "3"}); err != nil {
		t.Fatalf("-wire 3 with -record rejected: %v", err)
	}
	if _, err := parseFlags([]string{"-subscribers", "127.0.0.1:0", "-wire", "5"}); err == nil {
		t.Fatal("-wire 5 accepted")
	}
	if _, err := parseFlags([]string{"-subscribers", "127.0.0.1:0", "-wire", "3"}); err == nil {
		t.Fatal("-wire 3 without -upstream/-record accepted")
	}
}

// TestRelayChainedBinaryUpstream: a chained relay negotiates a binary
// upstream subscription; tuples cross the binary hop and come out of the
// downstream fan-out as ordinary text.
func TestRelayChainedBinaryUpstream(t *testing.T) {
	hub := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0")
	chained := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0",
		"-upstream", hub.SubAddr.String(), "-wire", "3")

	var mu sync.Mutex
	var got []tuple.Tuple
	conn := readTuples(t, chained.SubAddr.String(), &got, &mu)
	defer conn.Close()

	c, err := netscope.Dial(hub.PubAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		c.Send(time.Duration(i)*time.Millisecond, "x", float64(i)) //nolint:errcheck
	}
	c.Flush() //nolint:errcheck

	testutil.WaitFor(t, "binary relay delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 4
	})
	chained.upMu.Lock()
	up := chained.up
	chained.upMu.Unlock()
	if !up.Acked() {
		t.Fatal("binary upstream subscription not acked")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, tu := range got[:4] {
		if tu.Name != "x" || tu.Value != float64(i) {
			t.Fatalf("relayed tuple %d = %+v", i, tu)
		}
	}
}

// TestGscopedBinaryRecord: -record -wire 3 writes binary segments, and the
// session replays to the same tuples the publisher sent.
func TestGscopedBinaryRecord(t *testing.T) {
	dir := t.TempDir() + "/session"
	in := make([]tuple.Tuple, 300)
	for i := range in {
		in[i] = tuple.Tuple{Time: int64(i) * 3, Value: float64(1000 + i), Name: "cps"}
	}

	rec := startRelay(t, "-listen", "127.0.0.1:0", "-record", dir, "-wire", "3")
	c, err := netscope.Dial(rec.PubAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(in); i += 50 {
		if err := c.SendBatch(in[i : i+50]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, "flight log drain", func() bool {
		_, _, written := rec.srv.FlightLog().Stats()
		return written >= int64(len(in))
	})
	c.Close()  //nolint:errcheck
	rec.stop() // cleanup seals the session

	testutil.WaitFor(t, "session to seal", func() bool {
		sess, err := reclog.OpenSession(dir)
		return err == nil && sess.Tuples() >= int64(len(in))
	})

	data, err := os.ReadFile(filepath.Join(dir, "seg-00000001.tuples"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("wire=3")) || !bytes.Contains(data, []byte{tuple.FrameMarker}) {
		t.Fatalf("recorded segment is not binary: %q", data[:min(len(data), 60)])
	}

	sess, err := reclog.OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := reclog.NewReplayer(sess)
	rep.SetSpeed(0)
	var got []tuple.Tuple
	if err := rep.Run(func(b []tuple.Tuple) error {
		got = append(got, b...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := tuple.AppendWireBatch(nil, in)
	have := tuple.AppendWireBatch(nil, got)
	if !bytes.Equal(want, have) {
		t.Fatalf("binary recording replayed %d tuples, want %d byte-identical", len(got), len(in))
	}
}
