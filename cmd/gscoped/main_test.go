package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netscope"
	"repro/internal/reclog"
	"repro/internal/testutil"
	"repro/internal/tuple"
)

// The daemon's whole stack — loops, relays, recorders, subscribers —
// promises goroutine-clean shutdown; the e2e suite enforces it.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-signals", "cps, errps ,tput"})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(cfg.signals, "|"); got != "cps|errps|tput" {
		t.Fatalf("signals = %q", got)
	}
	if cfg.listen != "127.0.0.1:7420" || cfg.delay != 200*time.Millisecond {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.snapshot != netscope.DefaultSnapshotWindow || cfg.subQueue != netscope.DefaultSubscriberQueueLimit {
		t.Fatalf("hub defaults wrong: %+v", cfg)
	}
}

func TestParseFlagsRelayOptions(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-listen", ":0", "-subscribers", ":0", "-upstream", "hub:7421",
		"-snapshot", "2s", "-subqueue", "64",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.subscribers != ":0" || cfg.upstream != "hub:7421" {
		t.Fatalf("relay flags wrong: %+v", cfg)
	}
	if cfg.snapshot != 2*time.Second || cfg.subQueue != 64 {
		t.Fatalf("hub tuning wrong: %+v", cfg)
	}
	if len(cfg.signals) != 0 {
		t.Fatalf("headless relay should have no signals: %+v", cfg)
	}
}

func TestParseFlagsRejectsNothingToDo(t *testing.T) {
	if _, err := parseFlags(nil); err == nil {
		t.Fatal("no signals and no subscribers should be rejected")
	}
	if _, err := parseFlags([]string{"-ansi"}); err == nil {
		t.Fatal("-ansi without -signals should be rejected")
	}
	if _, err := parseFlags([]string{"-subscribers", ":0", "-png", "x.png"}); err == nil {
		t.Fatal("-png without -signals should be rejected")
	}
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag should be rejected")
	}
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h should surface flag.ErrHelp, got %v", err)
	}
}

func TestParseFlagsRejectsInvalidSignalNames(t *testing.T) {
	// Names the §3.3 wire format cannot carry must be rejected at the
	// flag, not silently corrupted in streams and recordings later.
	if _, err := parseFlags([]string{"-signals", "cps,bad\nname"}); !errors.Is(err, tuple.ErrBadName) {
		t.Fatalf("newline in -signals accepted: %v", err)
	}
	if _, err := parseFlags([]string{"-signals", "ok\rbad"}); !errors.Is(err, tuple.ErrBadName) {
		t.Fatal("carriage return in -signals accepted")
	}
}

// startRelay runs a relay in the background and returns it plus a stopper.
func startRelay(t *testing.T, args ...string) *relay {
	t.Helper()
	cfg, err := parseFlags(args)
	if err != nil {
		t.Fatal(err)
	}
	r, err := newRelay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.run(io.Discard) }()
	t.Cleanup(func() {
		r.stop()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("relay exited: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("relay did not stop")
		}
	})
	return r
}

// readTuples drains a subscriber connection into out from a goroutine.
func readTuples(t *testing.T, addr string, out *[]tuple.Tuple, mu *sync.Mutex) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		r := tuple.NewReader(conn, false)
		for {
			tu, err := r.Read()
			if err != nil {
				return
			}
			mu.Lock()
			*out = append(*out, tu)
			mu.Unlock()
		}
	}()
	return conn
}

// TestRelayEndToEnd is the loopback smoke test: a publisher streams into a
// displaying relay, and a downstream subscriber gets the re-published
// merged stream back out of the fan-out side.
func TestRelayEndToEnd(t *testing.T) {
	r := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0",
		"-signals", "cps", "-unixtime=false")

	var mu sync.Mutex
	var got []tuple.Tuple
	conn := readTuples(t, r.SubAddr.String(), &got, &mu)
	defer conn.Close()

	c, err := netscope.Dial(r.PubAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Send(time.Duration(i)*time.Millisecond, "cps", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber got %d/5 tuples", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 5; i++ {
		if got[i].Name != "cps" || got[i].Value != float64(i) {
			t.Fatalf("tuple %d = %v", i, got[i])
		}
	}
}

// TestRelayChained checks the -upstream path: publisher → hub → chained
// relay → subscriber.
func TestRelayChained(t *testing.T) {
	hub := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0")
	chained := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0",
		"-upstream", hub.SubAddr.String())

	var mu sync.Mutex
	var got []tuple.Tuple
	conn := readTuples(t, chained.SubAddr.String(), &got, &mu)
	defer conn.Close()

	c, err := netscope.Dial(hub.PubAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		c.Send(time.Duration(i)*time.Millisecond, "x", float64(i)) //nolint:errcheck
	}
	c.Flush() //nolint:errcheck

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("chained subscriber got %d/3 tuples", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRelayUpstreamReconnects restarts the upstream hub out from under a
// chained relay and checks the relay redials and resumes relaying instead
// of serving a frozen stream forever.
func TestRelayUpstreamReconnects(t *testing.T) {
	hub := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0")
	hubSubAddr := hub.SubAddr.String()
	chained := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0",
		"-upstream", hubSubAddr)

	var mu sync.Mutex
	var got []tuple.Tuple
	conn := readTuples(t, chained.SubAddr.String(), &got, &mu)
	defer conn.Close()

	// Kill the hub and wait for its subscriber port to come free.
	hub.stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if c, err := net.Dial("tcp", hubSubAddr); err != nil {
			break
		} else {
			c.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("hub port never freed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart a hub on the same subscriber port (retry while the chained
	// relay's redial probes race us for the listen call — they don't
	// bind, so this settles quickly).
	cfg, err := parseFlags([]string{"-listen", "127.0.0.1:0", "-subscribers", hubSubAddr})
	if err != nil {
		t.Fatal(err)
	}
	hub2, err := newRelay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- hub2.run(io.Discard) }()
	t.Cleanup(func() {
		hub2.stop()
		<-done
	})

	// Publish to the new hub until the chained relay's subscriber sees
	// data again — covering the relay's backoff window.
	c, err := netscope.Dial(hub2.PubAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	testutil.WaitUntil(t, "chained relay to resume after hub restart", 15*time.Second, func() bool {
		c.Send(time.Duration(time.Now().UnixMilli())*time.Millisecond, "x", 1) //nolint:errcheck
		mu.Lock()
		n := len(got)
		mu.Unlock()
		return n > 0
	})
}

func TestParseFlagsRecordReplay(t *testing.T) {
	cfg, err := parseFlags([]string{"-replay", "sess", "-subscribers", ":0",
		"-speed", "0", "-from", "10s", "-to", "20s", "-record-limit", "1048576"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.replay != "sess" || cfg.speed != 0 || cfg.from != 10*time.Second || cfg.to != 20*time.Second {
		t.Fatalf("replay flags wrong: %+v", cfg)
	}
	if cfg.recLimit != 1048576 {
		t.Fatalf("record-limit = %d", cfg.recLimit)
	}
	// A record-only daemon has something to do.
	if _, err := parseFlags([]string{"-record", "sess2"}); err != nil {
		t.Fatalf("record-only rejected: %v", err)
	}
	// Recording over the session being replayed is rejected.
	if _, err := parseFlags([]string{"-replay", "sess", "-record", "sess", "-subscribers", ":0"}); err == nil {
		t.Fatal("-replay dir == -record dir should be rejected")
	}
}

// TestGscopedRecordReplayRoundTrip is the daemon-level e2e for the flight
// recorder: a publisher streams into a recording relay; a second relay
// replays the sealed session as fast as possible to a downstream
// subscriber, whose received tuple stream must be wire-identical to what
// was published.
func TestGscopedRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/session"
	in := make([]tuple.Tuple, 500)
	for i := range in {
		in[i] = tuple.Tuple{Time: int64(i) * 3, Value: float64(i%17) + 0.25, Name: "cps"}
	}

	// Phase 1: record. No -for: stopped explicitly once everything is on
	// the wire.
	rec := startRelay(t, "-listen", "127.0.0.1:0", "-record", dir)
	c, err := netscope.Dial(rec.PubAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(in); i += 50 {
		if err := c.SendBatch(in[i : i+50]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, written := rec.srv.FlightLog().Stats(); written >= int64(len(in)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight log never drained")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()  //nolint:errcheck
	rec.stop() // cleanup (via startRelay) seals the session

	// Wait for the recording relay to actually seal the log before
	// replaying: its run() returns asynchronously after stop().
	testutil.WaitFor(t, "session to seal", func() bool {
		sess, err := reclog.OpenSession(dir)
		return err == nil && sess.Tuples() >= int64(len(in))
	})

	// Phase 2: replay through a fresh relay with a subscriber. -for keeps
	// the daemon serving after the replay finishes; a huge -snapshot
	// window means even a subscriber racing the fast replay sees the
	// whole stream via the connect-time snapshot.
	rep := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0",
		"-replay", dir, "-speed", "0", "-snapshot", "24h", "-subqueue", "65536",
		"-for", "1m")

	var mu sync.Mutex
	var got []tuple.Tuple
	conn := readTuples(t, rep.SubAddr.String(), &got, &mu)
	defer conn.Close()

	select {
	case <-rep.replayDone:
	case <-time.After(10 * time.Second):
		t.Fatal("replay never completed")
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= len(in) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber got %d/%d tuples", n, len(in))
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := tuple.AppendWireBatch(nil, in)
	have := tuple.AppendWireBatch(nil, got[:len(in)])
	if !bytes.Equal(want, have) {
		t.Fatalf("replayed stream differs from recording (%d tuples)", len(got))
	}
}

// TestGscopedReplayWindow replays a recorded session with -from/-to and
// checks only the window is delivered, seeked via the segment index.
func TestGscopedReplayWindow(t *testing.T) {
	dir := t.TempDir() + "/session"
	lg, err := reclog.Open(dir, reclog.Options{SegmentBytes: 2048, QueueLimit: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	var in []tuple.Tuple
	for i := 0; i < 2000; i++ {
		in = append(in, tuple.Tuple{Time: int64(i) * 10, Value: float64(i), Name: "x"})
	}
	for i := 0; i < len(in); i += 100 {
		lg.Append(in[i : i+100])
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	rep := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0",
		"-replay", dir, "-speed", "0", "-from", "5s", "-to", "10s",
		"-snapshot", "24h", "-subqueue", "65536", "-for", "1m")
	var mu sync.Mutex
	var got []tuple.Tuple
	conn := readTuples(t, rep.SubAddr.String(), &got, &mu)
	defer conn.Close()

	select {
	case <-rep.replayDone:
	case <-time.After(10 * time.Second):
		t.Fatal("replay never completed")
	}
	var want []tuple.Tuple
	for _, tu := range in {
		if tu.Time >= 5000 && tu.Time <= 10000 {
			want = append(want, tu)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber got %d/%d tuples", n, len(want))
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(tuple.AppendWireBatch(nil, want), tuple.AppendWireBatch(nil, got[:len(want)])) {
		t.Fatalf("window replay differs: got %d tuples, want %d", len(got), len(want))
	}
}

// TestReplayRelayFailedStartupDoesNotHang: when newRelay fails after the
// -replay session was opened (e.g. the listen port is taken), the error
// cleanup path must not wait for a replay goroutine that was never
// started.
func TestReplayRelayFailedStartupDoesNotHang(t *testing.T) {
	dir := t.TempDir() + "/session"
	lg, err := reclog.Open(dir, reclog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lg.Append([]tuple.Tuple{{Time: 1, Value: 1, Name: "x"}})
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0") // occupy a port
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cfg, err := parseFlags([]string{"-replay", dir, "-subscribers", ":0",
		"-listen", ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := newRelay(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("listen on an occupied port should fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("newRelay error path hung (waited on a replay that never started)")
	}
}

func TestParseFlagsV2Subscription(t *testing.T) {
	cfg, err := parseFlags([]string{"-upstream", "hub:7421", "-subscribers", ":0",
		"-signals", "cpu.*,mem", "-max-rate", "30", "-since", "10s"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.maxRate != 30 || cfg.since != 10*time.Second {
		t.Fatalf("v2 flags wrong: %+v", cfg)
	}
	if got := strings.Join(cfg.signals, "|"); got != "cpu.*|mem" {
		t.Fatalf("signals = %q", got)
	}
}

func TestParseFlagsRejectsBadV2Flags(t *testing.T) {
	if _, err := parseFlags([]string{"-subscribers", ":0", "-max-rate", "-1"}); err == nil {
		t.Fatal("negative -max-rate accepted")
	}
	if _, err := parseFlags([]string{"-subscribers", ":0", "-max-rate", "10"}); err == nil {
		t.Fatal("-max-rate without -upstream accepted")
	}
	if _, err := parseFlags([]string{"-subscribers", ":0", "-since", "10s"}); err == nil {
		t.Fatal("-since without -upstream accepted")
	}
	if _, err := parseFlags([]string{"-upstream", "h:1", "-subscribers", ":0", "-since", "-10s"}); err == nil {
		t.Fatal("negative -since accepted")
	}
}

func TestParseFlagsParamMode(t *testing.T) {
	cfg, err := parseFlags([]string{"-upstream", "hub:7421", "param", "set", "delay-ms", "300"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(cfg.paramCmd, " ") != "param set delay-ms 300" {
		t.Fatalf("paramCmd = %v", cfg.paramCmd)
	}
	if _, err := parseFlags([]string{"param", "list"}); err == nil {
		t.Fatal("param mode without -upstream accepted")
	}
	if _, err := parseFlags([]string{"-upstream", "h:1", "param", "set", "x"}); err == nil {
		t.Fatal("param set without a value accepted")
	}
	if _, err := parseFlags([]string{"-upstream", "h:1", "bogus"}); err == nil {
		t.Fatal("unknown positional command accepted")
	}
}

// TestGscopedParamGetSet drives the gscopectl-style path end to end: a
// displaying relay exposes delay-ms; the one-shot param mode sets it
// (clamped to its bounds), reads it back, and lists it — all through the
// same subscriber socket the viewers use.
func TestGscopedParamGetSet(t *testing.T) {
	r := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0",
		"-signals", "cps")
	addr := r.SubAddr.String()

	run := func(args ...string) string {
		t.Helper()
		cfg, err := parseFlags(append([]string{"-upstream", addr}, args...))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := runParamCmd(cfg, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		return out.String()
	}
	if got := run("param", "set", "delay-ms", "300"); !strings.Contains(got, "param-ok delay-ms 300") {
		t.Fatalf("set reply = %q", got)
	}
	if got := run("param", "get", "delay-ms"); !strings.Contains(got, "param delay-ms 300") {
		t.Fatalf("get reply = %q", got)
	}
	// Out-of-bounds set clamps server-side (delay-ms is bounded at 60s).
	if got := run("param", "set", "delay-ms", "999999"); !strings.Contains(got, "param-ok delay-ms 60000") {
		t.Fatalf("clamped set reply = %q", got)
	}
	if got := run("param", "list"); !strings.Contains(got, "delay-ms") || !strings.Contains(got, "mode=rw") {
		t.Fatalf("list reply = %q", got)
	}
	// Errors surface as errors, not output.
	cfg, err := parseFlags([]string{"-upstream", addr, "param", "get", "nope"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runParamCmd(cfg, &out); err == nil {
		t.Fatal("unknown parameter should error")
	}
}

// TestRelayFilteredUpstream: a chained relay with -signals subscribes
// upstream per-signal, so only the filtered stream crosses the link and
// reaches downstream viewers.
func TestRelayFilteredUpstream(t *testing.T) {
	hub := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0")
	chained := startRelay(t, "-listen", "127.0.0.1:0", "-subscribers", "127.0.0.1:0",
		"-upstream", hub.SubAddr.String(), "-signals", "cps", "-unixtime=false")

	var mu sync.Mutex
	var got []tuple.Tuple
	conn := readTuples(t, chained.SubAddr.String(), &got, &mu)
	defer conn.Close()

	c, err := netscope.Dial(hub.PubAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Send(time.Duration(i)*time.Millisecond, "cps", float64(i))  //nolint:errcheck
		c.Send(time.Duration(i)*time.Millisecond, "junk", float64(i)) //nolint:errcheck
	}
	c.Flush() //nolint:errcheck

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("filtered relay delivered %d/5", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, tu := range got {
		if tu.Name != "cps" {
			t.Fatalf("junk crossed the filtered relay: %+v", tu)
		}
	}
}

// TestRelayHTTPGateway covers the -http lane end to end: a publisher
// streams into the daemon, a browser-shaped client reads the dashboard,
// the query API and a live SSE stream, and the -ansi status line grows
// its web column.
func TestRelayHTTPGateway(t *testing.T) {
	r := startRelay(t, "-listen", "127.0.0.1:0", "-http", "127.0.0.1:0",
		"-signals", "cps", "-unixtime=false")
	if r.WebAddr == nil {
		t.Fatal("-http did not bind")
	}
	base := "http://" + r.WebAddr.String()
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	t.Cleanup(tr.CloseIdleConnections)

	c, err := netscope.Dial(r.PubAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		c.Send(time.Duration(i)*100*time.Millisecond, "cps", float64(i)) //nolint:errcheck
	}
	c.Flush() //nolint:errcheck

	// The dashboard is embedded and served at /.
	resp, err := client.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(page, []byte("<canvas")) {
		t.Fatalf("dashboard: %d (%d bytes)", resp.StatusCode, len(page))
	}

	// The daemon registered delay-ms; the REST plane can read and set it.
	resp, err = client.Get(base + "/v1/params/delay-ms")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"name":"delay-ms"`)) {
		t.Fatalf("params: %d %s", resp.StatusCode, body)
	}

	// /v1/view sees the published history (-http enables the store).
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = client.Get(base + "/v1/view?signals=cps")
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("view: %d %s", resp.StatusCode, body)
		}
		if bytes.Contains(body, []byte(`"name":"cps"`)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("view never saw cps: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A live SSE stream delivers a fresh delta.
	resp, err = client.Get(base + "/v1/stream?signals=cps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	c.Send(5*time.Second, "cps", 42) //nolint:errcheck
	c.Flush()                        //nolint:errcheck
	sawBatch := false
	timeout := time.After(5 * time.Second)
	for !sawBatch {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("sse stream ended early")
			}
			if line == "event: batch" {
				sawBatch = true
			}
		case <-timeout:
			t.Fatal("no batch event on the live stream")
		}
	}

	// The status line gained the web column, allocation-free as ever.
	status := make(chan []byte, 1)
	r.loop.Invoke(func() { status <- r.appendStatus(nil) })
	select {
	case line := <-status:
		if !bytes.Contains(line, []byte("web clients=1")) {
			t.Fatalf("status line = %q", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("status line never rendered")
	}
}
