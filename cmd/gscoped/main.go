// Command gscoped is the scope server for distributed visualization
// (§4.4): it listens for tuple streams from gscope clients, buffers them,
// displays them on a scope with the configured delay, and optionally
// records everything it receives. The rendered scope is written
// periodically as a PNG and/or painted live as ANSI art.
//
// Usage:
//
//	gscoped -listen :7420 -signals cps,errps,tput -delay 200ms -png live.png
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/glib"
	"repro/internal/gtk"
	"repro/internal/netscope"
	"repro/internal/tuple"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7420", "address to listen on")
		signals = flag.String("signals", "", "comma-separated BUFFER signal names to display")
		delay   = flag.Duration("delay", 200*time.Millisecond, "buffered display delay")
		period  = flag.Duration("period", 50*time.Millisecond, "polling period")
		pngOut  = flag.String("png", "", "write the current frame to this PNG periodically")
		rec     = flag.String("record", "", "record received tuples to this file")
		ansi    = flag.Bool("ansi", false, "paint the scope as ANSI art on stdout")
		width   = flag.Int("width", 600, "canvas width")
		height  = flag.Int("height", 200, "canvas height")
		runFor  = flag.Duration("for", 0, "exit after this long (0 = run forever)")
		unixTS  = flag.Bool("unixtime", true, "treat incoming timestamps as Unix-epoch ms (clients stamp with a shared clock)")
	)
	flag.Parse()
	if *signals == "" {
		fmt.Fprintln(os.Stderr, "gscoped: -signals required, e.g. -signals cps,errps")
		os.Exit(2)
	}

	loop := glib.NewLoop(glib.RealClock{})
	scope := core.New(loop, "gscoped", *width, *height)
	for _, name := range strings.Split(*signals, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := scope.AddSignal(core.Sig{Name: name, Kind: core.KindBuffer}); err != nil {
			fatal(err)
		}
	}
	scope.SetDelay(*delay)
	if err := scope.SetPollingMode(*period); err != nil {
		fatal(err)
	}

	srv := netscope.NewServer(loop)
	srv.Attach(scope)
	if *unixTS {
		// Rebase shared-clock (Unix ms) stamps onto this scope's
		// timeline, which began at process start.
		origin := time.Now()
		srv.MapTime = func(at time.Duration) time.Duration {
			return at - time.Duration(origin.UnixNano())
		}
	}
	if *rec != "" {
		f, err := os.Create(*rec)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := tuple.NewWriter(f)
		w.Comment(fmt.Sprintf("gscoped recording, signals=%s", *signals)) //nolint:errcheck
		srv.SetRecorder(w)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gscoped: listening on %s\n", addr)

	widget := gtk.NewScopeWidget(scope)
	if *ansi {
		fmt.Print(draw.ANSIClear())
	}
	// Refresh output once a second on the same loop.
	loop.TimeoutAdd(time.Second, func(int) bool {
		if *pngOut != "" {
			if err := widget.RenderFrame().WritePNG(*pngOut); err != nil {
				fmt.Fprintln(os.Stderr, "gscoped:", err)
			}
		}
		if *ansi {
			fmt.Print(draw.ANSIHome())
			widget.RenderFrame().WriteANSI(os.Stdout, draw.ANSIOptions{Scale: 3}) //nolint:errcheck
			conns, _, recv, _ := srv.Stats()
			fmt.Printf("%s  clients=%d recv=%d\n", widget.StatusLine(), conns, recv)
		}
		return true
	})
	if *runFor > 0 {
		loop.TimeoutAdd(*runFor, func(int) bool {
			loop.Quit()
			return false
		})
	}
	if err := scope.StartPolling(); err != nil {
		fatal(err)
	}
	if err := loop.Run(); err != nil {
		fatal(err)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gscoped:", err)
	os.Exit(1)
}
