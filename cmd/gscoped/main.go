// Command gscoped is the scope daemon for distributed visualization: the
// §4.4 server grown into a fan-out relay. It ingests tuple streams from
// gscope publishers, optionally displays them on a local scope (rendered
// periodically as a PNG and/or painted live as ANSI art, with optional
// recording), and re-publishes the merged stream to any number of
// downstream subscribers — each new subscriber first receives a snapshot
// of the recent display window, then live deltas. Relays chain: -upstream
// subscribes this daemon to another gscoped's -subscribers port, so one
// instrumented application can feed a tree of viewers.
//
// Usage:
//
//	gscoped -listen :7420 -signals cps,errps,tput -delay 200ms -png live.png
//	gscoped -listen :7420 -subscribers :7421              # headless fan-out hub
//	gscoped -upstream hub:7421 -subscribers :7422         # chained relay
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/glib"
	"repro/internal/gtk"
	"repro/internal/netscope"
	"repro/internal/tuple"
)

// config is the parsed command line.
type config struct {
	listen      string
	subscribers string
	upstream    string
	signals     []string
	delay       time.Duration
	period      time.Duration
	snapshot    time.Duration
	subQueue    int
	pngOut      string
	rec         string
	ansi        bool
	width       int
	height      int
	runFor      time.Duration
	unixTS      bool
}

// parseFlags parses args (without the program name) into a config.
func parseFlags(args []string) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("gscoped", flag.ContinueOnError)
	var signals string
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:7420", "address to ingest publisher tuple streams on")
	fs.StringVar(&cfg.subscribers, "subscribers", "", "address to serve downstream subscribers on (fan-out hub)")
	fs.StringVar(&cfg.upstream, "upstream", "", "subscribe to an upstream gscoped hub and relay its stream")
	fs.StringVar(&signals, "signals", "", "comma-separated BUFFER signal names to display locally")
	fs.DurationVar(&cfg.delay, "delay", 200*time.Millisecond, "buffered display delay")
	fs.DurationVar(&cfg.period, "period", 50*time.Millisecond, "polling period")
	fs.DurationVar(&cfg.snapshot, "snapshot", netscope.DefaultSnapshotWindow, "history window replayed to new subscribers")
	fs.IntVar(&cfg.subQueue, "subqueue", netscope.DefaultSubscriberQueueLimit, "per-subscriber outbound queue bound, in tuples")
	fs.StringVar(&cfg.pngOut, "png", "", "write the current frame to this PNG periodically")
	fs.StringVar(&cfg.rec, "record", "", "record received tuples to this file")
	fs.BoolVar(&cfg.ansi, "ansi", false, "paint the scope as ANSI art on stdout")
	fs.IntVar(&cfg.width, "width", 600, "canvas width")
	fs.IntVar(&cfg.height, "height", 200, "canvas height")
	fs.DurationVar(&cfg.runFor, "for", 0, "exit after this long (0 = run forever)")
	fs.BoolVar(&cfg.unixTS, "unixtime", true, "treat incoming timestamps as Unix-epoch ms (clients stamp with a shared clock)")
	if err := fs.Parse(args); err != nil {
		// fs.Parse already printed the error (or the -h usage).
		return nil, err
	}
	for _, name := range strings.Split(signals, ",") {
		if name = strings.TrimSpace(name); name != "" {
			cfg.signals = append(cfg.signals, name)
		}
	}
	fail := func(msg string) (*config, error) {
		err := errors.New(msg)
		fmt.Fprintln(fs.Output(), "gscoped:", err)
		return nil, err
	}
	if len(cfg.signals) == 0 && cfg.subscribers == "" {
		return fail("nothing to do: need -signals (local display) and/or -subscribers (fan-out), e.g. -signals cps,errps")
	}
	if len(cfg.signals) == 0 && (cfg.pngOut != "" || cfg.ansi) {
		return fail("-png/-ansi need -signals to display")
	}
	return cfg, nil
}

// relay is a running gscoped: ingest server, optional local scope, optional
// fan-out side, optional upstream subscription.
type relay struct {
	cfg    *config
	loop   *glib.Loop
	scope  *core.Scope
	widget *gtk.ScopeWidget
	srv    *netscope.Server
	recF   *os.File

	status io.Writer
	closed atomic.Bool

	upMu sync.Mutex
	up   *netscope.Subscriber

	// PubAddr is the bound publisher-ingest address, SubAddr the bound
	// subscriber address (nil when fan-out is off).
	PubAddr net.Addr
	SubAddr net.Addr
}

// newRelay binds the listeners and assembles the pipeline; run starts it.
func newRelay(cfg *config) (*relay, error) {
	r := &relay{cfg: cfg, loop: glib.NewLoop(glib.RealClock{}), status: os.Stderr}
	if len(cfg.signals) > 0 {
		r.scope = core.New(r.loop, "gscoped", cfg.width, cfg.height)
		for _, name := range cfg.signals {
			if _, err := r.scope.AddSignal(core.Sig{Name: name, Kind: core.KindBuffer}); err != nil {
				return nil, err
			}
		}
		r.scope.SetDelay(cfg.delay)
		if err := r.scope.SetPollingMode(cfg.period); err != nil {
			return nil, err
		}
		r.widget = gtk.NewScopeWidget(r.scope)
	}

	r.srv = netscope.NewServer(r.loop)
	r.srv.SetSnapshotWindow(cfg.snapshot)
	r.srv.SetSubscriberQueueLimit(cfg.subQueue)
	if r.scope != nil {
		r.srv.Attach(r.scope)
		if cfg.unixTS {
			// Rebase shared-clock (Unix ms) stamps onto this scope's
			// timeline, which began at process start. Re-published
			// tuples keep their original stamps.
			origin := time.Now()
			r.srv.MapTime = func(at time.Duration) time.Duration {
				return at - time.Duration(origin.UnixNano())
			}
		}
	}
	if cfg.rec != "" {
		f, err := os.Create(cfg.rec)
		if err != nil {
			return nil, err
		}
		r.recF = f
		w := tuple.NewWriter(f)
		w.Comment(fmt.Sprintf("gscoped recording, signals=%s", strings.Join(cfg.signals, ","))) //nolint:errcheck
		r.srv.SetRecorder(w)
	}

	pubAddr, err := r.srv.Listen(cfg.listen)
	if err != nil {
		r.cleanup()
		return nil, err
	}
	r.PubAddr = pubAddr
	if cfg.subscribers != "" {
		subAddr, err := r.srv.ListenSubscribers(cfg.subscribers)
		if err != nil {
			r.cleanup()
			return nil, err
		}
		r.SubAddr = subAddr
	}
	if cfg.upstream != "" {
		if err := r.connectUpstream(); err != nil {
			r.cleanup()
			return nil, err
		}
	}
	return r, nil
}

// connectUpstream subscribes to the upstream hub and arranges automatic
// redial with backoff when the hub goes away, so a chained relay survives
// hub restarts instead of silently serving a frozen stream.
func (r *relay) connectUpstream() error {
	up, err := netscope.SubscribeToBatch(r.loop, r.cfg.upstream, r.srv.InjectBatch)
	if err != nil {
		return err
	}
	up.OnClose(func(err error) {
		if r.closed.Load() {
			return
		}
		fmt.Fprintf(r.status, "gscoped: upstream %s lost (%v); redialing\n", r.cfg.upstream, err)
		go r.redialUpstream()
	})
	r.upMu.Lock()
	r.up = up
	r.upMu.Unlock()
	return nil
}

func (r *relay) redialUpstream() {
	backoff := netscope.DefaultReconnectMin
	for !r.closed.Load() {
		time.Sleep(backoff)
		if r.closed.Load() {
			return
		}
		if err := r.connectUpstream(); err == nil {
			fmt.Fprintf(r.status, "gscoped: upstream %s reconnected\n", r.cfg.upstream)
			return
		}
		backoff *= 2
		if backoff > netscope.DefaultReconnectMax {
			backoff = netscope.DefaultReconnectMax
		}
	}
}

// run drives the loop until Quit (or -for elapses) and tears down.
func (r *relay) run(status io.Writer) error {
	r.status = status
	defer r.cleanup()
	cfg := r.cfg
	if r.widget != nil && cfg.ansi {
		fmt.Print(draw.ANSIClear())
	}
	if r.widget != nil && (cfg.pngOut != "" || cfg.ansi) {
		// Refresh rendered output once a second on the same loop.
		r.loop.TimeoutAdd(time.Second, func(int) bool {
			if cfg.pngOut != "" {
				if err := r.widget.RenderFrame().WritePNG(cfg.pngOut); err != nil {
					fmt.Fprintln(status, "gscoped:", err)
				}
			}
			if cfg.ansi {
				fmt.Print(draw.ANSIHome())
				r.widget.RenderFrame().WriteANSI(os.Stdout, draw.ANSIOptions{Scale: 3}) //nolint:errcheck
				conns, _, recv, _ := r.srv.Stats()
				fmt.Printf("%s  clients=%d recv=%d subs=%d\n",
					r.widget.StatusLine(), conns, recv, r.srv.Subscribers())
			}
			return true
		})
	}
	if cfg.runFor > 0 {
		r.loop.TimeoutAdd(cfg.runFor, func(int) bool {
			r.loop.Quit()
			return false
		})
	}
	if r.scope != nil {
		if err := r.scope.StartPolling(); err != nil {
			return err
		}
	}
	return r.loop.Run()
}

// stop makes run return.
func (r *relay) stop() { r.loop.Quit() }

func (r *relay) cleanup() {
	r.closed.Store(true)
	r.upMu.Lock()
	up := r.up
	r.upMu.Unlock()
	if up != nil {
		up.Close()
	}
	if r.srv != nil {
		r.srv.Close()
	}
	if r.recF != nil {
		r.recF.Close()
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		// parseFlags (or flag itself) already reported the problem.
		os.Exit(2)
	}
	r, err := newRelay(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gscoped: ingesting publishers on %s\n", r.PubAddr)
	if r.SubAddr != nil {
		fmt.Fprintf(os.Stderr, "gscoped: serving subscribers on %s\n", r.SubAddr)
	}
	if cfg.upstream != "" {
		fmt.Fprintf(os.Stderr, "gscoped: relaying upstream hub %s\n", cfg.upstream)
	}
	if err := r.run(os.Stderr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gscoped:", err)
	os.Exit(1)
}
