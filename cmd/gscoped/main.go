// Command gscoped is the scope daemon for distributed visualization: the
// §4.4 server grown into a fan-out relay. It ingests tuple streams from
// gscope publishers, optionally displays them on a local scope (rendered
// periodically as a PNG and/or painted live as ANSI art), and re-publishes
// the merged stream to any number of downstream subscribers — each new
// subscriber first receives a snapshot of the recent display window, then
// live deltas. Relays chain: -upstream subscribes this daemon to another
// gscoped's -subscribers port, so one instrumented application can feed a
// tree of viewers.
//
// -http attaches the web gateway (internal/webscope): an embedded
// HTML+canvas dashboard at /, the same live stream over Server-Sent
// Events and WebSocket, historical envelope queries over /v1/view, and
// REST access to the control parameters — so a browser is a viewer too.
// See docs/HTTP.md for the endpoint reference.
//
// The flight recorder (-record) appends the merged stream to a segmented
// on-disk session (internal/reclog): bounded retention, replayable later.
// -replay streams a recorded session back through the same pipeline —
// display, fan-out, even re-recording — at the recorded cadence, ×N, or as
// fast as possible, optionally windowed with -from/-to.
//
// -wire 3 selects the binary v3 encoding (docs/WIRE.md) where this daemon
// is the one choosing an encoding: the -upstream subscription rides binary
// frames and -record writes binary segments. Everything this daemon
// serves to others negotiates per connection regardless — text publishers
// and v1/v2 subscribers are unaffected, and a relay chain may mix wire
// versions hop by hop.
//
// Usage:
//
//	gscoped -listen :7420 -signals cps,errps,tput -delay 200ms -png live.png
//	gscoped -listen :7420 -subscribers :7421              # headless fan-out hub
//	gscoped -listen :7420 -http :8080                     # browser viewers
//	gscoped -upstream hub:7421 -subscribers :7422         # chained relay
//	gscoped -listen :7420 -subscribers :7421 -record ./session   # flight recorder
//	gscoped -replay ./session -subscribers :7421 -speed 4        # replay at ×4
//	gscoped -replay ./session -signals cps -speed 0 -from 10s -to 20s -png out.png
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/glib"
	"repro/internal/gtk"
	"repro/internal/netscope"
	"repro/internal/reclog"
	"repro/internal/tuple"
	"repro/internal/webscope"
)

// config is the parsed command line.
type config struct {
	listen      string
	listenUDP   string
	subscribers string
	httpAddr    string
	upstream    string
	signals     []string
	maxRate     float64
	since       time.Duration
	delay       time.Duration
	period      time.Duration
	snapshot    time.Duration
	subQueue    int
	pngOut      string
	rec         string
	recLimit    int64
	replay      string
	speed       float64
	from        time.Duration
	to          time.Duration
	ansi        bool
	width       int
	height      int
	runFor      time.Duration
	unixTS      bool
	wire        int

	// paramCmd holds a one-shot control-plane command ("param list",
	// "param get <name>", "param set <name> <value>") run against the
	// -upstream hub's subscriber socket instead of starting a relay.
	paramCmd []string
}

// parseFlags parses args (without the program name) into a config.
func parseFlags(args []string) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("gscoped", flag.ContinueOnError)
	var signals string
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:7420", "address to ingest publisher tuple streams on")
	fs.StringVar(&cfg.listenUDP, "publishers-udp", "", "also ingest datagram (UDP) publishers on this address: the lossy lane with reorder buffering and NACK recovery (docs/WIRE.md §D)")
	fs.StringVar(&cfg.subscribers, "subscribers", "", "address to serve downstream subscribers on (fan-out hub)")
	fs.StringVar(&cfg.httpAddr, "http", "", "serve the web gateway on this address: embedded dashboard at /, SSE and WebSocket live streams, and the /v1 query API (docs/HTTP.md)")
	fs.StringVar(&cfg.upstream, "upstream", "", "subscribe to an upstream gscoped hub and relay its stream")
	fs.StringVar(&signals, "signals", "", "comma-separated signal names/globs: displayed locally, and (with -upstream) the per-signal upstream subscription filter")
	fs.Float64Var(&cfg.maxRate, "max-rate", 0, "with -upstream: cap the upstream subscription at this many tuples/s per signal (server-side decimation; 0 = unlimited)")
	fs.DurationVar(&cfg.since, "since", 0, "with -upstream: backfill this much trailing history on first connect (e.g. 10s)")
	fs.DurationVar(&cfg.delay, "delay", 200*time.Millisecond, "buffered display delay")
	fs.DurationVar(&cfg.period, "period", 50*time.Millisecond, "polling period")
	fs.DurationVar(&cfg.snapshot, "snapshot", netscope.DefaultSnapshotWindow, "history window replayed to new subscribers")
	fs.IntVar(&cfg.subQueue, "subqueue", netscope.DefaultSubscriberQueueLimit, "per-subscriber outbound queue bound, in tuples")
	fs.StringVar(&cfg.pngOut, "png", "", "write the current frame to this PNG periodically")
	fs.StringVar(&cfg.rec, "record", "", "flight-record the merged stream into this session directory (segmented, bounded)")
	fs.Int64Var(&cfg.recLimit, "record-limit", 0, "flight-recorder retention budget in bytes (0 = default)")
	fs.StringVar(&cfg.replay, "replay", "", "replay a recorded session directory through the pipeline")
	fs.Float64Var(&cfg.speed, "speed", 1, "replay pacing: 1 = recorded cadence, 2 = twice as fast, 0 = as fast as possible")
	fs.DurationVar(&cfg.from, "from", 0, "replay only tuples stamped at or after this offset on the recorded timeline")
	fs.DurationVar(&cfg.to, "to", 0, "replay only tuples stamped at or before this offset (0 = to the end)")
	fs.BoolVar(&cfg.ansi, "ansi", false, "paint the scope as ANSI art on stdout")
	fs.IntVar(&cfg.width, "width", 600, "canvas width")
	fs.IntVar(&cfg.height, "height", 200, "canvas height")
	fs.DurationVar(&cfg.runFor, "for", 0, "exit after this long (0 = run forever)")
	fs.BoolVar(&cfg.unixTS, "unixtime", true, "treat incoming timestamps as Unix-epoch ms (clients stamp with a shared clock)")
	fs.IntVar(&cfg.wire, "wire", 0, "wire version for the -upstream subscription and -record segments: 0/1/2 = text, 3 = binary frames (see docs/WIRE.md)")
	if err := fs.Parse(args); err != nil {
		// fs.Parse already printed the error (or the -h usage).
		return nil, err
	}
	fail := func(msg string) (*config, error) {
		err := errors.New(msg)
		fmt.Fprintln(fs.Output(), "gscoped:", err)
		return nil, err
	}
	for _, name := range strings.Split(signals, ",") {
		if name = strings.TrimSpace(name); name != "" {
			// Reject names the §3.3 wire format cannot carry up front —
			// the daemon registers them as scope signals and echoes them
			// into streams and recordings.
			if err := tuple.ValidateName(name); err != nil {
				err = fmt.Errorf("-signals: %w", err)
				fmt.Fprintln(fs.Output(), "gscoped:", err)
				return nil, err
			}
			cfg.signals = append(cfg.signals, name)
		}
	}
	if cfg.maxRate < 0 {
		return fail("-max-rate must not be negative")
	}
	if cfg.since < 0 {
		return fail("-since must not be negative (it is a trailing window)")
	}
	if args := fs.Args(); len(args) > 0 {
		// One-shot control-plane mode: gscoped -upstream hub:7421 param ...
		if args[0] != "param" {
			return fail(fmt.Sprintf("unknown command %q (only \"param\" is supported)", args[0]))
		}
		if cfg.upstream == "" {
			return fail("param commands need -upstream to name the hub's subscriber address")
		}
		ok := len(args) >= 2 && (args[1] == "list" && len(args) == 2 ||
			args[1] == "get" && len(args) == 3 ||
			args[1] == "set" && len(args) == 4)
		if !ok {
			return fail("usage: param list | param get <name> | param set <name> <value>")
		}
		cfg.paramCmd = args
		return cfg, nil
	}
	if cfg.maxRate > 0 && cfg.upstream == "" {
		return fail("-max-rate shapes the upstream subscription and needs -upstream")
	}
	if cfg.since != 0 && cfg.upstream == "" {
		return fail("-since backfills the upstream subscription and needs -upstream")
	}
	switch cfg.wire {
	case 0, 1, 2, 3:
	default:
		return fail("-wire must be 0, 1, 2 or 3")
	}
	if cfg.wire == 3 && cfg.upstream == "" && cfg.rec == "" {
		return fail("-wire 3 selects the binary encoding for -upstream and/or -record; it needs one of them")
	}
	if len(cfg.signals) == 0 && cfg.subscribers == "" && cfg.rec == "" && cfg.httpAddr == "" {
		return fail("nothing to do: need -signals (local display), -subscribers (fan-out), -http (web viewers) and/or -record, e.g. -signals cps,errps")
	}
	if len(cfg.signals) == 0 && (cfg.pngOut != "" || cfg.ansi) {
		return fail("-png/-ansi need -signals to display")
	}
	if cfg.replay != "" && cfg.replay == cfg.rec {
		return fail("-replay and -record must name different session directories")
	}
	return cfg, nil
}

// relay is a running gscoped: ingest server, optional local scope, optional
// fan-out side, optional upstream subscription.
type relay struct {
	cfg    *config
	loop   *glib.Loop
	scope  *core.Scope
	widget *gtk.ScopeWidget
	srv    *netscope.Server

	status io.Writer
	closed atomic.Bool
	stopRC chan struct{} // closed by cleanup; aborts an in-flight replay
	stopRn sync.Once

	replaySess *reclog.Session

	// replayDone is closed when the -replay pass finishes (tests and the
	// shutdown path wait on it); nil when -replay is off. replayStarted
	// records that replayLoop was actually spawned — newRelay error paths
	// reach cleanup before run() starts it, and waiting on replayDone
	// there would hang forever.
	replayDone    chan struct{}
	replayStarted atomic.Bool

	upMu sync.Mutex
	up   *netscope.Subscriber

	// statusBuf is the reused render buffer for the -ansi stats line; the
	// once-a-second repaint appends into it instead of allocating.
	statusBuf []byte

	// PubAddr is the bound publisher-ingest address, UDPAddr the bound
	// datagram-ingest address (nil without -publishers-udp), SubAddr the
	// bound subscriber address (nil when fan-out is off), WebAddr the
	// bound web-gateway address (nil without -http).
	PubAddr net.Addr
	UDPAddr net.Addr
	SubAddr net.Addr
	WebAddr net.Addr
}

// newRelay binds the listeners and assembles the pipeline; run starts it.
func newRelay(cfg *config) (*relay, error) {
	r := &relay{cfg: cfg, loop: glib.NewLoop(glib.RealClock{}), status: os.Stderr,
		stopRC: make(chan struct{})}
	if len(cfg.signals) > 0 {
		r.scope = core.New(r.loop, "gscoped", cfg.width, cfg.height)
		for _, name := range cfg.signals {
			if _, err := r.scope.AddSignal(core.Sig{Name: name, Kind: core.KindBuffer}); err != nil {
				return nil, err
			}
		}
		r.scope.SetDelay(cfg.delay)
		if err := r.scope.SetPollingMode(cfg.period); err != nil {
			return nil, err
		}
		r.widget = gtk.NewScopeWidget(r.scope)
	}

	r.srv = netscope.NewServer(r.loop)
	r.srv.SetSnapshotWindow(cfg.snapshot)
	r.srv.SetSubscriberQueueLimit(cfg.subQueue)
	// The daemon's own control parameters, reachable over the subscriber
	// socket's v2 plane (`gscoped -upstream host:port param list`).
	params := core.NewParamSet()
	r.srv.SetParams(params)
	if r.scope != nil {
		// delay-ms: the §3.2 display delay, remotely tunable. The setter
		// runs on the loop (network sets are handled there), which is the
		// thread SetDelay requires.
		var delayMS core.IntVar
		delayMS.Store(cfg.delay.Milliseconds())
		scope := r.scope
		if err := params.Add(&core.Param{
			Name: "delay-ms",
			Get:  func() float64 { return float64(delayMS.Load()) },
			Set: func(v float64) {
				delayMS.Store(int64(v))
				scope.SetDelay(time.Duration(v) * time.Millisecond)
			},
			Min: 0, Max: 60_000, Step: 50,
		}); err != nil {
			return nil, err
		}
		r.srv.Attach(r.scope)
		if cfg.unixTS {
			// Rebase shared-clock (Unix ms) stamps onto this scope's
			// timeline, which began at process start. Re-published
			// tuples keep their original stamps.
			origin := time.Now()
			r.srv.MapTime = func(at time.Duration) time.Duration {
				return at - time.Duration(origin.UnixNano())
			}
		}
	}
	if cfg.rec != "" {
		if _, err := r.srv.Record(cfg.rec, reclog.Options{TotalBytes: cfg.recLimit, WireVersion: cfg.wire}); err != nil {
			return nil, err
		}
	}
	if cfg.replay != "" {
		sess, err := reclog.OpenSession(cfg.replay)
		if err != nil {
			return nil, err
		}
		r.replaySess = sess
		r.replayDone = make(chan struct{})
	}

	pubAddr, err := r.srv.Listen(cfg.listen)
	if err != nil {
		r.cleanup()
		return nil, err
	}
	r.PubAddr = pubAddr
	if cfg.listenUDP != "" {
		udpAddr, err := r.srv.ListenPublishersUDP(cfg.listenUDP)
		if err != nil {
			r.cleanup()
			return nil, err
		}
		r.UDPAddr = udpAddr
	}
	if cfg.subscribers != "" {
		subAddr, err := r.srv.ListenSubscribers(cfg.subscribers)
		if err != nil {
			r.cleanup()
			return nil, err
		}
		r.SubAddr = subAddr
	}
	if cfg.httpAddr != "" {
		// Browser viewers want history: trailing-window stream
		// subscriptions and /v1/view both read the tiered backfill store.
		r.srv.SetBackfillRetention(0)
		webAddr, err := r.srv.ListenWeb(cfg.httpAddr, webscope.New(r.srv, webscope.Options{}))
		if err != nil {
			r.cleanup()
			return nil, err
		}
		r.WebAddr = webAddr
	}
	if cfg.upstream != "" {
		if err := r.connectUpstream(true); err != nil {
			r.cleanup()
			return nil, err
		}
	}
	return r, nil
}

// upstreamOpts builds the v2 subscription the relay asks of its upstream
// hub: the -signals filter and -max-rate decimation on every connect, and
// the -since backfill on the first connect only (a redial after an outage
// must not replay a stale window into downstream viewers). With no options
// the relay stays a plain v1 subscriber.
func (r *relay) upstreamOpts(first bool) []netscope.SubscribeOption {
	var opts []netscope.SubscribeOption
	if len(r.cfg.signals) > 0 {
		opts = append(opts, netscope.WithSignals(r.cfg.signals...))
	}
	if r.cfg.maxRate > 0 {
		opts = append(opts, netscope.WithMaxRate(r.cfg.maxRate))
	}
	if first && r.cfg.since > 0 {
		opts = append(opts, netscope.WithSince(-r.cfg.since))
	}
	if r.cfg.wire == 3 {
		opts = append(opts, netscope.WithWireVersion(3))
	}
	return opts
}

// connectUpstream subscribes to the upstream hub and arranges automatic
// redial with backoff when the hub goes away, so a chained relay survives
// hub restarts instead of silently serving a frozen stream.
func (r *relay) connectUpstream(first bool) error {
	up, err := netscope.SubscribeToBatch(r.loop, r.cfg.upstream, r.srv.InjectBatch,
		r.upstreamOpts(first)...)
	if err != nil {
		return err
	}
	up.OnClose(func(err error) {
		if r.closed.Load() {
			return
		}
		fmt.Fprintf(r.status, "gscoped: upstream %s lost (%v); redialing\n", r.cfg.upstream, err)
		go r.redialUpstream()
	})
	r.upMu.Lock()
	r.up = up
	r.upMu.Unlock()
	return nil
}

func (r *relay) redialUpstream() {
	backoff := netscope.DefaultReconnectMin
	for !r.closed.Load() {
		time.Sleep(backoff)
		if r.closed.Load() {
			return
		}
		if err := r.connectUpstream(false); err == nil {
			fmt.Fprintf(r.status, "gscoped: upstream %s reconnected\n", r.cfg.upstream)
			return
		}
		backoff *= 2
		if backoff > netscope.DefaultReconnectMax {
			backoff = netscope.DefaultReconnectMax
		}
	}
}

// run drives the loop until Quit (or -for elapses) and tears down.
func (r *relay) run(status io.Writer) error {
	r.status = status
	defer r.cleanup()
	cfg := r.cfg
	if r.widget != nil && cfg.ansi {
		fmt.Print(draw.ANSIClear())
	}
	if r.widget != nil && (cfg.pngOut != "" || cfg.ansi) {
		// Refresh rendered output once a second on the same loop.
		r.loop.TimeoutAdd(time.Second, func(int) bool {
			if cfg.pngOut != "" {
				if err := r.widget.RenderFrame().WritePNG(cfg.pngOut); err != nil {
					fmt.Fprintln(status, "gscoped:", err)
				}
			}
			if cfg.ansi {
				fmt.Print(draw.ANSIHome())
				r.widget.RenderFrame().WriteANSI(os.Stdout, draw.ANSIOptions{Scale: 3}) //nolint:errcheck
				r.statusBuf = r.appendStatus(r.statusBuf[:0])
				os.Stdout.Write(r.statusBuf) //nolint:errcheck
			}
			return true
		})
	}
	if cfg.runFor > 0 {
		r.loop.TimeoutAdd(cfg.runFor, func(int) bool {
			r.loop.Quit()
			return false
		})
	}
	if r.scope != nil {
		if err := r.scope.StartPolling(); err != nil {
			return err
		}
	}
	if r.replaySess != nil {
		r.replayStarted.Store(true)
		go r.replayLoop()
	}
	return r.loop.Run()
}

// appendStatus renders the -ansi stats line into dst and returns it,
// allocating nothing per refresh (the terminal repaints it every second):
// scope status, ingest and fan-out counters — drops are chunks lost to slow
// viewers, filt the tuples the v2 plane withheld per subscription — and,
// with -publishers-udp, the per-source datagram transport counters.
func (r *relay) appendStatus(dst []byte) []byte {
	dst = r.widget.AppendStatusLine(dst)
	conns, _, recv, _ := r.srv.Stats()
	st := r.srv.FanoutStats()
	dst = append(dst, "  clients="...)
	dst = strconv.AppendInt(dst, conns, 10)
	dst = append(dst, " recv="...)
	dst = strconv.AppendInt(dst, recv, 10)
	dst = append(dst, " subs="...)
	dst = strconv.AppendInt(dst, int64(r.srv.Subscribers()), 10)
	dst = append(dst, " drops="...)
	dst = strconv.AppendInt(dst, st.Dropped, 10)
	dst = append(dst, " filt="...)
	dst = strconv.AppendInt(dst, st.Filtered, 10)
	if r.UDPAddr != nil {
		dst = append(dst, "  "...)
		dst = r.srv.AppendUDPStats(dst)
	}
	if r.WebAddr != nil {
		dst = append(dst, "  "...)
		dst = r.srv.AppendWebStats(dst)
	}
	dst = append(dst, '\n')
	return dst
}

// replayLoop streams the -replay session through the delivery pipeline on
// its own goroutine: each batch is handed to the loop (InjectBatch must run
// there) and the replayer blocks until the loop has taken it, which both
// keeps the shared batch buffer valid and paces a saturating replay at the
// loop's own speed. With no -for deadline the daemon exits once the replay
// completes, like a batch job; with one it keeps serving subscribers.
func (r *relay) replayLoop() {
	defer close(r.replayDone)
	rep := reclog.NewReplayer(r.replaySess)
	rep.SetSpeed(r.cfg.speed)
	if r.cfg.from > 0 || r.cfg.to > 0 {
		rep.SetWindow(r.cfg.from, r.cfg.to)
	}
	errAborted := errors.New("replay aborted")
	err := rep.Run(func(batch []tuple.Tuple) error {
		done := make(chan struct{})
		r.loop.Invoke(func() {
			r.srv.InjectBatch(batch)
			close(done)
		})
		select {
		case <-done:
			return nil
		case <-r.stopRC:
			return errAborted
		}
	})
	if err != nil && !errors.Is(err, errAborted) {
		fmt.Fprintf(r.status, "gscoped: replay: %v\n", err)
	}
	if err == nil {
		fmt.Fprintf(r.status, "gscoped: replay complete: %d tuples from %s\n",
			rep.Delivered(), r.cfg.replay)
	}
	if r.cfg.runFor <= 0 && !r.closed.Load() {
		r.drainSubscribers(5 * time.Second)
		r.loop.Quit()
	}
}

// drainSubscribers waits (bounded) until every subscriber's outbound queue
// has flushed before the caller tears the loop down — quitting immediately
// after the last inject would cancel the write watches with the replay's
// tail still queued, truncating what downstream viewers receive.
func (r *relay) drainSubscribers(limit time.Duration) {
	deadline := time.Now().Add(limit)
	for !r.closed.Load() && time.Now().Before(deadline) {
		flushed := make(chan bool, 1)
		r.loop.Invoke(func() { flushed <- r.srv.SubscribersFlushed() })
		select {
		case ok := <-flushed:
			if ok {
				return
			}
		case <-r.stopRC:
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stop makes run return.
func (r *relay) stop() { r.loop.Quit() }

func (r *relay) cleanup() {
	r.closed.Store(true)
	r.stopRn.Do(func() { close(r.stopRC) })
	if r.replayStarted.Load() {
		<-r.replayDone // the replayer must stop injecting before Close
	}
	r.upMu.Lock()
	up := r.up
	r.upMu.Unlock()
	if up != nil {
		up.Close()
	}
	if r.srv != nil {
		r.srv.Close() // seals the flight-recorder session, if any
	}
}

// runParamCmd executes a one-shot control-plane command against the
// -upstream hub: it opens a stream-less v2 subscription on the same
// subscriber socket the viewers use, sends the command, and prints the
// reply frames (without their comment framing) to out. Errors from the hub
// ("# error ...") come back as errors.
func runParamCmd(cfg *config, out io.Writer) error {
	conn, err := net.DialTimeout("tcp", cfg.upstream, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	cmd := strings.Join(cfg.paramCmd, " ")
	if _, err := fmt.Fprintf(conn, "gscope-sub 2 stream=0\n%s\n", cmd); err != nil {
		return err
	}
	terminal := map[string]string{"list": "params-end", "get": "param", "set": "param-ok"}[cfg.paramCmd[1]]
	var wantName string
	if len(cfg.paramCmd) > 2 {
		wantName = cfg.paramCmd[2]
	}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		f, ok := tuple.ParseControl(sc.Text())
		if !ok {
			continue
		}
		switch f.Verb {
		case "gscope-hub", "params":
			continue // the ack and the list header carry no values
		case "param":
			// Change notifications (name + value only) fan out to every
			// v2 subscriber; a concurrent set by someone else must not
			// masquerade as our reply or pollute the list output. Full
			// get/list replies carry the min/max/step/mode metadata.
			if len(f.Fields) <= 2 {
				continue
			}
		case "error":
			return fmt.Errorf("%s: %s", cmd, strings.Join(f.Fields, " "))
		}
		if f.Verb != "params-end" {
			fmt.Fprintln(out, strings.Join(append([]string{f.Verb}, f.Fields...), " "))
		}
		if f.Verb == terminal && (wantName == "" || f.Arg(0) == wantName) {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", cmd, err)
	}
	return fmt.Errorf("%s: connection closed before a reply", cmd)
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		// parseFlags (or flag itself) already reported the problem.
		os.Exit(2)
	}
	if cfg.paramCmd != nil {
		if err := runParamCmd(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	r, err := newRelay(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gscoped: ingesting publishers on %s\n", r.PubAddr)
	if r.UDPAddr != nil {
		fmt.Fprintf(os.Stderr, "gscoped: ingesting datagram publishers on %s\n", r.UDPAddr)
	}
	if r.SubAddr != nil {
		fmt.Fprintf(os.Stderr, "gscoped: serving subscribers on %s\n", r.SubAddr)
	}
	if cfg.upstream != "" {
		fmt.Fprintf(os.Stderr, "gscoped: relaying upstream hub %s\n", cfg.upstream)
	}
	if cfg.rec != "" {
		fmt.Fprintf(os.Stderr, "gscoped: flight-recording to %s\n", cfg.rec)
	}
	if r.replaySess != nil {
		first, last, _ := r.replaySess.Bounds()
		fmt.Fprintf(os.Stderr, "gscoped: replaying %d tuples (%dms..%dms) from %s at speed %g\n",
			r.replaySess.Tuples(), first, last, cfg.replay, cfg.speed)
	}
	if err := r.run(os.Stderr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gscoped:", err)
	os.Exit(1)
}
