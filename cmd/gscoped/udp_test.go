package main

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netscope"
	"repro/internal/tuple"
)

func TestParseFlagsPublishersUDP(t *testing.T) {
	cfg, err := parseFlags([]string{"-subscribers", ":0", "-publishers-udp", "127.0.0.1:7423"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.listenUDP != "127.0.0.1:7423" {
		t.Fatalf("listenUDP = %q", cfg.listenUDP)
	}
}

// TestRelayUDPPublishers is TestRelayEndToEnd over the lossy lane: a
// datagram publisher feeds the relay's -publishers-udp socket and a
// downstream TCP subscriber receives the merged stream — both transports
// converge on the same pipeline.
func TestRelayUDPPublishers(t *testing.T) {
	r := startRelay(t, "-listen", "127.0.0.1:0", "-publishers-udp", "127.0.0.1:0",
		"-subscribers", "127.0.0.1:0", "-signals", "cps", "-unixtime=false")
	if r.UDPAddr == nil {
		t.Fatal("relay bound no datagram address")
	}

	var mu sync.Mutex
	var got []tuple.Tuple
	conn := readTuples(t, r.SubAddr.String(), &got, &mu)
	defer conn.Close()

	c, err := netscope.DialUDP(r.UDPAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Send(time.Duration(i)*time.Millisecond, "cps", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber got %d/5 tuples published over UDP", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	for i := 0; i < 5; i++ {
		if got[i].Name != "cps" || got[i].Value != float64(i) {
			t.Fatalf("tuple %d = %v", i, got[i])
		}
	}
	mu.Unlock()

	// The -ansi stats line must carry the transport counters. Render on
	// the loop goroutine, as the real repaint does — FanoutStats reads
	// loop-owned hub state.
	lineCh := make(chan []byte, 1)
	r.loop.Invoke(func() { lineCh <- r.appendStatus(nil) })
	line := <-lineCh
	if !bytes.Contains(line, []byte("udp src=1")) {
		t.Fatalf("status line misses UDP counters: %q", line)
	}
}

// TestRelayUDPBadAddress: a bind failure on the datagram socket must fail
// startup cleanly, not leave a half-started relay.
func TestRelayUDPBadAddress(t *testing.T) {
	// Occupy a port, then ask the relay to bind it.
	taken, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer taken.Close()
	cfg, err := parseFlags([]string{"-subscribers", "127.0.0.1:0", "-listen", "127.0.0.1:0",
		"-publishers-udp", taken.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newRelay(cfg); err == nil {
		t.Fatal("relay started on an occupied datagram port")
	}
}
