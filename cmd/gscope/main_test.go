package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeSession(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "session.tup")
	content := "# test session\n"
	for i := 0; i < 40; i++ {
		ms := i * 50
		content += itoa(ms) + " " + itoa(i%25) + " a\n"
		content += itoa(ms) + " " + itoa((i*3)%25) + " b\n"
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestReplayToPNG(t *testing.T) {
	in := writeSession(t)
	out := filepath.Join(t.TempDir(), "frame.png")
	err := replay(in, out, "", "", 20, false, 50*time.Millisecond, 200, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("png missing: %v", err)
	}
}

func TestReplayToGIF(t *testing.T) {
	in := writeSession(t)
	out := filepath.Join(t.TempDir(), "anim.gif")
	err := replay(in, "", out, "", 10, false, 50*time.Millisecond, 200, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("gif missing: %v", err)
	}
}

func TestReplayToFrames(t *testing.T) {
	in := writeSession(t)
	dir := filepath.Join(t.TempDir(), "frames")
	err := replay(in, "", "", dir, 10, false, 50*time.Millisecond, 200, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d frames written", len(entries))
	}
}

func TestReplayErrors(t *testing.T) {
	if err := replay("/nonexistent.tup", "", "", "", 1, false, 50*time.Millisecond, 100, 50, 0); err == nil {
		t.Fatal("missing input should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.tup")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644) //nolint:errcheck
	if err := replay(empty, "", "", "", 1, false, 50*time.Millisecond, 100, 50, 0); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestWriteFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure experiments")
	}
	dir := t.TempDir()
	if err := writeFigures(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig1_scope_widget.png", "fig2_signal_params.png",
		"fig3_control_params.png", "fig4_tcp.png", "fig5_ecn.png",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("figure %s missing: %v", name, err)
		}
	}
}
