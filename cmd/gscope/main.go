// Command gscope is the standalone scope viewer: it replays a recorded
// tuple file (§3.3) onto a scope and renders the result as a PNG
// screenshot, a sequence of PNG frames, or an animated ANSI view in the
// terminal — the playback acquisition mode of the paper's library.
//
// Usage:
//
//	gscope -in session.tup -png out.png            # final frame screenshot
//	gscope -in session.tup -ansi                   # animate in the terminal
//	gscope -in session.tup -frames dir -every 20   # PNG frame sequence
//	gscope -figures out/                           # regenerate Figures 1-5
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/draw"
	"repro/internal/figures"
	"repro/internal/glib"
	"repro/internal/gtk"
	"repro/internal/tuple"
)

func main() {
	var (
		in      = flag.String("in", "", "tuple file to replay")
		png     = flag.String("png", "", "write the final frame to this PNG")
		gifOut  = flag.String("gif", "", "write the replay as an animated GIF")
		ansi    = flag.Bool("ansi", false, "animate the replay as ANSI art on stdout")
		frames  = flag.String("frames", "", "write PNG frames into this directory")
		every   = flag.Int("every", 20, "with -frames/-gif, use every Nth poll")
		period  = flag.Duration("period", 50*time.Millisecond, "polling/display period")
		width   = flag.Int("width", 600, "canvas width in pixels")
		height  = flag.Int("height", 200, "canvas height in pixels")
		figsDir = flag.String("figures", "", "regenerate the paper's Figures 1-5 into this directory and exit")
		speed   = flag.Float64("speed", 8, "with -ansi, replay speed multiplier")
	)
	flag.Parse()

	if *figsDir != "" {
		if err := writeFigures(*figsDir); err != nil {
			fatal(err)
		}
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "gscope: -in file required (or -figures dir); see -h")
		os.Exit(2)
	}
	if err := replay(*in, *png, *gifOut, *frames, *every, *ansi, *period, *width, *height, *speed); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gscope:", err)
	os.Exit(1)
}

func replay(path, pngOut, gifOut, framesDir string, every int, ansi bool, period time.Duration, w, h int, speed float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tuples, err := tuple.NewReader(f, false).ReadAll()
	if err != nil {
		return err
	}
	if len(tuples) == 0 {
		return fmt.Errorf("%s holds no tuples", path)
	}

	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	scope := core.New(loop, filepath.Base(path), w, h)
	for _, name := range tuple.Names(tuples) {
		sigName := name
		if sigName == "" {
			sigName = "signal"
		}
		if _, err := scope.AddSignal(core.Sig{Name: sigName, Kind: core.KindBuffer}); err != nil {
			return err
		}
	}
	if err := scope.SetPlaybackMode(tuples, period); err != nil {
		return err
	}
	done := false
	scope.OnPlaybackDone(func() { done = true })
	if err := scope.StartPlayback(); err != nil {
		return err
	}

	widget := gtk.NewScopeWidget(scope)
	if framesDir != "" {
		if err := os.MkdirAll(framesDir, 0o755); err != nil {
			return err
		}
	}
	if ansi {
		fmt.Print(draw.ANSIClear())
	}
	var gifFrames []*draw.Surface
	frame := 0
	for !done {
		loop.Advance(period)
		frame++
		if gifOut != "" && frame%every == 0 {
			gifFrames = append(gifFrames, widget.RenderFrame())
		}
		switch {
		case ansi:
			fmt.Print(draw.ANSIHome())
			surf := widget.RenderFrame()
			if err := surf.WriteANSI(os.Stdout, draw.ANSIOptions{Scale: 3}); err != nil {
				return err
			}
			fmt.Println(widget.StatusLine())
			if speed > 0 {
				time.Sleep(time.Duration(float64(period) / speed))
			}
		case framesDir != "" && frame%every == 0:
			surf := widget.RenderFrame()
			name := filepath.Join(framesDir, fmt.Sprintf("frame%05d.png", frame))
			if err := surf.WritePNG(name); err != nil {
				return err
			}
		}
	}
	if pngOut != "" {
		surf := widget.RenderFrame()
		if err := surf.WritePNG(pngOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d tuples, %d polls)\n", pngOut, len(tuples), scope.Stats().Polls)
	}
	if gifOut != "" && len(gifFrames) > 0 {
		// Per-frame delay in 100ths of a second: every polls at `period`
		// per frame.
		delay := int(period.Seconds() * float64(every) * 100)
		if err := draw.WriteGIF(gifOut, gifFrames, delay); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d frames)\n", gifOut, len(gifFrames))
	}
	return nil
}

func writeFigures(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, s *draw.Surface) error {
		p := filepath.Join(dir, name)
		if err := s.WritePNG(p); err != nil {
			return err
		}
		fmt.Println("wrote", p)
		return nil
	}
	f1, err := figures.Figure1()
	if err != nil {
		return err
	}
	if err := write("fig1_scope_widget.png", f1); err != nil {
		return err
	}
	f2, err := figures.Figure2()
	if err != nil {
		return err
	}
	if err := write("fig2_signal_params.png", f2); err != nil {
		return err
	}
	f3, err := figures.Figure3()
	if err != nil {
		return err
	}
	if err := write("fig3_control_params.png", f3); err != nil {
		return err
	}
	f4, err := figures.Figure4()
	if err != nil {
		return err
	}
	fmt.Println(f4.Summary("fig4 TCP"))
	if err := write("fig4_tcp.png", f4.Frame); err != nil {
		return err
	}
	f5, err := figures.Figure5()
	if err != nil {
		return err
	}
	fmt.Println(f5.Summary("fig5 ECN"))
	return write("fig5_ecn.png", f5.Frame)
}
