package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.window != 400*time.Millisecond || cfg.reps != 5 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if got := cfg.signals; len(got) != 4 || got[0] != 1 || got[3] != 32 {
		t.Fatalf("signals = %v", got)
	}
	if cfg.ingest || cfg.replay {
		t.Fatalf("mode flags set by default: %+v", cfg)
	}
	if cfg.publishers != 8 || cfg.batch != 256 || cfg.tuples != 1_000_000 {
		t.Fatalf("ingest/replay defaults wrong: %+v", cfg)
	}
}

func TestParseFlagsSignalsList(t *testing.T) {
	cfg, err := parseFlags([]string{"-signals", " 2, 4 ,8 "})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.signals) != 3 || cfg.signals[0] != 2 || cfg.signals[2] != 8 {
		t.Fatalf("signals = %v", cfg.signals)
	}
}

func TestParseFlagsRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional argument", []string{"extra"}},
		{"ingest and replay", []string{"-ingest", "-replay"}},
		{"zero window", []string{"-window", "0s"}},
		{"negative window", []string{"-window", "-1s"}},
		{"zero reps", []string{"-reps", "0"}},
		{"zero publishers", []string{"-ingest", "-publishers", "0"}},
		{"batch too small", []string{"-ingest", "-batch", "1"}},
		{"replay too few tuples", []string{"-replay", "-tuples", "10"}},
		{"soak and ingest", []string{"-soak", "5s", "-ingest"}},
		{"soak and replay", []string{"-soak", "5s", "-replay"}},
		{"negative soak", []string{"-soak", "-5s"}},
		{"sub-second soak", []string{"-soak", "500ms"}},
		{"chaos without soak", []string{"-chaos"}},
		{"zero soak publishers", []string{"-soak", "5s", "-soak-publishers", "0"}},
		{"too many soak publishers", []string{"-soak", "5s", "-soak-publishers", "65"}},
		{"zero soak subscribers", []string{"-soak", "5s", "-soak-subscribers", "0"}},
		{"too many soak subscribers", []string{"-soak", "5s", "-soak-subscribers", "65"}},
		{"bad signals token", []string{"-signals", "1,x,8"}},
		{"negative signals token", []string{"-signals", "-3"}},
		{"empty signals list", []string{"-signals", " , "}},
	}
	for _, c := range cases {
		if _, err := parseFlags(c.args); err == nil {
			t.Errorf("%s: %v accepted", c.name, c.args)
		}
	}
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h should surface flag.ErrHelp, got %v", err)
	}
}

func TestParseFlagsSoakDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-soak", "2s", "-chaos"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.soak != 2*time.Second || !cfg.chaos {
		t.Fatalf("soak flags wrong: %+v", cfg)
	}
	if cfg.soakPublishers != 4 || cfg.soakSubscribers != 8 || cfg.seed != 1 {
		t.Fatalf("soak defaults wrong: %+v", cfg)
	}
}

// TestSoakSmoke runs the full-pipeline soak at its minimum duration —
// the end-to-end test of the publisher → relay → hub → subscriber →
// recorder path, with every continuous invariant armed.
func TestSoakSmoke(t *testing.T) {
	cfg, err := parseFlags([]string{"-soak", "1s", "-soak-publishers", "2", "-soak-subscribers", "8"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runBench(cfg, &out); err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"publishers         ",
		"root hub           ",
		"sub0(plain-v1)",
		"sub3(max-rate)",
		"sub5(no-stream)",
		"sub6(binary)",
		"sub7(binary-filtered)",
		"replay             ",
		"invariants         OK (0 violations)",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestIngestSmoke runs the -ingest experiment with a tiny window and
// checks the report shape: all three publish paths measured, with their
// speedup ratios.
func TestIngestSmoke(t *testing.T) {
	cfg, err := parseFlags([]string{"-ingest", "-window", "30ms", "-publishers", "2", "-batch", "64"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runBench(cfg, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"publishers=2 batch=64",
		"per-sample Push",
		"PushBatch(  64)",
		"Probe.RecordAt",
		"tuples/s",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Every row must report a positive rate.
	for _, line := range strings.Split(report, "\n") {
		if strings.Contains(line, "tuples/s") && strings.Contains(line, " 0 tuples/s") {
			t.Errorf("zero-rate row: %q", line)
		}
	}
}

// TestReplaySmoke runs the -replay experiment at its minimum size.
func TestReplaySmoke(t *testing.T) {
	cfg, err := parseFlags([]string{"-replay", "-tuples", "1000", "-batch", "100"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runBench(cfg, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "record Append") || !strings.Contains(report, "replay drain") {
		t.Fatalf("report incomplete:\n%s", report)
	}
	if !strings.Contains(report, "(1000 drained)") {
		t.Fatalf("replay did not drain everything:\n%s", report)
	}
}
