// Command gscope-bench reproduces the paper's overhead experiment (§4.6,
// experiment TAB-A in DESIGN.md): a CPU load program spins in a tight loop
// and counts iterations; the ratio of the count with a polling scope
// running versus idle estimates the scope's CPU overhead. It prints the
// same rows the paper reports: overhead at 10 ms and 50 ms polling, and
// the marginal cost of each additional signal.
//
// Usage:
//
//	gscope-bench [-window 400ms] [-reps 5] [-signals 1,8,16,32]
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/loadgen"
)

func main() {
	var (
		window  = flag.Duration("window", 400*time.Millisecond, "measurement window per phase")
		reps    = flag.Int("reps", 5, "repetitions (median taken)")
		signals = flag.String("signals", "1,8,16,32", "signal counts for the per-signal sweep")
	)
	flag.Parse()

	fmt.Println("gscope overhead experiment (§4.6 methodology)")
	fmt.Printf("window=%s reps=%d\n\n", *window, *reps)

	fmt.Println("polling period sweep (8 integer signals):")
	fmt.Println("  period   overhead    paper")
	for _, row := range []struct {
		period time.Duration
		paper  string
	}{
		{10 * time.Millisecond, "< 2%"},
		{50 * time.Millisecond, "< 1%"},
	} {
		oh := measureOverhead(*reps, *window, row.period, 8)
		fmt.Printf("  %-7s  %6.2f%%     %s\n", row.period, oh, row.paper)
	}

	fmt.Println("\nsignal count sweep (10 ms period):")
	fmt.Println("  signals  overhead   delta/signal (paper: 0.02-0.05%/signal)")
	var prev float64
	var prevN int
	for i, tok := range strings.Split(*signals, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			continue
		}
		oh := measureOverhead(*reps, *window, 10*time.Millisecond, n)
		if i == 0 {
			fmt.Printf("  %-7d  %6.2f%%\n", n, oh)
		} else {
			delta := (oh - prev) / float64(n-prevN)
			fmt.Printf("  %-7d  %6.2f%%    %+.3f%%\n", n, oh, delta)
		}
		prev, prevN = oh, n
	}
}

// measureOverhead runs a real-clock scope polling n integer signals at the
// given period while the load program spins.
func measureOverhead(reps int, window, period time.Duration, n int) float64 {
	res := loadgen.MeasureRepeated(reps, window, startScope(period, n, &stopper), stopScope(&stopper))
	return res.OverheadPercent()
}

// stopper carries the teardown between the start and stop callbacks.
var stopper func()

func startScope(period time.Duration, n int, cleanup *func()) func() {
	return func() {
		loop := glib.NewLoop(glib.RealClock{}, glib.WithGranularity(period))
		scope := core.New(loop, "bench", 600, 200)
		vars := make([]core.IntVar, n)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("sig%d", i)
			if _, err := scope.AddSignal(core.Sig{Name: name, Source: &vars[i]}); err != nil {
				panic(err)
			}
		}
		if err := scope.SetPollingMode(period); err != nil {
			panic(err)
		}
		if err := scope.StartPolling(); err != nil {
			panic(err)
		}
		done := make(chan struct{})
		go func() {
			loop.Run() //nolint:errcheck
			close(done)
		}()
		*cleanup = func() {
			loop.Quit()
			<-done
		}
	}
}

func stopScope(cleanup *func()) func() {
	return func() {
		if *cleanup != nil {
			(*cleanup)()
			*cleanup = nil
		}
	}
}
