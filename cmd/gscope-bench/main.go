// Command gscope-bench reproduces the paper's overhead experiment (§4.6,
// experiment TAB-A in DESIGN.md): a CPU load program spins in a tight loop
// and counts iterations; the ratio of the count with a polling scope
// running versus idle estimates the scope's CPU overhead. It prints the
// same rows the paper reports: overhead at 10 ms and 50 ms polling, and
// the marginal cost of each additional signal.
//
// Usage:
//
//	gscope-bench [-window 400ms] [-reps 5] [-signals 1,8,16,32]
//	gscope-bench -ingest [-publishers 8] [-batch 256] [-window 400ms]
//	gscope-bench -replay [-tuples 1000000] [-batch 256]
//	gscope-bench -soak 30s [-soak-publishers 4] [-soak-subscribers 8] [-chaos] [-seed 1]
//
// The -ingest mode instead measures the sharded feed's ingest throughput:
// N publisher goroutines pushing per sample, in batches, and through
// pre-registered probe handles — the experiments behind the CI gate's
// BenchmarkFeedPushBatch and BenchmarkProbeRecord.
//
// The -replay mode measures the flight recorder (internal/reclog): tuples/s
// appended through the recording queue to sealed segments on disk, and
// tuples/s drained back out by an as-fast-as-possible replay — the
// experiment behind BenchmarkRecordAppend and BenchmarkReplayDrain.
//
// The -soak mode is a correctness harness, not a benchmark: it runs the
// whole pipeline (publishers → relay tree → hub → subscribers, with the
// flight recorder attached) under continuous invariant checks and exits
// non-zero on any violation. See soak.go.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/loadgen"
	"repro/internal/reclog"
	"repro/internal/tuple"
)

// config is the parsed and validated command line.
type config struct {
	window     time.Duration
	reps       int
	signals    []int
	ingest     bool
	publishers int
	batch      int
	replay     bool
	tuples     int

	soak            time.Duration
	soakPublishers  int
	soakSubscribers int
	chaos           bool
	seed            int64
}

// parseFlags validates the command line into a config, mirroring the
// gscoped flag discipline: structurally impossible requests are rejected
// here with an error rather than silently clamped at run time.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("gscope-bench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		window     = fs.Duration("window", 400*time.Millisecond, "measurement window per phase")
		reps       = fs.Int("reps", 5, "repetitions (median taken)")
		signals    = fs.String("signals", "1,8,16,32", "signal counts for the per-signal sweep")
		ingest     = fs.Bool("ingest", false, "measure feed ingest throughput instead of CPU overhead")
		publishers = fs.Int("publishers", 8, "publisher goroutines for -ingest")
		batch      = fs.Int("batch", 256, "batch size for -ingest and -replay")
		replay     = fs.Bool("replay", false, "measure flight-recorder record/replay throughput")
		tuples     = fs.Int("tuples", 1_000_000, "tuples to record for -replay")
		soak       = fs.Duration("soak", 0, "run the full-pipeline soak for this long (0 disables)")
		soakPubs   = fs.Int("soak-publishers", 4, "publisher clients for -soak")
		soakSubs   = fs.Int("soak-subscribers", 8, "subscriber clients for -soak")
		chaos      = fs.Bool("chaos", false, "degrade the publisher links during -soak (delay, kills, partitions)")
		seed       = fs.Int64("seed", 1, "randomness seed for -chaos")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg := config{
		window:     *window,
		reps:       *reps,
		ingest:     *ingest,
		publishers: *publishers,
		batch:      *batch,
		replay:     *replay,
		tuples:     *tuples,

		soak:            *soak,
		soakPublishers:  *soakPubs,
		soakSubscribers: *soakSubs,
		chaos:           *chaos,
		seed:            *seed,
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if cfg.ingest && cfg.replay {
		return config{}, fmt.Errorf("-ingest and -replay are mutually exclusive")
	}
	if cfg.soak < 0 {
		return config{}, fmt.Errorf("-soak must be positive, got %s", cfg.soak)
	}
	if cfg.soak > 0 && (cfg.ingest || cfg.replay) {
		return config{}, fmt.Errorf("-soak is mutually exclusive with -ingest and -replay")
	}
	if cfg.soak > 0 && cfg.soak < time.Second {
		return config{}, fmt.Errorf("-soak needs at least 1s to quiesce, got %s", cfg.soak)
	}
	if cfg.chaos && cfg.soak == 0 {
		return config{}, fmt.Errorf("-chaos requires -soak")
	}
	if cfg.soak > 0 && (cfg.soakPublishers < 1 || cfg.soakPublishers > 64) {
		return config{}, fmt.Errorf("-soak-publishers must be between 1 and 64, got %d", cfg.soakPublishers)
	}
	if cfg.soak > 0 && (cfg.soakSubscribers < 1 || cfg.soakSubscribers > 64) {
		return config{}, fmt.Errorf("-soak-subscribers must be between 1 and 64, got %d", cfg.soakSubscribers)
	}
	if cfg.window <= 0 {
		return config{}, fmt.Errorf("-window must be positive, got %s", cfg.window)
	}
	if cfg.reps < 1 {
		return config{}, fmt.Errorf("-reps must be at least 1, got %d", cfg.reps)
	}
	if cfg.publishers < 1 {
		return config{}, fmt.Errorf("-publishers must be at least 1, got %d", cfg.publishers)
	}
	if cfg.batch < 2 {
		return config{}, fmt.Errorf("-batch must be at least 2, got %d", cfg.batch)
	}
	if cfg.replay && cfg.tuples < 1000 {
		return config{}, fmt.Errorf("-tuples must be at least 1000, got %d", cfg.tuples)
	}
	for _, tok := range strings.Split(*signals, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 {
			return config{}, fmt.Errorf("bad -signals entry %q", tok)
		}
		cfg.signals = append(cfg.signals, n)
	}
	if !cfg.ingest && !cfg.replay && len(cfg.signals) == 0 {
		return config{}, fmt.Errorf("-signals lists no signal counts")
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "gscope-bench:", err)
		os.Exit(2)
	}
	if err := runBench(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gscope-bench:", err)
		os.Exit(1)
	}
}

// runBench dispatches the selected experiment.
func runBench(cfg config, out io.Writer) error {
	if cfg.soak > 0 {
		return runSoak(cfg, out)
	}
	if cfg.ingest {
		return runIngest(cfg, out)
	}
	if cfg.replay {
		return runReplay(cfg, out)
	}
	runOverheadSweep(cfg, out)
	return nil
}

// runOverheadSweep is the default §4.6 CPU-overhead experiment.
func runOverheadSweep(cfg config, out io.Writer) {
	fmt.Fprintln(out, "gscope overhead experiment (§4.6 methodology)")
	fmt.Fprintf(out, "window=%s reps=%d\n\n", cfg.window, cfg.reps)

	fmt.Fprintln(out, "polling period sweep (8 integer signals):")
	fmt.Fprintln(out, "  period   overhead    paper")
	for _, row := range []struct {
		period time.Duration
		paper  string
	}{
		{10 * time.Millisecond, "< 2%"},
		{50 * time.Millisecond, "< 1%"},
	} {
		oh := measureOverhead(cfg.reps, cfg.window, row.period, 8)
		fmt.Fprintf(out, "  %-7s  %6.2f%%     %s\n", row.period, oh, row.paper)
	}

	fmt.Fprintln(out, "\nsignal count sweep (10 ms period):")
	fmt.Fprintln(out, "  signals  overhead   delta/signal (paper: 0.02-0.05%/signal)")
	var prev float64
	var prevN int
	for i, n := range cfg.signals {
		oh := measureOverhead(cfg.reps, cfg.window, 10*time.Millisecond, n)
		if i == 0 {
			fmt.Fprintf(out, "  %-7d  %6.2f%%\n", n, oh)
		} else {
			delta := (oh - prev) / float64(n-prevN)
			fmt.Fprintf(out, "  %-7d  %6.2f%%    %+.3f%%\n", n, oh, delta)
		}
		prev, prevN = oh, n
	}
}

// measureOverhead runs a real-clock scope polling n integer signals at the
// given period while the load program spins.
func measureOverhead(reps int, window, period time.Duration, n int) float64 {
	res := loadgen.MeasureRepeated(reps, window, startScope(period, n, &stopper), stopScope(&stopper))
	return res.OverheadPercent()
}

// stopper carries the teardown between the start and stop callbacks.
var stopper func()

func startScope(period time.Duration, n int, cleanup *func()) func() {
	return func() {
		loop := glib.NewLoop(glib.RealClock{}, glib.WithGranularity(period))
		scope := core.New(loop, "bench", 600, 200)
		vars := make([]core.IntVar, n)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("sig%d", i)
			if _, err := scope.AddSignal(core.Sig{Name: name, Source: &vars[i]}); err != nil {
				panic(err)
			}
		}
		if err := scope.SetPollingMode(period); err != nil {
			panic(err)
		}
		if err := scope.StartPolling(); err != nil {
			panic(err)
		}
		done := make(chan struct{})
		go func() {
			loop.Run() //nolint:errcheck
			close(done)
		}()
		*cleanup = func() {
			loop.Quit()
			<-done
		}
	}
}

func stopScope(cleanup *func()) func() {
	return func() {
		if *cleanup != nil {
			(*cleanup)()
			*cleanup = nil
		}
	}
}

// runIngest measures tuples/s through the sharded feed for the per-sample,
// batch, and probe publish paths: publishers push rounds of rising
// timestamps, the feed is drained between rounds, and only push time is
// counted.
func runIngest(cfg config, out io.Writer) error {
	fmt.Fprintln(out, "gscope feed ingest experiment (sharded batch engine + probes)")
	fmt.Fprintf(out, "publishers=%d batch=%d window=%s\n\n", cfg.publishers, cfg.batch, cfg.window)
	perSample := measureIngest(cfg.publishers, 1, cfg.window, false)
	batched := measureIngest(cfg.publishers, cfg.batch, cfg.window, false)
	probes := measureIngest(cfg.publishers, 1, cfg.window, true)
	fmt.Fprintf(out, "  per-sample Push    %12.0f tuples/s\n", perSample)
	fmt.Fprintf(out, "  PushBatch(%4d)    %12.0f tuples/s   (%.1fx)\n",
		cfg.batch, batched, batched/perSample)
	fmt.Fprintf(out, "  Probe.RecordAt     %12.0f tuples/s   (%.1fx)\n",
		probes, probes/perSample)
	return nil
}

// runReplay measures the flight recorder end to end: record n synthetic
// tuples through the bounded queue into rotated segments, seal, then drain
// the session back with an as-fast-as-possible replay.
func runReplay(cfg config, out io.Writer) error {
	n, batchSize := cfg.tuples, cfg.batch
	dir, err := os.MkdirTemp("", "gscope-replay-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintln(out, "gscope flight-recorder experiment (internal/reclog)")
	fmt.Fprintf(out, "tuples=%d batch=%d dir=%s\n\n", n, batchSize, dir)

	lg, err := reclog.Open(dir, reclog.Options{QueueLimit: 1 << 16})
	if err != nil {
		return err
	}
	batch := make([]tuple.Tuple, batchSize)
	names := []string{"cps", "errps", "tput"}
	start := time.Now()
	for i := 0; i < n; i += batchSize {
		for j := range batch {
			batch[j] = tuple.Tuple{Time: int64(i + j), Value: float64(j), Name: names[j%3]}
		}
		lg.Append(batch)
	}
	if err := lg.Close(); err != nil { // Close waits for the disk to drain
		return err
	}
	recSecs := time.Since(start).Seconds()
	_, dropped, written := lg.Stats()

	sess, err := reclog.OpenSession(dir)
	if err != nil {
		return err
	}
	rep := reclog.NewReplayer(sess)
	rep.SetSpeed(0)
	rep.SetBatch(batchSize)
	start = time.Now()
	var drained int64
	if err := rep.Run(func(b []tuple.Tuple) error {
		drained += int64(len(b))
		return nil
	}); err != nil {
		return err
	}
	repSecs := time.Since(start).Seconds()

	fmt.Fprintf(out, "  record Append      %12.0f tuples/s   (%d written, %d dropped, %d segments)\n",
		float64(written)/recSecs, written, dropped, len(sess.Segments()))
	fmt.Fprintf(out, "  replay drain       %12.0f tuples/s   (%d drained)\n",
		float64(drained)/repSecs, drained)
	return nil
}

// measureIngest times one publish shape: per-sample Push (batchSize <= 1,
// probes false), PushBatch runs, or per-sample Probe.RecordAt (probes
// true).
func measureIngest(publishers, batchSize int, window time.Duration, probes bool) float64 {
	const roundPer = 1 << 11
	f := core.NewFeed()
	handles := make([]*core.Probe, publishers)
	if probes {
		for g := range handles {
			p, err := f.Probe(fmt.Sprintf("sig%d", g))
			if err != nil {
				panic(err)
			}
			handles[g] = p
		}
	}
	var drainBuf []tuple.Tuple
	base := 0
	pushed := 0
	var spent time.Duration
	for spent < window {
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < publishers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				name := fmt.Sprintf("sig%d", g)
				switch {
				case probes:
					p := handles[g]
					for i := 0; i < roundPer; i++ {
						p.RecordAt(time.Duration(base+i)*time.Millisecond, float64(i))
					}
					p.Flush()
				case batchSize <= 1:
					for i := 0; i < roundPer; i++ {
						f.Push(time.Duration(base+i)*time.Millisecond, name, float64(i))
					}
				default:
					batch := make([]tuple.Tuple, batchSize)
					for j := range batch {
						batch[j] = tuple.Tuple{Value: float64(j), Name: name}
					}
					for i := 0; i < roundPer; i += batchSize {
						n := batchSize
						if roundPer-i < n {
							n = roundPer - i
						}
						for j := 0; j < n; j++ {
							batch[j].Time = int64(base + i + j)
						}
						f.PushBatch(batch[:n])
					}
				}
			}()
		}
		wg.Wait()
		spent += time.Since(start)
		pushed += roundPer * publishers
		drainBuf = f.DrainInto(time.Duration(base+roundPer-1)*time.Millisecond, drainBuf[:0])
		base += roundPer
	}
	return float64(pushed) / spent.Seconds()
}
