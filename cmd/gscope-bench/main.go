// Command gscope-bench reproduces the paper's overhead experiment (§4.6,
// experiment TAB-A in DESIGN.md): a CPU load program spins in a tight loop
// and counts iterations; the ratio of the count with a polling scope
// running versus idle estimates the scope's CPU overhead. It prints the
// same rows the paper reports: overhead at 10 ms and 50 ms polling, and
// the marginal cost of each additional signal.
//
// Usage:
//
//	gscope-bench [-window 400ms] [-reps 5] [-signals 1,8,16,32]
//	gscope-bench -ingest [-publishers 8] [-batch 256] [-window 400ms]
//	gscope-bench -replay [-tuples 1000000] [-batch 256]
//
// The -ingest mode instead measures the sharded feed's ingest throughput:
// N publisher goroutines pushing per sample versus in batches, the
// experiment behind the CI benchmark gate's BenchmarkFeedPushBatch.
//
// The -replay mode measures the flight recorder (internal/reclog): tuples/s
// appended through the recording queue to sealed segments on disk, and
// tuples/s drained back out by an as-fast-as-possible replay — the
// experiment behind BenchmarkRecordAppend and BenchmarkReplayDrain.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/loadgen"
	"repro/internal/reclog"
	"repro/internal/tuple"
)

func main() {
	var (
		window     = flag.Duration("window", 400*time.Millisecond, "measurement window per phase")
		reps       = flag.Int("reps", 5, "repetitions (median taken)")
		signals    = flag.String("signals", "1,8,16,32", "signal counts for the per-signal sweep")
		ingest     = flag.Bool("ingest", false, "measure feed ingest throughput instead of CPU overhead")
		publishers = flag.Int("publishers", 8, "publisher goroutines for -ingest")
		batch      = flag.Int("batch", 256, "batch size for -ingest and -replay")
		replay     = flag.Bool("replay", false, "measure flight-recorder record/replay throughput")
		tuples     = flag.Int("tuples", 1_000_000, "tuples to record for -replay")
	)
	flag.Parse()

	if *ingest {
		runIngest(*publishers, *batch, *window)
		return
	}
	if *replay {
		runReplay(*tuples, *batch)
		return
	}

	fmt.Println("gscope overhead experiment (§4.6 methodology)")
	fmt.Printf("window=%s reps=%d\n\n", *window, *reps)

	fmt.Println("polling period sweep (8 integer signals):")
	fmt.Println("  period   overhead    paper")
	for _, row := range []struct {
		period time.Duration
		paper  string
	}{
		{10 * time.Millisecond, "< 2%"},
		{50 * time.Millisecond, "< 1%"},
	} {
		oh := measureOverhead(*reps, *window, row.period, 8)
		fmt.Printf("  %-7s  %6.2f%%     %s\n", row.period, oh, row.paper)
	}

	fmt.Println("\nsignal count sweep (10 ms period):")
	fmt.Println("  signals  overhead   delta/signal (paper: 0.02-0.05%/signal)")
	var prev float64
	var prevN int
	for i, tok := range strings.Split(*signals, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			continue
		}
		oh := measureOverhead(*reps, *window, 10*time.Millisecond, n)
		if i == 0 {
			fmt.Printf("  %-7d  %6.2f%%\n", n, oh)
		} else {
			delta := (oh - prev) / float64(n-prevN)
			fmt.Printf("  %-7d  %6.2f%%    %+.3f%%\n", n, oh, delta)
		}
		prev, prevN = oh, n
	}
}

// measureOverhead runs a real-clock scope polling n integer signals at the
// given period while the load program spins.
func measureOverhead(reps int, window, period time.Duration, n int) float64 {
	res := loadgen.MeasureRepeated(reps, window, startScope(period, n, &stopper), stopScope(&stopper))
	return res.OverheadPercent()
}

// stopper carries the teardown between the start and stop callbacks.
var stopper func()

func startScope(period time.Duration, n int, cleanup *func()) func() {
	return func() {
		loop := glib.NewLoop(glib.RealClock{}, glib.WithGranularity(period))
		scope := core.New(loop, "bench", 600, 200)
		vars := make([]core.IntVar, n)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("sig%d", i)
			if _, err := scope.AddSignal(core.Sig{Name: name, Source: &vars[i]}); err != nil {
				panic(err)
			}
		}
		if err := scope.SetPollingMode(period); err != nil {
			panic(err)
		}
		if err := scope.StartPolling(); err != nil {
			panic(err)
		}
		done := make(chan struct{})
		go func() {
			loop.Run() //nolint:errcheck
			close(done)
		}()
		*cleanup = func() {
			loop.Quit()
			<-done
		}
	}
}

func stopScope(cleanup *func()) func() {
	return func() {
		if *cleanup != nil {
			(*cleanup)()
			*cleanup = nil
		}
	}
}

// runIngest measures tuples/s through the sharded feed for the per-sample
// and batch push paths: publishers push rounds of rising timestamps, the
// feed is drained between rounds, and only push time is counted.
func runIngest(publishers, batchSize int, window time.Duration) {
	if publishers < 1 {
		publishers = 1
	}
	if batchSize < 2 {
		batchSize = 2
	}
	fmt.Println("gscope feed ingest experiment (sharded batch engine)")
	fmt.Printf("publishers=%d batch=%d window=%s\n\n", publishers, batchSize, window)
	perSample := measureIngest(publishers, 1, window)
	batched := measureIngest(publishers, batchSize, window)
	fmt.Printf("  per-sample Push    %12.0f tuples/s\n", perSample)
	fmt.Printf("  PushBatch(%4d)    %12.0f tuples/s   (%.1fx)\n",
		batchSize, batched, batched/perSample)
}

// runReplay measures the flight recorder end to end: record n synthetic
// tuples through the bounded queue into rotated segments, seal, then drain
// the session back with an as-fast-as-possible replay.
func runReplay(n, batchSize int) {
	if n < 1000 {
		n = 1000
	}
	if batchSize < 1 {
		batchSize = 1
	}
	dir, err := os.MkdirTemp("", "gscope-replay-bench")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gscope-bench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	fmt.Println("gscope flight-recorder experiment (internal/reclog)")
	fmt.Printf("tuples=%d batch=%d dir=%s\n\n", n, batchSize, dir)

	lg, err := reclog.Open(dir, reclog.Options{QueueLimit: 1 << 16})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gscope-bench:", err)
		os.Exit(1)
	}
	batch := make([]tuple.Tuple, batchSize)
	names := []string{"cps", "errps", "tput"}
	start := time.Now()
	for i := 0; i < n; i += batchSize {
		for j := range batch {
			batch[j] = tuple.Tuple{Time: int64(i + j), Value: float64(j), Name: names[j%3]}
		}
		lg.Append(batch)
	}
	if err := lg.Close(); err != nil { // Close waits for the disk to drain
		fmt.Fprintln(os.Stderr, "gscope-bench:", err)
		os.Exit(1)
	}
	recSecs := time.Since(start).Seconds()
	_, dropped, written := lg.Stats()

	sess, err := reclog.OpenSession(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gscope-bench:", err)
		os.Exit(1)
	}
	rep := reclog.NewReplayer(sess)
	rep.SetSpeed(0)
	rep.SetBatch(batchSize)
	start = time.Now()
	var drained int64
	if err := rep.Run(func(b []tuple.Tuple) error {
		drained += int64(len(b))
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "gscope-bench:", err)
		os.Exit(1)
	}
	repSecs := time.Since(start).Seconds()

	fmt.Printf("  record Append      %12.0f tuples/s   (%d written, %d dropped, %d segments)\n",
		float64(written)/recSecs, written, dropped, len(sess.Segments()))
	fmt.Printf("  replay drain       %12.0f tuples/s   (%d drained)\n",
		float64(drained)/repSecs, drained)
}

func measureIngest(publishers, batchSize int, window time.Duration) float64 {
	const roundPer = 1 << 11
	f := core.NewFeed()
	var drainBuf []tuple.Tuple
	base := 0
	pushed := 0
	var spent time.Duration
	for spent < window {
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < publishers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				name := fmt.Sprintf("sig%d", g)
				if batchSize <= 1 {
					for i := 0; i < roundPer; i++ {
						f.Push(time.Duration(base+i)*time.Millisecond, name, float64(i))
					}
					return
				}
				batch := make([]tuple.Tuple, batchSize)
				for j := range batch {
					batch[j] = tuple.Tuple{Value: float64(j), Name: name}
				}
				for i := 0; i < roundPer; i += batchSize {
					n := batchSize
					if roundPer-i < n {
						n = roundPer - i
					}
					for j := 0; j < n; j++ {
						batch[j].Time = int64(base + i + j)
					}
					f.PushBatch(batch[:n])
				}
			}()
		}
		wg.Wait()
		spent += time.Since(start)
		pushed += roundPer * publishers
		drainBuf = f.DrainInto(time.Duration(base+roundPer-1)*time.Millisecond, drainBuf[:0])
		base += roundPer
	}
	return float64(pushed) / spent.Seconds()
}
