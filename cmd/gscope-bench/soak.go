package main

// Soak mode: the whole pipeline under sustained load. N publisher
// clients feed a two-level relay tree (leaf hubs forwarding into a root
// hub), M mixed subscribers watch the root (plain v1, v2 control,
// filtered, rate-capped, backfilled, control-plane-only, plus v3 binary
// plain and binary-filtered lanes per docs/WIRE.md), and a flight
// recorder records everything in binary segments. Half the publishers
// publish binary frames; the rest stay text, so every ingest path sees
// mixed encodings. Every sink checks the stream invariants
// continuously: per-signal watermarks never regress, every value
// carries its deterministic checksum, filters and rate caps hold, and
// drop counters stay consistent with the configured queue bounds. The
// run finishes with a record→replay→byte-diff of the root stream and a
// goroutine leak check. With -chaos the publisher→relay hop runs
// through netsim.ChaosProxy (delay, jitter, connection kills,
// partitions); reconnecting clients must ride through without violating
// a single stream invariant — chaos is allowed to lose data, never to
// corrupt or reorder it.
//
// A UDP leg rides along: two datagram publishers feed the root's lossy
// lane (docs/WIRE.md §D) directly, proving both transports merge into
// one stream under sustained load with exact conservation accounting —
// every datagram the publishers numbered ends the run either released
// into the root or explicitly declared lost. (Datagram-lane chaos is
// owned by the internal/dgram chaos tests; the soak keeps this hop on
// clean loopback.)

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/netscope"
	"repro/internal/netsim"
	"repro/internal/reclog"
	"repro/internal/testutil"
	"repro/internal/tuple"
)

const (
	// soakTick paces each publisher: one sample per signal per tick.
	soakTick = 5 * time.Millisecond
	// soakMaxRate is the rate cap the decimated subscriber requests;
	// well under the publish rate so decimation actually engages.
	soakMaxRate = 50
	// soakQueue bounds every queue in the topology. Generous enough
	// that a clean run must not drop anything — which turns the drop
	// counters into invariants.
	soakQueue = 1 << 16
	// udpLegPubs datagram publishers feed the root's lossy lane.
	udpLegPubs = 2
)

// soakValue is the deterministic checksum every publisher stamps on
// every tuple: any sink can recompute it from (name, time) alone, so
// corruption anywhere in the pipeline is detectable without keeping the
// sent stream around.
func soakValue(name string, tms int64) float64 {
	h := fnv.New32a()
	io.WriteString(h, name) //nolint:errcheck // fnv cannot fail
	return float64(h.Sum32()%1000) + float64(tms%1_000_000)*1e-6
}

// soakViolations accumulates invariant violations from every goroutine;
// the run fails if any were recorded.
type soakViolations struct {
	mu      sync.Mutex
	n       int64
	samples []string
}

func (v *soakViolations) addf(format string, args ...any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.n++
	if len(v.samples) < 12 {
		v.samples = append(v.samples, fmt.Sprintf(format, args...))
	}
}

func (v *soakViolations) count() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.n
}

// sinkCheck verifies the stream invariants at one sink: per-signal
// watermarks only advance and every value matches its checksum. Not
// goroutine-safe — each instance is confined to whatever goroutine its
// sink's callbacks run on (the shared glib loop for servers and
// subscribers, the main goroutine for replay).
type sinkCheck struct {
	name string
	vio  *soakViolations
	last map[string]int64
	seen int64
}

func newSinkCheck(name string, vio *soakViolations) *sinkCheck {
	return &sinkCheck{name: name, vio: vio, last: make(map[string]int64)}
}

func (c *sinkCheck) observe(t tuple.Tuple) {
	c.seen++
	if want := soakValue(t.Name, t.Time); t.Value != want {
		c.vio.addf("%s: %s carried %v at %dms, checksum says %v", c.name, t.Name, t.Value, t.Time, want)
	}
	if last, ok := c.last[t.Name]; ok && t.Time < last {
		c.vio.addf("%s: watermark regressed on %s: %dms after %dms", c.name, t.Name, t.Time, last)
	}
	c.last[t.Name] = t.Time
}

// soakMatch mirrors the hub's filter semantics: exact name or
// path.Match glob.
func soakMatch(patterns []string, name string) bool {
	for _, p := range patterns {
		if p == name {
			return true
		}
		if ok, _ := path.Match(p, name); ok {
			return true
		}
	}
	return false
}

// soakSub is one root subscriber plus the per-profile invariants its
// subscription implies. All callback state is loop-confined.
type soakSub struct {
	label    string
	sub      *netscope.Subscriber
	check    *sinkCheck
	filter   []string
	minGapMS int64
	noStream bool

	acked          bool
	inSnap, inBack bool
	lastLive       map[string]int64
	paramFrames    int64
	errorFrames    int64
}

// newSoakSub connects subscriber i to the root hub with a profile
// cycled from the eight the protocol offers.
func newSoakSub(loop *glib.Loop, addr string, i int, vio *soakViolations, closed *atomic.Int64) (*soakSub, error) {
	ss := &soakSub{}
	var opts []netscope.SubscribeOption
	switch i % 8 {
	case 0:
		ss.label = "plain-v1"
	case 1:
		ss.label = "control"
		opts = append(opts, netscope.WithControl())
	case 2:
		ss.label = "filtered"
		ss.filter = []string{"p0.*"}
		opts = append(opts, netscope.WithSignals(ss.filter...))
	case 3:
		ss.label = "max-rate"
		ss.minGapMS = int64(1000 / soakMaxRate)
		ss.lastLive = make(map[string]int64)
		opts = append(opts, netscope.WithMaxRate(soakMaxRate))
	case 4:
		ss.label = "since"
		opts = append(opts, netscope.WithSince(-2*time.Second))
	case 5:
		ss.label = "no-stream"
		ss.noStream = true
		opts = append(opts, netscope.WithoutStream())
	case 6:
		ss.label = "binary"
		opts = append(opts, netscope.WithWireVersion(3))
	case 7:
		ss.label = "binary-filtered"
		ss.filter = []string{"p0.*"}
		opts = append(opts, netscope.WithWireVersion(3), netscope.WithSignals(ss.filter...))
	}
	ss.check = newSinkCheck(fmt.Sprintf("sub%d(%s)", i, ss.label), vio)
	sub, err := netscope.SubscribeToBatch(loop, addr, ss.onBatch, opts...)
	if err != nil {
		return nil, fmt.Errorf("subscriber %d (%s): %w", i, ss.label, err)
	}
	sub.OnControl(ss.onControl)
	sub.OnClose(func(error) { closed.Add(1) })
	ss.sub = sub
	return ss, nil
}

func (ss *soakSub) onBatch(batch []tuple.Tuple) {
	for _, t := range batch {
		if ss.noStream {
			ss.check.vio.addf("%s: control-plane-only subscription received %d %v %s",
				ss.check.name, t.Time, t.Value, t.Name)
			continue
		}
		ss.check.observe(t)
		if len(ss.filter) > 0 && !soakMatch(ss.filter, t.Name) {
			ss.check.vio.addf("%s: %q leaked through filter %v", ss.check.name, t.Name, ss.filter)
		}
		// The rate cap only governs the live stream: snapshot and
		// backfill are history and arrive undecimated.
		if ss.minGapMS > 0 && ss.acked && !ss.inSnap && !ss.inBack {
			if last, ok := ss.lastLive[t.Name]; ok && t.Time-last < ss.minGapMS {
				ss.check.vio.addf("%s: rate cap violated on %s: gap %dms < %dms",
					ss.check.name, t.Name, t.Time-last, ss.minGapMS)
			}
			ss.lastLive[t.Name] = t.Time
		}
	}
}

func (ss *soakSub) onControl(f tuple.ControlFrame) {
	switch f.Verb {
	case "gscope-hub":
		if f.Arg(0) == "2" {
			ss.acked = true
		}
	case "snapshot":
		ss.inSnap = true
	case "snapshot-end":
		ss.inSnap = false
	case "backfill":
		ss.inBack = true
	case "backfill-end":
		ss.inBack = false
	case "param", "params", "params-end", "param-ok":
		ss.paramFrames++
	case "error":
		ss.errorFrames++
	}
}

// soakPublish drives one publisher until stop: two signals, one sample
// each per tick, checksummed values. Odd publishers go through the
// probe-handle batch path, even ones through SendBatch.
func soakPublish(i int, c *netscope.Client, start time.Time, stop <-chan struct{}, chaos bool, vio *soakViolations) {
	names := []string{fmt.Sprintf("p%d.s0", i), fmt.Sprintf("p%d.s1", i)}
	var probes []*netscope.ClientProbe
	if i%2 == 1 {
		for _, n := range names {
			p, err := c.Probe(n)
			if err != nil {
				vio.addf("publisher %d: probe %q: %v", i, n, err)
				return
			}
			probes = append(probes, p)
		}
	}
	tick := time.NewTicker(soakTick)
	defer tick.Stop()
	var last int64
	batch := make([]tuple.Tuple, 0, len(names))
	for {
		select {
		case <-stop:
			// Drain the queue so the conservation checks can demand
			// exact delivery. Under chaos the link may be down; the
			// data lost with it is what the relaxed accounting allows.
			if err := c.FlushTimeout(3 * time.Second); err != nil && !chaos {
				vio.addf("publisher %d: flush: %v", i, err)
			}
			c.Close() //nolint:errcheck
			return
		case <-tick.C:
		}
		tms := time.Since(start).Milliseconds()
		if tms < last {
			tms = last // a signal's clock must never rewind
		}
		last = tms
		if probes != nil {
			at := time.Duration(tms) * time.Millisecond
			for j, p := range probes {
				c.SendProbeBatch(p, []tuple.Sample{{At: at, Value: soakValue(names[j], tms)}}) //nolint:errcheck // queued; drops counted
			}
		} else {
			batch = batch[:0]
			for _, n := range names {
				batch = append(batch, tuple.Tuple{Time: tms, Value: soakValue(n, tms), Name: n})
			}
			c.SendBatch(batch) //nolint:errcheck // queued; drops counted
		}
	}
}

// runSoak assembles the topology, runs it for cfg.soak, then tears it
// down through quiesce, accounting, replay diff, and leak check. Any
// invariant violation fails the run.
func runSoak(cfg config, out io.Writer) error {
	vio := &soakViolations{}
	fmt.Fprintln(out, "gscope soak experiment (publishers → relay tree → hub → subscribers + recorder)")
	fmt.Fprintf(out, "duration=%s publishers=%d subscribers=%d chaos=%v seed=%d\n\n",
		cfg.soak, cfg.soakPublishers, cfg.soakSubscribers, cfg.chaos, cfg.seed)

	loop := glib.NewLoop(glib.RealClock{}, glib.WithGranularity(soakTick))

	// Root hub: flight recorder, retained backfill, a parameter plane.
	root := netscope.NewServer(loop)
	rootCheck := newSinkCheck("root", vio)
	var captured []byte // the root stream in wire form, for the replay diff
	root.OnTuple = func(t tuple.Tuple) {
		rootCheck.observe(t)
		captured = tuple.AppendWire(captured, t)
	}
	recDir, err := os.MkdirTemp("", "gscope-soak")
	if err != nil {
		return err
	}
	defer os.RemoveAll(recDir)
	flight, err := root.Record(recDir, reclog.Options{
		SegmentBytes: 1 << 18, // small segments: the diff must survive rotation
		TotalBytes:   1 << 40,
		QueueLimit:   soakQueue,
		WireVersion:  3, // binary segments; the replay diff is encoding-blind
	})
	if err != nil {
		return err
	}
	root.SetBackfillRetention(4096)
	root.SetSubscriberQueueLimit(soakQueue)

	gain := 1.0 // touched only by param commands on the loop goroutine
	params := core.NewParamSet()
	if err := params.Add(&core.Param{Name: "gain", Get: func() float64 { return gain },
		Set: func(v float64) { gain = v }, Min: 0, Max: 100, Step: 1}); err != nil {
		return err
	}
	root.SetParams(params)

	rootPubAddr, err := root.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	rootSubAddr, err := root.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		return err
	}
	rootUDPAddr, err := root.ListenPublishersUDP("127.0.0.1:0")
	if err != nil {
		return err
	}

	// Two leaf relays, each re-publishing everything it hears into the
	// root's publisher port through a reconnecting client.
	const relays = 2
	relaySrvs := make([]*netscope.Server, relays)
	relayChecks := make([]*sinkCheck, relays)
	fwds := make([]*netscope.Client, relays)
	relayAddrs := make([]string, relays)
	for r := 0; r < relays; r++ {
		srv := netscope.NewServer(loop)
		check := newSinkCheck(fmt.Sprintf("relay%d", r), vio)
		fwd := netscope.DialReconnect(rootPubAddr.String())
		fwd.SetQueueLimit(soakQueue)
		srv.OnTuple = func(t tuple.Tuple) {
			check.observe(t)
			fwd.SendTuple(t) //nolint:errcheck // queued; drops counted
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		relaySrvs[r], relayChecks[r], fwds[r], relayAddrs[r] = srv, check, fwd, addr.String()
	}

	// The chaos layer sits on the publisher→relay hop only: the tree
	// above it must absorb flapping inputs without corrupting anything.
	pubAddrs := relayAddrs
	var proxies []*netsim.ChaosProxy
	if cfg.chaos {
		pubAddrs = make([]string, relays)
		for r := 0; r < relays; r++ {
			p, err := netsim.NewChaosProxy(relayAddrs[r], netsim.ChaosConfig{
				Delay:          2 * time.Millisecond,
				Jitter:         3 * time.Millisecond,
				KillEvery:      3 * time.Second,
				PartitionEvery: 2 * time.Second,
				PartitionFor:   300 * time.Millisecond,
				Seed:           cfg.seed + int64(r),
			})
			if err != nil {
				return err
			}
			proxies = append(proxies, p)
			pubAddrs[r] = p.Addr()
		}
	}

	runDone := make(chan struct{})
	go func() {
		loop.Run() //nolint:errcheck // real clock: only returns on Quit
		close(runDone)
	}()
	// onLoop runs fn on the loop goroutine and waits, for reading
	// loop-confined state. Only valid while the loop is running.
	onLoop := func(fn func()) {
		done := make(chan struct{})
		loop.Invoke(func() { fn(); close(done) })
		<-done
	}

	var closedSubs atomic.Int64
	subs := make([]*soakSub, cfg.soakSubscribers)
	for i := range subs {
		ss, err := newSoakSub(loop, rootSubAddr.String(), i, vio, &closedSubs)
		if err != nil {
			return err
		}
		subs[i] = ss
	}
	// Everyone through the handshake before traffic starts: the
	// conservation checks below assume the plain subscribers saw every
	// broadcast.
	if !testutil.Poll(10*time.Second, func() bool {
		for _, ss := range subs {
			if !ss.sub.Handshaken() {
				return false
			}
		}
		return true
	}) {
		vio.addf("subscribers never completed the handshake")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	pubs := make([]*netscope.Client, cfg.soakPublishers)
	start := time.Now()
	for i := 0; i < cfg.soakPublishers; i++ {
		c := netscope.DialReconnect(pubAddrs[i%relays])
		c.SetQueueLimit(soakQueue)
		if i%2 == 1 {
			c.SetWireVersion(3) // odd publishers exercise the binary wire
		}
		pubs[i] = c
		wg.Add(1)
		go func(i int, c *netscope.Client) {
			defer wg.Done()
			soakPublish(i, c, start, stop, cfg.chaos, vio)
		}(i, c)
	}

	// The UDP leg: datagram publishers straight into the root's lossy
	// lane, same tick cadence and checksummed values as the stream pubs.
	udpPubs := make([]*netscope.Client, udpLegPubs)
	for u := range udpPubs {
		c, err := netscope.DialUDP(rootUDPAddr.String())
		if err != nil {
			return err
		}
		udpPubs[u] = c
		// Even synthetic indexes keep signal names unique across the
		// fleet and select soakPublish's SendBatch path (the probe path
		// is transport-independent and already covered above).
		idx := 2*cfg.soakPublishers + 2*u
		wg.Add(1)
		go func(idx int, c *netscope.Client) {
			defer wg.Done()
			soakPublish(idx, c, start, stop, false, vio)
		}(idx, c)
	}

	// Param churn: the control-plane subscribers exercise get/set while
	// the stream runs; replies and change notifications are counted.
	var churnSent atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			for _, ss := range subs {
				if ss.label != "control" && ss.label != "no-stream" {
					continue
				}
				cmd := "param get gain"
				if n%2 == 0 {
					cmd = fmt.Sprintf("param set gain %d", n%101)
				}
				if ss.sub.Command(cmd) == nil {
					churnSent.Add(1)
				}
			}
		}
	}()

	timer := time.NewTimer(cfg.soak)
	<-timer.C
	close(stop)
	wg.Wait()

	// --- Quiesce and accounting --------------------------------------

	var pubSent, pubDropped, reconnects int64
	for _, c := range pubs {
		pubSent += c.Sent()
		pubDropped += c.Dropped()
		reconnects += c.Reconnects()
	}
	relaySeen := func() (n int64) {
		onLoop(func() {
			for _, ch := range relayChecks {
				n += ch.seen
			}
		})
		return n
	}
	// settle waits for a counter to stop moving — chaos breaks exact
	// accounting, so convergence is the best available quiesce signal.
	settle := func(read func() int64) {
		last := read()
		testutil.Poll(10*time.Second, func() bool {
			time.Sleep(200 * time.Millisecond)
			cur := read()
			stable := cur == last
			last = cur
			return stable
		})
	}
	if cfg.chaos {
		settle(relaySeen)
	} else if !testutil.Poll(10*time.Second, func() bool { return relaySeen() == pubSent }) {
		vio.addf("relays received %d of %d published tuples with no chaos in the way", relaySeen(), pubSent)
	}
	relayTotal := relaySeen()
	if relayTotal > pubSent {
		vio.addf("relays received %d tuples, more than the %d published", relayTotal, pubSent)
	}

	var fwdSent, fwdDropped int64
	for _, fwd := range fwds {
		if err := fwd.FlushTimeout(5 * time.Second); err != nil {
			vio.addf("relay forwarder flush: %v", err)
		}
		fwdSent += fwd.Sent()
		fwdDropped += fwd.Dropped()
	}
	if fwdDropped != 0 {
		vio.addf("relay forwarders dropped %d tuples despite the %d-tuple queue bound", fwdDropped, soakQueue)
	}
	// UDP leg accounting. soakPublish has flushed and closed each datagram
	// client; quiesce once every datagram they numbered is either released
	// into the root or explicitly declared lost (docs/WIRE.md §D4) —
	// conservation is the exit condition, nothing may go missing silently.
	var udpSentDgrams, udpSentTuples int64
	for _, c := range udpPubs {
		st, _ := c.UDPStats()
		udpSentDgrams += st.Datagrams
		udpSentTuples += st.Tuples
		if st.Oversized != 0 || st.WriteErrs != 0 {
			vio.addf("udp publisher: %d oversized batches, %d write errors on clean loopback", st.Oversized, st.WriteErrs)
		}
	}
	udpAgg := func() (rel, lost, rec, tuples int64) {
		for _, ss := range root.UDPSourceStats() {
			rel += ss.Released
			lost += ss.Lost
			rec += ss.Recovered
			tuples += ss.Tuples
		}
		return
	}
	if !testutil.Poll(10*time.Second, func() bool {
		rel, lost, _, _ := udpAgg()
		return rel+lost == udpSentDgrams
	}) {
		rel, lost, _, _ := udpAgg()
		vio.addf("udp leg never quiesced: released %d + lost %d != %d datagrams numbered", rel, lost, udpSentDgrams)
	}
	udpRel, udpLost, udpRec, udpTuples := udpAgg()
	if udpTuples > udpSentTuples {
		vio.addf("udp leg released %d tuples, more than the %d published", udpTuples, udpSentTuples)
	}
	if udpLost == 0 && udpTuples != udpSentTuples {
		vio.addf("udp leg lost no datagrams yet delivered %d of %d tuples", udpTuples, udpSentTuples)
	}

	rootSeen := func() (n int64) { onLoop(func() { n = rootCheck.seen }); return n }
	// The relay→root hop is never chaosed and the udp leg's losses are
	// explicitly accounted above: delivery into the root must be exact.
	if !testutil.Poll(10*time.Second, func() bool { return rootSeen() == fwdSent+udpTuples }) {
		vio.addf("root received %d tuples, want %d forwarded + %d udp-released", rootSeen(), fwdSent, udpTuples)
	}
	rootTotal := rootSeen()

	if !testutil.Poll(10*time.Second, func() (ok bool) {
		onLoop(func() { ok = root.SubscribersFlushed() })
		return ok
	}) {
		vio.addf("hub never drained its subscriber queues")
	}
	// Let every subscriber's receive counter go quiet before comparing.
	testutil.Poll(10*time.Second, func() bool {
		before := make([]int64, len(subs))
		for i, ss := range subs {
			before[i], _ = ss.sub.Stats()
		}
		time.Sleep(150 * time.Millisecond)
		for i, ss := range subs {
			if r, _ := ss.sub.Stats(); r != before[i] {
				return false
			}
		}
		return true
	})

	var relayParseErrs, rootParseErrs int64
	var hubSubscribes, hubPublished, hubDropped int64
	var paramFrames, errorFrames int64
	onLoop(func() {
		for _, srv := range relaySrvs {
			_, _, _, pe := srv.Stats()
			relayParseErrs += pe
		}
		_, _, _, rootParseErrs = root.Stats()
		hubSubscribes, _, hubPublished, hubDropped = root.SubscriberStats()
		for _, ss := range subs {
			paramFrames += ss.paramFrames
			errorFrames += ss.errorFrames
		}
	})
	if relayParseErrs != 0 && !cfg.chaos {
		vio.addf("relays hit %d parse errors on a clean network", relayParseErrs)
	}
	if rootParseErrs != 0 {
		vio.addf("root hit %d parse errors on relay-encoded input", rootParseErrs)
	}
	if hubDropped != 0 {
		vio.addf("hub dropped %d subscriber tuples despite the %d-tuple queue bound", hubDropped, soakQueue)
	}
	if errorFrames != 0 {
		vio.addf("subscribers received %d error frames from the control plane", errorFrames)
	}
	if churnSent.Load() > 0 && paramFrames == 0 {
		vio.addf("%d param commands sent but no param frames came back", churnSent.Load())
	}
	for _, ss := range subs {
		received, parseErrs := ss.sub.Stats()
		if parseErrs != 0 {
			vio.addf("%s: %d unparseable lines", ss.check.name, parseErrs)
		}
		// A plain subscriber connected before traffic must have seen the
		// entire broadcast stream — the subscriber path is never chaosed,
		// so this holds in both modes, and for the binary lane it proves
		// the shared frame stream decodes to the same tuples as text.
		if (ss.label == "plain-v1" || ss.label == "binary") && hubDropped == 0 && received != rootTotal {
			vio.addf("%s received %d of %d broadcast tuples", ss.check.name, received, rootTotal)
		}
	}

	// --- Teardown (the loop must outlive every watch) -----------------

	for _, fwd := range fwds {
		fwd.Close() //nolint:errcheck
	}
	onLoop(func() {
		for _, srv := range relaySrvs {
			srv.Close() //nolint:errcheck
		}
		root.Close() //nolint:errcheck
	})
	if !testutil.Poll(10*time.Second, func() bool {
		return closedSubs.Load() == int64(len(subs))
	}) {
		vio.addf("only %d of %d subscribers observed hub shutdown", closedSubs.Load(), len(subs))
	}
	for _, ss := range subs {
		ss.sub.Close() //nolint:errcheck
	}
	onLoop(func() {}) // drain anything teardown posted before quitting
	loop.Quit()
	<-runDone
	for _, p := range proxies {
		p.Close() //nolint:errcheck
	}

	// --- Record → replay → diff --------------------------------------

	flightAppended, flightDropped, flightWritten := flight.Stats()
	if flightDropped != 0 {
		vio.addf("flight recorder dropped %d tuples despite the %d-tuple queue bound", flightDropped, soakQueue)
	}
	if flightAppended != rootTotal {
		vio.addf("flight recorder appended %d of %d root tuples", flightAppended, rootTotal)
	}
	var replayCount, segments int64
	if rootTotal == 0 {
		vio.addf("no tuples reached the root hub")
	} else if flightDropped == 0 {
		sess, err := reclog.OpenSession(recDir)
		if err != nil {
			vio.addf("reopening the recording: %v", err)
		} else {
			segments = int64(len(sess.Segments()))
			replayCheck := newSinkCheck("replay", vio)
			rep := reclog.NewReplayer(sess)
			rep.SetSpeed(0)
			var replayed []byte
			if err := rep.Run(func(b []tuple.Tuple) error {
				for _, t := range b {
					replayCheck.observe(t)
				}
				replayed = tuple.AppendWireBatch(replayed, b)
				replayCount += int64(len(b))
				return nil
			}); err != nil {
				vio.addf("replaying the recording: %v", err)
			}
			if !bytes.Equal(captured, replayed) {
				vio.addf("record→replay diff: %d tuples in, %d out, wire bytes differ", rootTotal, replayCount)
			}
		}
	}

	if err := testutil.CheckLeaksWithin(10*time.Second, "main.main("); err != nil {
		vio.addf("goroutine leak after shutdown: %v", err)
	}

	// --- Report -------------------------------------------------------

	fmt.Fprintf(out, "  publishers         %d sent, %d dropped, %d reconnects\n", pubSent, pubDropped, reconnects)
	fmt.Fprintf(out, "  relays             %d received, %d parse errors, %d forward drops\n", relayTotal, relayParseErrs, fwdDropped)
	fmt.Fprintf(out, "  udp leg            %d datagrams (%d released, %d lost, %d recovered), %d of %d tuples delivered\n",
		udpSentDgrams, udpRel, udpLost, udpRec, udpTuples, udpSentTuples)
	fmt.Fprintf(out, "  root hub           %d received, %d published to %d subscriptions, %d hub drops\n",
		rootTotal, hubPublished, hubSubscribes, hubDropped)
	for _, ss := range subs {
		received, _ := ss.sub.Stats()
		fmt.Fprintf(out, "  %-18s %d tuples (snapshot %d, backfill %d)\n",
			ss.check.name, received, ss.sub.Snapshot(), ss.sub.Backfilled())
	}
	fmt.Fprintf(out, "  control plane      %d commands, %d param frames\n", churnSent.Load(), paramFrames)
	if cfg.chaos {
		var kills, parts int64
		for _, p := range proxies {
			kills += p.Killed()
			parts += p.Partitions()
		}
		fmt.Fprintf(out, "  chaos              %d connection kills, %d partitions\n", kills, parts)
	}
	fmt.Fprintf(out, "  recorder           %d appended, %d written, %d dropped\n", flightAppended, flightWritten, flightDropped)
	fmt.Fprintf(out, "  replay             %d tuples across %d segments\n", replayCount, segments)

	if n := vio.count(); n > 0 {
		fmt.Fprintf(out, "\n%d invariant violation(s):\n", n)
		for _, s := range vio.samples {
			fmt.Fprintf(out, "  %s\n", s)
		}
		return fmt.Errorf("soak failed with %d invariant violation(s)", n)
	}
	fmt.Fprintf(out, "\n  invariants         OK (0 violations)\n")
	return nil
}
