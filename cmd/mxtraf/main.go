// Command mxtraf runs the paper's network experiment (§2): elephants
// through an emulated congested router, with the scope signals the paper
// shows. It can regenerate Figures 4 and 5 as PNGs, record the signal
// tuples to a file for later replay with cmd/gscope, and stream live
// metrics to a gscoped server.
//
// Usage:
//
//	mxtraf -mode tcp -png fig4.png -record fig4.tup
//	mxtraf -mode ecn -png fig5.png
//	mxtraf -mode tcp -server 127.0.0.1:7420     # stream metrics to gscoped
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/figures"
	"repro/internal/mxtraf"
	"repro/internal/netscope"
	"repro/internal/tuple"
)

func main() {
	var (
		mode   = flag.String("mode", "tcp", "tcp (DropTail, Figure 4) or ecn (RED/ECN, Figure 5)")
		pngOut = flag.String("png", "", "write the final scope frame to this PNG")
		rec    = flag.String("record", "", "record the displayed signals to this tuple file")
		server = flag.String("server", "", "stream windowed metrics to a gscoped server at this address")
		half   = flag.Duration("half", 15*time.Second, "duration of each half (8 then 16 elephants)")
		period = flag.Duration("period", 50*time.Millisecond, "scope polling period")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	ecn := false
	switch *mode {
	case "tcp":
	case "ecn":
		ecn = true
	default:
		fmt.Fprintln(os.Stderr, "mxtraf: -mode must be tcp or ecn")
		os.Exit(2)
	}

	if *server != "" {
		if err := streamMetrics(*server, ecn, *half, *period, *seed); err != nil {
			fatal(err)
		}
		return
	}

	cfg := figures.DefaultTCPExperiment(ecn)
	cfg.HalfDuration = *half
	cfg.Period = *period
	cfg.Seed = *seed
	res, err := figures.RunTCPExperiment(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Summary("mxtraf " + *mode))
	if *pngOut != "" {
		if err := res.Frame.WritePNG(*pngOut); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *pngOut)
	}
	if *rec != "" {
		if err := recordRun(*rec, ecn, *half, *period, *seed); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *rec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mxtraf:", err)
	os.Exit(1)
}

// recordRun re-runs the experiment writing elephants/CWND tuples (§3.3).
func recordRun(path string, ecn bool, half, period time.Duration, seed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := tuple.NewWriter(f)
	w.Comment(fmt.Sprintf("mxtraf run ecn=%v half=%s period=%s seed=%d", ecn, half, period, seed)) //nolint:errcheck

	var cfg mxtraf.Config
	if ecn {
		cfg = mxtraf.ECNConfig()
	} else {
		cfg = mxtraf.DefaultConfig()
	}
	cfg.Seed = seed
	cfg.Net.Seed = seed
	gen := mxtraf.New(cfg)
	gen.SetElephants(8)
	for now := time.Duration(0); now < 2*half; now += period {
		if now >= half && gen.Elephants() < 16 {
			gen.SetElephants(16)
		}
		gen.Sim().RunUntil(now + period)
		at := (now + period).Milliseconds()
		w.Write(tuple.Tuple{Time: at, Value: float64(gen.Elephants()), Name: "elephants"}) //nolint:errcheck
		w.Write(tuple.Tuple{Time: at, Value: gen.ElephantCwnd(0), Name: "CWND"})           //nolint:errcheck
	}
	return w.Flush()
}

// streamMetrics runs the experiment in real time (scaled) and streams the
// windowed metrics to a gscoped server — the distributed-visualization
// deployment of §4.4. The signals are registered as probe handles once,
// before the loop: each poll then publishes through pre-validated interned
// names with no per-sample string work (the probe API v2 publish path).
func streamMetrics(addr string, ecn bool, half, period time.Duration, seed int64) error {
	client, err := netscope.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	probe := func(name string) *netscope.ClientProbe {
		p, perr := client.Probe(name)
		if perr != nil && err == nil {
			err = perr
		}
		return p
	}
	cwnd := probe("cwnd")
	cps := probe("cps")
	errps := probe("errps")
	tput := probe("tput")
	latency := probe("latency")
	elephants := probe("elephants")
	if err != nil {
		return err
	}

	var cfg mxtraf.Config
	if ecn {
		cfg = mxtraf.ECNConfig()
	} else {
		cfg = mxtraf.DefaultConfig()
	}
	cfg.Seed = seed
	gen := mxtraf.New(cfg)
	gen.SetElephants(8)
	gen.StartMice(20)

	start := time.Now()
	fmt.Fprintf(os.Stderr, "mxtraf: streaming to %s for %s\n", addr, 2*half)
	for now := time.Duration(0); now < 2*half; now += period {
		if now >= half && gen.Elephants() < 16 {
			gen.SetElephants(16)
		}
		gen.Sim().RunUntil(now + period)
		m := gen.Snapshot()
		if sleep := now + period - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		// Stamp with the shared wall clock (Unix epoch) so the server
		// can correlate data from multiple machines (§4.4; gscoped
		// rebases these onto its own timeline).
		at := time.Duration(time.Now().UnixNano())
		cwnd.Send(at, gen.ElephantCwnd(0))       //nolint:errcheck
		cps.Send(at, m.ConnsPerSec)              //nolint:errcheck
		errps.Send(at, m.ErrorsPerSec)           //nolint:errcheck
		tput.Send(at, m.ThroughputBps/1e6)       //nolint:errcheck
		latency.Send(at, m.LatencyMs)            //nolint:errcheck
		elephants.Send(at, float64(m.Elephants)) //nolint:errcheck
	}
	return client.Flush()
}
