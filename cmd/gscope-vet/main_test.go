package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vet"
)

// TestSuiteCleanOverRepo is the same gate CI's gscope-vet job applies,
// run as a test: the repo must be clean under every analyzer. A finding
// here means either new code broke an invariant or an intentional
// exception is missing its //gscope:allow.
func TestSuiteCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))

	prog, err := vet.Load(root, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, sum, err := prog.Run(analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		if !f.Suppressed {
			t.Errorf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	t.Logf("\n%s", sum.Format())
}

// TestAnalyzerRoster pins the suite composition: dropping an analyzer
// from the multichecker should not happen silently.
func TestAnalyzerRoster(t *testing.T) {
	want := []string{"hotpath", "guardedby", "stickyerr", "signalname", "watchleak"}
	if len(analyzers) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(analyzers), len(want))
	}
	for i, a := range analyzers {
		if a.Name != want[i] {
			t.Errorf("analyzers[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
