// Command gscope-vet is the repo's custom static-analysis suite: a
// multichecker running five analyzers that mechanically enforce the
// invariants the Gscope reproduction's documentation promises —
// allocation-free hot paths, lock discipline on shard state, sticky
// framing errors, valid signal names, and canceled event-loop watches.
//
// Usage:
//
//	gscope-vet [-json] [-v] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 1 when any unsuppressed diagnostic is found, 2 on usage or
// load errors. Intentional exceptions are suppressed in source with
//
//	//gscope:allow <analyzer> <reason>
//
// on (or directly above) the offending line; suppressed findings are
// counted and printed with -v, and stale allow comments — ones no
// diagnostic matches anymore — are errors, keeping the exception
// inventory honest. See docs/ANALYZERS.md for each analyzer's contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/vet"
	"repro/internal/vet/guardedby"
	"repro/internal/vet/hotpath"
	"repro/internal/vet/signalname"
	"repro/internal/vet/stickyerr"
	"repro/internal/vet/watchleak"
)

// analyzers is the suite, in the order diagnostics are summarized.
var analyzers = []*vet.Analyzer{
	hotpath.Analyzer,
	guardedby.Analyzer,
	stickyerr.Analyzer,
	signalname.Analyzer,
	watchleak.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	verbose := flag.Bool("v", false, "also print suppressed findings with their //gscope:allow reasons")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gscope-vet [-json] [-v] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gscope-vet:", err)
		return 2
	}
	prog, err := vet.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gscope-vet:", err)
		return 2
	}
	findings, sum, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gscope-vet:", err)
		return 2
	}

	failed := false
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "gscope-vet:", err)
			return 2
		}
		for _, f := range findings {
			if !f.Suppressed {
				failed = true
			}
		}
	} else {
		for _, f := range findings {
			switch {
			case !f.Suppressed:
				failed = true
				fmt.Printf("%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
			case *verbose:
				fmt.Printf("%s: %s: %s (allowed: %s)\n", f.Pos, f.Analyzer, f.Message, f.Reason)
			}
		}
		fmt.Print(sum.Format())
	}
	if failed {
		return 1
	}
	return 0
}
