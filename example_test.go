package gscope_test

import (
	"fmt"
	"os"
	"time"

	gscope "repro"
)

// Example mirrors the paper's Figure 6 program: attach an INTEGER signal
// backed by a word of memory to a scope, poll it every 50 ms, and read the
// displayed trace. A virtual clock makes the run deterministic.
func Example() {
	clock := gscope.NewVirtualClock(time.Unix(0, 0))
	loop := gscope.NewLoopGranularity(clock, 0)
	scope := gscope.New(loop, "demo", 200, 100)

	var elephants gscope.IntVar
	if _, err := scope.AddSignal(gscope.Sig{Name: "elephants", Source: &elephants, Max: 40}); err != nil {
		fmt.Println(err)
		return
	}
	if err := scope.SetPollingMode(50 * time.Millisecond); err != nil {
		fmt.Println(err)
		return
	}
	if err := scope.StartPolling(); err != nil {
		fmt.Println(err)
		return
	}

	elephants.Store(12)
	loop.Advance(100 * time.Millisecond) // two polls
	if v, ok := scope.Signal("elephants").Trace().Last(); ok {
		fmt.Println("elephants =", v)
	}
	// Output: elephants = 12
}

// ExampleRegistry shows the probe instrumentation shape: signal names are
// registered once, and the program's hot loop records through the returned
// handles — no per-sample hashing, string copies, or allocation. The same
// handles would also stream remotely if the registry were built with
// WithNetClient.
func ExampleRegistry() {
	clock := gscope.NewVirtualClock(time.Unix(0, 0))
	loop := gscope.NewLoopGranularity(clock, 0)
	scope := gscope.New(loop, "demo", 200, 100)
	if _, err := scope.AddSignal(gscope.Sig{Name: "latency-ms", Kind: gscope.KindBuffer}); err != nil {
		fmt.Println(err)
		return
	}

	reg := gscope.NewRegistry(gscope.WithScope(scope))
	latency := reg.MustProbe("latency-ms")

	// The time-sensitive hot loop: a few lines, a few nanoseconds.
	for i := 0; i < 5; i++ {
		latency.RecordAt(time.Duration(i+1)*10*time.Millisecond, float64(20+i))
	}
	reg.Flush() // publish staged samples before draining

	for _, t := range scope.Feed().Take(time.Second) {
		fmt.Println(t.String())
	}
	// Output:
	// 10 20 latency-ms
	// 20 21 latency-ms
	// 30 22 latency-ms
	// 40 23 latency-ms
	// 50 24 latency-ms
}

// ExampleScope_Probe registers a BUFFER signal and records it through the
// scope-bound probe handle, whose Record stamps samples with the scope's
// own clock.
func ExampleScope_Probe() {
	clock := gscope.NewVirtualClock(time.Unix(0, 0))
	loop := gscope.NewLoopGranularity(clock, 0)
	scope := gscope.New(loop, "demo", 200, 100)
	if _, err := scope.AddSignal(gscope.Sig{Name: "queue", Kind: gscope.KindBuffer}); err != nil {
		fmt.Println(err)
		return
	}
	probe, err := scope.Probe("queue")
	if err != nil {
		fmt.Println(err)
		return
	}

	clock.Set(time.Unix(0, 0).Add(25 * time.Millisecond))
	probe.Record(7) // stamped at the scope's elapsed 25ms
	probe.Flush()

	for _, t := range scope.Feed().Take(time.Second) {
		fmt.Println(t.String())
	}
	// Output:
	// 25 7 queue
}

// ExampleNewNetServer wires a publisher/subscriber pair through a fan-out
// hub over loopback TCP: the publisher streams tuples in, the subscriber
// receives the merged stream (connect-time snapshot plus live deltas) on
// the loop goroutine.
func ExampleNewNetServer() {
	loop := gscope.NewLoop(gscope.NewVirtualClock(time.Unix(0, 0)))
	srv := gscope.NewNetServer(loop)
	pubAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()

	var got []gscope.Tuple
	sub, err := gscope.SubscribeNet(loop, subAddr.String(), func(t gscope.Tuple) {
		got = append(got, t)
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer sub.Close()

	pub, err := gscope.DialNet(pubAddr.String())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer pub.Close()
	pub.Send(10*time.Millisecond, "cwnd", 42)   //nolint:errcheck
	pub.Send(20*time.Millisecond, "cwnd", 41.5) //nolint:errcheck
	if err := pub.Flush(); err != nil {
		fmt.Println(err)
		return
	}

	// Delivery is asynchronous: pump the loop until both tuples arrive
	// (callbacks run inside Iterate, on this goroutine).
	for len(got) < 2 {
		loop.Iterate()
		time.Sleep(time.Millisecond)
	}
	for _, t := range got {
		fmt.Println(t.String())
	}
	// Output:
	// 10 42 cwnd
	// 20 41.5 cwnd
}

// ExampleWithWireVersion upgrades both hops of a publisher→hub→viewer
// chain to the v3 binary framing (docs/WIRE.md): the publisher opts in
// with SetWireVersion, the subscriber negotiates wire=3 in its handshake.
// The tuples delivered to the callback are identical to a text run — only
// the bytes on the wire change — and either side talking to an older peer
// falls back to text automatically.
func ExampleWithWireVersion() {
	loop := gscope.NewLoop(gscope.NewVirtualClock(time.Unix(0, 0)))
	srv := gscope.NewNetServer(loop)
	pubAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()

	var got []gscope.Tuple
	sub, err := gscope.SubscribeNet(loop, subAddr.String(), func(t gscope.Tuple) {
		got = append(got, t)
	}, gscope.WithWireVersion(3))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer sub.Close()

	pub, err := gscope.DialNet(pubAddr.String())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer pub.Close()
	pub.SetWireVersion(3)                       // publish binary frames too
	pub.Send(10*time.Millisecond, "cwnd", 42)   //nolint:errcheck
	pub.Send(20*time.Millisecond, "cwnd", 41.5) //nolint:errcheck
	if err := pub.Flush(); err != nil {
		fmt.Println(err)
		return
	}

	for len(got) < 2 {
		loop.Iterate()
		time.Sleep(time.Millisecond)
	}
	for _, t := range got {
		fmt.Println(t.String())
	}
	// Output:
	// 10 42 cwnd
	// 20 41.5 cwnd
}

// ExampleOpenSession replays a flight-recorder session whose segments mix
// wire encodings — here one recorder run in text and one in v3 binary
// (docs/WIRE.md) into the same directory. The reader autodetects each
// segment's encoding, so replay is seamless.
func ExampleOpenSession() {
	dir, err := os.MkdirTemp("", "gscope-session")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	// Two recording runs into one session directory: first text, then —
	// say after an upgrade — binary.
	for _, opts := range []gscope.RecordOptions{{}, {WireVersion: 3}} {
		lg, err := gscope.OpenRecordLog(dir, opts)
		if err != nil {
			fmt.Println(err)
			return
		}
		base := int64(0)
		if opts.WireVersion == 3 {
			base = 100
		}
		lg.Append([]gscope.Tuple{
			{Time: base + 10, Value: 1, Name: "cps"},
			{Time: base + 20, Value: 2, Name: "cps"},
		})
		if err := lg.Close(); err != nil {
			fmt.Println(err)
			return
		}
	}

	sess, err := gscope.OpenSession(dir)
	if err != nil {
		fmt.Println(err)
		return
	}
	rep := gscope.NewReplayer(sess)
	rep.SetSpeed(0) // as fast as possible
	err = rep.Run(func(batch []gscope.Tuple) error {
		for _, t := range batch {
			fmt.Println(t.String())
		}
		return nil
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output:
	// 10 1 cps
	// 20 2 cps
	// 110 1 cps
	// 120 2 cps
}
