package reclog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tuple"
)

// Recording and replay of v3 binary segments (docs/WIRE.md): the
// record→replay byte-diff must hold whichever encoding the session was
// recorded with — text-only, binary-only, or a session mixing segments of
// both — because replay re-emits decoded tuples, not raw bytes.

// byteDiff re-encodes two tuple slices canonically and compares them —
// the same equivalence the soak harness's record→replay check uses.
func byteDiff(t *testing.T, want, got []tuple.Tuple) {
	t.Helper()
	a := tuple.AppendWireBatch(nil, want)
	b := tuple.AppendWireBatch(nil, got)
	if !bytes.Equal(a, b) {
		t.Fatalf("record→replay byte-diff failed: recorded %d tuples, replayed %d", len(want), len(got))
	}
}

// runStream generates the shape probe batches actually have — runs of one
// signal per batch, counter-like values — which is what the binary codec's
// run/delta/XOR layers are built for.
func runStream(n int) []tuple.Tuple {
	names := []string{"pkts", "bytes", "drops"}
	out := make([]tuple.Tuple, 0, n)
	for i := 0; len(out) < n; i++ {
		name := names[i%len(names)]
		for k := 0; k < 64 && len(out) < n; k++ {
			out = append(out, tuple.Tuple{
				Time:  int64(len(out)) * 2,
				Value: float64(1000*i + k),
				Name:  name,
			})
		}
	}
	return out
}

// TestBinaryRecordReplayRoundTrip: a binary session across many rotated
// segments replays byte-identically, and the segments really are binary.
func TestBinaryRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := runStream(5000)
	record(t, dir, Options{SegmentBytes: 4096, WireVersion: 3}, in, 64)

	byteDiff(t, in, replayAll(t, dir))

	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("# gscope-reclog 1 seq=1 wire=3\n")) {
		t.Fatalf("binary segment header = %q", data[:min(len(data), 40)])
	}
	if !bytes.Contains(data, []byte{tuple.FrameMarker, tuple.FrameDict}) {
		t.Fatal("binary segment holds no DICT frame")
	}

	// The compression claim, on disk: the same stream recorded as text
	// must be substantially larger.
	txtDir := t.TempDir()
	record(t, txtDir, Options{SegmentBytes: 4096}, in, 64)
	sizeOf := func(d string) int64 {
		entries, err := os.ReadDir(d)
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		for _, e := range entries {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			n += fi.Size()
		}
		return n
	}
	bin, txt := sizeOf(dir), sizeOf(txtDir)
	if bin*3 > txt {
		t.Fatalf("binary session %d bytes vs text %d: expected ≥3× reduction", bin, txt)
	}
}

// TestMixedSessionReplay: a session whose segments were recorded at
// different wire versions (a recorder restarted with new options) replays
// seamlessly — the reader autodetects per segment.
func TestMixedSessionReplay(t *testing.T) {
	dir := t.TempDir()
	in := stream(3000, 5)
	record(t, dir, Options{}, in[:1000], 50)
	record(t, dir, Options{WireVersion: 3}, in[1000:2000], 50)
	record(t, dir, Options{}, in[2000:], 50)

	byteDiff(t, in, replayAll(t, dir))

	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tuples() != int64(len(in)) {
		t.Fatalf("mixed session counts %d tuples, want %d", sess.Tuples(), len(in))
	}
}

// TestBinarySegmentsSelfContained: every binary segment restarts its
// dictionary, so a window replay that skips earlier segments still
// decodes. Retention (which deletes the oldest segments) depends on this.
func TestBinarySegmentsSelfContained(t *testing.T) {
	dir := t.TempDir()
	in := stream(5000, 3)
	record(t, dir, Options{SegmentBytes: 4096, WireVersion: 3}, in, 64)

	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := sess.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	// Every segment must decode standalone, not just in session order.
	for _, seg := range segs {
		data, err := os.ReadFile(filepath.Join(dir, segName(seg.Seq)))
		if err != nil {
			t.Fatal(err)
		}
		sr := tuple.NewStreamReader(bytes.NewReader(data))
		n := int64(0)
		for {
			_, rerr := sr.Read()
			if rerr != nil {
				break
			}
			n++
		}
		if n != seg.Tuples {
			t.Fatalf("segment %d decodes %d tuples standalone, index says %d", seg.Seq, n, seg.Tuples)
		}
	}
}

// TestBinaryTornTailReplayable: a crash mid-frame leaves a truncated
// binary tail; scan and replay must stop at the prefix that decodes, like
// a torn text line (WIRE.md §B7).
func TestBinaryTornTailReplayable(t *testing.T) {
	dir := t.TempDir()
	in := stream(200, 10)
	record(t, dir, Options{WireVersion: 3}, in, 200)

	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append a frame whose declared payload never arrives, then a few
	// payload bytes — the shape a crashed writer leaves behind.
	torn := append(data, tuple.FrameMarker, tuple.FrameData, 0x40, 1, 2, 3)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	byteDiff(t, in, replayAll(t, dir))
}

// TestOpenRejectsUnknownWireVersion: the recording side fails fast on a
// version it cannot write.
func TestOpenRejectsUnknownWireVersion(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{WireVersion: 7}); err == nil {
		t.Fatal("Open accepted wire version 7")
	}
	lg, err := Open(t.TempDir(), Options{WireVersion: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lg.opts.WireVersion != 0 {
		t.Fatalf("wire 2 should normalize to text, got %d", lg.opts.WireVersion)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
}
