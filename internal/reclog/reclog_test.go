package reclog

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/testutil"
	"repro/internal/tuple"
)

// The recorder promises its writer goroutine exits when Close drains;
// a leaked writer fails the whole package.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	testutil.WaitFor(t, "recorder condition", cond)
}

// record writes tuples through a Log in batches of batchSize and closes it.
// Unless the test configures one, the queue is sized so the drop-oldest
// bound cannot fire: these tests assert lossless round trips, and a burst
// of appends can outrun the writer's first segment open.
func record(t *testing.T, dir string, opts Options, tuples []tuple.Tuple, batchSize int) {
	t.Helper()
	if opts.QueueLimit == 0 {
		opts.QueueLimit = len(tuples) + 1
	}
	lg, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tuples); i += batchSize {
		end := i + batchSize
		if end > len(tuples) {
			end = len(tuples)
		}
		if !lg.Append(tuples[i:end]) {
			t.Fatalf("Append refused at %d: %v", i, lg.Err())
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayAll drains a session as fast as possible into one slice.
func replayAll(t *testing.T, dir string) []tuple.Tuple {
	t.Helper()
	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplayer(sess)
	rep.SetSpeed(0)
	var out []tuple.Tuple
	if err := rep.Run(func(b []tuple.Tuple) error {
		out = append(out, b...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// stream generates a deterministic multi-signal tuple stream.
func stream(n int, stepMS int64) []tuple.Tuple {
	names := []string{"cps", "errps", "tput"}
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{
			Time:  int64(i) * stepMS,
			Value: float64(i%97) + 0.5,
			Name:  names[i%len(names)],
		}
	}
	return out
}

// TestRecordReplayRoundTrip is the tentpole property: recording a session
// (across many rotated segments) and replaying it as fast as possible
// reproduces a byte-identical wire stream, modulo the '#' framing comments.
func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := stream(5000, 3)
	// Tiny segments force dozens of rotations mid-stream.
	record(t, dir, Options{SegmentBytes: 4096}, in, 64)

	got := replayAll(t, dir)
	want := tuple.AppendWireBatch(nil, in)
	have := tuple.AppendWireBatch(nil, got)
	if !bytes.Equal(want, have) {
		t.Fatalf("replay differs: recorded %d tuples, replayed %d", len(in), len(got))
	}

	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tuples() != int64(len(in)) {
		t.Fatalf("session counts %d tuples, want %d", sess.Tuples(), len(in))
	}
	if len(sess.Segments()) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(sess.Segments()))
	}
}

// TestRoundTripProperty fuzzes batch sizes, segment bounds and values: the
// replayed wire stream must always be byte-identical to the recorded one.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(2000)
		in := make([]tuple.Tuple, n)
		at := int64(0)
		for i := range in {
			at += int64(rng.Intn(20))
			in[i] = tuple.Tuple{Time: at, Value: rng.NormFloat64() * 1e3, Name: "sig"}
		}
		dir := t.TempDir()
		record(t, dir, Options{SegmentBytes: int64(512 + rng.Intn(8192))}, in, 1+rng.Intn(200))
		got := replayAll(t, dir)
		return bytes.Equal(tuple.AppendWireBatch(nil, in), tuple.AppendWireBatch(nil, got))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestSealFooterAndHeader checks the on-disk framing documented in the
// package comment: magic header, tuple lines, seal footer.
func TestSealFooterAndHeader(t *testing.T) {
	dir := t.TempDir()
	in := stream(10, 5)
	record(t, dir, Options{}, in, 10)
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if string(lines[0]) != "# gscope-reclog 1 seq=1" {
		t.Fatalf("header = %q", lines[0])
	}
	if string(lines[len(lines)-1]) != "# seal tuples=10 first=0 last=45" {
		t.Fatalf("footer = %q", lines[len(lines)-1])
	}
}

// TestSeekToTime checks the acceptance property: a windowed replay starts
// within one segment of the requested timestamp, skipping earlier segments
// without reading them, and per-tuple filtering makes the boundary exact.
func TestSeekToTime(t *testing.T) {
	dir := t.TempDir()
	in := stream(5000, 2) // stamps 0..9998 ms
	record(t, dir, Options{SegmentBytes: 4096}, in, 64)

	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.segs) < 4 {
		t.Fatalf("want several segments, got %d", len(sess.segs))
	}
	from, to := 4000*time.Millisecond, 6000*time.Millisecond
	rep := NewReplayer(sess)
	rep.SetSpeed(0)
	rep.SetWindow(from, to)
	var got []tuple.Tuple
	if err := rep.Run(func(b []tuple.Tuple) error {
		got = append(got, b...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rep.SkippedSegments() == 0 {
		t.Fatal("seek read every segment; the index was not used")
	}
	var want []tuple.Tuple
	for _, tu := range in {
		if tu.Time >= 4000 && tu.Time <= 6000 {
			want = append(want, tu)
		}
	}
	if !bytes.Equal(tuple.AppendWireBatch(nil, want), tuple.AppendWireBatch(nil, got)) {
		t.Fatalf("window replay: got %d tuples, want %d", len(got), len(want))
	}
}

// TestRetentionBoundsSession fills a session past its byte budget and
// checks old segments are deleted, the newest survive, and the session
// stays replayable.
func TestRetentionBoundsSession(t *testing.T) {
	dir := t.TempDir()
	in := stream(20000, 1)
	record(t, dir, Options{SegmentBytes: 4096, TotalBytes: 16384}, in, 128)

	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, s := range sess.Segments() {
		total += s.Bytes
	}
	if total > 16384+4096 { // budget plus at most one active-segment slack
		t.Fatalf("session holds %d bytes, budget 16384", total)
	}
	got := replayAll(t, dir)
	if len(got) == 0 {
		t.Fatal("retention emptied the session")
	}
	// The retained window is the newest suffix of the stream.
	tail := in[len(in)-len(got):]
	if !bytes.Equal(tuple.AppendWireBatch(nil, tail), tuple.AppendWireBatch(nil, got)) {
		t.Fatal("retained window is not the newest suffix")
	}
	first, last, ok := sess.Bounds()
	if !ok || last != in[len(in)-1].Time || first != tail[0].Time {
		t.Fatalf("bounds = %d..%d ok=%v", first, last, ok)
	}
}

// TestReopenContinuesSession reopens a recorded directory and appends more:
// replay sees both generations in order, and retention accounts for the
// pre-existing segments.
func TestReopenContinuesSession(t *testing.T) {
	dir := t.TempDir()
	gen1 := stream(500, 2)
	record(t, dir, Options{SegmentBytes: 2048}, gen1, 50)
	gen2 := make([]tuple.Tuple, 500)
	for i := range gen2 {
		gen2[i] = tuple.Tuple{Time: 1000 + int64(i)*2, Value: float64(i), Name: "cps"}
	}
	record(t, dir, Options{SegmentBytes: 2048}, gen2, 50)

	got := replayAll(t, dir)
	want := tuple.AppendWireBatch(nil, gen1)
	want = tuple.AppendWireBatch(want, gen2)
	if !bytes.Equal(want, tuple.AppendWireBatch(nil, got)) {
		t.Fatalf("reopened replay differs: %d tuples", len(got))
	}
}

// TestUnsealedActiveSegmentReplayable kills a session without Close (no
// seal footer, no index entry) and checks OpenSession scans it anyway.
func TestUnsealedActiveSegmentReplayable(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := stream(100, 5)
	if !lg.Append(in) {
		t.Fatal("append refused")
	}
	waitFor(t, lg.Drained)
	// Simulate a crash: flush what the OS has, but never seal. The bufio
	// layer is internal, so reach through the test seam of closing the
	// file via a fresh Open later; here we just flush by closing.
	lg.mu.Lock()
	lg.closed = true // stop the writer without sealing
	lg.mu.Unlock()
	lg.w.Flush() //nolint:errcheck // test reaches into the crashed writer
	lg.f.Close()

	got := replayAll(t, dir)
	if !bytes.Equal(tuple.AppendWireBatch(nil, in), tuple.AppendWireBatch(nil, got)) {
		t.Fatalf("crashed session replayed %d tuples, want %d", len(got), len(in))
	}

	// Unpark the writer goroutine left blocked on its kick channel by the
	// simulated crash; it sees closed, attempts the seal against the closed
	// file, and exits, keeping the suite leak-clean.
	select {
	case lg.kick <- struct{}{}:
	default:
	}
	<-lg.done
}

// TestQueueDropOldest wedges the writer (by pointing the log at a
// directory that exists but making the queue tiny and never letting the
// writer run ahead) and checks the bound drops oldest batches, counted.
func TestQueueDropOldest(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Stall the writer goroutine deterministically: grab the mutex so it
	// cannot take batches, then overfill the queue.
	lg.mu.Lock()
	for i := 0; i < 6; i++ {
		batch := []tuple.Tuple{{Time: int64(i), Value: float64(i), Name: "x"}}
		// Inline Append's queue logic under our lock: Append would
		// deadlock here, so emulate its caller-side path.
		for len(lg.queue) >= lg.opts.QueueLimit {
			lg.dropped.Add(int64(len(lg.queue[0])))
			lg.queue = lg.queue[1:]
		}
		lg.queue = append(lg.queue, batch)
		lg.appended.Add(1)
	}
	lg.mu.Unlock()
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	appended, dropped, written := lg.Stats()
	if appended != 6 || dropped != 4 || written != 2 {
		t.Fatalf("stats = %d/%d/%d, want 6/4/2", appended, dropped, written)
	}
	got := replayAll(t, dir)
	// The two newest batches survive the drop-oldest bound.
	if len(got) != 2 || got[0].Time != 4 || got[1].Time != 5 {
		t.Fatalf("survivors = %+v", got)
	}
}

// TestPacedReplayCadence replays a 100ms-spaced recording at ×2 through a
// fake sleeper and checks the pacing math asks for the recorded gaps
// divided by the speed.
func TestPacedReplayCadence(t *testing.T) {
	dir := t.TempDir()
	in := []tuple.Tuple{{Time: 0, Value: 1, Name: "s"}, {Time: 100, Value: 2, Name: "s"}, {Time: 200, Value: 3, Name: "s"}}
	record(t, dir, Options{}, in, 1)

	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplayer(sess)
	rep.SetSpeed(2)
	rep.SetBatch(1)
	var slept []time.Duration
	rep.sleep = func(d time.Duration) { slept = append(slept, d) }
	if err := rep.Run(func([]tuple.Tuple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if rep.Delivered() != 3 {
		t.Fatalf("delivered %d", rep.Delivered())
	}
	// Targets are anchored to the first tuple: 100ms and 200ms of recorded
	// time at ×2 land at +50ms and +100ms of wall time. The fake sleeper
	// never advances the wall clock, so the asked-for delays are the full
	// anchored offsets (minus the tiny real callback time).
	if len(slept) != 2 {
		t.Fatalf("slept %d times: %v", len(slept), slept)
	}
	for i, want := range []time.Duration{50 * time.Millisecond, 100 * time.Millisecond} {
		if d := slept[i]; d <= want-20*time.Millisecond || d > want {
			t.Fatalf("pace sleep %d = %v, want ~%v", i, d, want)
		}
	}
}

// TestAppendAfterClose checks the closed log refuses appends.
func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lg.Append(stream(1, 1))
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if lg.Append(stream(1, 1)) {
		t.Fatal("append accepted after Close")
	}
	if err := lg.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestOpenSessionEmptyDir rejects a directory with no segments.
func TestOpenSessionEmptyDir(t *testing.T) {
	if _, err := OpenSession(t.TempDir()); err == nil {
		t.Fatal("empty session opened")
	}
}

// TestIndexMatchesDisk checks the rewritten index agrees with a full scan
// (delete it, rescan, compare).
func TestIndexMatchesDisk(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, Options{SegmentBytes: 2048}, stream(2000, 2), 100)
	withIndex, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	scanned, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := withIndex.Segments(), scanned.Segments()
	if len(a) != len(b) {
		t.Fatalf("index %d segments, scan %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("segment %d: index %+v, scan %+v", i, a[i], b[i])
		}
	}
}

// TestAppendEmptyAfterClose: the documented contract is that Append
// reports false once the log is closed — including for empty batches.
func TestAppendEmptyAfterClose(t *testing.T) {
	lg, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !lg.Append(nil) {
		t.Fatal("empty append on a live log refused")
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if lg.Append(nil) {
		t.Fatal("empty append accepted after Close")
	}
}

// TestReplaySurfacesTransportErrors: a segment that cannot be read past a
// point for transport reasons (here: a line over the scanner limit) must
// fail the replay rather than silently truncate it. A torn final line, by
// contrast, stays benign.
func TestReplaySurfacesTransportErrors(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, Options{}, stream(10, 5), 10)
	// Corrupt the sealed segment mid-file with an unscannable line.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	huge := append([]byte("1 "), bytes.Repeat([]byte("9"), 2<<20)...)
	data = append(data, huge...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSession(dir); err == nil {
		t.Fatal("OpenSession scanned past a transport error silently")
	}
}

// TestFlushMakesLiveSessionReadable: Flush is the durability barrier the
// netscope hub's v2 backfill relies on — after it returns, a concurrent
// OpenSession on the still-recording directory sees every tuple appended
// before the call, even though the active segment is unsealed and the
// writer buffers.
func TestFlushMakesLiveSessionReadable(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100 // ~1KB: well under the bufio buffer, invisible without Flush
	batch := make([]tuple.Tuple, n)
	for i := range batch {
		batch[i] = tuple.Tuple{Time: int64(i), Value: float64(i), Name: "s"}
	}
	lg.Append(batch)
	if err := lg.Flush(); err != nil {
		t.Fatal(err)
	}
	sess, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tuples() != n {
		t.Fatalf("live session shows %d tuples after Flush, want %d", sess.Tuples(), n)
	}
	// The log keeps recording after the barrier, and Flush on a closed
	// log degrades to waiting for the seal.
	lg.Append(batch)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Flush(); err != nil {
		t.Fatal(err)
	}
	sess, err = OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tuples() != 2*n {
		t.Fatalf("sealed session shows %d tuples, want %d", sess.Tuples(), 2*n)
	}
}
