package reclog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/tuple"
)

// Log is the recording side of a session: an append-only segmented tuple
// log fed through a bounded queue.
//
// Append may be called from one goroutine (the event loop that delivers
// batches); all file I/O happens on the Log's own writer goroutine, so
// Append never blocks on the disk. The queue is bounded with a drop-oldest
// policy — a recorder behind a stalled disk loses its own oldest batches
// (counted) rather than ever stalling the loop, mirroring
// glib.WriteWatch's contract for slow sockets.
type Log struct {
	dir  string
	opts Options

	mu sync.Mutex
	//gscope:guardedby mu
	queue [][]tuple.Tuple
	//gscope:guardedby mu
	flushes []chan error
	//gscope:guardedby mu
	closed bool

	kick chan struct{}
	done chan struct{}

	appended atomic.Int64 // tuples accepted into the queue
	dropped  atomic.Int64 // tuples lost to the queue bound
	written  atomic.Int64 // tuples written to the active or sealed segments
	retired  atomic.Int64 // segments deleted by retention
	failed   atomic.Bool
	errv     atomic.Value // error

	// Writer-goroutine state.
	f         *os.File
	w         *bufio.Writer
	seq       int64
	segBytes  int64
	segFirst  int64
	segLast   int64
	segTuples int64
	encBuf    []byte
	benc      *tuple.BinaryEncoder // v3 segment encoder; nil for text sessions
	sealed    []SegmentInfo        // oldest first; excludes the active segment
}

// Open creates (or reopens) a session directory for recording and starts
// the writer goroutine. Reopening an existing session never appends to old
// segments: recording resumes in a fresh segment after the highest existing
// sequence number, and existing segments count toward the retention budget.
func Open(dir string, opts Options) (*Log, error) {
	switch opts.WireVersion {
	case 0, 1, 2, 3:
	default:
		return nil, fmt.Errorf("reclog: unsupported wire version %d", opts.WireVersion)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("reclog: %w", err)
	}
	existing, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:    dir,
		opts:   opts.withDefaults(),
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		sealed: existing,
	}
	for _, s := range existing {
		if s.Seq > l.seq {
			l.seq = s.Seq
		}
	}
	go l.writer()
	return l, nil
}

// Dir returns the session directory.
func (l *Log) Dir() string { return l.dir }

// Append enqueues one batch for recording and returns immediately; the
// batch is copied, so the caller may reuse it. This is the whole loop-side
// cost of recording: one copy and one queue append per delivered batch,
// regardless of batch size. When the queue is full the oldest queued batch
// is dropped and counted. Append reports false once the log is closed or
// its writer has failed.
//
//gscope:hotpath
func (l *Log) Append(batch []tuple.Tuple) bool {
	if l.failed.Load() {
		return false
	}
	if len(batch) == 0 {
		l.mu.Lock()
		closed := l.closed
		l.mu.Unlock()
		return !closed
	}
	cp := make([]tuple.Tuple, len(batch)) //gscope:allow hotpath the batch copy is the documented loop-side cost of recording
	copy(cp, batch)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	for len(l.queue) >= l.opts.QueueLimit {
		l.dropped.Add(int64(len(l.queue[0])))
		l.queue = l.queue[1:]
	}
	l.queue = append(l.queue, cp)
	l.appended.Add(int64(len(cp)))
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return true
}

// Stats returns lifetime tuple counters: accepted by Append, lost to the
// queue bound, and written to segment files.
func (l *Log) Stats() (appended, dropped, written int64) {
	return l.appended.Load(), l.dropped.Load(), l.written.Load()
}

// Retired returns the number of segments deleted by the retention bound.
func (l *Log) Retired() int64 { return l.retired.Load() }

// Drained reports whether every accepted tuple has been written (or
// dropped) — the barrier tests use before reopening the session.
func (l *Log) Drained() bool {
	l.mu.Lock()
	queued := len(l.queue)
	l.mu.Unlock()
	return queued == 0 && l.appended.Load() == l.written.Load()+l.dropped.Load()
}

// Flush is a durability barrier for readers of a live session: it returns
// once every tuple appended before the call has been written through to
// the active segment file (or dropped by the queue bound) and the file's
// buffered bytes pushed to the OS, so OpenSession on the same directory
// sees them. The netscope hub uses it before serving v2 backfill from an
// attached, still-recording log. On a closed (or failed) log it waits for
// the writer to finish sealing and returns its error.
func (l *Log) Flush() error {
	ack := make(chan error, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.Err()
	}
	l.flushes = append(l.flushes, ack)
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return <-ack
}

// Err returns the I/O error that stopped the writer, if any.
func (l *Log) Err() error {
	if err, ok := l.errv.Load().(error); ok {
		return err
	}
	return nil
}

// Close drains the queue, seals the active segment and stops the writer.
// It returns the first I/O error the writer encountered.
func (l *Log) Close() error {
	l.mu.Lock()
	already := l.closed
	l.closed = true
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	if !already {
		<-l.done
	}
	return l.Err()
}

// writer is the background goroutine: it drains the queue, appends to the
// active segment, rotates and retires segments.
func (l *Log) writer() {
	defer close(l.done)
	for {
		l.mu.Lock()
		batches := l.queue
		l.queue = nil
		flushes := l.flushes
		l.flushes = nil
		closed := l.closed
		l.mu.Unlock()

		var werr error
		for _, b := range batches {
			if werr = l.writeBatch(b); werr != nil {
				break
			}
		}
		if werr == nil && len(flushes) > 0 && l.w != nil {
			if ferr := l.w.Flush(); ferr != nil {
				werr = fmt.Errorf("reclog: flush %s: %w", segName(l.seq), ferr)
			}
		}
		for _, ack := range flushes {
			ack <- werr
		}
		if werr != nil {
			l.fail(werr)
			return
		}
		if closed {
			l.mu.Lock()
			empty := len(l.queue) == 0
			l.mu.Unlock()
			if empty {
				if err := l.seal(); err != nil {
					l.fail(err)
				}
				return
			}
			continue
		}
		if len(batches) > 0 {
			continue
		}
		<-l.kick
	}
}

// fail records the terminal error and counts everything still queued as
// dropped so Drained (and its waiters) converge.
func (l *Log) fail(err error) {
	l.errv.Store(err)
	l.failed.Store(true)
	l.mu.Lock()
	l.closed = true
	for _, b := range l.queue {
		l.dropped.Add(int64(len(b)))
	}
	l.queue = nil
	flushes := l.flushes
	l.flushes = nil
	l.mu.Unlock()
	for _, ack := range flushes {
		ack <- err
	}
}

// writeBatch appends one batch to the active segment, opening and rotating
// segments as needed. Runs on the writer goroutine.
//
//gscope:hotpath
func (l *Log) writeBatch(batch []tuple.Tuple) error {
	if l.w == nil {
		if err := l.openSegment(); err != nil { //gscope:allow hotpath segment rotation is once per SegmentBytes of traffic
			return err
		}
	}
	if l.opts.WireVersion == 3 {
		l.encBuf = l.benc.AppendBatch(l.encBuf[:0], batch)
	} else {
		l.encBuf = tuple.AppendWireBatch(l.encBuf[:0], batch)
	}
	n, err := l.w.Write(l.encBuf) //gscope:allow hotpath buffered segment write on the log's own goroutine, off the loop
	l.segBytes += int64(n)
	if err != nil {
		return fmt.Errorf("reclog: %s: %w", segName(l.seq), err) //gscope:allow hotpath error construction happens only when the disk write fails
	}
	for _, t := range batch {
		if l.segTuples == 0 || t.Time < l.segFirst {
			l.segFirst = t.Time
		}
		if l.segTuples == 0 || t.Time > l.segLast {
			l.segLast = t.Time
		}
		l.segTuples++
	}
	l.written.Add(int64(len(batch)))
	if l.segBytes >= l.opts.SegmentBytes ||
		l.segLast-l.segFirst >= l.opts.SegmentSpan.Milliseconds() {
		return l.seal() //gscope:allow hotpath segment rotation is once per SegmentBytes of traffic
	}
	return nil
}

// openSegment starts the next segment file.
func (l *Log) openSegment() error {
	l.seq++
	path := filepath.Join(l.dir, segName(l.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("reclog: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segBytes = 0
	l.segFirst, l.segLast, l.segTuples = 0, 0, 0
	header := "# %s %d seq=%d\n"
	args := []any{logMagic, formatVersion, l.seq}
	if l.opts.WireVersion == 3 {
		// Each binary segment restarts the dictionary: segments must stay
		// independently readable after their predecessors are retired.
		if l.benc == nil {
			l.benc = tuple.NewBinaryEncoder()
		} else {
			l.benc.Reset()
		}
		header = "# %s %d seq=%d wire=3\n"
	}
	n, err := fmt.Fprintf(l.w, header, args...)
	l.segBytes += int64(n)
	return err
}

// seal finishes the active segment: footer, flush, close, index entry,
// retention. A log with no active segment seals to a no-op.
func (l *Log) seal() error {
	if l.w == nil {
		return nil
	}
	n, err := fmt.Fprintf(l.w, "# seal tuples=%d first=%d last=%d\n",
		l.segTuples, l.segFirst, l.segLast)
	l.segBytes += int64(n)
	if err == nil {
		err = l.w.Flush()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("reclog: seal %s: %w", segName(l.seq), err)
	}
	l.sealed = append(l.sealed, SegmentInfo{
		Seq:    l.seq,
		First:  l.segFirst,
		Last:   l.segLast,
		Bytes:  l.segBytes,
		Tuples: l.segTuples,
	})
	l.f, l.w = nil, nil
	if err := l.retire(); err != nil {
		return err
	}
	return writeIndex(l.dir, l.sealed)
}

// retire deletes the oldest sealed segments until the session fits the
// retention budget. The newest sealed segment is always kept, so retention
// can never empty a session.
func (l *Log) retire() error {
	total := int64(0)
	for _, s := range l.sealed {
		total += s.Bytes
	}
	for len(l.sealed) > 1 && total > l.opts.TotalBytes {
		old := l.sealed[0]
		if err := os.Remove(filepath.Join(l.dir, segName(old.Seq))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("reclog: retire: %w", err)
		}
		total -= old.Bytes
		l.sealed = append(l.sealed[:0], l.sealed[1:]...)
		l.retired.Add(1)
	}
	return nil
}

// writeIndex atomically rewrites the session index from the sealed-segment
// list, recomputing the concatenated byte offsets.
func writeIndex(dir string, segs []SegmentInfo) error {
	tmp := filepath.Join(dir, indexName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("reclog: index: %w", err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# %s %d\n", indexMagic, formatVersion)
	off := int64(0)
	for _, s := range segs {
		fmt.Fprintf(w, "%d %d %d %d %d %d\n", s.Seq, s.First, s.Last, off, s.Bytes, s.Tuples)
		off += s.Bytes
	}
	err = w.Flush()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, indexName))
	}
	if err != nil {
		return fmt.Errorf("reclog: index: %w", err)
	}
	return nil
}

// scanDir builds the segment list for dir, trusting index entries whose
// size matches the file on disk and scanning everything else. Offsets are
// recomputed over the surviving set, oldest first.
func scanDir(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reclog: %w", err)
	}
	indexed := readIndex(dir)
	var segs []SegmentInfo
	for _, e := range entries {
		seq, ok := segSeq(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("reclog: %w", err)
		}
		if s, ok := indexed[seq]; ok && s.Bytes == fi.Size() {
			segs = append(segs, s)
			continue
		}
		s, err := scanSegment(filepath.Join(dir, e.Name()), seq, fi.Size())
		if err != nil {
			return nil, err
		}
		segs = append(segs, s)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	off := int64(0)
	for i := range segs {
		segs[i].Offset = off
		off += segs[i].Bytes
	}
	return segs, nil
}

// readIndex parses the index file into a by-sequence map; a missing or
// corrupt index yields an empty map and the segments are scanned instead.
func readIndex(dir string) map[int64]SegmentInfo {
	out := make(map[int64]SegmentInfo)
	f, err := os.Open(filepath.Join(dir, indexName))
	if err != nil {
		return out
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if tuple.IsComment(line) {
			continue
		}
		var s SegmentInfo
		if _, err := fmt.Sscanf(line, "%d %d %d %d %d %d",
			&s.Seq, &s.First, &s.Last, &s.Offset, &s.Bytes, &s.Tuples); err != nil {
			continue
		}
		out[s.Seq] = s
	}
	return out
}

// scanSegment derives an index entry by reading a segment file — the
// fallback for active or crash-orphaned segments the index does not cover.
func scanSegment(path string, seq, size int64) (SegmentInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return SegmentInfo{}, fmt.Errorf("reclog: %w", err)
	}
	defer f.Close()
	s := SegmentInfo{Seq: seq, Bytes: size}
	// The mixed-stream reader handles both segment encodings — §3.3 text
	// lines and v3 binary frames (docs/WIRE.md) — with no mode switch.
	r := tuple.NewStreamReader(f)
	for {
		t, err := r.Read()
		if err == io.EOF || errors.Is(err, tuple.ErrBadLine) || errors.Is(err, tuple.ErrBadFrame) {
			break // end of segment, or a torn tail from a crash: index what parsed
		}
		if err != nil {
			return SegmentInfo{}, fmt.Errorf("reclog: scan %s: %w", path, err)
		}
		if s.Tuples == 0 || t.Time < s.First {
			s.First = t.Time
		}
		if s.Tuples == 0 || t.Time > s.Last {
			s.Last = t.Time
		}
		s.Tuples++
	}
	return s, nil
}
