// Package reclog is gscope's flight recorder: a segmented on-disk log of
// tuple streams that turns every live session into a replayable dataset.
// The paper's scope (§3.3) can record what it displays to a flat file;
// reclog generalizes that into a durable, bounded record/replay layer for
// the whole merged stream a netscope hub carries — the post-mortem
// workload: record in production, replay later at any speed, seek to the
// interesting moment.
//
// # On-disk format
//
// A recorded session is a directory of append-only segment files plus a
// small index:
//
//	session/
//	  seg-00000001.tuples
//	  seg-00000002.tuples
//	  ...
//	  reclog.index
//
// Each segment is a valid §3.3 tuple stream (package repro/internal/tuple):
// a '#' comment header, wire-format tuple lines, and a '#' seal footer, so
// any tuple.Reader — or a text editor — can read a segment directly:
//
//	# gscope-reclog 1 seq=3
//	1500 42.5 CWND
//	1550 41 CWND
//	# seal tuples=2 first=1500 last=1550
//
// With [Options].WireVersion 3 the recorder writes its tuple payload as
// the binary framing specified in docs/WIRE.md instead of text lines; the
// header gains a wire=3 marker and each segment restarts the signal
// dictionary, so every segment stays independently decodable:
//
//	# gscope-reclog 1 seq=3 wire=3
//	<binary frames>
//	# seal tuples=2 first=1500 last=1550
//
// Replay autodetects the encoding per segment (the 0xF5 frame marker can
// never open a text line), so one session may freely mix text and binary
// segments — a recorder restarted with different options keeps appending
// to the same directory.
//
// The active segment is sealed and a new one started when it exceeds the
// configured byte size or tuple-time span ([Options]). Sealed segments are
// never modified; bounded retention deletes the oldest sealed segments once
// the session exceeds its total byte budget, so a recorder left running
// holds a sliding window of the stream.
//
// reclog.index holds one line per segment — sequence number, first/last
// tuple timestamp, byte offset in the concatenated session stream, size and
// tuple count — and is rewritten atomically on every seal. It is an
// optimization, not a source of truth: [OpenSession] verifies each entry
// against the file on disk and falls back to scanning any segment the index
// does not cover (the active segment of a live or crashed recorder), so a
// session is always replayable.
//
// # Recording
//
// [Log] is the writer: Append enqueues one copied batch on a bounded
// drop-oldest queue (the same discipline as glib.WriteWatch) and returns
// immediately; a background goroutine encodes batches with
// tuple.AppendWireBatch and performs the blocking file writes, rotation and
// retention. A stalled disk can therefore only drop recorded batches —
// counted in [Log.Stats] — never block the event loop that feeds it.
// netscope's Server.Record taps its delivery pipeline into a Log, so
// recording a fan-out hub costs one queue append per delivered batch.
//
// # Replaying
//
// [OpenSession] indexes a recorded directory; [Replayer] streams it back in
// batches, as fast as possible or paced at ×N of the recorded timeline,
// optionally windowed to [from, to] — the segment index makes seeking to a
// timestamp skip whole segments without reading them. Replayed batches feed
// netscope.Client.SendBatch or Server.InjectBatch, so a recorded session
// drives live viewers exactly like the original publishers did.
package reclog

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Format constants. The magic lines are '#' comments in the §3.3 tuple
// grammar, so segment files remain plain tuple streams.
const (
	// logMagic opens every segment: "# gscope-reclog 1 seq=N".
	logMagic = "gscope-reclog"
	// indexMagic opens the index file: "# gscope-reclog-index 1".
	indexMagic = "gscope-reclog-index"
	// formatVersion is the on-disk format revision.
	formatVersion = 1

	// segPrefix/segSuffix frame segment file names: seg-00000001.tuples.
	segPrefix = "seg-"
	segSuffix = ".tuples"
	// indexName is the session index file.
	indexName = "reclog.index"
)

// Defaults applied by Options.withDefaults for zero fields.
const (
	// DefaultSegmentBytes rotates segments at 4 MiB — large enough that
	// header/footer overhead vanishes, small enough that seek-to-time and
	// retention work at fine granularity.
	DefaultSegmentBytes = 4 << 20
	// DefaultSegmentSpan rotates segments once they cover a minute of
	// tuple time, bounding how stale the index can be for slow streams.
	DefaultSegmentSpan = time.Minute
	// DefaultTotalBytes bounds a session at 256 MiB before the oldest
	// segments are retired.
	DefaultTotalBytes = 256 << 20
	// DefaultQueueLimit bounds the append queue in batches.
	DefaultQueueLimit = 256
)

// Options configure a Log. The zero value selects every default.
type Options struct {
	// SegmentBytes seals the active segment once it reaches this size.
	// Non-positive selects DefaultSegmentBytes.
	SegmentBytes int64
	// SegmentSpan seals the active segment once its tuples cover this
	// much recorded time. Non-positive selects DefaultSegmentSpan.
	SegmentSpan time.Duration
	// TotalBytes bounds the whole session: once sealed segments exceed
	// it, the oldest are deleted. Non-positive selects DefaultTotalBytes.
	TotalBytes int64
	// QueueLimit bounds the append queue in batches (drop-oldest beyond
	// it). Non-positive selects DefaultQueueLimit.
	QueueLimit int
	// WireVersion selects the segment encoding: 0 (or 1, 2) records the
	// §3.3 text lines, 3 records v3 binary frames (docs/WIRE.md), each
	// segment a self-contained stream with its own dictionary so sealed
	// segments stay independently readable, retirable and seekable. Any
	// other value is rejected by Open. Replay autodetects per segment, so
	// a session may mix segments recorded at different versions.
	WireVersion int
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SegmentSpan <= 0 {
		o.SegmentSpan = DefaultSegmentSpan
	}
	if o.TotalBytes <= 0 {
		o.TotalBytes = DefaultTotalBytes
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = DefaultQueueLimit
	}
	if o.WireVersion == 1 || o.WireVersion == 2 {
		o.WireVersion = 0 // all pre-3 versions record identical text lines
	}
	return o
}

// SegmentInfo is one index entry: where a segment's tuples sit on the
// session's timeline and in its concatenated byte stream.
type SegmentInfo struct {
	// Seq is the segment sequence number (monotonic across the session).
	Seq int64
	// First and Last are the oldest and newest tuple timestamps (ms) in
	// the segment; with a non-monotonic source these are running min/max,
	// so [First, Last] always covers every tuple.
	First, Last int64
	// Offset is the byte offset of this segment's first byte in the
	// concatenated session stream; Bytes is the segment file size.
	Offset, Bytes int64
	// Tuples is the number of tuple lines in the segment.
	Tuples int64
}

// segName formats a segment file name.
func segName(seq int64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// segSeq parses a segment file name, reporting whether it is one.
func segSeq(name string) (int64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseInt(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil || seq <= 0 {
		return 0, false
	}
	return seq, true
}
