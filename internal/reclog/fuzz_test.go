package reclog

// Structured fuzzing over the on-disk surface: generated session
// directories — well-formed, torn, byte-flipped, and hostile-indexed
// segment files — through OpenSession/Replayer, and the full
// record→rotate→replay path under generated batch splits. The recovery
// contract under test: opening never panics, replay is deterministic,
// and an uncorrupted recording replays byte-identical to what was
// appended.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fuzzgen"
	"repro/internal/tuple"
)

// fuzzReplay collects a full-session replay (unpaced).
func fuzzReplay(t *testing.T, dir string) (*Session, []tuple.Tuple) {
	t.Helper()
	sess, err := OpenSession(dir)
	if err != nil {
		return nil, nil
	}
	r := NewReplayer(sess)
	r.SetSpeed(0)
	var got []tuple.Tuple
	if err := r.Run(func(batch []tuple.Tuple) error {
		got = append(got, batch...)
		return nil
	}); err != nil {
		// A read error mid-replay is a legitimate outcome for a corrupt
		// session; the tuples delivered before it still count for the
		// determinism check.
		return sess, got
	}
	return sess, got
}

// FuzzSessionScan: a session directory assembled from generated segment
// files — some corrupted the ways crashes and hostile edits corrupt
// them, optionally with an index that may lie — must open and replay
// without panicking, deterministically, honoring replay windows; and
// when nothing was corrupted and no forged index planted, the replayed
// count must match the scan's accounting exactly.
func FuzzSessionScan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("assemble a session with a couple of segments"))
	f.Add(bytes.Repeat([]byte{0x21, 0xd4, 0x09, 0x7c}, 80))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		dir := t.TempDir()

		var honest []fuzzgen.IndexEntry
		clean := true
		seq, off := int64(1+src.Intn(3)), int64(0)
		nseg := 1 + src.Intn(3)
		for i := 0; i < nseg; i++ {
			ts := src.Tuples(64, true)
			seg := fuzzgen.SegmentFile(seq, ts)
			if src.Intn(2) == 0 {
				corrupted := src.CorruptSegment(seg)
				if !bytes.Equal(corrupted, seg) {
					clean = false
				}
				seg = corrupted
			}
			if err := os.WriteFile(filepath.Join(dir, segName(seq)), seg, 0o644); err != nil {
				t.Fatal(err)
			}
			info, err := scanSegment(filepath.Join(dir, segName(seq)), seq, int64(len(seg)))
			if err == nil {
				honest = append(honest, fuzzgen.IndexEntry{Seq: info.Seq, First: info.First,
					Last: info.Last, Offset: off, Bytes: info.Bytes, Tuples: info.Tuples})
			} else {
				clean = false
			}
			off += int64(len(seg))
			seq += int64(1 + src.Intn(2)) // occasional retirement gap
		}
		switch src.Intn(3) {
		case 0: // honest index, as a surviving writeIndex would leave it
			if err := os.WriteFile(filepath.Join(dir, indexName), fuzzgen.IndexFile(honest), 0o644); err != nil {
				t.Fatal(err)
			}
		case 1: // forged index: arbitrary claims, sizes that may match
			forged := make([]fuzzgen.IndexEntry, len(honest))
			for i, e := range honest {
				forged[i] = fuzzgen.IndexEntry{Seq: e.Seq, First: src.Int63n(1 << 41),
					Last: src.Int63n(1 << 41), Offset: src.Int63n(1 << 20),
					Bytes: e.Bytes + src.Int63n(3) - 1, Tuples: src.Int63n(1000)}
			}
			if err := os.WriteFile(filepath.Join(dir, indexName), fuzzgen.IndexFile(forged), 0o644); err != nil {
				t.Fatal(err)
			}
			clean = false
		}

		sess, got := fuzzReplay(t, dir)
		if sess == nil {
			return // corrupt enough that the session does not open: fine
		}
		// Replay is deterministic: a second pass over the same directory
		// yields the identical stream.
		_, again := fuzzReplay(t, dir)
		if len(got) != len(again) {
			t.Fatalf("replay not deterministic: %d then %d tuples", len(got), len(again))
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("replay not deterministic at %d: %+v vs %+v", i, got[i], again[i])
			}
		}
		// With no corruption and no forged index, scan accounting and
		// replay must agree tuple-for-tuple.
		if clean && int64(len(got)) != sess.Tuples() {
			t.Fatalf("clean session: scan counted %d tuples, replay delivered %d", sess.Tuples(), len(got))
		}

		// A windowed replay never delivers outside its window, whatever
		// the (possibly forged) index claimed about segment bounds. The
		// upper bound must stay positive: SetWindow documents to<=0 as
		// "no upper bound" (the first fuzz run caught this harness
		// assuming otherwise).
		from := time.Duration(src.Int63n(1<<40)) * time.Millisecond
		to := from + time.Duration(1+src.Int63n(1<<40))*time.Millisecond
		r := NewReplayer(sess)
		r.SetSpeed(0)
		r.SetWindow(from, to)
		_ = r.Run(func(batch []tuple.Tuple) error {
			for _, tu := range batch {
				if tu.Time < from.Milliseconds() || tu.Time > to.Milliseconds() {
					t.Fatalf("windowed replay leaked %+v outside [%d, %d]ms",
						tu, from.Milliseconds(), to.Milliseconds())
				}
			}
			return nil
		})
	})
}

// FuzzRecordReplayRoundTrip: whatever batch splits and rotation
// pressure a recording ran under, replaying it yields the appended
// stream byte-for-byte (TotalBytes kept high enough that retirement
// never discards data, QueueLimit high enough that nothing drops).
func FuzzRecordReplayRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("record these tuples across several rotated segments"))
	f.Add(bytes.Repeat([]byte{0x5a, 0x1f, 0x33, 0x90, 0x02}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		ts := src.Tuples(400, src.Bool())
		opts := Options{
			SegmentBytes: int64(256 + src.Intn(4096)), // force rotation
			SegmentSpan:  time.Duration(1+src.Intn(120)) * time.Second,
			TotalBytes:   1 << 40,
			QueueLimit:   1 << 16,
		}
		dir := t.TempDir()
		l, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(ts); {
			n := 1 + src.Intn(64)
			if i+n > len(ts) {
				n = len(ts) - i
			}
			l.Append(ts[i : i+n])
			i += n
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		appended, dropped, written := l.Stats()
		if appended != int64(len(ts)) || dropped != 0 || written != int64(len(ts)) {
			t.Fatalf("recorder lost data: appended=%d dropped=%d written=%d of %d",
				appended, dropped, written, len(ts))
		}
		if len(ts) == 0 {
			return // nothing recorded; a session need not exist
		}

		sess, err := OpenSession(dir)
		if err != nil {
			t.Fatalf("reopening own recording: %v", err)
		}
		r := NewReplayer(sess)
		r.SetSpeed(0)
		var got []tuple.Tuple
		if err := r.Run(func(batch []tuple.Tuple) error {
			got = append(got, batch...)
			return nil
		}); err != nil {
			t.Fatalf("replaying own recording: %v", err)
		}
		want := tuple.AppendWireBatch(nil, ts)
		have := tuple.AppendWireBatch(nil, got)
		if !bytes.Equal(want, have) {
			t.Fatalf("record→replay not byte-identical: %d tuples in, %d out\nfirst 200 in:  %.200q\nfirst 200 out: %.200q",
				len(ts), len(got), want, have)
		}
	})
}
