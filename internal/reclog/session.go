package reclog

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/tuple"
)

// Session is a recorded directory opened for reading: the per-segment
// index, verified against the files on disk.
type Session struct {
	dir  string
	segs []SegmentInfo
}

// OpenSession indexes a recorded session directory. Index entries that
// match the files on disk are trusted; anything else (the active segment of
// a live recorder, a crashed session, a hand-edited directory) is scanned.
func OpenSession(dir string) (*Session, error) {
	segs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("reclog: %s: no segments", dir)
	}
	return &Session{dir: dir, segs: segs}, nil
}

// Dir returns the session directory.
func (s *Session) Dir() string { return s.dir }

// Segments returns the index, oldest segment first.
func (s *Session) Segments() []SegmentInfo {
	out := make([]SegmentInfo, len(s.segs))
	copy(out, s.segs)
	return out
}

// Tuples returns the total recorded tuple count.
func (s *Session) Tuples() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.Tuples
	}
	return n
}

// Bounds returns the oldest and newest tuple timestamps (ms) in the
// session; ok is false for a session holding no tuples.
func (s *Session) Bounds() (first, last int64, ok bool) {
	for _, seg := range s.segs {
		if seg.Tuples == 0 {
			continue
		}
		if !ok || seg.First < first {
			first = seg.First
		}
		if !ok || seg.Last > last {
			last = seg.Last
		}
		ok = true
	}
	return first, last, ok
}

// DefaultReplayBatch is the tuple batch size Replayer delivers.
const DefaultReplayBatch = 512

// paceSliceMS bounds how much recorded time one delivered batch may span
// when pacing is on. Pacing sleeps happen between batches, so without this
// a slow recording (hundreds of tuples per second) would fill a whole
// 512-tuple batch spanning seconds of recorded time and replay it as one
// burst; 50ms slices reproduce the recorded cadence at scope-poll
// granularity.
const paceSliceMS = 50

// Replayer streams a Session back as tuple batches: as fast as possible,
// or paced so recorded time advances at a multiple of real time. A
// Replayer is single-use state (delivered counters, pacing anchor); create
// one per replay pass.
type Replayer struct {
	sess  *Session
	speed float64
	from  int64 // ms, inclusive
	to    int64 // ms, inclusive
	batch int

	delivered   int64
	skippedSegs int
	sleep       func(time.Duration) // test seam; nil = time.Sleep
}

// NewReplayer creates a replayer over the whole session at recorded speed
// (×1 pacing).
func NewReplayer(s *Session) *Replayer {
	return &Replayer{sess: s, speed: 1, from: math.MinInt64, to: math.MaxInt64, batch: DefaultReplayBatch}
}

// SetSpeed sets the pacing multiple: 1 replays on the recorded timeline, 2
// twice as fast, and so on. Non-positive disables pacing entirely (replay
// as fast as possible).
func (r *Replayer) SetSpeed(x float64) { r.speed = x }

// SetWindow restricts replay to tuples stamped in [from, to] on the
// recorded timeline. A non-positive to means no upper bound. Seeking uses
// the segment index: segments wholly before from are skipped without being
// read, so starting mid-session costs at most one segment of scanning.
func (r *Replayer) SetWindow(from, to time.Duration) {
	r.from = from.Milliseconds()
	r.to = math.MaxInt64
	if to > 0 {
		r.to = to.Milliseconds()
	}
}

// SetBatch bounds delivered batches in tuples (non-positive restores
// DefaultReplayBatch).
func (r *Replayer) SetBatch(n int) {
	if n <= 0 {
		n = DefaultReplayBatch
	}
	r.batch = n
}

// Delivered returns the number of tuples delivered so far; it may be read
// while Run is in flight only from the delivering callback.
func (r *Replayer) Delivered() int64 { return r.delivered }

// SkippedSegments returns how many whole segments the window seek skipped
// without reading.
func (r *Replayer) SkippedSegments() int { return r.skippedSegs }

// Run streams the session through fn in timestamp-windowed batches (each at
// most the configured batch size; valid only for the duration of the call).
// It blocks until the session is exhausted, fn returns an error (which Run
// returns), or a read fails. Pacing sleeps happen between batches, anchored
// to the first delivered tuple, so a paced replay reproduces the recorded
// cadence at the configured multiple.
func (r *Replayer) Run(fn func(batch []tuple.Tuple) error) error {
	var (
		wallStart time.Time
		t0        int64
		anchored  bool
	)
	batch := make([]tuple.Tuple, 0, r.batch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if r.speed > 0 {
			if !anchored {
				wallStart, t0, anchored = time.Now(), batch[0].Time, true
			} else if ahead := r.paceDelay(wallStart, t0, batch[0].Time); ahead > 0 {
				if r.sleep != nil {
					r.sleep(ahead)
				} else {
					time.Sleep(ahead)
				}
			}
		}
		if err := fn(batch); err != nil {
			return err
		}
		r.delivered += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	for _, seg := range r.sess.segs {
		if seg.Tuples == 0 {
			continue
		}
		if seg.Last < r.from || seg.First > r.to {
			r.skippedSegs++
			continue
		}
		if err := r.runSegment(seg, &batch, flush); err != nil {
			return err
		}
	}
	return flush()
}

// paceDelay returns how long to sleep so that the tuple stamped at (ms)
// is delivered at wallStart + (at-t0)/speed.
func (r *Replayer) paceDelay(wallStart time.Time, t0, at int64) time.Duration {
	target := wallStart.Add(time.Duration(float64(at-t0) / r.speed * float64(time.Millisecond)))
	return time.Until(target)
}

// runSegment streams one segment file through the shared batch buffer.
func (r *Replayer) runSegment(seg SegmentInfo, batch *[]tuple.Tuple, flush func() error) error {
	f, err := os.Open(filepath.Join(r.sess.dir, segName(seg.Seq)))
	if err != nil {
		return fmt.Errorf("reclog: %w", err)
	}
	defer f.Close()
	// Segments may hold §3.3 text lines or v3 binary frames (docs/WIRE.md)
	// depending on the recording options; the mixed-stream reader decodes
	// either without being told which, so replay re-emits exactly the
	// tuples that arrived regardless of the encoding they rode in on.
	tr := tuple.NewStreamReader(f)
	for {
		t, err := tr.Read()
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, tuple.ErrBadLine) || errors.Is(err, tuple.ErrBadFrame) {
			// A torn final line or frame from a crashed recorder (segments
			// are append-only, so damage is only ever at the tail): stop at
			// what parsed, matching what the index scanner counted.
			return nil
		}
		if err != nil {
			// A transport error (disk I/O, oversized line): the rest of
			// the segment is unreadable, and silently replaying a partial
			// session would misrepresent the recording.
			return fmt.Errorf("reclog: %s: %w", segName(seg.Seq), err)
		}
		if t.Time < r.from || t.Time > r.to {
			continue
		}
		if r.speed > 0 && len(*batch) > 0 && t.Time-(*batch)[0].Time >= paceSliceMS {
			if err := flush(); err != nil {
				return err
			}
		}
		*batch = append(*batch, t)
		if len(*batch) >= r.batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
}
