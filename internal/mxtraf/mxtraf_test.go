package mxtraf

import (
	"testing"
	"time"
)

func TestSetElephantsRampUpAndDown(t *testing.T) {
	g := New(DefaultConfig())
	g.SetElephants(8)
	g.Sim().RunUntil(2 * time.Second) // staggered starts complete
	if g.Elephants() != 8 {
		t.Fatalf("elephants = %d, want 8", g.Elephants())
	}
	g.SetElephants(3)
	g.Sim().RunUntil(3 * time.Second)
	if g.Elephants() != 3 {
		t.Fatalf("after rampdown = %d, want 3", g.Elephants())
	}
	if g.Net().NumFlows() != 3 {
		t.Fatalf("dumbbell has %d flows", g.Net().NumFlows())
	}
	g.SetElephants(-5)
	g.Sim().RunUntil(4 * time.Second)
	if g.Elephants() != 0 {
		t.Fatal("negative target should clamp to 0")
	}
}

func TestElephantCwndSignal(t *testing.T) {
	g := New(DefaultConfig())
	g.SetElephants(2)
	g.Sim().RunUntil(5 * time.Second)
	if g.ElephantCwnd(0) <= 0 {
		t.Fatalf("cwnd(0) = %v", g.ElephantCwnd(0))
	}
	if g.ElephantCwnd(99) != 0 {
		t.Fatal("out-of-range cwnd should be 0")
	}
	if g.ElephantTimeouts(99) != 0 {
		t.Fatal("out-of-range timeouts should be 0")
	}
}

func TestMiceCompleteAndCount(t *testing.T) {
	g := New(DefaultConfig())
	g.StartMice(20) // 20 conns/sec on an idle network
	g.Sim().RunUntil(10 * time.Second)
	g.StopMice()
	started, completed, errors := g.MiceStats()
	if started < 100 {
		t.Fatalf("only %d mice started", started)
	}
	if completed == 0 {
		t.Fatal("no mice completed")
	}
	if float64(errors) > float64(started)/10 {
		t.Fatalf("too many errors on an idle network: %d/%d", errors, started)
	}
	at := g.Sim().Now()
	g.Sim().RunUntil(at + 5*time.Second)
	started2, _, _ := g.MiceStats()
	if started2-started > 2 {
		t.Fatalf("mice kept arriving after StopMice: %d new", started2-started)
	}
}

func TestSnapshotRates(t *testing.T) {
	g := New(DefaultConfig())
	g.SetElephants(4)
	g.StartMice(10)
	g.Sim().RunUntil(5 * time.Second)
	g.Snapshot() // establish the window start
	g.Sim().RunUntil(10 * time.Second)
	m := g.Snapshot()
	if m.Elephants != 4 {
		t.Fatalf("metrics elephants = %d", m.Elephants)
	}
	if m.ThroughputBps <= 0 {
		t.Fatal("no throughput measured")
	}
	// 10 Mbit/s bottleneck: goodput cannot exceed the link rate by more
	// than protocol slack.
	if m.ThroughputBps > 12e6 {
		t.Fatalf("throughput %v exceeds the link rate", m.ThroughputBps)
	}
	if m.ConnsPerSec <= 0 {
		t.Fatal("no connection rate measured")
	}
	if m.LatencyMs <= 0 {
		t.Fatal("no latency measured")
	}
}

func TestSnapshotZeroWindowReturnsPrevious(t *testing.T) {
	g := New(DefaultConfig())
	g.SetElephants(1)
	g.Sim().RunUntil(2 * time.Second)
	g.Snapshot()
	g.Sim().RunUntil(4 * time.Second)
	m1 := g.Snapshot()
	m2 := g.Snapshot() // same instant: must not divide by zero
	if m2.ThroughputBps != m1.ThroughputBps {
		t.Fatalf("zero-window snapshot changed: %v vs %v", m2.ThroughputBps, m1.ThroughputBps)
	}
}

func TestFigure4ShapeTCPTimeouts(t *testing.T) {
	// The Figure 4 scenario: DropTail, 8 elephants then 16. With 16 the
	// observed flow's CWND must hit 1 (timeouts) at least a few times.
	g := New(DefaultConfig())
	g.SetElephants(8)
	g.Sim().RunUntil(30 * time.Second)
	t8 := g.ElephantTimeouts(0)
	_ = t8
	g.SetElephants(16)
	g.Sim().RunUntil(90 * time.Second)
	var total int64
	for i := 0; i < 16; i++ {
		total += g.ElephantTimeouts(i)
	}
	if total == 0 {
		t.Fatal("16 DropTail elephants produced no timeouts; Figure 4 needs them")
	}
}

func TestFigure5ShapeECNNoTimeouts(t *testing.T) {
	g := New(ECNConfig())
	g.SetElephants(8)
	g.Sim().RunUntil(30 * time.Second)
	g.SetElephants(16)
	g.Sim().RunUntil(90 * time.Second)
	m := g.Snapshot()
	if m.Timeouts != 0 {
		t.Fatalf("ECN run suffered %d timeouts; Figure 5 shows none", m.Timeouts)
	}
}

func TestUDPMixTunable(t *testing.T) {
	g := New(DefaultConfig())
	g.SetElephants(4)
	g.Sim().RunUntil(5 * time.Second)
	g.Snapshot()
	g.Sim().RunUntil(10 * time.Second)
	clean := g.Snapshot().ThroughputBps

	// Add 6 Mbit/s of unresponsive UDP: TCP goodput must shrink.
	g.SetUDPLoad(6e6)
	g.Sim().RunUntil(15 * time.Second)
	g.Snapshot()
	g.Sim().RunUntil(25 * time.Second)
	squeezed := g.Snapshot().ThroughputBps
	if squeezed >= clean*0.8 {
		t.Fatalf("UDP mix did not squeeze TCP: %.0f → %.0f bps", clean, squeezed)
	}
	recv, _, _ := g.UDPStats()
	if recv == 0 {
		t.Fatal("UDP sink received nothing")
	}

	// Removing the UDP load restores TCP throughput.
	g.SetUDPLoad(0)
	g.Sim().RunUntil(30 * time.Second)
	g.Snapshot()
	g.Sim().RunUntil(40 * time.Second)
	restored := g.Snapshot().ThroughputBps
	if restored <= squeezed {
		t.Fatalf("removing UDP did not restore TCP: %.0f vs %.0f", restored, squeezed)
	}
	if r, l, lr := g.UDPStats(); r != 0 || l != 0 || lr != 0 {
		t.Fatal("UDPStats should be zero after removal")
	}
}

func TestGeneratorString(t *testing.T) {
	g := New(DefaultConfig())
	if g.String() == "" {
		t.Fatal("String should describe the generator")
	}
}
