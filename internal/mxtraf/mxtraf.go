// Package mxtraf reimplements the mxtraf network traffic generator the
// paper uses for its TCP/ECN experiment (§2): a small number of hosts
// saturate a network with a tunable mix of long-lived TCP flows
// ("elephants"), short transfers ("mice") and their metrics. Flow counts
// change dynamically — the Figure 4/5 runs switch from 8 to 16 elephants
// mid-experiment — and the generator exposes the signals the paper
// visualizes: the elephant count, the congestion window of one flow,
// connections and errors per second, aggregate throughput, and transfer
// latency.
//
// The generator drives the netsim dumbbell rather than real kernels; see
// DESIGN.md for why this substitution preserves the congestion-control
// behaviour the figures show.
package mxtraf

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/netsim"
)

// Config parameterizes a traffic generator run.
type Config struct {
	// Net is the emulated path (bandwidth, delay, queue discipline).
	Net netsim.DumbbellConfig
	// MouseSegments is the transfer size of short flows, in segments.
	MouseSegments int64
	// MouseDeadline is how long a mouse may take before it is counted as
	// a connection error and torn down.
	MouseDeadline time.Duration
	// StaggerFlows spaces out elephant starts to avoid synchronized slow
	// start; zero applies a 100 ms default.
	StaggerFlows time.Duration
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig returns the configuration used by the Figure 4
// reproduction: the default dumbbell with DropTail queueing.
func DefaultConfig() Config {
	return Config{
		Net:           netsim.DefaultDumbbell(),
		MouseSegments: 12,
		MouseDeadline: 5 * time.Second,
		StaggerFlows:  100 * time.Millisecond,
		Seed:          1,
	}
}

// ECNConfig returns the Figure 5 variant: RED queueing with ECN-capable
// senders.
func ECNConfig() Config {
	cfg := DefaultConfig()
	cfg.Net.RED = true
	cfg.Net.TCP.ECN = true
	return cfg
}

// Metrics is a snapshot of the generator's windowed measurements, the
// quantities the paper's client-server library correlates on one scope
// (§4.4): connections per second, connection errors per second, network
// throughput and latency.
type Metrics struct {
	Elephants     int
	ConnsPerSec   float64
	ErrorsPerSec  float64
	ThroughputBps float64
	LatencyMs     float64
	Timeouts      int64
	QueueLen      int
}

// Generator manages flows on a dumbbell and computes metrics.
type Generator struct {
	cfg Config
	d   *netsim.Dumbbell
	rng *rand.Rand

	elephants []*netsim.Flow
	udpFlow   *netsim.UDPFlow

	miceStarted   int64
	miceCompleted int64
	miceErrors    int64
	latencySumMs  float64
	latencyCount  int64
	miceStop      *netsim.Timer

	// Window bookkeeping for rate metrics.
	lastSnapAt        time.Duration
	lastGoodput       int64
	lastCompleted     int64
	lastErrors        int64
	lastLatencySum    float64
	lastLatencyCount  int64
	lastWindowMetrics Metrics
}

// New builds a generator over a fresh dumbbell.
func New(cfg Config) *Generator {
	if cfg.StaggerFlows == 0 {
		cfg.StaggerFlows = 100 * time.Millisecond
	}
	return &Generator{
		cfg: cfg,
		d:   netsim.NewDumbbell(cfg.Net),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Sim exposes the simulator so callers advance virtual time.
func (g *Generator) Sim() *netsim.Sim { return g.d.Sim }

// Net exposes the dumbbell.
func (g *Generator) Net() *netsim.Dumbbell { return g.d }

// Elephants returns the current number of long-lived flows — the paper's
// "elephants" signal.
func (g *Generator) Elephants() int { return len(g.elephants) }

// SetElephants adjusts the number of long-lived flows to n, starting new
// flows staggered by the configured interval or tearing down the
// most-recently added ones. This is the control the Figure 4/5 runs
// exercise when switching 8 → 16 flows.
func (g *Generator) SetElephants(n int) {
	if n < 0 {
		n = 0
	}
	for len(g.elephants) > n {
		last := g.elephants[len(g.elephants)-1]
		g.elephants = g.elephants[:len(g.elephants)-1]
		g.d.RemoveFlow(last.ID)
	}
	add := n - len(g.elephants)
	for i := 0; i < add; i++ {
		delay := time.Duration(i) * g.cfg.StaggerFlows
		g.d.Sim.After(delay, func() {
			g.elephants = append(g.elephants, g.d.AddElephant())
		})
	}
}

// ElephantCwnd returns the congestion window of elephant i (the paper
// plots an arbitrarily chosen long-lived flow); it returns 0 when no such
// flow exists.
func (g *Generator) ElephantCwnd(i int) float64 {
	if i < 0 || i >= len(g.elephants) {
		return 0
	}
	return g.elephants[i].Sender.Cwnd()
}

// ElephantTimeouts returns cumulative timeouts of elephant i.
func (g *Generator) ElephantTimeouts(i int) int64 {
	if i < 0 || i >= len(g.elephants) {
		return 0
	}
	return g.elephants[i].Sender.Timeouts
}

// StartMice begins Poisson arrivals of short transfers at ratePerSec.
// Each mouse transfers MouseSegments segments; completing counts toward
// connections per second, exceeding MouseDeadline counts as an error.
func (g *Generator) StartMice(ratePerSec float64) {
	g.StopMice()
	if ratePerSec <= 0 {
		return
	}
	var schedule func()
	schedule = func() {
		gap := time.Duration(g.expInterval(ratePerSec) * float64(time.Second))
		g.miceStop = g.d.Sim.After(gap, func() {
			g.launchMouse()
			schedule()
		})
	}
	schedule()
}

// StopMice halts new mouse arrivals.
func (g *Generator) StopMice() {
	if g.miceStop != nil {
		g.miceStop.Cancel()
		g.miceStop = nil
	}
}

func (g *Generator) expInterval(rate float64) float64 {
	u := g.rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return -math.Log(u) / rate
}

func (g *Generator) launchMouse() {
	g.miceStarted++
	start := g.d.Sim.Now()
	f := g.d.AddFlow(g.cfg.MouseSegments)
	finished := false
	deadline := g.d.Sim.After(g.cfg.MouseDeadline, func() {
		if finished {
			return
		}
		finished = true
		g.miceErrors++
		g.d.RemoveFlow(f.ID)
	})
	f.Sender.OnDone = func() {
		if finished {
			return
		}
		finished = true
		deadline.Cancel()
		g.miceCompleted++
		ms := float64(g.d.Sim.Now()-start) / float64(time.Millisecond)
		g.latencySumMs += ms
		g.latencyCount++
		g.d.RemoveFlow(f.ID)
	}
}

// MiceStats returns lifetime mouse counters: started, completed, errors.
func (g *Generator) MiceStats() (started, completed, errors int64) {
	return g.miceStarted, g.miceCompleted, g.miceErrors
}

// SetUDPLoad adjusts the unresponsive constant-bit-rate component of the
// traffic mix to rateBps (0 removes it). Mxtraf's purpose is saturating a
// network with "a tunable mix of TCP and UDP traffic" (§2); the UDP share
// is the tunable half.
func (g *Generator) SetUDPLoad(rateBps float64) {
	if g.udpFlow != nil {
		g.d.RemoveUDP(g.udpFlow.ID)
		g.udpFlow = nil
	}
	if rateBps > 0 {
		g.udpFlow = g.d.AddUDP(rateBps, 1000)
	}
}

// UDPStats returns the CBR flow's delivery counters (zero when no UDP
// load is configured): datagrams received, datagrams lost, loss fraction.
func (g *Generator) UDPStats() (received, lost int64, lossRate float64) {
	if g.udpFlow == nil {
		return 0, 0, 0
	}
	k := g.udpFlow.Sink
	return k.Received, k.Lost, k.LossRate()
}

// Snapshot computes windowed metrics since the previous Snapshot call.
// Call it at a fixed cadence (e.g. once per scope polling period) and read
// the rates from the result.
func (g *Generator) Snapshot() Metrics {
	now := g.d.Sim.Now()
	dt := (now - g.lastSnapAt).Seconds()
	m := Metrics{
		Elephants: len(g.elephants),
		Timeouts:  g.d.TotalTimeouts(),
		QueueLen:  g.d.Queue().Len(),
	}
	if dt > 0 {
		goodput := g.d.GoodputSegments()
		m.ThroughputBps = float64(goodput-g.lastGoodput) * float64(g.cfg.Net.TCP.MSS) * 8 / dt
		m.ConnsPerSec = float64(g.miceCompleted-g.lastCompleted) / dt
		m.ErrorsPerSec = float64(g.miceErrors-g.lastErrors) / dt
		if n := g.latencyCount - g.lastLatencyCount; n > 0 {
			m.LatencyMs = (g.latencySumMs - g.lastLatencySum) / float64(n)
		}
		g.lastSnapAt = now
		g.lastGoodput = goodput
		g.lastCompleted = g.miceCompleted
		g.lastErrors = g.miceErrors
		g.lastLatencySum = g.latencySumMs
		g.lastLatencyCount = g.latencyCount
		g.lastWindowMetrics = m
	} else {
		m = g.lastWindowMetrics
		m.Elephants = len(g.elephants)
		m.Timeouts = g.d.TotalTimeouts()
		m.QueueLen = g.d.Queue().Len()
	}
	return m
}

// String describes the generator.
func (g *Generator) String() string {
	return fmt.Sprintf("mxtraf: %s, %d elephants, mice %d/%d/%d (started/done/err)",
		g.d, len(g.elephants), g.miceStarted, g.miceCompleted, g.miceErrors)
}
