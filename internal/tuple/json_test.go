package tuple

import (
	"encoding/json"
	"math"
	"testing"
)

// decodeTriples round-trips the appended JSON through encoding/json,
// proving the hand encoder emits valid JSON.
func decodeTriples(t *testing.T, data []byte) [][3]any {
	t.Helper()
	var out [][3]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid JSON %q: %v", data, err)
	}
	return out
}

func TestAppendJSONBatch(t *testing.T) {
	batch := []Tuple{
		{Time: 100, Value: 1, Name: "cpu.0"},
		{Time: 150, Value: 0.25, Name: "temp c"},
		{Time: 200, Value: -3e9, Name: "x"},
	}
	got := decodeTriples(t, AppendJSONBatch(nil, batch))
	if len(got) != 3 {
		t.Fatalf("got %d triples, want 3", len(got))
	}
	if got[0][0].(float64) != 100 || got[0][1].(float64) != 1 || got[0][2].(string) != "cpu.0" {
		t.Errorf("triple 0 = %v", got[0])
	}
	if got[1][1].(float64) != 0.25 || got[1][2].(string) != "temp c" {
		t.Errorf("triple 1 = %v", got[1])
	}
	if got[2][1].(float64) != -3e9 {
		t.Errorf("triple 2 = %v", got[2])
	}
}

func TestAppendJSONBatchEmpty(t *testing.T) {
	if got := string(AppendJSONBatch(nil, nil)); got != "[]" {
		t.Fatalf("empty batch = %q, want []", got)
	}
}

func TestAppendJSONValueSpecials(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.NaN(), "null"},
		{math.Inf(1), "null"},
		{math.Inf(-1), "null"},
		{42, "42"},
		{-0.5, "-0.5"},
	}
	for _, c := range cases {
		if got := string(AppendJSONValue(nil, c.v)); got != c.want {
			t.Errorf("AppendJSONValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAppendJSONStringEscaping(t *testing.T) {
	// Names with quotes, backslashes, control bytes and invalid UTF-8
	// must still produce valid JSON that decodes to a sane string.
	for _, name := range []string{
		`plain`, `with "quotes"`, `back\slash`, "tab\tsep", "ctl\x01byte",
		"uni·code", string([]byte{0xff, 0xfe}), "",
	} {
		enc := AppendJSONString(nil, name)
		var got string
		if err := json.Unmarshal(enc, &got); err != nil {
			t.Fatalf("AppendJSONString(%q) = %q: invalid JSON: %v", name, enc, err)
		}
		// Valid UTF-8 input must round-trip exactly.
		if gotBack := AppendJSONString(nil, got); name != got && string(gotBack) != string(enc) {
			t.Errorf("AppendJSONString(%q) decoded to %q and is not a fixpoint", name, got)
		}
	}
}

func TestAppendJSONBatchReusesBuffer(t *testing.T) {
	batch := []Tuple{{Time: 1, Value: 2, Name: "s"}}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendJSONBatch(buf[:0], batch)
	})
	if allocs != 0 {
		t.Fatalf("AppendJSONBatch into retained buffer allocates %v/op, want 0", allocs)
	}
}
