package tuple

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestInternerAssignsDenseIDs(t *testing.T) {
	in := NewInterner()
	names := []string{"cwnd", "cps", "errps"}
	for i, name := range names {
		id, err := in.Intern(name)
		if err != nil {
			t.Fatal(err)
		}
		if id != SignalID(i) {
			t.Fatalf("Intern(%q) = %d, want %d", name, id, i)
		}
	}
	// Idempotent: re-interning returns the same ID.
	id, err := in.Intern("cps")
	if err != nil || id != 1 {
		t.Fatalf("re-Intern(cps) = %d, %v", id, err)
	}
	if in.Len() != 3 {
		t.Fatalf("Len = %d", in.Len())
	}
	if got := in.Name(2); got != "errps" {
		t.Fatalf("Name(2) = %q", got)
	}
	if got := in.Name(99); got != "" {
		t.Fatalf("Name(99) = %q", got)
	}
	if id, ok := in.Lookup("cwnd"); !ok || id != 0 {
		t.Fatalf("Lookup(cwnd) = %d, %v", id, ok)
	}
	if _, ok := in.Lookup("nope"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
}

func TestInternerRejectsInvalidNames(t *testing.T) {
	in := NewInterner()
	for _, bad := range []string{"a\nb", "a\rb", " padded", "padded ", "\ttab"} {
		if _, err := in.Intern(bad); err == nil {
			t.Errorf("Intern(%q) accepted an invalid name", bad)
		}
	}
	// The empty name is the two-field form's unnamed signal.
	id, err := in.Intern("")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.NameBytes(id); len(got) != 0 {
		t.Fatalf("NameBytes(unnamed) = %q", got)
	}
}

func TestInternerCanonicalShares(t *testing.T) {
	in := NewInterner()
	a := in.Canonical("cwnd")
	b := in.Canonical(strings.Clone("cwnd")) // distinct backing array
	if a != b {
		t.Fatalf("canonical mismatch: %q vs %q", a, b)
	}
	// Same backing array: comparing the string data pointers via the
	// cheapest observable proxy — canonical of canonical is identity.
	if c := in.Canonical(a); c != a {
		t.Fatal("canonical not idempotent")
	}
	// Invalid names pass through unchanged instead of erroring.
	if got := in.Canonical("a\nb"); got != "a\nb" {
		t.Fatalf("Canonical(invalid) = %q", got)
	}
}

func TestInternerAppendWireID(t *testing.T) {
	in := NewInterner()
	id, err := in.Intern("CWND")
	if err != nil {
		t.Fatal(err)
	}
	s := Sample{At: 1500 * time.Millisecond, Value: 42.5}
	got := string(in.AppendWireID(nil, id, s))
	want := string(AppendWire(nil, s.Tuple("CWND")))
	if got != want {
		t.Fatalf("AppendWireID = %q, want %q", got, want)
	}
	if got != "1500 42.5 CWND\n" {
		t.Fatalf("wire = %q", got)
	}
	// The unnamed signal encodes the two-field form.
	two := string(AppendWireName(nil, nil, Sample{At: time.Second, Value: 7}))
	if two != "1000 7\n" {
		t.Fatalf("two-field wire = %q", two)
	}
}

func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	var wg sync.WaitGroup
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				name := names[i%len(names)]
				id, err := in.Intern(name)
				if err != nil {
					t.Error(err)
					return
				}
				if got := in.Name(id); got != name {
					t.Errorf("Name(Intern(%q)) = %q", name, got)
					return
				}
				if got := in.Canonical(name); got != name {
					t.Errorf("Canonical(%q) = %q", name, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if in.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(names))
	}
}
