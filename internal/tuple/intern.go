package tuple

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
)

// SignalID is a dense handle for an interned signal name: the first name
// interned gets 0, the next 1, and so on, so an Interner's consumers can
// index plain slices by ID instead of hashing strings. IDs are local to one
// Interner and never cross the wire: the text format stays self-describing,
// and the v3 binary framing carries its own stream-local dictionary IDs,
// re-declared per stream (docs/WIRE.md §B3), never an Interner's.
type SignalID int32

// NoSignal is the invalid SignalID.
const NoSignal SignalID = -1

// Interner assigns dense SignalIDs to signal names, keeps one canonical
// string per name, and prebuilds the wire bytes a batch encoder needs, so
// the per-sample publish paths never hash, validate, or copy a name again:
//
//   - Intern validates once (ValidateName) and is idempotent — the probe
//     registration step.
//   - Canonical maps any equal string to the interned instance, letting a
//     parser drop per-line backing arrays instead of pinning them in
//     long-lived queues and histories.
//   - NameBytes returns the prevalidated " name" suffix AppendWireID
//     memcpys after the timestamp and value.
//
// An Interner is safe for concurrent use. Interned names are never
// released; callers managing unbounded name spaces should cap growth via
// Len.
type Interner struct {
	mu sync.RWMutex
	//gscope:guardedby mu
	ids map[string]SignalID
	//gscope:guardedby mu
	names []string
	// wire holds " " + name per ID, empty for the unnamed signal.
	//gscope:guardedby mu
	wire [][]byte
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]SignalID)}
}

// Intern returns the dense ID for name, assigning the next free one on
// first sight. Names the wire format cannot carry are rejected (see
// ValidateName). The empty name is internable: it identifies the two-field
// tuple form's single unnamed signal.
func (in *Interner) Intern(name string) (SignalID, error) {
	in.mu.RLock()
	id, ok := in.ids[name]
	in.mu.RUnlock()
	if ok {
		return id, nil
	}
	if err := ValidateName(name); err != nil {
		return NoSignal, err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[name]; ok {
		return id, nil
	}
	if len(in.names) >= math.MaxInt32 {
		return NoSignal, fmt.Errorf("tuple: interner full")
	}
	name = strings.Clone(name) // detach from the caller's backing array
	id = SignalID(len(in.names))
	in.names = append(in.names, name)
	var sfx []byte
	if name != "" {
		sfx = append(append(make([]byte, 0, len(name)+1), ' '), name...)
	}
	in.wire = append(in.wire, sfx)
	in.ids[name] = id
	return id, nil
}

// Lookup returns the ID of an already-interned name.
//
//gscope:hotpath
func (in *Interner) Lookup(name string) (SignalID, bool) {
	in.mu.RLock()
	id, ok := in.ids[name]
	in.mu.RUnlock()
	return id, ok
}

// Canonical returns the interned instance of name, interning it first if
// needed, so equal names share one backing array. A name that cannot be
// interned (invalid, or the interner is full) comes back unchanged — the
// caller keeps working, just without the sharing.
func (in *Interner) Canonical(name string) string {
	in.mu.RLock()
	id, ok := in.ids[name]
	in.mu.RUnlock()
	if ok {
		return in.Name(id)
	}
	id, err := in.Intern(name)
	if err != nil {
		return name
	}
	return in.Name(id)
}

// Name returns the canonical name for id, or "" for an unknown ID.
//
//gscope:hotpath
func (in *Interner) Name(id SignalID) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id < 0 || int(id) >= len(in.names) {
		return ""
	}
	return in.names[id]
}

// NameBytes returns the prebuilt " name" wire suffix for id (empty for the
// unnamed signal or an unknown ID). The slice is shared and must not be
// modified.
//
//gscope:hotpath
func (in *Interner) NameBytes(id SignalID) []byte {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id < 0 || int(id) >= len(in.wire) {
		return nil
	}
	return in.wire[id]
}

// Len returns the number of interned names.
//
//gscope:hotpath
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}

// AppendWireID appends the newline-terminated wire form of one sample of
// the interned signal id. The name was validated at Intern time, so the
// encoder is a straight byte append — the zero-allocation batch path
// behind ClientProbe and the hub's interned broadcast.
//
//gscope:hotpath
func (in *Interner) AppendWireID(dst []byte, id SignalID, s Sample) []byte {
	return AppendWireName(dst, in.NameBytes(id), s)
}

// AppendWireName appends one sample line using a prebuilt " name" suffix
// (as returned by Interner.NameBytes; empty encodes the two-field form).
// Callers that hold a suffix encode a whole same-signal run without
// re-validating or re-copying the name per tuple.
//
//gscope:hotpath
func AppendWireName(dst []byte, nameSfx []byte, s Sample) []byte {
	dst = strconv.AppendInt(dst, s.At.Milliseconds(), 10)
	dst = append(dst, ' ')
	v := s.Value
	if v == float64(int64(v)) {
		dst = strconv.AppendInt(dst, int64(v), 10)
	} else {
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	dst = append(dst, nameSfx...)
	return append(dst, '\n')
}
