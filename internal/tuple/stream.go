package tuple

import (
	"fmt"
	"io"
)

// StreamReader decodes tuples one at a time from a mixed text/binary
// stream (WIRE.md) on an io.Reader — the file-reading counterpart of
// StreamDecoder, used by the flight recorder to scan and replay segments
// regardless of which encoding they were recorded in. Comment lines are
// skipped. The first data error is sticky: a bad text line surfaces
// wrapped in ErrBadLine, malformed binary framing in ErrBadFrame, and
// every subsequent Read repeats it — for an append-only file either one
// means the readable prefix has ended (a torn tail). An unterminated
// trailing text line is still decoded; a torn trailing frame is not.
type StreamReader struct {
	r    io.Reader
	dec  StreamDecoder
	buf  []byte
	out  []Tuple
	pos  int
	line int // text lines seen, for error messages
	pend error
	done bool
}

// NewStreamReader returns a reader decoding tuples from r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: r, buf: make([]byte, 64*1024)}
}

// Read returns the next tuple, io.EOF at a clean end of stream, or the
// sticky first error.
func (s *StreamReader) Read() (Tuple, error) {
	for {
		if s.pos < len(s.out) {
			t := s.out[s.pos]
			s.pos++
			return t, nil
		}
		if s.pend != nil {
			return Tuple{}, s.pend
		}
		if s.done {
			return Tuple{}, io.EOF
		}
		s.out = s.out[:0]
		s.pos = 0
		n, err := s.r.Read(s.buf)
		if ferr := s.dec.Feed(s.buf[:n], s.onLine, s.onBatch); ferr != nil && s.pend == nil {
			s.pend = ferr
		}
		if err != nil {
			s.done = true
			if err == io.EOF {
				if s.pend == nil {
					s.dec.Tail(s.onLine)
				}
			} else if s.pend == nil {
				s.pend = err
			}
		}
	}
}

func (s *StreamReader) onLine(ln string) {
	if s.pend != nil {
		return
	}
	s.line++
	if IsComment(ln) {
		return
	}
	t, err := Parse(ln)
	if err != nil {
		s.pend = fmt.Errorf("line %d: %w: %w", s.line, ErrBadLine, err)
		return
	}
	s.out = append(s.out, t)
}

func (s *StreamReader) onBatch(ts []Tuple) {
	if s.pend != nil {
		return
	}
	s.out = append(s.out, ts...)
}
