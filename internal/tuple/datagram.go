package tuple

import (
	"encoding/binary"
	"strings"
)

// This file is the datagram flavor of the v3 binary encoding: the same
// DICT/DATA frame grammar as binary.go, but with every AppendDatagram
// call producing a fully self-contained chunk — a fresh StreamDecoder
// (or one Reset) decodes it with no prior context. Stream encoding makes
// the dictionary the only cross-frame state (WIRE.md §B3); over a lossy
// transport even that is too much state, because the datagram carrying a
// binding can be the one the network eats. So the datagram encoder
// declares, inside each chunk, every name that chunk uses, with IDs
// dense from 0 in first-use order *within the chunk* (WIRE.md §D2).
//
// Naively that is BinaryEncoder.Reset per datagram, which re-clones
// every name every time. DatagramEncoder instead keeps one persistent
// name table across calls and stamps table slots with a per-call
// generation counter to assign chunk-local IDs, so a steady-state
// publisher re-sending the same signals allocates nothing per datagram.

// DatagramEncoder encodes batches into self-contained v3 chunks for
// sequence-numbered datagram transports (internal/dgram). It is not safe
// for concurrent use.
type DatagramEncoder struct {
	ids   map[string]uint64 // name → persistent slot, lives across calls
	names []string          // slot → cleaned canonical name (cloned once)

	// Per-call chunk-local ID assignment: slot s holds chunk-local ID
	// localID[s] iff localGen[s] == gen. Bumping gen invalidates every
	// slot in O(1) instead of clearing a map per datagram.
	gen      uint64
	localGen []uint64
	localID  []uint64

	payload []byte // pending DATA payload for the current chunk
}

// NewDatagramEncoder returns an encoder with an empty name table.
func NewDatagramEncoder() *DatagramEncoder {
	return &DatagramEncoder{ids: make(map[string]uint64)}
}

// Signals returns how many distinct names the persistent table holds.
func (e *DatagramEncoder) Signals() int { return len(e.names) }

// AppendDatagram appends batch as one self-contained v3 chunk: DICT
// frames declaring every name the chunk uses (chunk-local IDs dense from
// 0 in first-use order) interleaved with DATA frames, exactly the mixed
// grammar of WIRE.md §B — a fresh or Reset StreamDecoder decodes the
// chunk in isolation. Names past the table cap ride as text lines, the
// always-legal fallback of §B1. The caller bounds the batch so the chunk
// fits its transport's datagram budget; the encoder itself only bounds
// runs (§B4).
//
//gscope:hotpath
func (e *DatagramEncoder) AppendDatagram(dst []byte, batch []Tuple) []byte {
	e.gen++
	var nextLocal uint64
	for i := 0; i < len(batch); {
		name := batch[i].Name
		j := i + 1
		for j < len(batch) && batch[j].Name == name {
			j++
		}
		slot, ok := e.ids[name]
		if !ok && len(e.names) < maxStreamSignals {
			clean := strings.Clone(CleanName(name)) //gscope:allow hotpath table growth copies each name once per encoder lifetime
			slot = uint64(len(e.names))
			e.ids[strings.Clone(name)] = slot //gscope:allow hotpath table growth copies each name once per encoder lifetime
			e.names = append(e.names, clean)
			e.localGen = append(e.localGen, 0)
			e.localID = append(e.localID, 0)
			ok = true
		}
		if !ok {
			// Table full: this run rides as text, in order (§B1).
			dst = e.flush(dst)
			dst = AppendWireBatch(dst, batch[i:j])
			i = j
			continue
		}
		if e.localGen[slot] != e.gen {
			e.localGen[slot] = e.gen
			e.localID[slot] = nextLocal
			dst = appendDictFrame(dst, nextLocal, e.names[slot])
			nextLocal++
		}
		lid := e.localID[slot]
		for k := i; k < j; k += maxRunTuples {
			end := k + maxRunTuples
			if end > j {
				end = j
			}
			e.payload = appendRunPayload(e.payload, lid, batch[k:end])
			if len(e.payload) >= flushPayload {
				dst = e.flush(dst)
			}
		}
		i = j
	}
	return e.flush(dst)
}

// flush closes the pending payload into one DATA frame appended to dst.
//
//gscope:hotpath
func (e *DatagramEncoder) flush(dst []byte) []byte {
	if len(e.payload) == 0 {
		return dst
	}
	dst = appendDataFrame(dst, e.payload)
	e.payload = e.payload[:0]
	return dst
}

// appendDataFrame appends one DATA frame header + payload (WIRE.md §B2).
//
//gscope:hotpath
func appendDataFrame(dst, payload []byte) []byte {
	dst = append(dst, FrameMarker, FrameData)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}
