package tuple

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateName(t *testing.T) {
	valid := []string{"", "CWND", "name with spaces", "a\tb", "α.β", "net.tcp/flow-1"}
	for _, name := range valid {
		if err := ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", name, err)
		}
	}
	invalid := []string{"a\nb", "a\rb", "\n", " x", "x ", "\tx", "x\t", " x", "x ", " "}
	for _, name := range invalid {
		if err := ValidateName(name); !errors.Is(err, ErrBadName) {
			t.Errorf("ValidateName(%q) = %v, want ErrBadName", name, err)
		}
	}
}

func TestCleanName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"CWND", "CWND"},
		{"", ""},
		{"a b", "a b"},
		{"a\nb", "a b"},
		{"evil\r\nname", "evil  name"},
		{" padded ", "padded"},
		{"\nx\n", "x"},
		{"α", "α"}, // multi-byte edge rune, not a space
	}
	for _, c := range cases {
		if got := CleanName(c.in); got != c.want {
			t.Errorf("CleanName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestAppendWireNameInjection is the regression test for the wire-format
// corruption bug: a signal name containing a newline used to be emitted
// verbatim as the trailing field, splitting the line — which both lost the
// name and let a crafted name forge entire extra tuples in the stream.
// Pre-fix, the stream below decoded as TWO tuples (the second forged);
// post-fix the name is sanitized and exactly one tuple survives.
func TestAppendWireNameInjection(t *testing.T) {
	evil := Tuple{Time: 1500, Value: 1, Name: "cwnd\n9999 666 forged"}
	wire := AppendWire(nil, evil)
	got, err := NewReader(strings.NewReader(string(wire)), false).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d tuples from one AppendWire, want 1: %q", len(got), wire)
	}
	if got[0].Time != 1500 || got[0].Value != 1 {
		t.Fatalf("tuple corrupted: %+v", got[0])
	}
	if strings.ContainsAny(got[0].Name, "\n\r") {
		t.Fatalf("name still carries a line break: %q", got[0].Name)
	}

	// Edge whitespace: pre-fix the padding was silently eaten by Parse so
	// the name round-tripped changed; post-fix the encoder trims it up
	// front and the emitted line round-trips exactly.
	padded := Tuple{Time: 7, Value: 2, Name: " lead-and-trail "}
	line := string(AppendWire(nil, padded))
	back, err := Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "lead-and-trail" {
		t.Fatalf("padded name round-tripped as %q", back.Name)
	}
	if line != back.String()+"\n" {
		t.Fatalf("emitted line %q is not canonical (reparses to %q)", line, back.String())
	}

	// Valid names must be byte-identical to the historical encoding.
	ok := Tuple{Time: 123456, Value: 42.125, Name: "CWND"}
	if got := string(AppendWire(nil, ok)); got != "123456 42.125 CWND\n" {
		t.Fatalf("valid-name encoding changed: %q", got)
	}
}

func TestAppendWireBatchSanitizesPerRun(t *testing.T) {
	batch := []Tuple{
		{Time: 1, Value: 1, Name: "a\nb"},
		{Time: 2, Value: 2, Name: "a\nb"},
		{Time: 3, Value: 3, Name: "ok"},
	}
	wire := AppendWireBatch(nil, batch)
	got, err := NewReader(strings.NewReader(string(wire)), true).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d tuples, want 3: %q", len(got), wire)
	}
	for i, tu := range got {
		if strings.ContainsAny(tu.Name, "\n\r") {
			t.Fatalf("tuple %d name unsanitized: %q", i, tu.Name)
		}
	}
}

func TestWriterRejectsInvalidName(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	if err := w.Write(Tuple{Time: 1, Value: 1, Name: "bad\nname"}); !errors.Is(err, ErrBadName) {
		t.Fatalf("Write(invalid name) = %v, want ErrBadName", err)
	}
	// The rejection is per tuple: the writer is not poisoned.
	if err := w.Write(Tuple{Time: 2, Value: 2, Name: "good"}); err != nil {
		t.Fatalf("Write after rejection: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1 {
		t.Fatalf("Count = %d, want 1", w.Count())
	}
	if got := sb.String(); got != "2 2 good\n" {
		t.Fatalf("output = %q", got)
	}
}
