package tuple

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseThreeField(t *testing.T) {
	got, err := Parse("1500 42.5 CWND")
	if err != nil {
		t.Fatal(err)
	}
	want := Tuple{Time: 1500, Value: 42.5, Name: "CWND"}
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestParseTwoField(t *testing.T) {
	got, err := Parse("99 -3")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "" || got.Time != 99 || got.Value != -3 {
		t.Fatalf("got %+v", got)
	}
}

func TestParseNameWithSpaces(t *testing.T) {
	got, err := Parse("10 1 conn errors per sec")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "conn errors per sec" {
		t.Fatalf("name = %q", got.Name)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "abc 1 x", "1 abc x", "12"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseExtraWhitespace(t *testing.T) {
	got, err := Parse("  5   7.5   sig  ")
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != 5 || got.Value != 7.5 || got.Name != "sig" {
		t.Fatalf("got %+v", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(ms int32, v float64, withName bool) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		name := ""
		if withName {
			name = "sig"
		}
		in := Tuple{Time: int64(ms), Value: v, Name: name}
		if ms < 0 {
			in.Time = -in.Time
		}
		out, err := Parse(in.String())
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatValueIntegers(t *testing.T) {
	if FormatValue(42) != "42" {
		t.Fatalf("FormatValue(42) = %q", FormatValue(42))
	}
	if FormatValue(-0.5) != "-0.5" {
		t.Fatalf("FormatValue(-0.5) = %q", FormatValue(-0.5))
	}
}

func TestTimestamp(t *testing.T) {
	tu := Tuple{Time: 1500}
	if tu.Timestamp() != 1500*time.Millisecond {
		t.Fatalf("Timestamp = %v", tu.Timestamp())
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Comment("recorded by test"); err != nil {
		t.Fatal(err)
	}
	in := []Tuple{
		{Time: 0, Value: 1, Name: "a"},
		{Time: 50, Value: 2.5, Name: "b"},
		{Time: 50, Value: 3, Name: "a"},
		{Time: 100, Value: -1, Name: "b"},
	}
	for _, tu := range in {
		if err := w.Write(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(in) {
		t.Fatalf("Count = %d", w.Count())
	}

	r := NewReader(&buf, true)
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d tuples, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("tuple %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\n10 1 x\n   \n# more\n20 2 x\n"
	r := NewReader(strings.NewReader(src), true)
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d tuples", len(out))
	}
}

func TestReaderStrictOrdering(t *testing.T) {
	src := "10 1 x\n5 2 x\n"
	r := NewReader(strings.NewReader(src), true)
	if _, err := r.ReadAll(); err == nil {
		t.Fatal("strict reader should reject out-of-order timestamps")
	}
	r2 := NewReader(strings.NewReader(src), false)
	out, err := r2.ReadAll()
	if err != nil || len(out) != 2 {
		t.Fatalf("lenient reader failed: %v %d", err, len(out))
	}
}

func TestReaderEqualTimesAllowed(t *testing.T) {
	src := "10 1 x\n10 2 y\n"
	r := NewReader(strings.NewReader(src), true)
	out, err := r.ReadAll()
	if err != nil || len(out) != 2 {
		t.Fatalf("equal timestamps should pass strict mode: %v", err)
	}
}

func TestReaderReadEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""), true)
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestReaderBadLineReportsLineNumber(t *testing.T) {
	src := "10 1 x\nbogus line here\n"
	r := NewReader(strings.NewReader(src), true)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should carry line number: %v", err)
	}
}

func TestNames(t *testing.T) {
	in := []Tuple{{Name: "b"}, {Name: "a"}, {Name: "b"}, {Name: "c"}}
	got := Names(in)
	want := []string{"b", "a", "c"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestIsComment(t *testing.T) {
	if !IsComment("# x") || !IsComment("   ") || !IsComment("") {
		t.Fatal("comment detection failed")
	}
	if IsComment("10 1 x") {
		t.Fatal("data line marked as comment")
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	w.Write(Tuple{Time: 1, Value: 1}) //nolint:errcheck
	if err := w.Flush(); err == nil {
		t.Fatal("expected sticky error")
	}
	if err := w.Write(Tuple{Time: 2, Value: 2}); err == nil {
		t.Fatal("writes after failure should keep failing")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestAppendWireRoundTrip(t *testing.T) {
	cases := []Tuple{
		{Time: 1500, Value: 42.5, Name: "CWND"},
		{Time: 0, Value: -3, Name: ""},
		{Time: 123456789, Value: 0.1, Name: "name with spaces"},
		{Time: -7, Value: 1e300, Name: "big"},
	}
	var buf []byte
	for _, want := range cases {
		buf = AppendWire(buf[:0], want)
		if buf[len(buf)-1] != '\n' {
			t.Fatalf("%+v: no trailing newline in %q", want, buf)
		}
		got, err := Parse(string(buf[:len(buf)-1]))
		if err != nil {
			t.Fatalf("%+v: parse back: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: %+v != %+v", got, want)
		}
		// AppendWire and String produce the same wire form.
		if string(buf) != want.String()+"\n" {
			t.Fatalf("AppendWire %q != String %q", buf, want.String())
		}
	}
}

func TestAppendWireBatch(t *testing.T) {
	batch := []Tuple{{Time: 1, Value: 2, Name: "a"}, {Time: 3, Value: 4, Name: "b"}}
	out := AppendWireBatch(nil, batch)
	if string(out) != "1 2 a\n3 4 b\n" {
		t.Fatalf("AppendWireBatch = %q", out)
	}
}
