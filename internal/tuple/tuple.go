// Package tuple implements gscope's tuple formats: the §3.3 textual format
// described here — the on-wire and on-disk representation used for
// streaming signals to a scope, recording them, and replaying them — and
// the optional v3 compressed binary framing (see binary.go and the
// normative spec in docs/WIRE.md) that interleaves with the text stream
// for bandwidth-sensitive connections. Text is the universal fallback;
// every peer and every file reader understands it.
//
// Each tuple is one line of text holding a millisecond timestamp, a value,
// and a signal name:
//
//	1500 42.5 CWND
//
// As a special case, a stream carrying only one signal may omit the name,
// making tuples plain time-value pairs:
//
//	1500 42.5
//
// Timestamps in a well-formed stream are in non-decreasing order; Reader can
// enforce that.
//
// # Grammar
//
// A stream is a sequence of newline-terminated lines:
//
//	stream  = { line } ;
//	line    = comment | tuple ;
//	comment = [ ws ] [ "#" any-text ] newline ;       (blank lines included)
//	tuple   = [ ws ] time ws value [ ws name ] [ ws ] newline ;
//	time    = integer ;                               (milliseconds)
//	value   = Go floating-point literal ;             (strconv.ParseFloat)
//	name    = any-text ;                              (may contain spaces)
//	ws      = one or more spaces ;
//
// The name field, when present, extends to the end of the line, so signal
// names may contain spaces — but not line breaks, and not leading or
// trailing whitespace, which Parse trims away: ValidateName rejects such
// names at the registration APIs, and the encoders sanitize them
// (CleanName) rather than emit lines that parse back differently or, for a
// crafted name with an embedded newline, forge extra tuples. Values
// round-trip through FormatValue: integral values print without a decimal
// point, everything else with 'g' formatting at full precision.
//
// # Embedded protocols
//
// Because readers skip comments, higher layers frame richer protocols with
// '#' lines while staying valid tuple streams. Recorders stamp files with
// "# ..." metadata headers, and the netscope fan-out hub frames its
// subscriber handshake and connect-time snapshot this way:
//
//	# gscope-hub 1
//	# snapshot tuples=2 window-ms=5000
//	1500 42.5 CWND
//	1550 41 CWND
//	# snapshot-end
//
// (see package repro/internal/netscope for that protocol's semantics), and
// the flight recorder frames its on-disk segments the same way:
//
//	# gscope-reclog 1 seq=3
//	1500 42.5 CWND
//	1550 41 CWND
//	# seal tuples=2 first=1500 last=1550
//
// (see package repro/internal/reclog for the segment/rotation semantics).
// A consumer using Reader sees only the tuples; a protocol-aware consumer
// inspects the comment lines before discarding them.
package tuple

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ErrBadLine tags data-level stream errors from Reader.Read — a line that
// does not parse, or an out-of-order timestamp in strict mode — so
// consumers can distinguish bad data (skippable, or a torn tail in an
// append-only file) from transport/I-O errors, which Read returns unwrapped
// and which mean the rest of the stream is unreadable.
var ErrBadLine = errors.New("bad tuple line")

// ErrBadName tags signal names the textual wire format cannot carry
// faithfully (see ValidateName). Registration APIs and Writer.Write reject
// such names with an error wrapping this one.
var ErrBadName = errors.New("invalid signal name")

// ValidateName reports whether a signal name survives the wire format
// unchanged. The name is the trailing field of a tuple line, so interior
// spaces are fine, but a newline or carriage return splits the line —
// worse than losing the name, it lets a crafted name forge whole tuples —
// and leading or trailing whitespace is silently dropped by Parse's
// trimming. Both are rejected. The empty name is valid: it selects the
// two-field tuple form.
//
//gscope:hotpath
func ValidateName(name string) error {
	if name == "" {
		return nil
	}
	if strings.ContainsAny(name, "\n\r") {
		return fmt.Errorf("%w: %q contains a line break", ErrBadName, name) //gscope:allow hotpath error construction happens only when a name is rejected
	}
	if strings.TrimSpace(name) != name {
		return fmt.Errorf("%w: %q has leading or trailing whitespace", ErrBadName, name) //gscope:allow hotpath error construction happens only when a name is rejected
	}
	return nil
}

// CleanName returns the closest valid form of name: line breaks become
// spaces and surrounding whitespace is trimmed. Valid names come back
// unchanged (and unallocated). It is the sanitization AppendWire applies to
// names it cannot reject. The slow path below the nameClean check allocates,
// but only for names that failed validation — never for registered names.
//
//gscope:hotpath
func CleanName(name string) string {
	if nameClean(name) {
		return name
	}
	if ValidateName(name) == nil {
		return name // multi-byte edge rune that is not a space
	}
	//gscope:allow hotpath sanitizing slow path, reached only for invalid names
	name = strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, name)
	return strings.TrimSpace(name)
}

// nameClean is the fast-path check behind CleanName/AppendWire: ASCII edge
// bytes that TrimSpace would keep, and no line breaks anywhere. Multi-byte
// edge runes fall through to the slow path, which handles Unicode spaces.
//
//gscope:hotpath
func nameClean(name string) bool {
	if name == "" {
		return true
	}
	if strings.IndexByte(name, '\n') >= 0 || strings.IndexByte(name, '\r') >= 0 {
		return false
	}
	first, last := name[0], name[len(name)-1]
	return !edgeSuspect(first) && !edgeSuspect(last)
}

// edgeSuspect reports whether a leading/trailing byte could be trimmed by
// TrimSpace. Bytes ≥ 0x80 may start or end a Unicode space rune, so they
// are suspect and resolved on the slow path.
//
//gscope:hotpath
func edgeSuspect(b byte) bool {
	switch b {
	case ' ', '\t', '\v', '\f':
		return true
	}
	return b >= 0x80
}

// Tuple is one timestamped sample of a named signal. Name may be empty in
// the single-signal form.
type Tuple struct {
	// Time is the sample timestamp in milliseconds since the start of the
	// stream (the paper's streams use relative millisecond clocks).
	Time int64
	// Value is the sample value.
	Value float64
	// Name identifies the signal; empty in the two-field form.
	Name string
}

// Timestamp converts the millisecond time to a Duration offset.
//
//gscope:hotpath
func (t Tuple) Timestamp() time.Duration { return time.Duration(t.Time) * time.Millisecond }

// Sample is one timestamped value without a name — the payload of the
// probe fast paths, where the signal identity travels once per batch (as a
// SignalID or probe handle) instead of once per sample. At keeps the
// caller's full sub-millisecond precision; encoding truncates to the
// millisecond wire granularity exactly like Tuple.
type Sample struct {
	// At is the sample timestamp as an offset on the stream timeline.
	At time.Duration
	// Value is the sample value.
	Value float64
}

// Tuple converts the sample to a named wire tuple.
//
//gscope:hotpath
func (s Sample) Tuple(name string) Tuple {
	return Tuple{Time: s.At.Milliseconds(), Value: s.Value, Name: name}
}

// String formats the tuple in wire form (without a trailing newline).
// Names the wire format cannot carry are sanitized the way AppendWire
// sanitizes them.
func (t Tuple) String() string {
	b := AppendWire(nil, t)
	return string(b[:len(b)-1])
}

// FormatValue renders a sample value compactly: integers without a decimal
// point, other values with enough digits to round-trip.
func FormatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// AppendWire appends the newline-terminated wire form of t to dst and
// returns the extended slice. It is the allocation-free encoder behind the
// batch streaming paths (client writer, hub broadcast); the result parses
// back with Parse. AppendWire cannot return an error, so a name the wire
// format cannot carry (see ValidateName) is sanitized with CleanName
// instead of corrupting the stream; valid names — the only kind the
// registration APIs hand out — are encoded byte-identically to before.
//
//gscope:hotpath
func AppendWire(dst []byte, t Tuple) []byte {
	return AppendWirePrepared(dst, t.Time, t.Value, CleanName(t.Name))
}

// AppendWirePrepared encodes one line from parts, trusting name to be
// already validated or sanitized (CleanName output, an interned canonical
// name). It is the shared tail of AppendWire and the run encoders: batch
// paths that encode many tuples of one signal clean the name once per run
// and call this per tuple.
//
//gscope:hotpath
func AppendWirePrepared(dst []byte, timeMS int64, v float64, name string) []byte {
	dst = strconv.AppendInt(dst, timeMS, 10)
	dst = append(dst, ' ')
	if v == float64(int64(v)) {
		dst = strconv.AppendInt(dst, int64(v), 10)
	} else {
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	if name != "" {
		dst = append(dst, ' ')
		dst = append(dst, name...)
	}
	return append(dst, '\n')
}

// AppendWireBatch appends every tuple in batch to dst in wire form.
// Publisher batches overwhelmingly carry runs of one signal, so the name
// is validated once per run, not once per tuple.
//
//gscope:hotpath
func AppendWireBatch(dst []byte, batch []Tuple) []byte {
	for i := 0; i < len(batch); {
		name := batch[i].Name
		clean := CleanName(name)
		j := i
		for ; j < len(batch) && batch[j].Name == name; j++ {
			dst = AppendWirePrepared(dst, batch[j].Time, batch[j].Value, clean)
		}
		i = j
	}
	return dst
}

// Parse decodes one tuple line. Both the two-field (time value) and
// three-field (time value name) forms are accepted. Signal names may
// contain spaces: everything after the second field is the name.
func Parse(line string) (Tuple, error) {
	s := strings.TrimSpace(line)
	if s == "" {
		return Tuple{}, fmt.Errorf("tuple: empty line")
	}
	timeField, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return Tuple{}, fmt.Errorf("tuple: %q: missing value field", line)
	}
	valueField, name, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)

	ms, err := strconv.ParseInt(timeField, 10, 64)
	if err != nil {
		return Tuple{}, fmt.Errorf("tuple: %q: bad time: %w", line, err)
	}
	v, err := strconv.ParseFloat(valueField, 64)
	if err != nil {
		return Tuple{}, fmt.Errorf("tuple: %q: bad value: %w", line, err)
	}
	return Tuple{Time: ms, Value: v, Name: name}, nil
}

// IsComment reports whether a line is blank or a '#' comment, both of which
// readers skip.
func IsComment(line string) bool {
	s := strings.TrimSpace(line)
	return s == "" || strings.HasPrefix(s, "#")
}

// Writer serializes tuples to an underlying stream, one per line.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one tuple. A name the wire format cannot carry (see
// ValidateName) is rejected with an error wrapping ErrBadName; the rejection
// is per tuple — it does not poison the writer the way an I/O error does.
func (tw *Writer) Write(t Tuple) error {
	if tw.err != nil {
		return tw.err
	}
	if err := ValidateName(t.Name); err != nil {
		return err
	}
	_, tw.err = tw.w.WriteString(t.String())
	if tw.err == nil {
		tw.err = tw.w.WriteByte('\n')
	}
	if tw.err == nil {
		tw.n++
	}
	return tw.err
}

// Comment emits a '#' comment line (recorders stamp files with metadata).
func (tw *Writer) Comment(text string) error {
	if tw.err != nil {
		return tw.err
	}
	for _, line := range strings.Split(text, "\n") {
		if _, tw.err = fmt.Fprintf(tw.w, "# %s\n", line); tw.err != nil {
			return tw.err
		}
	}
	return nil
}

// Count returns the number of tuples written.
func (tw *Writer) Count() int { return tw.n }

// Flush flushes buffered output.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	tw.err = tw.w.Flush()
	return tw.err
}

// Reader decodes a tuple stream line by line, skipping comments and blank
// lines.
type Reader struct {
	sc       *bufio.Scanner
	strict   bool
	lastTime int64
	started  bool
	line     int
}

// NewReader wraps r. When strict is true, Read rejects tuples whose
// timestamps go backwards, enforcing the §3.3 ordering requirement.
func NewReader(r io.Reader, strict bool) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Reader{sc: sc, strict: strict}
}

// Read returns the next tuple, or io.EOF at end of stream.
func (tr *Reader) Read() (Tuple, error) {
	for tr.sc.Scan() {
		tr.line++
		line := tr.sc.Text()
		if IsComment(line) {
			continue
		}
		t, err := Parse(line)
		if err != nil {
			return Tuple{}, fmt.Errorf("line %d: %w: %w", tr.line, ErrBadLine, err)
		}
		if tr.strict && tr.started && t.Time < tr.lastTime {
			return Tuple{}, fmt.Errorf("line %d: %w: time %d before previous %d", tr.line, ErrBadLine, t.Time, tr.lastTime)
		}
		tr.lastTime = t.Time
		tr.started = true
		return t, nil
	}
	if err := tr.sc.Err(); err != nil {
		return Tuple{}, err
	}
	return Tuple{}, io.EOF
}

// ReadAll consumes the stream and returns every tuple.
func (tr *Reader) ReadAll() ([]Tuple, error) {
	var out []Tuple
	for {
		t, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// Names returns the distinct signal names in tuples, in first-seen order.
// A stream in two-field form yields a single empty name.
func Names(tuples []Tuple) []string {
	seen := make(map[string]bool)
	var names []string
	for _, t := range tuples {
		if !seen[t.Name] {
			seen[t.Name] = true
			names = append(names, t.Name)
		}
	}
	return names
}
