package tuple_test

// Fuzzing for the v3 binary wire codec. The differential target is the
// spec's enforcement arm: every invariant it asserts traces to a clause of
// docs/WIRE.md (cited inline). The raw target throws arbitrary bytes at
// the mixed-stream decoder, which must never panic and must fail closed
// (sticky ErrBadFrame) on malformed framing.

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/tuple"
)

// FuzzWireV3Differential: a generated tuple stream encoded as text and as
// v3 binary must decode to identical tuple sequences.
//
//   - WIRE.md §B8 (equivalence): binary decode == text decode, tuple for
//     tuple, in order — names, timestamps and value bits all equal.
//   - WIRE.md §B4 (self-contained runs): the stream is encoded in batches
//     chosen by the fuzzer, so run/frame boundaries move; decode must not.
//   - WIRE.md §B3 (dictionary): names repeat across batches, so later
//     batches exercise warm-dictionary encoding with no DICT re-emission.
//   - WIRE.md §B1 (marker): text and binary interleave in one stream when
//     the fuzzer opts some batches into text.
func FuzzWireV3Differential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("differential decision bytes"))
	f.Add(bytes.Repeat([]byte{0xf5, 0x01, 0x9c}, 50))
	f.Add(bytes.Repeat([]byte{0x07, 0x80, 0xff, 0x00}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		ts := src.Tuples(512, false)

		// Slice the payload into batches at fuzzer-chosen points and
		// encode each batch text and binary; interleave some batches as
		// text inside the "binary" stream (legal per §B1).
		enc := tuple.NewBinaryEncoder()
		var text, mixed []byte
		for i := 0; i < len(ts); {
			n := 1 + src.Intn(64)
			if i+n > len(ts) {
				n = len(ts) - i
			}
			batch := ts[i : i+n]
			text = tuple.AppendWireBatch(text, batch)
			if src.Intn(4) == 0 {
				mixed = tuple.AppendWireBatch(mixed, batch)
			} else {
				mixed = enc.AppendBatch(mixed, batch)
			}
			i += n
		}

		decode := func(stream []byte) []tuple.Tuple {
			sr := tuple.NewStreamReader(bytes.NewReader(stream))
			var out []tuple.Tuple
			for {
				tu, err := sr.Read()
				if err == io.EOF {
					return out
				}
				if err != nil {
					t.Fatalf("decoding: %v\nstream: %q", err, stream)
				}
				out = append(out, tu)
			}
		}
		fromText := decode(text)
		fromMixed := decode(mixed)

		if len(fromText) != len(ts) || len(fromMixed) != len(ts) {
			t.Fatalf("decoded %d text / %d mixed tuples, want %d", len(fromText), len(fromMixed), len(ts))
		}
		for i := range ts {
			if fromText[i] != fromMixed[i] {
				t.Fatalf("tuple %d diverges: text %+v, binary %+v", i, fromText[i], fromMixed[i])
			}
			if fromMixed[i].Name != ts[i].Name || fromMixed[i].Time != ts[i].Time {
				t.Fatalf("tuple %d: decoded %+v, source %+v", i, fromMixed[i], ts[i])
			}
			// §B6: values round trip bit-exactly through the XOR codec.
			if math.Float64bits(fromMixed[i].Value) != math.Float64bits(ts[i].Value) {
				t.Fatalf("tuple %d value bits: %x != %x", i,
					math.Float64bits(fromMixed[i].Value), math.Float64bits(ts[i].Value))
			}
		}

		// §B4: re-decoding the binary stream one byte at a time must agree
		// (frame boundaries never depend on read-chunk boundaries).
		dec := tuple.NewStreamDecoder()
		var rechunked []tuple.Tuple
		onLine := func(ln string) {
			if tuple.IsComment(ln) {
				return
			}
			tu, err := tuple.Parse(ln)
			if err != nil {
				t.Fatalf("parse %q: %v", ln, err)
			}
			rechunked = append(rechunked, tu)
		}
		step := 1 + src.Intn(7)
		for off := 0; off < len(mixed); off += step {
			end := off + step
			if end > len(mixed) {
				end = len(mixed)
			}
			if err := dec.Feed(mixed[off:end], onLine, func(b []tuple.Tuple) {
				rechunked = append(rechunked, b...)
			}); err != nil {
				t.Fatalf("incremental decode: %v", err)
			}
		}
		dec.Tail(onLine)
		if len(rechunked) != len(ts) {
			t.Fatalf("incremental decode yielded %d tuples, want %d", len(rechunked), len(ts))
		}
	})
}

// FuzzBinaryStream: arbitrary bytes through the mixed-stream decoder. The
// decoder must never panic, must keep every reported error under
// ErrBadFrame/ErrBadLine semantics (§B7: fail closed and sticky), and
// whatever it does decode must be re-encodable.
func FuzzBinaryStream(f *testing.F) {
	f.Add([]byte("1500 42.5 CWND\n"))
	f.Add([]byte{tuple.FrameMarker, tuple.FrameDict, 2, 0, 'a'})
	f.Add([]byte{tuple.FrameMarker, tuple.FrameData, 4, 0, 1, 2, 0})
	seed := tuple.NewBinaryEncoder().AppendBatch(nil, []tuple.Tuple{
		{Time: 1500, Value: 42.5, Name: "CWND"},
		{Time: 1550, Value: 41, Name: "CWND"},
	})
	f.Add(seed)
	f.Add(append(append([]byte("10 1 x\n"), seed...), 0xf5, 0x7f, 0x02))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := tuple.NewStreamDecoder()
		var decoded []tuple.Tuple
		err := dec.Feed(data, func(string) {}, func(b []tuple.Tuple) {
			decoded = append(decoded, b...)
		})
		if err != nil {
			// §B7: the error must be sticky — further feeds keep failing.
			if err2 := dec.Feed([]byte("1 2 a\n"), func(string) {}, func([]tuple.Tuple) {}); err2 == nil {
				t.Fatalf("decoder accepted data after framing error %v", err)
			}
			return
		}
		dec.Tail(func(string) {})
		// Whatever decoded must survive a binary re-encode round trip.
		if len(decoded) > 0 {
			enc := tuple.NewBinaryEncoder()
			re := enc.AppendBatch(nil, decoded)
			sr := tuple.NewStreamReader(bytes.NewReader(re))
			for i := 0; ; i++ {
				tu, rerr := sr.Read()
				if rerr == io.EOF {
					if i != len(decoded) {
						t.Fatalf("re-encode yielded %d tuples, want %d", i, len(decoded))
					}
					break
				}
				if rerr != nil {
					t.Fatalf("re-encoded stream unreadable: %v", rerr)
				}
				if i >= len(decoded) || math.Float64bits(tu.Value) != math.Float64bits(decoded[i].Value) ||
					tu.Time != decoded[i].Time || tuple.CleanName(decoded[i].Name) != tu.Name {
					t.Fatalf("re-encode tuple %d mismatch: %+v vs %+v", i, tu, decoded[i])
				}
			}
		}
	})
}
