package tuple

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// JSON batch encoding, the web gateway's payload format: a batch renders
// as a JSON array of [timeMS, value, "name"] triples — the most compact
// shape a browser can index without a schema. Appenders only, into
// caller-retained buffers, so the per-client stream encode path stays
// allocation-free in steady state like the wire encoders.

// AppendJSONBatch appends batch as a JSON array of [timeMS, value, "name"]
// triples to dst and returns the extended slice. Values JSON cannot carry
// (NaN, ±Inf) encode as null; names encode as JSON strings with full
// escaping (the §3.3 grammar allows spaces and arbitrary non-newline
// bytes in names).
//
//gscope:hotpath
func AppendJSONBatch(dst []byte, batch []Tuple) []byte {
	dst = append(dst, '[')
	for i, t := range batch {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = AppendJSONTuple(dst, t)
	}
	return append(dst, ']')
}

// AppendJSONTuple appends one [timeMS, value, "name"] triple to dst.
//
//gscope:hotpath
func AppendJSONTuple(dst []byte, t Tuple) []byte {
	dst = append(dst, '[')
	dst = strconv.AppendInt(dst, t.Time, 10)
	dst = append(dst, ',')
	dst = AppendJSONValue(dst, t.Value)
	dst = append(dst, ',')
	dst = AppendJSONString(dst, t.Name)
	return append(dst, ']')
}

// AppendJSONValue appends v as a JSON number, compactly: integers without
// a decimal point (FormatValue's convention), NaN and ±Inf as null (JSON
// has no encoding for them).
//
//gscope:hotpath
func AppendJSONValue(dst []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(dst, "null"...)
	}
	if v == float64(int64(v)) {
		return strconv.AppendInt(dst, int64(v), 10)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

const hexDigits = "0123456789abcdef"

// AppendJSONString appends s as a JSON string literal: quote and
// backslash escaped, control bytes as \u00XX, invalid UTF-8 bytes as the
// replacement character (JSON strings must be valid Unicode).
//
//gscope:hotpath
func AppendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			switch {
			case b == '"' || b == '\\':
				dst = append(dst, '\\', b)
			case b >= 0x20:
				dst = append(dst, b)
			case b == '\n':
				dst = append(dst, '\\', 'n')
			case b == '\r':
				dst = append(dst, '\\', 'r')
			case b == '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, "�"...)
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}
