package tuple_test

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/tuple"
)

// decodeStream runs a whole stream through a StreamReader and returns
// every decoded tuple (from either encoding, comments skipped).
func decodeStream(t *testing.T, stream []byte) []tuple.Tuple {
	t.Helper()
	sr := tuple.NewStreamReader(bytes.NewReader(stream))
	var out []tuple.Tuple
	for {
		tu, err := sr.Read()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decoding stream: %v\nstream: %q", err, stream)
		}
		out = append(out, tu)
	}
}

func sampleBatch() []tuple.Tuple {
	return []tuple.Tuple{
		{Time: 1500, Value: 42.5, Name: "CWND"},
		{Time: 1510, Value: 42.5, Name: "CWND"},
		{Time: 1520, Value: 43, Name: "CWND"},
		{Time: 1520, Value: -1, Name: "rtt ms"},
		{Time: 1531, Value: 0.125, Name: "rtt ms"},
		{Time: 1542, Value: 0.125, Name: ""},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	batch := sampleBatch()
	enc := tuple.NewBinaryEncoder()
	stream := enc.AppendBatch(nil, batch)
	got := decodeStream(t, stream)
	if len(got) != len(batch) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(batch))
	}
	for i := range got {
		if got[i] != batch[i] {
			t.Fatalf("tuple %d: %+v != %+v", i, got[i], batch[i])
		}
	}
}

// Encoding the same signals again must not re-emit dictionary frames, and
// the stream must stay decodable across batches.
func TestBinaryDictOncePerSignal(t *testing.T) {
	batch := sampleBatch()
	enc := tuple.NewBinaryEncoder()
	first := enc.AppendBatch(nil, batch)
	second := enc.AppendBatch(nil, batch)
	if bytes.Contains(second, []byte("CWND")) {
		t.Fatalf("second batch re-emitted a dictionary name: %q", second)
	}
	if len(second) >= len(first) {
		t.Fatalf("second batch (%d bytes) not smaller than first (%d) despite warm dictionary", len(second), len(first))
	}
	got := decodeStream(t, append(append([]byte(nil), first...), second...))
	if want := len(batch) * 2; len(got) != want {
		t.Fatalf("decoded %d tuples, want %d", len(got), want)
	}
}

// Special float values must survive bit-exactly: the XOR codec operates on
// raw IEEE-754 bits, so NaN payloads, infinities and signed zero are all
// preserved (text normalizes -0; binary does not need to).
func TestBinaryValueBitExact(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1, -1, 0.1, math.MaxFloat64,
		math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1), math.NaN(),
		math.Float64frombits(0x7ff8000000000123)} // NaN with a payload
	batch := make([]tuple.Tuple, len(vals))
	for i, v := range vals {
		batch[i] = tuple.Tuple{Time: int64(i) * 7, Value: v, Name: "x"}
	}
	enc := tuple.NewBinaryEncoder()
	got := decodeStream(t, enc.AppendBatch(nil, batch))
	if len(got) != len(batch) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(batch))
	}
	for i := range got {
		if math.Float64bits(got[i].Value) != math.Float64bits(batch[i].Value) {
			t.Fatalf("value %d: %x != %x", i,
				math.Float64bits(got[i].Value), math.Float64bits(batch[i].Value))
		}
	}
}

// Extreme timestamps (including ones whose deltas overflow int64) must
// round trip exactly: both sides use wrapping two's-complement arithmetic.
func TestBinaryTimestampExtremes(t *testing.T) {
	times := []int64{0, -1, 1, math.MaxInt64, math.MinInt64, 12345, math.MinInt64 + 1}
	batch := make([]tuple.Tuple, len(times))
	for i, ms := range times {
		batch[i] = tuple.Tuple{Time: ms, Value: float64(i), Name: "t"}
	}
	enc := tuple.NewBinaryEncoder()
	got := decodeStream(t, enc.AppendBatch(nil, batch))
	for i := range got {
		if got[i].Time != batch[i].Time {
			t.Fatalf("time %d: %d != %d", i, got[i].Time, batch[i].Time)
		}
	}
}

// A mixed stream — text lines, comments, binary frames interleaved —
// decodes to all tuples in stream order.
func TestBinaryMixedStream(t *testing.T) {
	enc := tuple.NewBinaryEncoder()
	var stream []byte
	stream = append(stream, "# a comment\n1000 1 text.sig\n"...)
	stream = enc.AppendBatch(stream, []tuple.Tuple{{Time: 1010, Value: 2, Name: "bin.sig"}})
	stream = append(stream, "1020 3 text.sig\r\n"...)
	stream = enc.AppendBatch(stream, []tuple.Tuple{{Time: 1030, Value: 4, Name: "bin.sig"}})
	want := []tuple.Tuple{
		{Time: 1000, Value: 1, Name: "text.sig"},
		{Time: 1010, Value: 2, Name: "bin.sig"},
		{Time: 1020, Value: 3, Name: "text.sig"},
		{Time: 1030, Value: 4, Name: "bin.sig"},
	}
	got := decodeStream(t, stream)
	if len(got) != len(want) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("tuple %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// The incremental decoder must produce identical results however the
// stream is sliced — here, one byte at a time.
func TestStreamDecoderIncremental(t *testing.T) {
	enc := tuple.NewBinaryEncoder()
	var stream []byte
	stream = enc.AppendBatch(stream, sampleBatch())
	stream = append(stream, "2000 9 late\n"...)
	stream = enc.AppendBatch(stream, sampleBatch())

	whole := decodeStream(t, stream)

	dec := tuple.NewStreamDecoder()
	var got []tuple.Tuple
	onLine := func(ln string) {
		if tuple.IsComment(ln) {
			return
		}
		tu, err := tuple.Parse(ln)
		if err != nil {
			t.Fatalf("parse %q: %v", ln, err)
		}
		got = append(got, tu)
	}
	for i := range stream {
		if err := dec.Feed(stream[i:i+1], onLine, func(ts []tuple.Tuple) {
			got = append(got, ts...)
		}); err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
	}
	dec.Tail(onLine)
	if len(got) != len(whole) {
		t.Fatalf("byte-wise decode yielded %d tuples, whole-stream %d", len(got), len(whole))
	}
	for i := range got {
		if got[i] != whole[i] {
			t.Fatalf("tuple %d: %+v != %+v", i, got[i], whole[i])
		}
	}
}

// AppendDict catch-up plus redundant re-declarations must decode cleanly,
// and AppendBatchReadOnly must never invent IDs: unknown names ride as
// text.
func TestBinaryDictCatchupAndReadOnly(t *testing.T) {
	enc := tuple.NewBinaryEncoder()
	live := enc.AppendBatch(nil, sampleBatch()) // declares CWND, "rtt ms", ""

	// A late joiner's stream: catch-up dict, then a read-only encoding of
	// tuples whose names are partly unknown to the shared dictionary.
	joiner := enc.AppendDict(nil)
	joiner = enc.AppendDict(joiner) // redundant catch-up must be tolerated
	private := []tuple.Tuple{
		{Time: 10, Value: 1, Name: "CWND"},
		{Time: 20, Value: 2, Name: "never.declared"},
	}
	joiner = enc.AppendBatchReadOnly(joiner, private)
	if !bytes.Contains(joiner, []byte("20 2 never.declared\n")) {
		t.Fatalf("read-only encode should fall back to text for unknown names: %q", joiner)
	}
	got := decodeStream(t, joiner)
	if len(got) != len(private) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(private))
	}
	for i := range got {
		if got[i] != private[i] {
			t.Fatalf("tuple %d: %+v != %+v", i, got[i], private[i])
		}
	}
	// The shared dictionary must be unchanged by the read-only pass.
	if enc.Signals() != 3 {
		t.Fatalf("read-only encode mutated the dictionary: %d signals", enc.Signals())
	}
	_ = live
}

func TestBinaryEncoderReset(t *testing.T) {
	enc := tuple.NewBinaryEncoder()
	first := enc.AppendBatch(nil, sampleBatch())
	enc.Reset()
	if enc.Signals() != 0 {
		t.Fatalf("Reset left %d signals", enc.Signals())
	}
	second := enc.AppendBatch(nil, sampleBatch())
	if !bytes.Equal(first, second) {
		t.Fatalf("post-Reset encoding differs from a fresh stream")
	}
	// Each stream decodes independently from byte zero.
	decodeStream(t, second)
}

func TestStreamDecoderErrors(t *testing.T) {
	enc := tuple.NewBinaryEncoder()
	valid := enc.AppendBatch(nil, []tuple.Tuple{{Time: 1, Value: 2, Name: "a"}})

	cases := map[string][]byte{
		// DATA frame (type 0x02) with a run referencing undeclared id 7.
		"undeclared id": {tuple.FrameMarker, tuple.FrameData, 2, 7, 1},
		// DICT frame with id 5 when the dictionary is empty (a gap).
		"dict gap": {tuple.FrameMarker, tuple.FrameDict, 2, 5, 'x'},
		// DICT name the text grammar cannot carry (embedded newline).
		"dict bad name": {tuple.FrameMarker, tuple.FrameDict, 3, 0, 'x', '\n'},
		// Declared payload length over the cap.
		"oversized payload": append([]byte{tuple.FrameMarker, tuple.FrameData},
			0x81, 0x80, 0xc0, 0x00), // uvarint > MaxFramePayload
		// Redeclaring id 0 with a different name.
		"dict redeclare": append(append([]byte(nil), valid...),
			tuple.FrameMarker, tuple.FrameDict, 2, 0, 'z'),
	}
	for name, stream := range cases {
		dec := tuple.NewStreamDecoder()
		err := dec.Feed(stream, func(string) {}, func([]tuple.Tuple) {})
		if !errors.Is(err, tuple.ErrBadFrame) {
			t.Errorf("%s: got %v, want ErrBadFrame", name, err)
			continue
		}
		// The error must be sticky.
		if err2 := dec.Feed([]byte("1 2 c\n"), func(string) {}, func([]tuple.Tuple) {}); !errors.Is(err2, tuple.ErrBadFrame) {
			t.Errorf("%s: error not sticky: %v", name, err2)
		}
	}
}

// An unterminated trailing text line is delivered by Tail; a torn trailing
// frame is silently discarded (the torn-tail rule for crash recovery).
func TestStreamDecoderTail(t *testing.T) {
	dec := tuple.NewStreamDecoder()
	var lines []string
	onLine := func(ln string) { lines = append(lines, ln) }
	if err := dec.Feed([]byte("1 2 a\n3 4 unterminated"), onLine, nil); err != nil {
		t.Fatal(err)
	}
	dec.Tail(onLine)
	if len(lines) != 2 || lines[1] != "3 4 unterminated" {
		t.Fatalf("tail line not delivered: %q", lines)
	}

	enc := tuple.NewBinaryEncoder()
	stream := enc.AppendBatch(nil, sampleBatch())
	dec = tuple.NewStreamDecoder()
	var tuples int
	if err := dec.Feed(stream[:len(stream)-3], func(string) {}, func(ts []tuple.Tuple) {
		tuples += len(ts)
	}); err != nil {
		t.Fatal(err)
	}
	dec.Tail(func(ln string) { t.Fatalf("torn frame surfaced as text line %q", ln) })
	if tuples != 0 {
		t.Fatalf("torn frame yielded %d tuples", tuples)
	}
}

// StreamReader surfaces a bad text line as ErrBadLine after delivering
// everything decoded before it — the same torn-tail contract tuple.Reader
// gives the flight recorder.
func TestStreamReaderBadLine(t *testing.T) {
	enc := tuple.NewBinaryEncoder()
	stream := enc.AppendBatch(nil, []tuple.Tuple{{Time: 1, Value: 2, Name: "a"}})
	stream = append(stream, "not a tuple at all\n"...)
	sr := tuple.NewStreamReader(bytes.NewReader(stream))
	if _, err := sr.Read(); err != nil {
		t.Fatalf("first tuple: %v", err)
	}
	if _, err := sr.Read(); !errors.Is(err, tuple.ErrBadLine) {
		t.Fatalf("got %v, want ErrBadLine", err)
	}
	if _, err := sr.Read(); !errors.Is(err, tuple.ErrBadLine) {
		t.Fatalf("error not sticky: %v", err)
	}
}

// Unknown frame types must be skipped by length, so future frame kinds do
// not break old decoders.
func TestStreamDecoderSkipsUnknownFrames(t *testing.T) {
	stream := []byte{tuple.FrameMarker, 0x7e, 3, 0xde, 0xad, 0xbf}
	stream = append(stream, "5 6 after\n"...)
	var got []string
	dec := tuple.NewStreamDecoder()
	if err := dec.Feed(stream, func(ln string) { got = append(got, ln) }, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "5 6 after" {
		t.Fatalf("stream after unknown frame mangled: %q", got)
	}
}

// Names that need cleaning must decode equal to what the text encoder
// would have produced for the same tuples.
func TestBinaryNameCleaning(t *testing.T) {
	dirty := []tuple.Tuple{{Time: 1, Value: 2, Name: " padded "}}
	text := tuple.AppendWireBatch(nil, dirty)
	wantT, err := tuple.Parse(strings.TrimSuffix(string(text), "\n"))
	if err != nil {
		t.Fatal(err)
	}
	enc := tuple.NewBinaryEncoder()
	got := decodeStream(t, enc.AppendBatch(nil, dirty))
	if len(got) != 1 || got[0] != wantT {
		t.Fatalf("binary decode %+v, text decode %+v", got, wantT)
	}
}

// The steady-state encode path must not allocate: dictionaries warm, the
// destination buffer reused — the contract the publish-path benchmark
// gates.
func TestBinaryEncoderZeroAlloc(t *testing.T) {
	enc := tuple.NewBinaryEncoder()
	batch := make([]tuple.Tuple, 256)
	for i := range batch {
		batch[i] = tuple.Tuple{Time: int64(1000 + 10*i), Value: float64(i % 17), Name: "steady.signal"}
	}
	buf := enc.AppendBatch(nil, batch)
	allocs := testing.AllocsPerRun(100, func() {
		buf = enc.AppendBatch(buf[:0], batch)
	})
	if allocs != 0 {
		t.Fatalf("steady-state AppendBatch allocates %.1f times per batch", allocs)
	}
}
