package tuple

import (
	"strings"
	"testing"
)

func TestAppendControlParseControlRoundTrip(t *testing.T) {
	line := AppendControl(nil, "gscope-hub", "2", "signals=cpu.*,mem", "max-rate=30")
	if got, want := string(line), "# gscope-hub 2 signals=cpu.*,mem max-rate=30\n"; got != want {
		t.Fatalf("encoded %q, want %q", got, want)
	}
	f, ok := ParseControl(strings.TrimSuffix(string(line), "\n"))
	if !ok {
		t.Fatal("ParseControl rejected its own encoding")
	}
	if f.Verb != "gscope-hub" || f.Arg(0) != "2" {
		t.Fatalf("frame = %+v", f)
	}
	if v, ok := f.Lookup("signals"); !ok || v != "cpu.*,mem" {
		t.Fatalf("signals = %q ok=%v", v, ok)
	}
	if f.Float("max-rate", 0) != 30 {
		t.Fatalf("max-rate = %v", f.Float("max-rate", 0))
	}
}

func TestParseControlCompatWithExistingFraming(t *testing.T) {
	// The v1 hub and reclog framing predate this helper; it must read them.
	f, ok := ParseControl("# snapshot tuples=2 window-ms=5000")
	if !ok || f.Verb != "snapshot" {
		t.Fatalf("frame = %+v ok=%v", f, ok)
	}
	if f.Int("tuples", -1) != 2 || f.Int("window-ms", -1) != 5000 {
		t.Fatalf("kv fields wrong: %+v", f)
	}
	if _, ok := ParseControl("1500 42.5 CWND"); ok {
		t.Fatal("tuple line parsed as a control frame")
	}
	if _, ok := ParseControl("#"); ok {
		t.Fatal("blank comment parsed as a control frame")
	}
	if _, ok := ParseControl("   # seal tuples=2 first=1500 last=1550"); !ok {
		t.Fatal("leading whitespace rejected")
	}
}

func TestControlFrameDefaults(t *testing.T) {
	f, _ := ParseControl("# param threshold 5 mode=rw")
	if f.Arg(0) != "threshold" || f.Arg(1) != "5" || f.Arg(5) != "" {
		t.Fatalf("positional args wrong: %+v", f)
	}
	if f.Int("missing", 42) != 42 || f.Float("mode", 7) != 7 {
		t.Fatal("defaults not honored for absent/malformed keys")
	}
	// Empty optional fields are skipped by the encoder.
	if got := string(AppendControl(nil, "params-end", "", "")); got != "# params-end\n" {
		t.Fatalf("empty fields not skipped: %q", got)
	}
}
