package tuple

import (
	"math"
	"runtime"
	"testing"
)

// decodeChunk decodes one self-contained chunk with a fresh decoder.
func decodeChunk(t *testing.T, chunk []byte) []Tuple {
	t.Helper()
	dec := NewStreamDecoder()
	var out []Tuple
	if err := dec.Feed(chunk, func(line string) {
		tt, err := Parse(line)
		if err != nil {
			t.Fatalf("text line %q: %v", line, err)
		}
		out = append(out, tt)
	}, func(b []Tuple) {
		out = append(out, append([]Tuple(nil), b...)...)
	}); err != nil {
		t.Fatalf("Feed: %v", err)
	}
	return out
}

func TestDatagramEncoderSelfContained(t *testing.T) {
	enc := NewDatagramEncoder()
	batches := [][]Tuple{
		{{Time: 100, Value: 1.5, Name: "a"}, {Time: 150, Value: 2, Name: "a"}, {Time: 150, Value: 7, Name: "b"}},
		{{Time: 200, Value: 3, Name: "b"}, {Time: 250, Value: math.NaN(), Name: "a"}},
		{{Time: 300, Value: -0.0, Name: "c"}},
	}
	// Decode each chunk in isolation, deliberately out of order: chunk 1
	// then 0 then 2. Every chunk must carry its own dictionary.
	var chunks [][]byte
	for _, b := range batches {
		chunks = append(chunks, enc.AppendDatagram(nil, b))
	}
	for _, i := range []int{1, 0, 2} {
		got := decodeChunk(t, chunks[i])
		want := batches[i]
		if len(got) != len(want) {
			t.Fatalf("chunk %d: got %d tuples, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k].Time != want[k].Time || got[k].Name != want[k].Name ||
				math.Float64bits(got[k].Value) != math.Float64bits(want[k].Value) {
				t.Fatalf("chunk %d tuple %d: got %+v want %+v", i, k, got[k], want[k])
			}
		}
	}
}

func TestDatagramEncoderLocalIDsDense(t *testing.T) {
	enc := NewDatagramEncoder()
	// First chunk declares a=0, b=1. Second chunk uses b only: a
	// stream-dictionary encoder would emit run ID 1 with no binding; the
	// datagram encoder must re-declare b as chunk-local ID 0.
	enc.AppendDatagram(nil, []Tuple{{Time: 1, Value: 1, Name: "a"}, {Time: 1, Value: 1, Name: "b"}})
	chunk := enc.AppendDatagram(nil, []Tuple{{Time: 2, Value: 2, Name: "b"}})
	got := decodeChunk(t, chunk)
	if len(got) != 1 || got[0].Name != "b" || got[0].Time != 2 {
		t.Fatalf("got %+v, want the single b tuple", got)
	}
}

func TestDatagramEncoderReusedDecoder(t *testing.T) {
	enc := NewDatagramEncoder()
	dec := NewStreamDecoder()
	for i := 0; i < 5; i++ {
		chunk := enc.AppendDatagram(nil, []Tuple{
			{Time: int64(i * 10), Value: float64(i), Name: "x"},
			{Time: int64(i * 10), Value: float64(-i), Name: "y"},
		})
		dec.Reset()
		var n int
		if err := dec.Feed(chunk, func(string) { t.Fatal("unexpected text") },
			func(b []Tuple) { n += len(b) }); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if n != 2 {
			t.Fatalf("chunk %d: decoded %d tuples, want 2", i, n)
		}
	}
}

func TestStreamDecoderResetClearsError(t *testing.T) {
	dec := NewStreamDecoder()
	bad := []byte{FrameMarker, FrameData, 5, 0xff, 0xff, 0xff, 0xff, 0xff}
	if err := dec.Feed(bad, func(string) {}, func([]Tuple) {}); err == nil {
		t.Fatal("malformed frame did not error")
	}
	if err := dec.Feed([]byte("1 2 a\n"), func(string) {}, func([]Tuple) {}); err == nil {
		t.Fatal("sticky error did not stick")
	}
	dec.Reset()
	var lines int
	if err := dec.Feed([]byte("1 2 a\n"), func(string) { lines++ }, func([]Tuple) {}); err != nil {
		t.Fatalf("Feed after Reset: %v", err)
	}
	if lines != 1 {
		t.Fatalf("got %d lines after Reset, want 1", lines)
	}
}

func TestDatagramEncoderZeroAllocSteadyState(t *testing.T) {
	enc := NewDatagramEncoder()
	batch := make([]Tuple, 64)
	for i := range batch {
		name := "sig.a"
		if i%2 == 1 {
			name = "sig.b"
		}
		batch[i] = Tuple{Time: int64(i * 5), Value: float64(i) * 1.25, Name: name}
	}
	var dst []byte
	// Warm the name table and the dst/payload capacities.
	for i := 0; i < 8; i++ {
		dst = enc.AppendDatagram(dst[:0], batch)
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < 200; i++ {
		dst = enc.AppendDatagram(dst[:0], batch)
	}
	runtime.ReadMemStats(&m1)
	if allocs := m1.Mallocs - m0.Mallocs; allocs > 2 {
		t.Fatalf("steady-state AppendDatagram allocated %d times over 200 rounds", allocs)
	}
}
