package tuple

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// This file is the v3 binary wire encoding: a compressed framing that can
// interleave with the §3.3 text stream on the same connection. The
// normative specification — frame grammar, negotiation, error handling,
// worked examples — is docs/WIRE.md; the comments here only summarize it.
//
// A v3 stream is a sequence of text lines and binary frames. Every frame
// opens with FrameMarker (0xF5), a byte that can never begin a UTF-8 text
// line, so the two encodings need no out-of-band mode switch: a decoder
// positioned at a line/frame boundary looks at one byte. Frames carry
// per-stream dense signal IDs (declared by DICT frames once per new name),
// zigzag-varint delta-of-delta timestamps, and byte-aligned XOR-compressed
// float values, columnar per same-signal run. Every DATA run is
// self-contained — its timestamp and value predictors reset at the run
// head — so frames can be sliced, buffered and fanned out independently;
// the ID dictionary is the only cross-frame state.

const (
	// FrameMarker opens every binary frame. 0xF5 is not a valid leading
	// byte anywhere in UTF-8 text (and tuple lines never contain it), so a
	// decoder at a boundary distinguishes text from binary unambiguously
	// (WIRE.md §B1).
	FrameMarker byte = 0xF5
	// FrameDict declares one stream-local signal ID → name binding.
	FrameDict byte = 0x01
	// FrameData carries same-signal runs of compressed tuples.
	FrameData byte = 0x02

	// MaxFramePayload bounds one frame's declared payload length; a frame
	// claiming more is malformed (WIRE.md §B2), which caps how much a
	// decoder ever buffers waiting for a frame to complete.
	MaxFramePayload = 1 << 20

	// maxStreamSignals caps a stream's ID dictionary on both sides. An
	// encoder that hits the cap falls back to text lines for further names
	// (always legal in a mixed stream); a decoder treats a DICT frame past
	// the cap as malformed.
	maxStreamSignals = 1 << 20

	// maxRunTuples bounds one encoded run, and with flushPayload keeps
	// every DATA frame far below MaxFramePayload.
	maxRunTuples = 4096
	// flushPayload is the encoder's soft frame-size threshold: once the
	// pending payload reaches it, the frame is closed.
	flushPayload = 1 << 16

	// maxStreamLine bounds one text line in a mixed stream, matching the
	// line-watch limit the server read path has always enforced.
	maxStreamLine = 1 << 20
)

// ErrBadFrame tags malformed binary framing. Unlike a bad text line —
// skippable, because newlines resynchronize — a bad frame loses the frame
// boundaries, so the rest of the stream is undecodable: connections drop,
// file scans stop at the prefix that decoded (WIRE.md §B7).
var ErrBadFrame = errors.New("bad binary frame")

// errLineTooLong reports a text line exceeding maxStreamLine: the newline
// that would resynchronize the stream was never found, so like bufio's
// ErrTooLong — and unlike ErrBadLine — it is a transport-level failure,
// not a skippable parse error.
var errLineTooLong = fmt.Errorf("tuple: stream line exceeds %d bytes", maxStreamLine)

// zigzag maps a signed delta onto the unsigned varint domain so small
// negative values stay small (WIRE.md §B5).
//
//gscope:hotpath
func zigzag(v int64) uint64 { return uint64(v)<<1 ^ uint64(v>>63) }

//gscope:hotpath
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendXOR appends one XOR-compressed value residual: control byte 0x00
// for a repeat (x == 0), otherwise 1 + 8·L + T for L leading and T
// trailing zero bytes of x, followed by the 8−L−T middle bytes
// most-significant first (WIRE.md §B6).
//
//gscope:hotpath
func appendXOR(dst []byte, x uint64) []byte {
	if x == 0 {
		return append(dst, 0)
	}
	l := bits.LeadingZeros64(x) >> 3
	t := bits.TrailingZeros64(x) >> 3
	dst = append(dst, byte(1+l<<3+t))
	for i := 7 - l; i >= t; i-- {
		dst = append(dst, byte(x>>(uint(i)*8)))
	}
	return dst
}

// readXOR decodes one value residual, returning the remaining payload.
func readXOR(p []byte) (uint64, []byte, error) {
	if len(p) == 0 {
		return 0, nil, fmt.Errorf("%w: truncated value", ErrBadFrame)
	}
	c := p[0]
	p = p[1:]
	if c == 0 {
		return 0, p, nil
	}
	c--
	l, t := int(c>>3), int(c&7)
	if l+t > 7 {
		return 0, nil, fmt.Errorf("%w: bad value control byte %#x", ErrBadFrame, c+1)
	}
	m := 8 - l - t
	if len(p) < m {
		return 0, nil, fmt.Errorf("%w: truncated value", ErrBadFrame)
	}
	var x uint64
	for i := 0; i < m; i++ {
		x = x<<8 | uint64(p[i])
	}
	return x << (uint(t) * 8), p[m:], nil
}

// BinaryEncoder encodes tuple batches into v3 binary frames. It owns one
// stream's encode state: the name → ID dictionary (IDs are assigned densely
// in first-use order and declared in-band with DICT frames) and reusable
// scratch, so a steady-state publisher allocates nothing per batch. An
// encoder is stream-local — its output is only decodable as one contiguous
// stream — and not safe for concurrent use.
type BinaryEncoder struct {
	ids     map[string]uint64
	names   []string // ID → cleaned name, for AppendDict catch-up
	payload []byte   // pending DATA payload, flushed as frames into dst
}

// NewBinaryEncoder returns an encoder with an empty dictionary.
func NewBinaryEncoder() *BinaryEncoder {
	return &BinaryEncoder{ids: make(map[string]uint64)}
}

// Reset forgets the dictionary, starting a new stream (a reconnected
// publisher, a fresh self-contained reclog segment).
func (e *BinaryEncoder) Reset() {
	clear(e.ids)
	e.names = e.names[:0]
	e.payload = e.payload[:0]
}

// Signals returns how many names the dictionary holds.
func (e *BinaryEncoder) Signals() int { return len(e.names) }

// appendDictFrame encodes one DICT frame: uvarint ID, then the name bytes
// to the end of the payload (WIRE.md §B3).
//
//gscope:hotpath
func appendDictFrame(dst []byte, id uint64, name string) []byte {
	var idb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(idb[:], id)
	dst = append(dst, FrameMarker, FrameDict)
	dst = binary.AppendUvarint(dst, uint64(n+len(name)))
	dst = append(dst, idb[:n]...)
	return append(dst, name...)
}

// AppendDict appends DICT frames declaring every binding in the
// dictionary, in ID order — the catch-up a fan-out hub sends a subscriber
// joining a shared stream mid-flight. It does not change encoder state.
//
//gscope:hotpath
func (e *BinaryEncoder) AppendDict(dst []byte) []byte {
	for id, name := range e.names {
		dst = appendDictFrame(dst, uint64(id), name)
	}
	return dst
}

// appendRunPayload appends one self-contained run to p: uvarint ID,
// uvarint count, the timestamp column (first stamp zigzag absolute, then
// delta-of-delta), then the value column (XOR against the previous value
// bits, 0 at the run head). WIRE.md §B4–B6. Shared by the stream encoder
// and the datagram encoder, whose payloads differ only in ID scope.
//
//gscope:hotpath
func appendRunPayload(p []byte, id uint64, run []Tuple) []byte {
	p = binary.AppendUvarint(p, id)
	p = binary.AppendUvarint(p, uint64(len(run)))
	var lastT, lastD int64
	for k, t := range run {
		var dod int64
		if k == 0 {
			dod = t.Time
			lastT, lastD = t.Time, 0
		} else {
			d := t.Time - lastT
			dod = d - lastD
			lastT, lastD = t.Time, d
		}
		p = binary.AppendUvarint(p, zigzag(dod))
	}
	var prev uint64
	for _, t := range run {
		b := math.Float64bits(t.Value)
		p = appendXOR(p, b^prev)
		prev = b
	}
	return p
}

// appendRun appends one run to the pending payload (WIRE.md §B4–B6).
//
//gscope:hotpath
func (e *BinaryEncoder) appendRun(id uint64, run []Tuple) {
	e.payload = appendRunPayload(e.payload, id, run)
}

// flush closes the pending payload into one DATA frame appended to dst.
//
//gscope:hotpath
func (e *BinaryEncoder) flush(dst []byte) []byte {
	if len(e.payload) == 0 {
		return dst
	}
	dst = append(dst, FrameMarker, FrameData)
	dst = binary.AppendUvarint(dst, uint64(len(e.payload)))
	dst = append(dst, e.payload...)
	e.payload = e.payload[:0]
	return dst
}

// AppendBatch appends batch encoded as v3 frames — DICT frames for names
// new to the stream, then DATA frames — and returns the extended buffer.
// Same-name runs share one run header; names past the dictionary cap are
// appended as text lines in place (a legal mixed stream), preserving tuple
// order exactly. This is the binary counterpart of AppendWireBatch.
//
//gscope:hotpath
func (e *BinaryEncoder) AppendBatch(dst []byte, batch []Tuple) []byte {
	for i := 0; i < len(batch); {
		name := batch[i].Name
		j := i + 1
		for j < len(batch) && batch[j].Name == name {
			j++
		}
		id, ok := e.ids[name]
		if !ok && len(e.names) < maxStreamSignals {
			clean := strings.Clone(CleanName(name)) //gscope:allow hotpath dictionary growth copies each name once per stream
			id = uint64(len(e.names))
			e.ids[strings.Clone(name)] = id //gscope:allow hotpath dictionary growth copies each name once per stream
			e.names = append(e.names, clean)
			dst = appendDictFrame(dst, id, clean)
			ok = true
		}
		if !ok {
			// Dictionary full: this run rides as text, in order.
			dst = e.flush(dst)
			dst = AppendWireBatch(dst, batch[i:j])
		} else {
			for k := i; k < j; k += maxRunTuples {
				end := k + maxRunTuples
				if end > j {
					end = j
				}
				e.appendRun(id, batch[k:end])
				if len(e.payload) >= flushPayload {
					dst = e.flush(dst)
				}
			}
		}
		i = j
	}
	return e.flush(dst)
}

// AppendBatchReadOnly encodes batch without mutating the dictionary: runs
// of already-declared names become DATA frames, anything else text lines.
// A hub uses it to serve one subscriber's snapshot/backfill from a shared
// stream encoder — the private frames must not invent IDs that other
// subscribers of the same stream never saw declared.
//
//gscope:hotpath
func (e *BinaryEncoder) AppendBatchReadOnly(dst []byte, batch []Tuple) []byte {
	for i := 0; i < len(batch); {
		name := batch[i].Name
		j := i + 1
		for j < len(batch) && batch[j].Name == name {
			j++
		}
		if id, ok := e.ids[name]; ok {
			for k := i; k < j; k += maxRunTuples {
				end := k + maxRunTuples
				if end > j {
					end = j
				}
				e.appendRun(id, batch[k:end])
				if len(e.payload) >= flushPayload {
					dst = e.flush(dst)
				}
			}
		} else {
			dst = e.flush(dst)
			dst = AppendWireBatch(dst, batch[i:j])
		}
		i = j
	}
	return e.flush(dst)
}

// errShortFrame signals an incomplete frame still waiting for bytes.
var errShortFrame = errors.New("short frame")

// StreamDecoder incrementally decodes a mixed text/binary tuple stream
// from arbitrarily sliced chunks — the inbound half of the v3 wire. Feed
// dispatches, in stream order, complete text lines to line (newline
// stripped, one trailing \r trimmed, exactly the framing of
// glib.WatchLineBatches) and each DATA frame's tuples to batch (the slice
// is reused across calls). DICT frames update the dictionary invisibly;
// unknown frame types are skipped by length for forward compatibility
// (WIRE.md §B2).
//
// Framing errors are sticky and fatal: once Feed returns a non-nil error
// the stream is undecodable past that point (WIRE.md §B7). Decoded names
// are shared canonical strings — all tuples of one signal point at the
// dictionary's copy.
type StreamDecoder struct {
	names []string
	carry []byte
	tup   []Tuple
	err   error
}

// NewStreamDecoder returns a decoder with an empty dictionary.
func NewStreamDecoder() *StreamDecoder { return &StreamDecoder{} }

// Reset clears the dictionary, any carried partial input, and a sticky
// error, making the decoder ready for a new self-contained stream. The
// datagram receive path resets one decoder per datagram (every datagram
// is its own stream, WIRE.md §D2) instead of allocating a fresh decoder;
// names already handed out in decoded tuples remain valid — Reset
// truncates the dictionary slice, it never mutates the strings.
//
//gscope:hotpath
func (d *StreamDecoder) Reset() {
	d.names = d.names[:0]
	d.carry = d.carry[:0]
	d.tup = d.tup[:0]
	d.err = nil
}

// Feed consumes the next chunk of the stream. line and batch are invoked
// synchronously, in stream order; their arguments are valid only for the
// duration of the call.
func (d *StreamDecoder) Feed(data []byte, line func(string), batch func([]Tuple)) error {
	if d.err != nil {
		return d.err
	}
	buf := data
	if len(d.carry) > 0 {
		d.carry = append(d.carry, data...)
		buf = d.carry
	}
	pos := 0
	for pos < len(buf) {
		if buf[pos] == FrameMarker {
			n, err := d.frame(buf[pos:], batch)
			if err == errShortFrame {
				break
			}
			if err != nil {
				return d.fail(err)
			}
			pos += n
		} else {
			rel := bytes.IndexByte(buf[pos:], '\n')
			if rel < 0 {
				break
			}
			ln := buf[pos : pos+rel]
			if len(ln) > 0 && ln[len(ln)-1] == '\r' {
				ln = ln[:len(ln)-1]
			}
			line(string(ln))
			pos += rel + 1
		}
	}
	rest := buf[pos:]
	if len(rest) > 0 && rest[0] != FrameMarker && len(rest) > maxStreamLine {
		return d.fail(errLineTooLong)
	}
	d.carry = append(d.carry[:0], rest...)
	return nil
}

func (d *StreamDecoder) fail(err error) error {
	d.err = err
	d.carry = nil
	return err
}

// TornFrame reports whether the decoder is holding the start of a binary
// frame it has not yet received in full. A stream transport just keeps
// feeding; a datagram transport, whose chunk must be self-contained
// (WIRE.md §D2), treats a torn frame after the final Feed as a malformed
// datagram.
//
//gscope:hotpath
func (d *StreamDecoder) TornFrame() bool {
	return len(d.carry) > 0 && d.carry[0] == FrameMarker
}

// Tail finishes the stream: an unterminated trailing text line is still a
// line (the way bufio.Scanner treats one) and is delivered to line; an
// incomplete trailing frame is a torn tail and is discarded.
func (d *StreamDecoder) Tail(line func(string)) {
	if d.err == nil && len(d.carry) > 0 && d.carry[0] != FrameMarker {
		ln := d.carry
		if ln[len(ln)-1] == '\r' {
			ln = ln[:len(ln)-1]
		}
		line(string(ln))
	}
	d.carry = d.carry[:0]
}

// frame decodes one frame at the head of b, returning the bytes consumed,
// or errShortFrame if b does not yet hold the whole frame.
func (d *StreamDecoder) frame(b []byte, batch func([]Tuple)) (int, error) {
	if len(b) < 3 {
		return 0, errShortFrame
	}
	plen, n := binary.Uvarint(b[2:])
	if n == 0 {
		if len(b)-2 >= binary.MaxVarintLen64 {
			return 0, fmt.Errorf("%w: bad payload length varint", ErrBadFrame)
		}
		return 0, errShortFrame
	}
	if n < 0 || plen > MaxFramePayload {
		return 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, plen, MaxFramePayload)
	}
	total := 2 + n + int(plen)
	if len(b) < total {
		return 0, errShortFrame
	}
	payload := b[2+n : total]
	switch b[1] {
	case FrameDict:
		if err := d.dict(payload); err != nil {
			return 0, err
		}
	case FrameData:
		if err := d.data(payload, batch); err != nil {
			return 0, err
		}
	default:
		// Unknown frame types are skipped by length, the binary analogue
		// of ignoring unknown handshake keys.
	}
	return total, nil
}

// dict applies one DICT payload. IDs must arrive densely: id == len(dict)
// appends; id < len(dict) must re-declare the same name (redundant
// catch-up declarations are legal, WIRE.md §B3); a gap is malformed.
func (d *StreamDecoder) dict(payload []byte) error {
	id, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("%w: bad dict id varint", ErrBadFrame)
	}
	name := string(payload[n:])
	if err := ValidateName(name); err != nil {
		return fmt.Errorf("%w: dict name: %v", ErrBadFrame, err)
	}
	switch {
	case id < uint64(len(d.names)):
		if d.names[id] != name {
			return fmt.Errorf("%w: dict id %d redeclared %q as %q", ErrBadFrame, id, d.names[id], name)
		}
	case id == uint64(len(d.names)):
		if len(d.names) >= maxStreamSignals {
			return fmt.Errorf("%w: dict exceeds %d signals", ErrBadFrame, maxStreamSignals)
		}
		d.names = append(d.names, name)
	default:
		return fmt.Errorf("%w: dict id %d leaves a gap (have %d)", ErrBadFrame, id, len(d.names))
	}
	return nil
}

// data decodes one DATA payload's runs into the scratch batch and hands it
// to the callback.
func (d *StreamDecoder) data(payload []byte, batch func([]Tuple)) error {
	d.tup = d.tup[:0]
	p := payload
	for len(p) > 0 {
		id, n := binary.Uvarint(p)
		if n <= 0 {
			return fmt.Errorf("%w: bad run id varint", ErrBadFrame)
		}
		p = p[n:]
		if id >= uint64(len(d.names)) {
			return fmt.Errorf("%w: run id %d not declared (have %d)", ErrBadFrame, id, len(d.names))
		}
		name := d.names[id]
		cnt, n := binary.Uvarint(p)
		if n <= 0 {
			return fmt.Errorf("%w: bad run count varint", ErrBadFrame)
		}
		p = p[n:]
		// Every tuple takes at least one timestamp byte, so the count can
		// never exceed the remaining payload — reject before allocating.
		if cnt == 0 || cnt > uint64(len(p)) {
			return fmt.Errorf("%w: run count %d exceeds payload", ErrBadFrame, cnt)
		}
		base := len(d.tup)
		var lastT, lastD int64
		for k := 0; k < int(cnt); k++ {
			u, n := binary.Uvarint(p)
			if n <= 0 {
				return fmt.Errorf("%w: bad timestamp varint", ErrBadFrame)
			}
			p = p[n:]
			var t int64
			if k == 0 {
				t = unzigzag(u)
				lastT, lastD = t, 0
			} else {
				lastD += unzigzag(u)
				t = lastT + lastD
				lastT = t
			}
			d.tup = append(d.tup, Tuple{Time: t, Name: name})
		}
		var prev uint64
		for k := 0; k < int(cnt); k++ {
			x, rest, err := readXOR(p)
			if err != nil {
				return err
			}
			p = rest
			prev ^= x
			d.tup[base+k].Value = math.Float64frombits(prev)
		}
	}
	if len(d.tup) > 0 {
		batch(d.tup)
	}
	return nil
}
