package tuple

import (
	"strconv"
	"strings"
)

// Control frames are the '#'-comment lines higher layers use to embed
// protocols in a tuple stream (see the package comment's "Embedded
// protocols" section). A frame is a verb followed by space-separated
// fields, some of which may be key=value pairs:
//
//	# gscope-hub 2 signals=cpu.*,mem max-rate=30
//	# backfill tuples=12 since-ms=4000 source=history
//	# param threshold 5 min=0 max=10 step=1 mode=rw
//
// Because every frame is a comment, a plain Reader skips them and sees only
// the data; protocol-aware consumers parse them with ParseControl before
// discarding. This file holds the shared framing primitives; the
// vocabulary (which verbs exist and what their fields mean) belongs to the
// protocol packages (netscope, reclog).

// ControlFrame is one parsed '#' control line: a verb and its fields, in
// order. Fields of the form key=value are additionally reachable through
// Lookup; anything else is positional.
type ControlFrame struct {
	// Verb is the first field after the '#'.
	Verb string
	// Fields are the remaining space-separated fields, in order.
	Fields []string
}

// Arg returns positional field i ("" when the frame is shorter). Key=value
// fields count toward positions too; by convention protocols put positional
// fields first.
func (f ControlFrame) Arg(i int) string {
	if i < 0 || i >= len(f.Fields) {
		return ""
	}
	return f.Fields[i]
}

// Lookup returns the value of the first key=value field with the given key.
func (f ControlFrame) Lookup(key string) (string, bool) {
	for _, fld := range f.Fields {
		if v, ok := strings.CutPrefix(fld, key+"="); ok {
			return v, true
		}
	}
	return "", false
}

// Int returns Lookup(key) parsed as an int64, or def when the key is absent
// or malformed.
func (f ControlFrame) Int(key string, def int64) int64 {
	s, ok := f.Lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return def
	}
	return n
}

// Float returns Lookup(key) parsed as a float64, or def when the key is
// absent or malformed.
func (f ControlFrame) Float(key string, def float64) float64 {
	s, ok := f.Lookup(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return def
	}
	return v
}

// ParseControl parses a '#' comment line as a control frame. ok is false
// for blank comments and for lines that are not comments at all. The verb
// and fields must not contain newlines; fields are split on runs of spaces,
// so neither verbs nor values can contain spaces (protocols quote or escape
// above this layer if they must).
func ParseControl(line string) (ControlFrame, bool) {
	s := strings.TrimSpace(line)
	if !strings.HasPrefix(s, "#") {
		return ControlFrame{}, false
	}
	fields := strings.Fields(strings.TrimPrefix(s, "#"))
	if len(fields) == 0 {
		return ControlFrame{}, false
	}
	return ControlFrame{Verb: fields[0], Fields: fields[1:]}, true
}

// AppendControl appends a newline-terminated control frame to dst:
// "# verb field field...\n". Empty fields are skipped so callers can build
// frames from optional parts.
func AppendControl(dst []byte, verb string, fields ...string) []byte {
	dst = append(dst, '#', ' ')
	dst = append(dst, verb...)
	for _, f := range fields {
		if f == "" {
			continue
		}
		dst = append(dst, ' ')
		dst = append(dst, f...)
	}
	return append(dst, '\n')
}
