package tuple_test

// Structured round-trip fuzzing over the wire codec: where fuzz_test.go
// throws raw lines at Parse, these targets generate whole valid streams
// (via internal/fuzzgen) and assert the encoder and decoder are exact
// inverses — including the batch encoder's run optimization and the
// reader's comment/garbage skipping. They live in an external test
// package because fuzzgen imports tuple.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/tuple"
)

// FuzzWireRoundTrip: for generated tuples t, Parse(AppendWire(t)) == t,
// AppendWireBatch equals the per-tuple encoding, and a Reader over the
// stream — noise lines and all — yields exactly the input tuples.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("some decision bytes 123"))
	f.Add(bytes.Repeat([]byte{0xff, 0x03, 0x59}, 64))
	f.Add(bytes.Repeat([]byte{0x80, 0x11}, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		ts := src.Tuples(256, false)

		// The batch encoder's same-name run optimization must be
		// invisible: byte-identical to encoding each tuple alone.
		var perTuple []byte
		for _, tu := range ts {
			perTuple = tuple.AppendWire(perTuple, tu)
		}
		batch := tuple.AppendWireBatch(nil, ts)
		if !bytes.Equal(perTuple, batch) {
			t.Fatalf("AppendWireBatch diverges from per-tuple AppendWire:\n%q\nvs\n%q", batch, perTuple)
		}

		// Parse is the encoder's inverse, tuple by tuple.
		for _, tu := range ts {
			got, err := tuple.Parse(tu.String())
			if err != nil {
				t.Fatalf("Parse(AppendWire(%+v)) failed: %v", tu, err)
			}
			if got != tu {
				t.Fatalf("round trip mismatch: %+v -> %+v", tu, got)
			}
		}

		// A reader over the full stream — with comments, blanks and
		// garbage interleaved — sees exactly the payload tuples, in order.
		stream := src.WireStream(ts)
		got, err := tuple.NewReader(bytes.NewReader(stream), false).ReadAll()
		if err != nil {
			t.Fatalf("reading generated stream: %v\nstream: %q", err, stream)
		}
		if len(got) != len(ts) {
			t.Fatalf("stream yielded %d tuples, expected %d\nstream: %q", len(got), len(ts), stream)
		}
		for i := range got {
			if got[i] != ts[i] {
				t.Fatalf("tuple %d: %+v != %+v", i, got[i], ts[i])
			}
		}
	})
}

// FuzzControlRoundTrip: generated control frames survive
// AppendControl→ParseControl unchanged, and for arbitrary input lines
// parse→encode→parse is idempotent (whatever ParseControl accepts,
// re-encoding yields a frame that parses back identically).
func FuzzControlRoundTrip(f *testing.F) {
	f.Add([]byte{}, "# gscope-hub 2 signals=a max-rate=30")
	f.Add([]byte{1, 2, 3}, "# seal tuples=2 first=1500 last=1550")
	f.Add([]byte{9, 9}, "   #   spaced   out   fields ")
	f.Add([]byte{0xff}, "# param-ok x 1.5")
	f.Add([]byte{4}, "not a comment")
	f.Fuzz(func(t *testing.T, data []byte, line string) {
		src := fuzzgen.New(data)
		verb, fields := src.ControlFrame()
		enc := string(tuple.AppendControl(nil, verb, fields...))
		fr, ok := tuple.ParseControl(strings.TrimSuffix(enc, "\n"))
		if !ok {
			t.Fatalf("generated frame does not parse: %q", enc)
		}
		if fr.Verb != verb {
			t.Fatalf("verb mismatch: %q -> %q", verb, fr.Verb)
		}
		if len(fr.Fields) != len(fields) {
			t.Fatalf("field count mismatch: %v -> %v", fields, fr.Fields)
		}
		for i := range fields {
			if fr.Fields[i] != fields[i] {
				t.Fatalf("field %d: %q != %q", i, fr.Fields[i], fields[i])
			}
		}

		// Arbitrary line: never panic; accepted frames re-encode stably.
		fr1, ok := tuple.ParseControl(line)
		if !ok {
			return
		}
		re := string(tuple.AppendControl(nil, fr1.Verb, fr1.Fields...))
		fr2, ok2 := tuple.ParseControl(strings.TrimSuffix(re, "\n"))
		if !ok2 {
			t.Fatalf("re-encoded frame does not parse: %q (from %q)", re, line)
		}
		if fr2.Verb != fr1.Verb || len(fr2.Fields) != len(fr1.Fields) {
			t.Fatalf("parse/encode not idempotent: %+v vs %+v (line %q)", fr1, fr2, line)
		}
		for i := range fr1.Fields {
			if fr2.Fields[i] != fr1.Fields[i] {
				t.Fatalf("field %d drifted: %q != %q (line %q)", i, fr1.Fields[i], fr2.Fields[i], line)
			}
		}
	})
}

// FuzzInterner: the publish path's name interner must hand back strings
// equal to their input and keep Lookup/Name/Canonical mutually
// consistent under arbitrary interleavings.
func FuzzInterner(f *testing.F) {
	f.Add([]byte("ab"))
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		in := tuple.NewInterner()
		interned := map[string]bool{}
		for i := 0; i < 64 && !src.Exhausted(); i++ {
			name := src.Name()
			if src.Bool() {
				id, ok := in.Lookup(name)
				if interned[name] && !ok {
					t.Fatalf("interned name %q not found by Lookup", name)
				}
				if ok {
					if got := in.Name(id); got != name {
						t.Fatalf("Lookup(%q) resolved to %q", name, got)
					}
				}
				continue
			}
			if c := in.Canonical(name); c != name {
				t.Fatalf("Canonical(%q) = %q", name, c)
			}
			interned[name] = true
		}
		if in.Len() > len(interned) {
			t.Fatalf("interner holds %d names, only %d distinct interned", in.Len(), len(interned))
		}
	})
}
