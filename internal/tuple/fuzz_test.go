package tuple

import (
	"strings"
	"testing"
)

// FuzzParse checks that Parse never panics and that anything it accepts
// round-trips through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"1500 42.5 CWND",
		"0 0",
		"-5 1e300 x",
		"99 -0.5 name with spaces",
		"  7   3  ",
		"bogus",
		"1",
		"1 nan x",
		"1 +Inf x",
		"9223372036854775807 1 x",
		"1500 1 cwnd\n9999 666 forged", // name smuggling a line break
		"7 2 \rcarriage\r",
		"8 3  unicode-padded ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tu, err := Parse(line)
		if err != nil {
			return
		}
		// Accepted tuples must re-parse to themselves (NaN breaks the
		// equality trivially; skip it). A fuzzed line can smuggle a name
		// the wire format cannot carry — a multi-line string fed straight
		// to Parse — and the encoder sanitizes those, so the name
		// round-trips through CleanName rather than identically.
		if tu.Value != tu.Value {
			return
		}
		again, err := Parse(tu.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", tu.String(), line, err)
		}
		if again.Time != tu.Time || again.Name != CleanName(tu.Name) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", tu, again)
		}
		if err := ValidateName(again.Name); err != nil {
			t.Fatalf("re-parsed name %q still invalid: %v", again.Name, err)
		}
	})
}

// FuzzReader checks that a whole stream of arbitrary lines never panics
// the reader in either mode.
func FuzzReader(f *testing.F) {
	f.Add("10 1 a\n20 2 b\n")
	f.Add("# c\n\n5 1\n")
	f.Add("10 1 a\n5 2 b\n")
	f.Fuzz(func(t *testing.T, src string) {
		for _, strict := range []bool{false, true} {
			r := NewReader(strings.NewReader(src), strict)
			for i := 0; i < 1000; i++ {
				if _, err := r.Read(); err != nil {
					break
				}
			}
		}
	})
}
