// Package loadgen implements the CPU-load measurement methodology of the
// paper's overhead experiment (§4.6): "we use a CPU load program that runs
// in a tight loop at a low priority and measures the number of loop
// iterations it can perform at any given period. The ratio of the
// iteration count when running gscope versus on an idle system gives an
// estimate of the gscope overhead."
//
// Go exposes no thread priorities, so the reproduction pins the scheduler
// to one logical CPU (GOMAXPROCS(1)) for the measurement — see
// cmd/gscope-bench and the TAB-A benches — which recreates the paper's
// single-processor contention: every cycle the scope spends polling is a
// cycle the spin loop does not get.
package loadgen

import (
	"runtime"
	"sync/atomic"
	"time"
)

// sink prevents the spin loop from being optimized away. It is atomic
// because measurement code deliberately runs competing spinners that also
// publish into it.
var sink atomic.Uint64

// spinChunk is the number of iterations between deadline checks; checking
// time.Now on every iteration would measure the clock, not the CPU.
const spinChunk = 4096

// Spin runs the calibrated tight loop until the deadline and returns the
// iteration count. The loop body is a cheap integer recurrence (xorshift),
// mirroring the paper's counting loop.
func Spin(d time.Duration) int64 {
	deadline := time.Now().Add(d)
	var count int64
	x := uint64(88172645463325252)
	for {
		for i := 0; i < spinChunk; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		count += spinChunk
		if !time.Now().Before(deadline) {
			break
		}
	}
	sink.Store(x)
	return count
}

// Result is one overhead measurement.
type Result struct {
	// Baseline is the iteration count with nothing else running.
	Baseline int64
	// Loaded is the iteration count while the system under test ran.
	Loaded int64
	// Duration is the measurement window.
	Duration time.Duration
}

// OverheadPercent returns the §4.6 metric: the fraction of CPU the system
// under test consumed, as a percentage.
func (r Result) OverheadPercent() float64 {
	if r.Baseline <= 0 {
		return 0
	}
	oh := 1 - float64(r.Loaded)/float64(r.Baseline)
	return oh * 100
}

// Measure runs the experiment: baseline spin, then spin again while
// busywork (started before, stopped after) competes for the CPU. The
// under-test workload is managed by the caller through start and stop
// callbacks. GOMAXPROCS is pinned to 1 for the duration so the workloads
// contend as they would on the paper's single-CPU machine.
func Measure(window time.Duration, start func(), stop func()) Result {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	// Warm up scheduling before both phases for symmetry.
	runtime.Gosched()
	baseline := Spin(window)

	start()
	// Give the workload a tick to install its timers.
	time.Sleep(2 * time.Millisecond)
	loaded := Spin(window)
	stop()

	return Result{Baseline: baseline, Loaded: loaded, Duration: window}
}

// MeasureRepeated runs Measure n times and returns the result with the
// median loaded count, damping scheduler noise. n must be >= 1.
func MeasureRepeated(n int, window time.Duration, start func(), stop func()) Result {
	if n < 1 {
		n = 1
	}
	results := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		results = append(results, Measure(window, start, stop))
	}
	// Median by overhead percentage (simple insertion sort; n is tiny).
	for i := 1; i < len(results); i++ {
		for j := i; j > 0 && results[j].OverheadPercent() < results[j-1].OverheadPercent(); j-- {
			results[j], results[j-1] = results[j-1], results[j]
		}
	}
	return results[len(results)/2]
}
