package loadgen

import (
	"testing"
	"time"
)

func TestSpinCountsIterations(t *testing.T) {
	n := Spin(20 * time.Millisecond)
	if n < spinChunk {
		t.Fatalf("Spin counted only %d iterations", n)
	}
}

func TestSpinScalesWithDuration(t *testing.T) {
	short := Spin(10 * time.Millisecond)
	long := Spin(80 * time.Millisecond)
	if long < short*3 {
		t.Fatalf("iteration count did not scale: %d vs %d", short, long)
	}
}

func TestOverheadPercentMath(t *testing.T) {
	r := Result{Baseline: 1000, Loaded: 980}
	if got := r.OverheadPercent(); got < 1.99 || got > 2.01 {
		t.Fatalf("overhead = %v, want 2", got)
	}
	zero := Result{}
	if zero.OverheadPercent() != 0 {
		t.Fatal("zero baseline should give 0")
	}
}

func TestMeasureIdleWorkloadNearZero(t *testing.T) {
	// A workload that does nothing should cost (nearly) nothing.
	r := MeasureRepeated(3, 50*time.Millisecond, func() {}, func() {})
	if oh := r.OverheadPercent(); oh > 20 {
		t.Fatalf("idle workload measured at %v%% overhead", oh)
	}
}

func TestMeasureBusyWorkloadVisible(t *testing.T) {
	// A competing spin goroutine on GOMAXPROCS(1) must consume a visible
	// share of the CPU.
	stop := make(chan struct{})
	r := MeasureRepeated(3, 50*time.Millisecond,
		func() {
			done := stop // capture this round's channel before the goroutine
			started := make(chan struct{})
			go func() {
				close(started)
				x := uint64(1)
				for {
					select {
					case <-done:
						return
					default:
					}
					for i := 0; i < 1024; i++ {
						x ^= x << 13
					}
					sink.Store(x)
				}
			}()
			<-started
		},
		func() { close(stop); stop = make(chan struct{}) },
	)
	if oh := r.OverheadPercent(); oh < 5 {
		t.Fatalf("competing spinner measured at only %v%%", oh)
	}
}
