package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPtArithmetic(t *testing.T) {
	p := Pt{3, 4}
	q := Pt{1, -2}
	if got := p.Add(q); got != (Pt{4, 2}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Pt{2, 6}) {
		t.Fatalf("Sub = %v", got)
	}
}

func TestPtIn(t *testing.T) {
	r := XYWH(10, 10, 5, 5)
	cases := []struct {
		p  Pt
		in bool
	}{
		{Pt{10, 10}, true},
		{Pt{14, 14}, true},
		{Pt{15, 10}, false}, // exclusive right edge
		{Pt{10, 15}, false}, // exclusive bottom edge
		{Pt{9, 12}, false},
	}
	for _, c := range cases {
		if got := c.p.In(r); got != c.in {
			t.Errorf("%v in %v = %v, want %v", c.p, r, got, c.in)
		}
	}
}

func TestRectEmpty(t *testing.T) {
	if !XYWH(0, 0, 0, 5).Empty() || !XYWH(0, 0, 5, -1).Empty() {
		t.Fatal("zero/negative extent should be empty")
	}
	if XYWH(0, 0, 1, 1).Empty() {
		t.Fatal("1x1 rect is not empty")
	}
}

func TestRectIntersect(t *testing.T) {
	a := XYWH(0, 0, 10, 10)
	b := XYWH(5, 5, 10, 10)
	want := XYWH(5, 5, 5, 5)
	if got := a.Intersect(b); got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	c := XYWH(20, 20, 5, 5)
	if got := a.Intersect(c); !got.Empty() {
		t.Fatalf("disjoint Intersect = %v, want empty", got)
	}
}

func TestRectUnion(t *testing.T) {
	a := XYWH(0, 0, 2, 2)
	b := XYWH(5, 5, 2, 2)
	want := XYWH(0, 0, 7, 7)
	if got := a.Union(b); got != want {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Fatalf("empty Union b = %v, want %v", got, b)
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("a Union empty = %v, want %v", got, a)
	}
}

func TestRectInsetAndTranslate(t *testing.T) {
	r := XYWH(10, 10, 10, 10)
	if got := r.Inset(2); got != XYWH(12, 12, 6, 6) {
		t.Fatalf("Inset = %v", got)
	}
	if !r.Inset(6).Empty() {
		t.Fatal("over-inset should be empty")
	}
	if got := r.Translate(-5, 3); got != XYWH(5, 13, 10, 10) {
		t.Fatalf("Translate = %v", got)
	}
}

func TestRectContains(t *testing.T) {
	r := XYWH(0, 0, 10, 10)
	if !r.Contains(XYWH(2, 2, 3, 3)) {
		t.Fatal("inner rect should be contained")
	}
	if r.Contains(XYWH(8, 8, 5, 5)) {
		t.Fatal("overhanging rect should not be contained")
	}
	if !r.Contains(Rect{}) {
		t.Fatal("empty rect is contained everywhere")
	}
}

func TestClamp(t *testing.T) {
	r := XYWH(0, 0, 10, 10)
	if got := r.Clamp(Pt{-5, 20}); got != (Pt{0, 9}) {
		t.Fatalf("Clamp = %v", got)
	}
	if got := r.Clamp(Pt{5, 5}); got != (Pt{5, 5}) {
		t.Fatalf("interior Clamp moved the point: %v", got)
	}
}

// genRect produces rects with coordinates in a small range so overlaps are
// common.
func genRect(r *rand.Rand) Rect {
	return Rect{r.Intn(40) - 20, r.Intn(40) - 20, r.Intn(30), r.Intn(30)}
}

func TestIntersectionPropertyBased(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := genRect(r), genRect(r)
		got := a.Intersect(b)
		// The intersection is symmetric (up to emptiness) and contained
		// in both.
		rev := b.Intersect(a)
		if got.Empty() != rev.Empty() {
			return false
		}
		if !got.Empty() && got != rev {
			return false
		}
		if !got.Empty() && (!a.Contains(got) || !b.Contains(got)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionContainsBothPropertyBased(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := genRect(r), genRect(r)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClampInsidePropertyBased(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		rect := genRect(r)
		if rect.Empty() {
			return true
		}
		p := Pt{r.Intn(100) - 50, r.Intn(100) - 50}
		return rect.Clamp(p).In(rect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
