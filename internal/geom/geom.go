// Package geom provides small integer geometry helpers shared by the
// rasterizer and the widget toolkit: points, rectangles and clipping.
package geom

// Pt is an integer point in pixel space. The origin is the top-left corner;
// y grows downward, matching raster conventions.
type Pt struct {
	X, Y int
}

// Add returns the vector sum p+q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Pt) Sub(q Pt) Pt { return Pt{p.X - q.X, p.Y - q.Y} }

// In reports whether p lies inside r.
func (p Pt) In(r Rect) bool {
	return p.X >= r.X && p.X < r.X+r.W && p.Y >= r.Y && p.Y < r.Y+r.H
}

// Rect is an axis-aligned rectangle anchored at (X, Y) with size W×H.
// A Rect with W <= 0 or H <= 0 is empty.
type Rect struct {
	X, Y, W, H int
}

// XYWH is shorthand for constructing a Rect.
func XYWH(x, y, w, h int) Rect { return Rect{x, y, w, h} }

// Empty reports whether r contains no pixels.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// MaxX returns the exclusive right edge.
func (r Rect) MaxX() int { return r.X + r.W }

// MaxY returns the exclusive bottom edge.
func (r Rect) MaxY() int { return r.Y + r.H }

// Inset shrinks r by n pixels on every side. Insetting past the center
// yields an empty rectangle.
func (r Rect) Inset(n int) Rect {
	return Rect{r.X + n, r.Y + n, r.W - 2*n, r.H - 2*n}
}

// Translate moves r by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X + dx, r.Y + dy, r.W, r.H}
}

// Intersect returns the overlap of r and s, or an empty Rect when they are
// disjoint.
func (r Rect) Intersect(s Rect) Rect {
	x0 := max(r.X, s.X)
	y0 := max(r.Y, s.Y)
	x1 := min(r.MaxX(), s.MaxX())
	y1 := min(r.MaxY(), s.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Union returns the smallest rectangle containing both r and s. An empty
// input contributes nothing.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x0 := min(r.X, s.X)
	y0 := min(r.Y, s.Y)
	x1 := max(r.MaxX(), s.MaxX())
	y1 := max(r.MaxY(), s.MaxY())
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Contains reports whether s lies entirely within r.
func (r Rect) Contains(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X >= r.X && s.Y >= r.Y && s.MaxX() <= r.MaxX() && s.MaxY() <= r.MaxY()
}

// Clamp returns p moved to the nearest point inside r. Calling Clamp on an
// empty rectangle returns p unchanged.
func (r Rect) Clamp(p Pt) Pt {
	if r.Empty() {
		return p
	}
	if p.X < r.X {
		p.X = r.X
	}
	if p.X >= r.MaxX() {
		p.X = r.MaxX() - 1
	}
	if p.Y < r.Y {
		p.Y = r.Y
	}
	if p.Y >= r.MaxY() {
		p.Y = r.MaxY() - 1
	}
	return p
}
