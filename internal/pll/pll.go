// Package pll implements a software phase-lock loop, one of the control
// algorithms the paper lists among its gscope applications ("a software
// implementation of a phase-lock loop", citing Franklin, Powell & Workman's
// Digital Control of Dynamic Systems). The loop tracks a reference
// oscillator whose frequency may drift or jump: a phase detector measures
// the wrapped phase error, a PI loop filter converts it to a frequency
// correction, and a numerically controlled oscillator (NCO) integrates the
// corrected frequency.
//
// The PLL demo visualizes exactly the signals a control engineer would put
// on a scope: phase error, NCO frequency versus reference frequency, and a
// lock indicator.
package pll

import (
	"math"
	"time"
)

// Config sets the loop gains and the NCO's free-running (center) frequency
// in hertz.
type Config struct {
	// CenterHz is the NCO frequency with zero correction.
	CenterHz float64
	// Kp and Ki are the proportional and integral loop-filter gains.
	Kp, Ki float64
	// LockThreshold is the absolute phase error (radians) under which the
	// loop counts as locked.
	LockThreshold float64
	// LockHold is how long the error must stay under the threshold.
	LockHold time.Duration
}

// DefaultConfig returns gains that lock within a few hundred milliseconds
// at a 10 Hz center frequency.
func DefaultConfig() Config {
	return Config{
		CenterHz:      10,
		Kp:            4.0,
		Ki:            8.0,
		LockThreshold: 0.1,
		LockHold:      200 * time.Millisecond,
	}
}

// PLL is the loop state.
type PLL struct {
	cfg Config

	refPhase float64 // radians
	refHz    float64

	ncoPhase float64
	ncoHz    float64

	integ   float64
	err     float64
	lockFor time.Duration
	elapsed time.Duration
	steps   int64
}

// New returns a PLL tracking a reference that starts at refHz.
func New(cfg Config, refHz float64) *PLL {
	return &PLL{cfg: cfg, refHz: refHz, ncoHz: cfg.CenterHz}
}

// SetReferenceHz changes the reference frequency (a step disturbance the
// loop must re-acquire).
func (p *PLL) SetReferenceHz(hz float64) { p.refHz = hz }

// ReferenceHz returns the current reference frequency.
func (p *PLL) ReferenceHz() float64 { return p.refHz }

// NCOHz returns the oscillator's current frequency.
func (p *PLL) NCOHz() float64 { return p.ncoHz }

// PhaseError returns the wrapped phase error in radians.
func (p *PLL) PhaseError() float64 { return p.err }

// Locked reports whether the error has stayed under the lock threshold for
// the configured hold time.
func (p *PLL) Locked() bool { return p.lockFor >= p.cfg.LockHold }

// Elapsed returns simulated time.
func (p *PLL) Elapsed() time.Duration { return p.elapsed }

// Steps returns the number of Step calls.
func (p *PLL) Steps() int64 { return p.steps }

// wrap maps an angle to (-π, π].
func wrap(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Step advances both oscillators by dt and runs one control update.
func (p *PLL) Step(dt time.Duration) {
	sec := dt.Seconds()
	p.refPhase += 2 * math.Pi * p.refHz * sec
	p.ncoPhase += 2 * math.Pi * p.ncoHz * sec

	p.err = wrap(p.refPhase - p.ncoPhase)
	p.integ += p.err * sec
	ctrl := p.cfg.Kp*p.err + p.cfg.Ki*p.integ
	p.ncoHz = p.cfg.CenterHz + ctrl/(2*math.Pi)

	if math.Abs(p.err) < p.cfg.LockThreshold {
		p.lockFor += dt
	} else {
		p.lockFor = 0
	}
	p.elapsed += dt
	p.steps++
}

// Run advances to horizon in fixed steps and returns whether the loop is
// locked at the end.
func (p *PLL) Run(horizon, step time.Duration) bool {
	for p.elapsed < horizon {
		p.Step(step)
	}
	return p.Locked()
}
