package pll

import (
	"math"
	"testing"
	"time"
)

const step = time.Millisecond

func TestLockAcquisition(t *testing.T) {
	p := New(DefaultConfig(), 10.5)
	if p.Locked() {
		t.Fatal("should not start locked")
	}
	if !p.Run(5*time.Second, step) {
		t.Fatalf("failed to lock: err=%v nco=%v", p.PhaseError(), p.NCOHz())
	}
	if math.Abs(p.NCOHz()-10.5) > 0.05 {
		t.Fatalf("NCO %v Hz, want ≈10.5", p.NCOHz())
	}
}

func TestReacquireAfterFrequencyStep(t *testing.T) {
	p := New(DefaultConfig(), 10)
	p.Run(5*time.Second, step)
	if !p.Locked() {
		t.Fatal("initial lock failed")
	}
	p.SetReferenceHz(12)
	// The step disturbance must break lock momentarily...
	for i := 0; i < 50; i++ {
		p.Step(step)
	}
	// ...and then reacquire.
	p.Run(p.Elapsed()+8*time.Second, step)
	if !p.Locked() {
		t.Fatalf("failed to reacquire after step: err=%v", p.PhaseError())
	}
	if math.Abs(p.NCOHz()-12) > 0.1 {
		t.Fatalf("NCO %v Hz after step, want ≈12", p.NCOHz())
	}
}

func TestPhaseErrorWrapped(t *testing.T) {
	p := New(DefaultConfig(), 40) // far from center: early errors are large
	for i := 0; i < 5000; i++ {
		p.Step(step)
		if e := p.PhaseError(); e > math.Pi || e <= -math.Pi {
			t.Fatalf("unwrapped phase error %v", e)
		}
	}
}

func TestWrap(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi}, // (-π, π] convention
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
	}
	for _, c := range cases {
		if got := wrap(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("wrap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStepsAndElapsedCounters(t *testing.T) {
	p := New(DefaultConfig(), 10)
	p.Run(time.Second, 10*time.Millisecond)
	if p.Steps() != 100 {
		t.Fatalf("steps = %d", p.Steps())
	}
	if p.Elapsed() != time.Second {
		t.Fatalf("elapsed = %v", p.Elapsed())
	}
	if p.ReferenceHz() != 10 {
		t.Fatalf("reference = %v", p.ReferenceHz())
	}
}

func TestLockIndicatorRequiresHold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LockHold = time.Second
	p := New(cfg, 10)
	// A single small-error step is not enough to count as locked.
	p.Step(step)
	if p.Locked() {
		t.Fatal("lock should require sustained small error")
	}
}
