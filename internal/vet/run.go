package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Finding is one diagnostic after suppression processing.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	Reason     string // the //gscope:allow justification, when suppressed
}

// A Summary counts findings per analyzer, the shape the CI job prints so
// regressions are diffable run-to-run.
type Summary struct {
	Analyzers []AnalyzerCount
}

// AnalyzerCount is one analyzer's tally.
type AnalyzerCount struct {
	Name       string
	Reported   int // unsuppressed diagnostics (failures)
	Suppressed int // diagnostics silenced by //gscope:allow
}

// Format renders the summary table.
func (s Summary) Format() string {
	var b strings.Builder
	for _, a := range s.Analyzers {
		fmt.Fprintf(&b, "%12s: %d finding(s), %d allowed\n", a.Name, a.Reported, a.Suppressed)
	}
	return b.String()
}

// allowRule is one parsed //gscope:allow comment.
type allowRule struct {
	analyzer string
	reason   string
	line     int
	used     bool
}

// collectAllows gathers every //gscope:allow in a file, keyed by the
// line it applies to. An allow on its own line covers the next line; an
// allow trailing code covers its own line.
func collectAllows(fset *token.FileSet, f *ast.File) ([]*allowRule, []Finding) {
	var rules []*allowRule
	var bad []Finding
	for _, g := range f.Comments {
		for _, c := range g.List {
			d, ok := ParseDirective(c)
			if !ok || d.Verb != "allow" {
				continue
			}
			name, reason, _ := strings.Cut(d.Args, " ")
			reason = strings.TrimSpace(reason)
			pos := fset.Position(c.Slash)
			if name == "" || reason == "" {
				bad = append(bad, Finding{
					Analyzer: "gscope-vet",
					Pos:      pos,
					Message:  "malformed //gscope:allow: want \"//gscope:allow <analyzer> <reason>\"",
				})
				continue
			}
			rules = append(rules, &allowRule{analyzer: name, reason: reason, line: pos.Line})
		}
	}
	return rules, bad
}

// Run executes every analyzer over every package in the program, applies
// //gscope:allow suppressions, and returns all findings (suppressed ones
// included, marked) plus the per-analyzer summary. Unused allow comments
// are themselves findings: a suppression that no longer fires is stale
// and must be deleted, so the suppression inventory stays honest.
func (prog *Program) Run(analyzers []*Analyzer) ([]Finding, Summary, error) {
	// Allow rules are per file; index them once.
	type fileRules struct{ rules []*allowRule }
	byFile := make(map[string]*fileRules)
	var findings []Finding
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			name := prog.Fset.Position(f.Pos()).Filename
			rules, bad := collectAllows(prog.Fset, f)
			byFile[name] = &fileRules{rules: rules}
			findings = append(findings, bad...)
		}
	}

	counts := make(map[string]*AnalyzerCount, len(analyzers))
	for _, a := range analyzers {
		counts[a.Name] = &AnalyzerCount{Name: a.Name}
		for _, pkg := range prog.Packages {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Module:    prog.Module,
			}
			var diags []Diagnostic
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, Summary{}, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				pos := prog.Fset.Position(d.Pos)
				fnd := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				if fr := byFile[pos.Filename]; fr != nil {
					for _, r := range fr.rules {
						if r.analyzer != a.Name {
							continue
						}
						if r.line == pos.Line || r.line == pos.Line-1 {
							fnd.Suppressed = true
							fnd.Reason = r.reason
							r.used = true
							break
						}
					}
				}
				if fnd.Suppressed {
					counts[a.Name].Suppressed++
				} else {
					counts[a.Name].Reported++
				}
				findings = append(findings, fnd)
			}
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for file, fr := range byFile {
		for _, r := range fr.rules {
			if r.used {
				continue
			}
			msg := fmt.Sprintf("stale //gscope:allow %s: no %s diagnostic here — delete it", r.analyzer, r.analyzer)
			if !known[r.analyzer] {
				msg = fmt.Sprintf("//gscope:allow names unknown analyzer %q", r.analyzer)
			}
			findings = append(findings, Finding{
				Analyzer: "gscope-vet",
				Pos:      token.Position{Filename: file, Line: r.line},
				Message:  msg,
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})

	var sum Summary
	for _, a := range analyzers {
		sum.Analyzers = append(sum.Analyzers, *counts[a.Name])
	}
	return findings, sum, nil
}
