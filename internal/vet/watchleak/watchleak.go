// Package watchleak implements the gscope-vet analyzer that pairs every
// event-loop watch with a cancellation path.
//
// A glib watch (IOWatch from Loop.WatchReader and friends, WriteWatch
// from Loop.WatchWriter) owns a goroutine pumping a reader, listener, or
// write queue. One that is constructed and then forgotten keeps its
// goroutine and file descriptor until process exit — the classic slow
// leak in long-lived netscope servers.
//
// The analyzer's ownership rules are deliberately simple and local:
//
//   - a watch discarded outright (ExprStmt, or assigned only to blank)
//     is always a leak: nothing can ever cancel it;
//   - a watch held in a local variable must either have Cancel called on
//     that variable somewhere in the function, or visibly transfer
//     ownership — be returned, stored into a struct field or container,
//     passed to another call, or captured by a closure;
//   - a watch stored directly into a struct field transfers ownership to
//     the struct; the field's type then must have SOME method in the
//     package that cancels through that field (field.Cancel() or a
//     transfer of the field elsewhere), otherwise every instance leaks.
package watchleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/vet"
)

// Analyzer is the watchleak analyzer.
var Analyzer = &vet.Analyzer{
	Name: "watchleak",
	Doc:  "every glib watch construction must have a reachable Cancel: no discarded, blank-assigned, or never-canceled watches",
	Run:  run,
}

// constructors holds the FullName of every function returning an owned
// watch.
var constructors = map[string]bool{
	"(*repro/internal/glib.Loop).WatchReader":      true,
	"(*repro/internal/glib.Loop).WatchReaderSize":  true,
	"(*repro/internal/glib.Loop).WatchLines":       true,
	"(*repro/internal/glib.Loop).WatchLineBatches": true,
	"(*repro/internal/glib.Loop).WatchAccept":      true,
	"(*repro/internal/glib.Loop).WatchWriter":      true,
}

func run(pass *vet.Pass) error {
	c := &checker{pass: pass, info: pass.TypesInfo}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	c.checkFieldStores()
	return nil
}

type checker struct {
	pass *vet.Pass
	info *types.Info

	// fieldStores maps "Struct.field" keys that received a watch to the
	// position of one such store, for the package-wide phase.
	fieldStores map[string]token.Pos
}

func (c *checker) isConstructor(call *ast.CallExpr) bool {
	fn := vet.Callee(c.info, call)
	return fn != nil && constructors[vet.FuncKey(fn)]
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	// owned maps a local variable object to the construction position it
	// must account for.
	owned := make(map[*types.Var]token.Pos)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && c.isConstructor(call) {
				c.pass.Reportf(n.Pos(), "%s result discarded — the watch goroutine can never be canceled", calleeName(c.info, call))
			}
		case *ast.AssignStmt:
			c.assign(n, owned)
		}
		return true
	})

	// Second sweep: a local is cleared by a Cancel call on it or by any
	// use that transfers ownership (return, call argument, composite
	// literal, store into a non-blank lvalue, closure capture).
	if len(owned) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Cancel" {
				if v := localVar(c.info, sel.X); v != nil {
					delete(owned, v)
				}
			}
			for _, arg := range n.Args {
				if v := localVar(c.info, arg); v != nil {
					delete(owned, v)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if v := localVar(c.info, r); v != nil {
					delete(owned, v)
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if v := localVar(c.info, e); v != nil {
					delete(owned, v)
				}
			}
		case *ast.AssignStmt:
			// watch moved somewhere else: w2 := w, s.f = w, m[k] = w.
			for i, r := range n.Rhs {
				v := localVar(c.info, r)
				if v == nil {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				delete(owned, v)
			}
		case *ast.FuncLit:
			// Any use of the variable inside a closure counts as keeping a
			// cancelable reference alive.
			ast.Inspect(n.Body, func(in ast.Node) bool {
				if id, ok := in.(*ast.Ident); ok {
					if v, _ := c.info.Uses[id].(*types.Var); v != nil {
						delete(owned, v)
					}
				}
				return true
			})
			return false
		}
		return true
	})
	for v, pos := range owned {
		c.pass.Reportf(pos, "watch in %q is never canceled and never escapes %s", v.Name(), fd.Name.Name)
	}
}

// assign records construction results: into locals (tracked), blank
// (flagged), or struct fields (recorded for the package-wide phase).
func (c *checker) assign(as *ast.AssignStmt, owned map[*types.Var]token.Pos) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !c.isConstructor(call) || len(as.Lhs) != 1 {
		return
	}
	switch l := as.Lhs[0].(type) {
	case *ast.Ident:
		if l.Name == "_" {
			c.pass.Reportf(as.Pos(), "%s result assigned to blank — the watch goroutine can never be canceled", calleeName(c.info, call))
			return
		}
		if v, okDef := c.info.Defs[l].(*types.Var); okDef {
			owned[v] = as.Pos()
		} else if _, okUse := c.info.Uses[l].(*types.Var); okUse {
			// Plain `=` to an existing named variable: could be a field
			// alias or package var; treat as ownership transfer.
		}
	case *ast.SelectorExpr:
		if fld, owner, ok := vet.FieldSelection(c.info, l); ok {
			if key, ok := vet.FieldKey(owner, fld); ok {
				if c.fieldStores == nil {
					c.fieldStores = make(map[string]token.Pos)
				}
				if _, dup := c.fieldStores[key]; !dup {
					c.fieldStores[key] = as.Pos()
				}
			}
		}
	}
}

// checkFieldStores verifies that each struct field holding a watch is
// canceled somewhere in the package: some expression `x.field.Cancel()`
// or a use of `x.field` as a call argument or return value.
func (c *checker) checkFieldStores() {
	if len(c.fieldStores) == 0 {
		return
	}
	released := make(map[string]bool)
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// x.field.Cancel() — the receiver chain ends in a tracked field.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Cancel" {
				if key, ok := c.fieldKeyOf(sel.X); ok {
					released[key] = true
				}
			}
			// x.field passed onward (e.g. to a helper that cancels).
			for _, arg := range call.Args {
				if key, ok := c.fieldKeyOf(arg); ok {
					released[key] = true
				}
			}
			return true
		})
		// Range over a container of watches with per-element Cancel is
		// covered by the Cancel-receiver case (`w.Cancel()` on the range
		// variable is not a field selection), so also accept any range
		// whose X is the tracked field.
		ast.Inspect(f, func(n ast.Node) bool {
			if rg, ok := n.(*ast.RangeStmt); ok {
				if key, ok := c.fieldKeyOf(rg.X); ok {
					released[key] = true
				}
			}
			return true
		})
	}
	for key, pos := range c.fieldStores {
		if !released[key] {
			c.pass.Reportf(pos, "watch stored in %s but no method cancels it — every instance leaks its goroutine", key)
		}
	}
}

// fieldKeyOf resolves an expression of the form x.field (possibly
// index-wrapped, e.g. x.clients[conn]) to a tracked field-store key.
func (c *checker) fieldKeyOf(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fld, owner, ok := vet.FieldSelection(c.info, sel)
	if !ok {
		return "", false
	}
	key, ok := vet.FieldKey(owner, fld)
	if !ok || c.fieldStores == nil {
		return "", false
	}
	_, tracked := c.fieldStores[key]
	return key, tracked
}

// localVar resolves an identifier expression to a function-local
// variable object.
func localVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil || v.IsField() || v.Parent() == nil {
		return nil
	}
	// Package-scope vars have the package scope as parent; locals sit in
	// nested scopes. Either way a use keeps the watch reachable, so the
	// distinction does not matter for clearing ownership.
	return v
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := vet.Callee(info, call); fn != nil {
		return fn.Name()
	}
	return "watch constructor"
}
