package watchleak_test

import (
	"testing"

	"repro/internal/testutil"
	"repro/internal/vet/watchleak"
)

func TestWatchLeak(t *testing.T) {
	testutil.RunAnalyzer(t, watchleak.Analyzer, map[string]string{"a.go": `
package watchleaktest

import (
	"io"

	"repro/internal/glib"
)

func discarded(l *glib.Loop, r io.Reader) {
	l.WatchReader(r, nil) // want ` + "`WatchReader result discarded`" + `
}

func blanked(l *glib.Loop, r io.Reader) {
	_ = l.WatchReader(r, nil) // want ` + "`WatchReader result assigned to blank`" + `
}

func localNeverCanceled(l *glib.Loop, r io.Reader) {
	w := l.WatchLines(r, nil) // want ` + "`watch in \"w\" is never canceled and never escapes localNeverCanceled`" + `
	_ = w
}

func localCanceled(l *glib.Loop, r io.Reader) {
	w := l.WatchReader(r, nil)
	w.Cancel()
}

func returned(l *glib.Loop, r io.Reader) *glib.IOWatch {
	w := l.WatchReader(r, nil)
	return w
}

func passedOn(l *glib.Loop, r io.Reader) {
	w := l.WatchReader(r, nil)
	adopt(w)
}

func adopt(w *glib.IOWatch) {}

func capturedByClosure(l *glib.Loop, r io.Reader) func() {
	w := l.WatchReader(r, nil)
	return func() { w.Cancel() }
}

// leaky stores a watch into a field no method ever cancels.
type leaky struct {
	w *glib.IOWatch
}

func (h *leaky) start(l *glib.Loop, r io.Reader) {
	h.w = l.WatchReader(r, nil) // want ` + "`watch stored in .*leaky.w but no method cancels it`" + `
}

// owned pairs the field store with a Cancel through the same field.
type owned struct {
	w *glib.IOWatch
}

func (h *owned) start(l *glib.Loop, r io.Reader) {
	h.w = l.WatchReader(r, nil)
}

func (h *owned) stop() {
	h.w.Cancel()
}

// pool stores watches in a map field and cancels them by ranging it.
type pool struct {
	watches map[string]*glib.WriteWatch
}

func (p *pool) add(l *glib.Loop, w io.Writer, key string) {
	ww := l.WatchWriter(w, 8, nil)
	p.watches[key] = ww
}

func (p *pool) closeAll() {
	for _, ww := range p.watches {
		ww.Cancel()
	}
}

func allowedDiscard(l *glib.Loop, r io.Reader) {
	l.WatchReader(r, nil) //gscope:allow watchleak fixture: process-lifetime watch // allowed ` + "`result discarded`" + `
}
`})
}
