package vet_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/testutil"
	"repro/internal/vet"
)

// typecheck checks a single import-free file.
func typecheck(fset *token.FileSet, f *ast.File, info *types.Info) (*types.Package, error) {
	conf := types.Config{}
	return conf.Check("p", fset, []*ast.File{f}, info)
}

// marker flags every identifier named "flagme" — a minimal analyzer for
// exercising the suppression pipeline.
var marker = &vet.Analyzer{
	Name: "marker",
	Doc:  "test analyzer: flags identifiers named flagme",
	Run: func(pass *vet.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "flagme" {
					pass.Reportf(id.Pos(), "identifier flagme")
				}
				return true
			})
		}
		return nil
	},
}

func TestSuppressionPipeline(t *testing.T) {
	res := testutil.RunAnalyzer(t, marker, map[string]string{"a.go": `
package markertest

var flagme int // want ` + "`identifier flagme`" + `

var other = flagme //gscope:allow marker fixture: reading is fine here // allowed ` + "`identifier flagme`" + `

//gscope:allow marker fixture: allow above the line
var flagme2 = flagme // allowed ` + "`identifier flagme`" + `
`})
	var sum vet.AnalyzerCount
	for _, a := range res.Summary.Analyzers {
		if a.Name == "marker" {
			sum = a
		}
	}
	if sum.Reported != 1 || sum.Suppressed != 2 {
		t.Errorf("summary = %d reported, %d suppressed; want 1, 2", sum.Reported, sum.Suppressed)
	}
}

func TestStaleAndUnknownAllows(t *testing.T) {
	testutil.RunAnalyzer(t, marker, map[string]string{"a.go": `
package markertest

//gscope:allow marker nothing fires on the next line // want ` + "`stale //gscope:allow marker`" + `
var clean int

//gscope:allow nosuchanalyzer some reason // want ` + "`unknown analyzer \"nosuchanalyzer\"`" + `
var clean2 int
`})
}

// TestMalformedAllow cannot use want comments: any text after the
// analyzer name — including an expectation comment — would itself be
// the missing reason. Drive the runner directly.
func TestMalformedAllow(t *testing.T) {
	src := `package markertest

//gscope:allow marker
var clean int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := vet.NewInfo()
	tpkg, err := typecheck(fset, f, info)
	if err != nil {
		t.Fatal(err)
	}
	prog := &vet.Program{
		Fset:   fset,
		Module: vet.NewModule(),
		Packages: []*vet.Package{{
			ImportPath: "p", Files: []*ast.File{f}, Types: tpkg, Info: info,
		}},
	}
	findings, _, err := prog.Run([]*vet.Analyzer{marker})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "malformed //gscope:allow") {
		t.Errorf("findings = %+v, want one malformed-allow diagnostic", findings)
	}
}

func TestParseDirective(t *testing.T) {
	src := `package p

//gscope:hotpath
//gscope:guardedby mu
//gscope:locked regMu
// plain comment
//gscope:allow hotpath the reason text
func f() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, g := range f.Comments {
		for _, d := range vet.Directives(g) {
			got = append(got, d.Verb+"|"+d.Args)
		}
	}
	want := []string{"hotpath|", "guardedby|mu", "locked|regMu", "allow|hotpath the reason text"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("directives = %v, want %v", got, want)
	}
}

func TestLockedNamingConvention(t *testing.T) {
	src := `package p

type s struct{ x int }

func (p *s) stealLocked() {}

// Locked alone is a predicate name (the PLL has one), not the
// convention.
func (p *s) Locked() bool { return true }

func helperLocked() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := vet.NewInfo()
	tpkg, err := typecheck(fset, f, info)
	if err != nil {
		t.Fatal(err)
	}
	_ = tpkg
	m := vet.NewModule()
	if err := vet.CollectFacts(m, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	if len(m.Locked) != 1 {
		t.Fatalf("Locked facts = %v, want exactly stealLocked", m.Locked)
	}
	for k, lock := range m.Locked {
		if !strings.Contains(k, "stealLocked") || lock != "mu" {
			t.Errorf("Locked fact %s=%s, want stealLocked=mu", k, lock)
		}
	}
}
