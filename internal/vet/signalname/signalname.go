// Package signalname implements the gscope-vet analyzer that moves
// signal-name validation from runtime to analysis time.
//
// Every name that reaches a registration site — tuple.Interner.Intern,
// core.Feed.Register/Probe, core.Scope.Probe, netscope.Client.Probe,
// the gscope facade Registry.Probe/MustProbe — is validated by
// tuple.ValidateName before it is accepted, so an invalid literal is a
// guaranteed runtime error (or panic, for MustProbe). When the argument
// is a compile-time constant string the analyzer runs the very same
// tuple.ValidateName over it and reports the rejection at the call
// site. Non-constant names stay a runtime concern.
package signalname

import (
	"go/ast"
	"go/constant"

	"repro/internal/tuple"
	"repro/internal/vet"
)

// Analyzer is the signalname analyzer.
var Analyzer = &vet.Analyzer{
	Name: "signalname",
	Doc:  "constant signal names at registration sites must pass tuple.ValidateName",
	Run:  run,
}

// registrars maps the FullName of each registration function to the
// index of its name argument.
var registrars = map[string]int{
	"(*repro/internal/tuple.Interner).Intern":   0,
	"(*repro/internal/core.Feed).Register":      0,
	"(*repro/internal/core.Feed).Probe":         0,
	"(*repro/internal/core.Scope).Probe":        0,
	"(*repro/internal/netscope.Client).Probe":   0,
	"(*repro.Registry).Probe":                   0,
	"(*repro.Registry).MustProbe":               0,
	"(*repro/internal/core.Scope).RemoveSignal": 0,
}

func run(pass *vet.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := vet.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			idx, ok := registrars[vet.FuncKey(fn)]
			if !ok || idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			name := constant.StringVal(tv.Value)
			if err := tuple.ValidateName(name); err != nil {
				pass.Reportf(arg.Pos(), "%q rejected at runtime by %s: %v", name, fn.Name(), err)
			}
			return true
		})
	}
	return nil
}
