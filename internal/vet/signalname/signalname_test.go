package signalname_test

import (
	"testing"

	"repro/internal/testutil"
	"repro/internal/vet/signalname"
)

func TestSignalName(t *testing.T) {
	testutil.RunAnalyzer(t, signalname.Analyzer, map[string]string{"a.go": `
package signalnametest

import "repro/internal/tuple"

func register(in *tuple.Interner) {
	in.Intern("cpu.load")
	in.Intern("") // empty selects the two-field tuple form: valid
	in.Intern("bad\nname")   // want ` + "`rejected at runtime by Intern.*line break`" + `
	in.Intern(" padded")     // want ` + "`rejected at runtime by Intern.*whitespace`" + `
	in.Intern("trailing \t") // want ` + "`rejected at runtime by Intern.*whitespace`" + `
}

const derived = "derived" + "\r" + "name"

func registerConst(in *tuple.Interner) {
	in.Intern(derived) // want ` + "`rejected at runtime by Intern`" + `
}

// runtimeName is not a constant; validation stays a runtime concern.
func runtimeName(in *tuple.Interner, name string) {
	in.Intern(name)
}

func allowedBad(in *tuple.Interner) {
	in.Intern("intentionally bad\n") //gscope:allow signalname fixture: exercises the runtime rejection path // allowed ` + "`rejected at runtime`" + `
}
`})
}
