package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// The loader resolves packages the way cmd/vet's unitchecker does:
// `go list -export` compiles every dependency and reports the build-cache
// file holding its export data, and the stdlib gc importer materializes
// types.Packages from those files. Only the packages being analyzed are
// parsed and type-checked from source (analyzers need syntax and
// comments); everything they import — stdlib and module-internal alike —
// loads from export data. This works with no network and no GOPATH
// contents beyond the toolchain itself.

// A Package is one source-loaded, type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Program is a set of loaded packages sharing one FileSet and one
// module-wide fact base.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Module   *Module
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// goList runs `go list -export -json` over the patterns in dir and
// decodes the stream of package objects.
func goList(dir string, deps bool, patterns []string) ([]listedPkg, error) {
	args := []string{"list", "-export", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error,DepsErrors"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil && len(out) == 0 {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		for _, de := range p.DepsErrors {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, de.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies go/types.Importer backed by export-data files
// discovered via go list, with a lazy fallback for paths (such as
// transitive test-only imports) the eager -deps listing did not cover.
type exportImporter struct {
	dir     string
	mu      sync.Mutex
	exports map[string]string
	gc      types.Importer
}

func newExportImporter(fset *token.FileSet, dir string, exports map[string]string) *exportImporter {
	ei := &exportImporter{dir: dir, exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", ei.lookup)
	return ei
}

func (ei *exportImporter) lookup(path string) (io.ReadCloser, error) {
	ei.mu.Lock()
	file, ok := ei.exports[path]
	ei.mu.Unlock()
	if !ok {
		pkgs, err := goList(ei.dir, true, []string{path})
		if err != nil {
			return nil, fmt.Errorf("no export data for %q: %v", path, err)
		}
		ei.mu.Lock()
		for _, p := range pkgs {
			if p.Export != "" {
				ei.exports[p.ImportPath] = p.Export
			}
		}
		file, ok = ei.exports[path]
		ei.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

func (ei *exportImporter) Import(path string) (*types.Package, error) { return ei.gc.Import(path) }

// NewImporter returns a types.Importer resolving any import path through
// `go list -export` run in dir (typically the module root). The test
// harness uses it to type-check inline sources whose imports — stdlib or
// repro-internal — resolve exactly as the real build would.
func NewImporter(fset *token.FileSet, dir string) types.Importer {
	return newExportImporter(fset, dir, make(map[string]string))
}

// NewInfo returns a types.Info with every map an analyzer needs
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Load lists patterns in dir (a directory inside the module), parses and
// type-checks every non-standard matched package from source, loads all
// dependencies from export data, and collects module-wide annotation
// facts.
func Load(dir string, patterns ...string) (*Program, error) {
	pkgs, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}
	// The -deps listing interleaves targets and dependencies; targets are
	// the module's own packages. (Dependencies of a target that are
	// themselves module packages are targets too under "./...", which is
	// how gscope-vet is run; a narrower pattern analyzes just its
	// matches.)
	exports := make(map[string]string)
	matched := make(map[string]bool)
	if len(patterns) > 0 {
		// Re-list without -deps to know which packages the patterns
		// themselves name.
		direct, err := goList(dir, false, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range direct {
			matched[p.ImportPath] = true
		}
	}
	var targets []listedPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if matched[p.ImportPath] && !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no module packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, dir, exports)
	prog := &Program{Fset: fset, Module: NewModule()}
	for _, lp := range targets {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, Files: files, Types: tpkg, Info: info}
		prog.Module.Internal[lp.ImportPath] = true
		if err := CollectFacts(prog.Module, pkg.Files, pkg.Info); err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}
