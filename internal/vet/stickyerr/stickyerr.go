// Package stickyerr implements the gscope-vet analyzer encoding
// docs/WIRE.md §B7 — the fail-closed clause for binary framing errors.
//
// tuple.ErrBadFrame means the frame boundaries are lost: nothing after
// it on the stream is decodable, so a consumer must stop (drop the
// connection, seal the scan at the decoded prefix). A bad TEXT line
// (tuple.ErrBadLine) resynchronizes at the next newline and is legal to
// skip; treating a frame error the same way silently decodes garbage.
//
// Flagged:
//
//   - comparing an error to ErrBadFrame with == or != (wrapped frame
//     errors escape the check; errors.Is is required)
//   - an errors.Is(err, ErrBadFrame) branch that continues a loop,
//     clears the error, is empty, or falls through to the next
//     iteration — anything but terminating the consuming path
//   - re-wrapping the tested error with fmt.Errorf without %w inside
//     such a branch, which strips the sticky identity
//   - discarding the error result of (*tuple.StreamDecoder).Feed, the
//     call that produces frame errors on the live read path
package stickyerr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/vet"
)

// Analyzer is the stickyerr analyzer.
var Analyzer = &vet.Analyzer{
	Name: "stickyerr",
	Doc:  "tuple.ErrBadFrame is sticky fail-closed: never skipped, cleared, ==-compared, unwrapped-rewrapped, or dropped",
	Run:  run,
}

// tuplePkg is the package declaring the sticky sentinel.
const tuplePkg = "repro/internal/tuple"

// stickySources are functions whose error result carries ErrBadFrame
// and must never be discarded.
var stickySources = map[string]bool{
	"(*repro/internal/tuple.StreamDecoder).Feed": true,
}

func run(pass *vet.Pass) error {
	c := &checker{pass: pass, info: pass.TypesInfo}
	for _, f := range pass.Files {
		ast.Inspect(f, c.visit)
	}
	return nil
}

type checker struct {
	pass *vet.Pass
	info *types.Info
	// loopDepth counts enclosing for/range statements during the walk.
	loops []ast.Node
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.BinaryExpr:
		if (n.Op == token.EQL || n.Op == token.NEQ) &&
			(c.isBadFrame(n.X) || c.isBadFrame(n.Y)) {
			c.pass.Reportf(n.Pos(), "ErrBadFrame compared with %s — wrapped frame errors escape this; use errors.Is", n.Op)
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok && c.isStickySource(call) {
			c.pass.Reportf(n.Pos(), "error result of %s dropped — frame errors are sticky fail-closed", calleeName(c.info, call))
		}
	case *ast.AssignStmt:
		c.blankedSticky(n)
	case *ast.IfStmt:
		c.ifStmt(n)
	}
	return true
}

// isBadFrame reports whether the expression denotes tuple.ErrBadFrame.
func (c *checker) isBadFrame(e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := c.info.Uses[id].(*types.Var)
	return ok && v.Name() == "ErrBadFrame" && v.Pkg() != nil && v.Pkg().Path() == tuplePkg
}

func (c *checker) isStickySource(call *ast.CallExpr) bool {
	fn := vet.Callee(c.info, call)
	return fn != nil && stickySources[vet.FuncKey(fn)]
}

// blankedSticky flags `_ = dec.Feed(...)` and friends: every error
// position assigned to blank.
func (c *checker) blankedSticky(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !c.isStickySource(call) {
		return
	}
	for _, l := range as.Lhs {
		if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	c.pass.Reportf(as.Pos(), "error result of %s blanked — frame errors are sticky fail-closed", calleeName(c.info, call))
}

// ifStmt analyzes branches taken when an ErrBadFrame test succeeds.
func (c *checker) ifStmt(ifs *ast.IfStmt) {
	testedVar, positive := c.frameTest(ifs.Cond)
	if !positive {
		return
	}
	body := ifs.Body
	if len(body.List) == 0 {
		c.pass.Reportf(ifs.Pos(), "empty branch ignores ErrBadFrame — frame errors are sticky fail-closed")
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false // continue inside these targets something else
		case *ast.BranchStmt:
			if n.Tok == token.CONTINUE {
				c.pass.Reportf(n.Pos(), "continue skips past ErrBadFrame — the stream is undecodable after a frame error")
			}
		case *ast.AssignStmt:
			if testedVar != nil && c.clearsErr(n, testedVar) {
				c.pass.Reportf(n.Pos(), "clearing the error on the ErrBadFrame path discards a sticky failure")
			}
		case *ast.CallExpr:
			if c.rewraps(n, testedVar) {
				c.pass.Reportf(n.Pos(), "fmt.Errorf without %%w strips the ErrBadFrame identity — downstream errors.Is checks go blind")
			}
		}
		return true
	})
	if !terminates(body) && c.inLoop(ifs) {
		c.pass.Reportf(ifs.Pos(), "ErrBadFrame branch falls through to the next iteration — frame errors are sticky fail-closed")
	}
}

// frameTest reports whether cond contains a non-negated ErrBadFrame
// test, and the error variable being tested, so `if errors.Is(err,
// ErrBadFrame) { ... }` and `if err == io.EOF || errors.Is(err,
// ErrBadFrame) { ... }` both resolve to the then-branch.
func (c *checker) frameTest(cond ast.Expr) (*types.Var, bool) {
	var errVar *types.Var
	found := false
	neg := false
	var walk func(e ast.Expr, negated bool)
	walk = func(e ast.Expr, negated bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				walk(e.X, !negated)
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LAND, token.LOR:
				walk(e.X, negated)
				walk(e.Y, negated)
			case token.EQL, token.NEQ:
				if c.isBadFrame(e.X) || c.isBadFrame(e.Y) {
					found = true
					neg = negated != (e.Op == token.NEQ)
				}
			}
		case *ast.CallExpr:
			fn := vet.Callee(c.info, e)
			if fn != nil && vet.PkgPath(fn) == "errors" && fn.Name() == "Is" && len(e.Args) == 2 && c.isBadFrame(e.Args[1]) {
				found = true
				neg = negated
				if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok {
					errVar, _ = c.info.Uses[id].(*types.Var)
				}
			}
		}
	}
	walk(cond, false)
	return errVar, found && !neg
}

// clearsErr reports err = nil for the tested variable.
func (c *checker) clearsErr(as *ast.AssignStmt, errVar *types.Var) bool {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, l := range as.Lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		if v, _ := c.info.Uses[id].(*types.Var); v == errVar {
			if tv, ok := c.info.Types[as.Rhs[i]]; ok && tv.IsNil() {
				return true
			}
		}
	}
	return false
}

// rewraps flags fmt.Errorf calls in the branch that mention the tested
// error without a %w verb.
func (c *checker) rewraps(call *ast.CallExpr, errVar *types.Var) bool {
	fn := vet.Callee(c.info, call)
	if fn == nil || vet.PkgPath(fn) != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return false
	}
	tv, ok := c.info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return false
	}
	for _, a := range call.Args[1:] {
		t := c.info.Types[a].Type
		if t != nil && isErrorType(t) {
			if errVar == nil {
				return true
			}
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if v, _ := c.info.Uses[id].(*types.Var); v == errVar {
					return true
				}
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// terminates reports whether a block definitely leaves the enclosing
// loop/function: its last statement is return, break, goto, or panic.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		// continue is flagged separately; counting it as "leaving the
		// block" here avoids double-reporting the same branch.
		return last.Tok == token.BREAK || last.Tok == token.GOTO || last.Tok == token.CONTINUE
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last)
	case *ast.IfStmt:
		if last.Else == nil {
			return false
		}
		elseB, ok := last.Else.(*ast.BlockStmt)
		return ok && terminates(last.Body) && terminates(elseB)
	}
	return false
}

// inLoop reports whether the if statement sits inside a for/range body
// in the same function — found by re-walking the file, which is cheap at
// this scale.
func (c *checker) inLoop(target *ast.IfStmt) bool {
	in := false
	for _, f := range c.pass.Files {
		if f.Pos() <= target.Pos() && target.Pos() < f.End() {
			var depth int
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					return false
				}
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					if n.Pos() <= target.Pos() && target.Pos() < n.End() {
						depth++
					}
				}
				if n == ast.Node(target) {
					in = depth > 0
				}
				return true
			})
		}
	}
	return in
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := vet.Callee(info, call); fn != nil {
		return fn.Name()
	}
	return "call"
}
