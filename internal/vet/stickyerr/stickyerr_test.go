package stickyerr_test

import (
	"testing"

	"repro/internal/testutil"
	"repro/internal/vet/stickyerr"
)

func TestStickyErr(t *testing.T) {
	testutil.RunAnalyzer(t, stickyerr.Analyzer, map[string]string{"a.go": `
package stickyerrtest

import (
	"errors"
	"fmt"

	"repro/internal/tuple"
)

// stop is the WIRE.md §B7-conformant shape: a frame error seals the
// scan at the decoded prefix.
func stop(errs []error) error {
	for _, err := range errs {
		if errors.Is(err, tuple.ErrBadFrame) {
			return err
		}
	}
	return nil
}

func directCompare(err error) bool {
	return err == tuple.ErrBadFrame // want ` + "`ErrBadFrame compared with ==`" + `
}

func directCompareNeq(err error) bool {
	return err != tuple.ErrBadFrame // want ` + "`ErrBadFrame compared with !=`" + `
}

func skips(errs []error) {
	for _, err := range errs {
		if errors.Is(err, tuple.ErrBadFrame) {
			continue // want ` + "`continue skips past ErrBadFrame`" + `
		}
	}
}

func fallsThrough(errs []error) int {
	n := 0
	for _, err := range errs {
		if errors.Is(err, tuple.ErrBadFrame) { // want ` + "`falls through to the next iteration`" + `
			n++
		}
	}
	return n
}

func emptyBranch(err error) {
	if errors.Is(err, tuple.ErrBadFrame) { // want ` + "`empty branch ignores ErrBadFrame`" + `
	}
}

func clears(err error) error {
	if errors.Is(err, tuple.ErrBadFrame) {
		err = nil // want ` + "`clearing the error on the ErrBadFrame path`" + `
		return err
	}
	return err
}

func rewraps(err error) error {
	if errors.Is(err, tuple.ErrBadFrame) {
		return fmt.Errorf("decode failed: %v", err) // want ` + "`fmt.Errorf without %w strips the ErrBadFrame identity`" + `
	}
	return err
}

// rewrapKeeping %w preserves the chain and is legal.
func rewrapKeeping(err error) error {
	if errors.Is(err, tuple.ErrBadFrame) {
		return fmt.Errorf("decode failed: %w", err)
	}
	return err
}

func drops(d *tuple.StreamDecoder, b []byte) {
	d.Feed(b, nil, nil) // want ` + "`error result of Feed dropped`" + `
}

func blanks(d *tuple.StreamDecoder, b []byte) {
	_ = d.Feed(b, nil, nil) // want ` + "`error result of Feed blanked`" + `
}

func keeps(d *tuple.StreamDecoder, b []byte) error {
	return d.Feed(b, nil, nil)
}

func allowedDrop(d *tuple.StreamDecoder, b []byte) {
	d.Feed(b, nil, nil) //gscope:allow stickyerr fixture: decoder discarded right after // allowed ` + "`error result of Feed dropped`" + `
}
`})
}
