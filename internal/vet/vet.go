// Package vet is the minimal static-analysis framework behind
// cmd/gscope-vet: a self-contained, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis surface this repo needs. The container
// building this repo has no module proxy access, so rather than vendor
// x/tools the framework provides the same shape — an Analyzer with a Run
// function over a type-checked Pass — backed by a loader that shells out
// to `go list -export` and type-checks from compiler export data (the
// same mechanism cmd/vet's unitchecker uses).
//
// The framework adds one repo-specific layer the stock multichecker does
// not have: module-wide annotation facts. The loader scans every loaded
// package for `//gscope:` directives (see ParseDirective) and publishes
// them on Pass.Module, so an analyzer checking one package can ask
// whether a function in another package is marked `//gscope:hotpath`,
// which lock a `//gscope:locked` function expects held, or which struct
// fields are `//gscope:guardedby` a mutex. Suppressions
// (`//gscope:allow <analyzer> <reason>`) are applied by the runner, not
// by analyzers; see run.go.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis: a named invariant checked over a
// single type-checked package at a time. Cross-package knowledge flows
// only through Module facts, which keeps every analyzer independently
// testable over inline source (testutil.RunAnalyzer).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//gscope:allow <name>` suppressions. By convention a short,
	// lowercase word.
	Name string

	// Doc is the one-paragraph description `gscope-vet -help` prints:
	// the invariant, the annotation grammar it consumes, and what a
	// diagnostic means.
	Doc string

	// Run checks one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one package: syntax, types, and the
// module-wide annotation facts.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Module    *Module

	report func(Diagnostic)
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records one finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Module is the annotation fact base collected over every loaded package
// before any analyzer runs. Keys are stable strings rather than
// types.Object values because a package loaded from source and the same
// package materialized from export data (as a dependency of another
// pass) produce distinct object identities.
type Module struct {
	// Hotpath holds the FullName (types.Func.FullName, e.g.
	// "(*repro/internal/core.Probe).RecordAt") of every function marked
	// //gscope:hotpath.
	Hotpath map[string]bool

	// Locked maps the FullName of every function that requires a lock
	// already held on entry to the name of the receiver field holding
	// that lock — from an explicit `//gscope:locked mu` directive, or
	// from the `...Locked` naming convention (which implies "mu").
	Locked map[string]string

	// Guarded maps a field key ("pkgpath.Struct.Field") to the name of
	// the sibling mutex field that `//gscope:guardedby <mu>` declares
	// must be held for every access.
	Guarded map[string]string

	// Atomic holds field keys marked `//gscope:atomic`: plain-typed
	// fields that may only be touched through sync/atomic, never with
	// plain loads or stores.
	Atomic map[string]bool

	// Internal holds the import paths of every source-loaded package.
	// Analyzers use it to distinguish module-internal callees (whose
	// annotations are known) from external ones: a call into a package
	// that was never loaded cannot be proven hot-path clean.
	Internal map[string]bool
}

// NewModule returns an empty fact base.
func NewModule() *Module {
	return &Module{
		Hotpath:  make(map[string]bool),
		Locked:   make(map[string]string),
		Guarded:  make(map[string]string),
		Atomic:   make(map[string]bool),
		Internal: make(map[string]bool),
	}
}

// FuncKey returns the stable cross-package key for a function object:
// its FullName, e.g. "repro/internal/tuple.CleanName" or
// "(*repro/internal/core.Feed).PushID".
func FuncKey(fn *types.Func) string { return fn.FullName() }

// FieldKey returns the stable key for a field of a named struct type:
// "pkgpath.Struct.Field". The second result is false when the owner is
// not a named type in a package (e.g. a field of an anonymous struct).
func FieldKey(owner types.Type, field *types.Var) (string, bool) {
	for {
		switch t := owner.(type) {
		case *types.Pointer:
			owner = t.Elem()
			continue
		case *types.Named:
			obj := t.Obj()
			if obj.Pkg() == nil {
				return "", false
			}
			return obj.Pkg().Path() + "." + obj.Name() + "." + field.Name(), true
		default:
			return "", false
		}
	}
}

// A Directive is one parsed `//gscope:<verb> <args>` comment.
type Directive struct {
	Pos  token.Pos
	Verb string // "hotpath", "guardedby", "locked", "atomic", "allow"
	Args string // remainder after the verb, space-trimmed
}

// ParseDirective parses a single comment. It returns false for comments
// that are not gscope directives. Note ast.CommentGroup.Text strips
// directive-style comments entirely, so callers must walk the raw
// comment list — which this signature enforces.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//gscope:")
	if !ok {
		return Directive{}, false
	}
	verb, args, _ := strings.Cut(text, " ")
	return Directive{Pos: c.Slash, Verb: verb, Args: strings.TrimSpace(args)}, true
}

// Directives returns every gscope directive in a comment group.
func Directives(g *ast.CommentGroup) []Directive {
	if g == nil {
		return nil
	}
	var out []Directive
	for _, c := range g.List {
		if d, ok := ParseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// HasDirective reports whether the comment group carries the verb, and
// returns its arguments.
func HasDirective(g *ast.CommentGroup, verb string) (string, bool) {
	for _, d := range Directives(g) {
		if d.Verb == verb {
			return d.Args, true
		}
	}
	return "", false
}

// CollectFacts scans one package's syntax for annotation directives and
// merges them into m. The loader calls it for every package before any
// analyzer runs; the test harness calls it over its inline sources.
func CollectFacts(m *Module, files []*ast.File, info *types.Info) error {
	var firstErr error
	record := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn, _ := info.Defs[n.Name].(*types.Func)
				if fn == nil {
					return true
				}
				if _, ok := HasDirective(n.Doc, "hotpath"); ok {
					m.Hotpath[FuncKey(fn)] = true
				}
				if args, ok := HasDirective(n.Doc, "locked"); ok {
					if args == "" {
						record(fmt.Errorf("%s: //gscope:locked needs a lock field name", fn.FullName()))
						return true
					}
					m.Locked[FuncKey(fn)] = args
				} else if strings.HasSuffix(n.Name.Name, "Locked") && n.Name.Name != "Locked" && n.Recv != nil {
					m.Locked[FuncKey(fn)] = "mu"
				}
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				tn, _ := info.Defs[n.Name].(*types.TypeName)
				if tn == nil || tn.Pkg() == nil {
					return true
				}
				for _, field := range st.Fields.List {
					for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
						lock, guarded := HasDirective(g, "guardedby")
						_, atomicOnly := HasDirective(g, "atomic")
						if !guarded && !atomicOnly {
							continue
						}
						if guarded && lock == "" {
							record(fmt.Errorf("%s.%s: //gscope:guardedby needs a lock field name", tn.Pkg().Path(), tn.Name()))
							continue
						}
						for _, name := range field.Names {
							key := tn.Pkg().Path() + "." + tn.Name() + "." + name.Name
							if guarded {
								m.Guarded[key] = lock
							}
							if atomicOnly {
								m.Atomic[key] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return firstErr
}
