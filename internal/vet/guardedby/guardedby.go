// Package guardedby implements the gscope-vet analyzer enforcing the
// repo's lock and atomic disciplines — the invariant class behind the
// Probe displayed-watermark mirror, where one field is written under a
// shard mutex while a sibling atomic mirrors it for lock-free readers.
//
// Two rules:
//
//  1. A struct field annotated `//gscope:guardedby mu` may only be
//     accessed while the sibling lock `mu` on the same receiver is held.
//     Lock state is tracked flow-sensitively through each function body:
//     x.mu.Lock()/Unlock()/RLock()/RUnlock() calls update the state,
//     branches merge conservatively (a lock is held after an if only
//     when every surviving branch holds it), and `defer x.mu.Unlock()`
//     keeps the lock held to the end of the function. Writes require the
//     exclusive lock; reads accept a read lock. A function that expects
//     its caller to hold the lock declares it with `//gscope:locked mu`
//     (methods named `...Locked` default to requiring `mu`), which both
//     seeds the state inside the function and obliges every caller to
//     hold that lock at the call site.
//
//  2. A field touched through sync/atomic — annotated `//gscope:atomic`,
//     or detected because `&x.f` is passed to a sync/atomic function
//     anywhere in the package — must never also be accessed with plain
//     loads or stores; the mix is exactly the race the displayed
//     watermark had before it grew its atomic mirror.
//
// Fields of type atomic.Int64 & co. need no annotation: the type system
// already forbids plain access.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/vet"
)

// Analyzer is the guardedby analyzer.
var Analyzer = &vet.Analyzer{
	Name: "guardedby",
	Doc:  "//gscope:guardedby fields are only touched under their lock; atomically-accessed fields are never also plainly accessed",
	Run:  run,
}

// mode is how a lock is held.
type mode int

const (
	shared mode = 1 // RLock
	excl   mode = 2 // Lock
)

// state maps a rendered lock expression ("s.mu", "p.sh.mu") to how it is
// held. Keys are syntactic: aliasing through renamed variables is out of
// scope, which matches how the code is written (the alias and the lock
// call use the same variable).
type state map[string]mode

func (s state) clone() state {
	n := make(state, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

// merge returns the intersection of two states, keeping the weaker mode.
func merge(a, b state) state {
	n := make(state)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				n[k] = vb
			} else {
				n[k] = va
			}
		}
	}
	return n
}

func run(pass *vet.Pass) error {
	c := &checker{
		pass:       pass,
		info:       pass.TypesInfo,
		atomics:    make(map[string]token.Pos),
		atomicUses: make(map[*ast.SelectorExpr]bool),
	}
	// Pass 1: find fields whose address reaches sync/atomic, and record
	// the exact selector nodes used that way so pass 2 can exempt them.
	for fd := range vet.EnclosingFuncs(pass.Files, pass.TypesInfo) {
		ast.Inspect(fd.Body, c.findAtomics)
	}
	// Pass 2: flow-check every function.
	for fd, fn := range vet.EnclosingFuncs(pass.Files, pass.TypesInfo) {
		c.checkFunc(fd, fn)
	}
	return nil
}

type checker struct {
	pass *vet.Pass
	info *types.Info

	// atomics maps field keys accessed via sync/atomic to one use
	// position (for the diagnostic); atomicUses marks the selector nodes
	// inside those atomic calls.
	atomics    map[string]token.Pos
	atomicUses map[*ast.SelectorExpr]bool
}

// findAtomics records fields used as &x.f arguments to sync/atomic
// functions.
func (c *checker) findAtomics(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	fn := vet.Callee(c.info, call)
	if vet.PkgPath(fn) != "sync/atomic" {
		return true
	}
	for _, arg := range call.Args {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		field, recv, ok := vet.FieldSelection(c.info, sel)
		if !ok {
			continue
		}
		if key, ok := vet.FieldKey(recv, field); ok {
			if _, seen := c.atomics[key]; !seen {
				c.atomics[key] = sel.Pos()
			}
			c.atomicUses[sel] = true
		}
	}
	return true
}

// checkFunc flow-checks one function body.
func (c *checker) checkFunc(fd *ast.FuncDecl, fn *types.Func) {
	st := make(state)
	if lock, ok := c.pass.Module.Locked[vet.FuncKey(fn)]; ok {
		if recv := recvName(fd); recv != "" {
			st[recv+"."+lock] = excl
		}
	}
	c.block(fd.Body.List, st)
}

// recvName returns the receiver identifier of a method declaration.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// block walks a statement list, threading lock state. It returns the
// exit state and whether control definitely leaves the block (return,
// break, continue, goto, panic).
func (c *checker) block(stmts []ast.Stmt, st state) (state, bool) {
	for _, s := range stmts {
		var term bool
		st, term = c.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *checker) stmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if lock, m, un := lockOp(c.info, s.X); lock != "" {
			c.expr(lockReceiver(s.X), st, false)
			if un {
				delete(st, lock)
			} else {
				st[lock] = m
			}
			return st, false
		}
		c.expr(s.X, st, false)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r, st, false)
		}
		for _, l := range s.Lhs {
			c.expr(l, st, true)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, st, true)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st, false)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held through the rest of
		// the function; other deferred calls run at exit with unknown
		// lock state, so their closures are checked lock-free.
		if lock, _, un := lockOp(c.info, s.Call); lock != "" && un {
			return st, false
		}
		c.expr(s.Call, make(state), false)
	case *ast.GoStmt:
		c.expr(s.Call, make(state), false)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st, false)
		}
		return st, true
	case *ast.BranchStmt:
		return st, s.Tok != token.FALLTHROUGH
	case *ast.BlockStmt:
		return c.block(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		c.expr(s.Cond, st, false)
		thenSt, thenTerm := c.block(s.Body.List, st.clone())
		elseSt, elseTerm := st.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = c.stmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return merge(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.expr(s.Cond, st, false)
		}
		bodySt, _ := c.block(s.Body.List, st.clone())
		if s.Post != nil {
			c.stmt(s.Post, bodySt)
		}
		return merge(st, bodySt), false
	case *ast.RangeStmt:
		c.expr(s.X, st, false)
		if s.Key != nil {
			c.expr(s.Key, st, true)
		}
		if s.Value != nil {
			c.expr(s.Value, st, true)
		}
		bodySt, _ := c.block(s.Body.List, st.clone())
		return merge(st, bodySt), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.expr(s.Tag, st, false)
		}
		return c.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		c.stmt(s.Assign, st)
		return c.clauses(s.Body, st)
	case *ast.SelectStmt:
		return c.clauses(s.Body, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.SendStmt:
		c.expr(s.Chan, st, false)
		c.expr(s.Value, st, false)
	}
	return st, false
}

// clauses walks switch/select clause bodies, merging the exit states of
// clauses that fall out the bottom.
func (c *checker) clauses(body *ast.BlockStmt, st state) (state, bool) {
	exit := st
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.expr(e, st, false)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				c.stmt(cl.Comm, st.clone())
			}
			stmts = cl.Body
		}
		clSt, clTerm := c.block(stmts, st.clone())
		if !clTerm {
			exit = merge(exit, clSt)
		}
	}
	return exit, false
}

// expr checks every guarded-field access and locked-callee call inside
// an expression. write marks the OUTERMOST selector as a store; nested
// subexpressions are reads.
func (c *checker) expr(e ast.Expr, st state, write bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		c.access(e, st, write)
		c.expr(e.X, st, false)
		return
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking the address hands out mutable access.
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				c.access(sel, st, true)
				c.expr(sel.X, st, false)
				return
			}
		}
		c.expr(e.X, st, write)
		return
	case *ast.CallExpr:
		c.lockedCallee(e, st)
		c.expr(e.Fun, st, false)
		for _, a := range e.Args {
			c.expr(a, st, false)
		}
		return
	case *ast.FuncLit:
		// The literal may run on another goroutine or after the lock is
		// released; check its body against an empty lock state. Locks it
		// takes itself are tracked normally.
		c.block(e.Body.List, make(state))
		return
	}
	// Generic traversal for the remaining expression shapes.
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			c.expr(n, st, false)
			return false
		case *ast.CallExpr:
			c.expr(n, st, false)
			return false
		case *ast.FuncLit:
			c.block(n.Body.List, make(state))
			return false
		case *ast.UnaryExpr:
			c.expr(n, st, false)
			return false
		}
		return true
	})
}

// access checks one field selection against the lock state and the
// atomic-mix rule.
func (c *checker) access(sel *ast.SelectorExpr, st state, write bool) {
	field, recv, ok := vet.FieldSelection(c.info, sel)
	if !ok {
		// Not a field (method, package member): check locked callees is
		// handled at call sites; nothing to do here.
		return
	}
	key, ok := vet.FieldKey(recv, field)
	if !ok {
		return
	}
	if lock, guarded := c.pass.Module.Guarded[key]; guarded {
		lockKey := types.ExprString(sel.X) + "." + lock
		held := st[lockKey]
		switch {
		case held == 0:
			c.pass.Reportf(sel.Pos(), "%s read/written without holding %s", key, lockKey)
		case write && held == shared:
			c.pass.Reportf(sel.Pos(), "%s written while holding only a read lock on %s", key, lockKey)
		}
	}
	if c.pass.Module.Atomic[key] && !c.atomicUses[sel] {
		c.pass.Reportf(sel.Pos(), "%s is //gscope:atomic — plain access races with its sync/atomic users", key)
	} else if pos, mixed := c.atomics[key]; mixed && !c.atomicUses[sel] {
		p := c.pass.Fset.Position(pos)
		c.pass.Reportf(sel.Pos(), "%s is accessed with sync/atomic at %s:%d — this plain access races with it", key, p.Filename, p.Line)
	}
}

// lockedCallee enforces //gscope:locked contracts at call sites: the
// caller must hold the callee's declared lock on the same receiver.
func (c *checker) lockedCallee(call *ast.CallExpr, st state) {
	fn := vet.Callee(c.info, call)
	if fn == nil {
		return
	}
	lock, ok := c.pass.Module.Locked[vet.FuncKey(fn)]
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return // method expression or bare call; out of scope
	}
	lockKey := types.ExprString(sel.X) + "." + lock
	if st[lockKey] == 0 {
		c.pass.Reportf(call.Pos(), "%s requires %s held (//gscope:locked)", fn.Name(), lockKey)
	}
}

// lockOp recognizes x.mu.Lock()/RLock()/Unlock()/RUnlock() call
// expressions. It returns the rendered lock key ("x.mu"), the mode a
// lock acquisition takes, and whether the op is a release.
func lockOp(info *types.Info, e ast.Expr) (string, mode, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", 0, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	recv := sel.X
	tv, ok := info.Types[recv]
	if !ok || vet.MutexKind(tv.Type) == "" {
		return "", 0, false
	}
	key := types.ExprString(recv)
	switch sel.Sel.Name {
	case "Lock":
		return key, excl, false
	case "RLock":
		return key, shared, false
	case "Unlock", "RUnlock":
		return key, 0, true
	}
	return "", 0, false
}

// lockReceiver returns the receiver chain of a lock call so guarded
// fields inside it (rare, e.g. locks reached through guarded pointers)
// are still checked.
func lockReceiver(e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return e
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return e
}
