package guardedby_test

import (
	"testing"

	"repro/internal/testutil"
	"repro/internal/vet/guardedby"
)

func TestGuardedBy(t *testing.T) {
	testutil.RunAnalyzer(t, guardedby.Analyzer, map[string]string{"a.go": `
package guardedbytest

import (
	"sync"
	"sync/atomic"
)

type shard struct {
	mu sync.RWMutex

	//gscope:guardedby mu
	buf []float64

	//gscope:guardedby mu
	head int

	limNs int64 //gscope:atomic
}

func (s *shard) good(v float64) {
	s.mu.Lock()
	s.buf = append(s.buf, v)
	s.head++
	s.mu.Unlock()
	atomic.StoreInt64(&s.limNs, 5)
}

func (s *shard) goodDefer() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head
}

func (s *shard) badNoLock() int {
	return s.head // want ` + "`shard.head read/written without holding s.mu`" + `
}

func (s *shard) badReadLockWrite() {
	s.mu.RLock()
	s.head = 0 // want ` + "`written while holding only a read lock on s.mu`" + `
	s.mu.RUnlock()
}

func (s *shard) badBranch(c bool) {
	if c {
		s.mu.Lock()
	}
	s.buf = nil // want ` + "`shard.buf read/written without holding s.mu`" + `
	if c {
		s.mu.Unlock()
	}
}

func (s *shard) goodBranch(c bool) {
	s.mu.Lock()
	if c {
		s.head++
	} else {
		s.head--
	}
	s.mu.Unlock()
}

func (s *shard) badAtomicMix() {
	s.limNs = 3 // want ` + "`shard.limNs is //gscope:atomic — plain access races`" + `
}

func (s *shard) badClosure() {
	s.mu.Lock()
	f := func() { s.buf = nil } // want ` + "`shard.buf read/written without holding s.mu`" + `
	f()
	s.mu.Unlock()
}

// stealLocked follows the ...Locked convention: mu is required on entry,
// so the body is checked with it held and callers must hold it.
func (s *shard) stealLocked() {
	s.buf = s.buf[:0]
}

func (s *shard) callerGood() {
	s.mu.Lock()
	s.stealLocked()
	s.mu.Unlock()
}

func (s *shard) callerBad() {
	s.stealLocked() // want ` + "`stealLocked requires s.mu held`" + `
}

// mirror has no annotation on disp, but its address reaches sync/atomic,
// so plain access elsewhere is flagged as a mixed-mode race.
type mirror struct {
	disp int64
}

func (m *mirror) store(v int64) {
	atomic.StoreInt64(&m.disp, v)
}

func (m *mirror) badPlain() int64 {
	return m.disp // want ` + "`mirror.disp is accessed with sync/atomic at`" + `
}

// reg exercises an explicit //gscope:locked naming a non-default lock,
// overriding the ...Locked convention.
type reg struct {
	regMu sync.Mutex

	//gscope:guardedby regMu
	names []string
}

//gscope:locked regMu
func (r *reg) addLocked(n string) {
	r.names = append(r.names, n)
}

func (r *reg) add(n string) {
	r.regMu.Lock()
	r.addLocked(n)
	r.regMu.Unlock()
}

func (r *reg) addBad(n string) {
	r.addLocked(n) // want ` + "`addLocked requires r.regMu held`" + `
}

func (s *shard) allowedRead() int {
	return s.head //gscope:allow guardedby fixture: racy stats read is tolerated // allowed ` + "`without holding s.mu`" + `
}
`})
}
