package vet

import (
	"go/ast"
	"go/types"
)

// Callee resolves the static callee of a call, or nil for conversions,
// builtins, and dynamic calls (func values, interface methods).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				// Methods reached through an interface receiver dispatch
				// dynamically; the static object is the interface method,
				// which callers can still inspect, so return it.
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil // field of func type: a dynamic call
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsConversion reports whether the call expression is a type conversion.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// BuiltinName returns the name of the builtin a call invokes, or "".
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// PkgPath returns the import path of the package a function belongs to,
// or "" for builtins and error.Error.
func PkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsInterfaceMethod reports whether fn is declared on an interface, so a
// call through it dispatches dynamically.
func IsInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// MutexKind classifies a type as a sync mutex: "mutex" for sync.Mutex,
// "rwmutex" for sync.RWMutex (possibly behind a pointer), else "".
func MutexKind(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	switch obj.Name() {
	case "Mutex":
		return "mutex"
	case "RWMutex":
		return "rwmutex"
	}
	return ""
}

// FieldSelection returns the field object and receiver type when sel is
// a (possibly embedded) struct field selection.
func FieldSelection(info *types.Info, sel *ast.SelectorExpr) (*types.Var, types.Type, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil, false
	}
	return v, s.Recv(), true
}

// EnclosingFuncs returns, for every FuncDecl with a body in the files,
// the declaration and its types.Func.
func EnclosingFuncs(files []*ast.File, info *types.Info) map[*ast.FuncDecl]*types.Func {
	out := make(map[*ast.FuncDecl]*types.Func)
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					out[fd] = fn
				}
			}
		}
	}
	return out
}
