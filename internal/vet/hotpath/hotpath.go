// Package hotpath implements the gscope-vet analyzer enforcing the
// repo's "0 allocs/op steady state" contract mechanically.
//
// A function marked `//gscope:hotpath` — Probe.RecordAt, the Feed batch
// pushes, the wire encoders — must be free of per-call allocating
// constructs, and everything it statically calls within the module must
// itself be marked (and is therefore checked the same way). The
// benchmark gates in CI catch a regression after it lands on the hot
// path; this analyzer points at the exact construct before the benchmark
// ever runs.
//
// Flagged inside a hotpath function:
//
//   - make/new and slice, map, or chan composite literals
//   - address-taken composite literals (&T{...} escapes)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - boxing a concrete value into an interface (call arguments,
//     returns, assignments) and variadic argument slices
//   - closures that capture variables, method values, go statements
//   - calls to module functions not marked //gscope:hotpath
//   - dynamic calls (func values, interface methods)
//   - calls into stdlib packages off the allowlist (fmt, log, time.Now
//     and friends are the canonical offenders), or to known-allocating
//     functions inside allowlisted packages (strings.Clone, errors.New)
//
// Amortized growth is legal: append and the strconv/binary Append*
// encoders write into retained buffers, which is exactly how the probe
// rings and wire encoders achieve steady-state zero. Deliberate cold
// paths inside a hot function (error returns, once-per-name dictionary
// growth) carry a `//gscope:allow hotpath <reason>` suppression.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/vet"
)

// Analyzer is the hotpath analyzer.
var Analyzer = &vet.Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //gscope:hotpath must not contain per-call allocating constructs, and module functions they call must be marked too",
	Run:  run,
}

// allowedPkgs are stdlib packages whose functions are, with the listed
// exceptions, allocation-free and legal on the hot path.
var allowedPkgs = map[string]bool{
	"sync":            true,
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"strconv":         true,
	"encoding/binary": true,
	"bytes":           true,
	"strings":         true,
	"unicode/utf8":    true,
	"errors":          true,
	"sort":            true,
	"unsafe":          true,
}

// bannedFuncs are known-allocating functions inside otherwise allowed
// packages. Key is "pkgpath.Name" for package functions.
var bannedFuncs = map[string]string{
	"strings.Clone":         "allocates a copy",
	"strings.Map":           "allocates the mapped string",
	"strings.Repeat":        "allocates",
	"strings.Join":          "allocates",
	"strings.Split":         "allocates",
	"strings.SplitN":        "allocates",
	"strings.SplitAfter":    "allocates",
	"strings.Fields":        "allocates",
	"strings.Replace":       "allocates",
	"strings.ReplaceAll":    "allocates",
	"strings.ToUpper":       "allocates",
	"strings.ToLower":       "allocates",
	"bytes.Clone":           "allocates a copy",
	"bytes.Join":            "allocates",
	"bytes.Repeat":          "allocates",
	"bytes.Split":           "allocates",
	"bytes.SplitN":          "allocates",
	"bytes.Fields":          "allocates",
	"bytes.Map":             "allocates",
	"errors.New":            "allocates an error",
	"errors.Join":           "allocates an error",
	"strconv.FormatInt":     "allocates; use strconv.AppendInt",
	"strconv.FormatFloat":   "allocates; use strconv.AppendFloat",
	"strconv.Itoa":          "allocates; use strconv.AppendInt",
	"strconv.Quote":         "allocates",
	"encoding/binary.Read":  "reflects and allocates",
	"encoding/binary.Write": "reflects and allocates",
}

func run(pass *vet.Pass) error {
	for fd, fn := range vet.EnclosingFuncs(pass.Files, pass.TypesInfo) {
		if pass.Module.Hotpath[vet.FuncKey(fn)] {
			check(pass, fd)
		}
	}
	return nil
}

// check walks one hotpath function body.
func check(pass *vet.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, info: pass.TypesInfo, fd: fd}
	// Mark expressions used as call targets so `x.M()` is not also
	// reported as a method value.
	c.callFuns = make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			c.callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(fd.Body, c.visit)
}

type checker struct {
	pass     *vet.Pass
	info     *types.Info
	fd       *ast.FuncDecl
	callFuns map[ast.Expr]bool
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.call(n)
	case *ast.CompositeLit:
		tv := c.info.Types[n]
		if tv.Type == nil {
			break
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			c.pass.Reportf(n.Pos(), "slice literal allocates")
		case *types.Map:
			c.pass.Reportf(n.Pos(), "map literal allocates")
		case *types.Chan:
			c.pass.Reportf(n.Pos(), "channel literal allocates")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				c.pass.Reportf(n.Pos(), "&composite literal escapes to the heap")
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv := c.info.Types[n]; tv.Type != nil && isString(tv.Type) {
				c.pass.Reportf(n.Pos(), "string concatenation allocates")
			}
		}
	case *ast.FuncLit:
		if name, ok := c.captures(n); ok {
			c.pass.Reportf(n.Pos(), "closure captures %q and allocates", name)
		}
	case *ast.GoStmt:
		c.pass.Reportf(n.Pos(), "go statement allocates a goroutine")
	case *ast.SelectorExpr:
		// A method used as a value (not called) allocates its binding.
		if c.callFuns[n] {
			break
		}
		if sel, ok := c.info.Selections[n]; ok && sel.Kind() == types.MethodVal {
			c.pass.Reportf(n.Pos(), "method value %s allocates", n.Sel.Name)
		}
	case *ast.ReturnStmt:
		c.returns(n)
	case *ast.AssignStmt:
		c.assigns(n)
	}
	return true
}

// call checks one call expression: conversions, builtins, boxing at the
// call site, and the callee itself.
func (c *checker) call(call *ast.CallExpr) {
	if vet.IsConversion(c.info, call) {
		c.conversion(call)
		return
	}
	if b := vet.BuiltinName(c.info, call); b != "" {
		switch b {
		case "make":
			c.pass.Reportf(call.Pos(), "make allocates")
		case "new":
			c.pass.Reportf(call.Pos(), "new allocates")
		}
		// append is explicitly legal: growth into a retained buffer is
		// amortized, the contract the benchmarks assert as "0 allocs/op
		// steady state".
		return
	}

	fn := vet.Callee(c.info, call)
	if fn == nil {
		c.pass.Reportf(call.Pos(), "dynamic call through a func value")
		return
	}
	if vet.IsInterfaceMethod(fn) {
		c.pass.Reportf(call.Pos(), "dynamic call through interface method %s", fn.Name())
		return
	}

	c.boxing(call, fn)

	path := vet.PkgPath(fn)
	switch {
	case path == "" || path == c.pass.Pkg.Path() || c.pass.Module.Internal[path]:
		if !c.pass.Module.Hotpath[vet.FuncKey(fn)] {
			c.pass.Reportf(call.Pos(), "call to %s, which is not marked //gscope:hotpath", fn.Name())
		}
	case path == "time":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			c.pass.Reportf(call.Pos(), "time.%s on the hot path — take timestamps from the caller instead", fn.Name())
		}
	case strings.HasPrefix(path, "fmt"):
		c.pass.Reportf(call.Pos(), "fmt.%s allocates and reflects", fn.Name())
	case path == "log" || strings.HasPrefix(path, "log/"):
		c.pass.Reportf(call.Pos(), "log call on the hot path")
	case !allowedPkgs[path]:
		c.pass.Reportf(call.Pos(), "call into %s, which is not on the hot-path allowlist", path)
	default:
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			if why, bad := bannedFuncs[path+"."+fn.Name()]; bad {
				c.pass.Reportf(call.Pos(), "%s.%s %s", path, fn.Name(), why)
			}
		}
	}
}

// conversion flags string conversions, which copy.
func (c *checker) conversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := c.info.Types[ast.Unparen(call.Fun)].Type
	src := c.info.Types[call.Args[0]].Type
	if dst == nil || src == nil {
		return
	}
	switch {
	case isString(dst) && !isString(src):
		c.pass.Reportf(call.Pos(), "conversion to string allocates")
	case isByteOrRuneSlice(dst) && isString(src):
		c.pass.Reportf(call.Pos(), "conversion from string allocates")
	}
}

// boxing flags concrete-to-interface argument conversions and variadic
// argument slices.
func (c *checker) boxing(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
				if i == params.Len()-1 {
					c.pass.Reportf(call.Pos(), "variadic call to %s allocates the argument slice", fn.Name())
				}
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.boxCheck(pt, arg)
	}
}

// returns flags boxing at return statements.
func (c *checker) returns(ret *ast.ReturnStmt) {
	fn, ok := c.info.Defs[c.fd.Name].(*types.Func)
	if !ok {
		return
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		c.boxCheck(res.At(i).Type(), r)
	}
}

// assigns flags boxing at assignments to interface-typed destinations.
func (c *checker) assigns(as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := c.info.Types[lhs].Type
		c.boxCheck(lt, as.Rhs[i])
	}
}

// boxCheck reports when a concrete-typed expression converts to an
// interface destination.
func (c *checker) boxCheck(dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := c.info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	c.pass.Reportf(src.Pos(), "%s boxes into %s and allocates", tv.Type, dst)
}

// captures reports the first variable a func literal captures from its
// enclosing function. Capture-free literals compile to static functions
// and are allocation-free.
func (c *checker) captures(lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Pkg() != nil && v.Pkg().Scope() == scopeOf(v) {
			return true
		}
		// Declared outside the literal's extent → captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name, name != ""
}

func scopeOf(v *types.Var) *types.Scope {
	if v.Parent() != nil {
		return v.Parent()
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
