package hotpath_test

import (
	"testing"

	"repro/internal/testutil"
	"repro/internal/vet/hotpath"
)

func TestHotpath(t *testing.T) {
	testutil.RunAnalyzer(t, hotpath.Analyzer, map[string]string{"a.go": `
package hotpathtest

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"time"
)

type ring struct {
	buf  []byte
	vals []float64
}

// push is the shape the real probe ring has: append into retained
// buffers is amortized and legal.
//
//gscope:hotpath
func (r *ring) push(v float64) {
	r.vals = append(r.vals, v)
	r.buf = strconv.AppendFloat(r.buf, v, 'g', -1, 64)
	r.buf = binary.AppendUvarint(r.buf, 7)
}

//gscope:hotpath
func makes() []int {
	s := make([]int, 4) // want ` + "`make allocates`" + `
	return s
}

//gscope:hotpath
func news() *ring {
	return new(ring) // want ` + "`new allocates`" + `
}

//gscope:hotpath
func sliceLit() []int {
	return []int{1, 2} // want ` + "`slice literal allocates`" + `
}

//gscope:hotpath
func escapingLit() *ring {
	return &ring{} // want ` + "`&composite literal escapes`" + `
}

//gscope:hotpath
func concat(a, b string) string {
	return a + b // want ` + "`string concatenation allocates`" + `
}

//gscope:hotpath
func boxes(v int) any {
	return v // want ` + "`int boxes into any`" + `
}

//gscope:hotpath
func stringConv(bs []byte) string {
	return string(bs) // want ` + "`conversion to string allocates`" + `
}

//gscope:hotpath
func callsFmt() {
	fmt.Sprint() // want ` + "`fmt.Sprint allocates and reflects`" + `
}

//gscope:hotpath
func callsTime() int64 {
	return time.Now().UnixNano() // want ` + "`time.Now on the hot path`" + `
}

//gscope:hotpath
func closure(n int) func() int {
	return func() int { return n } // want ` + "`closure captures \"n\"`" + `
}

//gscope:hotpath
func dyn(f func()) {
	f() // want ` + "`dynamic call through a func value`" + `
}

//gscope:hotpath
func callsCold() {
	cold() // want ` + "`call to cold, which is not marked //gscope:hotpath`" + `
}

func cold() {}

//gscope:hotpath
func callsHot(r *ring) {
	r.push(1) // marked callee: fine
}

//gscope:hotpath
func allowedConv(bs []byte) string {
	return string(bs) //gscope:allow hotpath fixture: cold error path // allowed ` + "`conversion to string allocates`" + `
}
`})
}
