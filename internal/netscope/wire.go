package netscope

import (
	"fmt"
	"math"
	"path"
	"strconv"
	"strings"
	"time"

	"repro/internal/tuple"
)

// This file is the subscriber protocol's v2 vocabulary: the
// SubscriptionRequest carried by the client's opening handshake line, the
// functional options that build one, and the compiled signal filter the hub
// evaluates per tuple. Framing primitives (control-frame encode/parse) live
// in package repro/internal/tuple; the hub's state machine in hub.go.

const (
	// subMagic opens a v2 client's handshake line: "gscope-sub 2 ...".
	// It is a plain line, not a '#' comment — the client→server direction
	// of a subscriber connection is a command channel, not a tuple stream.
	subMagic = "gscope-sub"
	// hubVersion2 is the control-plane protocol revision.
	hubVersion2 = 2
)

// SubscriptionRequest is what a v2 subscriber asks of the hub. The zero
// value means "exactly the v1 stream": every signal, full rate, the
// connect-time snapshot.
type SubscriptionRequest struct {
	// Signals restricts the live stream (and any backfill) to signals
	// whose names match one of these patterns: an exact name, or a glob in
	// path.Match syntax ("cpu.*"). Empty means every signal. Patterns must
	// not contain spaces or commas (the §3.3 name grammar allows spaces;
	// such names cannot be addressed by a filter and never match one).
	Signals []string
	// MaxRate caps delivery per signal, in tuples per second: the hub
	// drops samples arriving less than 1/MaxRate after the last delivered
	// sample of the same signal (server-side decimation). 0 means
	// unlimited.
	MaxRate float64
	// Since requests backfill instead of the default snapshot: negative
	// means a trailing window before the newest stream timestamp
	// (-10*time.Second = the last ten seconds), positive an absolute
	// offset on the stream timeline. Zero requests no backfill. Backfill
	// is served from the hub's retained history, its tiered per-signal
	// store (when Cols is set), or the attached flight recorder.
	Since time.Duration
	// Cols, when non-zero with Since, asks for the backfill decimated to
	// at most Cols min/max buckets per signal, served O(Cols) from the
	// hub's tiered history — the zoomed-out-viewer path. Requires the hub
	// to have backfill enabled (Server.SetBackfillRetention).
	Cols int
	// NoStream makes the connection control-plane only: no snapshot, no
	// backfill, no live tuples — just command replies and notification
	// frames (the gscoped "param get/set" path).
	NoStream bool
	// Wire selects the downstream tuple encoding: 3 asks the hub to send
	// snapshot, backfill and deltas as v3 binary frames (docs/WIRE.md);
	// 0, 1 and 2 are the classic text stream. Negotiation is graceful by
	// construction — a pre-v3 hub ignores the unknown handshake key and
	// its ack therefore does not echo wire=3, which tells the client to
	// expect text. Control frames stay textual in every version.
	Wire int
}

// isZero reports whether the request asks for anything beyond the v1
// stream.
func (r *SubscriptionRequest) isZero() bool {
	return len(r.Signals) == 0 && r.MaxRate == 0 && r.Since == 0 && r.Cols == 0 && !r.NoStream &&
		r.Wire == 0
}

// Validate rejects requests the wire encoding cannot carry: empty or
// space/comma-bearing signal patterns, malformed globs, negative rates
// or resolutions, unknown wire versions. The programmatic entry points
// (SubscribeWith, the web gateway's query mapping) call it before a
// request reaches the hub.
func (r *SubscriptionRequest) Validate() error { return r.validate() }

// validate rejects requests the wire encoding cannot carry.
func (r *SubscriptionRequest) validate() error {
	for _, p := range r.Signals {
		if p == "" || strings.ContainsAny(p, " ,\n") {
			return fmt.Errorf("netscope: bad signal pattern %q (empty, or contains space/comma)", p)
		}
		if _, err := path.Match(p, "probe"); err != nil {
			return fmt.Errorf("netscope: bad signal pattern %q: %w", p, err)
		}
	}
	if r.MaxRate < 0 {
		return fmt.Errorf("netscope: negative max rate %v", r.MaxRate)
	}
	if r.Cols < 0 {
		return fmt.Errorf("netscope: negative backfill resolution %d", r.Cols)
	}
	switch r.Wire {
	case 0, 1, 2, 3:
	default:
		return fmt.Errorf("netscope: unsupported wire version %d", r.Wire)
	}
	return nil
}

// fields encodes the request as its key=value handshake fields (without the
// magic/version prefix); the same fields are echoed in the server's ack.
func (r *SubscriptionRequest) fields() []string {
	var f []string
	if len(r.Signals) > 0 {
		f = append(f, "signals="+strings.Join(r.Signals, ","))
	}
	if r.MaxRate > 0 {
		f = append(f, "max-rate="+strconv.FormatFloat(r.MaxRate, 'g', -1, 64))
	}
	if r.Since != 0 {
		f = append(f, "since="+strconv.FormatInt(r.Since.Milliseconds(), 10))
	}
	if r.Cols > 0 {
		f = append(f, "cols="+strconv.Itoa(r.Cols))
	}
	if r.NoStream {
		f = append(f, "stream=0")
	}
	if r.Wire == 3 {
		f = append(f, "wire=3")
	}
	return f
}

// encodeLine renders the full client handshake line (with newline).
func (r *SubscriptionRequest) encodeLine() string {
	parts := append([]string{subMagic, strconv.Itoa(hubVersion2)}, r.fields()...)
	return strings.Join(parts, " ") + "\n"
}

// parseSubscriptionRequest decodes a client handshake line. ok is false
// when the line is not a v2 subscribe request at all (the v1 fallback);
// err is non-nil when it is one but malformed (the server answers with an
// error frame and treats the connection as v1).
func parseSubscriptionRequest(line string) (req SubscriptionRequest, ok bool, err error) {
	f := strings.Fields(line)
	if len(f) < 2 || f[0] != subMagic {
		return req, false, nil
	}
	if f[1] != strconv.Itoa(hubVersion2) {
		return req, true, fmt.Errorf("unsupported subscriber protocol version %q", f[1])
	}
	for _, kv := range f[2:] {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return req, true, fmt.Errorf("bad handshake field %q", kv)
		}
		switch key {
		case "signals":
			for _, p := range strings.Split(val, ",") {
				if p != "" {
					req.Signals = append(req.Signals, p)
				}
			}
		case "max-rate":
			req.MaxRate, err = strconv.ParseFloat(val, 64)
			// NaN compares false against 0, so it would slip past the sign
			// check into a subscription that decimates nothing.
			if err != nil || req.MaxRate < 0 || math.IsNaN(req.MaxRate) {
				return req, true, fmt.Errorf("bad max-rate %q", val)
			}
		case "since":
			ms, perr := strconv.ParseInt(val, 10, 64)
			// The ms→Duration multiply overflows outside ±(MaxInt64/1e6) ms;
			// a wrapped Since would silently request a different window.
			if perr != nil || ms > math.MaxInt64/int64(time.Millisecond) ||
				ms < math.MinInt64/int64(time.Millisecond) {
				return req, true, fmt.Errorf("bad since %q", val)
			}
			req.Since = time.Duration(ms) * time.Millisecond
		case "cols":
			req.Cols, err = strconv.Atoi(val)
			if err != nil || req.Cols < 0 {
				return req, true, fmt.Errorf("bad cols %q", val)
			}
		case "stream":
			req.NoStream = val == "0"
		case "wire":
			// Known version 3 upgrades; anything else (including future
			// versions this hub cannot speak) falls back to text, and the
			// ack's missing wire=3 echo tells the client so. Never an
			// error: the negotiation degrades, it does not fail.
			if val == "3" {
				req.Wire = 3
			}
		default:
			// Unknown keys are ignored for forward compatibility.
		}
	}
	if verr := req.validate(); verr != nil {
		return req, true, verr
	}
	return req, true, nil
}

// SubscribeOption configures a v2 subscription. Passing any option to
// SubscribeTo/SubscribeToBatch (or gscope.SubscribeNet) switches the client
// to the v2 handshake; with none, the client is a pure v1 subscriber and
// receives a byte-identical v1 stream.
type SubscribeOption func(*SubscriptionRequest)

// WithSignals restricts the subscription to signals matching the given
// exact names or path.Match globs ("cpu.*").
func WithSignals(patterns ...string) SubscribeOption {
	return func(r *SubscriptionRequest) { r.Signals = append(r.Signals, patterns...) }
}

// WithMaxRate caps delivery at perSec tuples per second per signal,
// decimated server-side.
func WithMaxRate(perSec float64) SubscribeOption {
	return func(r *SubscriptionRequest) { r.MaxRate = perSec }
}

// WithSince requests backfill: negative d is a trailing window before the
// newest stream timestamp, positive an absolute stream offset.
func WithSince(d time.Duration) SubscribeOption {
	return func(r *SubscriptionRequest) { r.Since = d }
}

// WithResolution asks for the backfill decimated to at most cols min/max
// buckets per signal (with WithSince).
func WithResolution(cols int) SubscribeOption {
	return func(r *SubscriptionRequest) { r.Cols = cols }
}

// WithoutStream makes the connection control-plane only (param commands
// and notifications; no tuple stream).
func WithoutStream() SubscribeOption {
	return func(r *SubscriptionRequest) { r.NoStream = true }
}

// WithControl requests the v2 handshake with no other changes — the live
// stream carries the same tuples as v1, but the connection gains the
// control plane (param commands, notification frames).
func WithControl() SubscribeOption {
	return func(*SubscriptionRequest) {}
}

// WithWireVersion selects the downstream tuple encoding: 3 negotiates the
// v3 binary framing (docs/WIRE.md) through the v2 handshake, 1 or 2 the
// classic text stream. A hub that predates v3 ignores the request key and
// the subscription proceeds in text — the client adapts from the ack, so
// the option is always safe to pass. Other versions fail validation.
func WithWireVersion(v int) SubscribeOption {
	return func(r *SubscriptionRequest) {
		if v == 1 || v == 2 {
			v = 0
		}
		r.Wire = v
	}
}

// sigFilter is a compiled signal-name filter: exact names hash, glob
// patterns scan. nil means "match everything".
type sigFilter struct {
	exact map[string]struct{}
	globs []string
	key   string // canonical signature, for sharing encoded chunks
}

// compileFilter builds a filter from request patterns; empty patterns
// yield nil (match all).
func compileFilter(patterns []string) *sigFilter {
	if len(patterns) == 0 {
		return nil
	}
	f := &sigFilter{key: strings.Join(patterns, ",")}
	for _, p := range patterns {
		if strings.ContainsAny(p, "*?[") {
			f.globs = append(f.globs, p)
		} else {
			if f.exact == nil {
				f.exact = make(map[string]struct{}, len(patterns))
			}
			f.exact[p] = struct{}{}
		}
	}
	return f
}

// match reports whether a signal name passes the filter.
func (f *sigFilter) match(name string) bool {
	if f == nil {
		return true
	}
	if _, ok := f.exact[name]; ok {
		return true
	}
	for _, g := range f.globs {
		if ok, _ := path.Match(g, name); ok {
			return true
		}
	}
	return false
}

// subscription is the hub-side compiled form of a request.
type subscription struct {
	req    SubscriptionRequest
	filter *sigFilter
	// minGapMS is the decimation interval implied by MaxRate (0 = none).
	minGapMS int64
	// lastSent is the per-signal decimation clock: the stamp of the last
	// delivered tuple of each signal.
	lastSent map[string]int64
}

func compileSubscription(req SubscriptionRequest) *subscription {
	s := &subscription{req: req, filter: compileFilter(req.Signals)}
	if req.MaxRate > 0 {
		s.minGapMS = int64(1000 / req.MaxRate)
		if s.minGapMS < 1 {
			s.minGapMS = 0 // >=1000/s: millisecond stamps cannot be decimated further
		} else {
			s.lastSent = make(map[string]int64)
		}
	}
	return s
}

// passes applies the filter and the decimation clock to one tuple,
// advancing the clock when the tuple is delivered. Stale-stamped tuples
// (earlier than the last delivered stamp of the same signal — skewed
// publisher clocks produce them) are dropped without rewinding the clock:
// a rewind would widen the next gap and let an out-of-order interleaving
// defeat the rate cap entirely.
func (s *subscription) passes(t tuple.Tuple) bool {
	if !s.filter.match(t.Name) {
		return false
	}
	if s.minGapMS > 0 {
		if last, seen := s.lastSent[t.Name]; seen {
			if t.Time < last || t.Time-last < s.minGapMS {
				return false
			}
		}
		s.lastSent[t.Name] = t.Time
	}
	return true
}

// plain reports whether the subscription imposes no per-tuple work at all,
// so the hub can hand it the shared unfiltered chunk.
func (s *subscription) plain() bool {
	return !s.req.NoStream && s.filter == nil && s.minGapMS == 0 && s.lastSent == nil
}

// shareKey returns a non-empty key when subscriptions with identical
// filters and no decimation state can share one encoded chunk per batch.
func (s *subscription) shareKey() string {
	if s.filter == nil || s.lastSent != nil {
		return ""
	}
	return s.filter.key
}
