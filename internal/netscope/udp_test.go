package netscope

import (
	"testing"

	"repro/internal/glib"
	"repro/internal/tuple"
)

// udpRig is rig plus a datagram publisher listener on the same server, so
// both lanes are live and the UDP stream merges into the same pipeline.
func udpRig(t *testing.T) (*glib.Loop, *Server, string) {
	t.Helper()
	loop, _, srv, _ := rig(t)
	uaddr, err := srv.ListenPublishersUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return loop, srv, uaddr.String()
}

func TestUDPPublishEndToEnd(t *testing.T) {
	loop, srv, uaddr := udpRig(t)
	var hooked []tuple.Tuple
	srv.OnTuple = func(tu tuple.Tuple) { hooked = append(hooked, tu) }

	c, err := DialUDP(uaddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Connected() {
		t.Fatal("datagram client reports disconnected while open")
	}

	const batches, per = 20, 25
	for i := 0; i < batches; i++ {
		batch := make([]tuple.Tuple, per)
		for j := range batch {
			k := i*per + j
			batch[j] = tuple.Tuple{Time: int64(k) * 10, Value: float64(k) * 0.25, Name: "remote"}
		}
		if err := c.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.Sent(); got != batches*per {
		t.Fatalf("client sent %d, want %d", got, batches*per)
	}

	pump(t, loop, func() bool {
		_, _, recv, _ := srv.Stats()
		return recv >= batches*per
	})
	if len(hooked) != batches*per {
		t.Fatalf("OnTuple saw %d tuples, want %d", len(hooked), batches*per)
	}
	// Loopback with no chaos: the lane must be lossless and in order, and
	// every tuple bit-exact after the datagram encode/decode round trip.
	for k, tu := range hooked {
		if tu.Time != int64(k)*10 || tu.Value != float64(k)*0.25 || tu.Name != "remote" {
			t.Fatalf("tuple %d corrupted or reordered: %+v", k, tu)
		}
	}

	st := srv.FanoutStats()
	if st.UDPSources != 1 {
		t.Fatalf("UDPSources = %d, want 1", st.UDPSources)
	}
	if st.UDPReleased == 0 || st.UDPLost != 0 {
		t.Fatalf("UDP lane counters off on a clean loopback: %+v", st)
	}
	if cs, ok := c.UDPStats(); !ok || cs.Datagrams == 0 || cs.Tuples != batches*per {
		t.Fatalf("publisher stats %+v ok=%v, want %d tuples", cs, ok, batches*per)
	}
	if srcs := srv.UDPSourceStats(); len(srcs) != 1 || srcs[0].Released != st.UDPReleased {
		t.Fatalf("per-source stats inconsistent with aggregate: %+v vs %+v", srcs, st)
	}
	if line := srv.AppendUDPStats(nil); len(line) == 0 {
		t.Fatal("AppendUDPStats rendered nothing with an active listener")
	}
}

func TestUDPListenerSingleton(t *testing.T) {
	_, srv, _ := udpRig(t)
	if _, err := srv.ListenPublishersUDP("127.0.0.1:0"); err == nil {
		t.Fatal("second datagram listener accepted")
	}
}

func TestUDPAccessorsOnStreamOnlyServer(t *testing.T) {
	_, _, srv, _ := rig(t)
	if got := srv.UDPSourceStats(); got != nil {
		t.Fatalf("UDPSourceStats = %v without a listener", got)
	}
	buf := []byte("x")
	if out := srv.AppendUDPStats(buf); len(out) != 1 || &out[0] != &buf[0] {
		t.Fatal("AppendUDPStats touched dst without a listener")
	}
	if st := srv.FanoutStats(); st.UDPSources != 0 || st.UDPReleased != 0 {
		t.Fatalf("stream-only server grew UDP counters: %+v", st)
	}
}

func TestUDPStatsOnStreamClient(t *testing.T) {
	c := DialReconnect("127.0.0.1:1") // never connects; udp lane absent
	defer c.Close()
	if _, ok := c.UDPStats(); ok {
		t.Fatal("stream client claims a datagram lane")
	}
}
