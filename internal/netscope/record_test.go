package netscope

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/reclog"
	"repro/internal/tuple"
)

// TestServerRecordReplayRoundTrip drives the full flight-recorder loop: a
// publisher streams batches into a recording hub, the session is closed,
// and a Replayer feeds the recording back through a second hub's
// InjectBatch — the downstream subscriber must see a byte-identical wire
// stream (the replayed session is indistinguishable from the original
// publisher).
func TestServerRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := make([]tuple.Tuple, 1000)
	for i := range in {
		in[i] = tuple.Tuple{Time: int64(i) * 2, Value: float64(i % 31), Name: "cps"}
	}

	// Session 1: publish over TCP into a recording server.
	loop, _, srv, addr := rig(t)
	lg, err := srv.Record(dir, reclog.Options{SegmentBytes: 4096, QueueLimit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(in); i += 100 {
		if err := c.SendBatch(in[i : i+100]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool {
		_, _, recv, _ := srv.Stats()
		return recv >= int64(len(in))
	})
	c.Close()   //nolint:errcheck
	srv.Close() //nolint:errcheck // seals the flight log
	if lg.Err() != nil {
		t.Fatal(lg.Err())
	}
	if _, dropped, written := lg.Stats(); dropped != 0 || written != int64(len(in)) {
		t.Fatalf("log wrote %d, dropped %d", written, dropped)
	}

	// Session 2: replay as fast as possible through a fresh hub with a
	// subscriber attached; collect the broadcast wire stream.
	vc := glib.NewVirtualClock(time.Unix(9000, 0))
	loop2 := glib.NewLoop(vc, glib.WithGranularity(0))
	sc2 := core.New(loop2, "replay-scope", 200, 100)
	if _, err := sc2.AddSignal(core.Sig{Name: "cps", Kind: core.KindBuffer}); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(loop2)
	srv2.Attach(sc2)
	srv2.SetSnapshotWindow(0) // deltas only: the subscriber sees the replay verbatim
	subAddr, err := srv2.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	var got []tuple.Tuple
	sub, err := SubscribeTo(loop2, subAddr.String(), func(tu tuple.Tuple) {
		got = append(got, tu)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop2, func() bool { return srv2.Subscribers() == 1 })

	sess, err := reclog.OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := reclog.NewReplayer(sess)
	rep.SetSpeed(0)
	replayDone := make(chan error, 1)
	go func() {
		replayDone <- rep.Run(func(batch []tuple.Tuple) error {
			// InjectBatch must run on the loop goroutine; block the
			// replayer until the loop has taken the batch so the shared
			// buffer stays valid.
			done := make(chan struct{})
			loop2.Invoke(func() {
				srv2.InjectBatch(batch)
				close(done)
			})
			<-done
			return nil
		})
	}()
	pump(t, loop2, func() bool {
		select {
		case err := <-replayDone:
			if err != nil {
				t.Fatal(err)
			}
			return true
		default:
			return false
		}
	})
	pump(t, loop2, func() bool { return int64(len(got)) >= int64(len(in)) && srv2.SubscribersFlushed() })

	want := tuple.AppendWireBatch(nil, in)
	have := tuple.AppendWireBatch(nil, got)
	if !bytes.Equal(want, have) {
		t.Fatalf("replayed stream differs: %d tuples in, %d out", len(in), len(got))
	}
	if rep.Delivered() != int64(len(in)) {
		t.Fatalf("replayer delivered %d", rep.Delivered())
	}
}
