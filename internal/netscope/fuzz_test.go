package netscope

// Structured fuzzing over the subscriber control plane: the v2 handshake
// codec (parse/encode round trips, hostile field values), the per-
// subscription filter+decimation encoder (differential against a naive
// reference), and a live hub driven end-to-end — generated handshakes,
// param commands and tuple batches through a real listener — with the
// output invariant that every line the hub emits is either a well-formed
// control frame or a tuple it was actually given.

import (
	"bytes"
	"net"
	"path"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fuzzgen"
	"repro/internal/glib"
	"repro/internal/tuple"
)

// reqEquivalent compares two requests field-wise (Since is whole
// milliseconds on both sides after a parse, so plain equality holds).
func reqEquivalent(a, b SubscriptionRequest) bool {
	return strings.Join(a.Signals, ",") == strings.Join(b.Signals, ",") &&
		a.MaxRate == b.MaxRate &&
		a.Since == b.Since &&
		a.Cols == b.Cols &&
		a.NoStream == b.NoStream
}

// FuzzV2HandshakeLine: parseSubscriptionRequest must never panic, and
// whatever it accepts must survive encodeLine→reparse unchanged —
// including generated handshakes with hostile field values.
func FuzzV2HandshakeLine(f *testing.F) {
	f.Add([]byte{}, "gscope-sub 2 signals=cpu.*,mem max-rate=30 since=-10000 cols=64")
	f.Add([]byte{1, 2, 3}, "gscope-sub 2 stream=0")
	f.Add([]byte{7}, "gscope-sub 2 since=9223372036854775807")
	f.Add([]byte{8}, "gscope-sub 2 since=-9223372036854775808")
	f.Add([]byte{9}, "gscope-sub 2 max-rate=NaN")
	f.Add([]byte{0xff, 0x10}, "1500 42.5 CWND")
	f.Fuzz(func(t *testing.T, data []byte, line string) {
		src := fuzzgen.New(data)
		for _, l := range []string{src.HandshakeLine(), line} {
			req, ok, err := parseSubscriptionRequest(l)
			if !ok || err != nil {
				continue
			}
			if verr := req.validate(); verr != nil {
				t.Fatalf("accepted request fails validate: %v (line %q)", verr, l)
			}
			enc := strings.TrimSuffix(req.encodeLine(), "\n")
			req2, ok2, err2 := parseSubscriptionRequest(enc)
			if !ok2 || err2 != nil {
				t.Fatalf("re-encoded request does not parse: ok=%v err=%v (%q from %q)", ok2, err2, enc, l)
			}
			if !reqEquivalent(req, req2) {
				t.Fatalf("handshake round trip drifted:\n%+v\nvs\n%+v\n(line %q, re-encoded %q)", req, req2, l, enc)
			}
		}
	})
}

// refSubset is the naive reference for encodeSubset: straightforward
// glob/exact matching and last-delivered-stamp decimation, no run
// optimization, no shared state.
func refSubset(req SubscriptionRequest, batch []tuple.Tuple) []tuple.Tuple {
	match := func(name string) bool {
		if len(req.Signals) == 0 {
			return true
		}
		for _, p := range req.Signals {
			if p == name {
				return true
			}
			if ok, _ := path.Match(p, name); ok {
				return true
			}
		}
		return false
	}
	var gap int64
	if req.MaxRate > 0 {
		gap = int64(1000 / req.MaxRate)
		if gap < 1 {
			gap = 0
		}
	}
	last := map[string]int64{}
	var out []tuple.Tuple
	for _, tu := range batch {
		if !match(tu.Name) {
			continue
		}
		if gap > 0 {
			if l, seen := last[tu.Name]; seen && (tu.Time < l || tu.Time-l < gap) {
				continue
			}
			last[tu.Name] = tu.Time
		}
		out = append(out, tu)
	}
	return out
}

// FuzzEncodeSubset: the hub's per-subscription encoder (same-name run
// optimization and all) must agree tuple-for-tuple with the naive
// reference, and its matched count with the reference's length. The
// delivered stream is by construction a subsequence of the batch.
func FuzzEncodeSubset(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("filter and decimate me"))
	f.Add(bytes.Repeat([]byte{0x42, 0x07, 0xee}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		batch := src.Tuples(256, false)

		var req SubscriptionRequest
		if src.Bool() {
			// Patterns drawn from real batch names (sliced to produce both
			// hits and misses) plus the occasional glob.
			n := 1 + src.Intn(3)
			for i := 0; i < n; i++ {
				if len(batch) > 0 && src.Bool() {
					name := batch[src.Intn(len(batch))].Name
					if !strings.ContainsAny(name, " ,") {
						req.Signals = append(req.Signals, name)
						continue
					}
				}
				req.Signals = append(req.Signals, []string{"sig.*", "net*", "no-such-signal", "?"}[src.Intn(4)])
			}
		}
		rates := []float64{0, 0.5, 5, 100, 1000, 1e9}
		req.MaxRate = rates[src.Intn(len(rates))]

		want := refSubset(req, batch)
		chunk, matched := encodeSubset(compileSubscription(req), batch)
		if matched != len(want) {
			t.Fatalf("matched=%d, reference kept %d (req %+v)", matched, len(want), req)
		}
		// Non-strict: skewed batches are legitimately non-monotonic, which
		// the strict reader rejects. An unparseable line would surface as a
		// skipped tuple and fail the exact count check below.
		got, err := tuple.NewReader(bytes.NewReader(chunk), false).ReadAll()
		if err != nil {
			t.Fatalf("encoded subset does not parse: %v\nchunk %q", err, chunk)
		}
		if len(got) != len(want) {
			t.Fatalf("subset has %d tuples, reference %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("subset tuple %d: %+v != reference %+v", i, got[i], want[i])
			}
		}
	})
}

// FuzzHubProtocol drives a real hub over TCP with a generated handshake,
// generated tuple batches and generated param commands, and checks the
// server's whole output stream: every complete line is either a
// well-formed control frame or byte-identical to a tuple the server was
// given. Whatever the (possibly hostile) handshake asked for, the hub
// must never synthesize or corrupt data.
func FuzzHubProtocol(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("drive the hub end to end with this decision stream padding"))
	f.Add(bytes.Repeat([]byte{0x13, 0x88, 0x05, 0xe1}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		vc := glib.NewVirtualClock(time.Unix(7000, 0))
		loop := glib.NewLoop(vc, glib.WithGranularity(0))
		srv := NewServer(loop)
		ps := core.NewParamSet()
		delay := 5.0
		ps.Add(&core.Param{Name: "delay", Get: func() float64 { return delay },
			Set: func(v float64) { delay = v }, Min: 0, Max: 100})
		srv.SetParams(ps)
		subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		injected := map[tuple.Tuple]bool{}
		inject := func(ts []tuple.Tuple) {
			for _, tu := range ts {
				injected[tu] = true
			}
			srv.InjectBatch(ts)
		}
		inject(src.Tuples(32, false))

		conn, err := net.Dial("tcp", subAddr.String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		var mu sync.Mutex
		var raw bytes.Buffer
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			chunk := make([]byte, 4096)
			for {
				n, err := conn.Read(chunk)
				mu.Lock()
				raw.Write(chunk[:n])
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()

		// softPump iterates without failing: garbage handshakes leave the
		// connection in states the test cannot (and need not) predict.
		softPump := func(d time.Duration, cond func() bool) {
			deadline := time.Now().Add(d)
			for !cond() && time.Now().Before(deadline) {
				loop.Iterate()
				time.Sleep(100 * time.Microsecond)
			}
		}

		hl := src.HandshakeLine()
		if _, err := conn.Write([]byte(hl + "\n")); err != nil {
			t.Fatal(err)
		}
		softPump(5*time.Second, func() bool { return len(srv.hub.subs) == 1 })
		if len(srv.hub.subs) != 1 {
			t.Fatal("hub never registered the connection")
		}
		// A clean v2 handshake must go live.
		if req, ok, herr := parseSubscriptionRequest(hl); ok && herr == nil && req.Since == 0 {
			softPump(5*time.Second, func() bool { return srv.Subscribers() == 1 })
			if srv.Subscribers() != 1 {
				t.Fatalf("valid v2 handshake %q never went live", hl)
			}
		}

		inject(src.Tuples(64, false))
		for i := 0; i < 2; i++ {
			if _, err := conn.Write([]byte(src.ParamCommand() + "\n")); err != nil {
				break // hub may legitimately have closed on us
			}
		}
		inject(src.Tuples(16, false))
		sent := srv.SubscriberWritten()
		softPump(time.Second, func() bool {
			return srv.SubscribersFlushed() && srv.SubscriberWritten() >= sent
		})

		srv.Close()
		<-drained

		mu.Lock()
		out := raw.String()
		mu.Unlock()
		lines := strings.Split(out, "\n")
		if last := lines[len(lines)-1]; last != "" {
			lines = lines[:len(lines)-1] // torn tail from teardown mid-write
		}
		for _, line := range lines {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				if _, ok := tuple.ParseControl(line); !ok {
					t.Fatalf("hub emitted malformed control line %q", line)
				}
				continue
			}
			tu, perr := tuple.Parse(line)
			if perr != nil {
				t.Fatalf("hub emitted unparseable line %q: %v", line, perr)
			}
			if !injected[tu] {
				t.Fatalf("hub emitted tuple %+v it was never given (line %q, handshake %q)", tu, line, hl)
			}
		}
	})
}

// TestSinceOverflowRejected is the regression lock for a crasher found by
// FuzzV2HandshakeLine: a since= value whose millisecond count does not
// fit time.Duration silently overflowed the ms→Duration multiply, so the
// request round-tripped to a different window than the client asked for.
// Out-of-range values must be rejected like any other malformed field.
func TestSinceOverflowRejected(t *testing.T) {
	for _, val := range []string{
		"9223372036854775807",  // MaxInt64 ms
		"-9223372036854775808", // MinInt64 ms
		"9223372036855",        // first ms value past the Duration range
		"-9223372036855",
	} {
		_, ok, err := parseSubscriptionRequest("gscope-sub 2 since=" + val)
		if !ok {
			t.Fatalf("since=%s not recognized as a v2 handshake", val)
		}
		if err == nil {
			t.Fatalf("since=%s accepted despite overflowing time.Duration", val)
		}
	}
	// The extremes of the representable range stay accepted.
	for _, val := range []string{"9223372036854", "-9223372036854"} {
		req, ok, err := parseSubscriptionRequest("gscope-sub 2 since=" + val)
		if !ok || err != nil {
			t.Fatalf("in-range since=%s rejected: ok=%v err=%v", val, ok, err)
		}
		if got := req.Since.Milliseconds(); got != mustInt(val) {
			t.Fatalf("since=%s parsed to %d ms", val, got)
		}
	}
}

// TestMaxRateNaNRejected locks the companion fix: max-rate=NaN passed the
// `< 0` check (NaN compares false) and then poisoned the round trip —
// NaN never equals itself — while buying a subscription that decimates
// nothing. The param-set plane already rejects NaN for the same reason.
func TestMaxRateNaNRejected(t *testing.T) {
	for _, val := range []string{"NaN", "nan", "-NaN"} {
		_, ok, err := parseSubscriptionRequest("gscope-sub 2 max-rate=" + val)
		if !ok {
			t.Fatalf("max-rate=%s not recognized as a v2 handshake", val)
		}
		if err == nil {
			t.Fatalf("max-rate=%s accepted", val)
		}
	}
	if _, _, err := parseSubscriptionRequest("gscope-sub 2 max-rate=+Inf"); err != nil {
		t.Fatalf("max-rate=+Inf (harmless: no decimation) rejected: %v", err)
	}
}

func mustInt(s string) int64 {
	var n int64
	var neg bool
	for _, c := range s {
		if c == '-' {
			neg = true
			continue
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		return -n
	}
	return n
}
