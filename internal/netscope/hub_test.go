package netscope

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/testutil"
	"repro/internal/tuple"
)

// hubRig is rig plus a subscriber listener.
func hubRig(t *testing.T) (*glib.Loop, *Server, string, string) {
	t.Helper()
	loop, _, srv, pubAddr := rig(t)
	subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return loop, srv, pubAddr, subAddr.String()
}

// collector drains a subscriber connection with a plain tuple.Reader from
// its own goroutine, the way an external viewer process would.
type collector struct {
	mu  sync.Mutex
	got []tuple.Tuple
	err error
}

func collect(t *testing.T, addr string) (*collector, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := &collector{}
	go func() {
		r := tuple.NewReader(conn, false)
		for {
			tu, err := r.Read()
			if err != nil {
				c.mu.Lock()
				c.err = err
				c.mu.Unlock()
				return
			}
			c.mu.Lock()
			c.got = append(c.got, tu)
			c.mu.Unlock()
		}
	}()
	return c, conn
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) tuples() []tuple.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]tuple.Tuple, len(c.got))
	copy(out, c.got)
	return out
}

// TestHubFanOut is the acceptance scenario: three publishers feed the hub,
// three subscribers consume it — two healthy external viewers and one
// deliberately stalled in-process viewer on a net.Pipe (which has no
// buffering, so the hub's write blocks immediately). Both healthy viewers
// must converge on the identical merged stream while the stalled one loses
// data to drop-oldest, and nothing leaks.
func TestHubFanOut(t *testing.T) {
	base := runtime.NumGoroutine()

	loop, srv, pubAddr, subAddr := hubRig(t)
	srv.SetSubscriberQueueLimit(16)

	subA, connA := collect(t, subAddr)
	subB, connB := collect(t, subAddr)
	defer connA.Close()
	defer connB.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 2 })

	// The stalled viewer: one end of an unbuffered pipe that is never read.
	stalledHub, stalledViewer := net.Pipe()
	defer stalledViewer.Close()
	srv.Subscribe(stalledHub)
	if srv.Subscribers() != 3 {
		t.Fatalf("subscribers = %d, want 3", srv.Subscribers())
	}

	const perPub, pubs = 200, 3
	var clients []*Client
	for i := 0; i < pubs; i++ {
		c, err := Dial(pubAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	for i, c := range clients {
		for j := 0; j < perPub; j++ {
			if err := c.Send(time.Duration(j)*time.Millisecond, fmt.Sprintf("p%d", i), float64(j)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	const total = perPub * pubs
	// Both healthy subscribers converge on the full merged stream even
	// though the third subscriber has been wedged the whole time.
	pump(t, loop, func() bool { return subA.count() >= total && subB.count() >= total })

	gotA, gotB := subA.tuples(), subB.tuples()
	if len(gotA) != total || len(gotB) != total {
		t.Fatalf("counts: A=%d B=%d, want %d each", len(gotA), len(gotB), total)
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Fatalf("streams diverge at %d: A=%v B=%v", i, gotA[i], gotB[i])
		}
	}
	// Each publisher's tuples arrive as an in-order subsequence.
	next := make(map[string]int64)
	for _, tu := range gotA {
		if tu.Value != float64(next[tu.Name]) {
			t.Fatalf("%s out of order: got value %v, want %d", tu.Name, tu.Value, next[tu.Name])
		}
		next[tu.Name]++
	}
	for i := 0; i < pubs; i++ {
		if next[fmt.Sprintf("p%d", i)] != perPub {
			t.Fatalf("p%d delivered %d tuples, want %d", i, next[fmt.Sprintf("p%d", i)], perPub)
		}
	}

	// The stalled subscriber hit the drop-oldest policy. Batching means
	// the 600 publisher tuples may have arrived in fewer chunks than the
	// queue bound, so push the wedged queue past it deterministically:
	// each Inject broadcasts one chunk and the pipe never drains any.
	_, _, published, _ := srv.SubscriberStats()
	if published != total {
		t.Fatalf("published = %d, want %d", published, total)
	}
	for j := 0; j < 3*16; j++ {
		srv.Inject(tuple.Tuple{Time: int64(10000 + j), Value: float64(j), Name: "extra"})
	}
	_, _, _, dropped := srv.SubscriberStats()
	if dropped == 0 {
		t.Fatal("stalled subscriber should have dropped chunks")
	}
	// The healthy subscribers drain their queues (their writers keep
	// running); the wedged queue remains, capped by the limit. If the
	// bound leaked, the backlog would stay above it and pump would fail.
	pump(t, loop, func() bool { return srv.SubscriberBacklog() <= 16 })

	// Teardown releases every goroutine: publishers, hub watches, the
	// wedged pipe writer, and the collectors (EOF on hub close).
	for _, c := range clients {
		c.Close()
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		loop.Iterate()
		time.Sleep(time.Millisecond)
	}
}

func TestHubSnapshotOnConnect(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)

	for i := 0; i < 5; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i * 100), Value: float64(i), Name: "s"})
	}
	sub, conn := collect(t, subAddr)
	defer conn.Close()
	pump(t, loop, func() bool { return sub.count() >= 5 })

	// Live delta after the snapshot.
	srv.Inject(tuple.Tuple{Time: 600, Value: 99, Name: "s"})
	pump(t, loop, func() bool { return sub.count() >= 6 })
	got := sub.tuples()
	for i := 0; i < 5; i++ {
		if got[i].Value != float64(i) {
			t.Fatalf("snapshot tuple %d = %v", i, got[i])
		}
	}
	if got[5].Value != 99 {
		t.Fatalf("delta = %v", got[5])
	}
}

func TestHubSnapshotFraming(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.Inject(tuple.Tuple{Time: 10, Value: 1, Name: "s"})

	conn, err := net.Dial("tcp", subAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		r := make([]byte, 1)
		var line []byte
		for {
			if _, err := conn.Read(r); err != nil {
				return
			}
			if r[0] == '\n' {
				lines <- string(line)
				line = nil
				continue
			}
			line = append(line, r[0])
		}
	}()
	read := func() string {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case l := <-lines:
				return l
			case <-deadline:
				t.Fatal("no line")
			default:
				loop.Iterate()
				time.Sleep(time.Millisecond)
			}
		}
	}
	want := []string{
		"# gscope-hub 1",
		"# snapshot tuples=1 window-ms=5000",
		"10 1 s",
		"# snapshot-end",
	}
	for i, w := range want {
		if got := read(); got != w {
			t.Fatalf("line %d = %q, want %q", i, got, w)
		}
	}
	srv.Inject(tuple.Tuple{Time: 20, Value: 2, Name: "s"})
	if got := read(); got != "20 2 s" {
		t.Fatalf("delta line = %q", got)
	}
}

func TestHubSnapshotWindowPrune(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(time.Second)
	// 0..6000ms in 500ms steps; only tuples within 1s of the newest
	// (t=5000..6000) survive in the snapshot.
	for ms := int64(0); ms <= 6000; ms += 500 {
		srv.Inject(tuple.Tuple{Time: ms, Value: 1, Name: "s"})
	}
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) { got = append(got, tu) })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return sub.Snapshot() >= 3 })
	if !sub.Handshaken() {
		t.Fatal("no handshake seen")
	}
	if sub.Snapshot() != 3 || len(got) != 3 {
		t.Fatalf("snapshot = %d tuples (%d delivered), want 3", sub.Snapshot(), len(got))
	}
	if got[0].Time != 5000 || got[2].Time != 6000 {
		t.Fatalf("window wrong: %v", got)
	}
}

func TestHubSnapshotWindowZeroDisablesHistory(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0)
	for i := 0; i < 5; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i * 100), Value: float64(i), Name: "s"})
	}
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) { got = append(got, tu) })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return sub.Handshaken() })
	// Handshake arrives but carries no history; live deltas still flow.
	srv.Inject(tuple.Tuple{Time: 600, Value: 42, Name: "s"})
	pump(t, loop, func() bool { return len(got) >= 1 })
	if sub.Snapshot() != 0 {
		t.Fatalf("snapshot = %d, want 0", sub.Snapshot())
	}
	if len(got) != 1 || got[0].Value != 42 {
		t.Fatalf("deltas = %v", got)
	}
}

func TestSubscribeToDeliversOnLoop(t *testing.T) {
	loop, srv, pubAddr, subAddr := hubRig(t)
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) { got = append(got, tu) })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })

	c, err := Dial(pubAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		c.Send(time.Duration(i)*time.Millisecond, "remote", float64(i)) //nolint:errcheck
	}
	c.Flush() //nolint:errcheck
	pump(t, loop, func() bool { return len(got) >= 3 })
	recvd, perrs := sub.Stats()
	if recvd != 3 || perrs != 0 {
		t.Fatalf("stats = %d received %d parse errors", recvd, perrs)
	}
	if sub.Snapshot() != 0 {
		t.Fatalf("snapshot = %d, want 0 (connected before data)", sub.Snapshot())
	}
}

// TestHubChaining relays one hub into another: publishers → hub A →
// (Subscriber→Inject bridge) → hub B → viewer, the chained-relay topology
// cmd/gscoped exposes with -upstream.
func TestHubChaining(t *testing.T) {
	loop, srvA, pubAddr, subAddrA := hubRig(t)
	_ = srvA
	srvB := NewServer(loop)
	subAddrB, err := srvB.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvB.Close() })

	bridge, err := SubscribeTo(loop, subAddrA, srvB.Inject)
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	viewer, conn := collect(t, subAddrB.String())
	defer conn.Close()
	pump(t, loop, func() bool { return srvB.Subscribers() == 1 })

	c, err := Dial(pubAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Send(time.Duration(i)*time.Millisecond, "remote", float64(i)) //nolint:errcheck
	}
	c.Flush() //nolint:errcheck
	pump(t, loop, func() bool { return viewer.count() >= 5 })
	for i, tu := range viewer.tuples() {
		if tu.Value != float64(i) {
			t.Fatalf("chained tuple %d = %v", i, tu)
		}
	}
}

func TestSubscriberDisconnectCleansUp(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	_, conn := collect(t, subAddr)
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })
	conn.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 0 })
	subs, unsubs, _, _ := srv.SubscriberStats()
	if subs != 1 || unsubs != 1 {
		t.Fatalf("stats: subscribes=%d unsubscribes=%d", subs, unsubs)
	}
}

func TestClientReconnectSurvivesHubRestart(t *testing.T) {
	loop, _, srv, addr := rig(t)
	c := DialReconnect(addr)
	defer c.Close()
	c.Send(10*time.Millisecond, "remote", 1) //nolint:errcheck
	pump(t, loop, func() bool {
		_, _, recv, _ := srv.Stats()
		return recv >= 1
	})

	// Restart the hub on the same port.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(loop)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })

	// Sends issued during/after the outage arrive once the client has
	// reconnected with backoff.
	testutil.WaitUntil(t, "client to reconnect", 10*time.Second, func() bool {
		c.Send(20*time.Millisecond, "remote", 2) //nolint:errcheck
		loop.Iterate()
		_, _, recv, _ := srv2.Stats()
		return recv >= 1
	})
	if c.Reconnects() < 2 {
		t.Fatalf("reconnects = %d, want >= 2", c.Reconnects())
	}
}

func TestReconnectClientStartsBeforeServer(t *testing.T) {
	// Reserve an address, then free it so nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := DialReconnect(addr)
	defer c.Close()
	c.Send(5*time.Millisecond, "remote", 7) //nolint:errcheck

	vc := glib.NewVirtualClock(time.Unix(7000, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	srv := NewServer(loop)
	if _, err := srv.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	pump(t, loop, func() bool {
		_, _, recv, _ := srv.Stats()
		return recv >= 1
	})
	if c.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", c.Reconnects())
	}
}

func TestReconnectQueueBoundDropOldest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := DialReconnect(addr)
	c.SetQueueLimit(10)
	for i := 0; i < 25; i++ {
		c.Send(time.Duration(i)*time.Millisecond, "x", float64(i)) //nolint:errcheck
	}
	if c.Dropped() != 15 {
		t.Fatalf("dropped = %d, want 15", c.Dropped())
	}
	if err := c.Close(); err == nil {
		t.Fatal("close with undeliverable queue should report the flush timeout")
	}
}

func TestSubscribeToBatchReceivesBatches(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0)

	var batches [][]tuple.Tuple
	var total int
	sub, err := SubscribeToBatch(loop, subAddr, func(batch []tuple.Tuple) {
		cp := make([]tuple.Tuple, len(batch))
		copy(cp, batch)
		batches = append(batches, cp)
		total += len(batch)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })

	// One InjectBatch becomes one broadcast chunk; the subscriber should
	// see the whole thing in (at most a few) batch callbacks rather than
	// one per tuple.
	in := make([]tuple.Tuple, 64)
	for i := range in {
		in[i] = tuple.Tuple{Time: int64(i), Value: float64(i), Name: "b"}
	}
	srv.InjectBatch(in)
	pump(t, loop, func() bool { return total == len(in) })
	if len(batches) > 4 {
		t.Fatalf("64 tuples arrived in %d callbacks; batching lost", len(batches))
	}
	seq := 0
	for _, b := range batches {
		for _, tu := range b {
			if tu.Value != float64(seq) {
				t.Fatalf("out of order at %d: %+v", seq, tu)
			}
			seq++
		}
	}
}

func TestInjectBatchFeedsScopesAndHistory(t *testing.T) {
	loop, srv, _, _ := hubRig(t)
	sc := core.New(loop, "attached", 100, 50)
	if _, err := sc.AddSignal(core.Sig{Name: "b", Kind: core.KindBuffer}); err != nil {
		t.Fatal(err)
	}
	srv.Attach(sc)
	in := make([]tuple.Tuple, 32)
	for i := range in {
		in[i] = tuple.Tuple{Time: int64((i + 1) * 10), Value: float64(i), Name: "b"}
	}
	srv.InjectBatch(in)
	if sc.Feed().Pending() != len(in) {
		t.Fatalf("feed pending = %d", sc.Feed().Pending())
	}
	if _, _, received, _ := srv.Stats(); received != int64(len(in)) {
		t.Fatalf("received = %d", received)
	}
}

// TestHubRetainNonMonotonicStamps is the regression test for snapshot
// retention under skewed publisher clocks: retain used to anchor the
// pruning window to the incoming tuple's own timestamp, so one
// stale-stamped tuple both entered the snapshot history (though already
// outside the window) and stalled pruning. The window must be anchored to
// a running max of the stamps seen.
func TestHubRetainNonMonotonicStamps(t *testing.T) {
	_, srv, _, _ := hubRig(t)
	srv.SetSnapshotWindow(time.Second)
	for ms := int64(0); ms <= 6000; ms += 100 {
		srv.Inject(tuple.Tuple{Time: ms, Value: 1, Name: "fresh"})
	}
	// A publisher with a clock 6s behind interleaves stale tuples with
	// the live stream.
	for i := 0; i < 50; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i), Value: 2, Name: "stale"})
		srv.Inject(tuple.Tuple{Time: 6000 + int64(i), Value: 1, Name: "fresh"})
	}
	win := int64(1000)
	newest := int64(6000 + 49)
	for i, tu := range srv.hub.history {
		if newest-tu.Time > win {
			t.Fatalf("history[%d] = %+v is outside the %dms window of newest %d",
				i, tu, win, newest)
		}
		if tu.Name == "stale" {
			t.Fatalf("history[%d] retained a stale-stamped tuple: %+v", i, tu)
		}
	}
	// 10 fresh tuples from the ramp (5100..6000) plus the 50 interleaved
	// live ones — and none of the 50 stale ones.
	if n := len(srv.hub.history); n != 60 {
		t.Fatalf("history holds %d tuples, want 60", n)
	}
}

// TestHubRetainFutureStampEvictsOnce: a single future-stamped tuple snaps
// the window forward (that is inherent to max-anchored retention), but the
// stream must recover — once live stamps catch up to the bogus max, the
// snapshot window fills again instead of staying empty or growing without
// bound.
func TestHubRetainFutureStampRecovery(t *testing.T) {
	_, srv, _, _ := hubRig(t)
	srv.SetSnapshotWindow(time.Second)
	for ms := int64(0); ms <= 2000; ms += 100 {
		srv.Inject(tuple.Tuple{Time: ms, Value: 1, Name: "s"})
	}
	srv.Inject(tuple.Tuple{Time: 100000, Value: 9, Name: "future"})
	// Live stamps eventually pass the bogus max; the window re-fills.
	for ms := int64(99500); ms <= 101000; ms += 100 {
		srv.Inject(tuple.Tuple{Time: ms, Value: 1, Name: "s"})
	}
	// Completeness: every tuple stamped within the window of the final
	// max is in the snapshot history. (A few tuples that were in-window
	// on arrival may linger behind a newer-stamped front entry — the
	// prefix prune cannot reach them — so the history may run slightly
	// ahead of the strict window, bounded by the hard size cap.)
	inWindow := make(map[int64]bool)
	for _, tu := range srv.hub.history {
		inWindow[tu.Time] = true
	}
	for ms := int64(100000); ms <= 101000; ms += 100 {
		if !inWindow[ms] {
			t.Fatalf("tuple at %dms missing from the recovered window", ms)
		}
	}
	if n := len(srv.hub.history); n == 0 || n > 20 {
		t.Fatalf("history holds %d tuples after recovery, want ~11-17", n)
	}
}
