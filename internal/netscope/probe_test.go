package netscope

import (
	"testing"
	"time"
	"unsafe"

	"repro/internal/glib"
	"repro/internal/tuple"
)

func TestClientProbeEndToEnd(t *testing.T) {
	loop, _, srv, addr := rig(t)

	var got []tuple.Tuple
	srv.OnTuple = func(tu tuple.Tuple) { got = append(got, tu) }

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Probe("cwnd")
	if err != nil {
		t.Fatal(err)
	}
	if p2, err := c.Probe("cwnd"); err != nil || p2 != p {
		t.Fatalf("Probe not idempotent: %v %v", p2, err)
	}
	if _, err := c.Probe("bad\nname"); err == nil {
		t.Fatal("invalid probe name accepted")
	}

	if err := p.Send(10*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	samples := []tuple.Sample{
		{At: 20 * time.Millisecond, Value: 2},
		{At: 30 * time.Millisecond, Value: 3},
	}
	if err := p.SendBatch(samples); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool {
		_, _, received, _ := srv.Stats()
		return received >= 3
	})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("observed %d tuples: %+v", len(got), got)
	}
	want := []tuple.Tuple{
		{Time: 10, Value: 1, Name: "cwnd"},
		{Time: 20, Value: 2, Name: "cwnd"},
		{Time: 30, Value: 3, Name: "cwnd"},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tuple %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// strData returns the data pointer of a string, to observe interning.
func strData(s string) uintptr {
	return uintptr(unsafe.Pointer(unsafe.StringData(s)))
}

func TestServerCanonicalizesNames(t *testing.T) {
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	srv := NewServer(loop)
	defer srv.Close()

	var names []string
	srv.OnTuple = func(tu tuple.Tuple) { names = append(names, tu.Name) }

	// Two batches whose equal names arrive on distinct backing arrays —
	// the shape line parsing produces.
	mk := func() []tuple.Tuple {
		return []tuple.Tuple{
			{Time: 1, Value: 1, Name: string([]byte("cwnd"))},
			{Time: 2, Value: 2, Name: string([]byte("cwnd"))},
			{Time: 3, Value: 3, Name: string([]byte("cps"))},
		}
	}
	srv.InjectBatch(mk())
	srv.InjectBatch(mk())
	if len(names) != 6 {
		t.Fatalf("observed %d tuples", len(names))
	}
	// All "cwnd" instances must share one backing array after interning.
	base := strData(names[0])
	for i, n := range names {
		if n == "cwnd" && strData(n) != base {
			t.Fatalf("tuple %d name not interned", i)
		}
	}
	if names[2] != "cps" || strData(names[2]) != strData(names[5]) {
		t.Fatal("second signal not interned")
	}
}

func TestServerInternCapStillDelivers(t *testing.T) {
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	srv := NewServer(loop)
	defer srv.Close()
	count := 0
	srv.OnTuple = func(tu tuple.Tuple) { count++ }
	batch := make([]tuple.Tuple, 0, maxInternedNames+10)
	for i := 0; i < maxInternedNames+10; i++ {
		batch = append(batch, tuple.Tuple{Time: int64(i), Value: 1, Name: "sig" + string(rune('a'+i%26)) + itoa(i)})
	}
	srv.InjectBatch(batch)
	if count != maxInternedNames+10 {
		t.Fatalf("delivered %d of %d tuples past the intern cap", count, maxInternedNames+10)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// The reusable writer buffers must not corrupt data across rounds or
// during drop-oldest trimming.
func TestClientQueueReuseIntegrity(t *testing.T) {
	loop, _, srv, addr := rig(t)
	var got []tuple.Tuple
	srv.OnTuple = func(tu tuple.Tuple) { got = append(got, tu) }

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 50
	const per = 128
	samples := make([]tuple.Sample, per)
	for r := 0; r < rounds; r++ {
		for j := range samples {
			samples[j] = tuple.Sample{At: time.Duration(r*per+j) * time.Millisecond, Value: float64(r*per + j)}
		}
		if err := c.SendProbeBatch(p, samples); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil { // force many writer rounds
			t.Fatal(err)
		}
	}
	pump(t, loop, func() bool {
		_, _, received, _ := srv.Stats()
		return received >= rounds*per
	})
	if len(got) != rounds*per {
		t.Fatalf("observed %d", len(got))
	}
	for i, tu := range got {
		if tu.Time != int64(i) || tu.Value != float64(i) {
			t.Fatalf("tuple %d corrupted: %+v", i, tu)
		}
	}
}

func TestClientTrimInPlace(t *testing.T) {
	c := DialReconnect("127.0.0.1:1") // never connects
	defer c.Close()
	c.SetQueueLimit(10)
	p, err := c.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]tuple.Sample, 25)
	for i := range samples {
		samples[i] = tuple.Sample{At: time.Duration(i) * time.Millisecond, Value: float64(i)}
	}
	if err := c.SendProbeBatch(p, samples); err != nil {
		t.Fatal(err)
	}
	if c.Dropped() != 15 {
		t.Fatalf("Dropped = %d, want 15", c.Dropped())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) != 10 {
		t.Fatalf("queue len %d", len(c.queue))
	}
	// Drop-oldest: the newest 10 survive, in order.
	for i, tu := range c.queue {
		if tu.Value != float64(15+i) {
			t.Fatalf("queue[%d] = %+v", i, tu)
		}
	}
}
