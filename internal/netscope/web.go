package netscope

import (
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
)

// This file is the hub's attachment surface for the web gateway
// (repro/internal/webscope): the listener plumbing, the loop-goroutine
// read paths the HTTP handlers marshal onto, and the web lane's fan-out
// counters. The gateway itself — SSE/WebSocket streaming, the query API,
// the embedded dashboard — lives in webscope so netscope keeps zero
// net/http surface beyond this hook.

// WebHandler is what ListenWeb mounts: an http.Handler that can be told
// to shut down. Close must terminate every in-flight streaming response
// (SSE writers, hijacked WebSocket connections) and not return until
// their handler goroutines have exited — Server.Close relies on that
// ordering to guarantee a leak-free teardown.
type WebHandler interface {
	http.Handler
	Close() error
}

// ListenWeb binds addr and serves h on it. At most one web listener per
// server; call after the gateway is constructed and before loop.Run. The
// returned address is the bound one (addr may use port 0). Server.Close
// tears the listener, the handler and every in-flight request down.
func (s *Server) ListenWeb(addr string, h WebHandler) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.webLn = ln
	s.webH = h
	s.webSrv = &http.Server{Handler: h}
	s.webDone = make(chan struct{})
	go func() {
		defer close(s.webDone)
		s.webSrv.Serve(ln) //nolint:errcheck // always ErrServerClosed-ish at teardown
	}()
	return ln.Addr(), nil
}

// WebAddr returns the bound web listener address, nil without ListenWeb.
func (s *Server) WebAddr() net.Addr {
	if s.webLn == nil {
		return nil
	}
	return s.webLn.Addr()
}

// closeWeb tears down the web lane: the gateway first (so in-flight
// SSE/WebSocket writers observe shutdown and their goroutines exit —
// hijacked connections are invisible to http.Server and only the gateway
// can close them), then the http.Server (listener plus any remaining
// non-hijacked connections), then waits for the serve goroutine.
func (s *Server) closeWeb() error {
	if s.webSrv == nil {
		return nil
	}
	var err error
	if s.webH != nil {
		err = s.webH.Close()
	}
	if cerr := s.webSrv.Close(); err == nil && cerr != http.ErrServerClosed {
		err = cerr
	}
	<-s.webDone
	s.webSrv = nil
	s.webH = nil
	s.webLn = nil
	return err
}

// Loop returns the event loop the server runs on. Web gateway handlers
// run on net/http goroutines and must marshal every hub read or
// subscription through Loop().Invoke — all hub state is loop-owned.
func (s *Server) Loop() *glib.Loop { return s.loop }

// FlightDir returns the flight recorder's session directory ("" when not
// recording) — the web gateway's /v1/sessions source.
func (s *Server) FlightDir() string { return s.flightDir }

// SignalView is one signal's decimated min/max envelope over a queried
// window: the web gateway's JSON unit for /v1/view responses.
type SignalView struct {
	Name    string
	Buckets []core.TimedBucket
}

// WebView renders the tiered backfill store's envelope view of
// [sinceMS, newest] for every signal matching patterns, at most cols
// buckets per signal — O(cols) per signal, the same store Since+Cols
// subscriptions read. A negative sinceMS is a trailing window before the
// newest stream timestamp, like SubscriptionRequest.Since. Must run on
// the loop goroutine. Returns nil when the store is disabled
// (SetBackfillRetention was never called).
func (s *Server) WebView(patterns []string, sinceMS int64, cols int) ([]SignalView, error) {
	req := SubscriptionRequest{Signals: patterns}
	if err := req.validate(); err != nil {
		return nil, err
	}
	if s.hub.backfill == nil {
		return nil, nil
	}
	f := compileFilter(patterns)
	abs := s.resolveSince(time.Duration(sinceMS) * time.Millisecond)
	names := make([]string, 0, len(s.hub.backfill))
	for name := range s.hub.backfill {
		if f.match(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	views := make([]SignalView, 0, len(names))
	for _, name := range names {
		buckets := s.hub.backfill[name].ViewSince(abs, cols)
		kept := buckets[:0]
		for _, bk := range buckets {
			if bk.Count > 0 {
				kept = append(kept, bk)
			}
		}
		if len(kept) > 0 {
			views = append(views, SignalView{Name: name, Buckets: kept})
		}
	}
	return views, nil
}

// StreamNewest returns the newest retained stream timestamp (ms) and
// whether any tuple has been seen. Must run on the loop goroutine.
func (s *Server) StreamNewest() (int64, bool) { return s.hub.newestMS, s.hub.newestSet }

// BackfillEnabled reports whether the tiered backfill store is on. Must
// run on the loop goroutine.
func (s *Server) BackfillEnabled() bool { return s.hub.backfill != nil }

// WebCounters aggregates the web gateway lane's fan-out accounting.
// The gateway's HTTP goroutines update it; FanoutStats and the -ansi
// status line read it. All methods are safe from any goroutine.
type WebCounters struct {
	clients atomic.Int64 // currently connected stream clients
	served  atomic.Int64 // lifetime stream clients
	dropped atomic.Int64 // events lost to per-client drop-oldest queues
	bytes   atomic.Int64 // payload bytes written to browsers
}

// Web returns the server's web lane counters; the gateway holds this
// pointer for the lifetime of the attachment.
func (s *Server) Web() *WebCounters { return &s.web }

// StreamOpen records a stream client connecting.
func (c *WebCounters) StreamOpen() { c.clients.Add(1); c.served.Add(1) }

// StreamClose records a stream client departing.
func (c *WebCounters) StreamClose() { c.clients.Add(-1) }

// AddDropped records n events lost to a client's drop-oldest queue.
func (c *WebCounters) AddDropped(n int64) { c.dropped.Add(n) }

// AddBytes records n payload bytes written to a browser.
func (c *WebCounters) AddBytes(n int64) { c.bytes.Add(n) }

// Clients returns the number of currently connected stream clients.
func (c *WebCounters) Clients() int64 { return c.clients.Load() }

// AppendWebStats renders the web gateway lane counters into dst without
// allocating — the -ansi status line repaints it every second. Without a
// web listener dst is returned unchanged.
func (s *Server) AppendWebStats(dst []byte) []byte {
	if s.webLn == nil {
		return dst
	}
	dst = append(dst, "web clients="...)
	dst = strconv.AppendInt(dst, s.web.clients.Load(), 10)
	dst = append(dst, " served="...)
	dst = strconv.AppendInt(dst, s.web.served.Load(), 10)
	dst = append(dst, " drops="...)
	dst = strconv.AppendInt(dst, s.web.dropped.Load(), 10)
	dst = append(dst, " bytes="...)
	dst = strconv.AppendInt(dst, s.web.bytes.Load(), 10)
	return dst
}
