package netscope

// The datagram publish lane: a netscope Client that ships its queue over
// internal/dgram instead of a TCP stream, and the Server listener that
// ingests datagram publishers next to the stream ones. The Client side
// keeps the exact send API and queue discipline (bounded, drop-oldest,
// never blocks the instrumented application); what changes is the
// failure mode — a lossy network shows up as counted gaps at the hub
// instead of head-of-line blocking at the publisher (docs/WIRE.md §D).

import (
	"fmt"
	"net"

	"repro/internal/dgram"
	"repro/internal/tuple"
)

// DialUDP returns a Client publishing to a server's datagram listener
// (Server.ListenPublishersUDP). The lane always uses the v3 binary
// chunks — each datagram is self-contained, so SetWireVersion does not
// apply — and it never reconnects because there is no connection: sends
// just keep flowing, and whatever the network eats the receiver accounts
// as loss, recovering what it can through NACKs.
func DialUDP(addr string) (*Client, error) {
	pub, err := dgram.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	c := &Client{
		addr: addr,
		udp:  pub,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go c.writerUDP()
	return c, nil
}

// writerUDP is the datagram twin of writer: same queue/spare ping-pong,
// same zero-allocation steady state — the dgram publisher retains its
// encoder, packet buffer and ring slots the way the stream writer
// retains wbuf. No reconnect arm, no hello: datagrams are stateless.
func (c *Client) writerUDP() {
	defer close(c.done)
	for {
		c.mu.Lock()
		batch := c.queue
		if len(batch) > 0 {
			c.queue = c.spare[:0]
			c.spare = nil
		}
		c.inflight = len(batch)
		closed := c.closed
		c.mu.Unlock()

		if len(batch) > 0 {
			c.udp.Publish(batch)
			c.mu.Lock()
			c.sent += int64(len(batch))
			c.inflight = 0
			if c.spare == nil {
				c.spare = batch[:0]
			}
			c.mu.Unlock()
			continue
		}
		if closed {
			return
		}
		<-c.kick
	}
}

// UDPStats returns the datagram publisher's counters; ok is false for
// stream clients.
func (c *Client) UDPStats() (st dgram.PublisherStats, ok bool) {
	if c.udp == nil {
		return dgram.PublisherStats{}, false
	}
	return c.udp.Stats(), true
}

// ListenPublishersUDP starts the datagram publisher listener: every
// in-order release from the reorder/jitter buffer is handed to the loop
// and injected exactly like a decoded TCP batch, so recorder, flight
// log, scopes and subscriber fan-out see one merged stream. Loss,
// reorder and recovery counters surface in FanoutStats and per source
// via UDPSourceStats.
func (s *Server) ListenPublishersUDP(addr string) (net.Addr, error) {
	if s.udpRecv != nil {
		return nil, fmt.Errorf("netscope: datagram listener already active")
	}
	rcv, err := dgram.Listen(addr, func(batch []tuple.Tuple) {
		// The release callback runs on the receiver's goroutine with its
		// lock held; it must not block. Copy the reused slice and hop to
		// the loop goroutine, which owns all ingest state.
		cp := append([]tuple.Tuple(nil), batch...)
		s.loop.Invoke(func() { s.InjectBatch(cp) })
	}, dgram.Options{})
	if err != nil {
		return nil, err
	}
	s.udpRecv = rcv
	return rcv.Addr(), nil
}

// UDPSourceStats snapshots the per-publisher transport counters of the
// datagram listener (nil without one).
func (s *Server) UDPSourceStats() []dgram.SourceStats {
	if s.udpRecv == nil {
		return nil
	}
	return s.udpRecv.SourceStats()
}

// AppendUDPStats renders the datagram transport counters into dst
// without allocating — the -ansi status line repaints it every second.
// With no datagram listener dst is returned unchanged.
func (s *Server) AppendUDPStats(dst []byte) []byte {
	if s.udpRecv == nil {
		return dst
	}
	return s.udpRecv.AppendStats(dst)
}
