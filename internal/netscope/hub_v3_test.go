package netscope

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tuple"
)

// End-to-end coverage for the v3 binary wire protocol (docs/WIRE.md): the
// publisher's binary lane, subscriber negotiation through the v2
// handshake, shared and private encoder fan-out, text fallback paths, and
// the guarantee that v1/v2 text peers are unaffected by binary traffic.

// TestV3PublisherBinaryWire checks the raw bytes a binary publisher emits:
// the advisory hello line, then binary frames, the whole stream decodable
// by the mixed-stream reader.
func TestV3PublisherBinaryWire(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, aerr := ln.Accept()
		if aerr == nil {
			accepted <- conn
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetWireVersion(3); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if err := c.Send(time.Duration(i*10)*time.Millisecond, "CWND", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	conn := <-accepted
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	var raw []byte
	chunk := make([]byte, 4096)
	for !bytes.Contains(raw, []byte{tuple.FrameMarker}) || len(raw) < 20 {
		n, rerr := conn.Read(chunk)
		raw = append(raw, chunk[:n]...)
		if rerr != nil {
			break
		}
	}
	if !bytes.HasPrefix(raw, []byte("# gscope-pub 3\n")) {
		t.Fatalf("binary publisher did not open with the hello line: %q", raw)
	}
	if !bytes.Contains(raw, []byte{tuple.FrameMarker}) {
		t.Fatalf("no binary frames on the wire: %q", raw)
	}
	sr := tuple.NewStreamReader(bytes.NewReader(raw))
	var got []tuple.Tuple
	for {
		tu, rerr := sr.Read()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			t.Fatalf("publisher stream undecodable: %v", rerr)
		}
		got = append(got, tu)
	}
	if len(got) != 8 || got[0].Name != "CWND" || got[7].Value != 8 {
		t.Fatalf("decoded publisher stream = %+v", got)
	}
}

// TestV3PublisherToServer: a binary publisher and a text publisher feed the
// same server; both streams land in the feed, and the binary one is
// counted tuple-for-tuple like text.
func TestV3PublisherToServer(t *testing.T) {
	loop, sc, srv, addr := rig(t)
	bin, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	if err := bin.SetWireVersion(3); err != nil {
		t.Fatal(err)
	}
	txt, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer txt.Close()

	for i := 1; i <= 6; i++ {
		bin.Send(time.Duration(i)*time.Millisecond, "remote", float64(i)) //nolint:errcheck
		txt.Send(time.Duration(i)*time.Millisecond, "remote", float64(i)) //nolint:errcheck
	}
	bin.Flush() //nolint:errcheck
	txt.Flush() //nolint:errcheck
	pump(t, loop, func() bool {
		_, _, recv, _ := srv.Stats()
		return recv >= 12
	})
	_, _, _, parseErrs := srv.Stats()
	if parseErrs != 0 {
		t.Fatalf("binary ingest produced %d parse errors", parseErrs)
	}
	if sc.Feed().Pending() != 12 {
		t.Fatalf("feed pending = %d, want 12", sc.Feed().Pending())
	}
}

// TestV3SubscriberBinaryDelivery: a wire=3 subscriber negotiates through
// the v2 handshake, receives live deltas as binary frames (verified on the
// raw wire), and decodes them to the same tuples a text viewer sees.
func TestV3SubscriberBinaryDelivery(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0)

	var mu sync.Mutex
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}, WithWireVersion(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// A raw peer speaking the same handshake, to inspect the bytes.
	raw, rawConn := collectRaw(t, subAddr)
	defer rawConn.Close()
	if _, err := rawConn.Write([]byte(subMagic + " 2 wire=3\n")); err != nil {
		t.Fatal(err)
	}
	// And a plain v1 text viewer for cross-checking.
	txt, txtConn := collect(t, subAddr)
	defer txtConn.Close()

	pump(t, loop, func() bool { return srv.Subscribers() == 3 })
	batch := []tuple.Tuple{
		{Time: 100, Value: 1.5, Name: "CWND"},
		{Time: 110, Value: 2.5, Name: "CWND"},
		{Time: 120, Value: 7, Name: "rtt"},
	}
	srv.InjectBatch(batch)
	pump(t, loop, func() bool {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		return n >= 3 && txt.count() >= 3 && bytes.Contains(raw.bytes(), []byte{tuple.FrameMarker})
	})

	if !sub.Acked() {
		t.Fatal("wire=3 subscription not acked")
	}
	rb := raw.bytes()
	if !bytes.Contains(rb, []byte("wire=3")) {
		t.Fatalf("ack does not echo wire=3: %q", rb)
	}
	if !bytes.Contains(rb, []byte{tuple.FrameMarker, tuple.FrameDict}) {
		t.Fatalf("no DICT frame on the wire: %q", rb)
	}
	mu.Lock()
	defer mu.Unlock()
	a := tuple.AppendWireBatch(nil, got)
	b := tuple.AppendWireBatch(nil, txt.tuples())
	if !bytes.Equal(a, b) {
		t.Fatalf("binary and text subscribers diverge:\nbin %q\ntxt %q", a, b)
	}
}

// TestV3SubscriberSnapshot: history that predates the binary dictionary is
// served at activation via the read-only encoder (text fallback, WIRE.md
// §B1) and still counts as snapshot tuples; deltas after the ack flow
// binary and the shared broadcast dictionary catches the client up.
func TestV3SubscriberSnapshot(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	for i := 1; i <= 3; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i * 10), Value: float64(i), Name: "s"})
	}
	var mu sync.Mutex
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}, WithWireVersion(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })
	srv.Inject(tuple.Tuple{Time: 40, Value: 4, Name: "s"})
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 4
	})
	if sub.Snapshot() != 3 {
		t.Fatalf("snapshot count = %d, want 3", sub.Snapshot())
	}
	mu.Lock()
	defer mu.Unlock()
	for i, want := range []float64{1, 2, 3, 4} {
		if got[i].Value != want || got[i].Name != "s" {
			t.Fatalf("tuple %d = %+v, want value %v", i, got[i], want)
		}
	}
}

// TestV3FilteredSubscriberBinary: a filtered wire=3 subscription gets its
// own encoder; filtering and decimation accounting match the text plane.
func TestV3FilteredSubscriberBinary(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0)

	var mu sync.Mutex
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}, WithWireVersion(3), WithSignals("alpha", "p*"))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })

	srv.InjectBatch([]tuple.Tuple{
		{Time: 10, Value: 1, Name: "alpha"},
		{Time: 11, Value: 2, Name: "beta"},
		{Time: 12, Value: 3, Name: "p1"},
		{Time: 13, Value: 4, Name: "quux"},
	})
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 2
	})
	mu.Lock()
	if len(got) != 2 || got[0].Name != "alpha" || got[1].Name != "p1" {
		t.Fatalf("filtered binary stream = %+v", got)
	}
	mu.Unlock()
	if st := srv.FanoutStats(); st.Filtered != 2 {
		t.Fatalf("filtered counter = %d, want 2", st.Filtered)
	}
}

// TestV3RelayChain: an upstream hub feeds a downstream server through a
// binary subscription; a v1 text viewer on the downstream hub sees every
// tuple — binary survives the relay hop by being decoded and re-broadcast.
func TestV3RelayChain(t *testing.T) {
	loop, up, _, upSub := hubRig(t)
	up.SetSnapshotWindow(0)
	down := NewServer(loop)
	downSub, err := down.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { down.Close() })

	relay, err := SubscribeToBatch(loop, upSub, func(batch []tuple.Tuple) {
		down.InjectBatch(batch)
	}, WithWireVersion(3))
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	viewer, viewerConn := collect(t, downSub.String())
	defer viewerConn.Close()
	pump(t, loop, func() bool { return up.Subscribers() == 1 && down.Subscribers() == 1 })

	up.InjectBatch([]tuple.Tuple{
		{Time: 10, Value: 1, Name: "a"},
		{Time: 20, Value: 2, Name: "b"},
		{Time: 30, Value: 3, Name: "a"},
	})
	pump(t, loop, func() bool { return viewer.count() >= 3 })
	ts := viewer.tuples()
	if ts[0].Name != "a" || ts[1].Name != "b" || ts[2].Value != 3 {
		t.Fatalf("relayed stream = %+v", ts)
	}
}

// TestV3ControlPlaneStaysText: param replies on a wire=3 connection are
// text control frames (control never goes binary), and they arrive in
// order relative to binary tuple traffic.
func TestV3ControlPlaneStaysText(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0)
	ps := core.NewParamSet()
	var knob core.IntVar
	if err := ps.Add(core.IntParam("knob", &knob, 0, 10)); err != nil {
		t.Fatal(err)
	}
	srv.SetParams(ps)

	var mu sync.Mutex
	var frames []tuple.ControlFrame
	sub, err := SubscribeTo(loop, subAddr, func(tuple.Tuple) {}, WithWireVersion(3), WithControl())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.OnControl(func(f tuple.ControlFrame) {
		mu.Lock()
		frames = append(frames, f)
		mu.Unlock()
	})
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })
	if err := sub.Command("param list"); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, f := range frames {
			if f.Verb == "params-end" {
				return true
			}
		}
		return false
	})
	mu.Lock()
	defer mu.Unlock()
	var sawList bool
	for _, f := range frames {
		if f.Verb == "params" {
			sawList = true
		}
	}
	if !sawList {
		t.Fatalf("no params frame over the v3 connection: %+v", frames)
	}
}

// TestV1TextUnchangedBesideV3: with a binary subscriber attached to the
// same hub, a v1 subscriber's stream stays byte-identical to the classic
// protocol — binary fan-out must not perturb the text lane.
func TestV1TextUnchangedBesideV3(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)

	bin, err := SubscribeTo(loop, subAddr, func(tuple.Tuple) {}, WithWireVersion(3))
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })

	raw, conn := collectRaw(t, subAddr)
	defer conn.Close()
	pump(t, loop, func() bool { return len(srv.hub.subs) == 2 })
	// Let the grace window commit the silent connection to v1.
	pump(t, loop, func() bool { return srv.Subscribers() == 2 })

	srv.Inject(tuple.Tuple{Time: 10, Value: 1, Name: "s"})
	srv.Inject(tuple.Tuple{Time: 20, Value: 2, Name: "s"})

	want := "# gscope-hub 1\n" +
		"# snapshot tuples=0 window-ms=5000\n" +
		"# snapshot-end\n" +
		"10 1 s\n20 2 s\n"
	pump(t, loop, func() bool { return len(raw.bytes()) >= len(want) })
	if got := string(raw.bytes()); got != want {
		t.Fatalf("v1 stream perturbed by binary peer:\ngot  %q\nwant %q", got, want)
	}
	if strings.Contains(string(raw.bytes()), string(rune(tuple.FrameMarker))) {
		t.Fatal("binary frame leaked into the v1 stream")
	}
}
