package netscope

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/glib"
	"repro/internal/tuple"
)

// This file is the fan-out side of the server: the paper's §4.4 library
// stops at "clients → server → locally attached scopes", which caps the
// system at one viewer. The hub generalizes the server into a
// publish/subscribe relay — any number of downstream viewers connect on a
// second listener and receive the merged tuple stream, so one instrumented
// application can drive many concurrent synchronized scopes (and hubs can
// be chained through Inject).

// Subscriber handshake framing. Every framing line is a '#' comment in the
// §3.3 tuple format, so a subscriber that just wants the merged stream can
// read it with a plain tuple.Reader and never see the markers.
const (
	// hubMagic opens every subscriber stream: "# gscope-hub 1".
	hubMagic = "gscope-hub"
	// hubVersion is the protocol revision announced in the magic line.
	hubVersion = 1
)

// DefaultSnapshotWindow is how much recent stream history the hub retains
// for the connect-time snapshot when SetSnapshotWindow is not called.
const DefaultSnapshotWindow = 5 * time.Second

// DefaultSnapshotLimit caps retained snapshot tuples regardless of window.
const DefaultSnapshotLimit = 4096

// DefaultSubscriberQueueLimit bounds each subscriber's outbound queue, in
// tuples, when SetSubscriberQueueLimit is not called.
const DefaultSubscriberQueueLimit = 1024

// subscriber is one downstream viewer connection.
type subscriber struct {
	conn net.Conn
	ww   *glib.WriteWatch
	rw   *glib.IOWatch // read side, watched only to notice disconnect
}

// hubState holds the Server's subscriber side. All fields are owned by the
// loop goroutine, like the rest of the server.
type hubState struct {
	ln  net.Listener
	acc *glib.IOWatch

	subs map[net.Conn]*subscriber

	history    []tuple.Tuple
	newestMS   int64 // running max of retained-stream timestamps
	newestSet  bool
	window     time.Duration
	windowSet  bool
	histLimit  int
	queueLimit int

	subscribes   int64
	unsubscribes int64
	published    int64 // tuples broadcast (per tuple, not per subscriber)
	dropped      int64 // drop-oldest losses accumulated from departed subscribers
}

// SetSnapshotWindow sets how much trailing stream history new subscribers
// receive as their connect-time snapshot. Zero (or negative) disables
// snapshot history entirely (subscribers still get the handshake frame);
// the default is DefaultSnapshotWindow. Call before Listen/ListenSubscribers.
func (s *Server) SetSnapshotWindow(d time.Duration) {
	s.hub.window = d
	s.hub.windowSet = true
}

// SetSubscriberQueueLimit bounds each subscriber's outbound queue in
// tuples (drop-oldest beyond it). Non-positive selects
// DefaultSubscriberQueueLimit.
func (s *Server) SetSubscriberQueueLimit(n int) { s.hub.queueLimit = n }

func (s *Server) hubInit() {
	if s.hub.subs == nil {
		s.hub.subs = make(map[net.Conn]*subscriber)
	}
	if !s.hub.windowSet {
		s.hub.window = DefaultSnapshotWindow
		s.hub.windowSet = true
	}
	if s.hub.histLimit == 0 {
		s.hub.histLimit = DefaultSnapshotLimit
	}
	if s.hub.queueLimit <= 0 {
		s.hub.queueLimit = DefaultSubscriberQueueLimit
	}
}

// ListenSubscribers binds addr and starts accepting downstream viewers.
// Each accepted connection receives the snapshot-then-deltas stream
// described in the package comment. It returns the bound address.
func (s *Server) ListenSubscribers(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	s.hubInit()
	s.hub.ln = ln
	s.hub.acc = s.loop.WatchAccept(ln, func(conn net.Conn, err error) bool {
		if err != nil {
			return false
		}
		s.Subscribe(conn)
		return true
	})
	return ln.Addr(), nil
}

// Subscribe registers conn as a downstream viewer: it is sent the protocol
// handshake, a snapshot of the retained history window, and then every
// subsequently delivered tuple. Subscribe must run on the loop goroutine
// (ListenSubscribers calls it there; in-process wiring can pass one end of
// a net.Pipe from a loop callback). The subscriber's outbound queue is
// bounded; when the peer stalls, its oldest queued tuples are dropped and
// counted rather than ever blocking the loop or other subscribers.
func (s *Server) Subscribe(conn net.Conn) {
	s.hubInit()
	sub := &subscriber{conn: conn}
	sub.ww = s.loop.WatchWriter(conn, s.hub.queueLimit, func(error) {
		s.unsubscribe(conn)
	})
	// Watch the read side purely to notice the peer going away; inbound
	// lines from subscribers are not part of the protocol and are ignored.
	sub.rw = s.loop.WatchLines(conn, func(_ string, err error) bool {
		if err != nil {
			s.unsubscribe(conn)
			return false
		}
		return true
	})
	s.hub.subs[conn] = sub
	s.hub.subscribes++
	sub.ww.SendProtected(s.snapshotChunk())
}

// snapshotChunk encodes the handshake plus the retained history window as
// one queue chunk, so drop-oldest can never tear the snapshot apart.
func (s *Server) snapshotChunk() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s %d\n", hubMagic, hubVersion)
	fmt.Fprintf(&b, "# snapshot tuples=%d window-ms=%d\n",
		len(s.hub.history), s.hub.window.Milliseconds())
	for _, t := range s.hub.history {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	b.WriteString("# snapshot-end\n")
	return []byte(b.String())
}

// broadcastBatch retains a delivered batch in the snapshot history and
// fans it out to every subscriber as a single wire-encoded chunk shared by
// all of their queues: per-subscriber cost is one queue append per batch,
// not per tuple. Runs on the loop goroutine as part of delivery.
func (s *Server) broadcastBatch(batch []tuple.Tuple) {
	if s.hub.subs == nil || len(batch) == 0 {
		return
	}
	for _, t := range batch {
		s.retain(t)
	}
	s.hub.published += int64(len(batch))
	if len(s.hub.subs) == 0 {
		return
	}
	chunk := tuple.AppendWireBatch(make([]byte, 0, 24*len(batch)), batch)
	for _, sub := range s.hub.subs {
		sub.ww.Send(chunk)
	}
}

// retain appends t to the snapshot history and prunes it to the configured
// window and hard size cap. The window is anchored to a running max of the
// timestamps seen, not the incoming tuple's own stamp: under non-monotonic
// stamps (one publisher with a skewed clock) a per-tuple anchor let a
// single stale tuple stall pruning entirely. Tuples already outside the
// window relative to the running max are not retained at all — they could
// never be part of a connect-time snapshot, and appended behind in-window
// history they would be unreachable by the front-only prune.
func (s *Server) retain(t tuple.Tuple) {
	if s.hub.window <= 0 {
		return
	}
	if !s.hub.newestSet || t.Time > s.hub.newestMS {
		s.hub.newestMS = t.Time
		s.hub.newestSet = true
	}
	winMS := s.hub.window.Milliseconds()
	if s.hub.newestMS-t.Time > winMS {
		return // stale-stamped: outside the snapshot window on arrival
	}
	s.hub.history = append(s.hub.history, t)
	cut := 0
	if over := len(s.hub.history) - s.hub.histLimit; over > 0 {
		cut = over
	}
	for cut < len(s.hub.history) && s.hub.newestMS-s.hub.history[cut].Time > winMS {
		cut++
	}
	if cut > 0 {
		// Reslice instead of copying: this runs per broadcast tuple on
		// the loop goroutine, and append reallocates (copying only the
		// live tail) once the backing array's capacity is spent, so the
		// prune is amortized O(1) and memory stays bounded by ~2× the
		// live window.
		s.hub.history = s.hub.history[cut:]
	}
}

// Inject delivers t exactly as if it had arrived from a publisher
// connection: observers, recorder, attached scopes, and subscribers all see
// it. It must run on the loop goroutine — it is the relay hook used when
// chaining hubs (a Subscriber's callback feeding a downstream Server).
func (s *Server) Inject(t tuple.Tuple) {
	s.received++
	s.deliver(t)
}

// InjectBatch delivers a whole batch through the same pipeline with one
// feed push and one broadcast chunk — the batch counterpart relays use.
func (s *Server) InjectBatch(batch []tuple.Tuple) {
	s.received += int64(len(batch))
	s.deliverBatch(batch)
}

func (s *Server) unsubscribe(conn net.Conn) {
	sub, ok := s.hub.subs[conn]
	if !ok {
		return
	}
	delete(s.hub.subs, conn)
	s.hub.unsubscribes++
	s.hub.dropped += sub.ww.Dropped()
	sub.ww.Cancel()
	sub.rw.Cancel()
	conn.Close()
}

// Subscribers returns the number of currently connected viewers.
func (s *Server) Subscribers() int { return len(s.hub.subs) }

// SubscriberStats returns lifetime fan-out counters: viewer connects and
// disconnects, tuples published to the subscriber side (counted once per
// tuple, not per viewer), and queue chunks lost to the per-subscriber
// drop-oldest policy summed across all viewers past and present. A chunk
// is one delivered batch (at least one tuple), so a non-zero drop count
// means data loss even though it does not count tuples one by one.
func (s *Server) SubscriberStats() (subscribes, unsubscribes, published, dropped int64) {
	d := s.hub.dropped
	for _, sub := range s.hub.subs {
		d += sub.ww.Dropped()
	}
	return s.hub.subscribes, s.hub.unsubscribes, s.hub.published, d
}

// SubscriberBacklog returns the total number of chunks queued but not yet
// taken by the subscribers' writers. Note a taken batch may still be in
// flight on the socket; SubscriberWritten counts completed writes.
func (s *Server) SubscriberBacklog() int {
	n := 0
	for _, sub := range s.hub.subs {
		n += sub.ww.Queued()
	}
	return n
}

// SubscriberWritten returns the total number of chunks (the handshake plus
// one per delivered batch) fully written to current subscribers'
// connections.
func (s *Server) SubscriberWritten() int64 {
	var n int64
	for _, sub := range s.hub.subs {
		n += sub.ww.Sent()
	}
	return n
}

// SubscribersFlushed reports whether every currently connected subscriber
// has either written or dropped every byte queued to it — the barrier
// benches and tests use to know the fan-out has fully drained.
func (s *Server) SubscribersFlushed() bool {
	for _, sub := range s.hub.subs {
		if !sub.ww.Flushed() {
			return false
		}
	}
	return true
}

// closeHub tears down the subscriber side; part of Server.Close.
func (s *Server) closeHub() error {
	var err error
	if s.hub.acc != nil {
		s.hub.acc.Cancel()
	}
	if s.hub.ln != nil {
		err = s.hub.ln.Close()
	}
	for conn := range s.hub.subs {
		s.unsubscribe(conn)
	}
	return err
}

// Subscriber is the client side of the fan-out protocol: it connects to a
// hub's subscriber listener and delivers every tuple — snapshot first, then
// live deltas — to a callback on the loop goroutine, the same threading
// model as Server callbacks.
type Subscriber struct {
	conn  net.Conn
	watch *glib.IOWatch

	// all owned by the loop goroutine
	received    int64
	parseErrors int64
	snapTuples  int64
	inSnapshot  bool
	handshaken  bool
	closed      bool
	onClose     func(error)
}

// SubscribeTo connects to a hub's subscriber address and invokes fn on the
// loop goroutine for each tuple in the merged stream. Snapshot history and
// live deltas are delivered uniformly; use Snapshot to learn where the
// boundary was. Internally tuples are decoded in read-chunk batches; use
// SubscribeToBatch to receive them that way and keep the batch shape
// through a relay.
func SubscribeTo(loop *glib.Loop, addr string, fn func(tuple.Tuple)) (*Subscriber, error) {
	return SubscribeToBatch(loop, addr, func(batch []tuple.Tuple) {
		for _, t := range batch {
			fn(t)
		}
	})
}

// SubscribeToBatch is SubscribeTo with batch delivery: fn receives every
// tuple decoded from one read chunk in a single call (the batch is valid
// only for the duration of the call). Relays chain this into
// Server.InjectBatch so one upstream read stays one downstream broadcast.
func SubscribeToBatch(loop *glib.Loop, addr string, fn func([]tuple.Tuple)) (*Subscriber, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	sub := &Subscriber{conn: conn}
	var batch []tuple.Tuple
	flush := func() {
		if len(batch) > 0 {
			fn(batch)
			batch = batch[:0]
		}
	}
	sub.watch = loop.WatchLineBatches(conn, func(lines []string, err error) bool {
		batch = batch[:0]
		for _, line := range lines {
			if tuple.IsComment(line) {
				// Control lines frame the snapshot; deliver what came
				// before so snapshot accounting stays exact.
				flush()
				sub.control(line)
				continue
			}
			t, perr := tuple.Parse(line)
			if perr != nil {
				sub.parseErrors++
				continue
			}
			sub.received++
			if sub.inSnapshot {
				sub.snapTuples++
			}
			batch = append(batch, t)
		}
		flush()
		if err != nil {
			sub.closed = true
			if sub.onClose != nil {
				sub.onClose(err)
			}
			conn.Close()
			return false
		}
		return true
	})
	return sub, nil
}

// control interprets the hub's '#'-comment framing lines.
func (s *Subscriber) control(line string) {
	f := strings.Fields(strings.TrimPrefix(strings.TrimSpace(line), "#"))
	if len(f) == 0 {
		return
	}
	switch f[0] {
	case hubMagic:
		s.handshaken = true
	case "snapshot":
		s.inSnapshot = true
	case "snapshot-end":
		s.inSnapshot = false
	}
}

// OnClose registers fn to run on the loop goroutine when the stream ends
// (io.EOF on hub shutdown, or a transport error).
func (s *Subscriber) OnClose(fn func(error)) { s.onClose = fn }

// Handshaken reports whether the hub's protocol banner has been seen.
func (s *Subscriber) Handshaken() bool { return s.handshaken }

// Snapshot returns the number of tuples that arrived as connect-time
// history rather than live deltas.
func (s *Subscriber) Snapshot() int64 { return s.snapTuples }

// Stats returns tuples received (snapshot + live) and lines that failed to
// parse.
func (s *Subscriber) Stats() (received, parseErrors int64) {
	return s.received, s.parseErrors
}

// Close disconnects from the hub.
func (s *Subscriber) Close() error {
	s.watch.Cancel()
	return s.conn.Close()
}
