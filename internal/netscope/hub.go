package netscope

import (
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/reclog"
	"repro/internal/tuple"
)

// This file is the fan-out side of the server: the paper's §4.4 library
// stops at "clients → server → locally attached scopes", which caps the
// system at one viewer. The hub generalizes the server into a
// publish/subscribe relay — any number of downstream viewers connect on a
// second listener and receive the merged tuple stream, so one instrumented
// application can drive many concurrent synchronized scopes (and hubs can
// be chained through Inject).
//
// Two subscriber protocols share the listener. A v1 subscriber connects
// and says nothing: it receives the snapshot-then-deltas stream unchanged
// from the original hub protocol. A v2 subscriber opens with a
// "gscope-sub 2" handshake line carrying a SubscriptionRequest — signal
// filters, server-side decimation, backfill, control-plane access — and
// the connection becomes a query/control plane (see the package comment
// for the frame vocabulary). The server sniffs the first inbound line to
// tell them apart; a client that stays silent through the handshake grace
// window is a v1 subscriber, and everything delivered while the server was
// waiting is queued, so the v1 stream is byte-identical to the pre-v2 hub.

// Subscriber handshake framing. Every framing line is a '#' comment in the
// §3.3 tuple format, so a subscriber that just wants the merged stream can
// read it with a plain tuple.Reader and never see the markers.
const (
	// hubMagic opens every subscriber stream: "# gscope-hub <version>".
	hubMagic = "gscope-hub"
	// hubVersion is the protocol revision announced to v1 subscribers.
	hubVersion = 1
)

// DefaultSnapshotWindow is how much recent stream history the hub retains
// for the connect-time snapshot when SetSnapshotWindow is not called.
const DefaultSnapshotWindow = 5 * time.Second

// DefaultSnapshotLimit caps retained snapshot tuples regardless of window.
const DefaultSnapshotLimit = 4096

// DefaultSubscriberQueueLimit bounds each subscriber's outbound queue, in
// tuples, when SetSubscriberQueueLimit is not called.
const DefaultSubscriberQueueLimit = 1024

// DefaultHandshakeGrace is how long an accepted subscriber connection may
// stay silent before the hub commits it to the v1 protocol. A v2 client
// sends its handshake immediately on connect, so the window is normally
// only waited out by v1 clients — deltas delivered meanwhile are buffered,
// not lost, so the wait never changes what a v1 viewer receives — and a
// handshake that loses the race anyway (a round trip longer than the
// grace) still upgrades the connection when it arrives.
const DefaultHandshakeGrace = 50 * time.Millisecond

// DefaultBackfillRetention is the per-signal tiered-history retention (in
// samples) selected when SetBackfillRetention is called with a
// non-positive value.
const DefaultBackfillRetention = 1 << 16

// maxBackfillSignals caps how many distinct signals the tiered backfill
// store tracks; signals beyond the cap stream normally but cannot be
// backfilled decimated.
const maxBackfillSignals = 1024

// maxFlightBackfillTuples bounds how many tuples one reclog backfill may
// deliver; when the window holds more, the newest are kept.
const maxFlightBackfillTuples = 1 << 17

// maxPendingCommands bounds command lines held while a subscriber's
// activation is waiting on a flight-log read; excess lines are discarded.
const maxPendingCommands = 256

// subState tracks where a subscriber connection is in the handshake.
type subState int

const (
	// subSniffing: accepted, protocol version not yet known; deltas are
	// buffered as encoded chunks and the v1 snapshot is already captured.
	subSniffing subState = iota
	// subBackfilling: v2 request accepted, flight-log read in flight;
	// deltas are buffered decoded so they can be filtered at activation.
	subBackfilling
	// subLive: streaming (v1 when sub.sub is nil, v2 otherwise).
	subLive
)

// subscriber is one downstream viewer connection.
type subscriber struct {
	conn net.Conn
	ww   *glib.WriteWatch
	rw   *glib.IOWatch // read side: v2 command channel, v1 disconnect probe

	state   subState
	counted bool          // reflected in hub.subscribes
	sub     *subscription // compiled v2 request; nil for v1
	// lateUpgrade marks a v1-committed connection whose v2 handshake
	// arrived after the grace window; it already holds the v1 snapshot,
	// so activation must not serve it twice.
	lateUpgrade bool

	filtered int64 // tuples withheld by this sub's filter/decimation

	// Sniffing state: the v1 snapshot captured at accept, delta chunks
	// (shared with live subscribers' queues) delivered while undecided,
	// and the grace timer that commits silent clients to v1.
	snap     []byte
	pend     [][]byte
	pendDrop int64
	grace    *time.Timer

	// Backfilling state: decoded deltas awaiting the flight-log read
	// (one entry per delivered batch, so the bound and the drop counter
	// stay in chunk units like every other subscriber queue), and command
	// lines to run once the activation frames are queued.
	pendT    [][]tuple.Tuple
	pendCmds []string

	// v3 binary delivery (req.Wire == 3, docs/WIRE.md). A plain
	// subscription shares the hub's broadcast encoder stream and benc
	// stays nil; a filtered/decimated one gets its own encoder — its
	// narrowed stream needs its own dictionary — plus a filter scratch.
	benc *tuple.BinaryEncoder
	tmp  []tuple.Tuple
}

// binary reports whether the subscriber negotiated v3 binary delivery.
func (sub *subscriber) binary() bool {
	return sub.sub != nil && sub.sub.req.Wire == 3
}

// passing filters batch through the subscription (advancing its decimation
// clock) into the reusable scratch — the binary counterpart of
// encodeSubset's selection half.
func (sub *subscriber) passing(batch []tuple.Tuple) []tuple.Tuple {
	sub.tmp = sub.tmp[:0]
	for _, t := range batch {
		if sub.sub.passes(t) {
			sub.tmp = append(sub.tmp, t)
		}
	}
	return sub.tmp
}

// bufferChunk queues an encoded delta chunk while the protocol version is
// undecided, bounded like a live queue (drop-oldest, counted).
func (sub *subscriber) bufferChunk(chunk []byte, limit int) {
	if len(sub.pend) >= limit {
		sub.pend = sub.pend[1:]
		sub.pendDrop++
	}
	sub.pend = append(sub.pend, chunk)
}

// bufferTuples queues one decoded delta batch during an asynchronous
// backfill, pre-filtered by name (decimation state advances at
// activation, in order). Bounded drop-oldest in chunks, counted — the
// same units as the live write queue.
func (sub *subscriber) bufferTuples(batch []tuple.Tuple, limit int) {
	f := sub.sub.filter
	var keep []tuple.Tuple
	for _, t := range batch {
		if !f.match(t.Name) {
			sub.filtered++
			continue
		}
		keep = append(keep, t)
	}
	if keep == nil {
		return
	}
	if len(sub.pendT) >= limit {
		sub.pendT = sub.pendT[1:]
		sub.pendDrop++
	}
	sub.pendT = append(sub.pendT, keep)
}

// hubState holds the Server's subscriber side. All fields are owned by the
// loop goroutine, like the rest of the server.
type hubState struct {
	ln  net.Listener
	acc *glib.IOWatch

	subs map[net.Conn]*subscriber

	history    []tuple.Tuple
	newestMS   int64 // running max of retained-stream timestamps
	newestSet  bool
	window     time.Duration
	windowSet  bool
	histLimit  int
	queueLimit int
	grace      time.Duration

	// The control plane: the application's parameter registry and the
	// unobserve hook for its change notifications.
	params          *core.ParamSet
	paramsUnobserve func()

	// The tiered per-signal backfill store (SetBackfillRetention).
	backfill    map[string]*core.TimedHistory
	backfillRet int

	// shareMemo caches one encoded chunk per filter signature per
	// broadcast, so many subscribers with the same filter pay one encode.
	shareMemo map[string]*memoChunk

	// benc is the shared v3 broadcast encoder: all plain binary
	// subscribers ride one encoded chunk per batch, sharing one dictionary
	// stream. A subscriber activating mid-stream gets an AppendDict
	// catch-up; its activation frames are encoded read-only so they can
	// never invent IDs the other sharers haven't seen (docs/WIRE.md §B3).
	benc *tuple.BinaryEncoder

	subscribes   int64
	unsubscribes int64
	published    int64 // tuples broadcast (per tuple, not per subscriber)
	dropped      int64 // drop-oldest losses accumulated from departed subscribers
	filtered     int64 // filter/decimation withholdings from departed subscribers
}

// memoChunk is one memoized filtered encoding of the current batch.
type memoChunk struct {
	chunk   []byte
	matched int
}

// FanoutStats are the lifetime fan-out counters, including the v2 plane's
// filter accounting. Dropped counts queue chunks lost to the drop-oldest
// policy; Filtered counts tuples withheld from subscribers by their own
// signal filters and rate decimation (bandwidth the v2 plane saved, not
// data loss).
type FanoutStats struct {
	Subscribes   int64
	Unsubscribes int64
	Published    int64
	Dropped      int64
	Filtered     int64

	// Datagram publisher lane aggregates (zero unless ListenPublishersUDP
	// is active). UDPLost is gap accounting: datagrams the jitter buffer
	// gave up on after the hold expired, i.e. injected loss minus what
	// NACK recovery pulled back (docs/WIRE.md §D4).
	UDPSources   int64
	UDPReleased  int64
	UDPLost      int64
	UDPReordered int64
	UDPRecovered int64
	UDPLate      int64

	// Web gateway lane aggregates (zero unless ListenWeb is active):
	// currently connected SSE/WebSocket stream clients, events lost to
	// their per-client drop-oldest queues, and payload bytes written to
	// browsers.
	WebClients int64
	WebDropped int64
	WebBytes   int64
}

// SetSnapshotWindow sets how much trailing stream history new subscribers
// receive as their connect-time snapshot. Zero (or negative) disables
// snapshot history entirely (subscribers still get the handshake frame);
// the default is DefaultSnapshotWindow. Call before Listen/ListenSubscribers.
func (s *Server) SetSnapshotWindow(d time.Duration) {
	s.hub.window = d
	s.hub.windowSet = true
}

// SetSubscriberQueueLimit bounds each subscriber's outbound queue in
// tuples (drop-oldest beyond it). Non-positive selects
// DefaultSubscriberQueueLimit.
func (s *Server) SetSubscriberQueueLimit(n int) { s.hub.queueLimit = n }

// SetHandshakeGrace sets how long an accepted subscriber may stay silent
// before it is committed to the v1 protocol (non-positive restores
// DefaultHandshakeGrace). Deltas delivered during the window are buffered,
// so the setting trades only connect latency, never data.
func (s *Server) SetHandshakeGrace(d time.Duration) {
	if d <= 0 {
		d = DefaultHandshakeGrace
	}
	s.hub.grace = d
}

// SetBackfillRetention enables the tiered per-signal backfill store:
// every broadcast sample is folded into a core.TimedHistory pyramid
// retaining approximately the given number of recent samples per signal
// (non-positive selects DefaultBackfillRetention), which serves v2
// decimated-backfill queries (Since+Cols) in O(cols). Call it before
// traffic flows; the store only covers samples delivered after it is
// enabled.
func (s *Server) SetBackfillRetention(samples int) {
	if samples <= 0 {
		samples = DefaultBackfillRetention
	}
	s.hubInit()
	s.hub.backfillRet = samples
	if s.hub.backfill == nil {
		s.hub.backfill = make(map[string]*core.TimedHistory)
	}
}

// SetParams attaches the application's control-parameter registry (§3.2,
// Figure 3) to the wire: v2 subscribers may `param list`, `param get` and
// `param set` it — sets clamp to each parameter's declared bounds — and
// every successful set through the registry (from the wire or from the
// application) is fanned out to all v2 subscribers as a
// "# param <name> <value>" notification frame. Passing nil detaches.
func (s *Server) SetParams(ps *core.ParamSet) {
	if s.hub.paramsUnobserve != nil {
		s.hub.paramsUnobserve()
		s.hub.paramsUnobserve = nil
	}
	s.hub.params = ps
	if ps == nil {
		return
	}
	s.hub.paramsUnobserve = ps.Observe(func(name string, v float64) {
		s.loop.Invoke(func() { s.broadcastParamChange(name, v) })
	})
}

// Params returns the attached parameter registry, or nil.
func (s *Server) Params() *core.ParamSet { return s.hub.params }

func (s *Server) hubInit() {
	if s.hub.subs == nil {
		s.hub.subs = make(map[net.Conn]*subscriber)
	}
	if !s.hub.windowSet {
		s.hub.window = DefaultSnapshotWindow
		s.hub.windowSet = true
	}
	if s.hub.histLimit == 0 {
		s.hub.histLimit = DefaultSnapshotLimit
	}
	if s.hub.queueLimit <= 0 {
		s.hub.queueLimit = DefaultSubscriberQueueLimit
	}
	if s.hub.grace <= 0 {
		s.hub.grace = DefaultHandshakeGrace
	}
	if s.hub.benc == nil {
		s.hub.benc = tuple.NewBinaryEncoder()
	}
}

// ListenSubscribers binds addr and starts accepting downstream viewers.
// Each accepted connection is version-sniffed: a v2 handshake line selects
// the query/control plane, silence (or anything else) the v1
// snapshot-then-deltas stream. It returns the bound address.
func (s *Server) ListenSubscribers(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	s.hubInit()
	s.hub.ln = ln
	s.hub.acc = s.loop.WatchAccept(ln, func(conn net.Conn, err error) bool {
		if err != nil {
			return false
		}
		s.subscribeSniff(conn)
		return true
	})
	return ln.Addr(), nil
}

// register wires the shared per-connection plumbing: the bounded write
// queue and the read watch that doubles as the v2 command channel and the
// v1 disconnect probe. Must run on the loop goroutine.
func (s *Server) register(conn net.Conn, state subState) *subscriber {
	s.hubInit()
	sub := &subscriber{conn: conn, state: state}
	sub.ww = s.loop.WatchWriter(conn, s.hub.queueLimit, func(error) {
		s.unsubscribe(conn)
	})
	sub.rw = s.loop.WatchLines(conn, func(line string, err error) bool {
		if err != nil {
			s.unsubscribe(conn)
			return false
		}
		s.subscriberLine(conn, line)
		return true
	})
	s.hub.subs[conn] = sub
	return sub
}

// subscribeSniff registers an accepted connection in the version-sniffing
// state: the v1 snapshot is captured now (so a silent client's stream is
// exactly what an immediate v1 subscription would have produced), deltas
// buffer until the protocol is decided, and a grace timer commits silent
// clients to v1.
func (s *Server) subscribeSniff(conn net.Conn) {
	sub := s.register(conn, subSniffing)
	sub.snap = s.snapshotChunk()
	sub.grace = time.AfterFunc(s.hub.grace, func() {
		s.loop.Invoke(func() { s.promoteV1(conn) })
	})
}

// Subscribe registers conn as a v1 downstream viewer immediately — no
// version sniffing: it is sent the protocol handshake, a snapshot of the
// retained history window, and then every subsequently delivered tuple.
// Subscribe must run on the loop goroutine (in-process wiring can pass one
// end of a net.Pipe from a loop callback). The subscriber's outbound queue
// is bounded; when the peer stalls, its oldest queued tuples are dropped
// and counted rather than ever blocking the loop or other subscribers.
func (s *Server) Subscribe(conn net.Conn) {
	sub := s.register(conn, subLive)
	sub.counted = true
	s.hub.subscribes++
	sub.ww.SendProtected(s.snapshotChunk())
}

// SubscribeWith registers conn as a v2 subscriber with an explicit
// request, as if the client had sent the corresponding handshake line —
// the programmatic path for in-process wiring and tests. It must run on
// the loop goroutine. The error reports an invalid request; the
// subscription itself proceeds asynchronously when backfill needs the
// flight log.
func (s *Server) SubscribeWith(conn net.Conn, req SubscriptionRequest) error {
	if err := req.validate(); err != nil {
		return err
	}
	sub := s.register(conn, subSniffing)
	s.activateV2(conn, sub, req)
	return nil
}

// subscriberLine routes one inbound line according to the connection's
// handshake state. Runs on the loop goroutine.
func (s *Server) subscriberLine(conn net.Conn, line string) {
	sub, ok := s.hub.subs[conn]
	if !ok {
		return
	}
	switch sub.state {
	case subSniffing:
		req, isV2, err := parseSubscriptionRequest(line)
		if !isV2 {
			// Not a v2 handshake: a v1 client that happens to talk.
			// Commit to v1 now; the line itself is ignored, as always.
			s.promoteV1(conn)
			return
		}
		if err != nil {
			// A malformed v2 handshake gets an error frame and the v1
			// stream — the closest thing to the pre-v2 contract.
			s.sendError(sub, err.Error())
			s.promoteV1(conn)
			return
		}
		s.activateV2(conn, sub, req)
	case subBackfilling:
		// Hold commands until the activation frames are queued, so
		// replies can never overtake (or displace) the handshake —
		// bounded, unlike a client, so a command flood during a slow
		// flight-log read cannot balloon hub memory.
		if len(sub.pendCmds) < maxPendingCommands {
			sub.pendCmds = append(sub.pendCmds, line)
		}
	case subLive:
		if sub.sub == nil {
			// A v1 connection normally ignores inbound lines — except a
			// v2 handshake, which upgrades it. This is how a client whose
			// handshake lost the race against the grace window (RTT
			// longer than the grace) still gets its subscription: the
			// request applies from here on, and the client's own filter
			// covers the v1 prefix it already received.
			if req, isV2, err := parseSubscriptionRequest(line); isV2 {
				if err != nil {
					s.sendError(sub, err.Error())
					return
				}
				sub.lateUpgrade = true
				s.activateV2(conn, sub, req)
			}
			return
		}
		s.handleCommand(sub, line)
	}
}

// promoteV1 commits a sniffing connection to the v1 protocol: the
// accept-time snapshot, then every delta buffered while undecided, then
// live traffic — byte-identical to a hub that never sniffed.
func (s *Server) promoteV1(conn net.Conn) {
	sub, ok := s.hub.subs[conn]
	if !ok || sub.state != subSniffing {
		return
	}
	if sub.grace != nil {
		sub.grace.Stop()
	}
	sub.state = subLive
	sub.counted = true
	s.hub.subscribes++
	sub.ww.SendProtected(sub.snap)
	for _, chunk := range sub.pend {
		sub.ww.Send(chunk)
	}
	sub.snap, sub.pend = nil, nil
}

// activateV2 applies an accepted request. Requests needing the flight log
// park the connection in subBackfilling and finish on the loop when the
// read completes; everything else activates synchronously.
func (s *Server) activateV2(conn net.Conn, sub *subscriber, req SubscriptionRequest) {
	if sub.grace != nil {
		sub.grace.Stop()
	}
	sub.sub = compileSubscription(req)
	sub.snap, sub.pend = nil, nil

	if req.Since == 0 || req.NoStream {
		s.finishV2(conn, sub, 0, nil, "")
		return
	}
	if sub.lateUpgrade {
		// The connection already received the v1 snapshot and deltas; a
		// Since-backfill of the same window would deliver them twice (and
		// a relay would re-inject the duplicates downstream). Late
		// upgrades get an empty backfill frame instead — a client that
		// wants the deep window reconnects, winning the handshake race it
		// lost.
		s.finishV2(conn, sub, s.resolveSince(req.Since), nil, "late-upgrade")
		return
	}
	if req.Since < 0 && !s.hub.newestSet {
		// A trailing window has no anchor before the first live tuple:
		// serve it empty rather than letting sinceMS=0 spill an attached
		// flight log's entire (arbitrarily old) recorded history.
		s.finishV2(conn, sub, 0, nil, "history")
		return
	}
	sinceMS := s.resolveSince(req.Since)
	if req.Cols > 0 && s.hub.backfill != nil {
		s.finishV2(conn, sub, sinceMS, s.decimatedBackfill(sub.sub.filter, sinceMS, req.Cols), "decimated")
		return
	}
	if s.historyCovers(sinceMS) || s.flightDir == "" {
		s.finishV2(conn, sub, sinceMS, s.historyBackfill(sub.sub.filter, sinceMS), "history")
		return
	}
	// The window predates the retained history: serve it from the flight
	// log. Disk reads happen off the loop; deltas buffer meanwhile. The
	// read is capped at the stream's newest stamp as of now (unbounded
	// when no live tuple has arrived yet), and finishV2 additionally
	// trims the backfill where the buffered deltas begin, so the two
	// sources do not deliver the same tuple twice.
	sub.state = subBackfilling
	cutoffMS := int64(0)
	if s.hub.newestSet {
		cutoffMS = s.hub.newestMS
	}
	dir, filter, lg := s.flightDir, sub.sub.filter, s.flight
	go func() {
		if lg != nil {
			// Barrier: push the live log's buffered tail to disk so the
			// window read below can actually see it.
			lg.Flush() //nolint:errcheck // best-effort; the read copes with gaps
		}
		backfill := readFlightBackfill(dir, sinceMS, cutoffMS, filter)
		s.loop.Invoke(func() {
			cur, ok := s.hub.subs[conn]
			if !ok || cur != sub || sub.state != subBackfilling {
				return
			}
			if cutoffMS <= 0 && len(sub.pendT) > 0 && len(backfill) > 0 {
				// The read ran unbounded (no live stamp existed at
				// request time), so it may have caught tuples that were
				// also broadcast — and buffered — while it ran. Prefer
				// the live copy: the backfill ends where the buffered
				// deltas begin. Bounded reads skip this trim; their
				// overlap is already limited to stale-stamped tuples by
				// the cutoff, and a stale stamp at the head of the
				// buffer must not be allowed to discard the window.
				firstPend := sub.pendT[0][0].Time
				kept := backfill[:0]
				for _, t := range backfill {
					if t.Time < firstPend {
						kept = append(kept, t)
					}
				}
				backfill = kept
			}
			s.finishV2(conn, sub, sinceMS, backfill, "reclog")
		})
	}()
}

// finishV2 queues the v2 activation frames — ack, then backfill or
// filtered snapshot — flushes any buffered deltas and held commands, and
// puts the connection live.
func (s *Server) finishV2(conn net.Conn, sub *subscriber, sinceMS int64, backfill []tuple.Tuple, source string) {
	sub.state = subLive
	if !sub.counted {
		sub.counted = true
		s.hub.subscribes++
	}
	req := sub.sub.req
	b := tuple.AppendControl(nil, hubMagic, "2", strings.Join(req.fields(), " "))
	if sub.binary() && !req.NoStream {
		if sub.sub.plain() {
			// This connection will share the broadcast encoder's stream:
			// catch it up on every binding emitted before it joined, so the
			// next shared chunk's bare IDs resolve (docs/WIRE.md §B3).
			b = s.hub.benc.AppendDict(b)
		} else if sub.benc == nil {
			// A narrowed stream gets its own dictionary.
			sub.benc = tuple.NewBinaryEncoder()
		}
	}
	// Activation frames (backfill/snapshot/buffered deltas) encode per the
	// negotiated wire version. The shared-stream case must not mutate the
	// broadcast dictionary — an ID invented here would reach only this
	// subscriber — so it encodes read-only, falling back to text lines for
	// names the broadcast encoder has not bound yet (always legal, §B1).
	appendTuples := func(dst []byte, ts []tuple.Tuple) []byte {
		switch {
		case !sub.binary():
			return tuple.AppendWireBatch(dst, ts)
		case sub.benc != nil:
			return sub.benc.AppendBatch(dst, ts)
		default:
			return s.hub.benc.AppendBatchReadOnly(dst, ts)
		}
	}
	switch {
	case req.NoStream:
		// Control plane only: no snapshot, no backfill, no deltas.
	case source != "":
		b = tuple.AppendControl(b, "backfill",
			fmt.Sprintf("tuples=%d", len(backfill)),
			fmt.Sprintf("since-ms=%d", sinceMS),
			"source="+source)
		b = appendTuples(b, backfill)
		b = tuple.AppendControl(b, "backfill-end")
	case sub.lateUpgrade:
		// The connection already received the v1 snapshot before its
		// handshake won through; re-serving it would duplicate data.
	default:
		// The v1 snapshot shape, narrowed to the subscription's signals.
		snap := s.historyBackfill(sub.sub.filter, 0)
		b = tuple.AppendControl(b, "snapshot",
			fmt.Sprintf("tuples=%d", len(snap)),
			fmt.Sprintf("window-ms=%d", s.hub.window.Milliseconds()))
		b = appendTuples(b, snap)
		b = tuple.AppendControl(b, "snapshot-end")
	}
	sub.ww.SendProtected(b)
	if len(sub.pendT) > 0 && !req.NoStream {
		var out []byte
		for _, chunk := range sub.pendT {
			if sub.binary() {
				kept := sub.passing(chunk)
				out = appendTuples(out, kept)
				sub.filtered += int64(len(chunk) - len(kept))
			} else {
				enc, matched := encodeSubset(sub.sub, chunk)
				out = append(out, enc...)
				sub.filtered += int64(len(chunk) - matched)
			}
		}
		if len(out) > 0 {
			sub.ww.Send(out)
		}
	}
	sub.pendT = nil
	cmds := sub.pendCmds
	sub.pendCmds = nil
	for _, line := range cmds {
		s.handleCommand(sub, line)
	}
}

// resolveSince maps a request's Since onto the stream timeline: negative
// is a trailing window anchored at the newest stamp seen, positive an
// absolute offset.
func (s *Server) resolveSince(since time.Duration) int64 {
	ms := since.Milliseconds()
	if ms >= 0 {
		return ms
	}
	if !s.hub.newestSet {
		return 0
	}
	abs := s.hub.newestMS + ms
	if abs < 0 {
		abs = 0
	}
	return abs
}

// historyCovers reports whether the retained snapshot history reaches back
// to sinceMS.
func (s *Server) historyCovers(sinceMS int64) bool {
	return len(s.hub.history) > 0 && s.hub.history[0].Time <= sinceMS
}

// historyBackfill collects retained history stamped at or after sinceMS
// whose signals pass the filter.
func (s *Server) historyBackfill(f *sigFilter, sinceMS int64) []tuple.Tuple {
	var out []tuple.Tuple
	for _, t := range s.hub.history {
		if t.Time >= sinceMS && f.match(t.Name) {
			out = append(out, t)
		}
	}
	return out
}

// decimatedBackfill renders the tiered store's view of [sinceMS, now] for
// every matching signal: per bucket, its min and max as two tuples (one
// when they coincide) stamped at the bucket's end time — the min/max
// envelope a zoomed-out viewer draws, at O(cols) cost per signal.
func (s *Server) decimatedBackfill(f *sigFilter, sinceMS int64, cols int) []tuple.Tuple {
	names := make([]string, 0, len(s.hub.backfill))
	for name := range s.hub.backfill {
		if f.match(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []tuple.Tuple
	for _, name := range names {
		for _, bk := range s.hub.backfill[name].ViewSince(sinceMS, cols) {
			if bk.Count == 0 {
				continue
			}
			if bk.Min == bk.Max {
				out = append(out, tuple.Tuple{Time: bk.Time, Value: bk.Last, Name: name})
				continue
			}
			out = append(out,
				tuple.Tuple{Time: bk.Time, Value: bk.Min, Name: name},
				tuple.Tuple{Time: bk.Time, Value: bk.Max, Name: name})
		}
	}
	return out
}

// readFlightBackfill reads [sinceMS, cutoffMS] from a flight-recorder
// session directory, filtered, as fast as possible. Best-effort by design:
// the session is read while the recorder may still be writing it, so the
// newest batches (still queued to disk) can be missing. Bounded at
// maxFlightBackfillTuples, keeping the newest.
func readFlightBackfill(dir string, sinceMS, cutoffMS int64, f *sigFilter) []tuple.Tuple {
	sess, err := reclog.OpenSession(dir)
	if err != nil {
		return nil
	}
	rep := reclog.NewReplayer(sess)
	rep.SetSpeed(0)
	to := time.Duration(cutoffMS) * time.Millisecond
	rep.SetWindow(time.Duration(sinceMS)*time.Millisecond, to)
	var out []tuple.Tuple
	rep.Run(func(batch []tuple.Tuple) error { //nolint:errcheck // best-effort read
		for _, t := range batch {
			if !f.match(t.Name) {
				continue
			}
			if len(out) >= maxFlightBackfillTuples {
				out = out[1:]
			}
			out = append(out, t)
		}
		return nil
	})
	return out
}

// snapshotChunk encodes the handshake plus the retained history window as
// one queue chunk, so drop-oldest can never tear the snapshot apart.
func (s *Server) snapshotChunk() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s %d\n", hubMagic, hubVersion)
	fmt.Fprintf(&b, "# snapshot tuples=%d window-ms=%d\n",
		len(s.hub.history), s.hub.window.Milliseconds())
	for _, t := range s.hub.history {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	b.WriteString("# snapshot-end\n")
	return []byte(b.String())
}

// encodeSubset encodes the tuples of batch that pass the subscription
// (advancing its decimation clock) into a fresh chunk. Names are cleaned
// once per same-name run, not once per tuple — batches are overwhelmingly
// runs of one signal, and deliverBatch already canonicalized them, so the
// common case is a pointer-equal compare.
func encodeSubset(sub *subscription, batch []tuple.Tuple) (chunk []byte, matched int) {
	var out []byte
	var prev, prevClean string
	for _, t := range batch {
		if !sub.passes(t) {
			continue
		}
		if out == nil {
			out = make([]byte, 0, 128)
		}
		if t.Name != prev {
			prev, prevClean = t.Name, tuple.CleanName(t.Name)
		}
		out = tuple.AppendWirePrepared(out, t.Time, t.Value, prevClean)
		matched++
	}
	return out, matched
}

// broadcastBatch retains a delivered batch in the snapshot history (and
// the tiered backfill store, when enabled) and fans it out to every
// subscriber. Unfiltered subscribers share a single wire-encoded chunk per
// batch — one queue append, no per-tuple work — and filtered subscribers
// get their own narrowed encoding, shared across subscribers with the same
// filter. Runs on the loop goroutine as part of delivery.
func (s *Server) broadcastBatch(batch []tuple.Tuple) {
	if s.hub.subs == nil || len(batch) == 0 {
		return
	}
	for _, t := range batch {
		s.retain(t)
	}
	if s.hub.backfill != nil {
		s.backfillRetain(batch)
	}
	s.hub.published += int64(len(batch))
	if len(s.hub.subs) == 0 {
		return
	}
	var shared []byte
	sharedChunk := func() []byte {
		if shared == nil {
			shared = tuple.AppendWireBatch(make([]byte, 0, 24*len(batch)), batch)
		}
		return shared
	}
	// The binary counterpart: one v3-encoded chunk per batch, built at
	// most once and shared by every plain binary subscriber. Encoding
	// advances the hub encoder's dictionary even though only current
	// sharers see the DICT frames — later joiners are caught up at
	// activation (finishV2). Drop-oldest interacts with this: DATA-only
	// chunks are self-contained (WIRE.md §B4) and drop silently like text,
	// but a dropped chunk that carried a DICT binding leaves the
	// subscriber unable to resolve that ID, and its decoder fails closed
	// (§B7) — a stalled binary viewer reconnects rather than render a
	// corrupt stream.
	var sharedBin []byte
	sharedBinChunk := func() []byte {
		if sharedBin == nil {
			sharedBin = s.hub.benc.AppendBatch(make([]byte, 0, 8*len(batch)), batch)
		}
		return sharedBin
	}
	memoCleared := false
	for _, sub := range s.hub.subs {
		switch {
		case sub.state == subSniffing:
			sub.bufferChunk(sharedChunk(), s.hub.queueLimit)
		case sub.state == subBackfilling:
			sub.bufferTuples(batch, s.hub.queueLimit)
		case sub.sub != nil && sub.sub.req.NoStream:
			// Control-plane-only connections never wanted the stream;
			// counting their withholdings as Filtered would make the
			// decimation stat lie to operators.
		case sub.sub == nil || sub.sub.plain():
			if sub.binary() {
				sub.ww.Send(sharedBinChunk())
			} else {
				sub.ww.Send(sharedChunk())
			}
		case sub.binary():
			// Filtered/decimated binary subscribers own their encoder (and
			// its dictionary), so the text share-memo cannot apply.
			kept := sub.passing(batch)
			if len(kept) > 0 {
				sub.ww.Send(sub.benc.AppendBatch(make([]byte, 0, 8*len(kept)), kept))
			}
			sub.filtered += int64(len(batch) - len(kept))
		default:
			if key := sub.sub.shareKey(); key != "" {
				if !memoCleared {
					memoCleared = true
					if s.hub.shareMemo == nil {
						s.hub.shareMemo = make(map[string]*memoChunk)
					}
					for k := range s.hub.shareMemo {
						delete(s.hub.shareMemo, k)
					}
				}
				entry := s.hub.shareMemo[key]
				if entry == nil {
					chunk, matched := encodeSubset(sub.sub, batch)
					entry = &memoChunk{chunk: chunk, matched: matched}
					s.hub.shareMemo[key] = entry
				}
				if len(entry.chunk) > 0 {
					sub.ww.Send(entry.chunk)
				}
				sub.filtered += int64(len(batch) - entry.matched)
				continue
			}
			chunk, matched := encodeSubset(sub.sub, batch)
			if len(chunk) > 0 {
				sub.ww.Send(chunk)
			}
			sub.filtered += int64(len(batch) - matched)
		}
	}
}

// backfillRetain folds a batch into the per-signal tiered store.
//
//gscope:hotpath
func (s *Server) backfillRetain(batch []tuple.Tuple) {
	var lastName string
	var last *core.TimedHistory
	for _, t := range batch {
		th := last
		if t.Name != lastName || th == nil {
			th = s.hub.backfill[t.Name]
			if th == nil {
				if len(s.hub.backfill) >= maxBackfillSignals {
					continue
				}
				th = core.NewTimedHistory(s.hub.backfillRet) //gscope:allow hotpath store creation happens once per new signal name
				s.hub.backfill[t.Name] = th
			}
			lastName, last = t.Name, th
		}
		th.Push(t.Time, t.Value)
	}
}

// retain appends t to the snapshot history and prunes it to the configured
// window and hard size cap. The window is anchored to a running max of the
// timestamps seen, not the incoming tuple's own stamp: under non-monotonic
// stamps (one publisher with a skewed clock) a per-tuple anchor let a
// single stale tuple stall pruning entirely. Tuples already outside the
// window relative to the running max are not retained at all — they could
// never be part of a connect-time snapshot, and appended behind in-window
// history they would be unreachable by the front-only prune.
//
//gscope:hotpath
func (s *Server) retain(t tuple.Tuple) {
	if s.hub.window <= 0 {
		return
	}
	if !s.hub.newestSet || t.Time > s.hub.newestMS {
		s.hub.newestMS = t.Time
		s.hub.newestSet = true
	}
	winMS := s.hub.window.Milliseconds()
	if s.hub.newestMS-t.Time > winMS {
		return // stale-stamped: outside the snapshot window on arrival
	}
	s.hub.history = append(s.hub.history, t)
	cut := 0
	if over := len(s.hub.history) - s.hub.histLimit; over > 0 {
		cut = over
	}
	for cut < len(s.hub.history) && s.hub.newestMS-s.hub.history[cut].Time > winMS {
		cut++
	}
	if cut > 0 {
		// Reslice instead of copying: this runs per broadcast tuple on
		// the loop goroutine, and append reallocates (copying only the
		// live tail) once the backing array's capacity is spent, so the
		// prune is amortized O(1) and memory stays bounded by ~2× the
		// live window.
		s.hub.history = s.hub.history[cut:]
	}
}

// Inject delivers t exactly as if it had arrived from a publisher
// connection: observers, recorder, attached scopes, and subscribers all see
// it. It must run on the loop goroutine — it is the relay hook used when
// chaining hubs (a Subscriber's callback feeding a downstream Server).
func (s *Server) Inject(t tuple.Tuple) {
	s.received++
	s.deliver(t)
}

// InjectBatch delivers a whole batch through the same pipeline with one
// feed push and one broadcast chunk — the batch counterpart relays use.
func (s *Server) InjectBatch(batch []tuple.Tuple) {
	s.received += int64(len(batch))
	s.deliverBatch(batch)
}

// --- The v2 command channel ------------------------------------------------

// sendError queues an error frame on a subscriber's stream.
func (s *Server) sendError(sub *subscriber, msg string) {
	sub.ww.Send(tuple.AppendControl(nil, "error", strings.ReplaceAll(msg, "\n", " ")))
}

// handleCommand runs one inbound v2 command line. Runs on the loop.
func (s *Server) handleCommand(sub *subscriber, line string) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return
	}
	switch f[0] {
	case "param":
		s.handleParamCommand(sub, f[1:])
	case subMagic:
		s.sendError(sub, "already subscribed")
	default:
		s.sendError(sub, "unknown command "+f[0])
	}
}

// paramFrame renders one parameter as a reply/list frame. Parameters whose
// names contain whitespace cannot cross the space-delimited framing and
// are not addressable over the wire.
func paramFrame(dst []byte, in core.ParamInfo) []byte {
	mode := "rw"
	if in.ReadOnly {
		mode = "ro"
	}
	return tuple.AppendControl(dst, "param", in.Name,
		tuple.FormatValue(in.Value),
		"min="+tuple.FormatValue(in.Min),
		"max="+tuple.FormatValue(in.Max),
		"step="+tuple.FormatValue(in.Step),
		"mode="+mode)
}

// handleParamCommand serves the PARAM LIST/GET/SET plane against the
// attached registry.
func (s *Server) handleParamCommand(sub *subscriber, args []string) {
	ps := s.hub.params
	if ps == nil {
		s.sendError(sub, "no parameter registry attached")
		return
	}
	if len(args) == 0 {
		s.sendError(sub, "param: need list, get <name> or set <name> <value>")
		return
	}
	switch args[0] {
	case "list":
		infos := ps.Infos()
		b := tuple.AppendControl(nil, "params", fmt.Sprintf("n=%d", len(infos)))
		for _, in := range infos {
			if strings.ContainsAny(in.Name, " \t") {
				continue // unaddressable over the space-delimited framing
			}
			b = paramFrame(b, in)
		}
		b = tuple.AppendControl(b, "params-end")
		sub.ww.Send(b)
	case "get":
		if len(args) != 2 {
			s.sendError(sub, "param get: need exactly one name")
			return
		}
		in, err := ps.Info(args[1])
		if err != nil {
			s.sendError(sub, err.Error())
			return
		}
		sub.ww.Send(paramFrame(nil, in))
	case "set":
		if len(args) != 3 {
			s.sendError(sub, "param set: need a name and a value")
			return
		}
		v, err := strconv.ParseFloat(args[2], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			// NaN must be rejected here: it compares false against both
			// clamp bounds, so it would sail through the range the
			// protocol promises to enforce.
			s.sendError(sub, "param set: bad value "+args[2])
			return
		}
		if err := ps.Set(args[1], v); err != nil {
			s.sendError(sub, err.Error())
			return
		}
		actual, err := ps.Get(args[1])
		if err != nil {
			s.sendError(sub, err.Error())
			return
		}
		sub.ww.Send(tuple.AppendControl(nil, "param-ok", args[1], tuple.FormatValue(actual)))
	default:
		s.sendError(sub, "param: unknown subcommand "+args[0])
	}
}

// broadcastParamChange fans a parameter change out to every live v2
// subscriber as a short notification frame. Runs on the loop.
func (s *Server) broadcastParamChange(name string, v float64) {
	if strings.ContainsAny(name, " \t") {
		return
	}
	var frame []byte
	for _, sub := range s.hub.subs {
		if sub.state != subLive || sub.sub == nil {
			continue
		}
		if frame == nil {
			frame = tuple.AppendControl(nil, "param", name, tuple.FormatValue(v))
		}
		sub.ww.Send(frame)
	}
}

// --- Teardown and stats ----------------------------------------------------

func (s *Server) unsubscribe(conn net.Conn) {
	sub, ok := s.hub.subs[conn]
	if !ok {
		return
	}
	delete(s.hub.subs, conn)
	if sub.grace != nil {
		sub.grace.Stop()
	}
	if sub.counted {
		s.hub.unsubscribes++
	}
	s.hub.dropped += sub.ww.Dropped() + sub.pendDrop
	s.hub.filtered += sub.filtered
	sub.ww.Cancel()
	sub.rw.Cancel()
	conn.Close()
}

// Subscribers returns the number of connected viewers whose handshake has
// completed (sniffing and backfilling connections are still in flight).
func (s *Server) Subscribers() int {
	n := 0
	for _, sub := range s.hub.subs {
		if sub.state == subLive {
			n++
		}
	}
	return n
}

// SubscriberStats returns lifetime fan-out counters: viewer connects and
// disconnects, tuples published to the subscriber side (counted once per
// tuple, not per viewer), and queue chunks lost to the per-subscriber
// drop-oldest policy summed across all viewers past and present. A chunk
// is one delivered batch (at least one tuple), so a non-zero drop count
// means data loss even though it does not count tuples one by one.
// FanoutStats adds the v2 plane's filter accounting.
func (s *Server) SubscriberStats() (subscribes, unsubscribes, published, dropped int64) {
	st := s.FanoutStats()
	return st.Subscribes, st.Unsubscribes, st.Published, st.Dropped
}

// FanoutStats returns the lifetime fan-out counters including tuples
// withheld by v2 signal filters and rate decimation.
func (s *Server) FanoutStats() FanoutStats {
	st := FanoutStats{
		Subscribes:   s.hub.subscribes,
		Unsubscribes: s.hub.unsubscribes,
		Published:    s.hub.published,
		Dropped:      s.hub.dropped,
		Filtered:     s.hub.filtered,
	}
	for _, sub := range s.hub.subs {
		st.Dropped += sub.ww.Dropped() + sub.pendDrop
		st.Filtered += sub.filtered
	}
	if s.udpRecv != nil {
		u := s.udpRecv.Stats()
		st.UDPSources = int64(u.Sources)
		st.UDPReleased = u.Released
		st.UDPLost = u.Lost
		st.UDPReordered = u.Reordered
		st.UDPRecovered = u.Recovered
		st.UDPLate = u.Late
	}
	st.WebClients = s.web.clients.Load()
	st.WebDropped = s.web.dropped.Load()
	st.WebBytes = s.web.bytes.Load()
	return st
}

// SubscriberBacklog returns the total number of chunks queued but not yet
// taken by the subscribers' writers. Note a taken batch may still be in
// flight on the socket; SubscriberWritten counts completed writes.
func (s *Server) SubscriberBacklog() int {
	n := 0
	for _, sub := range s.hub.subs {
		n += sub.ww.Queued() + len(sub.pend)
	}
	return n
}

// SubscriberWritten returns the total number of chunks (the handshake plus
// one per delivered batch) fully written to current subscribers'
// connections.
func (s *Server) SubscriberWritten() int64 {
	var n int64
	for _, sub := range s.hub.subs {
		n += sub.ww.Sent()
	}
	return n
}

// SubscribersFlushed reports whether every currently connected subscriber
// has either written or dropped every byte queued to it — the barrier
// benches and tests use to know the fan-out has fully drained. A
// connection still mid-handshake with buffered deltas is not flushed.
func (s *Server) SubscribersFlushed() bool {
	for _, sub := range s.hub.subs {
		if !sub.ww.Flushed() {
			return false
		}
		if sub.state != subLive && (len(sub.pend) > 0 || len(sub.pendT) > 0) {
			return false
		}
	}
	return true
}

// closeHub tears down the subscriber side; part of Server.Close.
func (s *Server) closeHub() error {
	var err error
	if s.hub.acc != nil {
		s.hub.acc.Cancel()
	}
	if s.hub.ln != nil {
		err = s.hub.ln.Close()
	}
	for conn := range s.hub.subs {
		s.unsubscribe(conn)
	}
	if s.hub.paramsUnobserve != nil {
		s.hub.paramsUnobserve()
		s.hub.paramsUnobserve = nil
	}
	return err
}

// --- The subscriber client --------------------------------------------------

// Subscriber is the client side of the fan-out protocol: it connects to a
// hub's subscriber listener and delivers every tuple — snapshot or
// backfill first, then live deltas — to a callback on the loop goroutine,
// the same threading model as Server callbacks. Created with options, it
// speaks the v2 protocol: its handshake carries the subscription request,
// and the connection doubles as a command channel (Command, OnControl).
// Counters are safe to read from any goroutine.
type Subscriber struct {
	conn  net.Conn
	watch *glib.IOWatch

	req          *SubscriptionRequest // nil for a pure v1 client
	clientFilter *sigFilter

	received    atomic.Int64
	parseErrors atomic.Int64
	snapTuples  atomic.Int64
	backTuples  atomic.Int64
	handshaken  atomic.Bool
	acked       atomic.Bool

	// owned by the loop goroutine
	inSnapshot bool
	inBackfill bool
	closed     bool

	// Callback registration may race a live loop delivering frames, so it
	// is guarded; the callbacks themselves always run on the loop.
	cbMu      sync.Mutex
	onClose   func(error)
	onControl func(tuple.ControlFrame)
}

func (s *Subscriber) closeCallback() func(error) {
	s.cbMu.Lock()
	defer s.cbMu.Unlock()
	return s.onClose
}

func (s *Subscriber) controlCallback() func(tuple.ControlFrame) {
	s.cbMu.Lock()
	defer s.cbMu.Unlock()
	return s.onControl
}

// SubscribeTo connects to a hub's subscriber address and invokes fn on the
// loop goroutine for each tuple in the merged stream. Snapshot/backfill
// history and live deltas are delivered uniformly; use Snapshot and
// Backfilled to learn where the boundaries were. With no options the
// client is a pure v1 subscriber (it sends nothing and receives the
// classic snapshot-then-deltas stream); any option switches it to the v2
// handshake. Internally tuples are decoded in read-chunk batches; use
// SubscribeToBatch to receive them that way and keep the batch shape
// through a relay.
func SubscribeTo(loop *glib.Loop, addr string, fn func(tuple.Tuple), opts ...SubscribeOption) (*Subscriber, error) {
	return SubscribeToBatch(loop, addr, func(batch []tuple.Tuple) {
		for _, t := range batch {
			fn(t)
		}
	}, opts...)
}

// SubscribeToBatch is SubscribeTo with batch delivery: fn receives every
// tuple decoded from one read chunk in a single call (the batch is valid
// only for the duration of the call). Relays chain this into
// Server.InjectBatch so one upstream read stays one downstream broadcast.
func SubscribeToBatch(loop *glib.Loop, addr string, fn func([]tuple.Tuple), opts ...SubscribeOption) (*Subscriber, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	sub := &Subscriber{conn: conn}
	if len(opts) > 0 {
		req := SubscriptionRequest{}
		for _, o := range opts {
			o(&req)
		}
		if err := req.validate(); err != nil {
			conn.Close()
			return nil, err
		}
		if _, err := io.WriteString(conn, req.encodeLine()); err != nil {
			conn.Close()
			return nil, fmt.Errorf("netscope: %w", err)
		}
		sub.req = &req
		sub.clientFilter = compileFilter(req.Signals)
	}
	var batch []tuple.Tuple
	flush := func() {
		if len(batch) > 0 {
			fn(batch)
			batch = batch[:0]
		}
	}
	handleLine := func(line string) {
		if tuple.IsComment(line) {
			// Control lines frame the snapshot; deliver what came
			// before so snapshot accounting stays exact.
			flush()
			sub.control(line)
			return
		}
		t, perr := tuple.Parse(line)
		if perr != nil {
			sub.parseErrors.Add(1)
			return
		}
		if !sub.acked.Load() && !sub.clientFilter.match(t.Name) {
			// Tuples broadcast before the server applied our request
			// (the handshake race) are outside the subscription;
			// enforce the filter client-side until the ack.
			return
		}
		sub.received.Add(1)
		switch {
		case sub.inSnapshot:
			sub.snapTuples.Add(1)
		case sub.inBackfill:
			sub.backTuples.Add(1)
		}
		batch = append(batch, t)
	}
	finish := func(err error) {
		sub.closed = true
		if fn := sub.closeCallback(); fn != nil {
			fn(err)
		}
		conn.Close()
	}
	if sub.req != nil && sub.req.Wire == 3 {
		// v3: the hub may answer with binary frames interleaved with the
		// text control plane, so reads go through the mixed-stream decoder
		// (docs/WIRE.md). Binary tuples need no pre-ack client filter: the
		// hub only emits them after (and behind) the wire=3 ack, which
		// handleLine processes in stream order first. A framing error is
		// terminal by design (§B7).
		dec := tuple.NewStreamDecoder()
		onTuples := func(ts []tuple.Tuple) {
			for _, t := range ts {
				sub.received.Add(1)
				switch {
				case sub.inSnapshot:
					sub.snapTuples.Add(1)
				case sub.inBackfill:
					sub.backTuples.Add(1)
				}
				batch = append(batch, t)
			}
		}
		sub.watch = loop.WatchReaderSize(conn, 64*1024, func(data []byte, err error) bool {
			batch = batch[:0]
			ferr := dec.Feed(data, handleLine, onTuples)
			if err != nil && ferr == nil {
				dec.Tail(handleLine)
			}
			flush()
			if ferr != nil {
				sub.parseErrors.Add(1)
				if err == nil {
					err = ferr
				}
			}
			if err != nil {
				finish(err)
				return false
			}
			return true
		})
		return sub, nil
	}
	sub.watch = loop.WatchLineBatches(conn, func(lines []string, err error) bool {
		batch = batch[:0]
		for _, line := range lines {
			handleLine(line)
		}
		flush()
		if err != nil {
			finish(err)
			return false
		}
		return true
	})
	return sub, nil
}

// control interprets the hub's '#'-comment framing lines.
func (s *Subscriber) control(line string) {
	f, ok := tuple.ParseControl(line)
	if !ok {
		return
	}
	switch f.Verb {
	case hubMagic:
		s.handshaken.Store(true)
		if f.Arg(0) == "2" {
			s.acked.Store(true)
		}
	case "snapshot":
		s.inSnapshot = true
	case "snapshot-end":
		s.inSnapshot = false
	case "backfill":
		s.inBackfill = true
	case "backfill-end":
		s.inBackfill = false
	}
	if fn := s.controlCallback(); fn != nil {
		fn(f)
	}
}

// OnClose registers fn to run on the loop goroutine when the stream ends
// (io.EOF on hub shutdown, or a transport error). Safe to call from any
// goroutine.
func (s *Subscriber) OnClose(fn func(error)) {
	s.cbMu.Lock()
	s.onClose = fn
	s.cbMu.Unlock()
}

// OnControl registers fn to observe every control frame on the loop
// goroutine — param replies and change notifications, error frames, and
// the stream framing itself. Register it before frames of interest can
// arrive (i.e. immediately after SubscribeTo returns); safe to call from
// any goroutine.
func (s *Subscriber) OnControl(fn func(tuple.ControlFrame)) {
	s.cbMu.Lock()
	s.onControl = fn
	s.cbMu.Unlock()
}

// Command sends one control-plane line to the hub (e.g. "param set delay
// 250"). Valid on v2 subscriptions; a v1 hub (or a v1 subscription)
// silently ignores it. Safe to call from any goroutine.
func (s *Subscriber) Command(line string) error {
	_, err := io.WriteString(s.conn, strings.TrimSuffix(line, "\n")+"\n")
	return err
}

// Handshaken reports whether the hub's protocol banner has been seen.
func (s *Subscriber) Handshaken() bool { return s.handshaken.Load() }

// Acked reports whether the hub acknowledged the v2 subscription request.
func (s *Subscriber) Acked() bool { return s.acked.Load() }

// Snapshot returns the number of tuples that arrived as connect-time
// history rather than live deltas.
func (s *Subscriber) Snapshot() int64 { return s.snapTuples.Load() }

// Backfilled returns the number of tuples that arrived as requested
// backfill (WithSince) rather than live deltas.
func (s *Subscriber) Backfilled() int64 { return s.backTuples.Load() }

// Stats returns tuples received (snapshot + backfill + live) and lines
// that failed to parse.
func (s *Subscriber) Stats() (received, parseErrors int64) {
	return s.received.Load(), s.parseErrors.Load()
}

// Close disconnects from the hub.
func (s *Subscriber) Close() error {
	s.watch.Cancel()
	return s.conn.Close()
}
