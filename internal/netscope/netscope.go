// Package netscope implements gscope's distributed-visualization support
// (§4.4): a single-threaded, I/O-driven client/server library. Clients
// asynchronously send BUFFER signal data in tuple format (§3.3) to a
// server; the server buffers the data and delivers it into one or more
// scopes, which display it with the user-specified delay. Data arriving
// after its display window has passed is dropped immediately.
//
// All server callbacks run on the owning glib loop's goroutine, so a server
// embedded in a GUI application shares one event loop with the scope
// display and needs no locking — the same structure as the paper's
// client-server library used by mxtraf.
//
// # Publisher protocol
//
// A publisher ([Client]) connection carries a plain §3.3 tuple stream, one
// tuple per line, with blank and '#' comment lines ignored:
//
//	1500 42.5 CWND
//	1550 41 CWND
//
// Lines that fail to parse are counted and skipped; the connection is
// never torn down for bad input. See package repro/internal/tuple for the
// full grammar.
//
// # Subscriber (fan-out) protocol
//
// The paper's library stops at one viewer: the server's scopes are local.
// The hub side of [Server] — [Server.ListenSubscribers] and
// [Server.Subscribe] — generalizes it into a publish/subscribe relay so a
// single merged stream can drive any number of concurrent synchronized
// viewers, and relays can be chained ([Server.Inject]).
//
// Two protocol revisions share the subscriber listener; the hub decides
// per connection by sniffing the first inbound line.
//
// Version 1 — the dumb tap. The client connects and sends nothing (any
// first line that is not a v2 handshake also selects v1, and is ignored).
// The connection is then write-only from the hub's point of view, framed
// entirely with '#' comment lines, so it is itself a valid tuple stream
// and a viewer that only wants the data can read it with a plain
// tuple.Reader and never notice the framing:
//
//	# gscope-hub 1
//	# snapshot tuples=2 window-ms=5000
//	1500 42.5 CWND
//	1550 41 CWND
//	# snapshot-end
//	1600 40 CWND          ← live deltas from here on
//
// Line one is the protocol banner (name and version). The snapshot header
// declares how many retained-history tuples follow — the hub keeps the most
// recent window of the merged stream (SetSnapshotWindow) so a viewer that
// connects mid-run starts with the recent display window instead of an
// empty screen — and "# snapshot-end" marks the snapshot/delta boundary.
// After that the connection carries every tuple the hub delivers, in
// delivery order. A silent client is committed to v1 after
// [DefaultHandshakeGrace]; the snapshot is captured at accept and deltas
// delivered while the hub waited are buffered behind it, so the stream is
// byte-identical to a hub that never sniffed.
//
// Version 2 — the query/control plane. The client's first line is a
// handshake carrying a [SubscriptionRequest]:
//
//	gscope-sub 2 signals=cpu.*,mem max-rate=30 since=-10000 cols=512 stream=0
//
// (every key optional; see the SubscriptionRequest fields). The hub
// answers with a v2 banner echoing the applied request, serves the
// requested history, and then streams deltas narrowed per subscription —
// name filters and rate decimation are applied before bytes are queued,
// so a viewer of 1 signal in 64 pays ~1/64 of the bandwidth:
//
//	# gscope-hub 2 signals=cpu.*,mem max-rate=30 since=-10000
//	# backfill tuples=40 since-ms=4000 source=history
//	...tuples...
//	# backfill-end
//	...filtered, decimated deltas...
//
// With no since, the v1-shaped snapshot (narrowed to the subscription) is
// sent instead of backfill. Backfill is served from the retained snapshot
// history (source=history), from the per-signal tiered min/max store at a
// requested resolution (cols=N → source=decimated, ≤2·cols tuples per
// signal however deep the window, the Trace.View property over the wire),
// or from the attached flight recorder (source=reclog, best-effort on a
// live log). After the handshake the inbound direction stays open as a
// command channel:
//
//	param list                → # params n=2 … # param <name> <value> min=… max=… step=… mode=rw|ro … # params-end
//	param get <name>          → # param <name> <value> min=… max=… step=… mode=…
//	param set <name> <value>  → # param-ok <name> <stored>      (clamped to the declared bounds)
//	anything else             → # error <message>
//
// and every successful set through the attached registry ([Server.SetParams])
// — from any subscriber or from the application itself — is fanned out to
// all v2 subscribers as "# param <name> <value>" notification frames.
// stream=0 subscribes to the control plane only.
//
// # Wire version 3 — binary framing
//
// Either direction can upgrade its tuple payload from text lines to the
// v3 binary framing specified in docs/WIRE.md: interned signal IDs
// declared by in-band dictionary frames, delta-of-delta varint
// timestamps, and XOR-compressed values, interleaved freely with ordinary
// text lines behind the 0xF5 frame marker.
//
// A publisher opts in with [Client.SetWireVersion](3); it announces
// itself with a "# gscope-pub 3" comment, but the server needs no
// warning — ingest autodetects frames per connection, so text and binary
// publishers coexist on one listener. A subscriber opts in by adding
// wire=3 to the v2 handshake (the [WithWireVersion] option); the hub
// echoes wire=3 in the banner and thereafter delivers snapshot, backfill
// and deltas as binary frames, while the banner and every control frame
// ('#' lines, param traffic) stay text. A hub too old to know the key
// ignores it and serves text — the subscriber's decoder handles either,
// so the downgrade is invisible. v1 and v2 text subscribers on the same
// hub receive byte-identical streams whether or not binary peers are
// attached.
//
// Each subscriber has a bounded outbound queue drained by its own writer
// goroutine (glib.WriteWatch). A slow or stalled viewer loses its own
// oldest queued chunks (drop-oldest, counted in [Server.SubscriberStats])
// but can never block the loop, the publishers, or other subscribers. The
// snapshot is enqueued as a single drop-exempt unit, so the bound can
// neither tear it nor evict the protocol banner. Tuples withheld by v2
// filters and decimation are counted in [Server.FanoutStats].
//
// # Batching
//
// The whole ingest/fan-out pipeline is batch-oriented: publisher bytes are
// decoded a read chunk at a time (glib.WatchLineBatches), delivered into
// attached scopes through the sharded Feed.PushBatch, and broadcast to
// subscribers as one wire-encoded chunk per batch shared across all their
// queues. Per-sample APIs (Client.Send, Server.Inject) remain as thin
// wrappers; Client.SendBatch, Server.InjectBatch and SubscribeToBatch keep
// the batch shape end to end through chained relays.
package netscope

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dgram"
	"repro/internal/glib"
	"repro/internal/reclog"
	"repro/internal/tuple"
)

// Server receives tuple streams from any number of clients and fans them
// into the feeds of attached scopes.
type Server struct {
	loop *glib.Loop
	ln   net.Listener
	acc  *glib.IOWatch

	scopes  []*core.Scope
	clients map[net.Conn]*glib.IOWatch

	// OnTuple, when set, observes every received tuple (on the loop
	// goroutine) before scope delivery.
	OnTuple func(tuple.Tuple)

	// MapTime, when set, rebases incoming timestamps onto the server
	// scope's timeline before delivery. The paper assumes distributed
	// data can be correlated (§1 fn. 1); in practice clients stamp
	// tuples with a shared clock (e.g. Unix time) and the server maps
	// that clock onto its own, with residual skew absorbed by the
	// display delay. The recorder always stores the original stamps.
	MapTime func(time.Duration) time.Duration

	rec       *tuple.Writer
	flight    *reclog.Log
	flightDir string        // the recording directory, for v2 backfill reads
	mapped    []tuple.Tuple // MapTime rebase scratch, reused across batches
	intern    *tuple.Interner

	hub hubState

	// udpRecv is the datagram publisher listener, nil until
	// ListenPublishersUDP; its jitter buffer hands released batches to the
	// loop goroutine for injection (udp.go).
	udpRecv *dgram.Receiver

	// The web gateway attachment, nil until ListenWeb (web.go). webDone
	// closes when the serve goroutine exits; web is the lane's counters,
	// updated from the gateway's HTTP goroutines.
	webLn   net.Listener
	webSrv  *http.Server
	webH    WebHandler
	webDone chan struct{}
	web     WebCounters

	connects    int64
	disconnects int64
	received    int64
	parseErrors int64
	closed      bool
}

// NewServer creates a server on loop. Attach scopes, then call Listen.
func NewServer(loop *glib.Loop) *Server {
	return &Server{
		loop:    loop,
		clients: make(map[net.Conn]*glib.IOWatch),
		intern:  tuple.NewInterner(),
	}
}

// maxInternedNames bounds the server's name interner so a hostile
// publisher inventing names cannot grow it without limit; names past the
// cap still flow, they just keep their per-line backing arrays.
const maxInternedNames = 4096

// canonicalizeNames rewrites each tuple's name to the interned instance.
// Parsed names are substrings of their read chunk: retaining one tuple
// (snapshot history, feed backlogs, recorder queues) used to pin the whole
// line's backing array — per tuple, for the life of the retention window.
// Interning on parse makes every tuple of one signal share a single
// canonical string and the line buffers die young. Batches are
// overwhelmingly runs of one signal, so after the first tuple of a run the
// rewrite is a pointer-equal string compare.
//
//gscope:hotpath
func (s *Server) canonicalizeNames(batch []tuple.Tuple) {
	var prev, prevC string
	for i := range batch {
		name := batch[i].Name
		if name == prev {
			batch[i].Name = prevC
			continue
		}
		prev = name
		if id, ok := s.intern.Lookup(name); ok {
			batch[i].Name = s.intern.Name(id)
		} else if s.intern.Len() < maxInternedNames {
			batch[i].Name = s.intern.Canonical(name) //gscope:allow hotpath interning allocates once per new signal name, not per tuple
		}
		prevC = batch[i].Name
	}
}

// Attach adds a scope whose feed will receive every tuple. BUFFER signals
// on the scope pick out the names they display.
func (s *Server) Attach(sc *core.Scope) { s.scopes = append(s.scopes, sc) }

// SetRecorder mirrors every received tuple to w (the server-side recording
// path); nil disables.
func (s *Server) SetRecorder(w *tuple.Writer) { s.rec = w }

// Record attaches a flight recorder: every delivered batch is appended to
// a segmented reclog session under dir (see package repro/internal/reclog
// for the format, rotation and retention semantics). Recording taps the
// delivery pipeline at batch granularity, so its loop-side cost is one
// bounded-queue append per delivered batch; all file I/O happens on the
// log's own goroutine, and a stalled disk drops recorded batches (counted
// in the log's Stats) rather than ever blocking delivery. Recorded tuples
// keep their original timestamps even when MapTime rebases scope delivery,
// so a replayed session reproduces the wire stream, not the display. The
// log is closed by Server.Close; the returned Log exposes its counters.
func (s *Server) Record(dir string, opts reclog.Options) (*reclog.Log, error) {
	lg, err := reclog.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	if s.flight != nil {
		s.flight.Close() //nolint:errcheck // superseded recorder; its data is sealed
	}
	s.flight = lg
	s.flightDir = dir
	return lg, nil
}

// FlightLog returns the attached flight recorder, or nil.
func (s *Server) FlightLog() *reclog.Log { return s.flight }

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting clients.
// It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	s.ln = ln
	s.acc = s.loop.WatchAccept(ln, func(conn net.Conn, err error) bool {
		if err != nil {
			return false
		}
		s.connects++
		s.addClient(conn)
		return true
	})
	return ln.Addr(), nil
}

func (s *Server) addClient(conn net.Conn) {
	// Publisher streams are decoded and delivered a read-chunk at a time:
	// everything decoded from one network read becomes one batch, which
	// flows through scope feeds (Feed.PushBatch) and the fan-out hub (one
	// broadcast chunk) without ever touching a per-tuple lock. Each
	// connection carries a mixed wire stream — §3.3 text lines and v3
	// binary frames, freely interleaved (docs/WIRE.md) — with no up-front
	// negotiation: frames are self-marking, so the per-connection decoder
	// accepts either encoding at any line/frame boundary.
	var batch []tuple.Tuple
	dec := tuple.NewStreamDecoder()
	onLine := func(line string) {
		if tuple.IsComment(line) {
			return
		}
		t, perr := tuple.Parse(line)
		if perr != nil {
			s.parseErrors++
			return
		}
		batch = append(batch, t)
	}
	onTuples := func(ts []tuple.Tuple) { batch = append(batch, ts...) }
	w := s.loop.WatchReaderSize(conn, 64*1024, func(data []byte, err error) bool {
		batch = batch[:0]
		ferr := dec.Feed(data, onLine, onTuples)
		if err != nil && ferr == nil {
			dec.Tail(onLine)
		}
		s.received += int64(len(batch))
		s.deliverBatch(batch)
		if ferr != nil {
			// A bad text line is skippable (newlines resynchronize), but
			// malformed binary framing loses the frame boundaries: nothing
			// after it is decodable, so the connection must drop.
			s.parseErrors++
			err = ferr
		}
		if err != nil {
			s.disconnects++
			delete(s.clients, conn)
			conn.Close()
			return false
		}
		return true
	})
	s.clients[conn] = w
}

func (s *Server) deliver(t tuple.Tuple) {
	one := [1]tuple.Tuple{t}
	s.deliverBatch(one[:])
}

// deliverBatch runs the full delivery pipeline for a decoded batch:
// observers and the recorder see every tuple, attached scopes ingest the
// batch through their sharded feeds in one call, and the hub broadcasts it
// to subscribers as one chunk. MapTime rebasing applies only to scope
// delivery — the recorder and the relay stream keep the original stamps.
func (s *Server) deliverBatch(batch []tuple.Tuple) {
	if len(batch) == 0 {
		return
	}
	s.canonicalizeNames(batch)
	if s.OnTuple != nil {
		for _, t := range batch {
			s.OnTuple(t)
		}
	}
	if s.rec != nil {
		for _, t := range batch {
			s.rec.Write(t) //nolint:errcheck // recorder errors surface on Flush
		}
	}
	if s.flight != nil {
		s.flight.Append(batch) // drop-safe; losses are counted in the log
	}
	feedBatch := batch
	if s.MapTime != nil {
		if cap(s.mapped) < len(batch) {
			s.mapped = make([]tuple.Tuple, 0, len(batch)+cap(s.mapped))
		}
		s.mapped = s.mapped[:len(batch)]
		for i, t := range batch {
			s.mapped[i] = tuple.Tuple{
				Time:  s.MapTime(t.Timestamp()).Milliseconds(),
				Value: t.Value,
				Name:  t.Name,
			}
		}
		feedBatch = s.mapped
	}
	for _, sc := range s.scopes {
		sc.Feed().PushBatch(feedBatch)
	}
	s.broadcastBatch(batch)
}

// Stats returns lifetime counters: client connects, disconnects, tuples
// received and lines that failed to parse.
func (s *Server) Stats() (connects, disconnects, received, parseErrors int64) {
	return s.connects, s.disconnects, s.received, s.parseErrors
}

// Clients returns the number of currently connected clients.
func (s *Server) Clients() int { return len(s.clients) }

// Close stops accepting, disconnects all clients and flushes the recorder.
func (s *Server) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.acc != nil {
		s.acc.Cancel()
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn, w := range s.clients {
		w.Cancel()
		conn.Close()
		delete(s.clients, conn)
	}
	// The web gateway goes down before the hub: closeWeb waits for every
	// in-flight SSE/WebSocket handler to exit, and those handlers hold
	// piped hub subscriptions that closeHub is about to tear out.
	if werr := s.closeWeb(); err == nil {
		err = werr
	}
	if s.udpRecv != nil {
		if uerr := s.udpRecv.Close(); err == nil {
			err = uerr
		}
	}
	if herr := s.closeHub(); err == nil {
		err = herr
	}
	if s.rec != nil {
		if ferr := s.rec.Flush(); err == nil {
			err = ferr
		}
	}
	if s.flight != nil {
		if ferr := s.flight.Close(); err == nil {
			err = ferr
		}
	}
	return err
}

// Client streams tuples to a server. Sends are asynchronous: Send enqueues
// and returns immediately while a writer goroutine drains the queue, so an
// instrumented time-sensitive application never blocks on the network —
// the property the paper's client library is built around. Clients made
// with DialReconnect additionally survive server restarts: the writer
// re-dials with exponential backoff and the queue (bounded, drop-oldest)
// buffers samples across the outage.
type Client struct {
	addr      string
	reconnect bool

	mu sync.Mutex
	// conn is nil while disconnected in reconnect mode.
	//gscope:guardedby mu
	conn net.Conn
	//gscope:guardedby mu
	queue []tuple.Tuple
	// spare is the drained queue returned by the writer for reuse.
	//gscope:guardedby mu
	spare []tuple.Tuple
	//gscope:guardedby mu
	probes map[string]*ClientProbe
	// inflight counts tuples taken by the writer, not yet confirmed written.
	//gscope:guardedby mu
	inflight int
	kick     chan struct{}
	//gscope:guardedby mu
	closed bool
	//gscope:guardedby mu
	sent int64
	//gscope:guardedby mu
	err error
	// wire selects the publish encoding: 3 = binary frames, else text.
	//gscope:guardedby mu
	wire int

	wbuf []byte // writer-goroutine-owned wire-encode buffer, reused per round

	// udp is the datagram lane for clients made with DialUDP, nil for
	// stream clients. Set before the writer goroutine starts, read-only
	// afterwards, so it needs no lock.
	udp *dgram.Publisher

	// reconnect-mode state
	backoffMin time.Duration
	backoffMax time.Duration
	// queueLimit > 0 bounds queue with drop-oldest.
	//gscope:guardedby mu
	queueLimit int
	//gscope:guardedby mu
	dropped int64
	//gscope:guardedby mu
	reconnects int64

	done chan struct{}
}

// Reconnect policy defaults used by DialReconnect.
const (
	DefaultReconnectMin     = 50 * time.Millisecond
	DefaultReconnectMax     = 5 * time.Second
	DefaultClientQueueLimit = 65536
)

// Dial connects to a netscope server. The returned client stops on the
// first write error; use DialReconnect for a client that rides out server
// restarts.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	c := &Client{
		addr: addr,
		conn: conn,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go c.writer()
	return c, nil
}

// DialReconnect returns a client whose background writer establishes (and
// after failures re-establishes) the connection with exponential backoff
// between DefaultReconnectMin and DefaultReconnectMax. It never returns an
// error: the first connection attempt happens in the background too, so a
// publisher can start before its hub. While disconnected, sends accumulate
// in a queue bounded at DefaultClientQueueLimit tuples with a drop-oldest
// policy (see Dropped).
func DialReconnect(addr string) *Client {
	c := &Client{
		addr:       addr,
		reconnect:  true,
		backoffMin: DefaultReconnectMin,
		backoffMax: DefaultReconnectMax,
		queueLimit: DefaultClientQueueLimit,
		kick:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	go c.writer()
	return c
}

// SetWireVersion selects the publish encoding: 1 and 2 are the §3.3 text
// stream (the default), 3 the binary framing of docs/WIRE.md — interned
// signal IDs, delta-of-delta timestamps, XOR-compressed values. The server
// needs no configuration (frames are self-marking, and the two encodings
// may legally interleave on one connection), so the version can even be
// switched on a live client; it applies from the next written batch.
func (c *Client) SetWireVersion(v int) error {
	if v < 1 || v > 3 {
		return fmt.Errorf("netscope: unsupported wire version %d", v)
	}
	c.mu.Lock()
	c.wire = v
	c.mu.Unlock()
	return nil
}

func (c *Client) writer() {
	defer close(c.done)
	backoff := c.backoffMin
	// Binary encode state is connection-local: the server decodes each
	// connection from byte zero, so a redial resets the dictionary and
	// re-announces the advisory hello comment.
	var benc *tuple.BinaryEncoder
	helloNeeded := true
	for {
		c.mu.Lock()
		conn := c.conn
		closed := c.closed
		c.mu.Unlock()

		if conn == nil {
			if closed {
				return
			}
			nc, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
			if err != nil {
				c.sleep(backoff)
				backoff *= 2
				if backoff > c.backoffMax {
					backoff = c.backoffMax
				}
				continue
			}
			// Backoff resets on a successful write, not here: a server
			// that accepts and immediately resets must still back off.
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				nc.Close()
				return
			}
			c.conn = nc
			c.reconnects++
			c.mu.Unlock()
			if benc != nil {
				benc.Reset()
			}
			helloNeeded = true
			continue
		}

		c.mu.Lock()
		batch := c.queue
		wire := c.wire
		if len(batch) > 0 {
			// Ping-pong the queue with the previously drained slice so a
			// steady-state publisher never allocates: the sender fills one
			// buffer while the writer encodes the other. An empty queue
			// keeps its buffer — swapping it away would shed the retained
			// capacity on every idle wake-up.
			c.queue = c.spare[:0]
			c.spare = nil
		}
		c.inflight = len(batch)
		closed = c.closed
		c.mu.Unlock()

		if len(batch) > 0 {
			if wire == 3 {
				if benc == nil {
					benc = tuple.NewBinaryEncoder()
				}
				c.wbuf = c.wbuf[:0]
				if helloNeeded {
					// Advisory: servers autodetect frames regardless; the
					// hello makes captures and logs self-describing.
					c.wbuf = append(c.wbuf, "# gscope-pub 3\n"...)
				}
				c.wbuf = benc.AppendBatch(c.wbuf, batch)
			} else {
				c.wbuf = tuple.AppendWireBatch(c.wbuf[:0], batch)
			}
			if _, err := conn.Write(c.wbuf); err != nil {
				if c.reconnect {
					conn.Close()
					c.mu.Lock()
					c.conn = nil
					// Requeue the unsent batch ahead of anything
					// enqueued meanwhile, then re-apply the bound.
					c.queue = append(batch, c.queue...)
					c.inflight = 0
					c.trimLocked()
					c.mu.Unlock()
					// Back off before redialing; without this a
					// crash-looping server whose listener still
					// accepts would be hammered at full speed.
					c.sleep(backoff)
					backoff *= 2
					if backoff > c.backoffMax {
						backoff = c.backoffMax
					}
					continue
				}
				c.mu.Lock()
				if c.err == nil {
					c.err = err
				}
				c.closed = true
				c.inflight = 0
				c.mu.Unlock()
				return
			}
			helloNeeded = false
			c.mu.Lock()
			c.sent += int64(len(batch))
			c.inflight = 0
			if c.spare == nil {
				c.spare = batch[:0]
			}
			c.mu.Unlock()
			backoff = c.backoffMin
			continue
		}
		if closed {
			return
		}
		<-c.kick
	}
}

// sleep waits for d, or less if a send (or Close) kicks the writer awake.
func (c *Client) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.kick:
	}
}

// trimLocked enforces the queue bound (drop-oldest). The survivors shift
// down in place — no fresh backing array — so a bounded publisher stays on
// the zero-allocation path even while dropping. Caller holds mu.
//
//gscope:hotpath
func (c *Client) trimLocked() {
	if c.queueLimit <= 0 {
		return
	}
	if over := len(c.queue) - c.queueLimit; over > 0 {
		n := copy(c.queue, c.queue[over:])
		c.queue = c.queue[:n]
		c.dropped += int64(over)
	}
}

// Send enqueues one sample stamped at the given offset on the shared
// timeline. It never blocks on the network. It returns the first write
// error encountered by the background writer, if any.
func (c *Client) Send(at time.Duration, name string, v float64) error {
	return c.SendTuple(tuple.Tuple{Time: at.Milliseconds(), Value: v, Name: name})
}

// SendTuple enqueues an encoded tuple.
func (c *Client) SendTuple(t tuple.Tuple) error {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("netscope: client closed")
		}
		return err
	}
	c.queue = append(c.queue, t)
	c.trimLocked()
	err := c.err
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return err
}

// SendBatch enqueues a whole batch under one lock acquisition and one
// writer wake-up — the publisher-side counterpart of the server's batch
// ingest. The batch is copied; the caller may reuse it.
func (c *Client) SendBatch(batch []tuple.Tuple) error {
	if len(batch) == 0 {
		return nil
	}
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("netscope: client closed")
		}
		return err
	}
	c.queue = append(c.queue, batch...)
	c.trimLocked()
	err := c.err
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return err
}

// ClientProbe is a pre-registered publish handle for one signal on a
// Client — the remote counterpart of core.Probe. Registration validates
// the name once and pins one canonical string, so every enqueued sample
// shares it (no per-sample name allocation, O(1) run detection in the
// writer's batch encoder) and publishing N samples of one signal validates
// and prepares the name once per batch run, not once per sample. Probes
// are idempotent per name and safe for concurrent use (sends serialize on
// the client's queue lock like every other send).
type ClientProbe struct {
	c    *Client
	name string
}

// Probe validates and registers a signal name, returning its publish
// handle. Calling Probe again with the same name returns the same handle.
// Names the wire format cannot carry are rejected (tuple.ValidateName).
func (c *Client) Probe(name string) (*ClientProbe, error) {
	if err := tuple.ValidateName(name); err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.probes[name]; p != nil {
		return p, nil
	}
	if c.probes == nil {
		c.probes = make(map[string]*ClientProbe)
	}
	p := &ClientProbe{c: c, name: strings.Clone(name)}
	c.probes[p.name] = p
	return p, nil
}

// Name returns the probe's canonical signal name.
func (p *ClientProbe) Name() string { return p.name }

// Send enqueues one sample of the probe's signal. Like Client.Send it
// never blocks on the network and returns the background writer's first
// error, if any.
func (p *ClientProbe) Send(at time.Duration, v float64) error {
	return p.c.SendProbeBatch(p, []tuple.Sample{{At: at, Value: v}})
}

// SendBatch enqueues a run of samples under one lock acquisition.
//
//gscope:hotpath
func (p *ClientProbe) SendBatch(samples []tuple.Sample) error {
	return p.c.SendProbeBatch(p, samples)
}

// SendProbeBatch enqueues a same-signal run of samples under one lock
// acquisition and one writer wake-up. The samples are copied; the caller
// may reuse the slice. Combined with the writer's reusable queue and
// encode buffers this is the zero-allocation publish path: a steady-state
// publisher sending batches through a probe allocates nothing per batch.
//
//gscope:hotpath
func (c *Client) SendProbeBatch(p *ClientProbe, samples []tuple.Sample) error {
	if len(samples) == 0 {
		return nil
	}
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("netscope: client closed") //gscope:allow hotpath error construction happens only after Close
		}
		return err
	}
	for _, s := range samples {
		c.queue = append(c.queue, tuple.Tuple{Time: s.At.Milliseconds(), Value: s.Value, Name: p.name})
	}
	c.trimLocked()
	err := c.err
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return err
}

// Sent returns the number of tuples written to the socket so far.
func (c *Client) Sent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// SetQueueLimit bounds the send queue in tuples with a drop-oldest policy;
// non-positive removes the bound. Plain Dial clients default to unbounded,
// DialReconnect clients to DefaultClientQueueLimit.
func (c *Client) SetQueueLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queueLimit = n
	c.trimLocked()
}

// Dropped returns the number of tuples discarded by the reconnect queue's
// drop-oldest bound (always 0 for plain Dial clients).
func (c *Client) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Reconnects returns how many times the background writer has established
// the connection; for a DialReconnect client that includes the initial
// connect, so a value over 1 means the client survived at least one outage.
func (c *Client) Reconnects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Connected reports whether the client currently holds a live connection.
// Datagram clients count as connected while open: there is no connection
// to lose, only datagrams to lose.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return (c.conn != nil || c.udp != nil) && !c.closed
}

// Flush blocks until the queue has drained (or the writer died). For a
// reconnecting client whose server is down this can block until the server
// returns; use FlushTimeout to bound the wait.
func (c *Client) Flush() error { return c.flush(time.Time{}) }

// FlushTimeout is Flush with a deadline; it returns a timeout error if the
// queue has not drained within d.
func (c *Client) FlushTimeout(d time.Duration) error { return c.flush(time.Now().Add(d)) }

func (c *Client) flush(deadline time.Time) error {
	for {
		c.mu.Lock()
		empty := len(c.queue) == 0 && c.inflight == 0
		err := c.err
		closed := c.closed
		c.mu.Unlock()
		if err != nil {
			return err
		}
		if empty {
			return nil
		}
		if closed {
			return fmt.Errorf("netscope: client closed with queued data")
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("netscope: flush timed out with queued data")
		}
		time.Sleep(time.Millisecond)
	}
}

// Close flushes pending tuples (queued and in-flight) and closes the
// connection. A reconnecting client bounds the flush at one second (it may
// be waiting out an outage) and then shuts down, abandoning whatever is
// still queued; a plain client blocks until everything is written.
func (c *Client) Close() error {
	var ferr error
	if c.reconnect {
		ferr = c.FlushTimeout(time.Second)
	} else {
		ferr = c.Flush()
	}
	c.mu.Lock()
	already := c.closed
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	var cerr error
	if c.reconnect && conn != nil {
		// The bounded flush may have left a write in flight; sever the
		// connection so the writer cannot stay wedged in conn.Write.
		cerr = conn.Close()
	}
	if !already {
		<-c.done
	}
	if !c.reconnect && conn != nil {
		// The flush above was unbounded, so the writer is idle by the
		// time it observes closed and exits; nothing is in flight.
		cerr = conn.Close()
	}
	if c.udp != nil {
		// The writer has exited, so no Publish is in flight; this stops
		// the NACK responder and releases the socket and retained ring.
		if uerr := c.udp.Close(); cerr == nil {
			cerr = uerr
		}
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}
