// Package netscope implements gscope's distributed-visualization support
// (§4.4): a single-threaded, I/O-driven client/server library. Clients
// asynchronously send BUFFER signal data in tuple format (§3.3) to a
// server; the server buffers the data and delivers it into one or more
// scopes, which display it with the user-specified delay. Data arriving
// after its display window has passed is dropped immediately.
//
// All server callbacks run on the owning glib loop's goroutine, so a server
// embedded in a GUI application shares one event loop with the scope
// display and needs no locking — the same structure as the paper's
// client-server library used by mxtraf.
package netscope

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/tuple"
)

// Server receives tuple streams from any number of clients and fans them
// into the feeds of attached scopes.
type Server struct {
	loop *glib.Loop
	ln   net.Listener
	acc  *glib.IOWatch

	scopes  []*core.Scope
	clients map[net.Conn]*glib.IOWatch

	// OnTuple, when set, observes every received tuple (on the loop
	// goroutine) before scope delivery.
	OnTuple func(tuple.Tuple)

	// MapTime, when set, rebases incoming timestamps onto the server
	// scope's timeline before delivery. The paper assumes distributed
	// data can be correlated (§1 fn. 1); in practice clients stamp
	// tuples with a shared clock (e.g. Unix time) and the server maps
	// that clock onto its own, with residual skew absorbed by the
	// display delay. The recorder always stores the original stamps.
	MapTime func(time.Duration) time.Duration

	rec *tuple.Writer

	connects    int64
	disconnects int64
	received    int64
	parseErrors int64
	closed      bool
}

// NewServer creates a server on loop. Attach scopes, then call Listen.
func NewServer(loop *glib.Loop) *Server {
	return &Server{loop: loop, clients: make(map[net.Conn]*glib.IOWatch)}
}

// Attach adds a scope whose feed will receive every tuple. BUFFER signals
// on the scope pick out the names they display.
func (s *Server) Attach(sc *core.Scope) { s.scopes = append(s.scopes, sc) }

// SetRecorder mirrors every received tuple to w (the server-side recording
// path); nil disables.
func (s *Server) SetRecorder(w *tuple.Writer) { s.rec = w }

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting clients.
// It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	s.ln = ln
	s.acc = s.loop.WatchAccept(ln, func(conn net.Conn, err error) bool {
		if err != nil {
			return false
		}
		s.connects++
		s.addClient(conn)
		return true
	})
	return ln.Addr(), nil
}

func (s *Server) addClient(conn net.Conn) {
	w := s.loop.WatchLines(conn, func(line string, err error) bool {
		if err != nil {
			s.disconnects++
			delete(s.clients, conn)
			conn.Close()
			return false
		}
		if tuple.IsComment(line) {
			return true
		}
		t, perr := tuple.Parse(line)
		if perr != nil {
			s.parseErrors++
			return true
		}
		s.received++
		s.deliver(t)
		return true
	})
	s.clients[conn] = w
}

func (s *Server) deliver(t tuple.Tuple) {
	if s.OnTuple != nil {
		s.OnTuple(t)
	}
	if s.rec != nil {
		s.rec.Write(t) //nolint:errcheck // recorder errors surface on Flush
	}
	at := t.Timestamp()
	if s.MapTime != nil {
		at = s.MapTime(at)
	}
	for _, sc := range s.scopes {
		sc.Feed().Push(at, t.Name, t.Value)
	}
}

// Stats returns lifetime counters: client connects, disconnects, tuples
// received and lines that failed to parse.
func (s *Server) Stats() (connects, disconnects, received, parseErrors int64) {
	return s.connects, s.disconnects, s.received, s.parseErrors
}

// Clients returns the number of currently connected clients.
func (s *Server) Clients() int { return len(s.clients) }

// Close stops accepting, disconnects all clients and flushes the recorder.
func (s *Server) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.acc != nil {
		s.acc.Cancel()
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn, w := range s.clients {
		w.Cancel()
		conn.Close()
		delete(s.clients, conn)
	}
	if s.rec != nil {
		if ferr := s.rec.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// Client streams tuples to a server. Sends are asynchronous: Send enqueues
// and returns immediately while a writer goroutine drains the queue, so an
// instrumented time-sensitive application never blocks on the network —
// the property the paper's client library is built around.
type Client struct {
	conn net.Conn

	mu     sync.Mutex
	queue  []tuple.Tuple
	kick   chan struct{}
	closed bool
	sent   int64
	err    error

	done chan struct{}
}

// Dial connects to a netscope server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netscope: %w", err)
	}
	c := &Client{
		conn: conn,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go c.writer()
	return c, nil
}

func (c *Client) writer() {
	defer close(c.done)
	for {
		c.mu.Lock()
		batch := c.queue
		c.queue = nil
		closed := c.closed
		c.mu.Unlock()

		if len(batch) > 0 {
			buf := make([]byte, 0, 32*len(batch))
			for _, t := range batch {
				buf = append(buf, t.String()...)
				buf = append(buf, '\n')
			}
			if _, err := c.conn.Write(buf); err != nil {
				c.mu.Lock()
				if c.err == nil {
					c.err = err
				}
				c.closed = true
				c.mu.Unlock()
				return
			}
			c.mu.Lock()
			c.sent += int64(len(batch))
			c.mu.Unlock()
			continue
		}
		if closed {
			return
		}
		<-c.kick
	}
}

// Send enqueues one sample stamped at the given offset on the shared
// timeline. It never blocks on the network. It returns the first write
// error encountered by the background writer, if any.
func (c *Client) Send(at time.Duration, name string, v float64) error {
	return c.SendTuple(tuple.Tuple{Time: at.Milliseconds(), Value: v, Name: name})
}

// SendTuple enqueues an encoded tuple.
func (c *Client) SendTuple(t tuple.Tuple) error {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("netscope: client closed")
		}
		return err
	}
	c.queue = append(c.queue, t)
	err := c.err
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	return err
}

// Sent returns the number of tuples written to the socket so far.
func (c *Client) Sent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent
}

// Flush blocks until the queue has drained (or the writer died).
func (c *Client) Flush() error {
	for {
		c.mu.Lock()
		empty := len(c.queue) == 0
		err := c.err
		closed := c.closed
		c.mu.Unlock()
		if err != nil {
			return err
		}
		if empty {
			return nil
		}
		if closed {
			return fmt.Errorf("netscope: client closed with queued data")
		}
		time.Sleep(time.Millisecond)
	}
}

// Close flushes pending tuples and closes the connection.
func (c *Client) Close() error {
	ferr := c.Flush()
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	if !already {
		<-c.done
	}
	cerr := c.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
