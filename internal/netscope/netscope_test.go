package netscope

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/testutil"
	"repro/internal/tuple"
)

// Every client writer, watch reader, and hub writer in this package
// promises to exit on Close; a leak fails the whole suite.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}

// rig assembles a virtual-clock loop, a scope with a BUFFER signal, and a
// listening server.
func rig(t *testing.T) (*glib.Loop, *core.Scope, *Server, string) {
	t.Helper()
	vc := glib.NewVirtualClock(time.Unix(7000, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	sc := core.New(loop, "server-scope", 200, 100)
	if _, err := sc.AddSignal(core.Sig{Name: "remote", Kind: core.KindBuffer}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(loop)
	srv.Attach(sc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return loop, sc, srv, addr.String()
}

// pump iterates the loop until cond is true or the deadline passes.
func pump(t *testing.T, loop *glib.Loop, cond func() bool) {
	t.Helper()
	testutil.PumpUntil(t, "netscope condition", func() { loop.Iterate() }, cond)
}

func TestClientServerDelivery(t *testing.T) {
	loop, sc, srv, addr := rig(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 1; i <= 5; i++ {
		if err := c.Send(time.Duration(i*10)*time.Millisecond, "remote", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool {
		_, _, recv, _ := srv.Stats()
		return recv >= 5
	})
	if sc.Feed().Pending() != 5 {
		t.Fatalf("feed pending = %d", sc.Feed().Pending())
	}
	if c.Sent() != 5 {
		t.Fatalf("client sent = %d", c.Sent())
	}
}

func TestEndToEndScopeDisplay(t *testing.T) {
	loop, sc, srv, addr := rig(t)
	_ = srv
	sc.SetPollingMode(50 * time.Millisecond) //nolint:errcheck
	if err := sc.StartPolling(); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Send(20*time.Millisecond, "remote", 7) //nolint:errcheck
	c.Flush()                                //nolint:errcheck
	pump(t, loop, func() bool { return sc.Feed().Pending() > 0 })

	// Advance virtual time so the scope polls and drains the feed.
	loop.Advance(200 * time.Millisecond)
	sig := sc.Signal("remote")
	if v, ok := sig.Trace().Last(); !ok || v != 7 {
		t.Fatalf("displayed = %v ok=%v, want 7", v, ok)
	}
}

func TestMultipleClients(t *testing.T) {
	loop, _, srv, addr := rig(t)
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	for i, c := range clients {
		c.Send(time.Duration(i)*time.Millisecond, "remote", float64(i)) //nolint:errcheck
		c.Flush()                                                       //nolint:errcheck
	}
	pump(t, loop, func() bool {
		_, _, recv, _ := srv.Stats()
		return recv >= 3
	})
	pump(t, loop, func() bool { return srv.Clients() == 3 })
	conn, _, _, _ := srv.Stats()
	if conn != 3 {
		t.Fatalf("connects = %d", conn)
	}
}

func TestServerIgnoresGarbageLines(t *testing.T) {
	loop, _, srv, addr := rig(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Send raw garbage followed by a valid tuple using the tuple type.
	c.SendTuple(tuple.Tuple{Time: 10, Value: 1, Name: "remote"}) //nolint:errcheck
	c.Flush()                                                    //nolint:errcheck
	// Write garbage directly through a second client connection.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.conn.Write([]byte("not a tuple\n# comment\n20 2 remote\n")) //nolint:errcheck

	pump(t, loop, func() bool {
		_, _, recv, _ := srv.Stats()
		return recv >= 2
	})
	_, _, _, parseErrs := srv.Stats()
	if parseErrs != 1 {
		t.Fatalf("parseErrors = %d, want 1", parseErrs)
	}
}

func TestServerOnTupleHookAndRecorder(t *testing.T) {
	loop, _, srv, addr := rig(t)
	var hooked []tuple.Tuple
	srv.OnTuple = func(tu tuple.Tuple) { hooked = append(hooked, tu) }

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Send(5*time.Millisecond, "remote", 3) //nolint:errcheck
	c.Flush()                               //nolint:errcheck
	pump(t, loop, func() bool { return len(hooked) >= 1 })
	if hooked[0].Value != 3 || hooked[0].Name != "remote" {
		t.Fatalf("hooked %+v", hooked[0])
	}
}

func TestClientDisconnectCounted(t *testing.T) {
	loop, _, srv, addr := rig(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool { return srv.Clients() == 1 })
	c.Close()
	pump(t, loop, func() bool {
		_, disc, _, _ := srv.Stats()
		return disc == 1 && srv.Clients() == 0
	})
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to a closed port should fail")
	}
}

func TestClientSendAfterClose(t *testing.T) {
	_, _, _, addr := rig(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Send(0, "x", 1); err == nil {
		t.Fatal("send after close should fail")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	_, _, srv, _ := rig(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

func TestLateDataDroppedAtServer(t *testing.T) {
	// §4.4: data arriving after its display window is dropped immediately.
	loop, sc, srv, addr := rig(t)
	sc.SetPollingMode(50 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Display window advances to ~t-0 with zero delay after polling 200ms.
	loop.Advance(200 * time.Millisecond)
	c.Send(10*time.Millisecond, "remote", 9) //nolint:errcheck  (stale timestamp)
	c.Flush()                                //nolint:errcheck
	pump(t, loop, func() bool {
		_, _, recv, _ := srv.Stats()
		return recv >= 1
	})
	_, dropped := sc.Feed().Stats()
	if dropped != 1 {
		t.Fatalf("late sample not dropped (dropped=%d)", dropped)
	}
}

func TestMapTimeRebasesStamps(t *testing.T) {
	loop, sc, srv, addr := rig(t)
	// Clients stamp with a "shared clock" offset 1 hour ahead of the
	// scope's timeline; MapTime subtracts the offset.
	offset := time.Hour
	srv.MapTime = func(at time.Duration) time.Duration { return at - offset }
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Send(offset+30*time.Millisecond, "remote", 5) //nolint:errcheck
	c.Flush()                                       //nolint:errcheck
	pump(t, loop, func() bool { return sc.Feed().Pending() > 0 })
	sc.SetPollingMode(50 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	loop.Advance(200 * time.Millisecond)
	sig := sc.Signal("remote")
	if v, ok := sig.Trace().Last(); !ok || v != 5 {
		t.Fatalf("rebased sample not displayed: %v %v", v, ok)
	}
}

func TestClientSendBatchDelivery(t *testing.T) {
	loop, sc, srv, addr := rig(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := make([]tuple.Tuple, 100)
	for i := range batch {
		batch[i] = tuple.Tuple{Time: int64((i + 1) * 10), Value: float64(i), Name: "remote"}
	}
	if err := c.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool { return sc.Feed().Pending() == 100 })

	got := sc.Feed().Take(time.Hour)
	if len(got) != 100 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, tu := range got {
		if tu.Value != float64(i) || tu.Name != "remote" {
			t.Fatalf("tuple %d = %+v", i, tu)
		}
	}
	if _, _, received, parseErrors := srv.Stats(); received != 100 || parseErrors != 0 {
		t.Fatalf("server stats: received=%d parseErrors=%d", received, parseErrors)
	}
}

func TestBatchIngestPreservesOrderAcrossChunkBoundaries(t *testing.T) {
	// Force tuples to arrive in many small TCP segments so lines split
	// across read chunks; the carry logic must reassemble them exactly.
	loop, sc, _, addr := rig(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var wire []byte
	const n = 50
	for i := 1; i <= n; i++ {
		wire = tuple.AppendWire(wire, tuple.Tuple{Time: int64(i * 10), Value: float64(i), Name: "remote"})
	}
	go func() {
		for len(wire) > 0 {
			k := 7
			if k > len(wire) {
				k = len(wire)
			}
			conn.Write(wire[:k]) //nolint:errcheck
			wire = wire[k:]
			time.Sleep(time.Millisecond)
		}
	}()
	pump(t, loop, func() bool { return sc.Feed().Pending() == n })
	got := sc.Feed().Take(time.Hour)
	for i, tu := range got {
		if tu.Value != float64(i+1) {
			t.Fatalf("tuple %d = %+v", i, tu)
		}
	}
}

func TestMapTimeRebasesBatches(t *testing.T) {
	loop, sc, srv, addr := rig(t)
	srv.MapTime = func(d time.Duration) time.Duration { return d + time.Second }
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendBatch([]tuple.Tuple{
		{Time: 10, Value: 1, Name: "remote"},
		{Time: 20, Value: 2, Name: "remote"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool { return sc.Feed().Pending() == 2 })
	got := sc.Feed().Take(time.Hour)
	if got[0].Time != 1010 || got[1].Time != 1020 {
		t.Fatalf("rebased stamps = %d, %d", got[0].Time, got[1].Time)
	}
}
