package netscope

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/glib"
	"repro/internal/reclog"
	"repro/internal/tuple"
)

// rawCollector drains a subscriber connection byte-for-byte.
type rawCollector struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func collectRaw(t *testing.T, addr string) (*rawCollector, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := &rawCollector{}
	go func() {
		chunk := make([]byte, 4096)
		for {
			n, err := conn.Read(chunk)
			c.mu.Lock()
			c.buf.Write(chunk[:n])
			c.mu.Unlock()
			if err != nil {
				return
			}
		}
	}()
	return c, conn
}

func (c *rawCollector) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

// TestV1SubscriberByteIdentical is the v1 compatibility acceptance test:
// a silent (v1) subscriber against the v2 server must receive a stream
// byte-identical to the pre-v2 hub — banner, snapshot framing, snapshot
// tuples, then every delta in order — even when deltas are broadcast while
// the server is still sniffing the protocol version (they buffer and
// deliver after the accept-time snapshot, exactly where an immediate v1
// subscription would have put them).
func TestV1SubscriberByteIdentical(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetHandshakeGrace(time.Hour) // promotion is driven explicitly below

	for i := 1; i <= 3; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i * 10), Value: float64(i), Name: "s"})
	}
	raw, conn := collectRaw(t, subAddr)
	defer conn.Close()

	// Wait until the hub has registered the (sniffing) connection...
	pump(t, loop, func() bool { return len(srv.hub.subs) == 1 })
	if srv.Subscribers() != 0 {
		t.Fatalf("sniffing connection already counted live: %d", srv.Subscribers())
	}
	// ...broadcast deltas while the protocol version is still undecided...
	srv.Inject(tuple.Tuple{Time: 40, Value: 4, Name: "s"})
	srv.Inject(tuple.Tuple{Time: 50, Value: 5, Name: "s"})
	// ...then commit it to v1 and send one live delta.
	for c := range srv.hub.subs {
		srv.promoteV1(c)
	}
	if srv.Subscribers() != 1 {
		t.Fatal("promotion did not go live")
	}
	srv.Inject(tuple.Tuple{Time: 60, Value: 6, Name: "s"})

	want := "# gscope-hub 1\n" +
		"# snapshot tuples=3 window-ms=5000\n" +
		"10 1 s\n20 2 s\n30 3 s\n" +
		"# snapshot-end\n" +
		"40 4 s\n50 5 s\n60 6 s\n"
	pump(t, loop, func() bool { return len(raw.bytes()) >= len(want) })
	if got := string(raw.bytes()); got != want {
		t.Fatalf("v1 stream diverged:\ngot  %q\nwant %q", got, want)
	}
}

// TestV1GarbageFirstLineFallsBack: a client whose first line is not a v2
// handshake is a v1 subscriber; the line is ignored, as it always was.
func TestV1GarbageFirstLineFallsBack(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetHandshakeGrace(time.Hour) // only the garbage line may promote
	srv.Inject(tuple.Tuple{Time: 10, Value: 1, Name: "s"})

	conn, err := net.Dial("tcp", subAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello there\n")); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []tuple.Tuple
	go func() {
		r := tuple.NewReader(conn, false)
		for {
			tu, err := r.Read()
			if err != nil {
				return
			}
			mu.Lock()
			got = append(got, tu)
			mu.Unlock()
		}
	}()
	pump(t, loop, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) >= 1 })
	mu.Lock()
	defer mu.Unlock()
	if got[0].Value != 1 {
		t.Fatalf("snapshot tuple = %+v", got[0])
	}
}

// TestV2MalformedHandshake: a malformed v2 request earns an error frame and
// the v1 stream.
func TestV2MalformedHandshake(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.Inject(tuple.Tuple{Time: 10, Value: 1, Name: "s"})
	conn, err := net.Dial("tcp", subAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("gscope-sub 2 max-rate=banana\n")); err != nil {
		t.Fatal(err)
	}
	raw, conn2 := collectRaw(t, subAddr) // an unrelated healthy viewer
	defer conn2.Close()
	_ = raw
	buf := &rawCollector{}
	go func() {
		chunk := make([]byte, 4096)
		for {
			n, rerr := conn.Read(chunk)
			buf.mu.Lock()
			buf.buf.Write(chunk[:n])
			buf.mu.Unlock()
			if rerr != nil {
				return
			}
		}
	}()
	pump(t, loop, func() bool {
		s := string(buf.bytes())
		return strings.Contains(s, "# error") && strings.Contains(s, "# gscope-hub 1")
	})
}

// TestV2NoOptionsTupleParity: a v2 client with an empty request and a v1
// client connected to the same hub receive identical tuple streams
// (re-encoded byte comparison), and the v2 client sees the v2 ack.
func TestV2NoOptionsTupleParity(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	for i := 1; i <= 4; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i * 10), Value: float64(i), Name: "s"})
	}

	v1, connV1 := collect(t, subAddr)
	defer connV1.Close()
	var mu sync.Mutex
	var v2got []tuple.Tuple
	v2, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		mu.Lock()
		v2got = append(v2got, tu)
		mu.Unlock()
	}, WithControl())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 2 })
	for i := 5; i <= 8; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i * 10), Value: float64(i), Name: "s"})
	}
	pump(t, loop, func() bool {
		mu.Lock()
		n := len(v2got)
		mu.Unlock()
		return v1.count() >= 8 && n >= 8
	})
	if !v2.Acked() || !v2.Handshaken() {
		t.Fatalf("v2 handshake not acknowledged (acked=%v handshaken=%v)", v2.Acked(), v2.Handshaken())
	}
	if v2.Snapshot() != 4 {
		t.Fatalf("v2 snapshot = %d, want 4", v2.Snapshot())
	}
	mu.Lock()
	defer mu.Unlock()
	a := tuple.AppendWireBatch(nil, v1.tuples())
	b := tuple.AppendWireBatch(nil, v2got)
	if !bytes.Equal(a, b) {
		t.Fatalf("streams diverge:\nv1 %q\nv2 %q", a, b)
	}
}

// TestV2SignalFilter: per-signal subscriptions with exact names and globs,
// server-side: the filtered tuples never cross the wire, and the hub
// accounts for them.
func TestV2SignalFilter(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0)

	var mu sync.Mutex
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}, WithSignals("alpha", "p*"))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })

	batch := []tuple.Tuple{
		{Time: 10, Value: 1, Name: "alpha"},
		{Time: 11, Value: 2, Name: "beta"},
		{Time: 12, Value: 3, Name: "p1"},
		{Time: 13, Value: 4, Name: "p2"},
		{Time: 14, Value: 5, Name: "quux"},
	}
	srv.InjectBatch(batch)
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 3
	})
	mu.Lock()
	if len(got) != 3 || got[0].Name != "alpha" || got[1].Name != "p1" || got[2].Name != "p2" {
		t.Fatalf("filtered stream = %+v", got)
	}
	mu.Unlock()
	if st := srv.FanoutStats(); st.Filtered != 2 {
		t.Fatalf("filtered counter = %d, want 2", st.Filtered)
	}
	// A later unfiltered viewer still gets everything (filters are per-sub).
	all, connAll := collect(t, subAddr)
	defer connAll.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 2 })
	srv.Inject(tuple.Tuple{Time: 20, Value: 6, Name: "beta"})
	pump(t, loop, func() bool { return all.count() >= 1 })
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("filtered sub leaked beta: %+v", got)
	}
}

// TestV2MaxRateDecimation: the hub drops same-signal samples closer than
// 1/MaxRate, per subscriber, before they ever reach the queue.
func TestV2MaxRateDecimation(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0)

	var mu sync.Mutex
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}, WithMaxRate(100)) // ≥10ms between samples of one signal
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })

	for i := 0; i < 100; i++ { // 1ms apart: 10x too fast
		srv.Inject(tuple.Tuple{Time: int64(i), Value: float64(i), Name: "hot"})
	}
	pump(t, loop, func() bool { return srv.FanoutStats().Filtered >= 90 })
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 10
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("decimated to %d tuples, want 10", len(got))
	}
	for i, tu := range got {
		if tu.Time != int64(i*10) {
			t.Fatalf("decimation cadence wrong at %d: %+v", i, tu)
		}
	}
}

// TestV2SinceBackfillFromHistory: WithSince inside the retained window is
// served from the hub's history, framed as backfill, filtered, then live.
func TestV2SinceBackfillFromHistory(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(time.Hour)
	for ms := int64(0); ms <= 5000; ms += 100 {
		srv.Inject(tuple.Tuple{Time: ms, Value: float64(ms), Name: "s"})
		srv.Inject(tuple.Tuple{Time: ms, Value: 0, Name: "noise"})
	}
	var mu sync.Mutex
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}, WithSignals("s"), WithSince(-2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Backfill = tuples of signal s stamped in [3000, 5000]: 21 of them.
	pump(t, loop, func() bool { return sub.Backfilled() >= 21 })
	if sub.Backfilled() != 21 || sub.Snapshot() != 0 {
		t.Fatalf("backfilled = %d snapshot = %d", sub.Backfilled(), sub.Snapshot())
	}
	srv.Inject(tuple.Tuple{Time: 5100, Value: 5100, Name: "s"})
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 22
	})
	mu.Lock()
	defer mu.Unlock()
	if got[0].Time != 3000 || got[20].Time != 5000 || got[21].Time != 5100 {
		t.Fatalf("backfill window wrong: first=%+v last=%+v live=%+v", got[0], got[20], got[21])
	}
	for _, tu := range got {
		if tu.Name != "s" {
			t.Fatalf("filter leaked into backfill: %+v", tu)
		}
	}
}

// TestV2SinceBackfillFromReclog: a window older than the retained history
// is served from the attached flight recorder.
func TestV2SinceBackfillFromReclog(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(time.Second)
	dir := t.TempDir()
	lg, err := srv.Record(dir, reclog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 1; i <= n; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i * 100), Value: float64(i), Name: "s"})
	}
	// The flight log is async; wait until everything reached the disk
	// writer before asking for it back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, written := lg.Stats(); written >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight log never drained")
		}
		time.Sleep(time.Millisecond)
	}

	sub, err := SubscribeTo(loop, subAddr, func(tuple.Tuple) {}, WithSince(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// since=50ms absolute predates the 1s snapshot window (history starts
	// at ~9100ms), so the backfill must come from disk: all 100 tuples.
	pump(t, loop, func() bool { return sub.Backfilled() >= n })
	if sub.Backfilled() != n {
		t.Fatalf("backfilled = %d, want %d", sub.Backfilled(), n)
	}
}

// TestV2DecimatedBackfill: WithSince+WithResolution serves min/max buckets
// from the tiered store — O(cols) tuples however deep the window.
func TestV2DecimatedBackfill(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0) // decimated backfill does not need raw history
	srv.SetBackfillRetention(1 << 14)

	const n = 8000
	batch := make([]tuple.Tuple, 0, 256)
	for i := 0; i < n; i++ {
		v := float64(i % 100)
		switch i {
		case 6000:
			v = -999
		case 7000:
			v = 999
		}
		batch = append(batch, tuple.Tuple{Time: int64(i), Value: v, Name: "s"})
		batch = append(batch, tuple.Tuple{Time: int64(i), Value: 1, Name: "other"})
		if len(batch) == 256 {
			srv.InjectBatch(batch)
			batch = batch[:0]
		}
	}
	srv.InjectBatch(batch)

	var mu sync.Mutex
	var got []tuple.Tuple
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		mu.Lock()
		got = append(got, tu)
		mu.Unlock()
	}, WithSignals("s"), WithSince(1*time.Millisecond), WithResolution(32))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return sub.Acked() && sub.Backfilled() > 0 })
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 || len(got) > 64 { // ≤2 tuples per bucket
		t.Fatalf("decimated backfill returned %d tuples, want (0, 64]", len(got))
	}
	sawMin, sawMax := false, false
	for _, tu := range got {
		if tu.Name != "s" {
			t.Fatalf("filter leaked: %+v", tu)
		}
		if tu.Value == -999 {
			sawMin = true
		}
		if tu.Value == 999 {
			sawMax = true
		}
	}
	if !sawMin || !sawMax {
		t.Fatalf("envelope lost planted extremes (min=%v max=%v) in %d tuples", sawMin, sawMax, len(got))
	}
}

// controlLog captures control frames delivered to a subscriber.
type controlLog struct {
	mu     sync.Mutex
	frames []tuple.ControlFrame
}

func (cl *controlLog) add(f tuple.ControlFrame) {
	cl.mu.Lock()
	cl.frames = append(cl.frames, f)
	cl.mu.Unlock()
}

func (cl *controlLog) find(verb string) (tuple.ControlFrame, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, f := range cl.frames {
		if f.Verb == verb {
			return f, true
		}
	}
	return tuple.ControlFrame{}, false
}

func (cl *controlLog) count(verb string) int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n := 0
	for _, f := range cl.frames {
		if f.Verb == verb {
			n++
		}
	}
	return n
}

// TestV2ParamCommands is the remote-parameter acceptance test: PARAM SET
// over the wire clamps to the declared bounds, the publishing application
// observes the new value, and other subscribers see a notification frame.
// PARAM GET and LIST answer from the registry.
func TestV2ParamCommands(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	ps := core.NewParamSet()
	var knob core.IntVar
	if err := ps.Add(core.IntParam("knob", &knob, 0, 10)); err != nil {
		t.Fatal(err)
	}
	var gain core.FloatVar
	if err := ps.Add(core.FloatParam("gain", &gain, -1, 1)); err != nil {
		t.Fatal(err)
	}
	srv.SetParams(ps)

	logA, logB := &controlLog{}, &controlLog{}
	subA, err := SubscribeTo(loop, subAddr, func(tuple.Tuple) {}, WithControl())
	if err != nil {
		t.Fatal(err)
	}
	defer subA.Close()
	subA.OnControl(logA.add)
	subB, err := SubscribeTo(loop, subAddr, func(tuple.Tuple) {}, WithControl())
	if err != nil {
		t.Fatal(err)
	}
	defer subB.Close()
	subB.OnControl(logB.add)
	pump(t, loop, func() bool { return srv.Subscribers() == 2 })

	// SET beyond the bound: clamped server-side, observed by the app.
	if err := subA.Command("param set knob 50"); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool { _, ok := logA.find("param-ok"); return ok })
	if f, _ := logA.find("param-ok"); f.Arg(0) != "knob" || f.Arg(1) != "10" {
		t.Fatalf("param-ok = %+v, want knob 10 (clamped)", f)
	}
	if knob.Load() != 10 {
		t.Fatalf("application variable = %d, want 10", knob.Load())
	}
	// The other subscriber observes the change as a notification frame.
	pump(t, loop, func() bool { _, ok := logB.find("param"); return ok })
	if f, _ := logB.find("param"); f.Arg(0) != "knob" || f.Arg(1) != "10" {
		t.Fatalf("notification = %+v, want knob 10", f)
	}

	// GET reflects the stored value with its metadata.
	if err := subB.Command("param get gain"); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool {
		logB.mu.Lock()
		defer logB.mu.Unlock()
		for _, f := range logB.frames {
			if f.Verb == "param" && f.Arg(0) == "gain" {
				return true
			}
		}
		return false
	})
	logB.mu.Lock()
	var gainFrame tuple.ControlFrame
	for _, f := range logB.frames {
		if f.Verb == "param" && f.Arg(0) == "gain" {
			gainFrame = f
		}
	}
	logB.mu.Unlock()
	if v, _ := gainFrame.Lookup("min"); v != "-1" {
		t.Fatalf("gain frame metadata wrong: %+v", gainFrame)
	}
	if m, _ := gainFrame.Lookup("mode"); m != "rw" {
		t.Fatalf("gain mode = %+v", gainFrame)
	}

	// LIST enumerates both, framed.
	if err := subA.Command("param list"); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool { _, ok := logA.find("params-end"); return ok })
	if f, _ := logA.find("params"); f.Int("n", -1) != 2 {
		t.Fatalf("params header = %+v", f)
	}

	// Errors: unknown name, and an app-side set also notifies the wire.
	if err := subA.Command("param set nope 1"); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool { _, ok := logA.find("error"); return ok })
	before := logB.count("param")
	if err := ps.Set("gain", 0.5); err != nil { // the application's own set
		t.Fatal(err)
	}
	pump(t, loop, func() bool { return logB.count("param") > before })
}

// TestSubscribeWithProgrammatic exercises the in-process v2 path: an
// explicit SubscriptionRequest on one end of a pipe, no handshake line.
func TestSubscribeWithProgrammatic(t *testing.T) {
	loop, srv, _, _ := hubRig(t)
	srv.Inject(tuple.Tuple{Time: 10, Value: 1, Name: "keep"})
	srv.Inject(tuple.Tuple{Time: 11, Value: 2, Name: "drop"})

	hubEnd, viewerEnd := net.Pipe()
	defer viewerEnd.Close()
	var mu sync.Mutex
	var got []tuple.Tuple
	go func() {
		r := tuple.NewReader(viewerEnd, false)
		for {
			tu, err := r.Read()
			if err != nil {
				return
			}
			mu.Lock()
			got = append(got, tu)
			mu.Unlock()
		}
	}()
	if err := srv.SubscribeWith(hubEnd, SubscriptionRequest{Signals: []string{"keep"}}); err != nil {
		t.Fatal(err)
	}
	if srv.Subscribers() != 1 {
		t.Fatal("SubscribeWith not live immediately")
	}
	srv.Inject(tuple.Tuple{Time: 20, Value: 3, Name: "keep"})
	srv.Inject(tuple.Tuple{Time: 21, Value: 4, Name: "drop"})
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 2
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Value != 1 || got[1].Value != 3 {
		t.Fatalf("programmatic v2 stream = %+v", got)
	}
	// An invalid request is rejected up front.
	bad, bad2 := net.Pipe()
	defer bad.Close()
	defer bad2.Close()
	if err := srv.SubscribeWith(bad, SubscriptionRequest{MaxRate: -1}); err == nil {
		t.Fatal("negative MaxRate accepted")
	}
}

// TestSubscriberCountersRace is the -race regression test for the
// previously unsynchronized Subscriber counters: they are read from an
// arbitrary goroutine while the loop goroutine (loop.Run) is writing them.
func TestSubscriberCountersRace(t *testing.T) {
	loop := glib.NewLoop(glib.RealClock{})
	srv := NewServer(loop)
	subAddr, err := srv.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	done := make(chan struct{})
	go func() {
		loop.Run() //nolint:errcheck
		close(done)
	}()
	defer func() {
		loop.Quit()
		<-done
	}()

	sub, err := SubscribeTo(loop, subAddr.String(), func(tuple.Tuple) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			i := i
			loop.Invoke(func() {
				srv.Inject(tuple.Tuple{Time: int64(i), Value: float64(i), Name: "s"})
			})
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		recv, perrs := sub.Stats()
		_ = sub.Handshaken()
		_ = sub.Snapshot()
		_ = sub.Backfilled()
		if perrs != 0 {
			t.Fatalf("parse errors: %d", perrs)
		}
		if recv >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d", recv, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestManyFilteredSubscribersShareEncoding: subscribers with identical
// filters share one encoded chunk per batch (the memo path); correctness
// check that they all see the same narrowed stream.
func TestManyFilteredSubscribersShareEncoding(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0)
	const nSubs = 8
	var mu sync.Mutex
	counts := make([]int, nSubs)
	subs := make([]*Subscriber, nSubs)
	for i := 0; i < nSubs; i++ {
		i := i
		sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
			if tu.Name != "hot" {
				t.Errorf("sub %d leaked %+v", i, tu)
			}
			mu.Lock()
			counts[i]++
			mu.Unlock()
		}, WithSignals("hot"))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
		defer sub.Close()
	}
	pump(t, loop, func() bool { return srv.Subscribers() == nSubs })
	batch := make([]tuple.Tuple, 0, 64)
	for i := 0; i < 64; i++ {
		name := "cold"
		if i%8 == 0 {
			name = "hot"
		}
		batch = append(batch, tuple.Tuple{Time: int64(i), Value: float64(i), Name: name})
	}
	srv.InjectBatch(batch)
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range counts {
			if c < 8 {
				return false
			}
		}
		return true
	})
	if st := srv.FanoutStats(); st.Filtered != int64(nSubs*56) {
		t.Fatalf("filtered = %d, want %d", st.Filtered, nSubs*56)
	}
}

// TestV2NoStream: a control-only connection gets frames but no tuples.
func TestV2NoStream(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	ps := core.NewParamSet()
	var v core.IntVar
	if err := ps.Add(core.IntParam("x", &v, 0, 100)); err != nil {
		t.Fatal(err)
	}
	srv.SetParams(ps)
	srv.Inject(tuple.Tuple{Time: 10, Value: 1, Name: "s"})

	cl := &controlLog{}
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		t.Errorf("control-only connection received tuple %+v", tu)
	}, WithoutStream())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.OnControl(cl.add)
	pump(t, loop, func() bool { return sub.Acked() })
	srv.Inject(tuple.Tuple{Time: 20, Value: 2, Name: "s"})
	if err := sub.Command("param set x 42"); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool { _, ok := cl.find("param-ok"); return ok })
	if v.Load() != 42 {
		t.Fatalf("x = %d", v.Load())
	}
	if recv, _ := sub.Stats(); recv != 0 {
		t.Fatalf("control-only connection received %d tuples", recv)
	}
}

// TestHubChainingV2Filtered: a filtered v2 bridge between two hubs relays
// only its subscription — the decimated-relay topology gscoped's
// -upstream path uses.
func TestHubChainingV2Filtered(t *testing.T) {
	loop, _, pubAddr, subAddrA := hubRig(t)
	srvB := NewServer(loop)
	subAddrB, err := srvB.ListenSubscribers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvB.Close() })

	bridge, err := SubscribeToBatch(loop, subAddrA, srvB.InjectBatch, WithSignals("wanted"))
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	viewer, conn := collect(t, subAddrB.String())
	defer conn.Close()
	pump(t, loop, func() bool { return srvB.Subscribers() == 1 })

	c, err := Dial(pubAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Send(time.Duration(i)*time.Millisecond, "wanted", float64(i)) //nolint:errcheck
		c.Send(time.Duration(i)*time.Millisecond, "junk", float64(i))   //nolint:errcheck
	}
	c.Flush() //nolint:errcheck
	pump(t, loop, func() bool { return viewer.count() >= 5 })
	for _, tu := range viewer.tuples() {
		if tu.Name != "junk" {
			continue
		}
		t.Fatalf("junk crossed the filtered bridge: %+v", tu)
	}
}

func TestSubscriptionRequestRoundTrip(t *testing.T) {
	req := SubscriptionRequest{
		Signals: []string{"cpu.*", "mem"},
		MaxRate: 30,
		Since:   -10 * time.Second,
		Cols:    512,
	}
	line := req.encodeLine()
	if want := "gscope-sub 2 signals=cpu.*,mem max-rate=30 since=-10000 cols=512\n"; line != want {
		t.Fatalf("encoded %q, want %q", line, want)
	}
	got, ok, err := parseSubscriptionRequest(strings.TrimSpace(line))
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if fmt.Sprint(got.Signals) != fmt.Sprint(req.Signals) || got.MaxRate != 30 ||
		got.Since != req.Since || got.Cols != 512 || got.NoStream {
		t.Fatalf("round trip = %+v", got)
	}
	// v1 lines are not requests; wrong versions are requests with errors.
	if _, ok, _ := parseSubscriptionRequest("1500 42.5 CWND"); ok {
		t.Fatal("tuple line parsed as request")
	}
	if _, ok, err := parseSubscriptionRequest("gscope-sub 3"); !ok || err == nil {
		t.Fatal("future version should be a recognized-but-unsupported request")
	}
	if _, _, err := parseSubscriptionRequest("gscope-sub 2 max-rate=-5"); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// TestV2ParamSetRejectsNaN: NaN compares false against both clamp bounds,
// so it must be rejected at the wire before it can bypass the range the
// protocol promises to enforce. Trailing garbage is rejected too.
func TestV2ParamSetRejectsNaN(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	ps := core.NewParamSet()
	var knob core.IntVar
	knob.Store(5)
	if err := ps.Add(core.IntParam("knob", &knob, 0, 10)); err != nil {
		t.Fatal(err)
	}
	srv.SetParams(ps)
	cl := &controlLog{}
	sub, err := SubscribeTo(loop, subAddr, func(tuple.Tuple) {}, WithoutStream())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.OnControl(cl.add)
	pump(t, loop, func() bool { return sub.Acked() })
	for _, bad := range []string{"NaN", "+Inf", "5junk", "banana"} {
		if err := sub.Command("param set knob " + bad); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, loop, func() bool { return cl.count("error") >= 4 })
	if got := cl.count("param-ok"); got != 0 {
		t.Fatalf("%d bad values were accepted", got)
	}
	if knob.Load() != 5 {
		t.Fatalf("knob corrupted to %d", knob.Load())
	}
}

// TestV2MaxRateStaleStampsDoNotRewindClock: a stale-stamped tuple (skewed
// publisher clock) must be dropped without rewinding the per-signal
// decimation clock — a rewind would let the interleaving defeat the cap.
func TestV2MaxRateStaleStampsDoNotRewindClock(t *testing.T) {
	sub := compileSubscription(SubscriptionRequest{MaxRate: 100}) // 10ms gap
	delivered := 0
	for i := 0; i < 100; i++ {
		// In-order stamps 1ms apart, each followed by a stale one 6s back.
		if sub.passes(tuple.Tuple{Time: int64(i), Name: "s"}) {
			delivered++
		}
		if sub.passes(tuple.Tuple{Time: int64(i) - 6000, Name: "s"}) {
			t.Fatalf("stale-stamped tuple at i=%d delivered", i)
		}
	}
	if delivered != 10 {
		t.Fatalf("delivered %d of 100, want 10 (rate cap held)", delivered)
	}
}

// TestV2TrailingSinceBeforeFirstTupleServesNothing: a trailing window has
// no anchor before the first live tuple; with a (reopened) flight log
// attached it must not spill the log's old history.
func TestV2TrailingSinceBeforeFirstTupleServesNothing(t *testing.T) {
	dir := t.TempDir()
	// A previous run's recording, sealed.
	lg, err := reclog.Open(dir, reclog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	old := make([]tuple.Tuple, 1000)
	for i := range old {
		old[i] = tuple.Tuple{Time: int64(i), Value: 1, Name: "old"}
	}
	lg.Append(old)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	loop, srv, _, subAddr := hubRig(t)
	if _, err := srv.Record(dir, reclog.Options{}); err != nil {
		t.Fatal(err)
	}
	sub, err := SubscribeTo(loop, subAddr, func(tu tuple.Tuple) {
		if tu.Name == "old" {
			t.Errorf("previous run's history spilled: %+v", tu)
		}
	}, WithSince(-10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return sub.Acked() })
	if sub.Backfilled() != 0 {
		t.Fatalf("backfilled %d tuples before any live traffic", sub.Backfilled())
	}
	// Live traffic still flows after the empty backfill.
	srv.Inject(tuple.Tuple{Time: 10, Value: 1, Name: "live"})
	pump(t, loop, func() bool { recv, _ := sub.Stats(); return recv >= 1 })
}

// TestV2NoStreamNotCountedFiltered: control-plane-only connections never
// wanted the stream, so they must not inflate the Filtered stat operators
// read as "decimation working".
func TestV2NoStreamNotCountedFiltered(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	sub, err := SubscribeTo(loop, subAddr, func(tuple.Tuple) {}, WithoutStream())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pump(t, loop, func() bool { return sub.Acked() })
	for i := 0; i < 50; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i), Value: 1, Name: "s"})
	}
	if st := srv.FanoutStats(); st.Filtered != 0 {
		t.Fatalf("stream-less connection counted %d tuples as filtered", st.Filtered)
	}
}

// TestV2LateHandshakeUpgrades: a handshake that arrives after the grace
// window already committed the connection to v1 (an RTT longer than the
// grace) must still upgrade it — filters, decimation and the control
// plane apply from that point instead of being silently dropped.
func TestV2LateHandshakeUpgrades(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(0)
	srv.SetHandshakeGrace(time.Millisecond) // lose the race deliberately
	ps := core.NewParamSet()
	var knob core.IntVar
	if err := ps.Add(core.IntParam("knob", &knob, 0, 10)); err != nil {
		t.Fatal(err)
	}
	srv.SetParams(ps)

	conn, err := net.Dial("tcp", subAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var mu sync.Mutex
	var lines []string
	go func() {
		sc := bufioScanner(conn)
		for sc.Scan() {
			mu.Lock()
			lines = append(lines, sc.Text())
			mu.Unlock()
		}
	}()
	// Wait until the silent connection has been committed to v1.
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })
	srv.Inject(tuple.Tuple{Time: 10, Value: 1, Name: "junk"}) // v1 prefix: unfiltered

	// The handshake arrives late; the connection must upgrade in place.
	if _, err := conn.Write([]byte("gscope-sub 2 signals=keep\n")); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, l := range lines {
			if strings.HasPrefix(l, "# gscope-hub 2") {
				return true
			}
		}
		return false
	})
	srv.Inject(tuple.Tuple{Time: 20, Value: 2, Name: "junk"}) // now filtered
	srv.Inject(tuple.Tuple{Time: 21, Value: 3, Name: "keep"})
	// And the control plane works post-upgrade.
	if _, err := conn.Write([]byte("param set knob 7\n")); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, l := range lines {
			if strings.HasPrefix(l, "# param-ok knob 7") {
				return true
			}
		}
		return false
	})
	mu.Lock()
	defer mu.Unlock()
	sawKeep := false
	for _, l := range lines {
		if l == "20 2 junk" {
			t.Fatal("post-upgrade tuple escaped the filter")
		}
		if l == "21 3 keep" {
			sawKeep = true
		}
	}
	if !sawKeep {
		t.Fatal("filtered signal not delivered after upgrade")
	}
	if knob.Load() != 7 {
		t.Fatalf("knob = %d", knob.Load())
	}
}

// bufioScanner is a test helper so the late-handshake test can read lines
// without pulling bufio into every test file scope.
func bufioScanner(conn net.Conn) *bufio.Scanner {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return sc
}

// TestV2LateHandshakeSinceServesEmptyBackfill: a late-upgraded connection
// already received the v1 stream; re-serving a Since window would deliver
// the overlap twice, so the upgrade acks with an empty backfill frame.
func TestV2LateHandshakeSinceServesEmptyBackfill(t *testing.T) {
	loop, srv, _, subAddr := hubRig(t)
	srv.SetSnapshotWindow(time.Hour)
	srv.SetHandshakeGrace(time.Millisecond)
	for i := 1; i <= 5; i++ {
		srv.Inject(tuple.Tuple{Time: int64(i * 1000), Value: float64(i), Name: "s"})
	}
	conn, err := net.Dial("tcp", subAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var mu sync.Mutex
	var tuples []tuple.Tuple
	sawEmptyBackfill := false
	go func() {
		sc := bufioScanner(conn)
		for sc.Scan() {
			line := sc.Text()
			if f, ok := tuple.ParseControl(line); ok {
				if f.Verb == "backfill" && f.Int("tuples", -1) == 0 {
					mu.Lock()
					sawEmptyBackfill = true
					mu.Unlock()
				}
				continue
			}
			if tu, err := tuple.Parse(line); err == nil {
				mu.Lock()
				tuples = append(tuples, tu)
				mu.Unlock()
			}
		}
	}()
	// Committed to v1 (receives the 5-tuple snapshot), then the Since
	// handshake arrives late.
	pump(t, loop, func() bool { return srv.Subscribers() == 1 })
	if _, err := conn.Write([]byte("gscope-sub 2 since=-3000\n")); err != nil {
		t.Fatal(err)
	}
	pump(t, loop, func() bool { mu.Lock(); defer mu.Unlock(); return sawEmptyBackfill })
	srv.Inject(tuple.Tuple{Time: 6000, Value: 6, Name: "s"})
	pump(t, loop, func() bool { mu.Lock(); defer mu.Unlock(); return len(tuples) >= 6 })
	mu.Lock()
	defer mu.Unlock()
	seen := make(map[int64]int)
	for _, tu := range tuples {
		seen[tu.Time]++
		if seen[tu.Time] > 1 {
			t.Fatalf("tuple at %dms delivered twice after late upgrade", tu.Time)
		}
	}
}
