package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTraceBasicPushAt(t *testing.T) {
	tr := NewTrace(4)
	tr.Push(1)
	tr.Push(2)
	tr.Push(3)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, ok := tr.At(0); !ok || v != 3 {
		t.Fatalf("At(0) = %v %v", v, ok)
	}
	if v, ok := tr.At(2); !ok || v != 1 {
		t.Fatalf("At(2) = %v %v", v, ok)
	}
	if _, ok := tr.At(3); ok {
		t.Fatal("At beyond history should fail")
	}
	if _, ok := tr.At(-1); ok {
		t.Fatal("negative back should fail")
	}
}

func TestTraceWraps(t *testing.T) {
	tr := NewTrace(3)
	for i := 1; i <= 5; i++ {
		tr.Push(float64(i))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d", tr.Total())
	}
	want := []float64{5, 4, 3}
	for back, w := range want {
		if v, ok := tr.At(back); !ok || v != w {
			t.Fatalf("At(%d) = %v, want %v", back, v, w)
		}
	}
}

func TestTraceHoles(t *testing.T) {
	tr := NewTrace(8)
	tr.Push(1)
	tr.PushHole()
	tr.Push(3)
	if _, ok := tr.At(1); ok {
		t.Fatal("hole should read as not-ok")
	}
	if v, ok := tr.Last(); !ok || v != 3 {
		t.Fatalf("Last = %v %v", v, ok)
	}
	tr2 := NewTrace(4)
	tr2.PushHole()
	if _, ok := tr2.Last(); ok {
		t.Fatal("all-hole trace has no last value")
	}
}

func TestTraceRecentMarksHolesNaN(t *testing.T) {
	tr := NewTrace(8)
	tr.Push(1)
	tr.PushHole()
	tr.Push(3)
	got := tr.Recent(3)
	if len(got) != 3 {
		t.Fatalf("Recent = %v", got)
	}
	if got[0] != 1 || !math.IsNaN(got[1]) || got[2] != 3 {
		t.Fatalf("Recent = %v", got)
	}
	if got := tr.Recent(0); got != nil {
		t.Fatal("Recent(0) should be nil")
	}
}

func TestTraceRecentValuesSkipsHoles(t *testing.T) {
	tr := NewTrace(8)
	tr.Push(1)
	tr.PushHole()
	tr.Push(3)
	tr.PushHole()
	got := tr.RecentValues(10)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("RecentValues = %v", got)
	}
}

func TestTraceClear(t *testing.T) {
	tr := NewTrace(4)
	tr.Push(1)
	tr.Clear()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatal("Clear failed")
	}
	if _, ok := tr.Last(); ok {
		t.Fatal("cleared trace has no last")
	}
}

func TestTraceMinMax(t *testing.T) {
	tr := NewTrace(8)
	if _, _, ok := tr.MinMax(); ok {
		t.Fatal("empty trace has no range")
	}
	tr.Push(5)
	tr.Push(-2)
	tr.PushHole()
	tr.Push(9)
	lo, hi, ok := tr.MinMax()
	if !ok || lo != -2 || hi != 9 {
		t.Fatalf("MinMax = %v %v %v", lo, hi, ok)
	}
}

func TestTraceCapacityMinimum(t *testing.T) {
	tr := NewTrace(0)
	if tr.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", tr.Cap())
	}
	tr.Push(1)
	tr.Push(2)
	if v, _ := tr.At(0); v != 2 {
		t.Fatal("single-slot ring broken")
	}
}

// Property: a trace behaves like the suffix of the pushed sequence.
func TestTraceMatchesReferenceModel(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		capacity := 1 + r.Intn(16)
		n := r.Intn(100)
		tr := NewTrace(capacity)
		var ref []float64 // NaN encodes holes
		for i := 0; i < n; i++ {
			if r.Intn(5) == 0 {
				tr.PushHole()
				ref = append(ref, math.NaN())
			} else {
				v := float64(r.Intn(1000))
				tr.Push(v)
				ref = append(ref, v)
			}
		}
		if tr.Total() != int64(n) {
			return false
		}
		wantLen := n
		if wantLen > capacity {
			wantLen = capacity
		}
		if tr.Len() != wantLen {
			return false
		}
		for back := 0; back < wantLen; back++ {
			want := ref[n-1-back]
			got, ok := tr.At(back)
			if math.IsNaN(want) {
				if ok {
					return false
				}
			} else if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Recent returns oldest-first and agrees with At.
func TestTraceRecentAgreesWithAt(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	f := func() bool {
		tr := NewTrace(1 + r.Intn(10))
		n := r.Intn(40)
		for i := 0; i < n; i++ {
			tr.Push(float64(i))
		}
		k := r.Intn(15)
		rec := tr.Recent(k)
		for i, v := range rec {
			back := len(rec) - 1 - i
			got, ok := tr.At(back)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
