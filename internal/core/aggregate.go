package core

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Aggregator selects one of the paper's event-aggregation functions (§4.2):
// instead of sampling a memory word, the signal's value for each polling
// interval is computed from the events the application pushed during that
// interval. The paper's examples are network-flavoured: Max/Min latency,
// Sum of bytes, Rate in bytes/second, Average bytes per packet, Events as a
// packet count, AnyEvent as an arrival flag.
type Aggregator int

// Aggregation functions.
const (
	// AggNone disables aggregation; the signal polls its Source.
	AggNone Aggregator = iota
	// AggMax displays the maximum event sample in the interval.
	AggMax
	// AggMin displays the minimum event sample in the interval.
	AggMin
	// AggSum displays the sum of event samples.
	AggSum
	// AggRate displays the sum divided by the polling period in seconds.
	AggRate
	// AggAverage displays the sum divided by the number of events.
	AggAverage
	// AggEvents displays the number of events.
	AggEvents
	// AggAnyEvent displays 1 if any event arrived, else 0.
	AggAnyEvent
)

// String names the aggregator.
func (a Aggregator) String() string {
	switch a {
	case AggNone:
		return "none"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggSum:
		return "sum"
	case AggRate:
		return "rate"
	case AggAverage:
		return "average"
	case AggEvents:
		return "events"
	case AggAnyEvent:
		return "anyevent"
	default:
		return fmt.Sprintf("Aggregator(%d)", int(a))
	}
}

// accumulator collects events between polls. Applications may push events
// from any goroutine, so access is locked.
type accumulator struct {
	mu    sync.Mutex
	count int64
	sum   float64
	max   float64
	min   float64
}

// add records one event sample.
func (ac *accumulator) add(v float64) {
	ac.mu.Lock()
	if ac.count == 0 {
		ac.max, ac.min = v, v
	} else {
		if v > ac.max {
			ac.max = v
		}
		if v < ac.min {
			ac.min = v
		}
	}
	ac.count++
	ac.sum += v
	ac.mu.Unlock()
}

// take computes the aggregate for the interval and resets the accumulator.
// For Max/Min/Average an empty interval yields ok=false so the scope leaves
// the trace holding its previous value (sample-and-hold semantics); for the
// counting aggregates an empty interval is a legitimate zero.
func (ac *accumulator) take(a Aggregator, period time.Duration) (float64, bool) {
	ac.mu.Lock()
	count, sum, maxv, minv := ac.count, ac.sum, ac.max, ac.min
	ac.count, ac.sum, ac.max, ac.min = 0, 0, 0, 0
	ac.mu.Unlock()

	switch a {
	case AggMax:
		if count == 0 {
			return 0, false
		}
		return maxv, true
	case AggMin:
		if count == 0 {
			return 0, false
		}
		return minv, true
	case AggSum:
		return sum, true
	case AggRate:
		sec := period.Seconds()
		if sec <= 0 {
			return 0, false
		}
		return sum / sec, true
	case AggAverage:
		if count == 0 {
			return 0, false
		}
		return sum / float64(count), true
	case AggEvents:
		return float64(count), true
	case AggAnyEvent:
		if count > 0 {
			return 1, true
		}
		return 0, true
	default:
		return math.NaN(), false
	}
}

// pending reports the number of events currently accumulated (for tests and
// the stats display).
func (ac *accumulator) pending() int64 {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return ac.count
}
