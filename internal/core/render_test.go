package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/draw"
	"repro/internal/geom"
	"repro/internal/glib"
)

// fillSine pushes a sine wave into a signal's trace directly.
func fillSine(sig *Signal, n int, period float64, amp, mid float64) {
	for i := 0; i < n; i++ {
		sig.Trace().Push(mid + amp*math.Sin(2*math.Pi*float64(i)/period))
	}
}

func renderRig(t *testing.T) (*Scope, *Signal) {
	t.Helper()
	vc := glib.NewVirtualClock(epoch())
	loop := glib.NewLoop(vc)
	sc := New(loop, "render", 160, 80)
	var v IntVar
	sig, err := sc.AddSignal(Sig{Name: "s", Source: &v})
	if err != nil {
		t.Fatal(err)
	}
	return sc, sig
}

func countColor(s *draw.Surface, c draw.RGB) int {
	n := 0
	for _, p := range s.Pix {
		if p == c {
			n++
		}
	}
	return n
}

func TestSnapshotPaintsBackgroundAndGrid(t *testing.T) {
	sc, _ := renderRig(t)
	s := sc.Snapshot()
	if s.W != 160 || s.H != 80 {
		t.Fatalf("snapshot size %dx%d", s.W, s.H)
	}
	if countColor(s, draw.ScopeBG) == 0 {
		t.Fatal("no background")
	}
	if countColor(s, draw.GridGreen) == 0 {
		t.Fatal("no grid")
	}
}

func TestRenderTraceInkAppears(t *testing.T) {
	sc, sig := renderRig(t)
	fillSine(sig, 200, 40, 40, 50)
	s := sc.Snapshot()
	if countColor(s, sig.Color()) < 100 {
		t.Fatalf("trace ink too sparse: %d", countColor(s, sig.Color()))
	}
}

func TestHiddenSignalNotRendered(t *testing.T) {
	sc, sig := renderRig(t)
	fillSine(sig, 200, 40, 40, 50)
	sig.SetVisible(false)
	s := sc.Snapshot()
	if countColor(s, sig.Color()) != 0 {
		t.Fatal("hidden signal rendered")
	}
}

func TestRenderConstantSignalRow(t *testing.T) {
	// A constant signal at 50% must paint a horizontal line at mid-canvas.
	sc, sig := renderRig(t)
	for i := 0; i < 200; i++ {
		sig.Trace().Push(50)
	}
	s := sc.Snapshot()
	midY := int(math.Round(float64(80-1) * 0.5))
	row := 0
	for x := 0; x < 160; x++ {
		if s.At(x, midY) == sig.Color() {
			row++
		}
	}
	if row < 150 {
		t.Fatalf("mid row ink %d, want ~160", row)
	}
}

func TestBiasShiftsTrace(t *testing.T) {
	sc, sig := renderRig(t)
	for i := 0; i < 200; i++ {
		sig.Trace().Push(50)
	}
	sc.SetBias(25) // shift up by 25% of scale
	s := sc.Snapshot()
	upY := int(math.Round(float64(80-1) * 0.25))
	found := 0
	for x := 0; x < 160; x++ {
		if s.At(x, upY) == sig.Color() {
			found++
		}
	}
	if found < 150 {
		t.Fatalf("biased row ink %d", found)
	}
}

func TestZoomStretchesTrace(t *testing.T) {
	// At zoom 2, a value change k samples back appears 2k pixels back.
	sc, sig := renderRig(t)
	for i := 0; i < 30; i++ {
		sig.Trace().Push(10)
	}
	for i := 0; i < 10; i++ {
		sig.Trace().Push(90)
	}
	sc.SetZoom(2)
	s := sc.Snapshot()
	// The newest 10 samples occupy the rightmost 20 columns at the "90"
	// level; column W-1-25 should be at the "10" level.
	hiY := sc.mapY(sig, 90, 80)
	loY := sc.mapY(sig, 10, 80)
	if s.At(159, hiY) != sig.Color() {
		t.Fatal("right edge should show the new level")
	}
	if s.At(159-25, loY) != sig.Color() {
		t.Fatal("zoomed history should show the old level at 2px/sample")
	}
}

func TestLineModes(t *testing.T) {
	for _, mode := range []LineMode{LineSolid, LinePoints, LineFilled} {
		sc, sig := renderRig(t)
		sig.SetLine(mode)
		fillSine(sig, 200, 40, 40, 50)
		s := sc.Snapshot()
		ink := countColor(s, sig.Color())
		if ink == 0 {
			t.Fatalf("mode %v rendered nothing", mode)
		}
		if mode == LineFilled && ink < 1000 {
			t.Fatalf("filled mode too sparse: %d", ink)
		}
	}
}

func TestHolesLeaveGaps(t *testing.T) {
	sc, sig := renderRig(t)
	for i := 0; i < 80; i++ {
		sig.Trace().Push(50)
	}
	for i := 0; i < 40; i++ {
		sig.Trace().PushHole()
	}
	for i := 0; i < 40; i++ {
		sig.Trace().Push(50)
	}
	s := sc.Snapshot()
	midY := int(math.Round(float64(80-1) * 0.5))
	// Columns 40..79 from the right are holes.
	for p := 45; p < 75; p += 5 {
		if s.At(159-p, midY) == sig.Color() {
			t.Fatalf("hole column %d painted", p)
		}
	}
}

func TestFreqDomainShowsPeak(t *testing.T) {
	sc, sig := renderRig(t)
	fillSine(sig, 512, 16, 40, 50) // strong tone at bin N/16
	sc.SetDomain(FreqDomain)
	s := sc.Snapshot()
	if countColor(s, sig.Color()) == 0 {
		t.Fatal("frequency domain rendered nothing")
	}
	spec := sc.Spectrum("s")
	if spec == nil {
		t.Fatal("no spectrum")
	}
	// Expected dominant bin: FFTSize/16.
	want := sc.FFTSize() / 16
	best, bi := 0.0, -1
	for k := 1; k < len(spec); k++ {
		if spec[k] > best {
			best, bi = spec[k], k
		}
	}
	if bi < want-1 || bi > want+1 {
		t.Fatalf("dominant bin %d, want ≈%d", bi, want)
	}
}

func TestSpectrumUnknownSignal(t *testing.T) {
	sc, _ := renderRig(t)
	if sc.Spectrum("ghost") != nil {
		t.Fatal("unknown signal should have nil spectrum")
	}
}

func TestFFTSizeFitsWidth(t *testing.T) {
	sc, _ := renderRig(t)
	n := sc.FFTSize()
	if n > 160 || n*2 <= 160 && n < 1024 {
		t.Fatalf("FFTSize = %d for width 160", n)
	}
}

func TestTriggerAlignsWaveform(t *testing.T) {
	// Two renders of a drifting periodic waveform must align identically
	// when triggered (the §6 stabilization extension).
	sc, sig := renderRig(t)
	sc.SetTrigger(&Trigger{Signal: "s", Level: 50, Rising: true})
	fillSine(sig, 400, 40, 40, 50)
	s1 := sc.Snapshot()
	// Push 13 more samples (an awkward fraction of the 40-sample period):
	// untriggered, the waveform would shift 13px; triggered, it re-aligns.
	for i := 0; i < 13; i++ {
		sig.Trace().Push(50 + 40*math.Sin(2*math.Pi*float64(400+i)/40))
	}
	s2 := sc.Snapshot()
	diff := 0
	for i := range s1.Pix {
		if s1.Pix[i] != s2.Pix[i] {
			diff++
		}
	}
	// Allow a sliver of difference at the right edge (new columns beyond
	// the trigger point).
	if diff > s1.W*s1.H/20 {
		t.Fatalf("triggered frames differ in %d px", diff)
	}
}

func TestTriggerOffsetFalling(t *testing.T) {
	sc, sig := renderRig(t)
	sc.SetTrigger(&Trigger{Signal: "s", Level: 50, Rising: false})
	// Rising then falling through 50.
	sig.Trace().Push(20)
	sig.Trace().Push(80) // rising crossing
	sig.Trace().Push(30) // falling crossing (back=0)
	if got := sc.triggerOffset(); got != 0 {
		t.Fatalf("falling trigger offset = %d, want 0", got)
	}
	sc.SetTrigger(&Trigger{Signal: "s", Level: 50, Rising: true})
	if got := sc.triggerOffset(); got != 1 {
		t.Fatalf("rising trigger offset = %d, want 1", got)
	}
	sc.SetTrigger(&Trigger{Signal: "ghost", Level: 50, Rising: true})
	if got := sc.triggerOffset(); got != -1 {
		t.Fatalf("unknown trigger signal offset = %d, want -1", got)
	}
	sc.SetTrigger(nil)
	if got := sc.triggerOffset(); got != -1 {
		t.Fatalf("disabled trigger offset = %d", got)
	}
}

func TestEnvelopeRendersBand(t *testing.T) {
	sc, sig := renderRig(t)
	sig.SetEnvelope(40)
	fillSine(sig, 400, 40, 40, 50)
	s := sc.Snapshot()
	band := sig.Color().Blend(draw.ScopeBG, 0.75)
	if countColor(s, band) < 500 {
		t.Fatalf("envelope band too sparse: %d", countColor(s, band))
	}
	sig.SetEnvelope(-3)
	if sig.Envelope() != 0 {
		t.Fatal("negative envelope should clamp to 0")
	}
}

func TestRenderEmptyRectSafe(t *testing.T) {
	sc, _ := renderRig(t)
	s := draw.NewSurface(10, 10)
	sc.Render(s, geom.Rect{}) // must not panic
}

func TestRenderRestoresClip(t *testing.T) {
	sc, _ := renderRig(t)
	s := draw.NewSurface(300, 200)
	s.SetClip(geom.XYWH(0, 0, 300, 200))
	sc.Render(s, geom.XYWH(10, 10, 160, 80))
	if s.Clip() != geom.XYWH(0, 0, 300, 200) {
		t.Fatalf("clip not restored: %v", s.Clip())
	}
}

func TestMapYRange(t *testing.T) {
	sc, sig := renderRig(t)
	if y := sc.mapY(sig, 0, 100); y != 99 {
		t.Fatalf("mapY(min) = %d, want 99", y)
	}
	if y := sc.mapY(sig, 100, 100); y != 0 {
		t.Fatalf("mapY(max) = %d, want 0", y)
	}
	if y := sc.mapY(sig, 50, 100); y != 50 && y != 49 {
		t.Fatalf("mapY(mid) = %d", y)
	}
}

func TestScopeMinimumSize(t *testing.T) {
	vc := glib.NewVirtualClock(epoch())
	loop := glib.NewLoop(vc)
	sc := New(loop, "tiny", 1, 1)
	w, h := sc.Size()
	if w < 16 || h < 16 {
		t.Fatalf("size not clamped: %dx%d", w, h)
	}
}

func TestRenderDuringLivePolling(t *testing.T) {
	vc := glib.NewVirtualClock(epoch())
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	sc := New(loop, "live", 120, 60)
	var v IntVar
	sig, _ := sc.AddSignal(Sig{Name: "v", Source: &v, Max: 10})
	sc.SetPollingMode(10 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	for i := 0; i < 150; i++ {
		v.Store(int64(i % 10))
		loop.Advance(10 * time.Millisecond)
	}
	s := sc.Snapshot()
	if countColor(s, sig.Color()) == 0 {
		t.Fatal("live trace rendered nothing")
	}
}

func TestRenderDecimatedZoomedOut(t *testing.T) {
	// At zoom < 1 the sweep covers more samples than pixels; the decimated
	// path must still ink the trace, and with history enabled it reaches
	// samples far beyond the hot ring.
	sc, sig := renderRig(t)
	sig.Trace().EnableHistory(1 << 16)
	fillSine(sig, 20000, 40, 40, 50)
	sc.SetZoom(0.125) // 160px × 8 samples/px = 1280-sample window
	s := sc.Snapshot()
	if countColor(s, sig.Color()) == 0 {
		t.Fatal("decimated render inked nothing")
	}
	// The min/max band color must appear too: a sine at 8 samples/column
	// always spans more than one pixel vertically.
	band := sig.Color().Blend(draw.ScopeBG, 0.5)
	if countColor(s, band) == 0 {
		t.Fatal("decimated render drew no min/max band")
	}
}

func TestRenderDecimatedRespectsLineModes(t *testing.T) {
	sc, sig := renderRig(t)
	fillSine(sig, 4000, 40, 40, 50)
	sc.SetZoom(0.25)
	for _, m := range []LineMode{LineSolid, LinePoints, LineFilled} {
		sig.SetLine(m)
		s := sc.Snapshot()
		if countColor(s, sig.Color()) == 0 {
			t.Fatalf("line mode %v inked nothing at zoom<1", m)
		}
	}
}

func TestSetHistoryRetentionAppliesToSignals(t *testing.T) {
	sc, sig := renderRig(t)
	sc.SetHistoryRetention(1 << 12)
	if sig.Trace().History() == nil {
		t.Fatal("existing signal did not gain history")
	}
	var v2 IntVar
	sig2, err := sc.AddSignal(Sig{Name: "s2", Source: &v2})
	if err != nil {
		t.Fatal(err)
	}
	if sig2.Trace().History() == nil {
		t.Fatal("new signal did not gain history")
	}
	if sc.HistoryRetention() != 1<<12 {
		t.Fatalf("HistoryRetention = %d", sc.HistoryRetention())
	}
	sc.SetHistoryRetention(0)
	if sig.Trace().History() != nil {
		t.Fatal("disable did not detach history")
	}
}
