package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParamSetConcurrentStress is the -race regression test for the
// network control plane: remote sets race application gets, list
// enumeration, add/remove churn and observer registration, all through the
// registry, which must serialize every callback invocation.
func TestParamSetConcurrentStress(t *testing.T) {
	ps := NewParamSet()
	const fixed = 8
	vars := make([]IntVar, fixed)
	for i := range vars {
		if err := ps.Add(IntParam(fmt.Sprintf("p%d", i), &vars[i], 0, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	// A closure param over a plain variable: only safe because the
	// registry serializes Get/Set under its lock.
	var plain float64
	if err := ps.Add(&Param{
		Name: "plain",
		Get:  func() float64 { return plain },
		Set:  func(v float64) { plain = v },
		Min:  0, Max: 500,
	}); err != nil {
		t.Fatal(err)
	}

	var notified atomic.Int64
	remove := ps.Observe(func(name string, v float64) { notified.Add(1) })
	defer remove()

	const iters = 400
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		g := g
		worker(func(i int) { // setters (the "network" side)
			name := fmt.Sprintf("p%d", (g+i)%fixed)
			if err := ps.Set(name, float64(i*7)); err != nil {
				t.Error(err)
			}
			if err := ps.Set("plain", float64(i)); err != nil {
				t.Error(err)
			}
		})
		worker(func(i int) { // getters (the "application" side)
			if _, err := ps.Get(fmt.Sprintf("p%d", (g+i)%fixed)); err != nil {
				t.Error(err)
			}
		})
	}
	worker(func(i int) { // enumeration
		infos := ps.Infos()
		for _, in := range infos {
			if in.Value < 0 {
				t.Errorf("negative snapshot %+v", in)
			}
		}
		ps.Names()
	})
	worker(func(i int) { // add/remove churn on a disjoint name
		name := fmt.Sprintf("churn%d", i%3)
		var v IntVar
		ps.Add(IntParam(name, &v, 0, 10)) //nolint:errcheck // duplicate adds expected
		ps.Remove(name)
	})
	worker(func(i int) { // observer churn
		rm := ps.Observe(func(string, float64) {})
		rm()
	})
	wg.Wait()

	if notified.Load() == 0 {
		t.Fatal("observer never notified")
	}
	// Clamping held under concurrency.
	if plain > 500 {
		t.Fatalf("plain escaped its bound: %v", plain)
	}
}

func TestParamSetObserverSeesClampedValue(t *testing.T) {
	ps := NewParamSet()
	var v IntVar
	if err := ps.Add(IntParam("knob", &v, 0, 10)); err != nil {
		t.Fatal(err)
	}
	var gotName string
	var gotVal float64
	remove := ps.Observe(func(name string, val float64) { gotName, gotVal = name, val })
	if err := ps.Set("knob", 99); err != nil {
		t.Fatal(err)
	}
	if gotName != "knob" || gotVal != 10 {
		t.Fatalf("observer saw %q=%v, want knob=10 (clamped)", gotName, gotVal)
	}
	if v.Load() != 10 {
		t.Fatalf("var = %d, want 10", v.Load())
	}
	remove()
	if err := ps.Set("knob", 3); err != nil {
		t.Fatal(err)
	}
	if gotVal != 10 {
		t.Fatal("removed observer still notified")
	}
}

func TestParamSetInfo(t *testing.T) {
	ps := NewParamSet()
	var v FloatVar
	if err := ps.Add(FloatParam("gain", &v, -1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ps.Add(&Param{Name: "ro", Get: func() float64 { return 7 }}); err != nil {
		t.Fatal(err)
	}
	in, err := ps.Info("gain")
	if err != nil {
		t.Fatal(err)
	}
	if in.Min != -1 || in.Max != 1 || in.ReadOnly {
		t.Fatalf("info = %+v", in)
	}
	if in, err = ps.Info("ro"); err != nil || !in.ReadOnly || in.Value != 7 {
		t.Fatalf("ro info = %+v err=%v", in, err)
	}
	if _, err := ps.Info("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	infos := ps.Infos()
	if len(infos) != 2 || infos[0].Name != "gain" || infos[1].Name != "ro" {
		t.Fatalf("infos = %+v", infos)
	}
}
