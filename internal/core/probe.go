package core

import (
	"sync/atomic"
	"time"

	"repro/internal/tuple"
)

// Probe staging-ring geometry. The ring is the write-combining buffer
// between one recording goroutine and the feed: 256 slots of 16 bytes keep
// it cache-resident, publication every 32 samples (or 1 ms of stream time,
// whichever first) amortizes the one atomic store a cross-goroutine
// hand-off fundamentally costs, and a full ring self-flushes into the
// pinned shard under a single lock — so the steady-state record is plain
// stores: no hash, no lock, no allocation.
const (
	probeRingSize      = 256
	probePublishEvery  = 32
	probePublishSpanNs = int64(time.Millisecond)
)

// probeSample is one staged sample: the caller's full-precision timestamp
// (nanoseconds, for the late check) and the value. Truncation to the
// millisecond wire granularity happens when the sample leaves the ring.
type probeSample struct {
	at int64
	v  float64
}

// Probe is a pre-registered publish handle for one BUFFER signal — the
// redesigned instrumentation hot path. Registration (Feed.Probe,
// Scope.Probe, or the gscope Registry) interns the name, validates it
// once, and pins the signal's shard; RecordAt then costs a handful of
// plain stores into a single-producer staging ring. Drains steal published
// samples under the shard lock, so everything a drain returns is exactly
// what the string-keyed Push path would have produced — same tuples, same
// late-data rule, same ordering guarantees.
//
// # Single producer
//
// A Probe is a SINGLE-PRODUCER handle: Record/RecordAt must not be called
// concurrently from multiple goroutines (the race detector will flag it).
// Give each producing goroutine its own probe (distinct signal names), or
// use the locked, thread-safe Feed.PushID path for a shared signal.
//
// # Visibility
//
// Records become visible to drains in publication batches: after at most
// probePublishEvery samples, after the staged span exceeds 1 ms of stream
// time, or on Flush. A producer that records continuously therefore never
// delays a sample by more than 1 ms of its own timeline — far inside any
// display delay — but a producer that stops mid-burst can leave its last
// few samples staged; call Flush (from the producing goroutine) before
// pausing or shutting down.
type Probe struct {
	sh   *feedShard
	name string
	id   tuple.SignalID
	now  func() time.Duration // Record's clock

	ring []probeSample
	mask uint64

	// Producer-owned plain state.
	wtail uint64 // next slot to write
	pub   uint64 // last published wtail
	pubAt int64  // stream time (ns) of the last publication

	_ [4]uint64 // keep the producer-written tail off the consumer's line
	// Shared ring cursors: tail is published by the producer (release),
	// head advanced by whoever holds the shard lock while stealing.
	tail atomic.Uint64
	_    [7]uint64
	head atomic.Uint64
	_    [7]uint64
	late atomic.Int64 // record-time late rejections
}

// Name returns the probe's canonical signal name.
func (p *Probe) Name() string { return p.name }

// ID returns the signal's dense ID in the feed's interner.
func (p *Probe) ID() tuple.SignalID { return p.id }

// Recorded returns the number of samples published so far (staged-but-
// unpublished samples are not yet counted; see Flush).
func (p *Probe) Recorded() int64 { return int64(p.tail.Load()) }

// Late returns the number of samples rejected at record time for arriving
// after their display window.
func (p *Probe) Late() int64 { return p.late.Load() }

// RecordAt enqueues one sample stamped at the given offset on the feed's
// timeline, with the caller's full sub-millisecond precision. It returns
// false when the sample arrived too late (its window has already been
// displayed) and was dropped. It is the zero-allocation hot path: a
// lock-free late check, two plain stores, and an amortized publication.
// Single producer only — see the type comment.
//
//gscope:hotpath
func (p *Probe) RecordAt(at time.Duration, v float64) bool {
	if lim := p.sh.limNs.Load(); lim != 0 && int64(at) < lim {
		p.late.Add(1)
		return false
	}
	t := p.wtail
	if t-p.head.Load() >= uint64(len(p.ring)) {
		return p.recordFull(at, v)
	}
	p.ring[t&p.mask] = probeSample{at: int64(at), v: v}
	p.wtail = t + 1
	if p.wtail-p.pub >= probePublishEvery || int64(at)-p.pubAt >= probePublishSpanNs {
		p.pub = p.wtail
		p.pubAt = int64(at)
		p.tail.Store(p.wtail)
	}
	return true
}

// Record enqueues v stamped with the probe's clock: the owning scope's
// elapsed time for Scope/Registry probes, time since feed creation for
// bare Feed probes.
//
//gscope:hotpath
func (p *Probe) Record(v float64) bool {
	return p.RecordAt(p.now(), v) //gscope:allow hotpath the clock indirection is one static call bound at registration
}

// recordFull is the ring-overflow path: publish everything, absorb the
// ring into the shard under its lock (the lock is what makes the producer
// a legitimate consumer here), and retry on the now-empty ring. Reached
// once per probeRingSize samples at worst, so the amortized cost is a
// fraction of a lock acquisition per sample.
//
//gscope:hotpath
func (p *Probe) recordFull(at time.Duration, v float64) bool {
	p.pub = p.wtail
	p.pubAt = int64(at)
	p.tail.Store(p.wtail)
	p.sh.mu.Lock()
	p.sh.stealProbeLocked(p)
	p.sh.mu.Unlock()
	return p.RecordAt(at, v)
}

// Flush publishes any staged samples so the next drain sees them. Like
// Record, it must be called from the producing goroutine; use it before
// the producer pauses or exits.
//
//gscope:hotpath
func (p *Probe) Flush() {
	if p.wtail != p.pub {
		p.pub = p.wtail
		p.tail.Store(p.wtail)
	}
}

// stealProbeLocked absorbs the published portion of p's ring into the
// shard backlog, applying the late-data rule at the samples' full
// precision. Caller holds s.mu, which serializes all stealers (drains and
// the producer's own overflow flush), so the ring sees one consumer at a
// time.
//
//gscope:hotpath
func (s *feedShard) stealProbeLocked(p *Probe) {
	h, t := p.head.Load(), p.tail.Load()
	if h == t {
		return
	}
	for ; h < t; h++ {
		smp := p.ring[h&p.mask]
		s.pushed++
		at := time.Duration(smp.at)
		if s.started && at <= s.displayed {
			s.dropped++
			continue
		}
		tu := tuple.Tuple{Time: smp.at / int64(time.Millisecond), Value: smp.v, Name: p.name}
		s.buf = append(s.buf, tu)
		s.note(&tu)
	}
	p.head.Store(t)
}

// stealLocked absorbs every probe ring pinned to the shard. Caller holds
// s.mu.
//
//gscope:hotpath
func (s *feedShard) stealLocked() {
	for _, p := range s.probes {
		s.stealProbeLocked(p)
	}
}

// Interner exposes the feed's signal-name interner: the shared name space
// behind Probe handles and the PushID fast paths.
func (f *Feed) Interner() *tuple.Interner {
	f.regMu.Lock()
	defer f.regMu.Unlock()
	return f.internerLocked()
}

//gscope:locked regMu
func (f *Feed) internerLocked() *tuple.Interner {
	if f.interner == nil {
		f.interner = tuple.NewInterner()
	}
	return f.interner
}

// Register interns a signal name, pins its shard, and returns its dense
// SignalID for use with PushID/PushIDBatch. Registering the same name
// again returns the same ID. The shard is the same one the string-keyed
// Push hashes to, so both APIs can feed one signal without breaking its
// ordering. Names the wire format cannot carry are rejected (see
// tuple.ValidateName).
func (f *Feed) Register(name string) (tuple.SignalID, error) {
	f.regMu.Lock()
	defer f.regMu.Unlock()
	return f.registerLocked(name)
}

//gscope:locked regMu
func (f *Feed) registerLocked(name string) (tuple.SignalID, error) {
	id, err := f.internerLocked().Intern(name)
	if err != nil {
		return tuple.NoSignal, err
	}
	regs := f.regs.Load()
	var cur []feedReg
	if regs != nil {
		cur = *regs
	}
	if int(id) < len(cur) && cur[id].sh != nil {
		return id, nil
	}
	// Copy-on-write: extend an id-indexed snapshot, filling any gaps from
	// names interned directly through Interner() but never registered.
	next := make([]feedReg, int(id)+1)
	copy(next, cur)
	canonical := f.interner.Name(id)
	next[id] = feedReg{sh: &f.shards[shardIndex(canonical)], name: canonical}
	f.regs.Store(&next)
	return id, nil
}

// lookupReg resolves a registered SignalID with one atomic load.
//
//gscope:hotpath
func (f *Feed) lookupReg(id tuple.SignalID) (feedReg, bool) {
	regs := f.regs.Load()
	if regs == nil || id < 0 || int(id) >= len(*regs) {
		return feedReg{}, false
	}
	r := (*regs)[id]
	return r, r.sh != nil
}

// PushID is Push keyed by a pre-registered SignalID: the shard was pinned
// and the name validated at registration, so the per-sample cost is one
// atomic snapshot load, one lock, one append — no hashing. It is safe for
// concurrent use from any goroutine (unlike a Probe, which trades that for
// an even cheaper single-producer path). IDs the feed has never seen are
// dropped (returning false).
//
//gscope:hotpath
func (f *Feed) PushID(id tuple.SignalID, at time.Duration, v float64) bool {
	r, ok := f.lookupReg(id)
	if !ok {
		if r, ok = f.ensureReg(id); !ok { //gscope:allow hotpath one-time lazy registration on the first miss for an ID
			return false
		}
	}
	return r.sh.push(tuple.Tuple{Time: at.Milliseconds(), Value: v, Name: r.name}, at)
}

// ensureReg lazily registers an ID that was interned through Interner()
// but never passed to Register, and reports whether the ID is known at
// all.
func (f *Feed) ensureReg(id tuple.SignalID) (feedReg, bool) {
	f.regMu.Lock()
	in := f.internerLocked()
	known := id >= 0 && int(id) < in.Len()
	if known {
		f.registerLocked(in.Name(id)) //nolint:errcheck // interned names are pre-validated
	}
	f.regMu.Unlock()
	if !known {
		return feedReg{}, false
	}
	return f.lookupReg(id)
}

// PushIDBatch enqueues a run of samples of one registered signal under a
// single lock acquisition — the batch counterpart of PushID and the shape
// a batching publisher hands the feed. It returns how many samples were
// accepted (the rest arrived late and were dropped). IDs the feed has
// never seen drop the whole batch.
//
//gscope:hotpath
func (f *Feed) PushIDBatch(id tuple.SignalID, samples []tuple.Sample) int {
	if len(samples) == 0 {
		return 0
	}
	r, ok := f.lookupReg(id)
	if !ok {
		if r, ok = f.ensureReg(id); !ok { //gscope:allow hotpath one-time lazy registration on the first miss for an ID
			return 0
		}
	}
	return r.sh.pushSamples(r.name, samples)
}

// pushSamples appends a run of samples for one signal under one lock.
//
//gscope:hotpath
func (s *feedShard) pushSamples(name string, samples []tuple.Sample) int {
	s.mu.Lock()
	s.pushed += int64(len(samples))
	accepted := 0
	for i := range samples {
		at := samples[i].At
		if s.started && at <= s.displayed {
			s.dropped++
			continue
		}
		tu := tuple.Tuple{Time: at.Milliseconds(), Value: samples[i].Value, Name: name}
		s.buf = append(s.buf, tu)
		s.note(&tu)
		accepted++
	}
	s.mu.Unlock()
	return accepted
}

// Probe registers name (see Register) and returns its single-producer
// publish handle. Calling Probe again with the same name returns the SAME
// handle — the single-producer contract is per signal, so hand each
// concurrent producer its own signal or use PushID. Record's clock binds
// when the handle is first created (the scope's clock through Scope.Probe,
// wall time since feed creation here) and never changes afterwards: a
// re-registration must not mutate a handle another goroutine may be
// recording on.
func (f *Feed) Probe(name string) (*Probe, error) {
	return f.probe(name, nil)
}

// probe creates or returns the handle for name; now, when non-nil, is the
// Record clock for a NEWLY created handle (existing handles keep theirs).
func (f *Feed) probe(name string, now func() time.Duration) (*Probe, error) {
	f.regMu.Lock()
	defer f.regMu.Unlock()
	if p := f.probes[name]; p != nil {
		return p, nil
	}
	id, err := f.registerLocked(name)
	if err != nil {
		return nil, err
	}
	r := (*f.regs.Load())[id]
	p := &Probe{
		sh:   r.sh,
		name: r.name,
		id:   id,
		ring: make([]probeSample, probeRingSize),
		mask: probeRingSize - 1,
		now:  now,
	}
	if p.now == nil {
		origin := f.origin
		if origin.IsZero() {
			origin = time.Now()
		}
		p.now = func() time.Duration { return time.Since(origin) }
	}
	r.sh.mu.Lock()
	r.sh.probes = append(r.sh.probes, p)
	r.sh.mu.Unlock()
	if f.probes == nil {
		f.probes = make(map[string]*Probe)
	}
	f.probes[r.name] = p
	return p, nil
}
