package core
