package core

// Structured fuzzing over the ingest side: generated tuple batches (with
// skewed per-signal clocks) pushed through the sharded Feed in arbitrary
// splits with drains interleaved, and the tiered TimedHistory queried at
// hostile since/cols combinations. The invariants are the ones the
// display and backfill layers lean on: drains are time-ordered and never
// exceed the watermark, nothing accepted is ever lost, and a backfill
// view is bounded and time-ordered whatever the query.

import (
	"testing"
	"time"

	"repro/internal/fuzzgen"
)

// drainAll is a watermark safely past every generated timestamp
// (fuzzgen bounds tuple times at 2^40 ms).
const drainAll = time.Duration(1<<42) * time.Millisecond

// FuzzFeedBatchDrain: random batch splits + interleaved drains through
// Feed.PushBatch/TakeBatch. Every drained batch is time-sorted and at or
// under its watermark, and the total drained equals the total accepted.
func FuzzFeedBatchDrain(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("split me into batches"))
	f.Add([]byte{0xff, 0x00, 0x13, 0x37, 0xff, 0xff, 0x42, 0x42, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		ts := src.Tuples(512, false)
		feed := NewFeed()
		var accepted, drained int64
		var lastWatermark time.Duration

		drainUpTo := func(upTo time.Duration) {
			if upTo < lastWatermark {
				upTo = lastWatermark
			}
			lastWatermark = upTo
			out := feed.TakeBatch(upTo)
			drained += int64(len(out))
			for i, tu := range out {
				if tu.Timestamp() > upTo {
					t.Fatalf("drained tuple %+v past watermark %s", tu, upTo)
				}
				if i > 0 && tu.Time < out[i-1].Time {
					t.Fatalf("drain not time-sorted: %d after %d", tu.Time, out[i-1].Time)
				}
			}
		}

		for i := 0; i < len(ts); {
			n := 1 + src.Intn(64)
			if i+n > len(ts) {
				n = len(ts) - i
			}
			accepted += int64(feed.PushBatch(ts[i : i+n]))
			i += n
			if src.Intn(4) == 0 {
				drainUpTo(time.Duration(src.Int63n(1<<41)) * time.Millisecond)
			}
		}
		// A final full drain must account for every accepted tuple: the
		// feed may drop late arrivals (excluded from accepted) but never
		// lose what it accepted.
		drainUpTo(drainAll)
		if drained != accepted {
			t.Fatalf("conservation violated: accepted %d, drained %d", accepted, drained)
		}
		if rest := feed.TakeBatch(drainAll); len(rest) != 0 {
			t.Fatalf("feed not empty after full drain: %d left", len(rest))
		}
	})
}

// FuzzTimedHistoryView: arbitrary push sequences and hostile queries
// (since far outside the retained window, cols up to 2^30) against the
// backfill store. Views are bounded by cols, time-ordered, and never
// stamped past the newest sample; allocation is bounded by retention
// regardless of the requested cols.
func FuzzTimedHistoryView(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("push some samples then query"))
	f.Add([]byte{1, 0, 255, 17, 4, 4, 4, 4, 4, 4, 4, 4, 99, 99})
	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		th := NewTimedHistory(1 + src.Intn(2048))
		n := src.Intn(600)
		clock := src.Int63n(1 << 40)
		for i := 0; i < n; i++ {
			if src.Intn(8) == 0 {
				clock -= src.Int63n(10000) // skewed publisher clock
			} else {
				clock += src.Int63n(200)
			}
			th.Push(clock, src.Float())
		}
		newest, seen := th.Newest()
		if seen != (n > 0) {
			t.Fatalf("Newest seen=%v after %d pushes", seen, n)
		}

		colChoices := []int{0, 1, 3, 17, 512, 1 << 30}
		for q := 0; q < 4; q++ {
			since := src.Int63n(1<<41) - (1 << 40)
			cols := colChoices[src.Intn(len(colChoices))]
			view := th.ViewSince(since, cols)
			if cols <= 0 && view != nil {
				t.Fatalf("cols=%d returned %d buckets", cols, len(view))
			}
			if len(view) > cols {
				t.Fatalf("view has %d buckets for cols=%d", len(view), cols)
			}
			for i, b := range view {
				if i > 0 && b.Time < view[i-1].Time {
					t.Fatalf("view not time-ordered: %d after %d", b.Time, view[i-1].Time)
				}
				if b.Time > newest {
					t.Fatalf("bucket stamped %d past newest %d", b.Time, newest)
				}
				if b.Count > 0 && b.Min > b.Max {
					t.Fatalf("bucket envelope inverted: min %v > max %v", b.Min, b.Max)
				}
			}
		}
	})
}
