package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/glib"
)

// Property: regardless of how events are split across goroutine pushes and
// polling intervals, AggSum over all intervals equals the total of all
// events, and AggEvents sums to the event count (conservation).
func TestAggregationConservation(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func() bool {
		sc, _, _ := rig2(r)
		sum, _ := sc.AddSignal(Sig{Name: "sum", Agg: AggSum})
		cnt, _ := sc.AddSignal(Sig{Name: "cnt", Agg: AggEvents})
		sc.SetPollingMode(10 * time.Millisecond) //nolint:errcheck

		total := 0.0
		n := 0
		rounds := 1 + r.Intn(8)
		for i := 0; i < rounds; i++ {
			events := r.Intn(6)
			for e := 0; e < events; e++ {
				v := float64(r.Intn(100))
				sc.Event("sum", v)
				sc.Event("cnt", v)
				total += v
				n++
			}
			sc.Step(r.Intn(3)) // arbitrary lost ticks must not lose events
		}
		sc.Step(0) // flush any tail

		gotSum, gotCnt := 0.0, 0.0
		for back := 0; back < sum.Trace().Len(); back++ {
			if v, ok := sum.Trace().At(back); ok {
				gotSum += v
			}
		}
		for back := 0; back < cnt.Trace().Len(); back++ {
			if v, ok := cnt.Trace().At(back); ok {
				gotCnt += v
			}
		}
		return gotSum == total && int(gotCnt) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// rig2 builds a scope on a fresh virtual loop for property tests.
func rig2(r *rand.Rand) (*Scope, *glib.Loop, *glib.VirtualClock) {
	vc := glib.NewVirtualClock(time.Unix(int64(r.Intn(10000)), 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	return New(loop, "prop", 64, 32), loop, vc
}

// Property: AggMax ≥ AggAverage ≥ AggMin within any single interval.
func TestAggregationOrderingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	f := func() bool {
		sc, _, _ := rig2(r)
		mx, _ := sc.AddSignal(Sig{Name: "max", Agg: AggMax})
		mn, _ := sc.AddSignal(Sig{Name: "min", Agg: AggMin})
		av, _ := sc.AddSignal(Sig{Name: "avg", Agg: AggAverage})
		sc.SetPollingMode(10 * time.Millisecond) //nolint:errcheck
		events := 1 + r.Intn(10)
		for e := 0; e < events; e++ {
			v := r.Float64()*200 - 100
			sc.Event("max", v)
			sc.Event("min", v)
			sc.Event("avg", v)
		}
		sc.Step(0)
		vMax, ok1 := mx.Trace().At(0)
		vMin, ok2 := mn.Trace().At(0)
		vAvg, ok3 := av.Trace().At(0)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		return vMax >= vAvg-1e-9 && vAvg >= vMin-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the low-pass filter output always lies between the running
// min and max of its inputs (stability / no overshoot), for any α in
// [0,1].
func TestFilterBoundedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func() bool {
		alpha := r.Float64()
		s := &Signal{alpha: alpha}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			x := r.Float64()*2000 - 1000
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			y := s.filter(x)
			if y < lo-1e-9 || y > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: filter with α converges toward a constant input
// geometrically: after k steps the error shrinks by α^k.
func TestFilterConvergesToConstant(t *testing.T) {
	s := &Signal{alpha: 0.9}
	s.filter(0) // seed
	var y float64
	for i := 0; i < 200; i++ {
		y = s.filter(100)
	}
	if math.Abs(y-100) > 1e-4 {
		t.Fatalf("filter did not converge: %v", y)
	}
}

// Property: slots == polls + lostTicks regardless of the missed-tick
// pattern, and each unbuffered signal's trace grows by exactly the slot
// count (§4.5 compensation invariant).
func TestSweepCompensationInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	f := func() bool {
		sc, _, _ := rig2(r)
		var v IntVar
		sig, _ := sc.AddSignal(Sig{Name: "v", Source: &v})
		sc.SetPollingMode(10 * time.Millisecond) //nolint:errcheck
		for i := 0; i < 20; i++ {
			sc.Step(r.Intn(5))
		}
		st := sc.Stats()
		if st.Slots != st.Polls+st.LostTicks {
			return false
		}
		return sig.Trace().Total() == st.Slots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: mapY is monotonically non-increasing in the value (larger
// values plot higher, i.e. smaller y), for any range and bias.
func TestMapYMonotonicProperty(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	f := func() bool {
		sc, _, _ := rig2(r)
		var v IntVar
		sig, _ := sc.AddSignal(Sig{Name: "v", Source: &v})
		lo := r.Float64()*100 - 50
		hi := lo + 1 + r.Float64()*100
		sig.SetRange(lo, hi)
		sc.SetBias(r.Float64()*200 - 100)
		h := 50 + r.Intn(200)
		prevY := math.MaxInt32
		for step := 0; step <= 20; step++ {
			val := lo + (hi-lo)*float64(step)/20
			y := sc.mapY(sig, val, h)
			if y > prevY {
				return false
			}
			prevY = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: buffered delivery respects the delay for any combination of
// delay and polling period: nothing with timestamp above now-delay is
// ever displayed.
func TestBufferedDelayInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	f := func() bool {
		sc, loop, _ := rig2(r)
		sig, _ := sc.AddSignal(Sig{Name: "b", Kind: KindBuffer, Max: 1 << 20})
		period := time.Duration(10+r.Intn(50)) * time.Millisecond
		delay := time.Duration(r.Intn(200)) * time.Millisecond
		sc.SetDelay(delay)
		sc.SetPollingMode(period) //nolint:errcheck
		sc.StartPolling()         //nolint:errcheck

		// Push samples whose value encodes their timestamp in ms.
		for i := 0; i < 30; i++ {
			at := time.Duration(r.Intn(2000)) * time.Millisecond
			sc.Push(at, "b", float64(at.Milliseconds()))
		}
		horizon := time.Duration(500+r.Intn(1500)) * time.Millisecond
		loop.Advance(horizon)

		limit := float64((sc.Elapsed() - delay).Milliseconds())
		for back := 0; back < sig.Trace().Len(); back++ {
			if v, ok := sig.Trace().At(back); ok && v > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
