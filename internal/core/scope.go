package core

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/draw"
	"repro/internal/glib"
	"repro/internal/tuple"
)

// Mode is the scope acquisition mode (§3.1): polling acquires signals from
// the running program; playback replays a recorded tuple stream.
type Mode int

// Acquisition modes.
const (
	ModeStopped Mode = iota
	ModePolling
	ModePlayback
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeStopped:
		return "stopped"
	case ModePolling:
		return "polling"
	case ModePlayback:
		return "playback"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Domain selects the display representation: signals can be viewed in the
// time or the frequency domain (§1).
type Domain int

// Display domains.
const (
	TimeDomain Domain = iota
	FreqDomain
)

// String names the domain.
func (d Domain) String() string {
	if d == FreqDomain {
		return "frequency"
	}
	return "time"
}

// Trigger stabilizes repeating waveforms by aligning the sweep to a level
// crossing of one signal — an oscilloscope feature the paper lists as
// future work (§6) and this reproduction implements as an extension.
type Trigger struct {
	// Signal names the trigger source.
	Signal string
	// Level is the crossing threshold in signal units.
	Level float64
	// Rising selects the slope: true triggers on upward crossings.
	Rising bool
}

// DefaultPeriod is the paper's example polling period (Figure 6 polls every
// 50 ms).
const DefaultPeriod = 50 * time.Millisecond

// Signal is the runtime state of one displayed signal (the paper's
// GtkScopeSignal object, created by the library for each GtkScopeSig the
// application registers).
type Signal struct {
	scope *Scope
	spec  Sig
	kind  Kind
	color draw.RGB
	min   float64
	max   float64
	line  LineMode
	alpha float64

	visible   bool
	showValue bool // the paper's per-signal "Value" button state

	filterY    float64
	filterInit bool

	trace *Trace
	acc   accumulator
	last  FloatVar
	holds bool // whether last holds a real sample yet

	// Envelope extension: rolling min/max band over envWindow samples.
	envWindow int

	samples int64
	holes   int64
}

// Name returns the signal name.
func (s *Signal) Name() string { return s.spec.Name }

// Kind returns the resolved signal kind.
func (s *Signal) Kind() Kind { return s.kind }

// Color returns the trace color.
func (s *Signal) Color() draw.RGB { return s.color }

// SetColor changes the trace color.
func (s *Signal) SetColor(c draw.RGB) { s.color = c }

// Range returns the displayed min/max mapping.
func (s *Signal) Range() (minVal, maxVal float64) { return s.min, s.max }

// SetRange changes the displayed min/max mapping; it is ignored unless
// maxVal > minVal.
func (s *Signal) SetRange(minVal, maxVal float64) {
	if maxVal > minVal {
		s.min, s.max = minVal, maxVal
	}
}

// Line returns the line mode.
func (s *Signal) Line() LineMode { return s.line }

// SetLine changes the line mode.
func (s *Signal) SetLine(m LineMode) { s.line = m }

// Visible reports whether the trace is displayed.
func (s *Signal) Visible() bool { return s.visible }

// SetVisible shows or hides the trace (the paper toggles this by
// left-clicking the signal name).
func (s *Signal) SetVisible(v bool) { s.visible = v }

// ToggleVisible flips visibility and returns the new state.
func (s *Signal) ToggleVisible() bool {
	s.visible = !s.visible
	return s.visible
}

// ShowValue reports whether the continuous value display is on.
func (s *Signal) ShowValue() bool { return s.showValue }

// SetShowValue enables the continuous value display (the Value button).
func (s *Signal) SetShowValue(v bool) { s.showValue = v }

// FilterAlpha returns the low-pass filter coefficient.
func (s *Signal) FilterAlpha() float64 { return s.alpha }

// SetFilterAlpha changes the low-pass α; values outside [0,1] are clamped.
// Setting α also resets the filter state so the next sample re-seeds it.
func (s *Signal) SetFilterAlpha(a float64) {
	if a < 0 {
		a = 0
	}
	if a > 1 {
		a = 1
	}
	s.alpha = a
	s.filterInit = false
}

// SetEnvelope enables the waveform-envelope extension with a rolling window
// of n samples (0 disables).
func (s *Signal) SetEnvelope(n int) {
	if n < 0 {
		n = 0
	}
	s.envWindow = n
}

// Envelope returns the envelope window (0 when disabled).
func (s *Signal) Envelope() int { return s.envWindow }

// Value returns the most recent sampled value (what the paper's Value
// button displays). It is safe to call from any goroutine.
func (s *Signal) Value() float64 { return s.last.Load() }

// Trace exposes the displayed sample history.
func (s *Signal) Trace() *Trace { return s.trace }

// Probe returns the publish handle for a BUFFER signal (see Scope.Probe).
func (s *Signal) Probe() (*Probe, error) { return s.scope.Probe(s.spec.Name) }

// Spec returns a copy of the registering specification.
func (s *Signal) Spec() Sig { return s.spec }

// filter applies the paper's low-pass y[i] = α·y[i-1] + (1-α)·x[i].
func (s *Signal) filter(x float64) float64 {
	if s.alpha == 0 {
		return x
	}
	if !s.filterInit {
		s.filterY = x
		s.filterInit = true
		return x
	}
	s.filterY = s.alpha*s.filterY + (1-s.alpha)*x
	return s.filterY
}

// record one displayed sample.
func (s *Signal) pushSample(v float64) {
	v = s.filter(v)
	s.trace.Push(v)
	s.last.Store(v)
	s.holds = true
	s.samples++
}

func (s *Signal) pushHole() {
	s.trace.PushHole()
	s.holes++
}

// Stats summarizes a scope's activity for tests and the stats display.
type Stats struct {
	// Polls counts timer dispatches (or manual steps).
	Polls int64
	// Slots counts sweep positions advanced, including lost-timeout
	// catch-up; Slots-Polls is the number of compensated intervals.
	Slots int64
	// LostTicks counts missed polling intervals (§4.5).
	LostTicks int64
	// FeedPushed and FeedDropped count buffered samples accepted and
	// dropped-late (§4.4).
	FeedPushed, FeedDropped int64
	// Recorded counts tuples written to the recorder.
	Recorded int64
}

// Scope is a software oscilloscope: the Go analogue of the paper's
// GtkScope widget state, separated from its GUI chrome so it can also run
// headless (recording, serving, benchmarking).
//
// All methods must be called on the owning loop's goroutine unless
// documented otherwise; cross-thread access goes through Loop.Invoke,
// mirroring the paper's global GTK lock discipline (§4.3). Event and Push
// are safe from any goroutine.
type Scope struct {
	loop   *glib.Loop
	name   string
	width  int
	height int

	period time.Duration
	delay  time.Duration
	zoom   float64 // horizontal pixels per sample; 1 = paper default
	bias   float64 // vertical offset in percent of full scale
	domain Domain

	mode    Mode
	srcID   glib.SourceID
	running bool
	origin  time.Time

	signals       []*Signal
	byName        map[string]*Signal
	nextHue       int
	histRetention int

	feed      *Feed
	bufCursor time.Duration
	bufInit   bool
	takeBuf   []tuple.Tuple // reused drain buffer (loop goroutine only)

	playback   []tuple.Tuple
	playIdx    int
	playCursor time.Duration
	onPlayDone func()

	trigger *Trigger

	recMu    sync.Mutex
	recorder *tuple.Writer
	recorded int64

	polls     int64
	slots     int64
	lostTicks int64
}

// New creates a scope named name with a canvas of width×height pixels,
// attached to loop (which supplies both the clock and the polling timer).
// It corresponds to the paper's gtk_scope_new(name, width, height).
func New(loop *glib.Loop, name string, width, height int) *Scope {
	if width < 16 {
		width = 16
	}
	if height < 16 {
		height = 16
	}
	return &Scope{
		loop:   loop,
		name:   name,
		width:  width,
		height: height,
		period: DefaultPeriod,
		zoom:   1,
		byName: make(map[string]*Signal),
		feed:   NewFeed(),
		origin: loop.Clock().Now(),
	}
}

// Name returns the scope name.
func (sc *Scope) Name() string { return sc.name }

// Loop returns the event loop the scope is attached to.
func (sc *Scope) Loop() *glib.Loop { return sc.loop }

// Size returns the canvas dimensions.
func (sc *Scope) Size() (w, h int) { return sc.width, sc.height }

// Mode returns the acquisition mode.
func (sc *Scope) Mode() Mode { return sc.mode }

// Running reports whether acquisition is active.
func (sc *Scope) Running() bool { return sc.running }

// Period returns the polling period.
func (sc *Scope) Period() time.Duration { return sc.period }

// Delay returns the buffered-signal display delay.
func (sc *Scope) Delay() time.Duration { return sc.delay }

// SetDelay changes the buffered display delay (the paper's delay widget).
func (sc *Scope) SetDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	sc.delay = d
}

// Zoom returns the horizontal zoom in pixels per sample.
func (sc *Scope) Zoom() float64 { return sc.zoom }

// SetZoom changes the horizontal zoom; values are clamped to [1/4096, 64].
// At the default zoom of 1 the scope displays data one pixel apart per
// polling period (§3.1). Below 1 each pixel column summarizes 1/zoom
// samples through the decimated render path; with history enabled
// (SetHistoryRetention) the deepest zoom puts millions of samples on
// screen at O(width) render cost.
func (sc *Scope) SetZoom(z float64) {
	if z < 1.0/4096 {
		z = 1.0 / 4096
	}
	if z > 64 {
		z = 64
	}
	sc.zoom = z
}

// Bias returns the vertical offset in percent of full scale.
func (sc *Scope) Bias() float64 { return sc.bias }

// SetBias translates the display vertically (the paper's bias widget).
func (sc *Scope) SetBias(b float64) {
	if b < -100 {
		b = -100
	}
	if b > 100 {
		b = 100
	}
	sc.bias = b
}

// Domain returns the display domain.
func (sc *Scope) Domain() Domain { return sc.domain }

// SetDomain switches between time- and frequency-domain display.
func (sc *Scope) SetDomain(d Domain) { sc.domain = d }

// SetTrigger installs a trigger (nil disables).
func (sc *Scope) SetTrigger(t *Trigger) { sc.trigger = t }

// TriggerConfig returns the installed trigger, or nil.
func (sc *Scope) TriggerConfig() *Trigger { return sc.trigger }

// Feed exposes the scope-wide buffered-signal feed.
func (sc *Scope) Feed() *Feed { return sc.feed }

// SetHistoryRetention backs every signal's trace ring with a tiered
// decimated history retaining approximately n slots (samples or holes) per
// signal — the store behind wide zoomed-out views, sized for millions of
// samples. It applies to existing signals (their history starts empty) and
// to signals added later. Non-positive n disables history for existing and
// future signals.
func (sc *Scope) SetHistoryRetention(n int) {
	if n < 0 {
		n = 0
	}
	sc.histRetention = n
	for _, s := range sc.signals {
		if n > 0 {
			s.trace.EnableHistory(n)
		} else {
			s.trace.DisableHistory()
		}
	}
}

// HistoryRetention returns the per-signal history retention in slots (0
// when disabled).
func (sc *Scope) HistoryRetention() int { return sc.histRetention }

// Elapsed returns the scope's clock position: time since the scope was
// created, on the loop's clock.
func (sc *Scope) Elapsed() time.Duration {
	return sc.loop.Clock().Now().Sub(sc.origin)
}

// AddSignal registers a signal from its specification and returns the
// runtime object, like the paper's gtk_scope_signal_new. Signals may be
// added and removed dynamically while the scope runs.
func (sc *Scope) AddSignal(spec Sig) (*Signal, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if _, dup := sc.byName[spec.Name]; dup {
		return nil, fmt.Errorf("core: duplicate signal %q", spec.Name)
	}
	s := &Signal{
		scope:   sc,
		spec:    spec,
		kind:    spec.inferKind(),
		line:    spec.Line,
		alpha:   spec.FilterAlpha,
		visible: !spec.Hidden,
		trace:   NewTrace(sc.traceCap()),
		min:     spec.Min,
		max:     spec.Max,
	}
	if s.min == 0 && s.max == 0 {
		s.min, s.max = 0, 100
	}
	if sc.histRetention > 0 {
		s.trace.EnableHistory(sc.histRetention)
	}
	if spec.HasColor {
		s.color = spec.Color
	} else if (spec.Color != draw.RGB{}) {
		s.color = spec.Color
	} else {
		s.color = draw.PaletteColor(sc.nextHue)
		sc.nextHue++
	}
	sc.signals = append(sc.signals, s)
	sc.byName[spec.Name] = s
	return s, nil
}

// traceCap sizes signal rings: enough history for the widest zoomed-out
// view plus the frequency-domain FFT window.
func (sc *Scope) traceCap() int {
	n := sc.width * 8
	if n < 1024 {
		n = 1024
	}
	return n
}

// RemoveSignal detaches a signal by name; it reports whether one existed.
func (sc *Scope) RemoveSignal(name string) bool {
	if _, ok := sc.byName[name]; !ok {
		return false
	}
	delete(sc.byName, name)
	kept := sc.signals[:0]
	for _, s := range sc.signals {
		if s.spec.Name != name {
			kept = append(kept, s)
		}
	}
	sc.signals = kept
	return true
}

// Signal looks up a signal by name.
func (sc *Scope) Signal(name string) *Signal { return sc.byName[name] }

// Signals returns the registered signals in registration order.
func (sc *Scope) Signals() []*Signal {
	out := make([]*Signal, len(sc.signals))
	copy(out, sc.signals)
	return out
}

// Event pushes one event sample for an aggregated signal (§4.2). It is
// safe from any goroutine. Events pushed for unknown or non-aggregated
// signals are ignored (returning false) so instrumentation can be left in
// place while signals come and go.
func (sc *Scope) Event(name string, v float64) bool {
	s := sc.byName[name]
	if s == nil || s.spec.Agg == AggNone {
		return false
	}
	s.acc.add(v)
	return true
}

// Push enqueues a timestamped sample for a BUFFER signal; at is relative to
// the scope's origin. Safe from any goroutine. It returns false when the
// sample was dropped for arriving late.
func (sc *Scope) Push(at time.Duration, name string, v float64) bool {
	return sc.feed.Push(at, name, v)
}

// PushNow stamps the sample with the scope's current elapsed time.
func (sc *Scope) PushNow(name string, v float64) bool {
	return sc.feed.Push(sc.Elapsed(), name, v)
}

// Probe returns a pre-registered publish handle for a BUFFER signal on
// this scope: the name is validated and interned once, the feed shard
// pinned, and Probe.Record stamps samples with the scope's clock — the
// few-lines-in-the-hot-loop instrumentation shape of §3–4 without the
// per-sample string costs. The name does not need a registered Signal yet
// (instrumentation may be laid down before the display side exists), but
// if one exists it must be a BUFFER signal. Probes are idempotent per name
// and single-producer; see core.Probe.
func (sc *Scope) Probe(name string) (*Probe, error) {
	if s := sc.byName[name]; s != nil && s.kind != KindBuffer {
		return nil, fmt.Errorf("core: signal %q is %s, not BUFFER", name, s.kind)
	}
	// The clock binds only if this call creates the handle; an existing
	// handle may be live on another goroutine and must not be mutated.
	return sc.feed.probe(name, sc.Elapsed)
}

// SetPollingMode configures polling acquisition with the given sampling
// period, like gtk_scope_set_polling_mode(scope, period_ms). It does not
// start acquisition; call StartPolling.
func (sc *Scope) SetPollingMode(period time.Duration) error {
	if period <= 0 {
		return fmt.Errorf("core: polling period must be positive")
	}
	if sc.running {
		return fmt.Errorf("core: cannot change mode while running")
	}
	sc.mode = ModePolling
	sc.period = period
	return nil
}

// SetPlaybackMode configures playback of a recorded tuple stream at the
// given display period (§3.3: data is displayed one pixel per period; a
// tuple at time t lands t/period pixels into the sweep). Tuples must be
// time-ordered.
func (sc *Scope) SetPlaybackMode(tuples []tuple.Tuple, period time.Duration) error {
	if period <= 0 {
		return fmt.Errorf("core: playback period must be positive")
	}
	if sc.running {
		return fmt.Errorf("core: cannot change mode while running")
	}
	for i := 1; i < len(tuples); i++ {
		if tuples[i].Time < tuples[i-1].Time {
			return fmt.Errorf("core: playback tuples out of order at index %d", i)
		}
	}
	sc.mode = ModePlayback
	sc.period = period
	sc.playback = tuples
	sc.playIdx = 0
	sc.playCursor = 0
	return nil
}

// OnPlaybackDone registers a callback invoked (on the loop goroutine) when
// playback exhausts its tuples.
func (sc *Scope) OnPlaybackDone(fn func()) { sc.onPlayDone = fn }

// StartPolling attaches the scope's polling timer to the loop, like
// gtk_scope_start_polling. The scope must be in polling mode.
func (sc *Scope) StartPolling() error {
	if sc.mode != ModePolling {
		return fmt.Errorf("core: scope %q is in %s mode", sc.name, sc.mode)
	}
	return sc.start()
}

// StartPlayback starts replaying the configured tuple stream.
func (sc *Scope) StartPlayback() error {
	if sc.mode != ModePlayback {
		return fmt.Errorf("core: scope %q is in %s mode", sc.name, sc.mode)
	}
	return sc.start()
}

func (sc *Scope) start() error {
	if sc.running {
		return fmt.Errorf("core: scope %q already running", sc.name)
	}
	sc.running = true
	sc.srcID = sc.loop.TimeoutAdd(sc.period, func(missed int) bool {
		sc.Step(missed)
		return sc.running
	})
	return nil
}

// Stop halts acquisition (polling or playback). The displayed traces are
// retained.
func (sc *Scope) Stop() {
	if !sc.running {
		return
	}
	sc.running = false
	sc.loop.Remove(sc.srcID)
	sc.srcID = 0
}

// Step advances the sweep by missed+1 polling intervals: one regular
// interval plus the intervals lost to scheduling latency, which the paper's
// implementation tracks and compensates for (§4.5). It is invoked by the
// polling timer and may also be called directly for deterministic
// operation.
func (sc *Scope) Step(missed int) {
	if missed < 0 {
		missed = 0
	}
	sc.polls++
	sc.lostTicks += int64(missed)
	slots := missed + 1
	sc.slots += int64(slots)

	switch sc.mode {
	case ModePlayback:
		sc.stepPlayback(slots)
	default:
		sc.stepPolling(slots)
	}
}

// stepPolling acquires one sample per signal for the newest slot, filling
// compensated (lost) slots with holes for unbuffered signals and with
// buffered data where timestamps allow.
func (sc *Scope) stepPolling(slots int) {
	now := sc.Elapsed()

	// Buffered signals first: their data is timestamped, so even lost
	// intervals can be reconstructed from the feed. The buffered cursor
	// trails `now` by the configured display delay.
	sc.drainFeed(now)

	for _, s := range sc.signals {
		if s.kind == KindBuffer {
			continue
		}
		for i := 0; i < slots-1; i++ {
			s.pushHole()
		}
		var v float64
		var ok bool
		if s.spec.Agg != AggNone {
			v, ok = s.acc.take(s.spec.Agg, sc.period)
		} else {
			v, ok = s.spec.Source.Sample()
		}
		if ok {
			s.pushSample(v)
			sc.record(now, s.spec.Name, v)
		} else if s.holds && s.spec.Agg != AggNone {
			// Sample-and-hold across empty aggregation intervals (§4.2).
			s.trace.Push(s.last.Load())
			s.samples++
		} else {
			s.pushHole()
		}
	}
}

// drainFeed advances the buffered display cursor toward now-delay, one
// period-wide slot at a time, assigning each BUFFER signal the last sample
// in each slot window (or a hole).
func (sc *Scope) drainFeed(now time.Duration) {
	target := now - sc.delay
	if !sc.bufInit {
		// Align the cursor so the first buffered slot ends at the first
		// poll's target time rather than replaying from zero.
		sc.bufCursor = target - sc.period
		if sc.bufCursor < 0 {
			sc.bufCursor = 0
		}
		sc.bufInit = true
	}
	for sc.bufCursor+sc.period <= target {
		windowEnd := sc.bufCursor + sc.period
		sc.takeBuf = sc.feed.DrainInto(windowEnd, sc.takeBuf[:0])
		sc.deliverWindow(sc.takeBuf, windowEnd, func(s *Signal) bool { return s.kind == KindBuffer })
		sc.bufCursor = windowEnd
	}
}

// deliverWindow pushes the last value per signal from batch into each
// matching signal's trace, and a hole where a signal got no data.
func (sc *Scope) deliverWindow(batch []tuple.Tuple, at time.Duration, match func(*Signal) bool) {
	got := make(map[string]float64, len(batch))
	for _, t := range batch {
		name := t.Name
		if name == "" && len(sc.signals) > 0 {
			// Two-field tuple form: route to the sole matching signal.
			name = sc.soleMatch(match)
		}
		got[name] = t.Value
	}
	for _, s := range sc.signals {
		if !match(s) {
			continue
		}
		if v, ok := got[s.spec.Name]; ok {
			s.pushSample(v)
			sc.record(at, s.spec.Name, v)
		} else {
			s.pushHole()
		}
	}
}

func (sc *Scope) soleMatch(match func(*Signal) bool) string {
	name := ""
	n := 0
	for _, s := range sc.signals {
		if match(s) {
			name = s.spec.Name
			n++
		}
	}
	if n == 1 {
		return name
	}
	return ""
}

// stepPlayback advances the playback cursor by slots periods, delivering
// file tuples into their period-wide windows.
func (sc *Scope) stepPlayback(slots int) {
	for i := 0; i < slots; i++ {
		windowEnd := sc.playCursor + sc.period
		var batch []tuple.Tuple
		for sc.playIdx < len(sc.playback) &&
			sc.playback[sc.playIdx].Timestamp() <= windowEnd {
			batch = append(batch, sc.playback[sc.playIdx])
			sc.playIdx++
		}
		sc.deliverWindow(batch, windowEnd, func(s *Signal) bool { return true })
		sc.playCursor = windowEnd
	}
	if sc.playIdx >= len(sc.playback) && sc.running {
		sc.Stop()
		if sc.onPlayDone != nil {
			sc.onPlayDone()
		}
	}
}

// SetRecorder directs every displayed sample to w in tuple format (§3.3);
// nil disables recording. Recording captures what the scope displays, so a
// recorded file replays to the same picture.
func (sc *Scope) SetRecorder(w io.Writer) {
	sc.recMu.Lock()
	defer sc.recMu.Unlock()
	if w == nil {
		if sc.recorder != nil {
			sc.recorder.Flush()
		}
		sc.recorder = nil
		return
	}
	sc.recorder = tuple.NewWriter(w)
}

// FlushRecorder flushes any buffered recorded tuples.
func (sc *Scope) FlushRecorder() error {
	sc.recMu.Lock()
	defer sc.recMu.Unlock()
	if sc.recorder == nil {
		return nil
	}
	return sc.recorder.Flush()
}

func (sc *Scope) record(at time.Duration, name string, v float64) {
	sc.recMu.Lock()
	if sc.recorder != nil {
		sc.recorder.Write(tuple.Tuple{Time: at.Milliseconds(), Value: v, Name: name})
		sc.recorded++
	}
	sc.recMu.Unlock()
}

// Stats returns activity counters.
func (sc *Scope) Stats() Stats {
	pushed, dropped := sc.feed.Stats()
	sc.recMu.Lock()
	rec := sc.recorded
	sc.recMu.Unlock()
	return Stats{
		Polls:       sc.polls,
		Slots:       sc.slots,
		LostTicks:   sc.lostTicks,
		FeedPushed:  pushed,
		FeedDropped: dropped,
		Recorded:    rec,
	}
}

// mapY converts a signal value to a canvas y coordinate within a rect of
// height h: the signal's [min,max] spans [0,100] percent (the paper's
// y-ruler scale), shifted by the scope bias.
func (sc *Scope) mapY(s *Signal, v float64, h int) int {
	span := s.max - s.min
	if span <= 0 {
		span = 1
	}
	pct := (v-s.min)/span*100 + sc.bias
	y := int(math.Round(float64(h-1) * (1 - pct/100)))
	return y
}

// triggerOffset locates the most recent trigger crossing in the trigger
// signal's trace and returns its back-index, or -1 when no crossing (or no
// trigger) applies.
func (sc *Scope) triggerOffset() int {
	tr := sc.trigger
	if tr == nil {
		return -1
	}
	s := sc.byName[tr.Signal]
	if s == nil {
		return -1
	}
	t := s.trace
	limit := t.Len() - 1
	for back := 0; back < limit; back++ {
		cur, ok1 := t.At(back)
		prev, ok2 := t.At(back + 1)
		if !ok1 || !ok2 {
			continue
		}
		if tr.Rising && prev < tr.Level && cur >= tr.Level {
			return back
		}
		if !tr.Rising && prev > tr.Level && cur <= tr.Level {
			return back
		}
	}
	return -1
}
