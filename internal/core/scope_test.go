package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/glib"
	"repro/internal/tuple"
)

func epoch() time.Time { return time.Unix(5000, 0) }

// rig builds a virtual-clock loop + scope for deterministic engine tests.
func rig(t *testing.T) (*Scope, *glib.Loop, *glib.VirtualClock) {
	t.Helper()
	vc := glib.NewVirtualClock(epoch())
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	sc := New(loop, "test", 200, 100)
	return sc, loop, vc
}

func TestAddSignalValidation(t *testing.T) {
	sc, _, _ := rig(t)
	if _, err := sc.AddSignal(Sig{}); err == nil {
		t.Fatal("unnamed signal should be rejected")
	}
	if _, err := sc.AddSignal(Sig{Name: "x"}); err == nil {
		t.Fatal("sourceless unbuffered signal should be rejected")
	}
	var v IntVar
	if _, err := sc.AddSignal(Sig{Name: "x", Source: &v}); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.AddSignal(Sig{Name: "x", Source: &v}); err == nil {
		t.Fatal("duplicate name should be rejected")
	}
	if _, err := sc.AddSignal(Sig{Name: "bad", Source: &v, FilterAlpha: 1.5}); err == nil {
		t.Fatal("alpha > 1 should be rejected")
	}
	if _, err := sc.AddSignal(Sig{Name: "bad2", Source: &v, Min: 5, Max: 5}); err == nil {
		t.Fatal("min == max should be rejected")
	}
	if _, err := sc.AddSignal(Sig{Name: "buf", Kind: KindBuffer, Source: &v}); err == nil {
		t.Fatal("BUFFER signal with a Source should be rejected")
	}
}

func TestKindInference(t *testing.T) {
	sc, _, _ := rig(t)
	var b BoolVar
	var sh ShortVar
	var f FloatVar
	sig1, _ := sc.AddSignal(Sig{Name: "b", Source: &b})
	sig2, _ := sc.AddSignal(Sig{Name: "s", Source: &sh})
	sig3, _ := sc.AddSignal(Sig{Name: "f", Source: &f})
	sig4, _ := sc.AddSignal(Sig{Name: "fn", Source: FuncSource(func() float64 { return 1 })})
	if sig1.Kind() != KindBoolean || sig2.Kind() != KindShort || sig3.Kind() != KindFloat || sig4.Kind() != KindFunc {
		t.Fatalf("kinds: %v %v %v %v", sig1.Kind(), sig2.Kind(), sig3.Kind(), sig4.Kind())
	}
}

func TestVarSampling(t *testing.T) {
	var i IntVar
	i.Store(7)
	if v, ok := i.Sample(); !ok || v != 7 {
		t.Fatal("IntVar sample")
	}
	i.Add(3)
	if i.Load() != 10 {
		t.Fatal("IntVar add")
	}
	var b BoolVar
	b.Store(true)
	if v, _ := b.Sample(); v != 1 {
		t.Fatal("BoolVar sample")
	}
	var s ShortVar
	s.Store(-12)
	if v, _ := s.Sample(); v != -12 {
		t.Fatal("ShortVar sample")
	}
	if s.Load() != -12 {
		t.Fatal("ShortVar load")
	}
	var f FloatVar
	f.Store(2.5)
	if v, _ := f.Sample(); v != 2.5 {
		t.Fatal("FloatVar sample")
	}
}

func TestFuncWithArgs(t *testing.T) {
	fn := FuncWithArgs(func(a1, a2 any) float64 {
		return float64(a1.(int)) + float64(a2.(int))
	}, 30, 12)
	if v, ok := fn.Sample(); !ok || v != 42 {
		t.Fatalf("FuncWithArgs sample = %v", v)
	}
}

func TestPollingSamplesIntoTrace(t *testing.T) {
	sc, loop, _ := rig(t)
	var v IntVar
	sig, _ := sc.AddSignal(Sig{Name: "v", Source: &v})
	if err := sc.SetPollingMode(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sc.StartPolling(); err != nil {
		t.Fatal(err)
	}
	v.Store(5)
	loop.Advance(50 * time.Millisecond)
	v.Store(9)
	loop.Advance(50 * time.Millisecond)
	if sig.Trace().Len() != 2 {
		t.Fatalf("trace len = %d", sig.Trace().Len())
	}
	if got, _ := sig.Trace().At(0); got != 9 {
		t.Fatalf("newest = %v", got)
	}
	if got, _ := sig.Trace().At(1); got != 5 {
		t.Fatalf("older = %v", got)
	}
	if sig.Value() != 9 {
		t.Fatalf("Value = %v", sig.Value())
	}
	sc.Stop()
	loop.Advance(200 * time.Millisecond)
	if sig.Trace().Len() != 2 {
		t.Fatal("samples accrued after Stop")
	}
}

func TestStartErrors(t *testing.T) {
	sc, _, _ := rig(t)
	if err := sc.StartPolling(); err == nil {
		t.Fatal("StartPolling before SetPollingMode should fail")
	}
	if err := sc.SetPollingMode(0); err == nil {
		t.Fatal("zero period should fail")
	}
	sc.SetPollingMode(10 * time.Millisecond) //nolint:errcheck
	if err := sc.StartPolling(); err != nil {
		t.Fatal(err)
	}
	if err := sc.StartPolling(); err == nil {
		t.Fatal("double start should fail")
	}
	if err := sc.SetPollingMode(20 * time.Millisecond); err == nil {
		t.Fatal("mode change while running should fail")
	}
}

func TestLostTimeoutCompensation(t *testing.T) {
	// §4.5: under scheduling loss the sweep advances by the elapsed
	// periods, leaving holes rather than stretching time.
	sc, loop, vc := rig(t)
	var v IntVar
	sig, _ := sc.AddSignal(Sig{Name: "v", Source: &v})
	sc.SetPollingMode(10 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	loop.Advance(30 * time.Millisecond)      // 3 clean polls
	// Stall for 50ms: one coalesced dispatch with 4 missed intervals.
	vc.Set(vc.Now().Add(50 * time.Millisecond))
	loop.Iterate()
	st := sc.Stats()
	if st.Polls != 4 {
		t.Fatalf("polls = %d, want 4", st.Polls)
	}
	if st.Slots != 8 {
		t.Fatalf("slots = %d, want 8 (3 clean + 1 + 4 missed)", st.Slots)
	}
	if st.LostTicks != 4 {
		t.Fatalf("lost = %d, want 4", st.LostTicks)
	}
	if sig.Trace().Len() != 8 {
		t.Fatalf("trace len = %d, want 8", sig.Trace().Len())
	}
	// Newest slot is a real sample; the 4 before it are holes.
	if _, ok := sig.Trace().At(0); !ok {
		t.Fatal("newest slot should be a sample")
	}
	for back := 1; back <= 4; back++ {
		if _, ok := sig.Trace().At(back); ok {
			t.Fatalf("slot %d back should be a hole", back)
		}
	}
	if _, ok := sig.Trace().At(5); !ok {
		t.Fatal("pre-stall samples should survive")
	}
}

func TestLowPassFilter(t *testing.T) {
	sc, loop, _ := rig(t)
	var v IntVar
	sig, _ := sc.AddSignal(Sig{Name: "v", Source: &v, FilterAlpha: 0.5})
	sc.SetPollingMode(10 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck

	v.Store(100)
	loop.Advance(10 * time.Millisecond) // first sample seeds the filter: 100
	if got, _ := sig.Trace().At(0); got != 100 {
		t.Fatalf("seed = %v", got)
	}
	v.Store(0)
	loop.Advance(10 * time.Millisecond) // y = 0.5*100 + 0.5*0 = 50
	if got, _ := sig.Trace().At(0); got != 50 {
		t.Fatalf("filtered = %v, want 50", got)
	}
	loop.Advance(10 * time.Millisecond) // y = 25
	if got, _ := sig.Trace().At(0); got != 25 {
		t.Fatalf("filtered = %v, want 25", got)
	}
}

func TestFilterAlphaZeroPassesThrough(t *testing.T) {
	sc, loop, _ := rig(t)
	var v IntVar
	sig, _ := sc.AddSignal(Sig{Name: "v", Source: &v})
	sc.SetPollingMode(10 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	for i := 0; i < 5; i++ {
		v.Store(int64(i * 10))
		loop.Advance(10 * time.Millisecond)
		if got, _ := sig.Trace().At(0); got != float64(i*10) {
			t.Fatalf("unfiltered sample %d = %v", i, got)
		}
	}
}

func TestSetFilterAlphaClamps(t *testing.T) {
	sc, _, _ := rig(t)
	var v IntVar
	sig, _ := sc.AddSignal(Sig{Name: "v", Source: &v})
	sig.SetFilterAlpha(2)
	if sig.FilterAlpha() != 1 {
		t.Fatal("alpha should clamp to 1")
	}
	sig.SetFilterAlpha(-1)
	if sig.FilterAlpha() != 0 {
		t.Fatal("alpha should clamp to 0")
	}
}

func TestAggregationFunctions(t *testing.T) {
	cases := []struct {
		agg    Aggregator
		events []float64
		want   float64
	}{
		{AggMax, []float64{3, 9, 5}, 9},
		{AggMin, []float64{3, 9, 5}, 3},
		{AggSum, []float64{1, 2, 3}, 6},
		{AggAverage, []float64{2, 4, 6}, 4},
		{AggEvents, []float64{7, 7, 7, 7}, 4},
		{AggAnyEvent, []float64{1}, 1},
		{AggAnyEvent, nil, 0},
		{AggSum, nil, 0},
		{AggEvents, nil, 0},
	}
	for _, c := range cases {
		sc, loop, _ := rig(t)
		sig, err := sc.AddSignal(Sig{Name: "e", Agg: c.agg})
		if err != nil {
			t.Fatal(err)
		}
		sc.SetPollingMode(100 * time.Millisecond) //nolint:errcheck
		sc.StartPolling()                         //nolint:errcheck
		for _, v := range c.events {
			if !sc.Event("e", v) {
				t.Fatal("Event rejected")
			}
		}
		loop.Advance(100 * time.Millisecond)
		got, ok := sig.Trace().At(0)
		if !ok {
			t.Fatalf("%v: no sample", c.agg)
		}
		if got != c.want {
			t.Fatalf("%v(%v) = %v, want %v", c.agg, c.events, got, c.want)
		}
	}
}

func TestAggRate(t *testing.T) {
	sc, loop, _ := rig(t)
	sig, _ := sc.AddSignal(Sig{Name: "bw", Agg: AggRate})
	sc.SetPollingMode(100 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                         //nolint:errcheck
	sc.Event("bw", 1500)
	sc.Event("bw", 1500)
	loop.Advance(100 * time.Millisecond)
	got, _ := sig.Trace().At(0)
	if got != 30000 { // 3000 bytes / 0.1 s
		t.Fatalf("rate = %v, want 30000", got)
	}
}

func TestAggSampleAndHold(t *testing.T) {
	// Max/Min/Average hold the previous value across empty intervals
	// (§4.2 sample-and-hold).
	sc, loop, _ := rig(t)
	sig, _ := sc.AddSignal(Sig{Name: "lat", Agg: AggMax})
	sc.SetPollingMode(50 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	sc.Event("lat", 12)
	loop.Advance(50 * time.Millisecond)
	loop.Advance(50 * time.Millisecond) // no events this interval
	got, ok := sig.Trace().At(0)
	if !ok || got != 12 {
		t.Fatalf("held value = %v ok=%v, want 12", got, ok)
	}
}

func TestEventUnknownOrUnaggregated(t *testing.T) {
	sc, _, _ := rig(t)
	var v IntVar
	sc.AddSignal(Sig{Name: "plain", Source: &v}) //nolint:errcheck
	if sc.Event("nope", 1) {
		t.Fatal("unknown signal should reject events")
	}
	if sc.Event("plain", 1) {
		t.Fatal("non-aggregated signal should reject events")
	}
}

func TestBufferedSignalDelayAndDrop(t *testing.T) {
	sc, loop, _ := rig(t)
	sig, err := sc.AddSignal(Sig{Name: "net", Kind: KindBuffer})
	if err != nil {
		t.Fatal(err)
	}
	sc.SetDelay(100 * time.Millisecond)
	sc.SetPollingMode(50 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck

	sc.Push(40*time.Millisecond, "net", 1)
	sc.Push(90*time.Millisecond, "net", 2)
	loop.Advance(100 * time.Millisecond)
	// At t=100ms the display target is t-delay = 0: nothing shown yet.
	if _, ok := sig.Trace().Last(); ok {
		t.Fatal("delayed sample displayed too early")
	}
	loop.Advance(100 * time.Millisecond)
	// At t=200ms target is 100ms: both samples display.
	if got, ok := sig.Trace().Last(); !ok || got != 2 {
		t.Fatalf("latest buffered = %v ok=%v, want 2", got, ok)
	}
	// A sample older than the displayed high-water mark is dropped.
	if sc.Push(50*time.Millisecond, "net", 3) {
		t.Fatal("late sample should be dropped")
	}
	st := sc.Stats()
	if st.FeedDropped != 1 {
		t.Fatalf("FeedDropped = %d", st.FeedDropped)
	}
}

func TestBufferedTwoFieldRouting(t *testing.T) {
	// A stream with empty names routes to the sole BUFFER signal (§3.3
	// two-field form).
	sc, loop, _ := rig(t)
	sig, _ := sc.AddSignal(Sig{Name: "only", Kind: KindBuffer})
	sc.SetPollingMode(50 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	sc.Feed().PushTuple(tuple.Tuple{Time: 10, Value: 42})
	loop.Advance(100 * time.Millisecond)
	if got, ok := sig.Trace().Last(); !ok || got != 42 {
		t.Fatalf("two-field routing failed: %v %v", got, ok)
	}
}

func TestPlaybackPixelSpacing(t *testing.T) {
	// §3.3: with a 50ms period, file points 100ms apart display 2 pixels
	// apart (a hole between them).
	sc, loop, _ := rig(t)
	sig, _ := sc.AddSignal(Sig{Name: "x", Kind: KindBuffer})
	tuples := []tuple.Tuple{
		{Time: 50, Value: 1, Name: "x"},
		{Time: 150, Value: 2, Name: "x"},
		{Time: 250, Value: 3, Name: "x"},
	}
	if err := sc.SetPlaybackMode(tuples, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	done := false
	sc.OnPlaybackDone(func() { done = true })
	if err := sc.StartPlayback(); err != nil {
		t.Fatal(err)
	}
	loop.Advance(time.Second)
	if !done {
		t.Fatal("playback did not finish")
	}
	// Slots: [0,50]=1, (50,100]=hole, (100,150]=2, (150,200]=hole,
	// (200,250]=3.
	vals := sig.Trace().Recent(5)
	if len(vals) != 5 {
		t.Fatalf("trace = %v", vals)
	}
	expect := []float64{1, math.NaN(), 2, math.NaN(), 3}
	for i, want := range expect {
		if math.IsNaN(want) != math.IsNaN(vals[i]) {
			t.Fatalf("slot %d = %v, want %v (vals %v)", i, vals[i], want, vals)
		}
		if !math.IsNaN(want) && vals[i] != want {
			t.Fatalf("slot %d = %v, want %v", i, vals[i], want)
		}
	}
}

func TestPlaybackRejectsUnordered(t *testing.T) {
	sc, _, _ := rig(t)
	bad := []tuple.Tuple{{Time: 100, Value: 1}, {Time: 50, Value: 2}}
	if err := sc.SetPlaybackMode(bad, 50*time.Millisecond); err == nil {
		t.Fatal("unordered tuples should be rejected")
	}
}

func TestRecorderCapturesDisplayedSamples(t *testing.T) {
	sc, loop, _ := rig(t)
	var v IntVar
	sc.AddSignal(Sig{Name: "v", Source: &v}) //nolint:errcheck
	var buf bytes.Buffer
	sc.SetRecorder(&buf)
	sc.SetPollingMode(50 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	v.Store(7)
	loop.Advance(150 * time.Millisecond)
	sc.FlushRecorder() //nolint:errcheck
	r := tuple.NewReader(&buf, true)
	tuples, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 3 {
		t.Fatalf("recorded %d tuples, want 3", len(tuples))
	}
	for _, tu := range tuples {
		if tu.Name != "v" || tu.Value != 7 {
			t.Fatalf("bad tuple %+v", tu)
		}
	}
	if sc.Stats().Recorded != 3 {
		t.Fatalf("Recorded = %d", sc.Stats().Recorded)
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	// A recorded polling session replays to the same trace values.
	sc, loop, _ := rig(t)
	var v IntVar
	sc.AddSignal(Sig{Name: "v", Source: &v}) //nolint:errcheck
	var buf bytes.Buffer
	sc.SetRecorder(&buf)
	sc.SetPollingMode(50 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	for i := 1; i <= 5; i++ {
		v.Store(int64(i * 10))
		loop.Advance(50 * time.Millisecond)
	}
	sc.Stop()
	sc.FlushRecorder() //nolint:errcheck

	tuples, err := tuple.NewReader(&buf, true).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	sc2, loop2, _ := rig(t)
	sig2, _ := sc2.AddSignal(Sig{Name: "v", Kind: KindBuffer})
	if err := sc2.SetPlaybackMode(tuples, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sc2.StartPlayback() //nolint:errcheck
	loop2.Advance(time.Second)
	vals := sig2.Trace().RecentValues(10)
	want := []float64{10, 20, 30, 40, 50}
	if len(vals) != len(want) {
		t.Fatalf("replayed %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("replayed %v, want %v", vals, want)
		}
	}
}

func TestRemoveSignal(t *testing.T) {
	sc, _, _ := rig(t)
	var v IntVar
	sc.AddSignal(Sig{Name: "a", Source: &v}) //nolint:errcheck
	sc.AddSignal(Sig{Name: "b", Source: &v}) //nolint:errcheck
	if !sc.RemoveSignal("a") {
		t.Fatal("RemoveSignal failed")
	}
	if sc.RemoveSignal("a") {
		t.Fatal("double remove should fail")
	}
	if sc.Signal("a") != nil || sc.Signal("b") == nil {
		t.Fatal("registry inconsistent")
	}
	if len(sc.Signals()) != 1 {
		t.Fatal("Signals() inconsistent")
	}
}

func TestZoomBiasClamping(t *testing.T) {
	sc, _, _ := rig(t)
	sc.SetZoom(1000)
	if sc.Zoom() != 64 {
		t.Fatalf("zoom clamp high: %v", sc.Zoom())
	}
	sc.SetZoom(0)
	if sc.Zoom() != 1.0/4096 {
		t.Fatalf("zoom clamp low: %v", sc.Zoom())
	}
	sc.SetBias(500)
	if sc.Bias() != 100 {
		t.Fatalf("bias clamp: %v", sc.Bias())
	}
	sc.SetDelay(-time.Second)
	if sc.Delay() != 0 {
		t.Fatal("negative delay should clamp to 0")
	}
}

func TestDefaultRangeAndPalette(t *testing.T) {
	sc, _, _ := rig(t)
	var v IntVar
	s1, _ := sc.AddSignal(Sig{Name: "a", Source: &v})
	s2, _ := sc.AddSignal(Sig{Name: "b", Source: &v})
	lo, hi := s1.Range()
	if lo != 0 || hi != 100 {
		t.Fatalf("default range %v..%v", lo, hi)
	}
	if s1.Color() == s2.Color() {
		t.Fatal("palette should assign distinct colors")
	}
	s1.SetRange(5, 2) // ignored
	if lo, hi := s1.Range(); lo != 0 || hi != 100 {
		t.Fatalf("invalid SetRange applied: %v..%v", lo, hi)
	}
}

func TestVisibilityToggle(t *testing.T) {
	sc, _, _ := rig(t)
	var v IntVar
	sig, _ := sc.AddSignal(Sig{Name: "a", Source: &v, Hidden: true})
	if sig.Visible() {
		t.Fatal("Hidden spec should start invisible")
	}
	if !sig.ToggleVisible() {
		t.Fatal("toggle should show")
	}
	sig.SetVisible(false)
	if sig.Visible() {
		t.Fatal("SetVisible(false) failed")
	}
}

func TestParamSet(t *testing.T) {
	ps := NewParamSet()
	var n IntVar
	n.Store(8)
	if err := ps.Add(IntParam("elephants", &n, 0, 40)); err != nil {
		t.Fatal(err)
	}
	if err := ps.Add(IntParam("elephants", &n, 0, 40)); err == nil {
		t.Fatal("duplicate parameter should be rejected")
	}
	got, err := ps.Get("elephants")
	if err != nil || got != 8 {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if err := ps.Set("elephants", 16); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 16 {
		t.Fatal("Set did not write through")
	}
	if err := ps.Set("elephants", 99); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 40 {
		t.Fatalf("Set should clamp to max, got %d", n.Load())
	}
	if _, err := ps.Get("nope"); err == nil {
		t.Fatal("unknown get should fail")
	}
	if err := ps.Set("nope", 1); err == nil {
		t.Fatal("unknown set should fail")
	}
	if !ps.Remove("elephants") || ps.Remove("elephants") {
		t.Fatal("Remove semantics wrong")
	}
}

func TestParamReadOnly(t *testing.T) {
	ps := NewParamSet()
	ps.Add(&Param{Name: "ro", Get: func() float64 { return 1 }}) //nolint:errcheck
	if err := ps.Set("ro", 5); err == nil {
		t.Fatal("read-only set should fail")
	}
}

func TestBoolAndFloatParams(t *testing.T) {
	ps := NewParamSet()
	var b BoolVar
	var f FloatVar
	ps.Add(BoolParam("flag", &b))            //nolint:errcheck
	ps.Add(FloatParam("gain", &f, 0.0, 2.0)) //nolint:errcheck
	ps.Set("flag", 1)                        //nolint:errcheck
	if !b.Load() {
		t.Fatal("bool param set failed")
	}
	ps.Set("gain", 1.5) //nolint:errcheck
	if f.Load() != 1.5 {
		t.Fatal("float param set failed")
	}
	names := ps.Names()
	if len(names) != 2 || names[0] != "flag" {
		t.Fatalf("Names = %v", names)
	}
}

func TestStatsString(t *testing.T) {
	if ModePolling.String() != "polling" || ModeStopped.String() != "stopped" || ModePlayback.String() != "playback" {
		t.Fatal("mode names")
	}
	if TimeDomain.String() != "time" || FreqDomain.String() != "frequency" {
		t.Fatal("domain names")
	}
	if KindBuffer.String() != "BUFFER" || KindInteger.String() != "INTEGER" {
		t.Fatal("kind names")
	}
	if AggRate.String() != "rate" || AggNone.String() != "none" {
		t.Fatal("agg names")
	}
	if LineSolid.String() != "solid" || LineFilled.String() != "filled" {
		t.Fatal("line names")
	}
}

func TestElapsedTracksClock(t *testing.T) {
	sc, loop, _ := rig(t)
	loop.Advance(123 * time.Millisecond)
	if sc.Elapsed() != 123*time.Millisecond {
		t.Fatalf("Elapsed = %v", sc.Elapsed())
	}
}

func TestStepDirectCall(t *testing.T) {
	// Step is the programmatic polling interface; no timer required.
	sc, _, _ := rig(t)
	var v IntVar
	sig, _ := sc.AddSignal(Sig{Name: "v", Source: &v})
	sc.SetPollingMode(10 * time.Millisecond) //nolint:errcheck
	v.Store(3)
	sc.Step(0)
	sc.Step(2) // 2 lost + 1 sample
	if sig.Trace().Len() != 4 {
		t.Fatalf("trace len = %d, want 4", sig.Trace().Len())
	}
	if sc.Stats().LostTicks != 2 {
		t.Fatalf("lost = %d", sc.Stats().LostTicks)
	}
}

func TestRecordedTupleTimesIncrease(t *testing.T) {
	sc, loop, _ := rig(t)
	var v IntVar
	sc.AddSignal(Sig{Name: "v", Source: &v}) //nolint:errcheck
	var buf bytes.Buffer
	sc.SetRecorder(&buf)
	sc.SetPollingMode(30 * time.Millisecond) //nolint:errcheck
	sc.StartPolling()                        //nolint:errcheck
	loop.Advance(300 * time.Millisecond)
	sc.SetRecorder(nil) // disabling flushes
	if _, err := tuple.NewReader(strings.NewReader(buf.String()), true).ReadAll(); err != nil {
		t.Fatalf("recorded stream violates §3.3 ordering: %v", err)
	}
}
