package core

import (
	"math"
	"testing"
)

func TestTimedHistoryViewSinceEnvelope(t *testing.T) {
	th := NewTimedHistory(1 << 16)
	// 50k samples, 2ms apart, a triangle wave plus two planted extremes.
	const n = 50000
	for i := 0; i < n; i++ {
		v := float64(i % 997)
		switch i {
		case 40000:
			v = -5000
		case 45000:
			v = 9000
		}
		th.Push(int64(i)*2, v)
	}
	newest, ok := th.Newest()
	if !ok || newest != int64(n-1)*2 {
		t.Fatalf("newest = %d ok=%v", newest, ok)
	}

	// Window covering the planted extremes: the envelope must contain them.
	since := int64(40000-10) * 2
	cols := th.ViewSince(since, 64)
	if len(cols) == 0 || len(cols) > 64 {
		t.Fatalf("got %d cols", len(cols))
	}
	sawMin, sawMax := false, false
	var last int64
	for i, c := range cols {
		if c.Count > 0 && c.Min == -5000 {
			sawMin = true
		}
		if c.Count > 0 && c.Max == 9000 {
			sawMax = true
		}
		if i > 0 && c.Time < last {
			t.Fatalf("column times not monotonic at %d: %d < %d", i, c.Time, last)
		}
		last = c.Time
	}
	if !sawMin || !sawMax {
		t.Fatalf("envelope lost planted extremes: min=%v max=%v", sawMin, sawMax)
	}
	if last != newest {
		t.Fatalf("final column time = %d, want newest %d", last, newest)
	}
}

func TestTimedHistoryViewSinceWindowing(t *testing.T) {
	th := NewTimedHistory(1 << 12)
	for i := 0; i < 4096; i++ {
		th.Push(int64(i)*10, float64(i))
	}
	// A since inside the stream: columns must not reach much before it.
	// The slot mapping is bucket-granular (histFanout slots), so allow one
	// bucket of slack on values: since=20000ms → sample 2000.
	cols := th.ViewSince(20000, 32)
	if len(cols) == 0 {
		t.Fatal("no columns")
	}
	for _, c := range cols {
		if c.Count > 0 && c.Min < 2000-16 {
			t.Fatalf("column reaches back to sample %v, want >= %v", c.Min, 2000-16)
		}
	}
	// since == 0 covers everything retained.
	all := th.ViewSince(0, 16)
	if len(all) == 0 || all[0].Count == 0 {
		t.Fatal("empty full view")
	}
	// since beyond the newest stamp yields at most the accumulating tail.
	future := th.ViewSince(10*4096*10, 16)
	for _, c := range future {
		if c.Count > 16 {
			t.Fatalf("future window returned %d samples in one column", c.Count)
		}
	}
}

func TestTimedHistoryNonMonotonicStampsClamped(t *testing.T) {
	th := NewTimedHistory(256)
	th.Push(1000, 1)
	th.Push(500, 2) // behind: clamps to 1000
	for i := 0; i < 64; i++ {
		th.Push(1000+int64(i), float64(i))
	}
	newest, _ := th.Newest()
	if newest != 1063 {
		t.Fatalf("newest = %d", newest)
	}
	cols := th.ViewSince(0, 8)
	var total int64
	for i := 1; i < len(cols); i++ {
		if cols[i].Time < cols[i-1].Time {
			t.Fatalf("times went backwards: %v", cols)
		}
	}
	for _, c := range cols {
		total += c.Count
	}
	if total == 0 {
		t.Fatal("no samples summarized")
	}
}

func TestTimedHistoryRetentionRotation(t *testing.T) {
	th := NewTimedHistory(1 << 10) // 1024 slots
	const n = 10000
	for i := 0; i < n; i++ {
		th.Push(int64(i), float64(i))
	}
	// A since that rotated out clamps to the oldest retained sample; the
	// envelope of the full view must only cover recent samples.
	cols := th.ViewSince(0, 8)
	if len(cols) == 0 {
		t.Fatal("no columns")
	}
	oldestRetained := th.h.Oldest()
	for _, c := range cols {
		if c.Count > 0 && int64(c.Min) < oldestRetained-histFanout {
			t.Fatalf("rotated-out sample %v resurfaced (oldest retained %d)", c.Min, oldestRetained)
		}
	}
	if th.Samples() != n {
		t.Fatalf("samples = %d", th.Samples())
	}
}

func TestTimedHistoryHolesNaN(t *testing.T) {
	th := NewTimedHistory(256)
	for i := 0; i < 64; i++ {
		v := float64(i)
		if i%2 == 0 {
			v = math.NaN()
		}
		th.Push(int64(i), v)
	}
	for _, c := range th.ViewSince(0, 4) {
		if math.IsNaN(c.Min) || math.IsNaN(c.Max) {
			t.Fatalf("NaN leaked into envelope: %+v", c)
		}
	}
}
