package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/tuple"
)

// Feed is the scope-wide buffer behind BUFFER signals (§3.1, §4.4):
// applications (or the network server) enqueue timestamped samples from any
// goroutine; the scope drains samples whose timestamps have aged past the
// user-specified display delay at each poll. A sample that arrives after
// the scope has already displayed its timestamp window is dropped
// immediately and counted, matching the paper's late-data rule.
type Feed struct {
	mu        sync.Mutex
	pending   []tuple.Tuple
	displayed time.Duration // high-water mark of drained sample time
	started   bool
	pushed    int64
	dropped   int64
}

// NewFeed returns an empty feed.
func NewFeed() *Feed { return &Feed{} }

// Push enqueues a timestamped sample for the named BUFFER signal. It
// returns false when the sample arrived too late (its timestamp has already
// been displayed) and was dropped.
func (f *Feed) Push(at time.Duration, name string, v float64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pushed++
	if f.started && at <= f.displayed {
		f.dropped++
		return false
	}
	f.pending = append(f.pending, tuple.Tuple{
		Time:  at.Milliseconds(),
		Value: v,
		Name:  name,
	})
	return true
}

// PushTuple enqueues an already-encoded tuple (used by the streaming
// server).
func (f *Feed) PushTuple(t tuple.Tuple) bool {
	return f.Push(t.Timestamp(), t.Name, t.Value)
}

// Take removes and returns, in timestamp order, every pending sample whose
// time is at or before upTo. It advances the displayed high-water mark to
// upTo, so samples for that window arriving later will be dropped.
func (f *Feed) Take(upTo time.Duration) []tuple.Tuple {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.started = true
	if upTo > f.displayed {
		f.displayed = upTo
	}
	if len(f.pending) == 0 {
		return nil
	}
	// Partition in place: keep tuples newer than upTo.
	var out []tuple.Tuple
	keep := f.pending[:0]
	for _, t := range f.pending {
		if t.Timestamp() <= upTo {
			out = append(out, t)
		} else {
			keep = append(keep, t)
		}
	}
	f.pending = keep
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Pending returns the number of buffered samples not yet displayed.
func (f *Feed) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// Stats returns the lifetime counters: samples pushed and samples dropped
// for arriving late.
func (f *Feed) Stats() (pushed, dropped int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pushed, f.dropped
}

// Reset clears the feed and its high-water mark.
func (f *Feed) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pending = nil
	f.displayed = 0
	f.started = false
	f.pushed = 0
	f.dropped = 0
}
