package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tuple"
)

// feedShards is the number of independent shards a Feed is split into. It
// must be a power of two so the name-hash can be masked instead of modded.
// Publishers pushing different signals land on different shards and never
// contend on one mutex; 16 shards keep the memory overhead of an idle feed
// trivial while giving a machine-sized amount of lock spread.
const feedShards = 16

// feedShard is one independently locked slice of the feed. Tuples are
// routed to shards by signal name, so all samples of one signal share a
// shard and their arrival order is preserved end to end.
//
// The backlog is a head-offset deque: pushes append to buf, drains copy
// buf[head:head+cut] out and advance head, and the consumed prefix is
// compacted away once it outgrows the live tail — every tuple is moved
// O(1) times no matter how the push and drain cadences interleave, and the
// steady-state push→drain cycle allocates nothing (buffer capacity is
// retained across full drains).
type feedShard struct {
	mu sync.Mutex

	//gscope:guardedby mu
	buf []tuple.Tuple
	//gscope:guardedby mu
	head int // buf[:head] is consumed, buf[head:] is pending
	//gscope:guardedby mu
	displayed time.Duration // high-water mark of drained sample time
	//gscope:guardedby mu
	started bool
	//gscope:guardedby mu
	unsorted bool // pending arrived out of time order (rare)
	//gscope:guardedby mu
	lastTime int64 // newest timestamp in pending, for sortedness tracking
	//gscope:guardedby mu
	pushed int64
	//gscope:guardedby mu
	dropped int64
	// limNs mirrors the late-data cutoff for lock-free readers: it holds
	// displayed+1 in nanoseconds once the shard has started, 0 before.
	// Probe.RecordAt loads it to run the late check without taking mu
	// (`at <= displayed` ⟺ `int64(at) < limNs`); drains keep it in sync
	// under mu.
	limNs atomic.Int64
	// probes are the staging rings pinned to this shard; drains steal
	// their published samples under mu. Appended at registration.
	//gscope:guardedby mu
	probes []*Probe
	_      [24]byte // pad toward a cache line to limit false sharing
}

// note records t's timestamp for the sortedness check. Caller holds mu and
// has appended t to the backlog.
//
//gscope:hotpath
//gscope:locked mu
func (s *feedShard) note(t *tuple.Tuple) {
	if t.Time < s.lastTime {
		s.unsorted = true
	} else {
		s.lastTime = t.Time
	}
}

// emptied resets the sortedness tracking after the backlog fully drains.
// Caller holds mu.
//
//gscope:hotpath
//gscope:locked mu
func (s *feedShard) emptied() {
	s.unsorted = false
	s.lastTime = math.MinInt64
}

// Feed is the scope-wide buffer behind BUFFER signals (§3.1, §4.4):
// applications (or the network server) enqueue timestamped samples from any
// goroutine; the scope drains samples whose timestamps have aged past the
// user-specified display delay at each poll. A sample that arrives after
// the scope has already displayed its timestamp window is dropped
// immediately and counted, matching the paper's late-data rule.
//
// Internally the feed is sharded by signal name with per-shard locks, and
// the batch entry points (PushBatch, TakeBatch/TakeBatchInto, DrainInto)
// lock each shard once per batch, so many concurrent publishers scale
// without contending on a single mutex. The per-sample Push/Take API is a
// thin wrapper over the same path.
type Feed struct {
	shards [feedShards]feedShard

	// Probe/ID registrations. regs is an id-indexed copy-on-write snapshot
	// so PushID resolves a SignalID with one atomic load and one slice
	// index — no hash, no lock; regMu serializes (rare) registrations.
	regMu sync.Mutex
	regs  atomic.Pointer[[]feedReg]
	//gscope:guardedby regMu
	probes map[string]*Probe
	//gscope:guardedby regMu
	interner *tuple.Interner
	origin   time.Time // Probe.Record's fallback clock origin
}

// feedReg is one registered signal: its canonical name and pinned shard.
type feedReg struct {
	sh   *feedShard
	name string
}

// NewFeed returns an empty feed.
func NewFeed() *Feed { return &Feed{origin: time.Now()} }

// shardIndex routes a signal name to its shard (FNV-1a, masked).
//
//gscope:hotpath
func shardIndex(name string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h & (feedShards - 1))
}

// push appends one tuple to shard s, applying the late-data rule against
// at — the sample's full-precision arrival timestamp. t.Time is at
// truncated to milliseconds (the tuple wire granularity); the check must
// use the un-truncated duration, or a sample at 1.7ms compares as 1ms
// against a 1.5ms displayed watermark and is wrongly dropped even though
// its window has not been displayed yet. Caller must not hold the shard
// lock.
//
//gscope:hotpath
func (s *feedShard) push(t tuple.Tuple, at time.Duration) bool {
	s.mu.Lock()
	s.pushed++
	if s.started && at <= s.displayed {
		s.dropped++
		s.mu.Unlock()
		return false
	}
	s.buf = append(s.buf, t)
	s.note(&t)
	s.mu.Unlock()
	return true
}

// Push enqueues a timestamped sample for the named BUFFER signal. It
// returns false when the sample arrived too late (its timestamp has already
// been displayed) and was dropped. The late check runs at the caller's full
// sub-millisecond precision; only the stored tuple is truncated to the
// millisecond wire granularity.
//
//gscope:hotpath
func (f *Feed) Push(at time.Duration, name string, v float64) bool {
	return f.shards[shardIndex(name)].push(tuple.Tuple{
		Time:  at.Milliseconds(),
		Value: v,
		Name:  name,
	}, at)
}

// PushTuple enqueues an already-encoded tuple (used by the streaming
// server). Wire tuples carry millisecond stamps, so the late check runs at
// that granularity.
//
//gscope:hotpath
func (f *Feed) PushTuple(t tuple.Tuple) bool {
	return f.shards[shardIndex(t.Name)].push(t, t.Timestamp())
}

// pushRun appends a run of same-shard tuples under one lock acquisition.
// sorted tells the shard the run's timestamps are already non-decreasing
// (PushBatch verifies this in its routing scan); such runs, when wholly on
// time — the overwhelming common case — take a bulk path: one append, one
// copy.
//
//gscope:hotpath
func (s *feedShard) pushRun(run []tuple.Tuple, sorted bool) int {
	s.mu.Lock()
	s.pushed += int64(len(run))
	var accepted int
	switch {
	case sorted && (!s.started || run[0].Timestamp() > s.displayed):
		// No tuple can be late (the earliest is on time) and order is
		// verified, so the whole run appends as one copy.
		s.buf = append(s.buf, run...)
		accepted = len(run)
		if run[0].Time < s.lastTime {
			s.unsorted = true
		}
		if last := run[len(run)-1].Time; last > s.lastTime {
			s.lastTime = last
		}
	default:
		for i := range run {
			if s.started && run[i].Timestamp() <= s.displayed {
				s.dropped++
				continue
			}
			s.buf = append(s.buf, run[i])
			s.note(&run[i])
			accepted++
		}
	}
	s.mu.Unlock()
	return accepted
}

// PushBatch enqueues a batch of tuples, locking each shard at most once
// per run of same-signal tuples, and returns how many were accepted (the
// rest arrived late and were dropped). It is the publisher-side hot path:
// the network server and batch-oriented instrumentation call it with whole
// decoded read chunks.
//
//gscope:hotpath
func (f *Feed) PushBatch(batch []tuple.Tuple) int {
	if len(batch) == 0 {
		return 0
	}
	// Publisher batches overwhelmingly carry runs of one signal (a
	// publisher streams the signals it owns), so route by run: hash once
	// per run, lock once per run, append the whole run. The routing scan
	// doubles as the time-order check, so the shard can bulk-append
	// verified runs without re-reading them. A fully mixed batch degrades
	// to per-tuple runs, which is still one hash and a short uncontended
	// lock per tuple — no worse than per-sample Push.
	accepted := 0
	for start := 0; start < len(batch); {
		name := batch[start].Name
		sorted := true
		end := start + 1
		for end < len(batch) && batch[end].Name == name {
			if batch[end].Time < batch[end-1].Time {
				sorted = false
			}
			end++
		}
		accepted += f.shards[shardIndex(name)].pushRun(batch[start:end], sorted)
		start = end
	}
	return accepted
}

// Take removes and returns, in timestamp order, every pending sample whose
// time is at or before upTo. It advances the displayed high-water mark to
// upTo, so samples for that window arriving later will be dropped.
func (f *Feed) Take(upTo time.Duration) []tuple.Tuple { return f.TakeBatch(upTo) }

// byTime stable-sorts a backlog that arrived out of time order (rare: it
// takes a publisher emitting non-monotonic stamps into one shard).
type byTime []tuple.Tuple

func (b byTime) Len() int           { return len(b) }
func (b byTime) Less(i, j int) bool { return b[i].Time < b[j].Time }
func (b byTime) Swap(i, j int)      { b[i], b[j] = b[j], b[i] }

// TakeBatch drains every shard up to upTo and merges the results into one
// timestamp-ordered batch. Per-signal arrival order is preserved for equal
// timestamps: samples of one signal live on one shard, shard backlogs keep
// arrival order, and the merge breaks ties toward the lower shard — the
// same order a stable sort of the concatenation would produce.
func (f *Feed) TakeBatch(upTo time.Duration) []tuple.Tuple {
	return f.TakeBatchInto(upTo, nil)
}

// takeRuns drains every shard up to upTo, appending each shard's due
// prefix to dst (one copy, under the shard lock, so concurrent drains are
// safe), and returns the extended dst plus each shard's [start,end) span
// in it. Each span is internally time-ordered.
//
//gscope:hotpath
func (f *Feed) takeRuns(upTo time.Duration, dst []tuple.Tuple) ([]tuple.Tuple, [feedShards][2]int, int) {
	var spans [feedShards][2]int
	total := 0
	for s := range f.shards {
		sh := &f.shards[s]
		sh.mu.Lock()
		sh.stealLocked()
		sh.started = true
		if upTo > sh.displayed {
			sh.displayed = upTo
		}
		sh.limNs.Store(int64(sh.displayed) + 1)
		live := sh.buf[sh.head:]
		n := len(live)
		if n == 0 {
			sh.mu.Unlock()
			continue
		}
		if sh.unsorted {
			// Out-of-order backlog (rare): restore time order in place —
			// a stable sort, so per-signal arrival order survives for
			// equal stamps — after which the prefix rule applies again.
			sort.Stable(byTime(live)) //gscope:allow hotpath rare out-of-order backlog; the interface box does not escape
			sh.unsorted = false
		}
		// The backlog is time-ordered (pushers stamp monotonically), so
		// the due tuples are a prefix found by binary search. The undue
		// tail is never scanned or copied, which keeps a drain
		// O(due + log n) however deep the backlog runs.
		//gscope:allow hotpath sort.Search does not retain its predicate, so the closure stays on the stack
		cut := sort.Search(n, func(i int) bool {
			return live[i].Timestamp() > upTo
		})
		if cut > 0 {
			start := len(dst)
			dst = append(dst, live[:cut]...)
			spans[s] = [2]int{start, start + cut}
			total += cut
			if cut == n {
				// Fully drained: truncate, keeping the capacity for the
				// next fill.
				sh.buf = sh.buf[:0]
				sh.head = 0
				sh.emptied()
			} else {
				sh.head += cut
				// Compact once the consumed prefix reaches 3× the live
				// tail: amortized, each tuple moves at most an extra 1/3
				// of a copy, and dead space never exceeds 3/4 of the
				// buffer.
				if sh.head >= 3*(len(sh.buf)-sh.head) {
					kept := copy(sh.buf, sh.buf[sh.head:])
					sh.buf = sh.buf[:kept]
					sh.head = 0
				}
			}
		}
		sh.mu.Unlock()
	}
	return dst, spans, total
}

// TakeBatchInto is TakeBatch appending into buf (which may be nil), so a
// steady-state consumer draining in a loop can reuse one buffer. When more
// than one shard holds due data it still allocates a scratch slice for the
// k-way time merge; consumers that only need per-signal ordering should
// use DrainInto, the allocation-free hot path. It returns the extended
// buffer; an empty drain returns buf unchanged (nil stays nil).
func (f *Feed) TakeBatchInto(upTo time.Duration, buf []tuple.Tuple) []tuple.Tuple {
	base := len(buf)
	buf, spans, total := f.takeRuns(upTo, buf)
	if total == 0 {
		return buf
	}
	nruns := 0
	for s := range spans {
		if spans[s][1] > spans[s][0] {
			nruns++
		}
	}
	if nruns == 1 {
		return buf // a single span is already time-ordered in place
	}
	// K-way merge of the sorted spans into a scratch, ties to the lowest
	// shard index, then copy back over the collected region.
	merged := make([]tuple.Tuple, 0, total)
	var idx [feedShards]int
	for s := range spans {
		idx[s] = spans[s][0]
	}
	for len(merged) < total {
		best := -1
		var bt int64
		for s := range spans {
			if idx[s] >= spans[s][1] {
				continue
			}
			if t := buf[idx[s]].Time; best < 0 || t < bt {
				best, bt = s, t
			}
		}
		merged = append(merged, buf[idx[best]])
		idx[best]++
	}
	copy(buf[base:], merged)
	return buf
}

// DrainInto is the scope-consumer drain: like TakeBatchInto it removes and
// returns every due sample appending into buf, but the result is ordered
// only per signal (each signal's samples in time order, arrival order for
// ties; how different signals interleave is unspecified), skipping the
// global timestamp merge. That is exactly the guarantee a per-window
// consumer needs — the scope keeps the last sample per signal per window —
// and it makes the drain a straight copy-out.
//
//gscope:hotpath
func (f *Feed) DrainInto(upTo time.Duration, buf []tuple.Tuple) []tuple.Tuple {
	buf, _, _ = f.takeRuns(upTo, buf)
	return buf
}

// Pending returns the number of buffered samples not yet displayed,
// including probe samples already published to their staging rings.
func (f *Feed) Pending() int {
	n := 0
	for s := range f.shards {
		sh := &f.shards[s]
		sh.mu.Lock()
		n += len(sh.buf) - sh.head
		for _, p := range sh.probes {
			n += int(p.tail.Load() - p.head.Load())
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats returns the lifetime counters: samples pushed and samples dropped
// for arriving late. Probe samples enter the pushed count when a drain (or
// a ring overflow) absorbs them from their staging ring; samples a probe
// rejected at record time for being late count as both pushed and dropped,
// matching Push's accounting.
func (f *Feed) Stats() (pushed, dropped int64) {
	for s := range f.shards {
		sh := &f.shards[s]
		sh.mu.Lock()
		pushed += sh.pushed
		dropped += sh.dropped
		for _, p := range sh.probes {
			late := p.late.Load()
			pushed += late
			dropped += late
		}
		sh.mu.Unlock()
	}
	return pushed, dropped
}

// Reset clears the feed and its high-water mark. Probes stay registered;
// their published staging is discarded and their counters cleared. Reset
// is not synchronized with goroutines still recording — samples staged but
// not yet published survive into the fresh feed.
func (f *Feed) Reset() {
	for s := range f.shards {
		sh := &f.shards[s]
		sh.mu.Lock()
		sh.buf = nil
		sh.head = 0
		sh.displayed = 0
		sh.started = false
		sh.pushed = 0
		sh.dropped = 0
		sh.limNs.Store(0)
		for _, p := range sh.probes {
			p.head.Store(p.tail.Load())
			p.late.Store(0)
		}
		sh.emptied()
		sh.mu.Unlock()
	}
}
