package core

import "math"

// Trace is the ring buffer of displayed samples for one signal: the sweep
// history behind the scope canvas. Slots may be holes (no sample was
// acquired for that polling interval, e.g. during lost timeouts or sparse
// playback); the renderer leaves gaps there rather than inventing data.
type Trace struct {
	vals  []float64
	holes []bool
	head  int // index of the slot that will be written next
	n     int // number of valid slots, up to len(vals)
	total int64
}

// NewTrace allocates a trace with the given capacity (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{
		vals:  make([]float64, capacity),
		holes: make([]bool, capacity),
	}
}

// Cap returns the ring capacity.
func (t *Trace) Cap() int { return len(t.vals) }

// Len returns the number of recorded slots (samples plus holes), at most
// Cap.
func (t *Trace) Len() int { return t.n }

// Total returns the number of slots ever pushed, including those that have
// rotated out of the ring.
func (t *Trace) Total() int64 { return t.total }

// Push appends a sample.
func (t *Trace) Push(v float64) { t.push(v, false) }

// PushHole appends a hole (a polling interval with no sample).
func (t *Trace) PushHole() { t.push(math.NaN(), true) }

func (t *Trace) push(v float64, hole bool) {
	t.vals[t.head] = v
	t.holes[t.head] = hole
	t.head = (t.head + 1) % len(t.vals)
	if t.n < len(t.vals) {
		t.n++
	}
	t.total++
}

// At returns the sample that is 'back' slots behind the most recent one:
// At(0) is the newest slot. ok is false for holes and for indexes beyond
// the recorded history.
func (t *Trace) At(back int) (v float64, ok bool) {
	if back < 0 || back >= t.n {
		return 0, false
	}
	i := t.head - 1 - back
	i = ((i % len(t.vals)) + len(t.vals)) % len(t.vals)
	if t.holes[i] {
		return 0, false
	}
	return t.vals[i], true
}

// Last returns the most recent non-hole sample within the ring, scanning
// back at most the whole ring. ok is false when the ring holds no samples.
func (t *Trace) Last() (v float64, ok bool) {
	for back := 0; back < t.n; back++ {
		if v, ok := t.At(back); ok {
			return v, true
		}
	}
	return 0, false
}

// Recent copies the newest n slots into vals (oldest first), marking holes
// with NaN. It returns the number of slots copied (less than n when the
// history is shorter).
func (t *Trace) Recent(n int) []float64 {
	if n > t.n {
		n = t.n
	}
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		back := n - 1 - i
		if v, ok := t.At(back); ok {
			out[i] = v
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// RecentValues returns the newest non-hole samples (oldest first), up to n;
// holes are skipped. Used by the frequency-domain view, which needs a
// contiguous sample vector.
func (t *Trace) RecentValues(n int) []float64 {
	if n > t.n {
		n = t.n
	}
	out := make([]float64, 0, n)
	for back := t.n - 1; back >= 0 && len(out) < n; back-- {
		if v, ok := t.At(back); ok {
			out = append(out, v)
		}
	}
	return out
}

// Clear resets the trace to empty without reallocating.
func (t *Trace) Clear() {
	t.head = 0
	t.n = 0
	t.total = 0
}

// MinMax scans the recorded samples and returns their range; ok is false
// when the trace holds only holes.
func (t *Trace) MinMax() (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for back := 0; back < t.n; back++ {
		if v, vok := t.At(back); vok {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			ok = true
		}
	}
	if !ok {
		return 0, 0, false
	}
	return lo, hi, true
}
