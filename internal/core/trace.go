package core

import "math"

// Trace is the ring buffer of displayed samples for one signal: the sweep
// history behind the scope canvas. Slots may be holes (no sample was
// acquired for that polling interval, e.g. during lost timeouts or sparse
// playback); the renderer leaves gaps there rather than inventing data.
type Trace struct {
	vals  []float64
	holes []bool
	head  int // index of the slot that will be written next
	n     int // number of valid slots, up to len(vals)
	total int64
	hist  *History // optional tiered history behind the ring
}

// NewTrace allocates a trace with the given capacity (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{
		vals:  make([]float64, capacity),
		holes: make([]bool, capacity),
	}
}

// Cap returns the ring capacity.
func (t *Trace) Cap() int { return len(t.vals) }

// Len returns the number of recorded slots (samples plus holes), at most
// Cap.
func (t *Trace) Len() int { return t.n }

// Total returns the number of slots ever pushed, including those that have
// rotated out of the ring.
func (t *Trace) Total() int64 { return t.total }

// EnableHistory backs the ring with a tiered decimated store retaining
// approximately the given number of most recent slots (non-positive selects
// DefaultHistoryRetention). Samples pushed from then on are folded into the
// store; the renderer reads it through View. Enabling history on a trace
// that already has one replaces it (history restarts empty).
func (t *Trace) EnableHistory(retention int) {
	t.hist = NewHistory(retention)
}

// DisableHistory detaches the tiered store; the ring keeps working alone.
func (t *Trace) DisableHistory() { t.hist = nil }

// History returns the tiered history store, or nil when disabled.
func (t *Trace) History() *History { return t.hist }

// Push appends a sample. NaN is recorded as a hole: a NaN sample carries no
// displayable value, and storing it as data would poison min/max scans and
// decimated envelopes downstream.
func (t *Trace) Push(v float64) { t.push(v, math.IsNaN(v)) }

// PushHole appends a hole (a polling interval with no sample).
func (t *Trace) PushHole() { t.push(math.NaN(), true) }

func (t *Trace) push(v float64, hole bool) {
	t.vals[t.head] = v
	t.holes[t.head] = hole
	t.head = (t.head + 1) % len(t.vals)
	if t.n < len(t.vals) {
		t.n++
	}
	t.total++
	if t.hist != nil {
		t.hist.Push(v, hole)
	}
}

// At returns the sample that is 'back' slots behind the most recent one:
// At(0) is the newest slot. ok is false for holes and for indexes beyond
// the recorded history.
func (t *Trace) At(back int) (v float64, ok bool) {
	if back < 0 || back >= t.n {
		return 0, false
	}
	i := t.head - 1 - back
	i = ((i % len(t.vals)) + len(t.vals)) % len(t.vals)
	if t.holes[i] {
		return 0, false
	}
	return t.vals[i], true
}

// Last returns the most recent non-hole sample within the ring, scanning
// back at most the whole ring. ok is false when the ring holds no samples.
func (t *Trace) Last() (v float64, ok bool) {
	for back := 0; back < t.n; back++ {
		if v, ok := t.At(back); ok {
			return v, true
		}
	}
	return 0, false
}

// Recent copies the newest n slots into vals (oldest first), marking holes
// with NaN. Because Push records NaN samples as holes, a NaN in the result
// always means "no data here" (a render gap) and never a data value —
// consumers can test slots with math.IsNaN alone. It returns the number of
// slots copied (less than n when the history is shorter).
func (t *Trace) Recent(n int) []float64 {
	if n > t.n {
		n = t.n
	}
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		back := n - 1 - i
		if v, ok := t.At(back); ok {
			out[i] = v
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// RecentValues returns the newest non-hole samples (oldest first), up to n;
// holes are skipped. Used by the frequency-domain view, which needs a
// contiguous sample vector.
func (t *Trace) RecentValues(n int) []float64 {
	if n > t.n {
		n = t.n
	}
	out := make([]float64, 0, n)
	for back := t.n - 1; back >= 0 && len(out) < n; back-- {
		if v, ok := t.At(back); ok {
			out = append(out, v)
		}
	}
	return out
}

// Clear resets the trace (and its history store, if any) to empty without
// reallocating.
func (t *Trace) Clear() {
	t.head = 0
	t.n = 0
	t.total = 0
	if t.hist != nil {
		t.hist.Clear()
	}
}

// MinMax scans the recorded samples and returns their range; ok is false
// when the trace holds only holes. Holes and NaN slots are skipped, so the
// result is always finite — autoscale and decimated views can use it
// directly.
func (t *Trace) MinMax() (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for back := 0; back < t.n; back++ {
		if v, vok := t.At(back); vok && !math.IsNaN(v) {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			ok = true
		}
	}
	if !ok {
		return 0, 0, false
	}
	return lo, hi, true
}

// View summarizes the newest window slots into cols column buckets (oldest
// column first) for decimated rendering: column j covers the slot range
// [start+j·window/cols, start+(j+1)·window/cols) where start is window
// slots back from the newest slot. A column's Min/Max always bound every
// non-hole sample in its range (envelopes are conservative: near decimation
// boundaries they may also include up to one neighboring bucket span).
// Columns whose range holds no data have Count zero.
//
// Narrow windows are answered from the ring; windows beyond the ring come
// from the tiered history store in O(cols) regardless of window size. With
// no history enabled, slots older than the ring are simply empty.
func (t *Trace) View(window int, cols int) []Bucket {
	if window <= 0 || cols <= 0 {
		return nil
	}
	out := make([]Bucket, cols)
	w := int64(window)
	start := t.total - w
	ringStart := t.total - int64(t.n)
	// Serve from the ring when the window fits in it (each column scans
	// its own slots: total work is one ring pass, bounded by the ring
	// capacity) — the history pyramid would only widen the envelopes.
	if start >= ringStart || t.hist == nil {
		for j := 0; j < cols; j++ {
			lo := start + w*int64(j)/int64(cols)
			hi := start + w*int64(j+1)/int64(cols)
			if hi > t.total {
				hi = t.total
			}
			if lo < ringStart {
				lo = ringStart // pre-ring slots are gone without history
			}
			for abs := lo; abs < hi; abs++ {
				back := int(t.total - 1 - abs)
				if v, ok := t.At(back); ok {
					out[j].add(v, false)
				}
			}
		}
		return out
	}
	for j := 0; j < cols; j++ {
		lo := start + w*int64(j)/int64(cols)
		hi := start + w*int64(j+1)/int64(cols)
		out[j] = t.hist.Query(lo, hi)
	}
	return out
}
