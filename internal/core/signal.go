// Package core implements the gscope engine: signal acquisition (polled,
// buffered and playback), per-signal parameters and filtering, event
// aggregation, the sweep/trace model with lost-timeout compensation, control
// parameters, recording, and canvas rendering. It is the Go counterpart of
// the paper's GtkScope/GtkScopeSignal machinery (§2–§4); the package-level
// gscope facade re-exports the public surface.
package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/draw"
	"repro/internal/tuple"
)

// Kind enumerates the signal types of the paper's GtkScopeSig (§3.1). The
// kind determines how a signal is sampled: all kinds except KindBuffer are
// unbuffered (polled directly); KindBuffer signals are fed through the
// scope-wide timestamped buffer and displayed with a delay.
type Kind int

// Signal kinds, mirroring INTEGER, BOOLEAN, SHORT, FLOAT, FUNC and BUFFER.
const (
	KindInteger Kind = iota
	KindBoolean
	KindShort
	KindFloat
	KindFunc
	KindBuffer
)

// String names the kind like the paper's C enumerators.
func (k Kind) String() string {
	switch k {
	case KindInteger:
		return "INTEGER"
	case KindBoolean:
		return "BOOLEAN"
	case KindShort:
		return "SHORT"
	case KindFloat:
		return "FLOAT"
	case KindFunc:
		return "FUNC"
	case KindBuffer:
		return "BUFFER"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Source yields one sampling point when polled. The ok result is false when
// no value is currently available (the scope leaves a hole in the trace).
type Source interface {
	Sample() (v float64, ok bool)
}

// The paper's simplest signal is "a signal name and a word of memory whose
// value is polled". Go forbids racy plain loads from other goroutines, so
// the "word of memory" is expressed as small atomic variable types that the
// application mutates from any thread and the scope polls safely.

// IntVar is a pollable integer word (the INTEGER signal type).
type IntVar struct{ v atomic.Int64 }

// Store sets the value.
func (x *IntVar) Store(v int64) { x.v.Store(v) }

// Load returns the value.
func (x *IntVar) Load() int64 { return x.v.Load() }

// Add atomically adds d and returns the new value.
func (x *IntVar) Add(d int64) int64 { return x.v.Add(d) }

// Sample implements Source.
func (x *IntVar) Sample() (float64, bool) { return float64(x.v.Load()), true }

// BoolVar is a pollable boolean word (the BOOLEAN signal type); it samples
// as 0 or 1.
type BoolVar struct{ v atomic.Bool }

// Store sets the value.
func (x *BoolVar) Store(v bool) { x.v.Store(v) }

// Load returns the value.
func (x *BoolVar) Load() bool { return x.v.Load() }

// Sample implements Source.
func (x *BoolVar) Sample() (float64, bool) {
	if x.v.Load() {
		return 1, true
	}
	return 0, true
}

// ShortVar is a pollable 16-bit word (the SHORT signal type). Stores are
// truncated to int16 like the C original's short.
type ShortVar struct{ v atomic.Int32 }

// Store sets the value, truncating to 16 bits.
func (x *ShortVar) Store(v int16) { x.v.Store(int32(v)) }

// Load returns the value.
func (x *ShortVar) Load() int16 { return int16(x.v.Load()) }

// Sample implements Source.
func (x *ShortVar) Sample() (float64, bool) { return float64(int16(x.v.Load())), true }

// FloatVar is a pollable float word (the FLOAT signal type).
type FloatVar struct{ bits atomic.Uint64 }

// Store sets the value.
func (x *FloatVar) Store(v float64) { x.bits.Store(math.Float64bits(v)) }

// Load returns the value.
func (x *FloatVar) Load() float64 { return math.Float64frombits(x.bits.Load()) }

// Sample implements Source.
func (x *FloatVar) Sample() (float64, bool) { return math.Float64frombits(x.bits.Load()), true }

// FuncSource adapts a function to a Source (the FUNC signal type). The
// paper invokes the function with two user-supplied arguments; Go closures
// capture arguments directly, so the adapter takes a plain func.
type FuncSource func() float64

// Sample implements Source.
func (f FuncSource) Sample() (float64, bool) { return f(), true }

// FuncWithArgs reproduces the paper's two-argument FUNC signature
// (fn, arg1, arg2) for callers porting C gscope code literally.
func FuncWithArgs(fn func(arg1, arg2 any) float64, arg1, arg2 any) FuncSource {
	return func() float64 { return fn(arg1, arg2) }
}

// LineMode selects how a trace is drawn, the paper's "line mode in which
// the signal is displayed".
type LineMode int

// Line modes.
const (
	// LineSolid connects successive samples.
	LineSolid LineMode = iota
	// LinePoints plots isolated sample points.
	LinePoints
	// LineFilled fills from the sample down to the signal's zero level.
	LineFilled
)

// String names the line mode.
func (m LineMode) String() string {
	switch m {
	case LineSolid:
		return "solid"
	case LinePoints:
		return "points"
	case LineFilled:
		return "filled"
	default:
		return fmt.Sprintf("LineMode(%d)", int(m))
	}
}

// Sig is the signal specification an application passes to the scope — the
// Go analogue of the paper's GtkScopeSig structure (§3.1). Name and either
// Source (for unbuffered kinds) or Kind == KindBuffer are required; the
// remaining fields are the optional parameters with the paper's defaults.
type Sig struct {
	// Name identifies the signal on the scope and in tuple streams.
	Name string
	// Kind determines the sampling discipline. When Source is one of the
	// variable types (IntVar etc.) the kind may be left zero and is
	// inferred.
	Kind Kind
	// Source supplies samples for unbuffered kinds; nil for KindBuffer.
	Source Source
	// Color of the trace; the zero value selects the next palette color.
	Color draw.RGB
	// HasColor marks Color as explicitly set (so black traces are
	// expressible).
	HasColor bool
	// Min and Max give the displayed value range for the default zoom and
	// bias; both zero means the default 0..100.
	Min, Max float64
	// Line selects the drawing style.
	Line LineMode
	// Hidden starts the signal hidden; left-clicking its name (or calling
	// Signal.SetVisible) toggles display.
	Hidden bool
	// FilterAlpha is the α of the low-pass filter y[i] = α·y[i-1] +
	// (1-α)·x[i]; 0 (the default) leaves the signal unfiltered, values up
	// to 1 smooth it increasingly.
	FilterAlpha float64
	// Agg selects an aggregation function applied to events pushed via
	// Scope.Event between polls (§4.2). AggNone samples Source directly.
	Agg Aggregator
}

// inferKind guesses the Kind from the source's concrete type when the
// caller left it zero with a non-integer source.
func (s Sig) inferKind() Kind {
	if s.Kind != KindInteger {
		return s.Kind
	}
	switch s.Source.(type) {
	case *BoolVar:
		return KindBoolean
	case *ShortVar:
		return KindShort
	case *FloatVar:
		return KindFloat
	case FuncSource:
		return KindFunc
	default:
		return s.Kind
	}
}

// Validate checks the spec for structural errors.
func (s Sig) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("core: signal must have a name")
	}
	if err := tuple.ValidateName(s.Name); err != nil {
		// Reject at registration: a name the §3.3 wire format cannot
		// carry would silently corrupt recordings and streams later.
		return fmt.Errorf("core: signal %w", err)
	}
	kind := s.inferKind()
	if kind == KindBuffer {
		if s.Source != nil {
			return fmt.Errorf("core: BUFFER signal %q must not have a Source", s.Name)
		}
	} else if s.Source == nil && s.Agg == AggNone {
		return fmt.Errorf("core: signal %q needs a Source (or an Aggregator)", s.Name)
	}
	if s.FilterAlpha < 0 || s.FilterAlpha > 1 {
		return fmt.Errorf("core: signal %q filter α %g outside [0,1]", s.Name, s.FilterAlpha)
	}
	if s.Min != 0 || s.Max != 0 {
		if !(s.Max > s.Min) {
			return fmt.Errorf("core: signal %q min %g must be below max %g", s.Name, s.Min, s.Max)
		}
	}
	return nil
}
