package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/glib"
	"repro/internal/tuple"
)

// newTestScope builds a virtual-clock scope for probe tests.
func newTestScope(t *testing.T) *Scope {
	t.Helper()
	vc := glib.NewVirtualClock(time.Unix(0, 0))
	loop := glib.NewLoop(vc, glib.WithGranularity(0))
	return New(loop, "test", 200, 100)
}

func TestProbeRecordTakeRoundTrip(t *testing.T) {
	f := NewFeed()
	p, err := f.Probe("cwnd")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "cwnd" || p.ID() != 0 {
		t.Fatalf("probe identity: name=%q id=%d", p.Name(), p.ID())
	}
	for i := 0; i < 10; i++ {
		if !p.RecordAt(time.Duration(i)*10*time.Millisecond, float64(i)) {
			t.Fatalf("RecordAt(%d) rejected", i)
		}
	}
	p.Flush()
	got := f.Take(time.Second)
	if len(got) != 10 {
		t.Fatalf("Take returned %d tuples, want 10", len(got))
	}
	for i, tu := range got {
		want := tuple.Tuple{Time: int64(i * 10), Value: float64(i), Name: "cwnd"}
		if tu != want {
			t.Fatalf("tuple %d = %+v, want %+v", i, tu, want)
		}
	}
}

// Records spanning more than the publication interval become visible to
// drains without an explicit Flush.
func TestProbeAutoPublishBySpan(t *testing.T) {
	f := NewFeed()
	p, err := f.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	p.RecordAt(1*time.Millisecond, 1)
	p.RecordAt(3*time.Millisecond, 2) // spans past 1ms → publishes both
	if got := f.Take(10 * time.Millisecond); len(got) != 2 {
		t.Fatalf("drain saw %d samples, want 2 (span publication)", len(got))
	}
}

// A full ring self-flushes into the shard under its lock, so an arbitrary
// number of records between drains loses nothing.
func TestProbeRingOverflowFlushes(t *testing.T) {
	f := NewFeed()
	p, err := f.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	const n = 10 * probeRingSize
	for i := 0; i < n; i++ {
		// Sub-millisecond spacing, so only the count/overflow rules can
		// publish.
		if !p.RecordAt(time.Duration(i)*time.Microsecond, float64(i)) {
			t.Fatalf("record %d rejected", i)
		}
	}
	p.Flush()
	got := f.Take(time.Second)
	if len(got) != n {
		t.Fatalf("drained %d, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Value != got[i-1].Value+1 {
			t.Fatalf("order broken at %d: %v then %v", i, got[i-1], got[i])
		}
	}
}

func TestProbeLateDrop(t *testing.T) {
	f := NewFeed()
	p, err := f.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	f.Take(100 * time.Millisecond) // advance the displayed watermark
	if p.RecordAt(50*time.Millisecond, 1) {
		t.Fatal("late sample accepted at record time")
	}
	if p.Late() != 1 {
		t.Fatalf("Late = %d", p.Late())
	}
	// Exactly-at-watermark is late (`at <= displayed`), one past is not.
	if p.RecordAt(100*time.Millisecond, 2) {
		t.Fatal("watermark-equal sample accepted")
	}
	if !p.RecordAt(100*time.Millisecond+time.Nanosecond, 3) {
		t.Fatal("on-time sample rejected")
	}
	// Record-time rejections count immediately; the accepted sample joins
	// the pushed count when a drain absorbs it from the ring.
	p.Flush()
	f.Take(time.Second)
	pushed, dropped := f.Stats()
	if pushed != 3 || dropped != 2 {
		t.Fatalf("stats = %d pushed, %d dropped; want 3, 2", pushed, dropped)
	}
}

// Samples staged before a drain advanced the watermark are late-dropped
// when the ring is stolen, preserving the late-data rule end to end.
func TestProbeStealAppliesLateRule(t *testing.T) {
	f := NewFeed()
	p, err := f.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	p.RecordAt(5*time.Millisecond, 1)
	p.Flush()
	// Stage a second sample that stays unpublished (sub-ms span, below the
	// publication count), then advance the watermark past it with a drain:
	// the record-time check could not see the new watermark, so the steal
	// must apply the late rule instead.
	p.RecordAt(5*time.Millisecond+500*time.Microsecond, 2)
	f.Take(50 * time.Millisecond) // steals {5ms}, watermark → 50ms
	p.Flush()                     // publishes the staged 5.5ms sample
	got := f.Take(100 * time.Millisecond)
	if len(got) != 0 {
		t.Fatalf("stale staged sample delivered: %+v", got)
	}
	_, dropped := f.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (steal-time late drop)", dropped)
	}
}

func TestProbeIdempotentAndValidation(t *testing.T) {
	f := NewFeed()
	p1, err := f.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("Probe not idempotent per name")
	}
	if _, err := f.Probe("bad\nname"); err == nil {
		t.Fatal("invalid name accepted")
	}
	if _, err := f.Probe(" padded"); err == nil {
		t.Fatal("padded name accepted")
	}
}

func TestPushIDMatchesPush(t *testing.T) {
	f := NewFeed()
	id, err := f.Register("cwnd")
	if err != nil {
		t.Fatal(err)
	}
	if id2, err := f.Register("cwnd"); err != nil || id2 != id {
		t.Fatalf("re-Register = %d, %v", id2, err)
	}
	ref := NewFeed()
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Millisecond
		if f.PushID(id, at, float64(i)) != ref.Push(at, "cwnd", float64(i)) {
			t.Fatalf("PushID/Push accept mismatch at %d", i)
		}
	}
	got := f.Take(time.Second)
	want := ref.Take(time.Second)
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("tuple %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Late drops behave identically too.
	if f.PushID(id, 10*time.Millisecond, 1) {
		t.Fatal("late PushID accepted")
	}
	// Unknown IDs are dropped, not misrouted.
	if f.PushID(tuple.SignalID(99), time.Second, 1) {
		t.Fatal("unknown id accepted")
	}
	if f.PushID(tuple.NoSignal, time.Second, 1) {
		t.Fatal("NoSignal accepted")
	}
}

func TestPushIDBatch(t *testing.T) {
	f := NewFeed()
	id, err := f.Register("s")
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]tuple.Sample, 64)
	for i := range samples {
		samples[i] = tuple.Sample{At: time.Duration(i) * time.Millisecond, Value: float64(i)}
	}
	if n := f.PushIDBatch(id, samples); n != 64 {
		t.Fatalf("accepted %d, want 64", n)
	}
	f.Take(30 * time.Millisecond)
	// A second batch straddling the watermark: 0..30ms late, rest on time.
	if n := f.PushIDBatch(id, samples); n != 33 {
		t.Fatalf("accepted %d of straddling batch, want 33", n)
	}
	if n := f.PushIDBatch(id, nil); n != 0 {
		t.Fatalf("empty batch accepted %d", n)
	}
	if n := f.PushIDBatch(tuple.SignalID(7), samples); n != 0 {
		t.Fatalf("unknown id accepted %d", n)
	}
}

// An ID interned directly through the feed's Interner (without Register)
// still routes correctly on first use.
func TestPushIDLazyRegistration(t *testing.T) {
	f := NewFeed()
	id, err := f.Interner().Intern("direct")
	if err != nil {
		t.Fatal(err)
	}
	if !f.PushID(id, 5*time.Millisecond, 42) {
		t.Fatal("lazy PushID rejected")
	}
	got := f.Take(time.Second)
	if len(got) != 1 || got[0].Name != "direct" || got[0].Value != 42 {
		t.Fatalf("got %+v", got)
	}
}

// Mixing the string API and a probe on one signal keeps the drain's time
// order (arrival order for ties is unspecified across the two paths).
func TestProbeAndPushInterleave(t *testing.T) {
	f := NewFeed()
	p, err := f.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	p.RecordAt(10*time.Millisecond, 1)
	f.Push(20*time.Millisecond, "s", 2) // lands in shard buf before the steal
	p.RecordAt(30*time.Millisecond, 3)
	p.Flush()
	got := f.Take(time.Second)
	if len(got) != 3 {
		t.Fatalf("got %d tuples", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("time order broken: %+v", got)
		}
	}
}

func TestProbePendingAndReset(t *testing.T) {
	f := NewFeed()
	p, err := f.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	p.RecordAt(time.Millisecond, 1)
	p.Flush()
	if n := f.Pending(); n != 1 {
		t.Fatalf("Pending = %d, want 1", n)
	}
	f.Reset()
	if n := f.Pending(); n != 0 {
		t.Fatalf("Pending after Reset = %d", n)
	}
	if got := f.Take(time.Second); len(got) != 0 {
		t.Fatalf("Take after Reset returned %+v", got)
	}
	// The probe survives Reset and keeps working. (The Take above advanced
	// the watermark to 1s even on the empty feed, so record past it.)
	p.RecordAt(2*time.Second, 2)
	p.Flush()
	if got := f.Take(3 * time.Second); len(got) != 1 {
		t.Fatalf("probe dead after Reset: %+v", got)
	}
}

// Concurrent probes (one goroutine each) drain cleanly under -race, with a
// concurrent drainer.
func TestProbesConcurrent(t *testing.T) {
	f := NewFeed()
	const producers = 4
	const per = 5000
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		p, err := f.Probe(fmt.Sprintf("sig%d", g))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.RecordAt(time.Duration(i)*time.Millisecond, float64(i))
			}
			p.Flush()
		}()
	}
	// A concurrent drainer advances the watermark while producers record;
	// samples recorded behind it are legitimately late-dropped, so the
	// invariant is conservation: drained + dropped == recorded.
	stop := make(chan struct{})
	done := make(chan struct{})
	drained := 0
	go func() {
		defer close(done)
		var buf []tuple.Tuple
		cursor := time.Duration(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cursor += time.Millisecond
			buf = f.DrainInto(cursor, buf[:0])
			drained += len(buf)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	final := f.TakeBatch(time.Duration(per) * time.Millisecond)
	drained += len(final)
	pushed, dropped := f.Stats()
	if pushed != producers*per {
		t.Fatalf("pushed = %d, want %d", pushed, producers*per)
	}
	if int64(drained)+dropped != pushed {
		t.Fatalf("conservation broken: drained %d + dropped %d != pushed %d",
			drained, dropped, pushed)
	}
}

func TestScopeProbe(t *testing.T) {
	f := newTestScope(t)
	if _, err := f.AddSignal(Sig{Name: "buf", Kind: KindBuffer}); err != nil {
		t.Fatal(err)
	}
	p, err := f.Probe("buf")
	if err != nil {
		t.Fatal(err)
	}
	// Signal.Probe returns the same handle.
	p2, err := f.Signal("buf").Probe()
	if err != nil || p2 != p {
		t.Fatalf("Signal.Probe = %v, %v", p2, err)
	}
	// Probing a non-BUFFER signal is an error.
	var v IntVar
	if _, err := f.AddSignal(Sig{Name: "polled", Source: &v}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Probe("polled"); err == nil {
		t.Fatal("probe on a polled signal accepted")
	}
	// A probe may precede its display signal.
	if _, err := f.Probe("early"); err != nil {
		t.Fatal(err)
	}
}

// Re-registering a probe must not mutate the live handle: Scope.Probe
// binds the Record clock only at creation, so a concurrent re-lookup
// cannot race with a producer mid-Record (caught by -race pre-fix).
func TestScopeProbeRelookupDoesNotRaceRecord(t *testing.T) {
	sc := newTestScope(t)
	p, err := sc.Probe("s")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			p.Record(float64(i))
		}
		p.Flush()
	}()
	for i := 0; i < 1000; i++ {
		p2, err := sc.Probe("s")
		if err != nil {
			t.Error(err)
			break
		}
		if p2 != p {
			t.Error("re-lookup returned a different handle")
			break
		}
	}
	<-done
}

// AddSignal now rejects names the wire format cannot carry.
func TestAddSignalRejectsInvalidName(t *testing.T) {
	sc := newTestScope(t)
	var v IntVar
	if _, err := sc.AddSignal(Sig{Name: "a\nb", Source: &v}); err == nil {
		t.Fatal("newline name accepted")
	}
	if _, err := sc.AddSignal(Sig{Name: " pad", Source: &v}); err == nil {
		t.Fatal("padded name accepted")
	}
	if _, err := sc.AddSignal(Sig{Name: "name with spaces", Source: &v}); err != nil {
		t.Fatalf("interior spaces rejected: %v", err)
	}
}
