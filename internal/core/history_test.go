package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistoryBasicQuery(t *testing.T) {
	h := NewHistory(1 << 16)
	for i := 0; i < 1000; i++ {
		h.Push(float64(i), false)
	}
	b := h.Query(0, 1000)
	if b.Count != 1000 || b.Min != 0 || b.Max != 999 || b.Last != 999 {
		t.Fatalf("Query(0,1000) = %+v", b)
	}
	// A mid-range query's envelope must contain its range (it may widen
	// to bucket boundaries, never narrow).
	b = h.Query(100, 200)
	if b.Count == 0 || b.Min > 100 || b.Max < 199 {
		t.Fatalf("Query(100,200) = %+v", b)
	}
	// The newest partial slots live in accumulators and must be visible.
	b = h.Query(990, 1000)
	if b.Count == 0 || b.Max != 999 || b.Last != 999 {
		t.Fatalf("tail Query = %+v", b)
	}
}

func TestHistoryHolesAndNaN(t *testing.T) {
	h := NewHistory(1 << 12)
	for i := 0; i < 100; i++ {
		switch {
		case i%3 == 0:
			h.Push(math.NaN(), true)
		case i%7 == 0:
			h.Push(math.NaN(), false) // NaN data must also be ignored
		default:
			h.Push(50, false)
		}
	}
	b := h.Query(0, 100)
	if b.Min != 50 || b.Max != 50 {
		t.Fatalf("holes leaked into envelope: %+v", b)
	}
	if math.IsNaN(b.Last) {
		t.Fatalf("NaN Last: %+v", b)
	}
}

func TestHistoryAllHoles(t *testing.T) {
	h := NewHistory(1 << 12)
	for i := 0; i < 500; i++ {
		h.Push(math.NaN(), true)
	}
	if b := h.Query(0, 500); b.Count != 0 {
		t.Fatalf("holes counted: %+v", b)
	}
}

func TestHistoryRetentionRotation(t *testing.T) {
	h := NewHistory(1 << 12) // 4096 slots
	n := 100000
	for i := 0; i < n; i++ {
		h.Push(float64(i), false)
	}
	if h.Total() != int64(n) {
		t.Fatalf("Total = %d", h.Total())
	}
	// A query entirely before the retained range returns nothing.
	if b := h.Query(0, 100); b.Count != 0 {
		t.Fatalf("rotten range answered: %+v", b)
	}
	// The retained tail is still answerable and correctly bounded.
	b := h.Query(int64(n-2000), int64(n))
	if b.Count == 0 || b.Max != float64(n-1) || b.Min > float64(n-2000) {
		t.Fatalf("recent Query = %+v", b)
	}
	if old := h.Oldest(); old > int64(n-(1<<12)) {
		t.Fatalf("Oldest = %d, retains less than configured", old)
	}
}

func TestHistoryClear(t *testing.T) {
	h := NewHistory(1 << 12)
	for i := 0; i < 1000; i++ {
		h.Push(1, false)
	}
	h.Clear()
	if h.Total() != 0 {
		t.Fatalf("Total after Clear = %d", h.Total())
	}
	if b := h.Query(0, 1000); b.Count != 0 {
		t.Fatalf("Clear left data: %+v", b)
	}
	h.Push(7, false)
	if b := h.Query(0, 1); b.Count != 1 || b.Last != 7 {
		t.Fatalf("post-Clear push: %+v", b)
	}
}

func TestTraceViewFromRing(t *testing.T) {
	tr := NewTrace(64)
	for i := 0; i < 64; i++ {
		tr.Push(float64(i))
	}
	cols := tr.View(64, 8)
	if len(cols) != 8 {
		t.Fatalf("View returned %d cols", len(cols))
	}
	for j, b := range cols {
		wantMin, wantMax := float64(j*8), float64(j*8+7)
		if b.Count != 8 || b.Min != wantMin || b.Max != wantMax || b.Last != wantMax {
			t.Fatalf("col %d = %+v", j, b)
		}
	}
}

func TestTraceViewBeyondRingWithoutHistory(t *testing.T) {
	tr := NewTrace(16)
	for i := 0; i < 100; i++ {
		tr.Push(float64(i))
	}
	// Window covers 50 slots but only the last 16 survive; earlier
	// columns must read empty rather than inventing data.
	cols := tr.View(50, 50)
	empty := 0
	for _, b := range cols {
		if b.Count == 0 {
			empty++
		}
	}
	if empty != 50-16 {
		t.Fatalf("%d empty cols, want %d", empty, 50-16)
	}
}

func TestTraceViewUsesHistoryBeyondRing(t *testing.T) {
	tr := NewTrace(32)
	tr.EnableHistory(1 << 16)
	n := 10000
	for i := 0; i < n; i++ {
		tr.Push(float64(i % 100))
	}
	cols := tr.View(n, 16)
	for j, b := range cols {
		if b.Count == 0 {
			t.Fatalf("col %d empty despite history", j)
		}
		if b.Min > 0 || b.Max < 99 {
			// Each column covers 625 slots — far more than one 0..99
			// ramp — so every envelope must span the full ramp.
			t.Fatalf("col %d envelope %+v", j, b)
		}
	}
}

// Property: every raw sample inside a column's slot range lies within that
// column's [Min, Max] envelope, for random pushes (values, holes, NaN),
// window sizes, and column counts, with and without history.
func TestTraceViewEnvelopeContainsRawSamples(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		ringCap := 16 + r.Intn(200)
		tr := NewTrace(ringCap)
		withHist := trial%2 == 0
		if withHist {
			tr.EnableHistory(1 << 14)
		}
		n := 100 + r.Intn(5000)
		raw := make([]float64, n) // shadow copy; NaN marks holes
		for i := 0; i < n; i++ {
			switch r.Intn(10) {
			case 0:
				tr.PushHole()
				raw[i] = math.NaN()
			case 1:
				tr.Push(math.NaN())
				raw[i] = math.NaN()
			default:
				v := r.NormFloat64() * 100
				tr.Push(v)
				raw[i] = v
			}
		}
		window := 1 + r.Intn(n)
		cols := 1 + r.Intn(64)
		view := tr.View(window, cols)
		if len(view) != cols {
			t.Fatalf("View returned %d cols, want %d", len(view), cols)
		}
		start := n - window
		visible := int64(tr.Len())
		if withHist {
			visible = tr.History().Total() - tr.History().Oldest()
		}
		for j := 0; j < cols; j++ {
			lo := start + window*j/cols
			hi := start + window*(j+1)/cols
			for abs := lo; abs < hi; abs++ {
				if abs < 0 || int64(n-abs) > visible {
					continue // rotated out of both ring and history
				}
				v := raw[abs]
				if math.IsNaN(v) {
					continue
				}
				b := view[j]
				if b.Count == 0 {
					t.Fatalf("trial %d col %d: sample %v at %d but Count=0 (hist=%v)",
						trial, j, v, abs, withHist)
				}
				if v < b.Min || v > b.Max {
					t.Fatalf("trial %d col %d: sample %v at %d outside [%v,%v] (hist=%v)",
						trial, j, v, abs, b.Min, b.Max, withHist)
				}
			}
		}
	}
}

func TestTraceNaNPushBecomesHole(t *testing.T) {
	tr := NewTrace(8)
	tr.Push(5)
	tr.Push(math.NaN())
	tr.Push(7)
	if _, ok := tr.At(1); ok {
		t.Fatal("NaN slot should read as a hole")
	}
	lo, hi, ok := tr.MinMax()
	if !ok || lo != 5 || hi != 7 {
		t.Fatalf("MinMax = %v %v %v", lo, hi, ok)
	}
	for _, v := range tr.RecentValues(8) {
		if math.IsNaN(v) {
			t.Fatal("RecentValues leaked NaN")
		}
	}
	rec := tr.Recent(3)
	if !math.IsNaN(rec[1]) {
		t.Fatal("Recent should mark the NaN slot as a hole (NaN)")
	}
	if v, ok := tr.Last(); !ok || v != 7 {
		t.Fatalf("Last = %v %v", v, ok)
	}
}

func TestTraceMinMaxNeverNonFinite(t *testing.T) {
	tr := NewTrace(8)
	tr.Push(math.NaN())
	tr.PushHole()
	if _, _, ok := tr.MinMax(); ok {
		t.Fatal("MinMax ok with only NaN/holes")
	}
	tr.Push(3)
	lo, hi, ok := tr.MinMax()
	if !ok || math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatalf("MinMax = %v %v %v", lo, hi, ok)
	}
}

func TestTraceClearResetsHistory(t *testing.T) {
	tr := NewTrace(16)
	tr.EnableHistory(1 << 12)
	for i := 0; i < 1000; i++ {
		tr.Push(float64(i))
	}
	tr.Clear()
	if tr.History().Total() != 0 {
		t.Fatal("Clear did not reset history")
	}
	cols := tr.View(100, 4)
	for _, b := range cols {
		if b.Count != 0 {
			t.Fatalf("stale data after Clear: %+v", b)
		}
	}
}

// TestHistoryQueryOldNarrowWindowFallsBack is the regression test for the
// rotated-level query bug: a narrow range maps to a fine level whose
// buckets may have rotated out while a coarser level still covers the
// range. Query used to return an empty bucket there — breaking the
// documented "always contains every sample" envelope — instead of falling
// back to the coarsest resident level.
func TestHistoryQueryOldNarrowWindowFallsBack(t *testing.T) {
	// Retention 300 builds two levels (spans 16 and 256). After 10000
	// pushes the fine level retains only ~300 recent slots while the
	// coarse level still covers ~512.
	h := NewHistory(300)
	for i := 0; i < 10000; i++ {
		h.Push(float64(i), false)
	}
	lo := h.Oldest()
	hi := lo + 20 // narrow: per-column span 20 selects the span-16 level
	got := h.Query(lo, hi)
	if got.Count == 0 {
		t.Fatalf("Query(%d, %d) came back empty though Oldest()=%d claims coverage", lo, hi, lo)
	}
	// The envelope must contain every sample in [lo, hi): samples are the
	// slot index, so Min ≤ lo and Max ≥ hi-1 (conservatively wider is
	// allowed, narrower is the bug).
	if got.Min > float64(lo) || got.Max < float64(hi-1) {
		t.Fatalf("envelope [%g, %g] does not contain samples [%d, %d)", got.Min, got.Max, lo, hi)
	}
}

// TestHistoryOldestAnswerable checks the Oldest/Query consistency contract
// across a sweep of retentions and fills: a narrow query at Oldest() must
// never come back empty once data has been pushed past it.
func TestHistoryOldestAnswerable(t *testing.T) {
	for _, retention := range []int{16, 64, 300, 1 << 12} {
		for _, pushes := range []int{1, 100, 5000, 50000} {
			h := NewHistory(retention)
			for i := 0; i < pushes; i++ {
				h.Push(1, false)
			}
			lo := h.Oldest()
			if lo >= h.Total() {
				t.Fatalf("retention %d pushes %d: Oldest %d past Total %d",
					retention, pushes, lo, h.Total())
			}
			if got := h.Query(lo, lo+1); got.Count == 0 {
				t.Fatalf("retention %d pushes %d: Query(Oldest) empty", retention, pushes)
			}
		}
	}
}
