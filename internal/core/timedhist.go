package core

import "sort"

// TimedHistory is the time-windowed face of the History pyramid: the
// windowing hook the netscope hub's v2 backfill is built on. History
// answers slot-range queries; remote viewers ask in stream time ("the last
// ten seconds, decimated to 512 columns"). TimedHistory couples a History
// with a coarse time index — the end timestamp of every completed level-0
// bucket, kept in a ring aligned with level 0's residency — so a time
// window maps onto a slot range with one binary search, and the window is
// then summarized column by column through History.Query: O(cols) whatever
// the sample count, the same property Trace.View gives the renderer.
//
// Timestamps are clamped monotonic on push (a sample stamped earlier than
// its predecessor indexes at the predecessor's time), which keeps the index
// sorted under the skewed publisher clocks the hub already tolerates.
type TimedHistory struct {
	h *History

	// times[i] is the end timestamp (ms) of completed level-0 bucket
	// (firstBucket+i) — a ring aligned with the pyramid's finest level.
	times []int64
	head  int
	n     int

	lastMS int64 // newest (clamped) stamp pushed
	seen   bool
}

// TimedBucket is one backfill column: the min/max/last envelope of the
// samples in a time span, stamped with the span's end time.
type TimedBucket struct {
	// Time is the end of the column's span, in stream milliseconds.
	Time int64
	Bucket
}

// NewTimedHistory creates a store retaining approximately the given number
// of most recent samples (non-positive selects DefaultHistoryRetention).
func NewTimedHistory(retention int) *TimedHistory {
	h := NewHistory(retention)
	// One timestamp per level-0 bucket across the whole retention window.
	slots := (h.Retention() + histFanout - 1) / histFanout
	if slots < 2 {
		slots = 2
	}
	return &TimedHistory{h: h, times: make([]int64, slots)}
}

// Push records one sample. NaN values become holes, as in Trace.
//
//gscope:hotpath
func (th *TimedHistory) Push(tms int64, v float64) {
	if th.seen && tms < th.lastMS {
		tms = th.lastMS // clamp: keep the time index sorted
	}
	th.lastMS = tms
	th.seen = true
	th.h.Push(v, false)
	if th.h.Total()%histFanout == 0 {
		// A level-0 bucket just completed; stamp it with its newest time.
		th.times[th.head] = tms
		th.head = (th.head + 1) % len(th.times)
		if th.n < len(th.times) {
			th.n++
		}
	}
}

// Samples returns the number of samples pushed.
func (th *TimedHistory) Samples() int64 { return th.h.Total() }

// Newest returns the newest stamp pushed; ok is false when empty.
func (th *TimedHistory) Newest() (int64, bool) { return th.lastMS, th.seen }

// timeAt returns the end stamp of completed level-0 bucket abs (absolute
// index); caller guarantees it is resident.
func (th *TimedHistory) timeAt(abs int64) int64 {
	comp := th.h.Total() / histFanout
	return th.times[ringIndex(th.head, len(th.times), int(comp-1-abs))]
}

// sinceSlot maps a stream time onto the first retained slot whose level-0
// bucket ends at or after sinceMS.
func (th *TimedHistory) sinceSlot(sinceMS int64) int64 {
	comp := th.h.Total() / histFanout
	first := comp - int64(th.n)
	if first < 0 {
		first = 0
	}
	// Find the first resident completed bucket ending >= sinceMS.
	k := sort.Search(th.n, func(i int) bool {
		return th.timeAt(first+int64(i)) >= sinceMS
	})
	if k == th.n {
		// Only the accumulating tail (if anything) is recent enough.
		return comp * histFanout
	}
	return (first + int64(k)) * histFanout
}

// ViewSince summarizes the samples stamped at or after sinceMS into at most
// cols time-ordered buckets, each a conservative min/max envelope (the same
// contract as History.Query: a bucket may include neighbors up to one
// bucket span, never exclude a sample in its range). Column timestamps are
// interpolated linearly between sinceMS (clamped to what is still
// retained) and the newest stamp. Cost is O(cols).
func (th *TimedHistory) ViewSince(sinceMS int64, cols int) []TimedBucket {
	if cols <= 0 || !th.seen {
		return nil
	}
	lo := th.sinceSlot(sinceMS)
	if oldest := th.h.Oldest(); lo < oldest {
		lo = oldest
	}
	hi := th.h.Total()
	if lo >= hi {
		return nil
	}
	// The effective window start in time, for interpolation: the stamp of
	// the bucket holding lo, or sinceMS when it is mid-stream.
	startMS := sinceMS
	if first := lo / histFanout; first < th.h.Total()/histFanout && th.n > 0 {
		if t := th.timeAt(first); t > startMS {
			startMS = t
		}
	}
	if startMS > th.lastMS {
		startMS = th.lastMS
	}
	if int64(cols) > hi-lo {
		cols = int(hi - lo)
	}
	out := make([]TimedBucket, 0, cols)
	span := hi - lo
	for c := 0; c < cols; c++ {
		a := lo + span*int64(c)/int64(cols)
		b := lo + span*int64(c+1)/int64(cols)
		if b <= a {
			continue
		}
		bk := th.h.Query(a, b)
		tms := startMS + (th.lastMS-startMS)*int64(c+1)/int64(cols)
		out = append(out, TimedBucket{Time: tms, Bucket: bk})
	}
	return out
}
