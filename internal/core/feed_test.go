package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestFeedPushTake(t *testing.T) {
	f := NewFeed()
	f.Push(ms(10), "a", 1)
	f.Push(ms(30), "b", 2)
	f.Push(ms(20), "a", 3)
	got := f.Take(ms(25))
	if len(got) != 2 {
		t.Fatalf("Take returned %d tuples", len(got))
	}
	// Timestamp order regardless of arrival order.
	if got[0].Time != 10 || got[1].Time != 20 {
		t.Fatalf("Take order: %+v", got)
	}
	if f.Pending() != 1 {
		t.Fatalf("Pending = %d", f.Pending())
	}
}

func TestFeedDropsLate(t *testing.T) {
	f := NewFeed()
	f.Take(ms(100))
	if f.Push(ms(100), "a", 1) {
		t.Fatal("sample at the high-water mark should be dropped")
	}
	if f.Push(ms(50), "a", 1) {
		t.Fatal("older sample should be dropped")
	}
	if !f.Push(ms(101), "a", 1) {
		t.Fatal("newer sample should be accepted")
	}
	pushed, dropped := f.Stats()
	if pushed != 3 || dropped != 2 {
		t.Fatalf("stats = %d/%d", pushed, dropped)
	}
}

func TestFeedNoDropBeforeFirstTake(t *testing.T) {
	// Until the scope displays anything, even time-zero samples are
	// accepted.
	f := NewFeed()
	if !f.Push(0, "a", 1) {
		t.Fatal("pre-display sample dropped")
	}
}

func TestFeedReset(t *testing.T) {
	f := NewFeed()
	f.Push(ms(10), "a", 1)
	f.Take(ms(50))
	f.Reset()
	if !f.Push(ms(10), "a", 1) {
		t.Fatal("Reset should clear the high-water mark")
	}
	if f.Pending() != 1 {
		t.Fatal("Reset should clear pending")
	}
}

func TestFeedTakeEmptyWindow(t *testing.T) {
	f := NewFeed()
	f.Push(ms(100), "a", 1)
	if got := f.Take(ms(50)); got != nil {
		t.Fatalf("early Take returned %v", got)
	}
	if f.Pending() != 1 {
		t.Fatal("early Take consumed a pending sample")
	}
}

// Property: every accepted sample is returned by exactly one Take, in
// timestamp order, and never after its window has passed.
func TestFeedExactlyOnceDelivery(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		feed := NewFeed()
		accepted := 0
		delivered := 0
		cursor := 0
		for round := 0; round < 20; round++ {
			// Push a burst with random timestamps around the cursor.
			for i := 0; i < r.Intn(5); i++ {
				at := cursor + r.Intn(60) - 20
				if at < 0 {
					at = 0
				}
				if feed.Push(ms(at), "x", float64(at)) {
					accepted++
				}
			}
			cursor += 10 + r.Intn(20)
			batch := feed.Take(ms(cursor))
			last := int64(-1)
			for _, tu := range batch {
				if tu.Time < last {
					return false // out of order
				}
				if tu.Time > int64(cursor) {
					return false // delivered beyond the window
				}
				last = tu.Time
				delivered++
			}
		}
		// Drain the rest.
		delivered += len(feed.Take(ms(1 << 20)))
		return delivered == accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFeedConcurrentPush(t *testing.T) {
	f := NewFeed()
	done := make(chan int, 4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			n := 0
			for i := 0; i < 1000; i++ {
				if f.Push(ms(g*1000+i), "x", 1) {
					n++
				}
			}
			done <- n
		}()
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += <-done
	}
	got := len(f.Take(ms(1 << 20)))
	if got != total {
		t.Fatalf("delivered %d of %d accepted", got, total)
	}
}
