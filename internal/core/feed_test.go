package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tuple"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestFeedPushTake(t *testing.T) {
	f := NewFeed()
	f.Push(ms(10), "a", 1)
	f.Push(ms(30), "b", 2)
	f.Push(ms(20), "a", 3)
	got := f.Take(ms(25))
	if len(got) != 2 {
		t.Fatalf("Take returned %d tuples", len(got))
	}
	// Timestamp order regardless of arrival order.
	if got[0].Time != 10 || got[1].Time != 20 {
		t.Fatalf("Take order: %+v", got)
	}
	if f.Pending() != 1 {
		t.Fatalf("Pending = %d", f.Pending())
	}
}

func TestFeedDropsLate(t *testing.T) {
	f := NewFeed()
	f.Take(ms(100))
	if f.Push(ms(100), "a", 1) {
		t.Fatal("sample at the high-water mark should be dropped")
	}
	if f.Push(ms(50), "a", 1) {
		t.Fatal("older sample should be dropped")
	}
	if !f.Push(ms(101), "a", 1) {
		t.Fatal("newer sample should be accepted")
	}
	pushed, dropped := f.Stats()
	if pushed != 3 || dropped != 2 {
		t.Fatalf("stats = %d/%d", pushed, dropped)
	}
}

func TestFeedNoDropBeforeFirstTake(t *testing.T) {
	// Until the scope displays anything, even time-zero samples are
	// accepted.
	f := NewFeed()
	if !f.Push(0, "a", 1) {
		t.Fatal("pre-display sample dropped")
	}
}

func TestFeedReset(t *testing.T) {
	f := NewFeed()
	f.Push(ms(10), "a", 1)
	f.Take(ms(50))
	f.Reset()
	if !f.Push(ms(10), "a", 1) {
		t.Fatal("Reset should clear the high-water mark")
	}
	if f.Pending() != 1 {
		t.Fatal("Reset should clear pending")
	}
}

func TestFeedTakeEmptyWindow(t *testing.T) {
	f := NewFeed()
	f.Push(ms(100), "a", 1)
	if got := f.Take(ms(50)); got != nil {
		t.Fatalf("early Take returned %v", got)
	}
	if f.Pending() != 1 {
		t.Fatal("early Take consumed a pending sample")
	}
}

// Property: every accepted sample is returned by exactly one Take, in
// timestamp order, and never after its window has passed.
func TestFeedExactlyOnceDelivery(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		feed := NewFeed()
		accepted := 0
		delivered := 0
		cursor := 0
		for round := 0; round < 20; round++ {
			// Push a burst with random timestamps around the cursor.
			for i := 0; i < r.Intn(5); i++ {
				at := cursor + r.Intn(60) - 20
				if at < 0 {
					at = 0
				}
				if feed.Push(ms(at), "x", float64(at)) {
					accepted++
				}
			}
			cursor += 10 + r.Intn(20)
			batch := feed.Take(ms(cursor))
			last := int64(-1)
			for _, tu := range batch {
				if tu.Time < last {
					return false // out of order
				}
				if tu.Time > int64(cursor) {
					return false // delivered beyond the window
				}
				last = tu.Time
				delivered++
			}
		}
		// Drain the rest.
		delivered += len(feed.Take(ms(1 << 20)))
		return delivered == accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFeedPushBatch(t *testing.T) {
	f := NewFeed()
	n := f.PushBatch([]tuple.Tuple{
		{Time: 10, Value: 1, Name: "a"},
		{Time: 30, Value: 2, Name: "b"},
		{Time: 20, Value: 3, Name: "c"},
	})
	if n != 3 {
		t.Fatalf("PushBatch accepted %d", n)
	}
	got := f.TakeBatch(ms(25))
	if len(got) != 2 || got[0].Time != 10 || got[1].Time != 20 {
		t.Fatalf("TakeBatch = %+v", got)
	}
	if f.Pending() != 1 {
		t.Fatalf("Pending = %d", f.Pending())
	}
}

func TestFeedPushBatchDropsLate(t *testing.T) {
	f := NewFeed()
	f.Take(ms(100))
	n := f.PushBatch([]tuple.Tuple{
		{Time: 50, Name: "a"},  // late
		{Time: 100, Name: "b"}, // at the mark: late
		{Time: 150, Name: "c"},
		{Time: 101, Name: "d"},
	})
	if n != 2 {
		t.Fatalf("PushBatch accepted %d of 2 on-time tuples", n)
	}
	pushed, dropped := f.Stats()
	if pushed != 4 || dropped != 2 {
		t.Fatalf("stats = %d/%d", pushed, dropped)
	}
	got := f.Take(ms(1 << 20))
	if len(got) != 2 || got[0].Time != 101 || got[1].Time != 150 {
		t.Fatalf("Take = %+v", got)
	}
}

func TestFeedPushBatchEmpty(t *testing.T) {
	f := NewFeed()
	if n := f.PushBatch(nil); n != 0 {
		t.Fatalf("PushBatch(nil) = %d", n)
	}
}

// Concurrent PushBatch from N goroutines, each owning one signal, must
// preserve per-signal push order: the tuples of any one signal come out of
// TakeBatch in exactly the order that signal pushed them.
func TestFeedConcurrentPushBatchOrdering(t *testing.T) {
	const (
		publishers = 8
		batches    = 50
		batchLen   = 32
	)
	f := NewFeed()
	var wg sync.WaitGroup
	for g := 0; g < publishers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("sig%d", g)
			seq := int64(0)
			for b := 0; b < batches; b++ {
				batch := make([]tuple.Tuple, batchLen)
				for i := range batch {
					// Same timestamp for runs of tuples so ordering
					// depends on arrival order, not on the sort key.
					batch[i] = tuple.Tuple{Time: seq / 4, Value: float64(seq), Name: name}
					seq++
				}
				f.PushBatch(batch)
			}
		}()
	}
	wg.Wait()
	got := f.TakeBatch(ms(1 << 30))
	if len(got) != publishers*batches*batchLen {
		t.Fatalf("delivered %d of %d", len(got), publishers*batches*batchLen)
	}
	next := make(map[string]float64, publishers)
	for _, tu := range got {
		if tu.Value != next[tu.Name] {
			t.Fatalf("%s out of order: got seq %v, want %v", tu.Name, tu.Value, next[tu.Name])
		}
		next[tu.Name]++
	}
}

// Interleaving per-sample Push and PushBatch for the same signal preserves
// order too (the wrappers share the shard path).
func TestFeedMixedPushOrdering(t *testing.T) {
	f := NewFeed()
	seq := int64(0)
	for b := 0; b < 20; b++ {
		if b%2 == 0 {
			batch := make([]tuple.Tuple, 8)
			for i := range batch {
				batch[i] = tuple.Tuple{Time: 1, Value: float64(seq), Name: "x"}
				seq++
			}
			f.PushBatch(batch)
		} else {
			for i := 0; i < 8; i++ {
				f.Push(ms(1), "x", float64(seq))
				seq++
			}
		}
	}
	got := f.Take(ms(1 << 20))
	for i, tu := range got {
		if tu.Value != float64(i) {
			t.Fatalf("slot %d holds seq %v", i, tu.Value)
		}
	}
}

func TestFeedConcurrentPush(t *testing.T) {
	f := NewFeed()
	done := make(chan int, 4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			n := 0
			for i := 0; i < 1000; i++ {
				if f.Push(ms(g*1000+i), "x", 1) {
					n++
				}
			}
			done <- n
		}()
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += <-done
	}
	got := len(f.Take(ms(1 << 20)))
	if got != total {
		t.Fatalf("delivered %d of %d accepted", got, total)
	}
}

// TestFeedPushSubMillisecondNotLate is the regression test for the
// timestamp-precision late-drop bug: Push used to truncate the sample time
// to milliseconds before the late check, so a sample at 1.7ms compared as
// 1ms against a 1.5ms displayed watermark and was wrongly dropped. The
// check must run at the caller's full precision.
func TestFeedPushSubMillisecondNotLate(t *testing.T) {
	f := NewFeed()
	f.Take(1500 * time.Microsecond) // displayed watermark at 1.5ms
	if !f.Push(1700*time.Microsecond, "a", 1) {
		t.Fatal("1.7ms sample dropped against a 1.5ms watermark")
	}
	// Samples at or before the watermark are still late.
	if f.Push(1500*time.Microsecond, "a", 2) {
		t.Fatal("sample at the watermark should be dropped")
	}
	if f.Push(1400*time.Microsecond, "a", 3) {
		t.Fatal("older sample should be dropped")
	}
	pushed, dropped := f.Stats()
	if pushed != 3 || dropped != 2 {
		t.Fatalf("stats = %d/%d", pushed, dropped)
	}
	// The survivor is stored at wire (ms) granularity and drains with the
	// next window.
	got := f.Take(2 * time.Millisecond)
	if len(got) != 1 || got[0].Time != 1 || got[0].Value != 1 {
		t.Fatalf("Take = %+v", got)
	}
}
