package core

import (
	"math"

	"repro/internal/draw"
	"repro/internal/fft"
	"repro/internal/geom"
)

// Rendering of the scope canvas. The GUI widget (internal/gtk) wraps this
// with rulers and controls; headless users (cmd tools, benches) call Render
// directly.

// gridPercents are the horizontal grid lines, matching the paper's 0–100
// y-ruler.
var gridPercents = []float64{0, 25, 50, 75, 100}

// Render draws the scope canvas (background, grid, traces) into r on s.
func (sc *Scope) Render(s *draw.Surface, r geom.Rect) {
	if r.Empty() {
		return
	}
	prev := s.SetClip(r)
	defer s.SetClip(prev)

	s.FillRect(r, draw.ScopeBG)
	sc.renderGrid(s, r)

	switch sc.domain {
	case FreqDomain:
		sc.renderFreq(s, r)
	default:
		sc.renderTime(s, r)
	}
}

func (sc *Scope) renderGrid(s *draw.Surface, r geom.Rect) {
	for _, pct := range gridPercents {
		y := r.Y + int(math.Round(float64(r.H-1)*(1-pct/100)))
		s.DottedHLine(r.X, r.MaxX()-1, y, 3, draw.GridGreen)
	}
	// A vertical gridline every second of sweep (period × zoom pixels per
	// sample → pixels per second), at least every 50 px.
	step := 50
	if sc.period > 0 {
		pxPerSec := sc.zoom * float64(timePerSecond(sc))
		if pxPerSec >= 20 {
			step = int(pxPerSec)
		}
	}
	for x := r.MaxX() - 1; x >= r.X; x -= step {
		s.DottedVLine(x, r.Y, r.MaxY()-1, 3, draw.GridGreen)
	}
	if tr := sc.trigger; tr != nil {
		if sig := sc.byName[tr.Signal]; sig != nil {
			y := r.Y + sc.mapY(sig, tr.Level, r.H)
			s.DottedHLine(r.X, r.MaxX()-1, y, 2, draw.Orange)
		}
	}
}

// timePerSecond returns samples per second for the current period.
func timePerSecond(sc *Scope) float64 {
	sec := sc.period.Seconds()
	if sec <= 0 {
		return 0
	}
	return 1 / sec
}

// renderTime draws each visible signal as a right-aligned sweep: the newest
// sample sits at the right edge and each polling period occupies zoom
// pixels. With a trigger installed and a crossing found, the window is
// instead aligned so the crossing sits at the left edge, stabilizing
// repeating waveforms.
func (sc *Scope) renderTime(s *draw.Surface, r geom.Rect) {
	trigBack := sc.triggerOffset()
	for _, sig := range sc.signals {
		if !sig.visible || sig.trace.Len() == 0 {
			continue
		}
		// Zoomed-out sweeps pack several samples into each pixel column;
		// drawing them through the decimated View keeps the cost
		// O(columns) however wide the window is (and, with history
		// enabled, reaches samples the hot ring has already recycled).
		// The trigger path stays sample-accurate: alignment needs exact
		// back-indexes, and triggered views are zoomed in, not out.
		if sc.zoom < 1 && trigBack < 0 {
			sc.renderDecimated(s, r, sig)
			continue
		}
		if sig.envWindow > 0 {
			sc.renderEnvelope(s, r, sig, trigBack)
		}
		sc.renderTrace(s, r, sig, trigBack)
	}
}

// renderDecimated draws one signal from its View envelopes: each pixel
// column shows the min/max band of the samples it covers, with the
// column's last sample joined into a line for solid traces. This is the
// render path for wide windows — a million-sample sweep costs the same as
// a screen-wide one.
func (sc *Scope) renderDecimated(s *draw.Surface, r geom.Rect, sig *Signal) {
	window := int(float64(r.W) / sc.zoom)
	view := sig.trace.View(window, r.W)
	zeroY := r.Y + sc.mapY(sig, math.Max(sig.min, math.Min(0, sig.max)), r.H)
	band := sig.color.Blend(draw.ScopeBG, 0.5)
	prevX, prevY := -1, -1
	for j, b := range view {
		if b.Count == 0 {
			prevX = -1
			continue
		}
		x := r.X + j
		yHi := r.Y + sc.mapY(sig, b.Max, r.H)
		yLo := r.Y + sc.mapY(sig, b.Min, r.H)
		y := r.Y + sc.mapY(sig, b.Last, r.H)
		switch sig.line {
		case LinePoints:
			s.Set(x, y, sig.color)
		case LineFilled:
			s.VLine(x, y, zeroY, sig.color)
		default:
			if yHi != yLo {
				s.VLine(x, yHi, yLo, band)
			}
			if prevX >= 0 {
				s.Line(x, y, prevX, prevY, sig.color)
			} else {
				s.Set(x, y, sig.color)
			}
		}
		prevX, prevY = x, y
	}
}

// backIndex maps a pixel column (p pixels left of the right edge) to a
// trace back-index given the trigger alignment. Returns -1 for columns
// with no data.
func (sc *Scope) backIndex(p int, trigBack int, r geom.Rect) int {
	if trigBack < 0 {
		return int(float64(p) / sc.zoom)
	}
	// Trigger alignment: crossing at the left edge; columns to its right
	// show successively newer samples, and columns newer than the
	// newest sample are empty.
	fromLeft := r.W - 1 - p
	back := trigBack - int(float64(fromLeft)/sc.zoom)
	return back // may be negative => empty column
}

func (sc *Scope) renderTrace(s *draw.Surface, r geom.Rect, sig *Signal, trigBack int) {
	zeroY := r.Y + sc.mapY(sig, math.Max(sig.min, math.Min(0, sig.max)), r.H)
	prevX, prevY := -1, -1
	for p := 0; p < r.W; p++ {
		back := sc.backIndex(p, trigBack, r)
		x := r.MaxX() - 1 - p
		if back < 0 {
			prevX = -1
			continue
		}
		v, ok := sig.trace.At(back)
		if !ok {
			prevX = -1
			continue
		}
		y := r.Y + sc.mapY(sig, v, r.H)
		switch sig.line {
		case LinePoints:
			s.Set(x, y, sig.color)
		case LineFilled:
			s.VLine(x, y, zeroY, sig.color)
		default:
			if prevX >= 0 {
				s.Line(x, y, prevX, prevY, sig.color)
			} else {
				s.Set(x, y, sig.color)
			}
		}
		prevX, prevY = x, y
	}
}

// renderEnvelope shades the rolling min/max band behind a trace (the §6
// waveform-envelope extension).
func (sc *Scope) renderEnvelope(s *draw.Surface, r geom.Rect, sig *Signal, trigBack int) {
	band := sig.color.Blend(draw.ScopeBG, 0.75)
	w := sig.envWindow
	for p := 0; p < r.W; p++ {
		back := sc.backIndex(p, trigBack, r)
		if back < 0 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		found := false
		for k := 0; k < w; k++ {
			if v, ok := sig.trace.At(back + k); ok {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				found = true
			}
		}
		if !found {
			continue
		}
		x := r.MaxX() - 1 - p
		y0 := r.Y + sc.mapY(sig, hi, r.H)
		y1 := r.Y + sc.mapY(sig, lo, r.H)
		s.VLine(x, y0, y1, band)
	}
}

// FFTSize returns the frequency-domain window: the largest power of two
// that fits the canvas width, capped at 1024 samples.
func (sc *Scope) FFTSize() int {
	n := 1
	for n*2 <= sc.width && n*2 <= 1024 {
		n *= 2
	}
	return n
}

// Spectrum computes the magnitude spectrum of a signal's most recent
// samples (Hann-windowed), as displayed in frequency-domain mode. It
// returns nil when the signal has no samples.
func (sc *Scope) Spectrum(name string) []float64 {
	sig := sc.byName[name]
	if sig == nil {
		return nil
	}
	vals := sig.trace.RecentValues(sc.FFTSize())
	if len(vals) == 0 {
		return nil
	}
	return fft.Spectrum(vals, fft.Hann)
}

// renderFreq draws the magnitude spectrum of each visible signal,
// normalized so the strongest bin reaches the top of the canvas.
func (sc *Scope) renderFreq(s *draw.Surface, r geom.Rect) {
	for _, sig := range sc.signals {
		if !sig.visible {
			continue
		}
		spec := sc.Spectrum(sig.spec.Name)
		if len(spec) < 2 {
			continue
		}
		peak := 0.0
		for _, m := range spec[1:] {
			if m > peak {
				peak = m
			}
		}
		if peak <= 0 {
			continue
		}
		prevX, prevY := -1, -1
		for x := 0; x < r.W; x++ {
			bin := 1 + x*(len(spec)-2)/maxInt(r.W-1, 1)
			m := spec[bin] / peak * 100
			y := r.Y + int(math.Round(float64(r.H-1)*(1-m/100)))
			px := r.X + x
			if prevX >= 0 {
				s.Line(px, y, prevX, prevY, sig.color)
			} else {
				s.Set(px, y, sig.color)
			}
			prevX, prevY = px, y
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Snapshot renders the bare canvas at its configured size and returns the
// surface — the headless equivalent of a screenshot.
func (sc *Scope) Snapshot() *draw.Surface {
	s := draw.NewSurface(sc.width, sc.height)
	sc.Render(s, s.Bounds())
	return s
}
