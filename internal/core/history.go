package core

import "math"

// Tiered trace history: the Trace ring is the hot sweep window (what the
// paper's scope displays), and a History is the cold store behind it — a
// decimated min/max/last pyramid that retains millions of samples in a few
// megabytes and answers range summaries in O(1) per column. The renderer
// consumes it through Trace.View, so rendering a window of W samples into C
// columns costs O(C), not O(W).
//
// Structure: level k holds buckets each summarizing histFanout^(k+1)
// consecutive slots (samples or holes), stored in a ring sized to the
// configured retention. A pushed slot folds into level 0's accumulating
// bucket; every completed bucket cascades into the accumulator one level
// up. Total memory is sum_k retention/fanout^(k+1) buckets — under 7% of
// one float64 per retained sample at the default fanout.

// histFanout is the decimation ratio between pyramid levels. A query maps
// each output column to at most 2×fanout buckets of the best level, which
// keeps View O(columns) with a small constant.
const histFanout = 16

// Bucket summarizes a span of consecutive trace slots.
type Bucket struct {
	// Min and Max bound every non-hole sample in the span; meaningless
	// when Count is zero.
	Min, Max float64
	// Last is the newest non-hole sample in the span.
	Last float64
	// Count is the number of non-hole samples summarized.
	Count int64
}

// add folds one slot into the bucket. Holes (and NaN values, which the
// trace stores as holes) leave the envelope untouched.
//
//gscope:hotpath
func (b *Bucket) add(v float64, hole bool) {
	if hole || math.IsNaN(v) {
		return
	}
	if b.Count == 0 || v < b.Min {
		b.Min = v
	}
	if b.Count == 0 || v > b.Max {
		b.Max = v
	}
	b.Last = v
	b.Count++
}

// merge folds another bucket (covering newer slots) into b.
//
//gscope:hotpath
func (b *Bucket) merge(o Bucket) {
	if o.Count == 0 {
		return
	}
	if b.Count == 0 || o.Min < b.Min {
		b.Min = o.Min
	}
	if b.Count == 0 || o.Max > b.Max {
		b.Max = o.Max
	}
	b.Last = o.Last
	b.Count += o.Count
}

// histLevel is one ring of completed buckets plus the bucket currently
// accumulating.
type histLevel struct {
	span int64 // slots per bucket: histFanout^(level+1)
	buf  []Bucket
	head int // slot that will be written next
	n    int // valid buckets, up to len(buf)
	acc  Bucket
	fill int64 // slots folded into acc so far
}

// completed returns the absolute index of the next bucket this level will
// complete, given the total slot count; buckets [completed-n, completed)
// are resident in the ring.
func (l *histLevel) completed(total int64) int64 { return total / l.span }

// push appends a completed bucket to the ring.
//
//gscope:hotpath
func (l *histLevel) push(b Bucket) {
	l.buf[l.head] = b
	l.head = (l.head + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// ringIndex returns the slot of the entry back positions behind head in a
// ring of the given length (back 0 = the most recently written entry).
// Shared by the bucket rings here and TimedHistory's parallel time ring,
// which advances in lockstep with level 0.
func ringIndex(head, length, back int) int {
	i := head - 1 - back
	return ((i % length) + length) % length
}

// at returns the resident bucket with absolute index abs, given total slots
// pushed; ok is false when it has rotated out (or is not complete yet).
func (l *histLevel) at(abs, total int64) (Bucket, bool) {
	comp := l.completed(total)
	if abs >= comp || abs < comp-int64(l.n) {
		return Bucket{}, false
	}
	return l.buf[ringIndex(l.head, len(l.buf), int(comp-1-abs))], true
}

// History is the decimated store. It is not safe for concurrent use; like
// the Trace that feeds it, it belongs to the scope's loop goroutine.
type History struct {
	retention int64
	levels    []histLevel
	total     int64 // slots pushed (samples + holes)
}

// DefaultHistoryRetention is the retention used when a non-positive value
// is requested: one million slots, the scale the tiered store is built for.
const DefaultHistoryRetention = 1 << 20

// NewHistory creates a store retaining approximately the given number of
// most recent slots (minimum one fanout's worth).
func NewHistory(retention int) *History {
	r := int64(retention)
	if r <= 0 {
		r = DefaultHistoryRetention
	}
	if r < histFanout {
		r = histFanout
	}
	h := &History{retention: r}
	for span := int64(histFanout); span < r; span *= histFanout {
		capBuckets := (r + span - 1) / span
		if capBuckets < 2 {
			capBuckets = 2
		}
		h.levels = append(h.levels, histLevel{
			span: span,
			buf:  make([]Bucket, capBuckets),
		})
	}
	if len(h.levels) == 0 {
		h.levels = append(h.levels, histLevel{span: histFanout, buf: make([]Bucket, 2)})
	}
	return h
}

// Retention returns the configured retention in slots.
func (h *History) Retention() int64 { return h.retention }

// Total returns the number of slots ever pushed.
//
//gscope:hotpath
func (h *History) Total() int64 { return h.total }

// Push folds one slot (sample or hole) into the pyramid.
//
//gscope:hotpath
func (h *History) Push(v float64, hole bool) {
	h.total++
	l := &h.levels[0]
	l.acc.add(v, hole)
	l.fill++
	for k := 0; k < len(h.levels); k++ {
		l = &h.levels[k]
		if l.fill < l.span {
			break
		}
		done := l.acc
		l.acc = Bucket{}
		l.fill = 0
		l.push(done)
		if k+1 < len(h.levels) {
			up := &h.levels[k+1]
			up.acc.merge(done)
			up.fill += l.span
		}
	}
}

// Clear resets the store to empty without reallocating.
func (h *History) Clear() {
	h.total = 0
	for k := range h.levels {
		l := &h.levels[k]
		l.head, l.n = 0, 0
		l.acc = Bucket{}
		l.fill = 0
	}
}

// Oldest returns the absolute index of the oldest slot the store can still
// summarize. It is the coarsest level's residency: every level's ring
// covers at least the configured retention, span rounding only adds slots
// as spans grow, so the coarsest ring reaches furthest back — and Query
// falls back to it for ranges that have rotated out of finer levels, making
// Oldest exactly the floor of what Query can answer.
func (h *History) Oldest() int64 {
	return h.oldestResident(len(h.levels) - 1)
}

// oldestResident returns the absolute index of the oldest slot level k's
// completed buckets still cover.
func (h *History) oldestResident(k int) int64 {
	l := &h.levels[k]
	oldest := (l.completed(h.total) - int64(l.n)) * l.span
	if oldest < 0 {
		oldest = 0
	}
	return oldest
}

// levelFor picks the coarsest level whose bucket span does not exceed the
// query granularity, so each column touches at most ~2×fanout buckets —
// then climbs to coarser levels while the range's start has rotated out of
// the choice's ring. Fine levels retain slightly fewer slots than coarse
// ones (ring-capacity rounding plus accumulator lag), so without the climb
// an old narrow window could land on a level whose buckets are gone and
// come back empty while a coarser level still covers it, breaking the
// always-contains-every-sample envelope.
func (h *History) levelFor(lo, perCol int64) *histLevel {
	best := 0
	for k := range h.levels {
		if h.levels[k].span <= perCol {
			best = k
		}
	}
	for best+1 < len(h.levels) && lo < h.oldestResident(best) {
		best++
	}
	return &h.levels[best]
}

// Query summarizes the absolute slot range [lo, hi) using buckets of the
// coarsest adequate level. The result is a conservative envelope: it may
// include neighboring slots up to one bucket span on each side, so it
// always contains every sample in [lo, hi). Slots that have rotated out of
// retention contribute nothing.
func (h *History) Query(lo, hi int64) Bucket {
	var out Bucket
	if hi <= lo || h.total == 0 {
		return out
	}
	if hi > h.total {
		hi = h.total
	}
	if lo < 0 {
		lo = 0
	}
	l := h.levelFor(lo, hi-lo)
	b0 := lo / l.span
	b1 := (hi + l.span - 1) / l.span
	comp := l.completed(h.total)
	for b := b0; b < b1 && b < comp; b++ {
		if bk, ok := l.at(b, h.total); ok {
			out.merge(bk)
		}
	}
	if b1 > comp {
		// The range extends past this level's completed buckets into the
		// accumulating tail. The accumulators of level l and below cover
		// the tail exactly and contiguously — acc_k spans
		// [comp_k·span_k, comp_{k-1}·span_{k-1}), down to acc_0 which
		// ends at the newest slot — so merging them from coarse to fine
		// visits the tail in slot order.
		lo := comp * l.span
		for k := len(h.levels) - 1; k >= 0; k-- {
			a := &h.levels[k]
			if a.span > l.span || a.fill == 0 {
				continue
			}
			start := a.completed(h.total) * a.span
			if start+a.fill > lo && start < hi {
				out.merge(a.acc)
			}
		}
	}
	return out
}
