package core

import (
	"fmt"
	"sort"
	"sync"
)

// Param is an application or control parameter (§3.2): unlike signals,
// which are read-only from the scope's perspective, parameters can be both
// read and written by the GUI (Figure 3) or programmatically, and are
// application-wide rather than per-scope. The paper's GtkScopeParameter
// structure maps to this type.
type Param struct {
	// Name identifies the parameter in the control window.
	Name string
	// Get reads the current value.
	Get func() float64
	// Set writes a new value; nil makes the parameter read-only.
	Set func(float64)
	// Min and Max bound the values the GUI will write. Both zero means
	// unbounded.
	Min, Max float64
	// Step is the GUI increment; 0 defaults to 1.
	Step float64
}

// Bounded reports whether the parameter declares a range.
func (p *Param) Bounded() bool { return p.Min != 0 || p.Max != 0 }

// clamp applies the declared range.
func (p *Param) clamp(v float64) float64 {
	if p.Bounded() {
		if v < p.Min {
			v = p.Min
		}
		if v > p.Max {
			v = p.Max
		}
	}
	return v
}

// IntParam builds a Param backed by an IntVar.
func IntParam(name string, v *IntVar, minVal, maxVal int64) *Param {
	return &Param{
		Name: name,
		Get:  func() float64 { return float64(v.Load()) },
		Set:  func(x float64) { v.Store(int64(x)) },
		Min:  float64(minVal),
		Max:  float64(maxVal),
	}
}

// FloatParam builds a Param backed by a FloatVar.
func FloatParam(name string, v *FloatVar, minVal, maxVal float64) *Param {
	return &Param{
		Name: name,
		Get:  v.Load,
		Set:  v.Store,
		Min:  minVal,
		Max:  maxVal,
	}
}

// BoolParam builds a Param backed by a BoolVar; it reads and writes 0/1.
func BoolParam(name string, v *BoolVar) *Param {
	return &Param{
		Name: name,
		Get: func() float64 {
			if v.Load() {
				return 1
			}
			return 0
		},
		Set: func(x float64) { v.Store(x != 0) },
		Min: 0,
		Max: 1,
	}
}

// ParamSet is the application-wide registry shown in the control-parameters
// window (Figure 3). It is safe for concurrent use.
type ParamSet struct {
	mu     sync.Mutex
	params []*Param
	byName map[string]*Param
}

// NewParamSet returns an empty registry.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// Add registers a parameter. Duplicate names are rejected.
func (ps *ParamSet) Add(p *Param) error {
	if p == nil || p.Name == "" {
		return fmt.Errorf("core: parameter must have a name")
	}
	if p.Get == nil {
		return fmt.Errorf("core: parameter %q must have a getter", p.Name)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, dup := ps.byName[p.Name]; dup {
		return fmt.Errorf("core: duplicate parameter %q", p.Name)
	}
	ps.params = append(ps.params, p)
	ps.byName[p.Name] = p
	return nil
}

// Remove unregisters a parameter by name; it reports whether one existed.
func (ps *ParamSet) Remove(name string) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, ok := ps.byName[name]; !ok {
		return false
	}
	delete(ps.byName, name)
	kept := ps.params[:0]
	for _, p := range ps.params {
		if p.Name != name {
			kept = append(kept, p)
		}
	}
	ps.params = kept
	return true
}

// Get reads a parameter's value by name.
func (ps *ParamSet) Get(name string) (float64, error) {
	ps.mu.Lock()
	p, ok := ps.byName[name]
	ps.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("core: unknown parameter %q", name)
	}
	return p.Get(), nil
}

// Set writes a parameter's value by name, clamping to its declared range.
func (ps *ParamSet) Set(name string, v float64) error {
	ps.mu.Lock()
	p, ok := ps.byName[name]
	ps.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown parameter %q", name)
	}
	if p.Set == nil {
		return fmt.Errorf("core: parameter %q is read-only", name)
	}
	p.Set(p.clamp(v))
	return nil
}

// List returns the registered parameters in insertion order.
func (ps *ParamSet) List() []*Param {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]*Param, len(ps.params))
	copy(out, ps.params)
	return out
}

// Names returns the parameter names, sorted.
func (ps *ParamSet) Names() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	names := make([]string, 0, len(ps.byName))
	for n := range ps.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
