package core

import (
	"fmt"
	"sort"
	"sync"
)

// Param is an application or control parameter (§3.2): unlike signals,
// which are read-only from the scope's perspective, parameters can be both
// read and written by the GUI (Figure 3) or programmatically, and are
// application-wide rather than per-scope. The paper's GtkScopeParameter
// structure maps to this type.
type Param struct {
	// Name identifies the parameter in the control window.
	Name string
	// Get reads the current value.
	Get func() float64
	// Set writes a new value; nil makes the parameter read-only.
	Set func(float64)
	// Min and Max bound the values the GUI will write. Both zero means
	// unbounded.
	Min, Max float64
	// Step is the GUI increment; 0 defaults to 1.
	Step float64
}

// Bounded reports whether the parameter declares a range.
func (p *Param) Bounded() bool { return p.Min != 0 || p.Max != 0 }

// clamp applies the declared range.
func (p *Param) clamp(v float64) float64 {
	if p.Bounded() {
		if v < p.Min {
			v = p.Min
		}
		if v > p.Max {
			v = p.Max
		}
	}
	return v
}

// IntParam builds a Param backed by an IntVar.
func IntParam(name string, v *IntVar, minVal, maxVal int64) *Param {
	return &Param{
		Name: name,
		Get:  func() float64 { return float64(v.Load()) },
		Set:  func(x float64) { v.Store(int64(x)) },
		Min:  float64(minVal),
		Max:  float64(maxVal),
	}
}

// FloatParam builds a Param backed by a FloatVar.
func FloatParam(name string, v *FloatVar, minVal, maxVal float64) *Param {
	return &Param{
		Name: name,
		Get:  v.Load,
		Set:  v.Store,
		Min:  minVal,
		Max:  maxVal,
	}
}

// BoolParam builds a Param backed by a BoolVar; it reads and writes 0/1.
func BoolParam(name string, v *BoolVar) *Param {
	return &Param{
		Name: name,
		Get: func() float64 {
			if v.Load() {
				return 1
			}
			return 0
		},
		Set: func(x float64) { v.Store(x != 0) },
		Min: 0,
		Max: 1,
	}
}

// ParamInfo is a point-in-time value snapshot of one registered parameter:
// everything a remote control plane needs to render or write it, with no
// reference back into the registry. Network layers ship these instead of
// *Param so no callback ever escapes the registry's lock discipline.
type ParamInfo struct {
	Name           string
	Value          float64
	Min, Max, Step float64
	ReadOnly       bool
}

// ParamObserver is notified after a successful Set with the name and the
// actually-stored (clamped) value. Observers run outside the registry lock,
// on whichever goroutine performed the Set; an observer that needs loop
// affinity must marshal itself (e.g. glib.Loop.Invoke).
type ParamObserver func(name string, value float64)

// ParamSet is the application-wide registry shown in the control-parameters
// window (Figure 3). It is safe for concurrent use: all reads and writes —
// including the invocation of each parameter's Get/Set callbacks via the
// registry's own methods — are serialized under one lock, so parameters
// whose state is touched only through the registry (or through atomic
// variables like IntVar) can be written by a network control plane while
// the application reads them. Callbacks must not call back into the same
// ParamSet, and List remains for GUI code that predates the snapshot API:
// the *Param pointers it returns bypass the lock, so their Get/Set should
// only be invoked from one goroutine.
type ParamSet struct {
	mu        sync.Mutex
	params    []*Param
	byName    map[string]*Param
	observers []paramObserverReg
	nextObs   uint64
}

// paramObserverReg pairs an observer with its registration token so
// unregistering is exact even when removals interleave.
type paramObserverReg struct {
	id uint64
	fn ParamObserver
}

// NewParamSet returns an empty registry.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// Add registers a parameter. Duplicate names are rejected.
func (ps *ParamSet) Add(p *Param) error {
	if p == nil || p.Name == "" {
		return fmt.Errorf("core: parameter must have a name")
	}
	if p.Get == nil {
		return fmt.Errorf("core: parameter %q must have a getter", p.Name)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, dup := ps.byName[p.Name]; dup {
		return fmt.Errorf("core: duplicate parameter %q", p.Name)
	}
	ps.params = append(ps.params, p)
	ps.byName[p.Name] = p
	return nil
}

// Remove unregisters a parameter by name; it reports whether one existed.
func (ps *ParamSet) Remove(name string) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, ok := ps.byName[name]; !ok {
		return false
	}
	delete(ps.byName, name)
	kept := ps.params[:0]
	for _, p := range ps.params {
		if p.Name != name {
			kept = append(kept, p)
		}
	}
	ps.params = kept
	return true
}

// Get reads a parameter's value by name. The getter runs under the
// registry lock, serialized against every other registry operation.
func (ps *ParamSet) Get(name string) (float64, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown parameter %q", name)
	}
	return p.Get(), nil
}

// Set writes a parameter's value by name, clamping to its declared range,
// and notifies registered observers with the stored value. The setter runs
// under the registry lock; observers run after it is released, so
// concurrent Sets may notify out of order (each notification carries the
// value that Set stored, not necessarily the final one).
func (ps *ParamSet) Set(name string, v float64) error {
	ps.mu.Lock()
	p, ok := ps.byName[name]
	if !ok {
		ps.mu.Unlock()
		return fmt.Errorf("core: unknown parameter %q", name)
	}
	if p.Set == nil {
		ps.mu.Unlock()
		return fmt.Errorf("core: parameter %q is read-only", name)
	}
	p.Set(p.clamp(v))
	// Notify with what the parameter actually holds, not the clamped
	// input: a setter may quantize further (an IntParam truncates), and a
	// notification that disagrees with a subsequent Get would leave two
	// remote viewers showing different values for the same parameter.
	stored := p.Get()
	obs := ps.observers
	ps.mu.Unlock()
	for _, o := range obs {
		o.fn(name, stored)
	}
	return nil
}

// Info returns a value snapshot of one parameter.
func (ps *ParamSet) Info(name string) (ParamInfo, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p, ok := ps.byName[name]
	if !ok {
		return ParamInfo{}, fmt.Errorf("core: unknown parameter %q", name)
	}
	return snapshotLocked(p), nil
}

// Infos returns value snapshots of every registered parameter in insertion
// order — the safe enumeration for concurrent consumers (the network
// control plane); GUI code on the owning goroutine may keep using List.
func (ps *ParamSet) Infos() []ParamInfo {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]ParamInfo, len(ps.params))
	for i, p := range ps.params {
		out[i] = snapshotLocked(p)
	}
	return out
}

// snapshotLocked reads one parameter into a ParamInfo; caller holds mu.
func snapshotLocked(p *Param) ParamInfo {
	return ParamInfo{
		Name:     p.Name,
		Value:    p.Get(),
		Min:      p.Min,
		Max:      p.Max,
		Step:     p.Step,
		ReadOnly: p.Set == nil,
	}
}

// Observe registers fn to run after every successful Set through the
// registry (writes that bypass it — direct variable stores, List-pointer
// setters — are invisible). It returns a function that unregisters fn.
func (ps *ParamSet) Observe(fn ParamObserver) (remove func()) {
	if fn == nil {
		return func() {}
	}
	ps.mu.Lock()
	ps.nextObs++
	id := ps.nextObs
	// Copy-on-write so Set can fan out to the slice outside the lock.
	obs := make([]paramObserverReg, len(ps.observers), len(ps.observers)+1)
	copy(obs, ps.observers)
	ps.observers = append(obs, paramObserverReg{id: id, fn: fn})
	ps.mu.Unlock()
	return func() {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		obs := make([]paramObserverReg, 0, len(ps.observers))
		for _, o := range ps.observers {
			if o.id != id {
				obs = append(obs, o)
			}
		}
		ps.observers = obs
	}
}

// List returns the registered parameters in insertion order. The returned
// pointers bypass the registry lock (their Get/Set run unserialized), so
// List is for single-goroutine GUI wiring; concurrent consumers use Infos.
func (ps *ParamSet) List() []*Param {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]*Param, len(ps.params))
	copy(out, ps.params)
	return out
}

// Names returns the parameter names, sorted.
func (ps *ParamSet) Names() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	names := make([]string, 0, len(ps.byName))
	for n := range ps.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
