// Package dgram is the lossy-transport lane: a sequence-numbered UDP
// datagram transport for v3 binary tuple chunks, the counterpart of the
// TCP publisher stream for links that lose and reorder packets (field
// sensors, flight hardware — the paper's own domain). One stalled TCP
// connection head-of-line-blocks an entire publisher; a datagram
// publisher keeps sending and lets the receiver account the holes.
//
// The split follows the jitter-buffer / NACK-emitter architecture of
// real-time media stacks: a [Publisher] encodes each batch as one or
// more self-contained v3 chunks (tuple.DatagramEncoder — every datagram
// decodes in isolation, so any datagram can be lost without corrupting
// another) behind a 3-byte header carrying stream ID, epoch and sequence
// number, and retains the last [RingSize] datagrams in a ring. A
// [Receiver] runs a small reorder/jitter buffer per source: in-order
// datagrams release immediately, gaps are held for a bounded time while
// NACKs ask the publisher to resend from its ring, and holes that
// outlive the hold are declared lost — counted, never silently skipped.
// Releases are strictly in sequence order per source, which preserves
// per-signal watermark monotonicity end to end.
//
// Wire layout, loss semantics and epoch rules are specified normatively
// in docs/WIRE.md §D; the chaos tests in this package drive the lane
// through internal/netsim.LossyConn (seeded loss, reorder, duplication,
// delay, partitions) and assert bounded loss with zero corruption.
package dgram

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// Magic opens every datagram. Distinct from tuple.FrameMarker so a
	// datagram accidentally fed to a stream decoder (or vice versa)
	// fails fast instead of half-parsing.
	Magic byte = 0xD6
	// Version is the datagram header revision (WIRE.md §D1).
	Version byte = 1

	// TypeData carries one self-contained v3 chunk.
	TypeData byte = 1
	// TypeNack asks the publisher to resend the listed sequences.
	TypeNack byte = 2

	// MaxDatagram bounds an encoded datagram; larger ones are counted
	// oversized and never sent (WIRE.md §D1). Loopback and most paths
	// carry 64 KiB UDP payloads; the publisher's packetizer targets
	// TargetDatagram and only approaches this bound on pathological
	// single-tuple names.
	MaxDatagram = 60000
	// TargetDatagram is the packetizer's soft datagram-size goal,
	// comfortably under common path MTUs with tunnel headroom.
	TargetDatagram = 1200
	// MaxNackSeqs bounds the sequence list one NACK datagram carries.
	MaxNackSeqs = 64
	// RingSize is how many recently sent datagrams a publisher retains
	// for NACK resends. Power of two; the ring is indexed seq&(RingSize-1).
	RingSize = 512
)

// errMalformed tags undecodable datagrams. Unlike stream framing errors
// it is never sticky: datagrams are independent, so a malformed one is
// counted and dropped while its neighbors decode fine (WIRE.md §D4).
var errMalformed = errors.New("dgram: malformed datagram")

// header is one parsed datagram header.
type header struct {
	typ    byte
	stream uint64
	epoch  uint64
	// seq is the sequence number (DATA) or the NACKed-seq count (NACK).
	seq uint64
	// rest is the payload after the header: the v3 chunk (DATA) or the
	// uvarint sequence list (NACK).
	rest []byte
}

// appendHeader appends the common 3-byte prefix and the three uvarints
// every datagram type shares (WIRE.md §D1).
//
//gscope:hotpath
func appendHeader(dst []byte, typ byte, stream, epoch, n uint64) []byte {
	dst = append(dst, Magic, Version, typ)
	dst = binary.AppendUvarint(dst, stream)
	dst = binary.AppendUvarint(dst, epoch)
	return binary.AppendUvarint(dst, n)
}

// parseHeader decodes the common prefix of one datagram. It is the first
// gate of the receive path: adversarial bytes must fail here (or in the
// chunk decoder behind it) without panicking or corrupting any state —
// FuzzDgramDecode drives exactly that.
//
//gscope:hotpath
func parseHeader(p []byte) (header, error) {
	var h header
	if len(p) < 4 || p[0] != Magic {
		return h, errMalformed
	}
	if p[1] != Version {
		return h, errMalformed
	}
	h.typ = p[2]
	p = p[3:]
	var n int
	h.stream, n = binary.Uvarint(p)
	if n <= 0 {
		return h, errMalformed
	}
	p = p[n:]
	h.epoch, n = binary.Uvarint(p)
	if n <= 0 {
		return h, errMalformed
	}
	p = p[n:]
	h.seq, n = binary.Uvarint(p)
	if n <= 0 {
		return h, errMalformed
	}
	h.rest = p[n:]
	return h, nil
}

// appendNack appends one NACK datagram for the given sequences (at most
// MaxNackSeqs; callers chunk longer lists).
func appendNack(dst []byte, stream, epoch uint64, seqs []uint64) []byte {
	dst = appendHeader(dst, TypeNack, stream, epoch, uint64(len(seqs)))
	for _, s := range seqs {
		dst = binary.AppendUvarint(dst, s)
	}
	return dst
}

// parseNackSeqs decodes a NACK's sequence list into dst (reused).
func parseNackSeqs(dst []uint64, h header) ([]uint64, error) {
	if h.seq > MaxNackSeqs {
		return dst, fmt.Errorf("%w: nack lists %d seqs (max %d)", errMalformed, h.seq, MaxNackSeqs)
	}
	p := h.rest
	for i := uint64(0); i < h.seq; i++ {
		s, n := binary.Uvarint(p)
		if n <= 0 {
			return dst, fmt.Errorf("%w: truncated nack seq list", errMalformed)
		}
		p = p[n:]
		dst = append(dst, s)
	}
	return dst, nil
}
