package dgram

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/tuple"
)

// chaosValue is the self-checking value scheme: every tuple published by
// chaosBatch carries Value = Time/10 * 0.5 and a name determined by
// Time/10 % 3, so the sink can detect any corrupted byte that still
// decoded (the acceptance criterion: chaos may delay or lose tuples, it
// may never alter one).
func chaosBatch(base, n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		t := base + i
		name := "chaos.a"
		switch t % 3 {
		case 1:
			name = "chaos.b"
		case 2:
			name = "chaos.c"
		}
		out[i] = tuple.Tuple{Time: int64(t) * 10, Value: float64(t) * 0.5, Name: name}
	}
	return out
}

// chaosSink verifies every released tuple against the chaosBatch scheme
// and tracks per-signal watermarks.
type chaosSink struct {
	t  *testing.T
	mu sync.Mutex

	tuples     int
	watermarks map[string]int64
	corrupted  int
	regressed  int
}

func newChaosSink(t *testing.T) *chaosSink {
	return &chaosSink{t: t, watermarks: make(map[string]int64)}
}

func (s *chaosSink) release(batch []tuple.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tt := range batch {
		s.tuples++
		k := tt.Time / 10
		wantName := [3]string{"chaos.a", "chaos.b", "chaos.c"}[k%3]
		if tt.Time != k*10 || tt.Value != float64(k)*0.5 || tt.Name != wantName {
			s.corrupted++
			continue
		}
		if last, ok := s.watermarks[tt.Name]; ok && tt.Time < last {
			s.regressed++
		}
		s.watermarks[tt.Name] = tt.Time
	}
}

func (s *chaosSink) snapshot() (tuples, corrupted, regressed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tuples, s.corrupted, s.regressed
}

// runChaos publishes batches datagrams through a LossyConn with cfg and
// waits for the stream to quiesce: every assigned sequence number either
// released or accounted lost. It returns the receiver for stats.
func runChaos(t *testing.T, cfg netsim.LossyConfig, sink *chaosSink, batches, perBatch int) (*Receiver, *Publisher, *netsim.LossyConn) {
	t.Helper()
	r, err := Listen("127.0.0.1:0", sink.release, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lossy := netsim.NewLossyConn(inner, cfg)
	raddr, err := net.ResolveUDPAddr("udp", r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPublisher(lossy, raddr)
	t.Cleanup(func() { p.Close() })

	for i := 0; i < batches; i++ {
		p.Publish(chaosBatch(i*perBatch, perBatch))
		// Pace roughly like a real telemetry publisher: fast enough to
		// stress the jitter buffer, slow enough that the loopback socket
		// buffer is not the bottleneck and NACK round trips fit inside
		// the hold window.
		time.Sleep(time.Millisecond)
	}

	// Quiesce: conservation is the exit condition — every datagram the
	// publisher assigned a sequence number is accounted for at the sink.
	if !testutil.Poll(15*time.Second, func() bool {
		st := r.Stats()
		return st.Released+st.Lost == int64(p.Seq())
	}) {
		st := r.Stats()
		t.Fatalf("stream never quiesced: released %d + lost %d != %d sent (stats %+v, link %+v)",
			st.Released, st.Lost, p.Seq(), st, lossy.Stats())
	}
	return r, p, lossy
}

// TestDgramChaosLossReorderJitter is the tentpole acceptance scenario:
// 5%% loss, 10%% reorder, jittered delay. Zero corrupted tuples, strictly
// monotonic per-signal watermarks, explicit gap accounting, and NACK
// recovery actually firing.
func TestDgramChaosLossReorderJitter(t *testing.T) {
	sink := newChaosSink(t)
	cfg := netsim.LossyConfig{
		Loss:         0.05,
		Reorder:      0.10,
		ReorderDelay: 5 * time.Millisecond,
		Jitter:       2 * time.Millisecond,
		Seed:         2026,
	}
	r, p, lossy := runChaos(t, cfg, sink, 300, 20)

	st := r.Stats()
	ls := lossy.Stats()
	tuples, corrupted, regressed := sink.snapshot()
	if corrupted != 0 {
		t.Fatalf("%d corrupted tuples reached the sink", corrupted)
	}
	if regressed != 0 {
		t.Fatalf("%d watermark regressions reached the sink", regressed)
	}
	if ls.Dropped == 0 {
		t.Fatalf("chaos link dropped nothing; the test exercised no loss (link %+v)", ls)
	}
	if st.Recovered == 0 {
		t.Fatalf("no NACK recovery under 5%% loss (stats %+v, link %+v)", st, ls)
	}
	// Gap accounting: what the receiver declared lost can only be
	// datagrams the link actually ate (first sends or their resends) —
	// injected loss minus what NACKs pulled back.
	if st.Lost > ls.Dropped {
		t.Fatalf("receiver declared %d lost, link only dropped %d", st.Lost, ls.Dropped)
	}
	if st.Released+st.Lost != int64(p.Seq()) {
		t.Fatalf("conservation: released %d + lost %d != %d assigned", st.Released, st.Lost, p.Seq())
	}
	if pubStats := p.Stats(); pubStats.Resent == 0 {
		t.Fatalf("publisher never answered a NACK: %+v", pubStats)
	}
	t.Logf("sent=%d released=%d lost=%d recovered=%d reordered=%d dup=%d tuples=%d linkDropped=%d resent=%d",
		p.Seq(), st.Released, st.Lost, st.Recovered, st.Reordered, st.Duplicates, tuples, ls.Dropped, p.Stats().Resent)
}

// TestDgramChaosReorderDupOnly: with no loss injected, nothing may be
// declared lost and every tuple must arrive exactly once, in order.
func TestDgramChaosReorderDupOnly(t *testing.T) {
	sink := newChaosSink(t)
	cfg := netsim.LossyConfig{
		Reorder:      0.20,
		ReorderDelay: 4 * time.Millisecond,
		Dup:          0.10,
		Seed:         7,
	}
	r, p, lossy := runChaos(t, cfg, sink, 200, 20)

	st := r.Stats()
	tuples, corrupted, regressed := sink.snapshot()
	if corrupted != 0 || regressed != 0 {
		t.Fatalf("corrupted=%d regressed=%d under lossless chaos", corrupted, regressed)
	}
	if st.Lost != 0 {
		t.Fatalf("lossless link, yet %d declared lost (stats %+v, link %+v)", st.Lost, st, lossy.Stats())
	}
	if tuples != 200*20 {
		t.Fatalf("released %d tuples, want %d — duplicates must not double-release", tuples, 200*20)
	}
	if st.Released != int64(p.Seq()) {
		t.Fatalf("released %d datagrams of %d assigned", st.Released, p.Seq())
	}
	if st.Reordered == 0 {
		t.Fatalf("20%% reorder produced no out-of-order arrivals: %+v", st)
	}
}

// TestDgramChaosPartition: a mid-stream partition loses a contiguous
// window. The stream must resume past it with clean accounting.
func TestDgramChaosPartition(t *testing.T) {
	sink := newChaosSink(t)
	r, err := Listen("127.0.0.1:0", sink.release, Options{Hold: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lossy := netsim.NewLossyConn(inner, netsim.LossyConfig{})
	raddr, _ := net.ResolveUDPAddr("udp", r.Addr().String())
	p := NewPublisher(lossy, raddr)
	defer p.Close()

	for phase, partitioned := range []bool{false, true, false} {
		lossy.SetPartitioned(partitioned)
		for i := 0; i < 50; i++ {
			p.Publish(chaosBatch((phase*50+i)*10, 10))
			time.Sleep(time.Millisecond)
		}
	}
	if !testutil.Poll(15*time.Second, func() bool {
		st := r.Stats()
		return st.Released+st.Lost == int64(p.Seq())
	}) {
		t.Fatalf("never quiesced after partition: %+v vs %d", r.Stats(), p.Seq())
	}
	st := r.Stats()
	_, corrupted, regressed := sink.snapshot()
	if corrupted != 0 || regressed != 0 {
		t.Fatalf("corrupted=%d regressed=%d across a partition", corrupted, regressed)
	}
	// The partitioned window (50 datagrams) must be explicitly accounted:
	// recovered by post-heal NACK resends from the ring, or declared
	// lost once the hold expired — never silently skipped. (With the
	// partition shorter than the hold, recovery typically wins outright.)
	if st.Recovered+st.Lost < 50 {
		t.Fatalf("partition window unaccounted: recovered %d + lost %d < 50 (stats %+v)",
			st.Recovered, st.Lost, st)
	}
	if st.Lost > lossy.Stats().Dropped {
		t.Fatalf("lost %d > link dropped %d", st.Lost, lossy.Stats().Dropped)
	}

	// Full-pipeline teardown must leave no goroutine behind.
	p.Close()
	r.Close()
	lossy.Close()
	if err := testutil.CheckLeaksWithin(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
