package dgram

import (
	"fmt"
	"math/rand"
	"net"
	"sync"

	"repro/internal/tuple"
)

// Publisher sends tuple batches as sequence-numbered UDP datagrams and
// answers NACKs from a bounded ring of recently sent datagrams. Publish
// is single-producer (the netscope client calls it from its one writer
// goroutine); the NACK listener runs on its own goroutine and shares
// only the retained ring, under mu. A steady-state publisher allocates
// nothing per batch: the encoder, the packet buffer and every ring slot
// are retained and reused.
type Publisher struct {
	conn   net.PacketConn
	raddr  net.Addr
	stream uint64
	epoch  uint64
	enc    *tuple.DatagramEncoder

	// pkt is the encode buffer for the datagram being built. Owned by
	// the Publish caller (single producer); never touched by the NACK
	// listener, which resends from the ring.
	pkt []byte

	mu sync.Mutex
	// ring holds the last RingSize sent datagrams, indexed seq&ringMask;
	// each slot's buffer is retained and overwritten in place.
	//gscope:guardedby mu
	ring []ringSlot
	//gscope:guardedby mu
	seq uint64
	//gscope:guardedby mu
	closed bool
	//gscope:guardedby mu
	stats PublisherStats

	done chan struct{}
	wg   sync.WaitGroup
}

// ringSlot is one retained datagram.
type ringSlot struct {
	seq  uint64
	used bool
	buf  []byte
}

// PublisherStats are lifetime publisher counters.
type PublisherStats struct {
	// Datagrams and Tuples count first transmissions.
	Datagrams int64
	Tuples    int64
	// Resent counts NACK-answered retransmissions; NackRx the NACK
	// datagrams heard; NackMiss the requested seqs already evicted from
	// the ring (or never sent).
	Resent   int64
	NackRx   int64
	NackMiss int64
	// Oversized counts single tuples whose datagram would exceed
	// MaxDatagram; they are dropped, never sent.
	Oversized int64
	// WriteErrs counts failed socket writes (the datagrams still occupy
	// their sequence numbers, so receivers account them as loss).
	WriteErrs int64
}

// nextStreamID hands each publisher a random stream ID so receivers can
// tell apart publishers that share one source address, and a restarted
// publisher starts a fresh stream instead of colliding with its former
// self's sequence space. 32 bits keeps the uvarint header short; the
// top-level math/rand source is goroutine-safe and auto-seeded.
func nextStreamID() uint64 {
	return uint64(rand.Uint32() | 1) //nolint:gosec // identity, not security
}

// Dial binds a fresh local UDP socket and returns a Publisher sending to
// addr. The socket is owned by the publisher and closed with it.
func Dial(addr string) (*Publisher, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dgram: %w", err)
	}
	conn, err := net.ListenPacket("udp", ":0")
	if err != nil {
		return nil, fmt.Errorf("dgram: %w", err)
	}
	return NewPublisher(conn, raddr), nil
}

// NewPublisher returns a publisher sending datagrams to raddr over conn
// (which it takes ownership of: Close closes it). The NACK listener
// starts immediately.
func NewPublisher(conn net.PacketConn, raddr net.Addr) *Publisher {
	p := &Publisher{
		conn:   conn,
		raddr:  raddr,
		stream: nextStreamID(),
		epoch:  1,
		enc:    tuple.NewDatagramEncoder(),
		ring:   make([]ringSlot, RingSize),
		done:   make(chan struct{}),
	}
	p.wg.Add(1)
	go p.nackLoop()
	return p
}

// StreamID returns the publisher's stream identifier.
func (p *Publisher) StreamID() uint64 { return p.stream }

// Seq returns the next unassigned sequence number — equivalently, how
// many DATA datagrams have been assigned so far (sent or write-failed).
func (p *Publisher) Seq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// Stats returns a snapshot of the lifetime counters.
func (p *Publisher) Stats() PublisherStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// maxBatchTuples is the packetizer's initial tuples-per-datagram guess;
// typical telemetry encodes ~64 tuples well under TargetDatagram.
const maxBatchTuples = 64

// Publish encodes batch into one or more self-contained datagrams and
// sends them. It never blocks on the network beyond the UDP sendto and
// never fails the stream: write errors are counted and the affected
// sequence numbers appear at receivers as loss, which is the transport's
// honest failure mode. The batch is encoded immediately; the caller may
// reuse it. Publish is not safe for concurrent use.
//
//gscope:hotpath
func (p *Publisher) Publish(batch []tuple.Tuple) {
	for i := 0; i < len(batch); {
		n := len(batch) - i
		if n > maxBatchTuples {
			n = maxBatchTuples
		}
		// Shrink until the chunk fits the target (or a single tuple
		// forces a larger datagram, legal up to MaxDatagram).
		for {
			p.pkt = p.encodeOne(p.pkt[:0], batch[i:i+n])
			if len(p.pkt) <= TargetDatagram || n == 1 {
				break
			}
			n /= 2
		}
		if len(p.pkt) > MaxDatagram {
			// Never sent, and the sequence number is not consumed (only
			// send advances seq), so receivers see no phantom gap.
			p.mu.Lock()
			p.stats.Oversized++
			p.mu.Unlock()
			i += n
			continue
		}
		p.send(p.pkt, n)
		i += n
	}
}

// encodeOne builds one DATA datagram for run into dst, consuming the
// next sequence number.
//
//gscope:hotpath
func (p *Publisher) encodeOne(dst []byte, run []tuple.Tuple) []byte {
	p.mu.Lock()
	seq := p.seq
	p.mu.Unlock()
	dst = appendHeader(dst, TypeData, p.stream, p.epoch, seq)
	return p.enc.AppendDatagram(dst, run)
}

// send retains pkt in the ring and writes it to the socket.
//
//gscope:hotpath
func (p *Publisher) send(pkt []byte, tuples int) {
	p.mu.Lock()
	seq := p.seq
	p.seq++
	slot := &p.ring[seq&(RingSize-1)]
	slot.seq = seq
	slot.used = true
	slot.buf = append(slot.buf[:0], pkt...)
	p.stats.Datagrams++
	p.stats.Tuples += int64(tuples)
	p.mu.Unlock()
	if _, err := p.conn.WriteTo(pkt, p.raddr); err != nil { //gscope:allow hotpath PacketConn.WriteTo is the transport itself; one dynamic call per datagram
		p.mu.Lock()
		p.stats.WriteErrs++
		p.mu.Unlock()
	}
}

// nackLoop reads NACK datagrams and answers them from the ring.
func (p *Publisher) nackLoop() {
	defer p.wg.Done()
	buf := make([]byte, 2048)
	var seqs []uint64
	for {
		n, _, err := p.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			// Transient read errors on a live socket: keep serving.
			continue
		}
		h, perr := parseHeader(buf[:n])
		if perr != nil || h.typ != TypeNack || h.stream != p.stream || h.epoch != p.epoch {
			continue // not ours (stray, stale, or noise): ignore
		}
		seqs, perr = parseNackSeqs(seqs[:0], h)
		if perr != nil {
			continue
		}
		p.mu.Lock()
		p.stats.NackRx++
		for _, s := range seqs {
			slot := &p.ring[s&(RingSize-1)]
			if !slot.used || slot.seq != s {
				p.stats.NackMiss++
				continue
			}
			if _, werr := p.conn.WriteTo(slot.buf, p.raddr); werr != nil {
				p.stats.WriteErrs++
				continue
			}
			p.stats.Resent++
		}
		p.mu.Unlock()
	}
}

// Close stops the NACK listener and closes the socket.
func (p *Publisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	err := p.conn.Close()
	p.wg.Wait()
	return err
}
