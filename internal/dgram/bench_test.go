package dgram

import (
	"runtime"
	"testing"

	"repro/internal/tuple"
)

// BenchmarkDgramPublish measures the publisher hot path — packetize,
// encode, retain in the ring, hand to the socket — against a discarding
// conn, so the kernel is out of the measurement. ns/op is per tuple. The
// acceptance bar is asserted inline on runs long enough to be meaningful:
// the encode path must be allocation-free in steady state (the same gate
// TestPublishZeroAllocSteadyState applies per call).
func BenchmarkDgramPublish(b *testing.B) {
	const batchLen = 256
	conn := newPipeConn()
	conn.drop = func([]byte, int) bool { return true } // discard, like /dev/null UDP
	p := NewPublisher(conn, fakeAddr("sink"))
	defer p.Close()
	batch := mkBatch(0, batchLen)
	// Warm the name table, the packet buffer, and one full wrap of the
	// retained ring, so every slot's buffer has its steady-state capacity.
	for i := 0; i < RingSize+8; i++ {
		p.Publish(batch)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchLen {
		p.Publish(batch)
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	if p.Stats().Tuples == 0 {
		b.Fatal("no tuples published")
	}
	// Assert only on full-length runs: the short calibration rounds the
	// harness uses to find b.N carry startup noise.
	if b.N >= 1<<20 {
		if allocs := m1.Mallocs - m0.Mallocs; allocs > uint64(b.N/10000) {
			b.Fatalf("publish allocated: %d mallocs over %d tuples", allocs, b.N)
		}
	}
}

// BenchmarkJitterBufferRelease measures the receiver's reorder buffer in
// its steady state under jitter: datagrams arrive shuffled within a
// bounded window, so the buffer continuously opens short gaps, holds the
// out-of-order tail, and releases in-order runs as they complete. ns/op
// is per tuple, ingest through release. Each outer round is a fresh epoch
// (epochs restart at sequence 0, WIRE.md §D3), so rounds are independent.
func BenchmarkJitterBufferRelease(b *testing.B) {
	const nDgrams = 256
	const perDgram = 16
	enc := tuple.NewDatagramEncoder()
	chunks := make([][]byte, nDgrams)
	for i := range chunks {
		chunks[i] = enc.AppendDatagram(nil, mkBatch(i*perDgram, perDgram))
	}
	// Deterministic bounded-window shuffle (LCG): each datagram lands at
	// most 7 positions away from home, a realistic jitter pattern that
	// keeps the buffer busy without ever declaring loss.
	order := make([]int, nDgrams)
	for i := range order {
		order[i] = i
	}
	rng := uint64(2026)
	for i := range order {
		rng = rng*6364136223846793005 + 1442695040888963407
		if j := i + int(rng%8); j < len(order) {
			order[i], order[j] = order[j], order[i]
		}
	}

	released := 0
	r := bareReceiver(func(batch []tuple.Tuple) { released += len(batch) }, Options{MaxNacks: -1})
	from := fakeAddr("bench")
	pkt := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	epoch := uint64(1)
	for i := 0; i < b.N; i += nDgrams * perDgram {
		for _, idx := range order {
			pkt = appendHeader(pkt[:0], TypeData, 1, epoch, uint64(idx))
			pkt = append(pkt, chunks[idx]...)
			r.ingest(pkt, from)
		}
		epoch++
	}
	b.StopTimer()
	if released == 0 {
		b.Fatal("no tuples released")
	}
	st := r.Stats()
	if st.Lost != 0 || st.Malformed != 0 {
		b.Fatalf("windowed shuffle lost data: %+v", st)
	}
}
