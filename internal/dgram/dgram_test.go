package dgram

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/tuple"
)

// fakeAddr is a minimal net.Addr for driving ingest directly.
type fakeAddr string

func (a fakeAddr) Network() string { return "fake" }
func (a fakeAddr) String() string  { return string(a) }

// pipeConn is an in-memory net.PacketConn: WriteTo captures datagrams
// (optionally filtered), ReadFrom drains an inbox channel. It stands in
// for the UDP socket in deterministic unit tests.
type pipeConn struct {
	mu   sync.Mutex
	sent [][]byte // captured WriteTo payloads, in order
	drop func(pkt []byte, n int) bool

	inbox  chan []byte
	closed chan struct{}
	once   sync.Once
}

func newPipeConn() *pipeConn {
	return &pipeConn{inbox: make(chan []byte, 64), closed: make(chan struct{})}
}

func (c *pipeConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.drop != nil && c.drop(p, len(c.sent)) {
		return len(p), nil // dropped on the floor, like UDP
	}
	c.sent = append(c.sent, append([]byte(nil), p...))
	return len(p), nil
}

func (c *pipeConn) ReadFrom(p []byte) (int, net.Addr, error) {
	select {
	case pkt := <-c.inbox:
		return copy(p, pkt), fakeAddr("peer"), nil
	case <-c.closed:
		return 0, nil, net.ErrClosed
	}
}

func (c *pipeConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *pipeConn) LocalAddr() net.Addr              { return fakeAddr("local") }
func (c *pipeConn) SetDeadline(time.Time) error      { return nil }
func (c *pipeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *pipeConn) SetWriteDeadline(time.Time) error { return nil }

func (c *pipeConn) packets() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.sent))
	copy(out, c.sent)
	return out
}

// collector gathers released batches.
type collector struct {
	mu     sync.Mutex
	tuples []tuple.Tuple
}

func (c *collector) release(b []tuple.Tuple) {
	c.mu.Lock()
	c.tuples = append(c.tuples, b...)
	c.mu.Unlock()
}

func (c *collector) snapshot() []tuple.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]tuple.Tuple(nil), c.tuples...)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tuples)
}

// mkBatch builds n tuples over a couple of signals with a recognizable
// time/value ramp starting at base.
func mkBatch(base, n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		name := "sig.a"
		if (base+i)%3 == 0 {
			name = "sig.b"
		}
		out[i] = tuple.Tuple{Time: int64(base+i) * 10, Value: float64(base+i) * 0.5, Name: name}
	}
	return out
}

// capturePublisher returns a publisher writing into a pipeConn.
func capturePublisher(t *testing.T) (*Publisher, *pipeConn) {
	t.Helper()
	conn := newPipeConn()
	p := NewPublisher(conn, fakeAddr("sink"))
	t.Cleanup(func() { p.Close() })
	return p, conn
}

// quietReceiver returns a receiver on an idle pipeConn for direct-ingest
// tests, with NACKs disabled unless opts enables them.
func quietReceiver(t *testing.T, col *collector, opt Options) (*Receiver, *pipeConn) {
	t.Helper()
	conn := newPipeConn()
	r := NewReceiver(conn, col.release, opt)
	t.Cleanup(func() { r.Close() })
	return r, conn
}

func TestPublishReceiveLoopbackUDP(t *testing.T) {
	col := &collector{}
	r, err := Listen("127.0.0.1:0", col.release, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p, err := Dial(r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var want []tuple.Tuple
	for i := 0; i < 10; i++ {
		b := mkBatch(i*100, 50)
		want = append(want, b...)
		p.Publish(b)
	}
	if !testutil.Poll(5*time.Second, func() bool { return col.count() == len(want) }) {
		t.Fatalf("released %d tuples, want %d (stats %+v)", col.count(), len(want), r.Stats())
	}
	got := col.snapshot()
	for i := range want {
		if got[i].Time != want[i].Time || got[i].Name != want[i].Name ||
			math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
			t.Fatalf("tuple %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	st := r.Stats()
	if st.Lost != 0 || st.Late != 0 || st.Malformed != 0 {
		t.Fatalf("loopback stream counted loss: %+v", st)
	}
	if st.Released != int64(p.Stats().Datagrams) {
		t.Fatalf("released %d datagrams, publisher sent %d", st.Released, p.Stats().Datagrams)
	}
}

func TestReceiverReordersOutOfOrderDelivery(t *testing.T) {
	p, conn := capturePublisher(t)
	for i := 0; i < 5; i++ {
		p.Publish(mkBatch(i*100, 10))
	}
	pkts := conn.packets()
	if len(pkts) != 5 {
		t.Fatalf("got %d datagrams, want 5", len(pkts))
	}

	col := &collector{}
	r, _ := quietReceiver(t, col, Options{MaxNacks: -1})
	from := fakeAddr("pub")
	for _, i := range []int{1, 0, 4, 2, 3} {
		r.ingest(pkts[i], from)
	}
	if col.count() != 50 {
		t.Fatalf("released %d tuples, want 50 (stats %+v)", col.count(), r.Stats())
	}
	got := col.snapshot()
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("release order regressed at %d: %d after %d", i, got[i].Time, got[i-1].Time)
		}
	}
	st := r.Stats()
	if st.Lost != 0 || st.Reordered == 0 || st.Duplicates != 0 {
		t.Fatalf("unexpected stats after reorder: %+v", st)
	}
}

func TestReceiverCountsDuplicatesAndLate(t *testing.T) {
	p, conn := capturePublisher(t)
	for i := 0; i < 3; i++ {
		p.Publish(mkBatch(i*100, 5))
	}
	pkts := conn.packets()
	col := &collector{}
	r, _ := quietReceiver(t, col, Options{MaxNacks: -1})
	from := fakeAddr("pub")

	r.ingest(pkts[0], from) // released immediately
	r.ingest(pkts[0], from) // behind next: late
	r.ingest(pkts[2], from) // buffered, gap at seq 1
	r.ingest(pkts[2], from) // still buffered: duplicate
	r.ingest(pkts[1], from) // fills the gap
	st := r.Stats()
	if st.Late != 1 || st.Duplicates != 1 || st.Released != 3 || st.Lost != 0 {
		t.Fatalf("stats %+v, want late=1 dup=1 released=3 lost=0", st)
	}
	if col.count() != 15 {
		t.Fatalf("released %d tuples, want 15", col.count())
	}
}

func TestReceiverDeclaresLossAfterHold(t *testing.T) {
	p, conn := capturePublisher(t)
	for i := 0; i < 3; i++ {
		p.Publish(mkBatch(i*100, 5))
	}
	pkts := conn.packets()
	col := &collector{}
	r, _ := quietReceiver(t, col, Options{Hold: 30 * time.Millisecond, MaxNacks: -1})
	from := fakeAddr("pub")

	r.ingest(pkts[0], from)
	r.ingest(pkts[2], from) // seq 1 never arrives
	if !testutil.Poll(5*time.Second, func() bool { return r.Stats().Lost == 1 }) {
		t.Fatalf("gap never declared lost: %+v", r.Stats())
	}
	if col.count() != 10 {
		t.Fatalf("released %d tuples, want 10 (the two delivered datagrams)", col.count())
	}
	// The late arrival of the lost datagram must not regress the stream.
	r.ingest(pkts[1], from)
	st := r.Stats()
	if st.Late != 1 || col.count() != 10 {
		t.Fatalf("lost datagram re-arrival not dropped as late: %+v", st)
	}
}

func TestReceiverEmitsNacksAndCountsRecovery(t *testing.T) {
	p, conn := capturePublisher(t)
	for i := 0; i < 3; i++ {
		p.Publish(mkBatch(i*100, 5))
	}
	pkts := conn.packets()
	col := &collector{}
	r, rconn := quietReceiver(t, col, Options{
		Hold:      2 * time.Second,
		NackDelay: 10 * time.Millisecond,
	})
	from := fakeAddr("pub")

	r.ingest(pkts[0], from)
	r.ingest(pkts[2], from) // opens gap at seq 1
	if !testutil.Poll(5*time.Second, func() bool { return len(rconn.packets()) > 0 }) {
		t.Fatal("no NACK emitted for the open gap")
	}
	nack := rconn.packets()[0]
	h, err := parseHeader(nack)
	if err != nil || h.typ != TypeNack {
		t.Fatalf("emitted datagram is not a NACK: %v %+v", err, h)
	}
	seqs, err := parseNackSeqs(nil, h)
	if err != nil || len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("NACK seqs %v (err %v), want [1]", seqs, err)
	}
	if h.stream != p.StreamID() {
		t.Fatalf("NACK stream %d, want %d", h.stream, p.StreamID())
	}

	// Deliver the "resent" datagram: it must count as recovered.
	r.ingest(pkts[1], from)
	st := r.Stats()
	if st.Recovered != 1 || st.Lost != 0 || st.Released != 3 {
		t.Fatalf("stats %+v, want recovered=1 lost=0 released=3", st)
	}
}

func TestPublisherAnswersNacksFromRing(t *testing.T) {
	p, conn := capturePublisher(t)
	for i := 0; i < 4; i++ {
		p.Publish(mkBatch(i*100, 5))
	}
	sentBefore := len(conn.packets())

	// NACK seqs 1 and 2: both still in the ring.
	nack := appendNack(nil, p.StreamID(), 1, []uint64{1, 2})
	conn.inbox <- nack
	if !testutil.Poll(5*time.Second, func() bool { return p.Stats().Resent == 2 }) {
		t.Fatalf("resends never happened: %+v", p.Stats())
	}
	pkts := conn.packets()
	if len(pkts) != sentBefore+2 {
		t.Fatalf("got %d packets, want %d", len(pkts), sentBefore+2)
	}
	for i, want := range []int{1, 2} {
		if string(pkts[sentBefore+i]) != string(pkts[want]) {
			t.Fatalf("resent datagram %d differs from original seq %d", i, want)
		}
	}

	// A seq far beyond anything sent is a miss, not a crash.
	conn.inbox <- appendNack(nil, p.StreamID(), 1, []uint64{99999})
	if !testutil.Poll(5*time.Second, func() bool { return p.Stats().NackMiss == 1 }) {
		t.Fatalf("ring miss not counted: %+v", p.Stats())
	}

	// NACKs for a different stream or epoch are ignored.
	conn.inbox <- appendNack(nil, p.StreamID()+1, 1, []uint64{1})
	conn.inbox <- appendNack(nil, p.StreamID(), 2, []uint64{1})
	time.Sleep(20 * time.Millisecond)
	if got := p.Stats().NackRx; got != 2 {
		t.Fatalf("NackRx %d, want 2 (foreign NACKs must be ignored)", got)
	}
}

func TestReceiverStaleEpochAndRestart(t *testing.T) {
	colA := &collector{}
	r, _ := quietReceiver(t, colA, Options{MaxNacks: -1})
	from := fakeAddr("pub")

	// Epoch 2 stream delivers one datagram...
	connA := newPipeConn()
	pa := NewPublisher(connA, fakeAddr("sink"))
	defer pa.Close()
	pa.epoch = 2
	pa.Publish(mkBatch(0, 5))
	pa.Publish(mkBatch(100, 5))
	pktsA := connA.packets()

	r.ingest(pktsA[0], from)
	// ...then a datagram from epoch 1 of the same stream arrives: stale.
	connB := newPipeConn()
	pb := NewPublisher(connB, fakeAddr("sink"))
	defer pb.Close()
	pb.stream = pa.stream // same stream ID, older epoch
	pb.Publish(mkBatch(500, 5))
	r.ingest(connB.packets()[0], from)

	st := r.Stats()
	if st.StaleEpoch != 1 || st.Released != 1 {
		t.Fatalf("stats %+v, want staleEpoch=1 released=1", st)
	}

	// Epoch 3 restart: buffer resets, new epoch's first seq adopts.
	connC := newPipeConn()
	pc := NewPublisher(connC, fakeAddr("sink"))
	defer pc.Close()
	pc.stream = pa.stream
	pc.epoch = 3
	pc.Publish(mkBatch(900, 5))
	r.ingest(connC.packets()[0], from)
	st = r.Stats()
	if st.Released != 2 || st.StaleEpoch != 1 {
		t.Fatalf("stats after restart %+v, want released=2", st)
	}
}

func TestReceiverMalformedDatagrams(t *testing.T) {
	col := &collector{}
	r, _ := quietReceiver(t, col, Options{MaxNacks: -1})
	from := fakeAddr("pub")
	cases := [][]byte{
		nil,
		{},
		{Magic},
		{Magic, Version},
		{Magic, Version, TypeData},
		{0x00, Version, TypeData, 1, 1, 0},
		{Magic, 99, TypeData, 1, 1, 0},
		{Magic, Version, TypeData, 0x80}, // truncated uvarint
		append([]byte{Magic, Version, TypeData, 1, 1, 0}, 0xF5, 0x02, 5, 0xff, 0xff), // bad chunk
	}
	for i, pkt := range cases {
		r.ingest(pkt, from)
		if got := r.Stats().Malformed; got != int64(i+1) {
			t.Fatalf("case %d: malformed=%d, want %d", i, got, i+1)
		}
	}
	if col.count() != 0 {
		t.Fatalf("malformed datagrams released %d tuples", col.count())
	}
	// A valid datagram after garbage still decodes: errors are not sticky.
	p, conn := capturePublisher(t)
	p.Publish(mkBatch(0, 5))
	r.ingest(conn.packets()[0], from)
	if col.count() != 5 {
		t.Fatalf("valid datagram after garbage released %d tuples, want 5", col.count())
	}
}

func TestReceiverBufferBound(t *testing.T) {
	p, conn := capturePublisher(t)
	for i := 0; i < 12; i++ {
		p.Publish(mkBatch(i*100, 2))
	}
	pkts := conn.packets()
	col := &collector{}
	r, _ := quietReceiver(t, col, Options{Hold: time.Hour, MaxNacks: -1, MaxBuffered: 4})
	from := fakeAddr("pub")

	r.ingest(pkts[0], from)
	// Deliver only even seqs 2..22: every odd seq is a gap, pend grows
	// past MaxBuffered and must force the oldest gaps closed.
	for i := 2; i < 12; i += 2 {
		r.ingest(pkts[i], from)
	}
	st := r.Stats()
	if st.Lost == 0 {
		t.Fatalf("buffer bound never forced loss: %+v", st)
	}
	if got := col.count(); got == 0 {
		t.Fatal("bounded buffer released nothing")
	}
}

func TestPublisherPacketizesLargeBatches(t *testing.T) {
	p, conn := capturePublisher(t)
	p.Publish(mkBatch(0, 1000))
	pkts := conn.packets()
	if len(pkts) < 2 {
		t.Fatalf("1000 tuples fit one datagram (%d sent)", len(pkts))
	}
	total := 0
	for i, pkt := range pkts {
		if len(pkt) > MaxDatagram {
			t.Fatalf("datagram %d is %d bytes, over MaxDatagram", i, len(pkt))
		}
		h, err := parseHeader(pkt)
		if err != nil || h.typ != TypeData || h.seq != uint64(i) {
			t.Fatalf("datagram %d: header %+v err %v", i, h, err)
		}
		// Each chunk must decode standalone.
		dec := tuple.NewStreamDecoder()
		n := 0
		if err := dec.Feed(h.rest, func(string) {}, func(b []tuple.Tuple) { n += len(b) }); err != nil {
			t.Fatalf("datagram %d: chunk does not decode standalone: %v", i, err)
		}
		total += n
	}
	if total != 1000 {
		t.Fatalf("datagrams carry %d tuples, want 1000", total)
	}
	if got := p.Stats(); got.Datagrams != int64(len(pkts)) || got.Tuples != 1000 {
		t.Fatalf("publisher stats %+v", got)
	}
}

func TestPublishZeroAllocSteadyState(t *testing.T) {
	p, conn := capturePublisher(t)
	// Discard instead of capturing: the capture copy would be charged to
	// Publish, and the real socket write allocates nothing either.
	conn.drop = func([]byte, int) bool { return true }
	batch := mkBatch(0, 60)
	// Warm the encoder table, the packet buffer, and — by wrapping the
	// ring once — every retained ring slot's buffer.
	for i := 0; i < RingSize+8; i++ {
		p.Publish(batch)
	}
	allocs := testing.AllocsPerRun(200, func() { p.Publish(batch) })
	if allocs > 0 {
		t.Fatalf("steady-state Publish allocates %.1f times per call", allocs)
	}
}

func TestReceiverAppendStats(t *testing.T) {
	p, conn := capturePublisher(t)
	p.Publish(mkBatch(0, 5))
	col := &collector{}
	r, _ := quietReceiver(t, col, Options{MaxNacks: -1})
	r.ingest(conn.packets()[0], fakeAddr("pub"))

	buf := r.AppendStats(nil)
	if len(buf) == 0 {
		t.Fatal("empty stats render")
	}
	// Steady-state render must not allocate (it repaints every frame).
	buf = buf[:0]
	allocs := testing.AllocsPerRun(100, func() { buf = r.AppendStats(buf[:0]) })
	if allocs > 0 {
		t.Fatalf("AppendStats allocates %.1f times per render: %q", allocs, buf)
	}
	srcs := r.SourceStats()
	if len(srcs) != 1 || srcs[0].Datagrams != 1 {
		t.Fatalf("source stats %+v", srcs)
	}
}

func TestCloseIsIdempotentAndLeakFree(t *testing.T) {
	col := &collector{}
	r, err := Listen("127.0.0.1:0", col.release, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Dial(r.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	p.Publish(mkBatch(0, 10))
	if err := p.Close(); err != nil {
		t.Fatalf("publisher close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second publisher close: %v", err)
	}
	if err := r.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		t.Fatalf("receiver close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second receiver close: %v", err)
	}
	if err := testutil.CheckLeaksWithin(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
