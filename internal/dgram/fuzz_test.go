package dgram

import (
	"math"
	"testing"
	"time"

	"repro/internal/fuzzgen"
	"repro/internal/tuple"
)

// bareReceiver builds a Receiver with no socket and no goroutines: just
// the ingest path, which is exactly what the fuzz targets attack. The
// expiry/NACK sweep never runs, so gaps stay open — harmless, the jitter
// buffer is bounded by MaxBuffered regardless.
func bareReceiver(release func([]tuple.Tuple), opt Options) *Receiver {
	return &Receiver{
		release: release,
		opt:     opt.withDefaults(),
		now:     time.Now,
		dec:     tuple.NewStreamDecoder(),
		intern:  tuple.NewInterner(),
		sources: make(map[string]*source),
		done:    make(chan struct{}),
	}
}

// FuzzDgramDecode throws adversarial bytes at the whole receive path:
// header parse, chunk decode, jitter-buffer accounting. The invariants —
// no panic, no tuple fabricated from garbage without a decodable chunk
// behind it, malformed datagrams counted and never sticky — must hold
// for any byte string (WIRE.md §D4).
func FuzzDgramDecode(f *testing.F) {
	// Seeds: one valid datagram, truncations of it, flipped magic/version,
	// a NACK aimed at a receiver, and unstructured garbage.
	enc := tuple.NewDatagramEncoder()
	valid := appendHeader(nil, TypeData, 7, 1, 0)
	valid = enc.AppendDatagram(valid, []tuple.Tuple{
		{Time: 100, Value: 1.5, Name: "a"}, {Time: 110, Value: -2.5, Name: "b"},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:4])
	f.Add(append([]byte{}, 0xD6))
	f.Add([]byte{Magic, Version, TypeNack, 7, 1, 2, 0, 1})
	f.Add([]byte{Magic, 0x42, TypeData, 1, 1, 0})
	f.Add([]byte("total garbage, not a datagram at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var released int
		r := bareReceiver(func(b []tuple.Tuple) { released += len(b) }, Options{MaxNacks: -1})
		from := fakeAddr("fuzz")

		// The input as one datagram, then resliced as two, then the valid
		// prefix dance: every split must be independently survivable.
		r.ingest(data, from)
		if len(data) > 2 {
			r.ingest(data[:len(data)/2], from)
			r.ingest(data[len(data)/2:], from)
		}
		// A known-good datagram afterward must still decode: per-datagram
		// errors may never poison the shared decoder or the source table.
		before := released
		r.ingest(valid, from)
		st := r.Stats()
		if released == before && st.Late == 0 && st.Duplicates == 0 && st.StaleEpoch == 0 && st.Lost == 0 {
			// The valid datagram may legitimately land behind a fuzzed
			// datagram that claimed the same stream at a higher seq or
			// epoch (late/stale/duplicate/resync) — but if none of those
			// counters moved, it must have been released.
			if st.Released == 0 {
				t.Fatalf("valid datagram neither released nor accounted: %+v", st)
			}
		}
		if released < 0 || st.Malformed < 0 {
			t.Fatalf("counter underflow: released=%d stats=%+v", released, st)
		}
	})
}

// FuzzDgramDifferential is the lossy-lane counterpart of
// FuzzWireV3Differential: generate a tuple stream, packetize it into
// datagrams, then let the fuzzer drop, duplicate and reorder them. The
// released stream must be a subsequence of the original (datagram
// granularity): the UDP lane may lose tuples, it may never corrupt,
// reorder or duplicate them relative to what the TCP lane would deliver.
func FuzzDgramDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x13, 0x37})
	f.Add([]byte("drop the third datagram, deliver the rest backwards"))

	f.Fuzz(func(t *testing.T, data []byte) {
		src := fuzzgen.New(data)
		ts := src.Tuples(256, false)

		// Packetize exactly as a Publisher would (bounded runs, one
		// self-contained chunk per datagram), sequence numbers 0..n.
		enc := tuple.NewDatagramEncoder()
		var dgrams [][]byte
		var chunks [][]tuple.Tuple
		for i := 0; i < len(ts); {
			n := 1 + src.Intn(32)
			if i+n > len(ts) {
				n = len(ts) - i
			}
			pkt := appendHeader(nil, TypeData, 1, 1, uint64(len(dgrams)))
			pkt = enc.AppendDatagram(pkt, ts[i:i+n])
			dgrams = append(dgrams, pkt)
			chunks = append(chunks, ts[i:i+n])
			i += n
		}

		// Fuzzer-chosen delivery schedule: each datagram dropped, sent
		// once, or sent twice, at a fuzzer-chosen position.
		type delivery struct{ idx, at int }
		var plan []delivery
		kept := make([]bool, len(dgrams))
		for i := range dgrams {
			switch src.Intn(4) {
			case 0: // dropped
			case 1: // duplicated
				kept[i] = true
				plan = append(plan, delivery{i, src.Intn(1 << 16)}, delivery{i, src.Intn(1 << 16)})
			default:
				kept[i] = true
				plan = append(plan, delivery{i, src.Intn(1 << 16)})
			}
		}
		// Stable insertion sort by position: deterministic, no stdlib
		// sort needed for these small plans.
		for i := 1; i < len(plan); i++ {
			for j := i; j > 0 && plan[j].at < plan[j-1].at; j-- {
				plan[j], plan[j-1] = plan[j-1], plan[j]
			}
		}

		var released []tuple.Tuple
		r := bareReceiver(func(b []tuple.Tuple) {
			released = append(released, b...)
		}, Options{MaxNacks: -1, MaxBuffered: 64})
		from := fakeAddr("pub")
		for _, d := range plan {
			r.ingest(dgrams[d.idx], from)
		}

		// Differential check: the released stream must be a prefix-free
		// subsequence of the original tuple stream — every released tuple
		// matches the next unconsumed original tuple (bit-exact values),
		// with skips allowed (lost/late datagrams), no reordering, no
		// duplication.
		pos := 0
		for ri, rt := range released {
			matched := false
			for pos < len(ts) {
				ot := ts[pos]
				pos++
				if rt.Time == ot.Time && rt.Name == ot.Name &&
					math.Float64bits(rt.Value) == math.Float64bits(ot.Value) {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("released tuple %d (%+v) is not a subsequence match of the original %d-tuple stream",
					ri, rt, len(ts))
			}
		}
	})
}
