package dgram

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/tuple"
)

// Options tune a Receiver. The zero value selects every default.
type Options struct {
	// Hold bounds how long a gap is held open waiting for a missing
	// datagram (reordered or NACK-resent) before it is declared lost
	// and the stream released past it. Default DefaultHold.
	Hold time.Duration
	// NackDelay is how long a sequence must be missing before the first
	// NACK — short enough to recover within Hold, long enough that
	// plain reordering usually self-heals first. Default DefaultNackDelay.
	NackDelay time.Duration
	// NackInterval spaces retries; MaxNacks bounds them (0 = default;
	// negative disables NACKs entirely).
	NackInterval time.Duration
	MaxNacks     int
	// MaxBuffered bounds the jitter buffer per source, in datagrams.
	// Past it the oldest gaps are force-expired. Default DefaultMaxBuffered.
	MaxBuffered int
}

// Receiver defaults.
const (
	DefaultHold        = 200 * time.Millisecond
	DefaultNackDelay   = 20 * time.Millisecond
	DefaultNackItvl    = 40 * time.Millisecond
	DefaultMaxNacks    = 2
	DefaultMaxBuffered = 512
)

// SourceStats are one source's lifetime counters. A source is one
// (remote address, stream ID) pair — one publisher.
type SourceStats struct {
	// Key renders as "addr#stream", stable for the source's lifetime.
	Key string
	// Datagrams counts decodable DATA datagrams accepted (including
	// recovered ones, excluding duplicates/late/stale).
	Datagrams int64
	// Tuples counts tuples released downstream.
	Tuples int64
	// Released counts datagrams released in order.
	Released int64
	// Lost counts datagrams declared lost after Hold expired — the
	// transport's explicit gap accounting.
	Lost int64
	// Reordered counts datagrams that arrived out of order but in time
	// (no NACK had been sent, or none was needed).
	Reordered int64
	// Recovered counts datagrams that arrived after at least one NACK
	// asked for them.
	Recovered int64
	// Late counts datagrams that arrived after their slot was already
	// released or declared lost; they are dropped to keep releases (and
	// per-signal watermarks) monotonic.
	Late int64
	// Duplicates counts re-arrivals of datagrams still in the buffer.
	Duplicates int64
	// StaleEpoch counts datagrams from a superseded epoch of the stream.
	StaleEpoch int64
	// NacksSent counts NACK datagrams emitted toward this source.
	NacksSent int64
}

// Stats aggregates the receiver-wide counters: every SourceStats field
// summed, plus header/chunk-level rejects not attributable to a source.
type Stats struct {
	SourceStats
	// Malformed counts datagrams rejected by the header or chunk
	// decoder. Never sticky — datagrams are independent (WIRE.md §D4).
	Malformed int64
	// Sources is how many (addr, stream) pairs have been heard.
	Sources int
}

// missEntry tracks one open gap.
type missEntry struct {
	since    time.Time // when the gap was first observed
	lastNack time.Time
	nacks    int
	lost     bool // hold expired; the advance loop will count and skip it
}

// source is one publisher's reorder/jitter buffer. All fields are
// guarded by the receiver's mu.
type source struct {
	key    string
	addr   net.Addr
	stream uint64
	epoch  uint64
	next   uint64 // next sequence to release
	// pend maps buffered out-of-order sequences to their decoded,
	// copied batches; missing tracks the open gaps below them.
	pend    map[uint64][]tuple.Tuple
	missing map[uint64]*missEntry
	stats   SourceStats
}

// Receiver ingests DATA datagrams from any number of publishers,
// reorders each source's stream in a bounded jitter buffer, emits NACKs
// for missing sequences, and releases batches strictly in sequence order
// per source through the release callback.
//
// The callback runs on the receiver's read or expiry goroutine with the
// receiver lock held: it must not block, and the batch slice is valid
// only for the duration of the call (netscope copies it onto its loop).
type Receiver struct {
	conn    net.PacketConn
	release func([]tuple.Tuple)
	opt     Options
	// now is the clock, swappable in tests.
	now func() time.Time

	dec    *tuple.StreamDecoder
	intern *tuple.Interner
	scratch
	mu sync.Mutex
	//gscope:guardedby mu
	sources map[string]*source
	// order keeps sources in first-heard order for stable stats render.
	//gscope:guardedby mu
	order []*source
	//gscope:guardedby mu
	malformed int64
	//gscope:guardedby mu
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// scratch is the read-goroutine-owned reusable state (the decoder above
// is too: ingest runs only on the read goroutine and the fuzz harness).
type scratch struct {
	batch   []tuple.Tuple // decode accumulation, reused per datagram
	nackBuf []byte
	seqBuf  []uint64
	keyBuf  []byte
}

// maxInternedNames mirrors the netscope server's interner bound.
const maxInternedNames = 4096

// Listen binds a UDP listener on addr and starts a receiver on it.
func Listen(addr string, release func([]tuple.Tuple), opt Options) (*Receiver, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dgram: %w", err)
	}
	return NewReceiver(conn, release, opt), nil
}

// withDefaults fills every unset option.
func (o Options) withDefaults() Options {
	if o.Hold <= 0 {
		o.Hold = DefaultHold
	}
	if o.NackDelay <= 0 {
		o.NackDelay = DefaultNackDelay
	}
	if o.NackInterval <= 0 {
		o.NackInterval = DefaultNackItvl
	}
	if o.MaxNacks == 0 {
		o.MaxNacks = DefaultMaxNacks
	}
	if o.MaxBuffered <= 0 {
		o.MaxBuffered = DefaultMaxBuffered
	}
	return o
}

// NewReceiver starts a receiver on conn (taking ownership of it). The
// read loop and the hold-expiry loop run until Close.
func NewReceiver(conn net.PacketConn, release func([]tuple.Tuple), opt Options) *Receiver {
	r := &Receiver{
		conn:    conn,
		release: release,
		opt:     opt.withDefaults(),
		now:     time.Now,
		dec:     tuple.NewStreamDecoder(),
		intern:  tuple.NewInterner(),
		sources: make(map[string]*source),
		done:    make(chan struct{}),
	}
	r.wg.Add(2)
	go r.readLoop()
	go r.expiryLoop()
	return r
}

// Addr returns the bound listen address.
func (r *Receiver) Addr() net.Addr { return r.conn.LocalAddr() }

func (r *Receiver) readLoop() {
	defer r.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := r.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-r.done:
				return
			default:
			}
			continue
		}
		r.ingest(buf[:n], from)
	}
}

// ingest handles one datagram. It is the whole receive path in one
// call — the fuzz targets drive it directly with adversarial bytes.
func (r *Receiver) ingest(pkt []byte, from net.Addr) {
	h, err := parseHeader(pkt)
	if err != nil || h.typ != TypeData {
		// NACKs and unknown types addressed to a receiver are noise;
		// count them with the malformed so nothing is silently ignored.
		r.mu.Lock()
		r.malformed++
		r.mu.Unlock()
		return
	}
	// Decode before touching any stream state: a datagram that does not
	// decode must not consume its sequence number slot, so a later
	// intact retransmission can still fill it.
	r.batch = r.batch[:0]
	r.dec.Reset()
	ferr := r.dec.Feed(h.rest, r.onLine, r.onTuples)
	if ferr == nil && r.dec.TornFrame() {
		// A truncated binary frame would be "wait for more" on a stream;
		// a datagram is complete by definition, so a torn tail means the
		// chunk is malformed.
		ferr = errMalformed
	}
	if ferr == nil {
		r.dec.Tail(r.onLine)
	}
	if ferr != nil {
		r.mu.Lock()
		r.malformed++
		r.mu.Unlock()
		return
	}
	r.canonicalize(r.batch)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	src := r.lookupSource(from, h.stream)
	switch {
	case h.epoch < src.epoch:
		src.stats.StaleEpoch++
		return
	case h.epoch > src.epoch:
		// The publisher restarted its stream (or this is the source's
		// first datagram: new sources start at epoch 0, below any real
		// epoch). Everything still buffered or missing from the old
		// epoch will never be released in order; account it as lost and
		// restart at sequence 0, where every epoch begins (WIRE.md §D3) —
		// so a reordered first contact still opens recoverable gaps
		// instead of dropping the stream's earliest datagrams as late.
		src.stats.Lost += int64(len(src.pend) + len(src.missing))
		clear(src.pend)
		clear(src.missing)
		src.epoch = h.epoch
		src.next = 0
	}
	r.accept(src, h.seq)
}

// onLine accepts one interleaved text line from a chunk (the §B1
// fallback lane for names past the dictionary cap).
func (r *Receiver) onLine(line string) {
	if tuple.IsComment(line) {
		return
	}
	t, err := tuple.Parse(line)
	if err != nil {
		return // a bad text line is skippable, exactly as on TCP ingest
	}
	r.batch = append(r.batch, t)
}

func (r *Receiver) onTuples(ts []tuple.Tuple) { r.batch = append(r.batch, ts...) }

// canonicalize rewrites names to interned instances so buffered batches
// do not pin per-datagram dictionary strings (the same trick as the
// netscope server's ingest).
func (r *Receiver) canonicalize(batch []tuple.Tuple) {
	var prev, prevC string
	for i := range batch {
		name := batch[i].Name
		if name == prev {
			batch[i].Name = prevC
			continue
		}
		prev = name
		if id, ok := r.intern.Lookup(name); ok {
			batch[i].Name = r.intern.Name(id)
		} else if r.intern.Len() < maxInternedNames {
			batch[i].Name = r.intern.Canonical(name)
		}
		prevC = batch[i].Name
	}
}

// lookupSource finds or creates the (addr, stream) source. Caller holds mu.
//
//gscope:locked mu
func (r *Receiver) lookupSource(from net.Addr, stream uint64) *source {
	r.keyBuf = append(r.keyBuf[:0], from.String()...)
	r.keyBuf = append(r.keyBuf, '#')
	r.keyBuf = strconv.AppendUint(r.keyBuf, stream, 10)
	if src, ok := r.sources[string(r.keyBuf)]; ok {
		return src
	}
	key := string(r.keyBuf)
	src := &source{
		key:     key,
		addr:    from,
		stream:  stream,
		epoch:   0, // the first datagram's epoch adopts via the > branch
		pend:    make(map[uint64][]tuple.Tuple),
		missing: make(map[uint64]*missEntry),
		stats:   SourceStats{Key: key},
	}
	// Adopt the first heard epoch/seq lazily: epoch 0 is below any real
	// epoch (publishers start at 1), so ingest's epoch-advance branch
	// initializes next on first contact.
	r.sources[key] = src
	r.order = append(r.order, src)
	return src
}

// accept routes one decoded in-epoch datagram through the jitter buffer.
// Caller holds mu.
//
//gscope:locked mu
func (r *Receiver) accept(src *source, seq uint64) {
	if seq < src.next {
		src.stats.Late++
		return
	}
	if seq > src.next {
		if _, dup := src.pend[seq]; dup {
			src.stats.Duplicates++
			return
		}
		if m, ok := src.missing[seq]; ok {
			// A gap we were tracking just filled (its hold may have
			// expired this very tick, but the slot is still open —
			// advance has not passed it — so deliver anyway).
			if m.nacks > 0 {
				src.stats.Recovered++
			} else {
				src.stats.Reordered++
			}
			delete(src.missing, seq)
			src.stats.Datagrams++
			src.pend[seq] = append([]tuple.Tuple(nil), r.batch...)
			r.advance(src)
			return
		}
		// A brand-new jump past the buffered frontier.
		frontier := src.next
		for s := range src.pend {
			if s >= frontier {
				frontier = s + 1
			}
		}
		if seq-frontier < uint64(r.opt.MaxBuffered) {
			src.stats.Reordered++
			for s := frontier; s < seq; s++ {
				src.missing[s] = &missEntry{since: r.now()}
			}
			src.stats.Datagrams++
			src.pend[seq] = append([]tuple.Tuple(nil), r.batch...)
			if len(src.pend) > r.opt.MaxBuffered {
				// Buffer bound: force the oldest gaps closed so memory
				// stays bounded even against a hostile or insane sender.
				for _, m := range src.missing {
					m.lost = true
				}
			}
			r.advance(src)
			return
		}
		// The jump dwarfs the jitter buffer — a rejoin after a long
		// partition, or an adversarial sequence number. Opening one miss
		// entry per skipped seq would let a single datagram allocate
		// without bound, so resync instead: drain what is buffered,
		// charge the whole hole to Lost in one move, and fall through to
		// release this datagram in order.
		for _, m := range src.missing {
			m.lost = true
		}
		r.advance(src)
		src.stats.Lost += int64(seq - src.next)
		src.next = seq
	}
	// In order: release the decode batch directly, no copy. A NACKed gap
	// can fill exactly at the release frontier; retire its miss entry so
	// the sweep stops asking for it.
	if m, ok := src.missing[seq]; ok {
		if m.nacks > 0 {
			src.stats.Recovered++
		} else {
			src.stats.Reordered++
		}
		delete(src.missing, seq)
	}
	src.stats.Datagrams++
	src.stats.Released++
	r.releaseLocked(src, r.batch)
	src.next++
	r.advance(src)
}

// advance releases every in-order batch now available, skipping (and
// counting) gaps already declared lost. Caller holds mu.
//
//gscope:locked mu
func (r *Receiver) advance(src *source) {
	for {
		if b, ok := src.pend[src.next]; ok {
			delete(src.pend, src.next)
			src.stats.Released++ // counted before release: the callback sees consistent stats
			r.releaseLocked(src, b)
			src.next++
			continue
		}
		if m, ok := src.missing[src.next]; ok && m.lost {
			delete(src.missing, src.next)
			src.stats.Lost++
			src.next++
			continue
		}
		return
	}
}

// releaseLocked hands one batch downstream. Caller holds mu.
func (r *Receiver) releaseLocked(src *source, batch []tuple.Tuple) {
	src.stats.Tuples += int64(len(batch))
	if r.release != nil && len(batch) > 0 {
		r.release(batch)
	}
}

// expiryLoop periodically expires overdue gaps and emits NACKs.
func (r *Receiver) expiryLoop() {
	defer r.wg.Done()
	tick := r.opt.NackDelay / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.sweep()
		}
	}
}

// sweep is one expiry/NACK pass over every source.
func (r *Receiver) sweep() {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	for _, src := range r.order {
		r.seqBuf = r.seqBuf[:0]
		for seq, m := range src.missing {
			if m.lost {
				continue
			}
			if now.Sub(m.since) >= r.opt.Hold {
				m.lost = true
				continue
			}
			if r.opt.MaxNacks < 0 || m.nacks >= r.opt.MaxNacks {
				continue
			}
			due := m.since.Add(r.opt.NackDelay)
			if m.nacks > 0 {
				due = m.lastNack.Add(r.opt.NackInterval)
			}
			if now.Before(due) {
				continue
			}
			m.nacks++
			m.lastNack = now
			r.seqBuf = append(r.seqBuf, seq)
		}
		for i := 0; i < len(r.seqBuf); i += MaxNackSeqs {
			end := i + MaxNackSeqs
			if end > len(r.seqBuf) {
				end = len(r.seqBuf)
			}
			r.nackBuf = appendNack(r.nackBuf[:0], src.stream, src.epoch, r.seqBuf[i:end])
			if _, err := r.conn.WriteTo(r.nackBuf, src.addr); err == nil {
				src.stats.NacksSent++
			}
		}
		r.advance(src)
	}
}

// Stats returns the aggregate counters over every source.
func (r *Receiver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{Malformed: r.malformed, Sources: len(r.order)}
	for _, src := range r.order {
		st.Datagrams += src.stats.Datagrams
		st.Tuples += src.stats.Tuples
		st.Released += src.stats.Released
		st.Lost += src.stats.Lost
		st.Reordered += src.stats.Reordered
		st.Recovered += src.stats.Recovered
		st.Late += src.stats.Late
		st.Duplicates += src.stats.Duplicates
		st.StaleEpoch += src.stats.StaleEpoch
		st.NacksSent += src.stats.NacksSent
	}
	return st
}

// SourceStats snapshots every source's counters, in first-heard order.
func (r *Receiver) SourceStats() []SourceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SourceStats, len(r.order))
	for i, src := range r.order {
		out[i] = src.stats
	}
	return out
}

// AppendStats renders the aggregate transport counters, then one
// bracketed group per source, into dst — allocation-free, for status
// lines repainted every frame (cmd/gscoped -ansi).
func (r *Receiver) AppendStats(dst []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	dst = append(dst, "udp src="...)
	dst = strconv.AppendInt(dst, int64(len(r.order)), 10)
	dst = append(dst, " malformed="...)
	dst = strconv.AppendInt(dst, r.malformed, 10)
	for _, src := range r.order {
		dst = append(dst, " ["...)
		dst = append(dst, src.key...)
		dst = append(dst, " recv="...)
		dst = strconv.AppendInt(dst, src.stats.Datagrams, 10)
		dst = append(dst, " lost="...)
		dst = strconv.AppendInt(dst, src.stats.Lost, 10)
		dst = append(dst, " reord="...)
		dst = strconv.AppendInt(dst, src.stats.Reordered, 10)
		dst = append(dst, " rec="...)
		dst = strconv.AppendInt(dst, src.stats.Recovered, 10)
		dst = append(dst, " late="...)
		dst = strconv.AppendInt(dst, src.stats.Late, 10)
		dst = append(dst, ']')
	}
	return dst
}

// Close stops both loops and closes the socket. Buffered out-of-order
// batches are discarded (their sources' Lost counters are not advanced:
// the receiver is gone, there is no stream left to account against).
func (r *Receiver) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
	err := r.conn.Close()
	r.wg.Wait()
	return err
}
