// Package sched simulates the feedback-driven proportion-period CPU
// scheduler of Steere et al. (OSDI 1999), reference [19] of the gscope
// paper and one of its flagship visualization targets: "we use gscope to
// view dynamically changing process proportions as assigned by a CPU
// proportion-period scheduler". The simulation reproduces the signals the
// paper watches — per-process CPU proportions assigned at process-period
// granularity, and the pipeline buffer fill levels that drive the real-rate
// controller.
//
// Model: processes form producer/consumer pipelines connected by bounded
// queues. A process given CPU proportion p during a period of length T
// performs p·T·rate units of work (items produced or consumed). The
// real-rate controller observes each queue's fill level and adjusts the
// producer and consumer proportions to hold the queue near half full — a
// queue filling up means the consumer is starved (give it more CPU); a
// queue draining means the producer is starved. Proportions are clamped
// and normalized so the total allocation never exceeds one.
package sched

import (
	"fmt"
	"math"
	"time"
)

// Queue is a bounded buffer between two pipeline stages. Fill level is the
// classic gscope demo signal (§1 lists "fill levels of buffers in a
// pipeline").
type Queue struct {
	Name string
	Cap  float64
	fill float64
}

// NewQueue returns an empty queue.
func NewQueue(name string, capacity float64) *Queue {
	return &Queue{Name: name, Cap: capacity}
}

// Fill returns the current fill in items.
func (q *Queue) Fill() float64 { return q.fill }

// FillPct returns the fill as a percentage of capacity.
func (q *Queue) FillPct() float64 {
	if q.Cap <= 0 {
		return 0
	}
	return q.fill / q.Cap * 100
}

// put adds items, clamping at capacity; it returns the amount actually
// stored (the rest is lost, modeling producer stall).
func (q *Queue) put(n float64) float64 {
	space := q.Cap - q.fill
	if n > space {
		n = space
	}
	if n < 0 {
		n = 0
	}
	q.fill += n
	return n
}

// take removes up to n items and returns the amount removed.
func (q *Queue) take(n float64) float64 {
	if n > q.fill {
		n = q.fill
	}
	if n < 0 {
		n = 0
	}
	q.fill -= n
	return n
}

// Role distinguishes pipeline stages.
type Role int

// Roles.
const (
	// Producer stages generate items into their output queue using CPU.
	Producer Role = iota
	// Consumer stages drain items from their input queue using CPU.
	Consumer
	// Filter stages move items from input to output using CPU.
	Filter
	// Arrival stages inject items at a fixed real rate regardless of CPU
	// share — modeling I/O-driven producers (network packets, decoded
	// audio frames) whose consumers the real-rate scheduler must keep up
	// with. Arrival stages receive no CPU proportion.
	Arrival
)

// Process is one scheduled entity.
type Process struct {
	Name string
	Role Role
	// Rate is work units per second of CPU at full proportion.
	Rate float64
	// Period is the scheduling period at which the proportion is
	// re-assigned; the paper sets the scope polling period equal to it
	// (§4.2 "Periodic Signals").
	Period time.Duration

	// In and Out are the stage's queues (nil per role).
	In, Out *Queue

	proportion float64
	integ      float64

	// Done counts completed work units.
	Done float64
}

// Proportion returns the currently assigned CPU share — the signal the
// paper plots per process.
func (p *Process) Proportion() float64 { return p.proportion }

// Scheduler assigns proportions with a PI controller per process and
// simulates execution.
type Scheduler struct {
	Processes []*Process
	Queues    []*Queue

	// Kp and Ki are the controller gains on normalized queue error.
	Kp, Ki float64
	// MinShare and MaxShare clamp individual proportions.
	MinShare, MaxShare float64

	elapsed     time.Duration
	allocations int64
}

// NewScheduler returns a scheduler with the reference controller gains.
// The controller is a position-form PI: the proportional term damps the
// queue dynamics while the integral term carries each process's
// steady-state share, so fill levels settle near half full instead of
// oscillating.
func NewScheduler() *Scheduler {
	return &Scheduler{
		Kp:       0.30,
		Ki:       0.50,
		MinShare: 0.02,
		MaxShare: 0.90,
	}
}

// AddProcess registers a process (initial proportion MinShare), seeding the
// controller's integral term so the assigned share starts there.
func (s *Scheduler) AddProcess(p *Process) *Process {
	if p.Role != Arrival {
		if p.proportion == 0 {
			p.proportion = s.MinShare
		}
		if s.Ki > 0 {
			p.integ = p.proportion / s.Ki
		}
	}
	s.Processes = append(s.Processes, p)
	return p
}

// AddQueue registers a queue for monitoring.
func (s *Scheduler) AddQueue(q *Queue) *Queue {
	s.Queues = append(s.Queues, q)
	return q
}

// Elapsed returns simulated time.
func (s *Scheduler) Elapsed() time.Duration { return s.elapsed }

// Allocations counts proportion re-assignments.
func (s *Scheduler) Allocations() int64 { return s.allocations }

// Step advances the simulation by dt: every process runs with its current
// proportion, then the controller re-assigns proportions from queue
// feedback. dt should be at most the shortest process period.
func (s *Scheduler) Step(dt time.Duration) {
	sec := dt.Seconds()
	// Execute.
	for _, p := range s.Processes {
		work := p.proportion * p.Rate * sec
		switch p.Role {
		case Producer:
			if p.Out != nil {
				p.Done += p.Out.put(work)
			}
		case Consumer:
			if p.In != nil {
				p.Done += p.In.take(work)
			}
		case Filter:
			if p.In != nil && p.Out != nil {
				moved := p.In.take(work)
				p.Done += p.Out.put(moved)
			}
		case Arrival:
			if p.Out != nil {
				p.Done += p.Out.put(p.Rate * sec)
			}
		}
	}
	// Control: per-process PI on the queue error.
	for _, p := range s.Processes {
		var err float64
		switch p.Role {
		case Arrival:
			continue
		case Producer:
			if p.Out == nil || p.Out.Cap <= 0 {
				continue
			}
			// A draining output queue means the producer needs more CPU.
			err = 0.5 - p.Out.fill/p.Out.Cap
		case Consumer:
			if p.In == nil || p.In.Cap <= 0 {
				continue
			}
			// A filling input queue means the consumer needs more CPU.
			err = p.In.fill/p.In.Cap - 0.5
		case Filter:
			if p.In == nil || p.Out == nil {
				continue
			}
			err = (p.In.fill/p.In.Cap - p.Out.fill/p.Out.Cap) / 2
		}
		p.integ += err * sec
		// Anti-windup: the integral term carries the steady-state share,
		// which can never usefully exceed the share clamp.
		if s.Ki > 0 {
			p.integ = clamp(p.integ, 0, s.MaxShare/s.Ki)
		}
		target := s.Kp*err + s.Ki*p.integ
		p.proportion = clamp(target, s.MinShare, s.MaxShare)
		s.allocations++
	}
	s.normalize()
	s.elapsed += dt
}

// normalize scales proportions down when they sum past 1 (the scheduler
// never over-commits the CPU).
func (s *Scheduler) normalize() {
	sum := 0.0
	for _, p := range s.Processes {
		sum += p.proportion
	}
	if sum <= 1 {
		return
	}
	for _, p := range s.Processes {
		if p.Role == Arrival {
			continue
		}
		p.proportion = math.Max(s.MinShare/2, p.proportion/sum)
	}
}

// Run advances the simulation to horizon in fixed steps.
func (s *Scheduler) Run(horizon, step time.Duration) {
	for s.elapsed < horizon {
		s.Step(step)
	}
}

// TotalProportion returns the summed allocation.
func (s *Scheduler) TotalProportion() float64 {
	sum := 0.0
	for _, p := range s.Processes {
		sum += p.proportion
	}
	return sum
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// NewPipeline wires a producer→queue→consumer chain with the given rates
// and returns (scheduler-ready) components. It is the standard demo
// topology: a media decoder feeding a renderer.
func NewPipeline(name string, prodRate, consRate, queueCap float64, period time.Duration) (*Process, *Queue, *Process) {
	q := NewQueue(name+".q", queueCap)
	prod := &Process{Name: name + ".prod", Role: Producer, Rate: prodRate, Period: period, Out: q}
	cons := &Process{Name: name + ".cons", Role: Consumer, Rate: consRate, Period: period, In: q}
	return prod, q, cons
}

// String summarizes scheduler state.
func (s *Scheduler) String() string {
	out := fmt.Sprintf("sched t=%v total=%.2f", s.elapsed, s.TotalProportion())
	for _, p := range s.Processes {
		out += fmt.Sprintf(" %s=%.2f", p.Name, p.proportion)
	}
	return out
}
