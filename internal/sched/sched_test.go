package sched

import (
	"testing"
	"time"
)

func TestQueuePutTakeClamping(t *testing.T) {
	q := NewQueue("q", 10)
	if got := q.put(6); got != 6 {
		t.Fatalf("put = %v", got)
	}
	if got := q.put(8); got != 4 {
		t.Fatalf("overfull put stored %v, want 4", got)
	}
	if q.Fill() != 10 {
		t.Fatalf("fill = %v", q.Fill())
	}
	if q.FillPct() != 100 {
		t.Fatalf("pct = %v", q.FillPct())
	}
	if got := q.take(25); got != 10 {
		t.Fatalf("take = %v", got)
	}
	if got := q.take(1); got != 0 {
		t.Fatal("empty take should return 0")
	}
	if q.put(-5) != 0 || q.take(-5) != 0 {
		t.Fatal("negative amounts should be ignored")
	}
}

func TestPipelineConvergesToHalfFull(t *testing.T) {
	s := NewScheduler()
	prod, q, cons := NewPipeline("av", 2000, 2000, 100, 10*time.Millisecond)
	s.AddProcess(prod)
	s.AddProcess(cons)
	s.AddQueue(q)
	s.Run(30*time.Second, 10*time.Millisecond)
	if q.FillPct() < 25 || q.FillPct() > 75 {
		t.Fatalf("queue settled at %.1f%%, want near 50%%", q.FillPct())
	}
	if prod.Done == 0 || cons.Done == 0 {
		t.Fatal("pipeline did no work")
	}
}

func TestProportionsRespondToRateChange(t *testing.T) {
	// Doubling the consumer's per-CPU cost (halving its rate) must raise
	// its proportion — the dynamic the paper watches on gscope.
	s := NewScheduler()
	prod, q, cons := NewPipeline("av", 3000, 3000, 100, 10*time.Millisecond)
	s.AddProcess(prod)
	s.AddProcess(cons)
	s.AddQueue(q)
	s.Run(20*time.Second, 10*time.Millisecond)
	before := cons.Proportion()
	cons.Rate = 1500 // work got harder
	s.Run(40*time.Second, 10*time.Millisecond)
	after := cons.Proportion()
	if after <= before {
		t.Fatalf("consumer proportion did not rise: %.3f → %.3f", before, after)
	}
}

func TestTotalProportionNeverExceedsOne(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 4; i++ {
		prod, q, cons := NewPipeline("p", 5000, 2500, 50, 10*time.Millisecond)
		s.AddProcess(prod)
		s.AddProcess(cons)
		s.AddQueue(q)
	}
	step := 10 * time.Millisecond
	for i := 0; i < 3000; i++ {
		s.Step(step)
		if tot := s.TotalProportion(); tot > 1.0001 {
			t.Fatalf("total proportion %v exceeds 1 at step %d", tot, i)
		}
	}
}

func TestProportionsStayClamped(t *testing.T) {
	s := NewScheduler()
	prod, q, cons := NewPipeline("p", 100000, 10, 20, 10*time.Millisecond)
	s.AddProcess(prod)
	s.AddProcess(cons)
	s.AddQueue(q)
	s.Run(30*time.Second, 10*time.Millisecond)
	for _, p := range s.Processes {
		if p.Proportion() < s.MinShare/2-1e-9 || p.Proportion() > s.MaxShare+1e-9 {
			t.Fatalf("%s proportion %v outside clamp", p.Name, p.Proportion())
		}
	}
}

func TestFilterStage(t *testing.T) {
	s := NewScheduler()
	in := s.AddQueue(NewQueue("in", 50))
	out := s.AddQueue(NewQueue("out", 50))
	prod := s.AddProcess(&Process{Name: "src", Role: Producer, Rate: 2000, Out: in})
	filt := s.AddProcess(&Process{Name: "filt", Role: Filter, Rate: 2000, In: in, Out: out})
	cons := s.AddProcess(&Process{Name: "snk", Role: Consumer, Rate: 2000, In: out})
	_ = prod
	_ = cons
	s.Run(30*time.Second, 10*time.Millisecond)
	if filt.Done == 0 {
		t.Fatal("filter moved nothing")
	}
	if cons.Done == 0 {
		t.Fatal("consumer got nothing through the filter")
	}
}

func TestArrivalDrivenRealRateShare(t *testing.T) {
	// Frames arrive at 30/s; the consumer decodes 100/s at full CPU, so
	// its real-rate share is 30%. The controller must find it.
	s := NewScheduler()
	q := s.AddQueue(NewQueue("q", 120))
	s.AddProcess(&Process{Name: "src", Role: Arrival, Rate: 30, Out: q})
	dec := s.AddProcess(&Process{Name: "dec", Role: Consumer, Rate: 100, In: q})
	s.Run(30*time.Second, 10*time.Millisecond)
	if p := dec.Proportion(); p < 0.25 || p > 0.40 {
		t.Fatalf("decoder share %.3f, want ≈0.30", p)
	}
	if q.FillPct() < 20 || q.FillPct() > 80 {
		t.Fatalf("queue at %.0f%%, should be regulated", q.FillPct())
	}
	// The arrival stage consumes no CPU share.
	for _, p := range s.Processes {
		if p.Role == Arrival && p.Proportion() != 0 {
			t.Fatalf("arrival stage was allocated %.3f CPU", p.Proportion())
		}
	}
}

func TestArrivalShareTracksCostChange(t *testing.T) {
	s := NewScheduler()
	q := s.AddQueue(NewQueue("q", 120))
	s.AddProcess(&Process{Name: "src", Role: Arrival, Rate: 30, Out: q})
	dec := s.AddProcess(&Process{Name: "dec", Role: Consumer, Rate: 100, In: q})
	s.Run(25*time.Second, 10*time.Millisecond)
	before := dec.Proportion()
	dec.Rate = 50 // work doubles → share must double
	s.Run(60*time.Second, 10*time.Millisecond)
	after := dec.Proportion()
	if after < before*1.5 {
		t.Fatalf("share did not track cost: %.3f → %.3f", before, after)
	}
	if after < 0.5 || after > 0.75 {
		t.Fatalf("share %.3f, want ≈0.60", after)
	}
}

func TestAllocationsCount(t *testing.T) {
	s := NewScheduler()
	prod, q, cons := NewPipeline("p", 100, 100, 10, 10*time.Millisecond)
	s.AddProcess(prod)
	s.AddProcess(cons)
	s.AddQueue(q)
	s.Step(10 * time.Millisecond)
	if s.Allocations() != 2 {
		t.Fatalf("allocations = %d, want 2", s.Allocations())
	}
	if s.Elapsed() != 10*time.Millisecond {
		t.Fatalf("elapsed = %v", s.Elapsed())
	}
}

func TestSchedulerString(t *testing.T) {
	s := NewScheduler()
	prod, q, cons := NewPipeline("p", 100, 100, 10, 10*time.Millisecond)
	s.AddProcess(prod)
	s.AddProcess(cons)
	s.AddQueue(q)
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
