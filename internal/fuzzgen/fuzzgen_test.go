package fuzzgen

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tuple"
)

// sampleData is an arbitrary but fixed decision stream used across tests.
func sampleData() []byte {
	b := make([]byte, 512)
	for i := range b {
		b[i] = byte(i*37 + 11)
	}
	return b
}

func TestSourceDeterministic(t *testing.T) {
	a, b := New(sampleData()), New(sampleData())
	ta := a.Tuples(64, false)
	tb := b.Tuples(64, false)
	if !reflect.DeepEqual(ta, tb) {
		t.Fatal("same input bytes produced different tuples")
	}
	if !bytes.Equal(a.WireStream(ta), b.WireStream(tb)) {
		t.Fatal("same input bytes produced different wire streams")
	}
	if a.HandshakeLine() != b.HandshakeLine() {
		t.Fatal("same input bytes produced different handshake lines")
	}
}

func TestExhaustedSourceTerminates(t *testing.T) {
	s := New(nil)
	if !s.Exhausted() {
		t.Fatal("empty source not exhausted")
	}
	ts := s.Tuples(1000, true)
	_ = s.WireStream(ts)
	_, _ = s.ControlFrame()
	_ = s.HandshakeLine()
	_ = s.ParamCommand()
	_ = s.CorruptSegment(SegmentFile(1, ts))
}

func TestGeneratedTuplesAreWireClean(t *testing.T) {
	s := New(sampleData())
	ts := s.Tuples(200, false)
	if len(ts) == 0 {
		t.Fatal("generator produced no tuples from a rich source")
	}
	for _, tu := range ts {
		if err := tuple.ValidateName(tu.Name); err != nil {
			t.Fatalf("generated invalid name %q: %v", tu.Name, err)
		}
		if tu.Value != tu.Value {
			t.Fatalf("generated NaN value for %q", tu.Name)
		}
		again, err := tuple.Parse(tu.String())
		if err != nil {
			t.Fatalf("generated tuple does not parse: %v", err)
		}
		if again != tu {
			t.Fatalf("generated tuple not round-trippable: %+v vs %+v", tu, again)
		}
	}
}

// TestWireStreamYieldsExactlyTheTuples is the generator's own contract
// check: noise must be invisible to a reader and every payload tuple
// must come back identical, in order.
func TestWireStreamYieldsExactlyTheTuples(t *testing.T) {
	s := New(sampleData())
	ts := s.Tuples(100, false)
	stream := s.WireStream(ts)
	got, err := tuple.NewReader(bytes.NewReader(stream), false).ReadAll()
	if err != nil {
		t.Fatalf("reading generated stream: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("stream yielded %d tuples, generated %d", len(got), len(ts))
	}
	for i := range got {
		if got[i] != ts[i] {
			t.Fatalf("tuple %d mismatch: %+v vs %+v", i, got[i], ts[i])
		}
	}
}

func TestControlFrameRoundTrips(t *testing.T) {
	s := New(sampleData())
	for i := 0; i < 50; i++ {
		verb, fields := s.ControlFrame()
		line := string(tuple.AppendControl(nil, verb, fields...))
		f, ok := tuple.ParseControl(strings.TrimSuffix(line, "\n"))
		if !ok {
			t.Fatalf("generated control frame does not parse: %q", line)
		}
		if f.Verb != verb || len(f.Fields) != len(fields) {
			t.Fatalf("control round trip mismatch: %q -> %+v", line, f)
		}
		for j := range fields {
			if f.Fields[j] != fields[j] {
				t.Fatalf("field %d mismatch: %q vs %q", j, f.Fields[j], fields[j])
			}
		}
	}
}

func TestSegmentFileScansClean(t *testing.T) {
	s := New(sampleData())
	ts := s.Tuples(50, true)
	seg := SegmentFile(3, ts)
	got, err := tuple.NewReader(bytes.NewReader(seg), false).ReadAll()
	if err != nil {
		t.Fatalf("segment does not read as a tuple stream: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("segment yields %d tuples, wrote %d", len(got), len(ts))
	}
	if !strings.HasPrefix(string(seg), "# gscope-reclog 1 seq=3\n") {
		t.Fatalf("segment header malformed: %q", string(seg[:32]))
	}
}

func TestCorruptSegmentCoversModes(t *testing.T) {
	base := SegmentFile(1, New(sampleData()).Tuples(20, true))
	changed := false
	for i := 0; i < 64; i++ {
		s := New([]byte{byte(i), byte(i * 3), byte(i * 7), byte(i * 13)})
		out := s.CorruptSegment(base)
		if !bytes.Equal(out, base) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("64 corruption attempts never changed the segment")
	}
	if !bytes.Equal(base, SegmentFile(1, New(sampleData()).Tuples(20, true))) {
		t.Fatal("CorruptSegment mutated its input")
	}
}
