// Package fuzzgen turns raw fuzz bytes into structured inputs for every
// externally-parseable surface of the pipeline: tuple wire streams (with
// comment, blank and garbage lines interleaved), subscriber handshake
// lines, control frames, param commands, and reclog segment/index files
// with seeded corruption. The native fuzz targets in tuple, core,
// netscope and reclog draw from one Source per execution, so the fuzzing
// engine's byte-level mutations translate into structural mutations —
// more signals, skewed stamps, a torn segment tail — instead of being
// rejected at the first parse.
//
// A Source is deterministic: the same input bytes produce the same
// decisions, which is what lets the engine minimize crashers. When the
// bytes run out every further decision reads as zero, so generation
// always terminates.
package fuzzgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/tuple"
)

// Source is a deterministic decision stream over fuzz input bytes.
type Source struct {
	data []byte
	pos  int
}

// New wraps fuzz input bytes.
func New(data []byte) *Source { return &Source{data: data} }

// Exhausted reports whether every input byte has been consumed (all
// further decisions read as zero).
func (s *Source) Exhausted() bool { return s.pos >= len(s.data) }

// Byte consumes one decision byte (zero once exhausted).
func (s *Source) Byte() byte {
	if s.pos >= len(s.data) {
		return 0
	}
	b := s.data[s.pos]
	s.pos++
	return b
}

// Bool consumes one decision bit.
func (s *Source) Bool() bool { return s.Byte()&1 == 1 }

// Intn returns a decision in [0, n); n <= 1 consumes nothing.
func (s *Source) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	v := int(s.Byte())<<8 | int(s.Byte())
	return v % n
}

// Int63n returns a decision in [0, n); n <= 1 consumes nothing.
func (s *Source) Int63n(n int64) int64 {
	if n <= 1 {
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(s.Byte())
	}
	return int64(v % uint64(n))
}

// floatPalette holds boundary values worth hitting far more often than
// random bit patterns would. NaN is deliberately absent: generated
// tuples feed round-trip equality checks, which NaN breaks trivially
// (the raw-line fuzz targets still cover NaN via engine mutations).
var floatPalette = []float64{
	0, 1, -1, 0.5, -0.25, 3, 1e-9, 1e300, -1e300,
	math.MaxFloat64, math.SmallestNonzeroFloat64,
	math.Inf(1), math.Inf(-1),
	float64(1 << 53), -float64(1<<53) - 1,
}

// Float returns a sample value: a palette boundary value, a small
// integer, or a fraction with a short decimal expansion. Never NaN.
func (s *Source) Float() float64 {
	switch s.Intn(4) {
	case 0:
		return floatPalette[s.Intn(len(floatPalette))]
	case 1:
		return float64(s.Int63n(2001) - 1000)
	default:
		return float64(s.Int63n(1<<20)-(1<<19)) / 16
	}
}

// namePalette are valid signal names (tuple.ValidateName passes),
// including the awkward corners the grammar allows: interior spaces,
// multi-byte runes, single characters.
var namePalette = []string{
	"cpu.user", "cpu.sys", "mem", "net rx bytes", "disk-io",
	"x", "αβγ", "pub0.sig0", "pub1.sig2", "a b c",
}

// Name returns a valid signal name.
func (s *Source) Name() string {
	n := namePalette[s.Intn(len(namePalette))]
	if s.Intn(4) == 0 {
		n = n + "." + strconv.Itoa(s.Intn(100))
	}
	return n
}

// maxTupleTimeMS bounds generated timestamps so that every downstream
// conversion (time.Duration via Timestamp, decimation arithmetic) stays
// far from int64 overflow while still exercising multi-day timelines.
const maxTupleTimeMS = int64(1) << 40

// Tuples generates up to max tuples across a handful of signals. Each
// signal's stamps mostly advance; with monotonic false, occasional
// backward jumps model skewed publisher clocks. Names are valid and
// values are never NaN, so the result survives a wire round trip
// byte-exactly.
func (s *Source) Tuples(max int, monotonic bool) []tuple.Tuple {
	n := s.Intn(max + 1)
	if n == 0 {
		return nil
	}
	k := 1 + s.Intn(4)
	names := make([]string, k)
	clocks := make([]int64, k)
	base := s.Int63n(maxTupleTimeMS / 2)
	for i := range names {
		names[i] = s.Name()
		clocks[i] = base + s.Int63n(1000)
	}
	out := make([]tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		j := s.Intn(k)
		switch {
		case !monotonic && s.Intn(16) == 0:
			clocks[j] -= s.Int63n(5000)
		case s.Intn(4) != 0:
			clocks[j] += s.Int63n(100)
		}
		out = append(out, tuple.Tuple{Time: clocks[j], Value: s.Float(), Name: names[j]})
	}
	return out
}

// skipNoise are lines a tuple reader skips silently — comments and
// blanks — so WireStream can interleave them without disturbing the
// payload. Garbage that fails to parse does NOT belong here: a reader
// surfaces it as ErrBadLine rather than skipping it.
var skipNoise = []string{
	"",
	"#",
	"# comment 1 2 3",
	"# gscope-hub 1",
	"# snapshot tuples=3 window-ms=5000",
	"# seal tuples=0 first=0 last=0",
	"  # indented comment",
}

// noiseLines extends skipNoise with garbage for surfaces that must
// tolerate arbitrary junk lines (handshakes, command channels).
var noiseLines = append([]string{
	"bogus line",
	"1",
	"9 nope x",
	"time value name",
	"-",
}, skipNoise...)

// WireStream renders ts as wire bytes with noise interleaved: the exact
// stream a publisher socket or a segment file could carry. Spacing
// occasionally deviates from canonical (leading blanks, double
// separators) in ways the grammar still parses to the same tuple.
func (s *Source) WireStream(ts []tuple.Tuple) []byte {
	var b []byte
	noise := func() {
		// Bounded: an exhausted source decides 0 forever, and an unbounded
		// "while the dice say so" loop would never terminate on it.
		for n := 0; n < 3 && s.Intn(4) == 0 && !s.Exhausted(); n++ {
			b = append(b, skipNoise[s.Intn(len(skipNoise))]...)
			b = append(b, '\n')
		}
	}
	for _, t := range ts {
		noise()
		if s.Intn(8) == 0 {
			// Non-canonical but equivalent spacing.
			b = append(b, fmt.Sprintf("  %d  %s %s\n", t.Time, tuple.FormatValue(t.Value), t.Name)...)
			continue
		}
		b = tuple.AppendWire(b, t)
	}
	noise()
	return b
}

// controlTokens are space-free field tokens for control frames.
var controlTokens = []string{
	"a", "k=v", "tuples=3", "since-ms=-12", "weird==x", "π", "0", "param-ok",
}

// ControlFrame generates a verb and fields that AppendControl can carry
// and ParseControl must return unchanged: nonempty, space-free tokens.
func (s *Source) ControlFrame() (verb string, fields []string) {
	verbs := []string{"gscope-hub", "snapshot", "backfill", "param", "error", "x1", "#"}
	verb = verbs[s.Intn(len(verbs))]
	for i := s.Intn(5); i > 0; i-- {
		fields = append(fields, controlTokens[s.Intn(len(controlTokens))])
	}
	return verb, fields
}

// Handshake field palettes: per key, a mix of valid and hostile values.
var (
	hsSignals = []string{"cpu.*", "mem", "*", "sig?", "[a-z]x", "bad[", "a..b"}
	hsRates   = []string{"30", "0.5", "1000", "-1", "1e309", "abc", "0"}
	hsSince   = []string{"-2000", "5000", "0", "-9223372036854775808", "9223372036854775807", "99999999999999999999", "x"}
	hsCols    = []string{"64", "1", "0", "-3", "1000000000", "y"}
)

// HandshakeLine generates a subscriber first line: usually a v2
// handshake (valid or hostile in one field), sometimes a wrong version
// or junk that must fall back to v1. No trailing newline.
func (s *Source) HandshakeLine() string {
	switch s.Intn(8) {
	case 0:
		return "gscope-sub " + []string{"1", "3", "x", ""}[s.Intn(4)]
	case 1:
		return noiseLines[s.Intn(len(noiseLines))]
	}
	parts := []string{"gscope-sub", "2"}
	if s.Intn(8) == 0 {
		parts = append(parts, "noequals")
	}
	if s.Bool() {
		k := 1 + s.Intn(3)
		pats := make([]string, k)
		for i := range pats {
			pats[i] = hsSignals[s.Intn(len(hsSignals))]
		}
		parts = append(parts, "signals="+strings.Join(pats, ","))
	}
	if s.Bool() {
		parts = append(parts, "max-rate="+hsRates[s.Intn(len(hsRates))])
	}
	if s.Bool() {
		parts = append(parts, "since="+hsSince[s.Intn(len(hsSince))])
	}
	if s.Bool() {
		parts = append(parts, "cols="+hsCols[s.Intn(len(hsCols))])
	}
	if s.Bool() {
		parts = append(parts, "stream="+[]string{"0", "1", ""}[s.Intn(3)])
	}
	if s.Intn(8) == 0 {
		parts = append(parts, "future-key=whatever")
	}
	return strings.Join(parts, " ")
}

// ParamCommand generates a control-plane command line: the real verbs
// with valid and invalid arguments, plus junk the server must answer
// with an error frame rather than fall over.
func (s *Source) ParamCommand() string {
	names := []string{"delay", "threshold", "missing", "π", "="}
	vals := []string{"1", "-2.5", "1e309", "abc", "0"}
	switch s.Intn(8) {
	case 0, 1:
		return "param list"
	case 2, 3:
		return "param get " + names[s.Intn(len(names))]
	case 4, 5:
		return "param set " + names[s.Intn(len(names))] + " " + vals[s.Intn(len(vals))]
	case 6:
		return []string{"param", "param set", "param frob x", "params"}[s.Intn(4)]
	default:
		return noiseLines[s.Intn(len(noiseLines))]
	}
}

// --- reclog on-disk material -----------------------------------------------

// SegmentFile renders a well-formed reclog segment for seq holding ts:
// magic header, wire tuples, seal footer — the format package reclog
// documents and its scanner verifies.
func SegmentFile(seq int64, ts []tuple.Tuple) []byte {
	b := []byte(fmt.Sprintf("# gscope-reclog 1 seq=%d\n", seq))
	b = tuple.AppendWireBatch(b, ts)
	var first, last int64
	for i, t := range ts {
		if i == 0 || t.Time < first {
			first = t.Time
		}
		if i == 0 || t.Time > last {
			last = t.Time
		}
	}
	return append(b, fmt.Sprintf("# seal tuples=%d first=%d last=%d\n", len(ts), first, last)...)
}

// IndexEntry mirrors one reclog.index line.
type IndexEntry struct {
	Seq, First, Last, Offset, Bytes, Tuples int64
}

// IndexFile renders a reclog session index from entries.
func IndexFile(entries []IndexEntry) []byte {
	var b strings.Builder
	b.WriteString("# gscope-reclog-index 1\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "%d %d %d %d %d %d\n", e.Seq, e.First, e.Last, e.Offset, e.Bytes, e.Tuples)
	}
	return []byte(b.String())
}

// CorruptSegment damages seg the ways a crash, a partial write, or a
// hostile edit can: torn tail, clipped header, flipped byte, appended
// garbage, or a lying seal. The result may equal the input when the
// source decides not to corrupt.
func (s *Source) CorruptSegment(seg []byte) []byte {
	out := append([]byte(nil), seg...)
	switch s.Intn(6) {
	case 0: // torn tail: truncate mid-line
		if len(out) > 1 {
			out = out[:1+s.Intn(len(out)-1)]
		}
	case 1: // clipped header: drop the first line's prefix
		if n := s.Intn(20); n < len(out) {
			out = out[n:]
		}
	case 2: // flipped byte
		if len(out) > 0 {
			i := s.Intn(len(out))
			out[i] ^= byte(1 + s.Intn(255))
		}
	case 3: // trailing garbage after the seal
		out = append(out, "garbage after seal\n9 nope\n"...)
	case 4: // forged seal counts
		out = append(out, fmt.Sprintf("# seal tuples=%d first=%d last=%d\n",
			s.Intn(1000), s.Int63n(1000), s.Int63n(1000))...)
	}
	return out
}
