// Package fft provides the spectral machinery behind gscope's
// frequency-domain signal view (§1 lists "time and frequency representation
// of signals" among the library's features): an iterative radix-2 FFT,
// window functions, and a magnitude-spectrum helper sized for scope traces.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Transform computes the in-place forward FFT of x using the iterative
// Cooley–Tukey radix-2 algorithm. len(x) must be a power of two.
func Transform(x []complex128) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// Inverse computes the in-place inverse FFT of x (scaled by 1/n).
func Inverse(x []complex128) error {
	n := len(x)
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := Transform(x); err != nil {
		return err
	}
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// Window identifies a tapering function applied before transforming, to
// suppress spectral leakage from the finite scope trace.
type Window int

// Supported windows.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

// String names the window.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return fmt.Sprintf("Window(%d)", int(w))
	}
}

// Coefficient returns the window weight for index i of an n-point window.
func (w Window) Coefficient(i, n int) float64 {
	if n <= 1 {
		return 1
	}
	t := float64(i) / float64(n-1)
	switch w {
	case Hann:
		return 0.5 - 0.5*math.Cos(2*math.Pi*t)
	case Hamming:
		return 0.54 - 0.46*math.Cos(2*math.Pi*t)
	case Blackman:
		return 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
	default:
		return 1
	}
}

// Spectrum computes the single-sided magnitude spectrum of samples after
// mean removal and windowing. The input is zero-padded to a power of two.
// The result has NextPow2(len(samples))/2 + 1 bins; bin k corresponds to
// frequency k / (n·dt) when samples are dt apart.
func Spectrum(samples []float64, w Window) []float64 {
	if len(samples) == 0 {
		return nil
	}
	n := NextPow2(len(samples))
	// Remove the DC offset so the display is dominated by signal dynamics,
	// matching what a scope's AC coupling would show.
	mean := 0.0
	for _, v := range samples {
		mean += v
	}
	mean /= float64(len(samples))

	x := make([]complex128, n)
	for i, v := range samples {
		x[i] = complex((v-mean)*w.Coefficient(i, len(samples)), 0)
	}
	if err := Transform(x); err != nil {
		// Unreachable: n is a power of two by construction.
		panic(err)
	}
	half := n/2 + 1
	out := make([]float64, half)
	scale := 2 / float64(len(samples))
	for k := 0; k < half; k++ {
		m := cmplx.Abs(x[k]) * scale
		if k == 0 || k == n/2 {
			m /= 2
		}
		out[k] = m
	}
	return out
}

// DominantBin returns the index of the largest non-DC bin in a spectrum, or
// -1 for empty input.
func DominantBin(spec []float64) int {
	best, bi := -1.0, -1
	for k := 1; k < len(spec); k++ {
		if spec[k] > best {
			best, bi = spec[k], k
		}
	}
	return bi
}

// BinFrequency converts a bin index to Hz given the sample period.
func BinFrequency(bin, fftSize int, samplePeriodSec float64) float64 {
	if fftSize == 0 || samplePeriodSec == 0 {
		return 0
	}
	return float64(bin) / (float64(fftSize) * samplePeriodSec)
}
