package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTransformRejectsNonPow2(t *testing.T) {
	if err := Transform(make([]complex128, 3)); err == nil {
		t.Fatal("length 3 should be rejected")
	}
}

func TestTransformImpulse(t *testing.T) {
	// FFT of a unit impulse is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Transform(x); err != nil {
		t.Fatal(err)
	}
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestTransformSingleTone(t *testing.T) {
	const n = 64
	const bin = 5
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = complex(math.Cos(2*math.Pi*bin*float64(i)/n), 0)
	}
	if err := Transform(x); err != nil {
		t.Fatal(err)
	}
	// Energy concentrates in bins +5 and n-5, each with magnitude n/2.
	if math.Abs(cmplx.Abs(x[bin])-n/2) > 1e-9 {
		t.Fatalf("|X[%d]| = %g, want %d", bin, cmplx.Abs(x[bin]), n/2)
	}
	if math.Abs(cmplx.Abs(x[n-bin])-n/2) > 1e-9 {
		t.Fatalf("|X[%d]| = %g, want %d", n-bin, cmplx.Abs(x[n-bin]), n/2)
	}
	for k := 0; k < n; k++ {
		if k == bin || k == n-bin {
			continue
		}
		if cmplx.Abs(x[k]) > 1e-9 {
			t.Fatalf("leakage at bin %d: %g", k, cmplx.Abs(x[k]))
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		n := 1 << (1 + r.Intn(7)) // 2..128
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		if err := Transform(x); err != nil {
			return false
		}
		if err := Inverse(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		n := 1 << (2 + r.Intn(6))
		x := make([]complex128, n)
		timeEnergy := 0.0
		for i := range x {
			v := r.NormFloat64()
			x[i] = complex(v, 0)
			timeEnergy += v * v
		}
		if err := Transform(x); err != nil {
			return false
		}
		freqEnergy := 0.0
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*math.Max(1, timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowCoefficients(t *testing.T) {
	// Hann endpoints are 0, midpoint is 1.
	if Hann.Coefficient(0, 65) > 1e-12 {
		t.Fatal("Hann start should be 0")
	}
	if math.Abs(Hann.Coefficient(32, 65)-1) > 1e-12 {
		t.Fatal("Hann midpoint should be 1")
	}
	if Rectangular.Coefficient(17, 64) != 1 {
		t.Fatal("rectangular window should be flat")
	}
	// Hamming endpoints are 0.08.
	if math.Abs(Hamming.Coefficient(0, 65)-0.08) > 1e-12 {
		t.Fatal("Hamming endpoint wrong")
	}
	if Hann.Coefficient(0, 1) != 1 {
		t.Fatal("degenerate window should be 1")
	}
}

func TestWindowNames(t *testing.T) {
	names := map[Window]string{Rectangular: "rectangular", Hann: "hann", Hamming: "hamming", Blackman: "blackman"}
	for w, want := range names {
		if w.String() != want {
			t.Errorf("%v != %s", w, want)
		}
	}
}

func TestSpectrumFindsTone(t *testing.T) {
	const n = 256
	samples := make([]float64, n)
	for i := range samples {
		// 10 cycles across the window plus a DC offset that must be
		// removed.
		samples[i] = 50 + 20*math.Sin(2*math.Pi*10*float64(i)/n)
	}
	spec := Spectrum(samples, Hann)
	if len(spec) != n/2+1 {
		t.Fatalf("spectrum length %d", len(spec))
	}
	if got := DominantBin(spec); got != 10 {
		t.Fatalf("dominant bin %d, want 10", got)
	}
	// DC was removed.
	if spec[0] > spec[10]/10 {
		t.Fatalf("DC bin not suppressed: %g vs %g", spec[0], spec[10])
	}
}

func TestSpectrumEmptyAndConstant(t *testing.T) {
	if Spectrum(nil, Hann) != nil {
		t.Fatal("nil input should give nil spectrum")
	}
	spec := Spectrum([]float64{5, 5, 5, 5}, Rectangular)
	for k, v := range spec {
		if v > 1e-9 {
			t.Fatalf("constant signal should have empty spectrum, bin %d = %g", k, v)
		}
	}
}

func TestSpectrumPadsNonPow2(t *testing.T) {
	samples := make([]float64, 100) // padded to 128
	spec := Spectrum(samples, Hann)
	if len(spec) != 65 {
		t.Fatalf("padded spectrum length %d, want 65", len(spec))
	}
}

func TestDominantBinEmpty(t *testing.T) {
	if DominantBin(nil) != -1 {
		t.Fatal("empty spectrum should return -1")
	}
}

func TestBinFrequency(t *testing.T) {
	// 256-point FFT of 50ms samples: bin 1 = 1/(256*0.05) Hz.
	got := BinFrequency(1, 256, 0.05)
	want := 1.0 / 12.8
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("BinFrequency = %g, want %g", got, want)
	}
	if BinFrequency(1, 0, 0.05) != 0 {
		t.Fatal("zero size should yield 0")
	}
}
